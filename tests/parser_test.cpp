#include <gtest/gtest.h>

#include "src/parser/lexer.h"
#include "src/parser/parser.h"
#include "src/support/diag.h"
#include "src/zir/printer.h"

namespace zc::parser {
namespace {

using zir::Program;
using zir::Stmt;

// --- lexer ------------------------------------------------------------------

TEST(Lexer, BasicTokens) {
  DiagnosticEngine diags;
  const auto toks = lex("program p; [1..n] A := B@east * 2.5;", diags);
  EXPECT_FALSE(diags.has_errors());
  ASSERT_GE(toks.size(), 14u);
  EXPECT_EQ(toks[0].kind, TokenKind::kProgram);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].text, "p");
  EXPECT_EQ(toks[2].kind, TokenKind::kSemi);
  EXPECT_EQ(toks[3].kind, TokenKind::kLBracket);
  EXPECT_EQ(toks[4].kind, TokenKind::kIntLit);
  EXPECT_EQ(toks[5].kind, TokenKind::kDotDot);
}

TEST(Lexer, DotDotAfterNumberIsNotAFloat) {
  DiagnosticEngine diags;
  const auto toks = lex("1..2", diags);
  ASSERT_EQ(toks.size(), 4u);  // 1, .., 2, EOF
  EXPECT_EQ(toks[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(toks[0].int_value, 1);
  EXPECT_EQ(toks[1].kind, TokenKind::kDotDot);
  EXPECT_EQ(toks[2].int_value, 2);
}

TEST(Lexer, FloatForms) {
  DiagnosticEngine diags;
  const auto toks = lex("0.25 1e3 2.5e-2 7", diags);
  EXPECT_EQ(toks[0].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 0.25);
  EXPECT_EQ(toks[1].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 0.025);
  EXPECT_EQ(toks[3].kind, TokenKind::kIntLit);
}

TEST(Lexer, CommentsSkipped) {
  DiagnosticEngine diags;
  const auto toks = lex("a -- to end of line\nb // also\nc", diags);
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, CompoundOperators) {
  DiagnosticEngine diags;
  const auto toks = lex(":= <= >= == != && || <<", diags);
  EXPECT_EQ(toks[0].kind, TokenKind::kAssign);
  EXPECT_EQ(toks[1].kind, TokenKind::kLe);
  EXPECT_EQ(toks[2].kind, TokenKind::kGe);
  EXPECT_EQ(toks[3].kind, TokenKind::kEqEq);
  EXPECT_EQ(toks[4].kind, TokenKind::kNe);
  EXPECT_EQ(toks[5].kind, TokenKind::kAndAnd);
  EXPECT_EQ(toks[6].kind, TokenKind::kOrOr);
  EXPECT_EQ(toks[7].kind, TokenKind::kShiftL);
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine diags;
  const auto toks = lex("a\n  b", diags);
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, BadCharacterIsError) {
  DiagnosticEngine diags;
  lex("a $ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

// --- parser -----------------------------------------------------------------

constexpr std::string_view kSmall = R"(
program small;
config n : integer = 8;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction east = [0, 1], west = [0, -1];
var A, B : [R] double;
var err : double;

procedure main() {
  [R] A := 1.5;
  [R] B := 0.0;
  repeat 3 {
    [I] B := 0.5 * (A@east + A@west);
    [I] err := max<< abs(B - A);
    [I] A := B;
  }
}
)";

TEST(Parser, ParsesSmallProgram) {
  const Program p = parse_program(kSmall);
  EXPECT_EQ(p.name(), "small");
  EXPECT_EQ(p.array_count(), 2u);
  EXPECT_EQ(p.direction_count(), 2u);
  EXPECT_EQ(p.region_count(), 2u);
  EXPECT_TRUE(p.find_proc("main").valid());
  EXPECT_EQ(p.entry(), p.find_proc("main"));
}

TEST(Parser, RegionBoundsWithArithmetic) {
  const Program p = parse_program(kSmall);
  const auto& spec = p.region(p.find_region("I")).spec;
  const zir::IntEnv env = p.default_env();
  EXPECT_EQ(spec.dims[0].lo.eval(env), 2);
  EXPECT_EQ(spec.dims[0].hi.eval(env), 7);
}

TEST(Parser, SingleIndexRangeMeansDegenerate) {
  const Program p = parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction north = [-1, 0];
var A : [R] double;
procedure main() {
  for i in 2..n {
    [i, 1..n] A := A@north + 1.0;
  }
}
)");
  // Find the For statement, then the array assign inside it.
  const Stmt& loop = p.stmt(p.proc(p.entry()).body[0]);
  ASSERT_EQ(loop.kind, Stmt::Kind::kFor);
  const Stmt& assign = p.stmt(loop.body[0]);
  ASSERT_TRUE(assign.region.has_value());
  // Dim 0 is i..i (loop-dependent), dim 1 is 1..n.
  EXPECT_FALSE(assign.region->dims[0].lo.is_static());
  EXPECT_TRUE(assign.region->dims[0].lo.equals(assign.region->dims[0].hi));
}

TEST(Parser, ForWithNegativeStep) {
  const Program p = parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n];
var A : [R] double;
procedure main() {
  for i in n-1..2 by -1 {
    [i] A := 1.0;
  }
}
)");
  const Stmt& loop = p.stmt(p.proc(p.entry()).body[0]);
  EXPECT_EQ(loop.step, -1);
}

TEST(Parser, IfElseChain) {
  const Program p = parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n];
var A : [R] double;
var s : double;
procedure main() {
  s := 1.0;
  if s > 0.5 {
    [R] A := 1.0;
  } else if s > 0.25 {
    [R] A := 2.0;
  } else {
    [R] A := 3.0;
  }
}
)");
  const Stmt& cond = p.stmt(p.proc(p.entry()).body[1]);
  ASSERT_EQ(cond.kind, Stmt::Kind::kIf);
  ASSERT_EQ(cond.else_body.size(), 1u);
  EXPECT_EQ(p.stmt(cond.else_body[0]).kind, Stmt::Kind::kIf);
}

TEST(Parser, ReductionForms) {
  const Program p = parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n, 1..n];
var A : [R] double;
var s1, s2, s3 : double;
procedure main() {
  [R] s1 := +<< A;
  [R] s2 := max<< (A * 2.0);
  [R] s3 := min<< A + 1.0;
}
)");
  // min<< A + 1.0 parses as (min<< A) + 1.0 — reduce binds like a unary op.
  const Stmt& s3 = p.stmt(p.proc(p.entry()).body[2]);
  const zir::Expr& top = p.expr(s3.rhs);
  EXPECT_EQ(top.kind, zir::Expr::Kind::kBinary);
  EXPECT_EQ(p.expr(top.lhs).kind, zir::Expr::Kind::kReduce);
}

TEST(Parser, BuiltinsAndIndexArrays) {
  const Program p = parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n, 1..n];
var A : [R] double;
procedure main() {
  [R] A := min(sqrt(abs(Index1 - Index2)), pow(2.0, 3.0)) + sin(0.5) * cos(0.5);
}
)");
  EXPECT_EQ(p.proc(p.entry()).body.size(), 1u);
}

TEST(Parser, ProcedureCalls) {
  const Program p = parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n];
var A : [R] double;
procedure setup() {
  [R] A := 0.0;
}
procedure main() {
  setup();
  setup();
}
)");
  EXPECT_EQ(p.proc(p.entry()).body.size(), 2u);
  EXPECT_EQ(p.stmt(p.proc(p.entry()).body[0]).kind, Stmt::Kind::kCall);
}

TEST(Parser, ErrorUnknownName) {
  DiagnosticEngine diags;
  parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n];
var A : [R] double;
procedure main() {
  [R] A := nosuch + 1.0;
}
)", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, ErrorArrayAssignNeedsRegion) {
  DiagnosticEngine diags;
  parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n];
var A : [R] double;
procedure main() {
  A := 1.0;
}
)", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, ErrorUnknownDirection) {
  DiagnosticEngine diags;
  parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n];
var A : [R] double;
procedure main() {
  [R] A := A@nowhere;
}
)", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, ErrorRedeclaration) {
  DiagnosticEngine diags;
  parse_program(R"(
program t;
config n : integer = 4;
config n : integer = 5;
region R = [1..n];
var A : [R] double;
procedure main() { [R] A := 0.0; }
)", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticEngine diags;
  parse_program(R"(
program t;
config n : integer = 4;
region R = [1..n];
var A : [R] double;
procedure main() {
  [R] A := bad1;
  [R] A := bad2;
}
)", diags);
  EXPECT_GE(diags.error_count(), 2);
}

TEST(Parser, ThrowingOverloadThrowsWithMessage) {
  EXPECT_THROW(parse_program("program t;"), Error);
}

TEST(Parser, RoundTripThroughPrinter) {
  const Program p1 = parse_program(kSmall);
  const std::string src2 = zir::to_source(p1);
  const Program p2 = parse_program(src2);  // printed source must re-parse
  EXPECT_EQ(p2.array_count(), p1.array_count());
  EXPECT_EQ(p2.stmt_count(), p1.stmt_count());
}

}  // namespace
}  // namespace zc::parser
