// Tests for the combining heuristics (paper §2 Figure 2 and §3.3.2):
// max-combining vs. max-latency vs. the nested/hybrid extensions.
#include <gtest/gtest.h>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"

namespace zc::comm {
namespace {

/// The Figure 2 shape: three same-direction transfers whose feasible send
/// intervals are C = [0, 4], B = [1, 3] (nested in C), D = [2, 5]
/// (partially overlapping both).
zir::Program figure2_program() {
  return parser::parse_program(R"(
program fig2;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var C, B, D, U, V, W, T1, T2, T3 : [R] double;
procedure main() {
  [R] U := 1.0;        -- 0
  [R] B := U;          -- 1: B written -> B@east feasible from 2
  [R] D := B;          -- 2: D written -> D@east feasible from 3
  [R] T1 := C@east;    -- 3: C interval [0, 3]
  [R] T2 := B@east;    -- 4: B interval [2, 4]
  [R] T3 := D@east;    -- 5: D interval [3, 5]
}
)");
}

OptOptions with_heuristic(CombineHeuristic h) {
  OptOptions o;
  o.remove_redundant = true;
  o.combine = true;
  o.pipeline = true;
  o.heuristic = h;
  return o;
}

TEST(Heuristics, IntervalsAreAsConstructed) {
  const CommPlan plan = plan_communication(figure2_program(), OptOptions{});
  const auto& t = plan.blocks[0].transfers;
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].earliest_send, 0);  // C: never written
  EXPECT_EQ(t[0].use_stmt, 3);
  EXPECT_EQ(t[1].earliest_send, 2);  // B: written at 1
  EXPECT_EQ(t[1].use_stmt, 4);
  EXPECT_EQ(t[2].earliest_send, 3);  // D: written at 2
  EXPECT_EQ(t[2].use_stmt, 5);
}

TEST(Heuristics, MaxCombiningMergesAll) {
  // Figure 2(b): all three communications combined; latency-hiding window
  // shrinks to the intersection [3, 3].
  const CommPlan plan = plan_communication(figure2_program(),
                                           with_heuristic(CombineHeuristic::kMaxCombining));
  ASSERT_EQ(plan.static_count(), 1);
  const CommGroup& g = plan.blocks[0].groups[0];
  EXPECT_EQ(g.members.size(), 3u);
  EXPECT_EQ(g.sr_pos, 3);
  EXPECT_EQ(g.dn_pos, 3);
  EXPECT_EQ(g.window(), 0);
}

TEST(Heuristics, MaxLatencyPreservesEveryWindow) {
  // Under the strict max-latency rule nothing here combines: no two
  // intervals coincide, so any merge would shrink someone's window.
  const CommPlan plan =
      plan_communication(figure2_program(), with_heuristic(CombineHeuristic::kMaxLatency));
  EXPECT_EQ(plan.static_count(), 3);
  for (const CommGroup& g : plan.blocks[0].groups) {
    EXPECT_EQ(g.members.size(), 1u);
    EXPECT_GT(g.window(), 0);  // every window survives pipelining intact
  }
}

TEST(Heuristics, MaxLatencyCombinesIdenticalIntervals) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C, T : [R] double;
procedure main() {
  [R] T := 1.0;
  [R] T := T + 1.0;
  [R] C := A@east + B@east;   -- both intervals are [0, 2]
}
)");
  const CommPlan plan =
      plan_communication(p, with_heuristic(CombineHeuristic::kMaxLatency));
  EXPECT_EQ(plan.static_count(), 1);
  EXPECT_EQ(plan.blocks[0].groups[0].members.size(), 2u);
}

TEST(Heuristics, NestedCombinesContainedIntervals) {
  // The looser "completely nested" ablation merges B ([2,4]) neither into C
  // ([0,3]) nor D ([3,5]) — those overlap partially — but C and B don't
  // nest either ([0,3] vs [2,4]). Construct a true nesting instead.
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, T1, T2, W : [R] double;
procedure main() {
  [R] W := 1.0;        -- 0
  [R] B := W;          -- 1: B@east feasible from 2
  [R] T1 := B@east;    -- 2: B interval [2, 2]
  [R] T2 := A@east;    -- 3: A interval [0, 3] contains [2, 2]
}
)");
  const CommPlan nested = plan_communication(p, with_heuristic(CombineHeuristic::kNested));
  EXPECT_EQ(nested.static_count(), 1);
  // Strict max-latency refuses the same merge (A's window would shrink).
  const CommPlan strict = plan_communication(p, with_heuristic(CombineHeuristic::kMaxLatency));
  EXPECT_EQ(strict.static_count(), 2);
}

TEST(Heuristics, HybridRespectsSizeCap) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 64;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C, T : [R] double;
procedure main() {
  [R] T := A@east + B@east + C@east;
}
)");
  // Each east slice on a 1x1 mesh estimate is a full 64-row column.
  OptOptions o = with_heuristic(CombineHeuristic::kHybrid);
  o.est_mesh_rows = 1;
  o.est_mesh_cols = 1;
  o.hybrid_max_elems = 128;  // two columns fit, three do not
  const CommPlan plan = plan_communication(p, o);
  EXPECT_EQ(plan.static_count(), 2);

  o.hybrid_max_elems = 512;
  const CommPlan big = plan_communication(p, o);
  EXPECT_EQ(big.static_count(), 1);
}

TEST(Heuristics, HybridRespectsWindowFloor) {
  OptOptions o = with_heuristic(CombineHeuristic::kHybrid);
  o.hybrid_max_elems = 1 << 20;
  o.hybrid_min_window_fraction = 0.9;  // nearly no window shrink allowed
  const CommPlan plan = plan_communication(figure2_program(), o);
  // C's window is 3; merging with B would shrink the combined window to 1
  // (< 0.9 * 3), so it is refused; similar for the others.
  EXPECT_EQ(plan.static_count(), 3);

  o.hybrid_min_window_fraction = 0.0;
  const CommPlan loose = plan_communication(figure2_program(), o);
  EXPECT_EQ(loose.static_count(), 1);
}

TEST(Heuristics, OptionsForLevelMatchesFigure9) {
  const OptOptions base = OptOptions::for_level(OptLevel::kBaseline);
  EXPECT_FALSE(base.remove_redundant);
  EXPECT_FALSE(base.combine);
  EXPECT_FALSE(base.pipeline);
  const OptOptions rr = OptOptions::for_level(OptLevel::kRR);
  EXPECT_TRUE(rr.remove_redundant);
  EXPECT_FALSE(rr.combine);
  const OptOptions cc = OptOptions::for_level(OptLevel::kCC);
  EXPECT_TRUE(cc.remove_redundant);
  EXPECT_TRUE(cc.combine);
  EXPECT_FALSE(cc.pipeline);
  const OptOptions pl = OptOptions::for_level(OptLevel::kPL);
  EXPECT_TRUE(pl.pipeline);
}

TEST(Heuristics, MonotoneStaticCounts) {
  // baseline >= rr >= cc for every heuristic; pipelining never changes
  // counts (paper §2: "Pipelining does not affect the number of messages").
  const zir::Program p = figure2_program();
  const int base = plan_communication(p, OptOptions::for_level(OptLevel::kBaseline)).static_count();
  const int rr = plan_communication(p, OptOptions::for_level(OptLevel::kRR)).static_count();
  const int cc = plan_communication(p, OptOptions::for_level(OptLevel::kCC)).static_count();
  const int pl = plan_communication(p, OptOptions::for_level(OptLevel::kPL)).static_count();
  EXPECT_GE(base, rr);
  EXPECT_GE(rr, cc);
  EXPECT_EQ(cc, pl);
}

}  // namespace
}  // namespace zc::comm
