// Tests for the cross-basic-block redundancy-removal extension (the
// paper's §4 future work, implemented in src/comm/interblock.*).
#include <gtest/gtest.h>

#include <cmath>

#include "src/comm/interblock.h"
#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"

namespace zc::comm {
namespace {

OptOptions with_inter_block() {
  OptOptions o = OptOptions::for_level(OptLevel::kPL);
  o.inter_block = true;
  return o;
}

int static_count(std::string_view src, const OptOptions& o) {
  return plan_communication(parser::parse_program(src), o).static_count();
}

TEST(ModSet, DirectAndTransitiveWrites) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
var A, B, C : [R] double;
procedure leaf() {
  [R] B := 1.0;
}
procedure mid() {
  [R] A := 2.0;
  leaf();
}
procedure main() {
  mid();
  [R] C := 0.0;
}
)");
  const auto mid_mods = mod_set(p, p.find_proc("mid"));
  EXPECT_EQ(mid_mods.size(), 2u);
  EXPECT_TRUE(mid_mods.count(p.find_array("A")));
  EXPECT_TRUE(mid_mods.count(p.find_array("B")));
  EXPECT_FALSE(mid_mods.count(p.find_array("C")));
  const auto leaf_mods = mod_set(p, p.find_proc("leaf"));
  EXPECT_EQ(leaf_mods.size(), 1u);
}

TEST(InterBlock, RemovesAcrossCallBoundary) {
  // The same slice is needed in two blocks separated by a call that does
  // not modify the array: intra-block rr keeps both, inter-block drops one.
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C, D : [R] double;
procedure other() {
  [R] D := D + 1.0;
}
procedure main() {
  [R] A := B@east;
  other();
  [R] C := B@east;
}
)";
  OptOptions intra = OptOptions::for_level(OptLevel::kRR);
  EXPECT_EQ(static_count(src, intra), 2);
  intra.inter_block = true;
  EXPECT_EQ(static_count(src, intra), 1);
}

TEST(InterBlock, CalleeWriteInvalidates) {
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure clobber() {
  [R] B := B + 1.0;
}
procedure main() {
  [R] A := B@east;
  clobber();
  [R] C := B@east;
}
)";
  EXPECT_EQ(static_count(src, with_inter_block()), 2);
}

TEST(InterBlock, LoopBoundaryIsConservative) {
  // The slice cached before the loop must not satisfy uses inside it (the
  // body writes B on the back edge), and vice versa.
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main() {
  [R] A := B@east;
  repeat 2 {
    [R] C := B@east;
    [R] B := C;
  }
  [R] A := B@east;
}
)";
  EXPECT_EQ(static_count(src, with_inter_block()), 3);
}

TEST(InterBlock, FlowsWithinOneLoopIteration) {
  // Inside the loop body, block 1's slice satisfies block 2's use on every
  // iteration (the intervening call writes nothing relevant).
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C, D : [R] double;
procedure other() {
  [R] D := D * 0.5;
}
procedure main() {
  repeat 3 {
    [R] A := B@east;
    other();
    [R] C := B@east;
  }
}
)";
  EXPECT_EQ(static_count(src, with_inter_block()), 1);
}

TEST(InterBlock, IfBranchesSeePreBranchState) {
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C, D : [R] double;
var s : double;
procedure main() {
  [R] A := B@east;
  [R] s := +<< A;
  if s > 0.0 {
    [R] C := B@east;
  } else {
    [R] D := B@east;
  }
  [R] A := B@east;
}
)";
  // Both branch uses are covered by the pre-branch transfer; the use after
  // the join is conservatively kept (we do not intersect branch exits).
  EXPECT_EQ(static_count(src, with_inter_block()), 2);
}

TEST(InterBlock, WriteInBranchDoesNotLeakCoverage) {
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
var s : double;
procedure main() {
  [R] A := B@east;
  [R] s := +<< A;
  if s > 100.0 {
    [R] B := A;
  }
  [R] C := B@east;
}
)";
  // B may be written on the taken branch: the final use must communicate.
  EXPECT_EQ(static_count(src, with_inter_block()), 2);
}

TEST(InterBlock, SingleCallSiteIsContextSensitive) {
  // A procedure with exactly one call site flows the caller's state
  // through: the callee's use is satisfied by the caller-side transfer.
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure reader() {
  [R] C := B@east;
}
procedure main() {
  [R] A := B@east;
  reader();
}
)";
  EXPECT_EQ(static_count(src, with_inter_block()), 1);
}

TEST(InterBlock, MultiplyCalledProcedureGetsEmptyEntryState) {
  // With two call sites, the callee's marks must hold at both: the first
  // call is preceded by a covering transfer but the second is not (B is
  // rewritten in between), so the callee keeps its communication.
  constexpr std::string_view src = R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure reader() {
  [R] C := B@east;
}
procedure main() {
  [R] A := B@east;
  reader();
  [R] B := A;
  reader();
}
)";
  EXPECT_EQ(static_count(src, with_inter_block()), 2);
}

TEST(InterBlock, ReducesBenchmarkCounts) {
  // The phase-structured benchmarks re-communicate slices across their
  // phase blocks; the extension must strictly improve SIMPLE (UN/VN slices
  // recur across viscosity/stress/forces) without breaking any benchmark.
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const int pl = plan_communication(p, OptOptions::for_level(OptLevel::kPL)).static_count();
    const int inter = plan_communication(p, with_inter_block()).static_count();
    EXPECT_LE(inter, pl) << info.name;
    if (info.name == "simple") EXPECT_LT(inter, pl);
  }
}

TEST(InterBlock, SemanticsPreservedOnBenchmarks) {
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const CommPlan ref_plan = plan_communication(p, OptOptions::for_level(OptLevel::kBaseline));
    sim::RunConfig ref_cfg;
    ref_cfg.procs = 1;
    ref_cfg.config_overrides = info.test_configs;
    const sim::RunResult ref = sim::run_program(p, ref_plan, ref_cfg);

    const CommPlan plan = plan_communication(p, with_inter_block());
    sim::RunConfig cfg;
    cfg.procs = 4;
    cfg.config_overrides = info.test_configs;
    const sim::RunResult got = sim::run_program(p, plan, cfg);
    for (const auto& [name, value] : ref.checksums) {
      const double tol = 1e-9 * std::max(1.0, std::fabs(value));
      EXPECT_NEAR(got.checksums.at(name), value, tol) << info.name << " " << name;
    }
  }
}

}  // namespace
}  // namespace zc::comm
