#include <gtest/gtest.h>

#include <numeric>

#include "src/parser/parser.h"
#include "src/runtime/layout.h"

namespace zc::rt {
namespace {

Box box2(long long lo0, long long hi0, long long lo1, long long hi1) {
  return Box::make(2, {lo0, lo1, 0}, {hi0, hi1, 0});
}

TEST(Box, EmptyAndCount) {
  EXPECT_FALSE(box2(1, 4, 1, 4).empty());
  EXPECT_EQ(box2(1, 4, 1, 4).count(), 16);
  EXPECT_TRUE(box2(2, 1, 1, 4).empty());
  EXPECT_EQ(box2(2, 1, 1, 4).count(), 0);
}

TEST(Box, Contains) {
  const Box outer = box2(0, 9, 0, 9);
  EXPECT_TRUE(outer.contains(box2(1, 8, 2, 7)));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(box2(1, 10, 2, 7)));
  EXPECT_TRUE(outer.contains(box2(5, 4, 0, 0)));  // empty always contained
}

TEST(Box, Shifted) {
  const Box b = box2(1, 4, 2, 5).shifted({-1, 2});
  EXPECT_EQ(b, box2(0, 3, 4, 7));
}

TEST(Box, Intersect) {
  EXPECT_EQ(box2(0, 5, 0, 5).intersect(box2(3, 8, 2, 4)), box2(3, 5, 2, 4));
  EXPECT_TRUE(box2(0, 2, 0, 2).intersect(box2(5, 8, 5, 8)).empty());
}

TEST(Box, SubtractDisjoint) {
  const Box a = box2(0, 3, 0, 3);
  const auto pieces = a.subtract(box2(10, 12, 10, 12));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], a);
}

TEST(Box, SubtractContained) {
  const auto pieces = box2(0, 3, 0, 3).subtract(box2(-1, 4, -1, 4));
  EXPECT_TRUE(pieces.empty());
}

TEST(Box, SubtractPiecesAreDisjointAndCoverDifference) {
  // Exhaustive small-case check of the subtraction algebra.
  const Box a = box2(0, 5, 0, 5);
  for (long long lo0 = -1; lo0 <= 6; lo0 += 2) {
    for (long long hi0 = lo0; hi0 <= 7; hi0 += 2) {
      for (long long lo1 = -1; lo1 <= 6; lo1 += 3) {
        for (long long hi1 = lo1; hi1 <= 7; hi1 += 2) {
          const Box b = box2(lo0, hi0, lo1, hi1);
          const auto pieces = a.subtract(b);
          long long covered = 0;
          for (const Box& piece : pieces) {
            EXPECT_TRUE(a.contains(piece));
            EXPECT_TRUE(piece.intersect(b).empty());
            covered += piece.count();
          }
          // Pairwise disjoint.
          for (std::size_t i = 0; i < pieces.size(); ++i) {
            for (std::size_t j = i + 1; j < pieces.size(); ++j) {
              EXPECT_TRUE(pieces[i].intersect(pieces[j]).empty());
            }
          }
          EXPECT_EQ(covered, a.count() - a.intersect(b).count());
        }
      }
    }
  }
}

TEST(Box, SubtractDiagonalShiftShape) {
  // The geometry behind a south-east shift: (owned + (1,1)) \ owned is an
  // L of two slabs (plus the corner merged into one of them).
  const Box owned = box2(0, 7, 0, 7);
  const Box needed = owned.shifted({1, 1});
  const auto pieces = needed.subtract(owned);
  ASSERT_EQ(pieces.size(), 2u);
  long long total = 0;
  for (const Box& piece : pieces) total += piece.count();
  EXPECT_EQ(total, 8 + 7);  // bottom row (8 wide) + right column (7 tall)
}

TEST(Mesh, NearSquare) {
  EXPECT_EQ(Mesh::near_square(64).rows, 8);
  EXPECT_EQ(Mesh::near_square(64).cols, 8);
  EXPECT_EQ(Mesh::near_square(2).rows, 1);
  EXPECT_EQ(Mesh::near_square(2).cols, 2);
  EXPECT_EQ(Mesh::near_square(12).rows, 3);
  EXPECT_EQ(Mesh::near_square(12).cols, 4);
  EXPECT_EQ(Mesh::near_square(1).procs(), 1);
  EXPECT_EQ(Mesh::near_square(7).rows, 1);  // prime: 1 x 7
}

TEST(Mesh, RankMapping) {
  const Mesh m{2, 3};
  EXPECT_EQ(m.rank_of(1, 2), 5);
  EXPECT_EQ(m.row_of(5), 1);
  EXPECT_EQ(m.col_of(5), 2);
  EXPECT_EQ(m.center_rank(), m.rank_of(1, 1));
}

class BlockDistTest : public ::testing::Test {
 protected:
  BlockDistTest()
      : program_(parser::parse_program(R"(
program t;
config n : integer = 16;
region R = [0..n+1, 0..n+1];
region I = [1..n, 1..n];
direction e = [0,1];
var A : [R] double;
procedure main() { [I] A := 0.0; }
)")),
        env_(program_.default_env()),
        dist_(program_, env_, Mesh{2, 2}) {}

  zir::Program program_;
  zir::IntEnv env_;
  BlockDist dist_;
};

TEST_F(BlockDistTest, SpaceIsBoundingBox) {
  EXPECT_EQ(dist_.space(), box2(0, 17, 0, 17));
}

TEST_F(BlockDistTest, OwnershipPartitions) {
  // Owned boxes tile the space exactly.
  long long total = 0;
  for (int p = 0; p < 4; ++p) total += dist_.owned(p).count();
  EXPECT_EQ(total, dist_.space().count());
  // Disjoint.
  for (int p = 0; p < 4; ++p) {
    for (int q = p + 1; q < 4; ++q) {
      EXPECT_TRUE(dist_.owned(p).intersect(dist_.owned(q)).empty());
    }
  }
  // 18 rows over 2 parts: 9 each.
  EXPECT_EQ(dist_.owned(0), box2(0, 8, 0, 8));
  EXPECT_EQ(dist_.owned(3), box2(9, 17, 9, 17));
}

TEST_F(BlockDistTest, OwnersFindsIntersectingProcs) {
  // A box straddling the vertical cut belongs to both column procs.
  const auto owners = dist_.owners(box2(0, 0, 8, 9));
  EXPECT_EQ(owners, (std::vector<int>{0, 1}));
  const auto all = dist_.owners(box2(0, 17, 0, 17));
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(dist_.owners(box2(5, 4, 0, 0)).empty());  // empty box
}

TEST(BlockDistUneven, BlocksDifferByAtMostOne) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 13;
region R = [1..n, 1..n];
var A : [R] double;
procedure main() { [R] A := 0.0; }
)");
  const zir::IntEnv env = p.default_env();
  const BlockDist dist(p, env, Mesh{4, 4});
  long long min_e = 100;
  long long max_e = 0;
  for (int r = 0; r < 4; ++r) {
    const Box b = dist.owned(Mesh{4, 4}.rank_of(r, 0));
    min_e = std::min(min_e, b.extent(0));
    max_e = std::max(max_e, b.extent(0));
  }
  EXPECT_GE(min_e, 3);
  EXPECT_LE(max_e, 4);
}

TEST(EvalRegion, LoopVarDependentBounds) {
  zir::Program p;
  const zir::ConfigId n = p.add_config({"n", 10});
  const zir::LoopVarId i = p.add_loop_var({"i"});
  zir::RegionSpec spec;
  spec.dims.push_back({zir::IntExpr::loop_var(i), zir::IntExpr::loop_var(i)});
  spec.dims.push_back({zir::IntExpr::constant(1), zir::IntExpr::config(n)});
  zir::IntEnv env = p.default_env();
  env.loop_bound[i.index()] = true;
  env.loop_values[i.index()] = 4;
  EXPECT_EQ(eval_region(spec, env), box2(4, 4, 1, 10));
}

}  // namespace
}  // namespace zc::rt
