#include <gtest/gtest.h>

#include "src/parser/parser.h"
#include "src/runtime/darray.h"

namespace zc::rt {
namespace {

Box box2(long long lo0, long long hi0, long long lo1, long long hi1) {
  return Box::make(2, {lo0, lo1, 0}, {hi0, hi1, 0});
}

TEST(LocalArray, StorageIncludesFluffClampedToDeclared) {
  const Box declared = box2(0, 17, 0, 17);
  const Box owned = box2(0, 8, 0, 8);  // corner processor
  const LocalArray la(owned, declared, {1, 1, 0});
  // No fluff past the declared region on the low sides; one cell on high.
  EXPECT_EQ(la.storage_box(), box2(0, 9, 0, 9));
}

TEST(LocalArray, InteriorStorageHasFluffAllAround) {
  const Box declared = box2(0, 17, 0, 17);
  const Box owned = box2(9, 12, 9, 12);
  const LocalArray la(owned, declared, {2, 2, 0});
  EXPECT_EQ(la.storage_box(), box2(7, 14, 7, 14));
}

TEST(LocalArray, EmptyOwnedAllocatesNothing) {
  Box owned = box2(5, 4, 0, 3);  // empty
  const LocalArray la(owned, box2(0, 9, 0, 9), {1, 1, 0});
  EXPECT_EQ(la.allocation_size(), 0u);
}

TEST(LocalArray, ElementAccessRoundTrip) {
  const Box owned = box2(2, 5, 3, 7);
  LocalArray la(owned, box2(0, 9, 0, 9), {1, 1, 0});
  la.at(3, 4) = 42.0;
  la.at(2, 3) = -1.0;
  EXPECT_DOUBLE_EQ(la.at(3, 4), 42.0);
  EXPECT_DOUBLE_EQ(la.at(2, 3), -1.0);
  // Fluff cells are addressable too.
  la.at(1, 3) = 7.0;
  EXPECT_DOUBLE_EQ(la.at(1, 3), 7.0);
}

TEST(LocalArray, ReadWriteBoxRowMajor) {
  const Box owned = box2(0, 3, 0, 3);
  LocalArray la(owned, owned, {0, 0, 0});
  const Box sub = box2(1, 2, 1, 3);
  const std::vector<double> in = {1, 2, 3, 4, 5, 6};
  la.write_box(sub, in.data());
  EXPECT_DOUBLE_EQ(la.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(la.at(1, 3), 3.0);
  EXPECT_DOUBLE_EQ(la.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(la.at(2, 3), 6.0);
  std::vector<double> out(6);
  la.read_box(sub, out.data());
  EXPECT_EQ(out, in);
}

TEST(LocalArray, Rank3ReadWrite) {
  const Box owned = Box::make(3, {0, 0, 0}, {2, 2, 3});
  LocalArray la(owned, owned, {0, 0, 0});
  const Box sub = Box::make(3, {1, 1, 1}, {2, 2, 2});
  const std::vector<double> in = {1, 2, 3, 4, 5, 6, 7, 8};
  la.write_box(sub, in.data());
  EXPECT_DOUBLE_EQ(la.at(1, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(la.at(1, 1, 2), 2.0);
  EXPECT_DOUBLE_EQ(la.at(1, 2, 1), 3.0);
  EXPECT_DOUBLE_EQ(la.at(2, 2, 2), 8.0);
  std::vector<double> out(8);
  la.read_box(sub, out.data());
  EXPECT_EQ(out, in);
}

TEST(LocalArray, Rank1ReadWrite) {
  const Box owned = Box::make(1, {3, 0, 0}, {9, 0, 0});
  LocalArray la(owned, owned, {1, 0, 0});
  const Box sub = Box::make(1, {4, 0, 0}, {6, 0, 0});
  const std::vector<double> in = {10, 20, 30};
  la.write_box(sub, in.data());
  EXPECT_DOUBLE_EQ(la.at(5), 20.0);
  std::vector<double> out(3);
  la.read_box(sub, out.data());
  EXPECT_EQ(out, in);
}

TEST(LocalArray, Fill) {
  const Box owned = box2(0, 2, 0, 2);
  LocalArray la(owned, owned, {0, 0, 0});
  la.fill(3.5);
  EXPECT_DOUBLE_EQ(la.at(1, 1), 3.5);
}

TEST(FluffWidths, MaxAbsOffsetPerDim) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction e = [0, 1], big = [-2, 1], diag = [1, -1];
var A : [R] double;
procedure main() { [R] A := A@e + A@big + A@diag; }
)");
  const auto w = fluff_widths(p);
  EXPECT_EQ(w[0], 2);
  EXPECT_EQ(w[1], 1);
  EXPECT_EQ(w[2], 0);
}

}  // namespace
}  // namespace zc::rt
