// Golden bit-identity suite for the event-driven engine core: every
// observable of a run — RunResult scalars/checksums/clock, the paper's
// communication counts, per-processor counters, exact trace aggregates,
// and the windowed timeline — must match the lockstep reference
// interpreter bit for bit, across all four paper benchmarks, the full
// option matrix, and every IRONMAN library binding.
//
// This is the safety net behind RunConfig::engine defaulting to kEvent:
// the lockstep core is the executable specification, the event core the
// optimization, and this suite is the proof obligation between them
// (DESIGN.md §15 has the argument for why equality is achievable at all).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/comm/optimizer.h"
#include "src/exec/sweep.h"
#include "src/machine/model.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"
#include "src/trace/stats.h"
#include "src/tseries/tseries.h"

namespace {

using namespace zc;

constexpr int kProcs = 16;

/// Bitwise double equality: the contract is bit-identity, and operator==
/// would wave -0.0 == 0.0 and NaN != NaN through.
bool bits_eq(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

std::vector<std::string> bench_names() { return {"tomcatv", "swm", "simple", "sp"}; }

/// The seven optimization configurations report_test pins pass provenance
/// on: the four levels plus inter-block, max-latency, and hybrid variants.
std::vector<std::pair<std::string, comm::OptOptions>> option_matrix() {
  using comm::CombineHeuristic;
  using comm::OptLevel;
  using comm::OptOptions;

  std::vector<std::pair<std::string, comm::OptOptions>> v;
  v.emplace_back("baseline", OptOptions::for_level(OptLevel::kBaseline));
  v.emplace_back("rr", OptOptions::for_level(OptLevel::kRR));
  v.emplace_back("cc", OptOptions::for_level(OptLevel::kCC));
  v.emplace_back("pl", OptOptions::for_level(OptLevel::kPL));

  OptOptions inter = OptOptions::for_level(OptLevel::kPL);
  inter.inter_block = true;
  v.emplace_back("pl+inter", inter);

  OptOptions maxlat = OptOptions::for_level(OptLevel::kPL);
  maxlat.heuristic = CombineHeuristic::kMaxLatency;
  v.emplace_back("pl/maxlat", maxlat);

  OptOptions hybrid = OptOptions::for_level(OptLevel::kPL);
  hybrid.heuristic = CombineHeuristic::kHybrid;
  v.emplace_back("pl/hybrid", hybrid);
  return v;
}

/// Every (machine, library) pair the bindings admit: both T3D libraries
/// and all three Paragon NX variants.
struct LibraryCase {
  const char* name;
  machine::MachineModel model;
  ironman::CommLibrary library;
};

std::vector<LibraryCase> library_cases() {
  return {
      {"t3d/pvm", machine::t3d_model(), ironman::CommLibrary::kPVM},
      {"t3d/shmem", machine::t3d_model(), ironman::CommLibrary::kSHMEM},
      {"paragon/nx-sync", machine::paragon_model(), ironman::CommLibrary::kNXSync},
      {"paragon/nx-async", machine::paragon_model(), ironman::CommLibrary::kNXAsync},
      {"paragon/nx-callback", machine::paragon_model(), ironman::CommLibrary::kNXCallback},
  };
}

sim::RunResult run_once(const zir::Program& program, const comm::CommPlan& plan,
                        const LibraryCase& lc, sim::EngineKind engine, int procs,
                        const std::map<std::string, long long>& configs,
                        trace::Recorder* recorder = nullptr,
                        tseries::SimSeries* timeline = nullptr) {
  sim::RunConfig cfg;
  cfg.machine = lc.model;
  cfg.library = lc.library;
  cfg.procs = procs;
  cfg.engine = engine;
  cfg.config_overrides = configs;
  cfg.recorder = recorder;
  cfg.timeline = timeline;
  return sim::run_program(program, plan, cfg);
}

void expect_bit_identical(const sim::RunResult& lock, const sim::RunResult& event,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_TRUE(bits_eq(lock.elapsed_seconds, event.elapsed_seconds))
      << lock.elapsed_seconds << " vs " << event.elapsed_seconds;
  EXPECT_EQ(lock.dynamic_count, event.dynamic_count);
  EXPECT_EQ(lock.total_messages, event.total_messages);
  EXPECT_EQ(lock.total_bytes, event.total_bytes);
  EXPECT_EQ(lock.reduction_count, event.reduction_count);
  EXPECT_EQ(lock.center_proc, event.center_proc);

  ASSERT_EQ(lock.per_proc.size(), event.per_proc.size());
  for (std::size_t p = 0; p < lock.per_proc.size(); ++p) {
    EXPECT_EQ(lock.per_proc[p].communications, event.per_proc[p].communications) << "proc " << p;
    EXPECT_EQ(lock.per_proc[p].messages_sent, event.per_proc[p].messages_sent) << "proc " << p;
    EXPECT_EQ(lock.per_proc[p].messages_received, event.per_proc[p].messages_received)
        << "proc " << p;
    EXPECT_EQ(lock.per_proc[p].bytes_sent, event.per_proc[p].bytes_sent) << "proc " << p;
    EXPECT_EQ(lock.per_proc[p].bytes_received, event.per_proc[p].bytes_received) << "proc " << p;
  }

  ASSERT_EQ(lock.scalars.size(), event.scalars.size());
  for (const auto& [name, value] : lock.scalars) {
    ASSERT_TRUE(event.scalars.count(name) != 0) << name;
    EXPECT_TRUE(bits_eq(value, event.scalars.at(name)))
        << name << ": " << value << " vs " << event.scalars.at(name);
  }
  ASSERT_EQ(lock.checksums.size(), event.checksums.size());
  for (const auto& [name, value] : lock.checksums) {
    ASSERT_TRUE(event.checksums.count(name) != 0) << name;
    EXPECT_TRUE(bits_eq(value, event.checksums.at(name)))
        << name << ": " << value << " vs " << event.checksums.at(name);
  }

  // The sweep/serve determinism fingerprint folds all of the above; if it
  // differs something escaped the field-by-field checks.
  EXPECT_EQ(exec::result_checksum(lock), exec::result_checksum(event));
}

// The headline golden: 4 benchmarks x 7 option sets x 5 library bindings,
// event vs lockstep, full RunResult bit-identity.
TEST(EngineEvent, BitIdenticalAcrossBenchmarksOptionsAndLibraries) {
  for (const std::string& bench : bench_names()) {
    const programs::BenchmarkInfo& info = programs::benchmark(bench);
    const zir::Program program = parser::parse_program(info.source);
    for (const auto& [opt_label, opts] : option_matrix()) {
      const comm::CommPlan plan = comm::plan_communication(program, opts);
      for (const LibraryCase& lc : library_cases()) {
        const sim::RunResult lock = run_once(program, plan, lc, sim::EngineKind::kLockstep,
                                             kProcs, info.test_configs);
        const sim::RunResult event = run_once(program, plan, lc, sim::EngineKind::kEvent,
                                              kProcs, info.test_configs);
        expect_bit_identical(lock, event, bench + " / " + opt_label + " / " + lc.name);
      }
    }
  }
}

// Exact trace aggregates: the full per-call / per-primitive / per-channel /
// histogram statistics must agree, not just the run totals. The stable CSV
// rendering makes the comparison total.
TEST(EngineEvent, TraceStatsMatchLockstepExactly) {
  for (const std::string& bench : bench_names()) {
    const programs::BenchmarkInfo& info = programs::benchmark(bench);
    const zir::Program program = parser::parse_program(info.source);
    const comm::CommPlan plan =
        comm::plan_communication(program, comm::OptOptions::for_level(comm::OptLevel::kPL));
    for (const LibraryCase& lc : library_cases()) {
      if (lc.library != ironman::CommLibrary::kPVM &&
          lc.library != ironman::CommLibrary::kSHMEM &&
          lc.library != ironman::CommLibrary::kNXAsync) {
        continue;  // one representative binding per primitive family
      }
      trace::Recorder lock_rec(kProcs);
      trace::Recorder event_rec(kProcs);
      const sim::RunResult lock = run_once(program, plan, lc, sim::EngineKind::kLockstep,
                                           kProcs, info.test_configs, &lock_rec);
      const sim::RunResult event = run_once(program, plan, lc, sim::EngineKind::kEvent,
                                            kProcs, info.test_configs, &event_rec);
      expect_bit_identical(lock, event, bench + " / traced / " + lc.name);
      EXPECT_EQ(trace::compute_stats(lock_rec).to_csv(), trace::compute_stats(event_rec).to_csv())
          << bench << " / " << lc.name;
      // Attaching a recorder never perturbs the simulation in either core.
      const sim::RunResult bare = run_once(program, plan, lc, sim::EngineKind::kEvent, kProcs,
                                           info.test_configs);
      EXPECT_EQ(exec::result_checksum(bare), exec::result_checksum(event))
          << bench << " / " << lc.name;
    }
  }
}

// The windowed timeline reconciles identically: same window sums, same
// totals, bit for bit (the CSV renders the raw doubles).
TEST(EngineEvent, TimelineMatchesLockstepExactly) {
  for (const std::string& bench : bench_names()) {
    const programs::BenchmarkInfo& info = programs::benchmark(bench);
    const zir::Program program = parser::parse_program(info.source);
    const comm::CommPlan plan =
        comm::plan_communication(program, comm::OptOptions::for_level(comm::OptLevel::kPL));
    const LibraryCase lc = library_cases()[0];  // t3d/pvm
    tseries::SimSeries lock_series(kProcs);
    tseries::SimSeries event_series(kProcs);
    run_once(program, plan, lc, sim::EngineKind::kLockstep, kProcs, info.test_configs, nullptr,
             &lock_series);
    run_once(program, plan, lc, sim::EngineKind::kEvent, kProcs, info.test_configs, nullptr,
             &event_series);
    EXPECT_EQ(lock_series.to_csv(), event_series.to_csv()) << bench;
  }
}

// Dynamic (loop-variable-dependent) regions exercise the event core's keyed
// geometry cache; oddball processor counts exercise ragged decompositions
// and empty owned blocks.
TEST(EngineEvent, BitIdenticalOnRaggedMeshes) {
  const programs::BenchmarkInfo& info = programs::benchmark("simple");
  const zir::Program program = parser::parse_program(info.source);
  const comm::CommPlan plan =
      comm::plan_communication(program, comm::OptOptions::for_level(comm::OptLevel::kPL));
  const LibraryCase lc = library_cases()[0];
  for (const int procs : {1, 3, 7, 13, 61}) {
    const sim::RunResult lock =
        run_once(program, plan, lc, sim::EngineKind::kLockstep, procs, info.test_configs);
    const sim::RunResult event =
        run_once(program, plan, lc, sim::EngineKind::kEvent, procs, info.test_configs);
    expect_bit_identical(lock, event, "simple / pl / procs=" + std::to_string(procs));
  }
}

// The scale target: all four table benchmarks complete at 4096 simulated
// processors under the event core, with sane counts and finite numerics.
// (engine_event_4096_smoke in tests/CMakeLists.txt runs exactly this case
// as the smoke-tier ctest.)
TEST(EngineEvent, Procs4096Smoke) {
  for (const std::string& bench : bench_names()) {
    const programs::BenchmarkInfo& info = programs::benchmark(bench);
    const zir::Program program = parser::parse_program(info.source);
    const comm::CommPlan plan =
        comm::plan_communication(program, comm::OptOptions::for_level(comm::OptLevel::kPL));
    const LibraryCase lc = library_cases()[0];
    const sim::RunResult r =
        run_once(program, plan, lc, sim::EngineKind::kEvent, 4096, info.test_configs);
    SCOPED_TRACE(bench);
    EXPECT_EQ(r.mesh.procs(), 4096);
    EXPECT_GT(r.dynamic_count, 0);
    EXPECT_GT(r.elapsed_seconds, 0.0);
    for (const auto& [name, value] : r.checksums) {
      EXPECT_TRUE(std::isfinite(value)) << name;
    }
  }
}

// Checksums are a property of the problem, not the machine size: growing
// the mesh leaves every checksum and scalar equal to relative 1e-9 (the
// same elements exist, merely owned by more processors; only the FP
// summation association shifts with the partition), with lockstep agreeing
// *bitwise* at every size. This is the "counts scale, checksums hold"
// contract the scripts/check.sh 1024-processor probe diffs for.
TEST(EngineEvent, ChecksumsInvariantAcrossMeshSizes) {
  const programs::BenchmarkInfo& info = programs::benchmark("tomcatv");
  const zir::Program program = parser::parse_program(info.source);
  const comm::CommPlan plan =
      comm::plan_communication(program, comm::OptOptions::for_level(comm::OptLevel::kPL));
  const LibraryCase lc = library_cases()[0];

  const sim::RunResult base =
      run_once(program, plan, lc, sim::EngineKind::kLockstep, 16, info.test_configs);
  for (const int procs : {16, 64, 256}) {
    const sim::RunResult lock =
        run_once(program, plan, lc, sim::EngineKind::kLockstep, procs, info.test_configs);
    const sim::RunResult event =
        run_once(program, plan, lc, sim::EngineKind::kEvent, procs, info.test_configs);
    expect_bit_identical(lock, event, "tomcatv / procs=" + std::to_string(procs));
    for (const auto& [name, value] : base.checksums) {
      const double tol = 1e-9 * std::max(1.0, std::abs(value));
      EXPECT_NEAR(value, event.checksums.at(name), tol) << name << " at procs=" << procs;
    }
    for (const auto& [name, value] : base.scalars) {
      const double tol = 1e-9 * std::max(1.0, std::abs(value));
      EXPECT_NEAR(value, event.scalars.at(name), tol) << name << " at procs=" << procs;
    }
  }
}

}  // namespace
