// Tests of the §3.2 synthetic ping benchmark (Figure 6 machinery).
#include <gtest/gtest.h>

#include "src/sim/ping.h"
#include "src/sim/transport.h"

namespace zc::sim {
namespace {

using ironman::CommLibrary;

TEST(Ping, DefaultSizesSweepTo4096Doubles) {
  const auto sizes = default_ping_sizes();
  EXPECT_EQ(sizes.front(), 1);
  EXPECT_EQ(sizes.back(), 4096);
  EXPECT_EQ(sizes.size(), 13u);
}

TEST(Ping, ExposedCostMatchesAnalyticModelWhenFullyOverlapped) {
  // The busy loops hide all transmission, so the per-message exposed cost
  // must equal the analytic per-call CPU cost model (within the small
  // barrier-stage term for SHMEM).
  for (const auto& [model, lib] : std::vector<std::pair<machine::MachineModel, CommLibrary>>{
           {machine::t3d_model(), CommLibrary::kPVM},
           {machine::t3d_model(), CommLibrary::kSHMEM},
           {machine::paragon_model(), CommLibrary::kNXSync},
           {machine::paragon_model(), CommLibrary::kNXAsync},
           {machine::paragon_model(), CommLibrary::kNXCallback}}) {
    Transport tx(model, lib);
    const PingResult r = run_ping(model, lib, {8, 512, 4096}, /*reps=*/200);
    for (const PingPoint& pt : r.points) {
      const double analytic = tx.exposed_overhead(pt.doubles * 8);
      EXPECT_NEAR(pt.exposed, analytic, 0.10 * analytic + 2e-6)
          << ironman::to_string(lib) << " at " << pt.doubles << " doubles";
    }
  }
}

TEST(Ping, KneeNear512DoublesOnBothMachines) {
  // Paper §3.2: "for both the Paragon and the T3D, the knee occurs at
  // about 512 doubles (4K bytes)".
  const auto sizes = default_ping_sizes();
  const PingResult pvm = run_ping(machine::t3d_model(), CommLibrary::kPVM, sizes, 500);
  EXPECT_GE(pvm.knee_doubles(), 256);
  EXPECT_LE(pvm.knee_doubles(), 2048);
  const PingResult nx = run_ping(machine::paragon_model(), CommLibrary::kNXSync, sizes, 500);
  EXPECT_GE(nx.knee_doubles(), 256);
  EXPECT_LE(nx.knee_doubles(), 2048);
}

TEST(Ping, OverheadIsFlatBelowKneeLinearAbove) {
  const auto sizes = default_ping_sizes();
  const PingResult r = run_ping(machine::t3d_model(), CommLibrary::kPVM, sizes, 500);
  // Below the knee, 64x size growth changes the overhead by < 2x.
  const double at1 = r.points[0].exposed;
  const double at64 = r.points[6].exposed;
  EXPECT_LT(at64, 2.0 * at1);
  // Above the knee, doubling the size costs nearly 2x.
  const double at2048 = r.points[11].exposed;
  const double at4096 = r.points[12].exposed;
  EXPECT_GT(at4096, 1.5 * at2048);
}

TEST(Ping, ShmemBelowPvmAcrossSizes) {
  const auto sizes = default_ping_sizes();
  const PingResult pvm = run_ping(machine::t3d_model(), CommLibrary::kPVM, sizes, 300);
  const PingResult shm = run_ping(machine::t3d_model(), CommLibrary::kSHMEM, sizes, 300);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_LT(shm.points[i].exposed, pvm.points[i].exposed) << sizes[i];
  }
  // ... and by roughly 10% at small-to-mid sizes (paper §3.2).
  const double ratio = shm.points[6].exposed / pvm.points[6].exposed;
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 0.97);
}

TEST(Ping, ParagonAsyncNoBetterCallbackWorse) {
  const auto sizes = default_ping_sizes();
  const PingResult sync = run_ping(machine::paragon_model(), CommLibrary::kNXSync, sizes, 300);
  const PingResult async = run_ping(machine::paragon_model(), CommLibrary::kNXAsync, sizes, 300);
  const PingResult cb = run_ping(machine::paragon_model(), CommLibrary::kNXCallback, sizes, 300);
  for (std::size_t i = 0; i < 10; ++i) {  // up to 512 doubles
    EXPECT_GE(async.points[i].exposed, sync.points[i].exposed * 0.999) << sizes[i];
    EXPECT_GT(cb.points[i].exposed, async.points[i].exposed) << sizes[i];
  }
}

TEST(Ping, DeterministicAcrossRuns) {
  const PingResult a = run_ping(machine::t3d_model(), CommLibrary::kSHMEM, {64}, 100);
  const PingResult b = run_ping(machine::t3d_model(), CommLibrary::kSHMEM, {64}, 100);
  EXPECT_EQ(a.points[0].exposed, b.points[0].exposed);
}

}  // namespace
}  // namespace zc::sim
