// Concurrency pins for metrics::Registry, written for the tsan tier: the
// serve subsystem merges per-request scratch registries and observes
// latency histograms from worker threads while stats / Prometheus scrapes
// render concurrently — none of that may race, and the totals must come
// out exact once the writers join.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/support/json.h"
#include "src/support/metrics.h"

namespace zc::metrics {
namespace {

const std::vector<double>& test_bounds() {
  static const std::vector<double> bounds = {0.001, 0.01, 0.1, 1.0};
  return bounds;
}

TEST(MetricsConcurrency, ScratchMergesAndScrapesRaceCleanly) {
  constexpr int kWriters = 8;
  constexpr int kMergesPerWriter = 40;

  Registry target;
  std::atomic<bool> stop{false};

  // Readers render every exposition format in a loop while writers merge —
  // snapshot-then-render must never observe a torn histogram.
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string prom = target.to_prometheus();
      EXPECT_EQ(prom.find("le=\"nan\""), std::string::npos);
      (void)target.to_json();
      (void)target.counter("requests");
      const Histogram* h = target.find_histogram("latency");
      if (h != nullptr && h->count > 0) {
        const double p50 = h->quantile(0.5);
        EXPECT_GE(p50, h->min);
        EXPECT_LE(p50, h->max);
      }
    }
  });

  {
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kMergesPerWriter; ++i) {
          // The serve request pattern: publish into a scratch registry
          // under a ScopedRegistry redirect, then fold it into the shared
          // one (snapshot-then-apply).
          Registry scratch;
          {
            ScopedRegistry scoped(scratch);
            Registry::current().count("requests");
            Registry::current().count("writer." + std::to_string(w));
            Registry::current().observe("latency", 0.001 * (i % 7), test_bounds());
            Registry::current().gauge("depth", static_cast<double>(i));
          }
          target.merge_from(scratch);
          // And the direct pattern: workers observing into the shared
          // registry with no redirect.
          target.observe("latency.direct", 0.05, test_bounds());
        }
      });
    }
    for (std::thread& t : writers) t.join();
  }
  stop.store(true);
  scraper.join();

  // Exact totals once the writers join: counters add, histogram counts and
  // bucket sums agree with the number of observations.
  constexpr long long kTotal = static_cast<long long>(kWriters) * kMergesPerWriter;
  EXPECT_EQ(target.counter("requests"), kTotal);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(target.counter("writer." + std::to_string(w)), kMergesPerWriter);
  }
  const Histogram* merged = target.find_histogram("latency");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count, kTotal);
  long long bucket_sum = 0;
  for (const long long b : merged->buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kTotal) << "every observation lands in exactly one bucket";
  const Histogram* direct = target.find_histogram("latency.direct");
  ASSERT_NE(direct, nullptr);
  EXPECT_EQ(direct->count, kTotal);

  // The final exposition agrees with the totals, cumulative buckets ending
  // at +Inf == _count.
  const std::string prom = target.to_prometheus();
  EXPECT_NE(prom.find("requests " + std::to_string(kTotal)), std::string::npos);
  EXPECT_NE(prom.find("latency_bucket{le=\"+Inf\"} " + std::to_string(kTotal)),
            std::string::npos);
}

TEST(MetricsConcurrency, QuantilesStayWithinObservedRangeUnderMergeStorm) {
  Registry target;
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        Registry scratch;
        // Values straddle every bucket including overflow.
        scratch.observe("q", 0.0005 * (t + 1), test_bounds());
        scratch.observe("q", 0.5, test_bounds());
        scratch.observe("q", 5.0, test_bounds());
        target.merge_from(scratch);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const Histogram* h = target.find_histogram("q");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<long long>(kThreads) * kRounds * 3);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h->quantile(q);
    EXPECT_GE(v, h->min) << "q=" << q;
    EXPECT_LE(v, h->max) << "q=" << q << " (overflow must not extrapolate)";
  }
  EXPECT_DOUBLE_EQ(h->max, 5.0);
}

}  // namespace
}  // namespace zc::metrics
