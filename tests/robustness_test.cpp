// Edge cases across the stack: degenerate meshes, over-decomposition,
// empty regions, radius-2 offsets on tiny blocks, printer round-trips on
// the full benchmark suite, and runtime validation errors.
#include <gtest/gtest.h>

#include <cmath>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"
#include "src/zir/printer.h"

namespace zc {
namespace {

sim::RunResult run(std::string_view src, int procs,
                   std::map<std::string, long long> overrides = {},
                   comm::OptLevel level = comm::OptLevel::kPL) {
  const zir::Program p = parser::parse_program(src);
  const comm::CommPlan plan = comm::plan_communication(p, comm::OptOptions::for_level(level));
  sim::RunConfig cfg;
  cfg.procs = procs;
  cfg.config_overrides = std::move(overrides);
  return sim::run_program(p, plan, cfg);
}

constexpr std::string_view kTinyStencil = R"(
program tiny;
config n : integer = 4;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction east = [0, 1], sw = [1, -1];
var A, B : [R] double;
procedure main() {
  [R] A := Index1 * 10.0 + Index2;
  [R] B := 0.0;
  [I] B := A@east + A@sw;
}
)";

TEST(EdgeCases, OverDecomposedMeshMatchesReference) {
  // 4x4 problem on up to 64 processors: most own nothing; some blocks are
  // empty. The numbers must not change.
  const sim::RunResult ref = run(kTinyStencil, 1);
  for (const int procs : {4, 16, 64}) {
    const sim::RunResult r = run(kTinyStencil, procs);
    EXPECT_EQ(r.checksums.at("B"), ref.checksums.at("B")) << procs;
  }
}

TEST(EdgeCases, PrimeProcessorCountMakesFlatMesh) {
  const sim::RunResult r = run(kTinyStencil, 7, {{"n", 14}});
  EXPECT_EQ(r.mesh.rows, 1);
  EXPECT_EQ(r.mesh.cols, 7);
  const sim::RunResult ref = run(kTinyStencil, 1, {{"n", 14}});
  EXPECT_EQ(r.checksums.at("B"), ref.checksums.at("B"));
}

TEST(EdgeCases, Radius2OffsetsOnWidth2Blocks) {
  // Blocks narrower than the shift radius: a needed slice spans two
  // processors' blocks.
  constexpr std::string_view src = R"(
program r2;
config n : integer = 16;
region R = [1..n, 1..n];
region I = [3..n-2, 3..n-2];
direction east2 = [0, 2], north2 = [-2, 0];
var A, B : [R] double;
procedure main() {
  [R] A := Index1 * 100.0 + Index2;
  [R] B := 0.0;
  [I] B := A@east2 + A@north2;
}
)";
  const sim::RunResult ref = run(src, 1);
  for (const int procs : {16, 64}) {
    const sim::RunResult r = run(src, procs);
    EXPECT_EQ(r.checksums.at("B"), ref.checksums.at("B")) << procs;
  }
}

TEST(EdgeCases, EmptyRegionStatementIsANoop) {
  constexpr std::string_view src = R"(
program empt;
config n : integer = 8;
config k : integer = 0;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := 1.0;
  [R] B := 2.0;
  [1..k, 1..n-1] B := A@east + 100.0;   -- empty when k = 0
}
)";
  const sim::RunResult r = run(src, 4);
  EXPECT_DOUBLE_EQ(r.checksums.at("B"), 2.0 * 64);  // untouched
  // With k = 3 the statement takes effect.
  const sim::RunResult r2 = run(src, 4, {{"k", 3}});
  EXPECT_GT(r2.checksums.at("B"), 100.0 * 7 * 3);
}

TEST(EdgeCases, StatementRegionOutsideDeclaredThrows) {
  constexpr std::string_view src = R"(
program oob;
config n : integer = 8;
region R = [1..n, 1..n];
var A : [R] double;
procedure main() {
  [0..n, 1..n] A := 1.0;   -- row 0 is outside R
}
)";
  EXPECT_THROW(run(src, 4), Error);
}

TEST(EdgeCases, ShiftPastDeclaredBorderThrows) {
  constexpr std::string_view src = R"(
program shiftoob;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := 0.0;
  [R] B := A@east;   -- reads column n+1, outside R
}
)";
  EXPECT_THROW(run(src, 4), Error);
}

TEST(EdgeCases, UnknownConfigOverrideThrows) {
  EXPECT_THROW(run(kTinyStencil, 4, {{"bogus", 1}}), Error);
}

TEST(EdgeCases, NegativeStepLoopRuns) {
  constexpr std::string_view src = R"(
program down;
config n : integer = 8;
region R = [1..n, 1..n];
direction south = [1, 0];
var A : [R] double;
procedure main() {
  [R] A := Index1;
  for i in n-1..1 by -1 {
    [i, 1..n] A := A + A@south;
  }
}
)";
  const sim::RunResult ref = run(src, 1);
  const sim::RunResult r = run(src, 4);
  EXPECT_NEAR(r.checksums.at("A"), ref.checksums.at("A"),
              1e-9 * std::fabs(ref.checksums.at("A")));
  EXPECT_TRUE(std::isfinite(r.checksums.at("A")));
}

TEST(EdgeCases, SingleElementRegions) {
  constexpr std::string_view src = R"(
program single;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := Index1 * 10.0 + Index2;
  [R] B := 0.0;
  [4, 4] B := A@east * 2.0;   -- one element, possibly on a remote proc
}
)";
  for (const int procs : {1, 4, 16}) {
    const sim::RunResult r = run(src, procs);
    EXPECT_DOUBLE_EQ(r.checksums.at("B"), 2.0 * 45.0) << procs;  // A(4,5) = 45
  }
}

TEST(PrinterRoundTrip, BenchmarksReachAFixedPoint) {
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p1 = parser::parse_program(info.source);
    const std::string s1 = zir::to_source(p1);
    const zir::Program p2 = parser::parse_program(s1);
    const std::string s2 = zir::to_source(p2);
    EXPECT_EQ(s1, s2) << info.name;  // printing is a fixed point
    EXPECT_EQ(p1.stmt_count(), p2.stmt_count()) << info.name;
    EXPECT_EQ(p1.expr_count(), p2.expr_count()) << info.name;
  }
}

TEST(PrinterRoundTrip, ReparsedBenchmarksPlanIdentically) {
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p1 = parser::parse_program(info.source);
    const zir::Program p2 = parser::parse_program(zir::to_source(p1));
    for (const auto level :
         {comm::OptLevel::kBaseline, comm::OptLevel::kRR, comm::OptLevel::kPL}) {
      const auto o = comm::OptOptions::for_level(level);
      EXPECT_EQ(comm::plan_communication(p1, o).static_count(),
                comm::plan_communication(p2, o).static_count())
          << info.name << " " << comm::to_string(level);
    }
  }
}

TEST(Counters, MessageAndByteTotalsConsistent) {
  const sim::RunResult r = run(kTinyStencil, 4, {{"n", 8}});
  long long sent = 0;
  long long received = 0;
  long long bytes_sent = 0;
  long long bytes_received = 0;
  for (const auto& c : r.per_proc) {
    sent += c.messages_sent;
    received += c.messages_received;
    bytes_sent += c.bytes_sent;
    bytes_received += c.bytes_received;
  }
  EXPECT_EQ(sent, received);
  EXPECT_EQ(bytes_sent, bytes_received);
  EXPECT_EQ(sent, r.total_messages);
  EXPECT_EQ(bytes_sent, r.total_bytes);
}

TEST(Counters, ParticipationNeverExceedsDynamicCount) {
  const zir::Program p = parser::parse_program(programs::benchmark("tomcatv").source);
  const comm::CommPlan plan =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kCC));
  sim::RunConfig cfg;
  cfg.procs = 16;
  cfg.config_overrides = programs::benchmark("tomcatv").test_configs;
  const sim::RunResult r = sim::run_program(p, plan, cfg);
  for (const auto& c : r.per_proc) {
    EXPECT_LE(c.communications, r.dynamic_count);
  }
  EXPECT_GT(r.per_proc[r.center_proc].communications, 0);
}

}  // namespace
}  // namespace zc
