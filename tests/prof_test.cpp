// Tests for the host-side profiler (src/prof): span-tree invariants, the
// folded-stack and JSON exports, multi-threaded attachment, the
// perf-budget gate, and — the load-bearing contract — that profiling never
// changes what the toolchain produces (plans and run results are
// bit-identical profiled or not).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <regex>
#include <sstream>
#include <thread>
#include <vector>

#include "src/comm/optimizer.h"
#include "src/driver/driver.h"
#include "src/driver/report.h"
#include "src/parser/parser.h"
#include "src/prof/procstat.h"
#include "src/prof/prof.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"
#include "src/support/json.h"

namespace {

using namespace zc;

/// Burns a little real time so spans have measurable durations.
void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  volatile double sink = 0.0;
  while (std::chrono::steady_clock::now() < until) sink = sink + 1.0;
}

prof::Profiler::Tree small_tree(prof::Profiler& p) {
  prof::Attach attach(&p);
  {
    ZC_PROF_SPAN("root");
    {
      ZC_PROF_SPAN("child a");  // space: exercises folded-frame sanitizing
      prof::add_bytes(128);
      spin_for(std::chrono::microseconds(200));
    }
    {
      ZC_PROF_SPAN("child-b");
      spin_for(std::chrono::microseconds(200));
      { ZC_PROF_SPAN("leaf"); spin_for(std::chrono::microseconds(100)); }
    }
  }
  return p.tree();
}

TEST(ProfTest, DisabledByDefault) {
  EXPECT_FALSE(prof::enabled());
  // No profiler attached: spans and byte attributions are no-ops.
  { ZC_PROF_SPAN("nobody-listens"); prof::add_bytes(1); }
  prof::Profiler p;
  EXPECT_EQ(p.tree().nodes.size(), 0u);
  EXPECT_EQ(p.thread_count(), 0);
}

TEST(ProfTest, NullAttachIsNoOp) {
  prof::Attach attach(nullptr);
  EXPECT_FALSE(prof::enabled());
  { ZC_PROF_SPAN("still-off"); }
}

TEST(ProfTest, TreeInvariants) {
  prof::Profiler p;
  const prof::Profiler::Tree t = small_tree(p);
  ASSERT_EQ(t.roots.size(), 1u);
  ASSERT_EQ(t.nodes.size(), 4u);

  // self + Σ children == total, exactly, at every node.
  double self_sum = 0.0;
  for (int i = 0; i < static_cast<int>(t.nodes.size()); ++i) {
    double children = 0.0;
    for (const int c : t.nodes[i].children) children += t.nodes[c].total_seconds;
    EXPECT_DOUBLE_EQ(t.nodes[i].total_seconds, t.self_seconds(i) + children);
    EXPECT_GE(t.self_seconds(i), 0.0);
    self_sum += t.self_seconds(i);
  }
  // The self times partition the wall time.
  EXPECT_NEAR(self_sum, t.wall_seconds(), 1e-12);

  const prof::Node& root = t.nodes[t.roots[0]];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.count, 1);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(t.nodes[root.children[0]].name, "child a");
  EXPECT_EQ(t.nodes[root.children[0]].bytes, 128);
  EXPECT_GE(t.nodes[root.children[0]].total_seconds, 150e-6);
}

TEST(ProfTest, RepeatedSpansAggregate) {
  prof::Profiler p;
  {
    prof::Attach attach(&p);
    for (int i = 0; i < 10; ++i) { ZC_PROF_SPAN("loop"); }
  }
  const prof::Profiler::Tree t = p.tree();
  ASSERT_EQ(t.nodes.size(), 1u);
  EXPECT_EQ(t.nodes[0].count, 10);
}

TEST(ProfTest, OpenFramesContributeElapsedTime) {
  prof::Profiler p;
  prof::Attach attach(&p);
  ZC_PROF_SPAN("still-open");
  spin_for(std::chrono::microseconds(500));
  const prof::Profiler::Tree t = p.tree();  // snapshot mid-span
  ASSERT_EQ(t.nodes.size(), 1u);
  EXPECT_GE(t.nodes[0].total_seconds, 400e-6);
  EXPECT_EQ(t.nodes[0].count, 1);
}

TEST(ProfTest, RootTotalTracksWallTime) {
  prof::Profiler p;
  const auto start = std::chrono::steady_clock::now();
  {
    prof::Attach attach(&p);
    ZC_PROF_SPAN("main");
    spin_for(std::chrono::milliseconds(20));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double root = p.tree().wall_seconds();
  EXPECT_GT(root, 0.0);
  // The root span opens/closes within the measured window; over a 20 ms
  // window the bookkeeping outside the span is far below 1%.
  EXPECT_LE(std::abs(root - wall) / wall, 0.01);
}

TEST(ProfTest, FoldedGrammarAndSum) {
  prof::Profiler p;
  const prof::Profiler::Tree t = small_tree(p);
  const std::string folded = p.to_folded();

  // flamegraph.pl's input grammar: `frame(;frame)* <count>` per line, no
  // spaces or semicolons inside a frame name.
  const std::regex line_re(R"(^[^ ;]+(;[^ ;]+)* \d+$)");
  std::istringstream is(folded);
  std::string line;
  long long folded_total_us = 0;
  int lines = 0;
  bool saw_sanitized = false;
  while (std::getline(is, line)) {
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad folded line: " << line;
    const std::size_t sp = line.rfind(' ');
    folded_total_us += std::stoll(line.substr(sp + 1));
    if (line.find("child_a") != std::string::npos) saw_sanitized = true;
    ++lines;
  }
  EXPECT_GT(lines, 0);
  EXPECT_TRUE(saw_sanitized) << "'child a' should fold as 'child_a'";

  // Folded values are per-node self times: they must add up to the wall
  // time within rounding (each line rounds to a microsecond).
  const double wall_us = t.wall_seconds() * 1e6;
  EXPECT_NEAR(static_cast<double>(folded_total_us), wall_us,
              static_cast<double>(t.nodes.size()));
}

TEST(ProfTest, JsonExportMatchesTree) {
  prof::Profiler p;
  const prof::Profiler::Tree t = small_tree(p);
  const json::Value v = p.to_json();
  EXPECT_NEAR(v.at("wall_seconds").number, t.wall_seconds(), 1e-9);
  ASSERT_EQ(v.at("spans").array.size(), t.roots.size());
  const json::Value& root = v.at("spans").array[0];
  EXPECT_EQ(root.at("name").string, "root");
  EXPECT_EQ(root.at("count").number, 1.0);
  EXPECT_EQ(root.at("children").array.size(), 2u);
  // Round-trips through the serializer.
  const json::Value reparsed = json::parse(v.dump());
  EXPECT_EQ(reparsed.at("spans").array[0].at("name").string, "root");
}

TEST(ProfTest, ThreadsDoNotInterleave) {
  prof::Profiler p;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&p, i] {
      prof::Attach attach(&p);
      const char* name = i % 2 == 0 ? "even" : "odd";
      for (int k = 0; k < 50; ++k) {
        ZC_PROF_SPAN(name);
        {
          ZC_PROF_SPAN("inner");
          prof::add_bytes(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(p.thread_count(), 4);
  const prof::Profiler::Tree t = p.tree();
  // Merged by path: exactly "even" and "odd" roots, each with one "inner"
  // child. Interleaved stacks would nest spans under the wrong parent and
  // break this shape.
  ASSERT_EQ(t.roots.size(), 2u);
  long long root_count = 0;
  for (const int r : t.roots) {
    const prof::Node& n = t.nodes[r];
    EXPECT_TRUE(n.name == "even" || n.name == "odd");
    root_count += n.count;
    ASSERT_EQ(n.children.size(), 1u);
    EXPECT_EQ(t.nodes[n.children[0]].name, "inner");
    EXPECT_EQ(t.nodes[n.children[0]].count, n.count);
  }
  EXPECT_EQ(root_count, 4 * 50);
  // Every per-thread timeline is well-formed on its own clock: events
  // don't run backwards and depths match a stack discipline.
  for (int th = 0; th < p.thread_count(); ++th) {
    for (const prof::TimelineEvent& e : p.timeline(th)) {
      EXPECT_LE(e.t_begin, e.t_end);
      EXPECT_GE(e.depth, 0);
      EXPECT_LE(e.depth, 1);
    }
  }
}

TEST(ProfTest, TimelineIsBoundedAndCountsDrops) {
  prof::Profiler p(/*max_timeline_events=*/3);
  {
    prof::Attach attach(&p);
    for (int i = 0; i < 8; ++i) { ZC_PROF_SPAN("e"); }
  }
  EXPECT_EQ(p.timeline(0).size(), 3u);
  EXPECT_EQ(p.dropped_timeline_events(), 5);
  // The aggregate tree stays exact regardless of timeline drops.
  EXPECT_EQ(p.tree().nodes[0].count, 8);
}

TEST(ProfTest, PeakRssIsPositiveOnLinux) {
  const long long rss = prof::peak_rss_bytes();
  EXPECT_GT(rss, 0) << "VmHWM should parse on this platform";
  EXPECT_EQ(rss % 1024, 0);  // the kernel reports whole kB
}

// --- the zero-effect contract ---------------------------------------------

struct RunSnapshot {
  std::string plan_text;
  long long static_count = 0;
  long long dynamic_count = 0;
  long long total_messages = 0;
  long long total_bytes = 0;
  long long reduction_count = 0;
  double elapsed_seconds = 0.0;
  std::map<std::string, double> scalars;
  std::map<std::string, double> checksums;
};

RunSnapshot run_benchmark(const std::string& name) {
  const programs::BenchmarkInfo& info = programs::benchmark(name);
  const zir::Program program = parser::parse_program(info.source);
  driver::Experiment e = *driver::find_experiment("pl");
  sim::RunConfig cfg;
  cfg.procs = 4;
  cfg.config_overrides = info.test_configs;
  const driver::Metrics m = driver::run_experiment(program, e, std::move(cfg));
  RunSnapshot s;
  s.plan_text = comm::to_string(m.plan, program);
  s.static_count = m.static_count;
  s.dynamic_count = m.dynamic_count;
  s.total_messages = m.run.total_messages;
  s.total_bytes = m.run.total_bytes;
  s.reduction_count = m.run.reduction_count;
  s.elapsed_seconds = m.run.elapsed_seconds;
  s.scalars = m.run.scalars;
  s.checksums = m.run.checksums;
  return s;
}

TEST(ProfTest, ProfilingDoesNotChangeResults) {
  // The whole pipeline — parse, plan, simulate — must produce bit-identical
  // outputs with and without a profiler attached, on every benchmark.
  for (const std::string bench : {"tomcatv", "swm", "simple", "sp"}) {
    const RunSnapshot off = run_benchmark(bench);
    prof::Profiler p;
    RunSnapshot on;
    {
      prof::Attach attach(&p);
      ZC_PROF_SPAN("test-root");
      on = run_benchmark(bench);
    }
    EXPECT_GT(p.tree().wall_seconds(), 0.0) << bench << ": profiler saw nothing";

    EXPECT_EQ(off.plan_text, on.plan_text) << bench;
    EXPECT_EQ(off.static_count, on.static_count) << bench;
    EXPECT_EQ(off.dynamic_count, on.dynamic_count) << bench;
    EXPECT_EQ(off.total_messages, on.total_messages) << bench;
    EXPECT_EQ(off.total_bytes, on.total_bytes) << bench;
    EXPECT_EQ(off.reduction_count, on.reduction_count) << bench;
    EXPECT_EQ(off.elapsed_seconds, on.elapsed_seconds) << bench;  // bit-exact
    EXPECT_EQ(off.scalars, on.scalars) << bench;
    EXPECT_EQ(off.checksums, on.checksums) << bench;
  }
}

// --- report integration and the perf-budget gate --------------------------

json::Value profiled_report(prof::Profiler* profiler) {
  const programs::BenchmarkInfo& info = programs::benchmark("swm");
  const zir::Program program = parser::parse_program(info.source);
  driver::Experiment e = *driver::find_experiment("pl");
  sim::RunConfig cfg;
  cfg.procs = 4;
  cfg.config_overrides = info.test_configs;
  const int procs = cfg.procs;
  const driver::Metrics m = driver::run_experiment(program, e, std::move(cfg));
  driver::ReportOptions ropts;
  ropts.benchmark = "swm";
  ropts.metrics_snapshot = false;  // the global registry varies run to run
  ropts.provenance = false;
  ropts.host_profiler = profiler;
  return driver::build_report(m, e, procs, nullptr, ropts);
}

TEST(ProfTest, ReportHostProfileBlock) {
  prof::Profiler p;
  json::Value with;
  {
    prof::Attach attach(&p);
    ZC_PROF_SPAN("report-root");
    with = profiled_report(&p);
  }
  EXPECT_EQ(with.at("schema_version").number, 5.0);
  ASSERT_TRUE(with.has("host_profile"));
  const json::Value& hp = with.at("host_profile");
  EXPECT_GT(hp.at("wall_seconds").number, 0.0);
  EXPECT_GT(hp.at("peak_rss_bytes").number, 0.0);
  EXPECT_EQ(hp.at("spans").array[0].at("name").string, "report-root");

  // Unprofiled reports carry no host_profile block and are bit-identical
  // across builds of the same run (dump compares the full document).
  const json::Value without_a = profiled_report(nullptr);
  const json::Value without_b = profiled_report(nullptr);
  EXPECT_FALSE(without_a.has("host_profile"));
  EXPECT_EQ(without_a.dump(), without_b.dump());
}

json::Value scale_profile(json::Value doc, double factor) {
  // Recursively scales host_profile durations, as report_diff's
  // --scale-after-host testing aid does.
  struct Scaler {
    double f;
    void walk(json::Value& v) const {
      if (v.has("wall_seconds")) v["wall_seconds"].number *= f;
      if (v.has("total_seconds")) v["total_seconds"].number *= f;
      if (v.has("self_seconds")) v["self_seconds"].number *= f;
      if (v.has("spans")) for (json::Value& s : v["spans"].array) walk(s);
      if (v.has("children")) for (json::Value& s : v["children"].array) walk(s);
    }
  };
  Scaler{factor}.walk(doc["host_profile"]);
  return doc;
}

TEST(ProfTest, PerfBudgetDiff) {
  prof::Profiler p;
  json::Value report;
  {
    prof::Attach attach(&p);
    ZC_PROF_SPAN("budget-root");
    report = profiled_report(&p);
  }

  // Identical runs pass any budget.
  const json::Value same = driver::perf_budget_diff(report, report, 20.0);
  EXPECT_FALSE(same.at("regressed").boolean);
  EXPECT_FALSE(same.at("wall").at("regressed").boolean);

  // A 2x slowdown on everything blows a 20% budget (wall, at least; small
  // spans may hide under the absolute noise floor).
  const json::Value slow = scale_profile(report, 2.0);
  const json::Value bad = driver::perf_budget_diff(report, slow, 20.0);
  EXPECT_TRUE(bad.at("regressed").boolean);
  EXPECT_TRUE(bad.at("wall").at("regressed").boolean);

  // The absolute floor absorbs sub-millisecond jitter: with a huge floor
  // nothing regresses.
  const json::Value forgiven = driver::perf_budget_diff(report, slow, 20.0, /*abs_floor=*/1e9);
  EXPECT_FALSE(forgiven.at("regressed").boolean);

  // Reports without a host_profile are rejected, not mis-compared.
  json::Value unprofiled = profiled_report(nullptr);
  EXPECT_THROW(driver::perf_budget_diff(unprofiled, report, 20.0), Error);

  // diff_run_reports itself stays clean across asymmetric optional blocks.
  const json::Value diff = driver::diff_run_reports(unprofiled, report);
  EXPECT_FALSE(diff.at("regressed").boolean);
  bool noted = false;
  for (const json::Value& b : diff.at("optional_blocks").array) {
    if (b.at("name").string == "host_profile") {
      noted = true;
      EXPECT_FALSE(b.at("before").boolean);
      EXPECT_TRUE(b.at("after").boolean);
    }
  }
  EXPECT_TRUE(noted);
}

TEST(ProfTest, StrictFieldMissingIsNotStructuralError) {
  prof::Profiler p;
  json::Value profiled;
  {
    prof::Attach attach(&p);
    profiled = profiled_report(&p);
  }
  const json::Value plain = profiled_report(nullptr);
  // A strict field that only one report carries is flagged as
  // incomparable instead of throwing.
  const json::Value diff =
      driver::diff_run_reports(plain, profiled, 0.05, {"no_such_field"});
  ASSERT_EQ(diff.at("strict").array.size(), 1u);
  EXPECT_FALSE(diff.at("strict").array[0].at("comparable").boolean);
  EXPECT_FALSE(diff.at("regressed").boolean);
}

}  // namespace
