// The serve subsystem end to end: strict request validation, the
// admission-controlled service answering from the shared plan cache with
// bit-identical streams, the observability plane (flight recorder, stats
// v2, structured logging, Prometheus scrape, drain-aware health), and the
// socket transport with graceful drain.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/comm/optimizer.h"
#include "src/comm/plan.h"
#include "src/driver/driver.h"
#include "src/driver/report.h"
#include "src/exec/plan_cache.h"
#include "src/machine/model.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/support/json.h"
#include "src/support/log.h"

namespace zc::serve {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- protocol

TEST(Protocol, ParsesAFullOptimizeRequest) {
  const Request req = parse_request(
      R"({"v":1,"cmd":"optimize","id":"r7","bench":"tomcatv",
          "experiment":["pl","cc"],"procs":[4,16],"machine":"paragon",
          "config":{"n":32,"iters":2},"run":true,"trace":false,
          "blame":true,"critical_path":false})");
  EXPECT_EQ(req.cmd, Request::Cmd::kOptimize);
  EXPECT_EQ(req.id, "r7");
  const OptimizeRequest& o = req.optimize;
  EXPECT_EQ(o.bench, "tomcatv");
  EXPECT_EQ(o.experiments, (std::vector<std::string>{"pl", "cc"}));
  EXPECT_EQ(o.procs, (std::vector<int>{4, 16}));
  EXPECT_EQ(o.machine, "paragon");
  EXPECT_EQ(o.config_overrides.at("n"), 32);
  EXPECT_EQ(o.config_overrides.at("iters"), 2);
  EXPECT_TRUE(o.blame);
  EXPECT_TRUE(o.trace) << "blame implies trace";
  EXPECT_EQ(o.label(), "tomcatv/pl,cc/p4,p16");
}

TEST(Protocol, AppliesDocumentedDefaults) {
  const Request req =
      parse_request(R"({"v":1,"cmd":"optimize","bench":"jacobi"})");
  const OptimizeRequest& o = req.optimize;
  EXPECT_EQ(o.experiments, std::vector<std::string>{"pl"});
  EXPECT_EQ(o.procs, std::vector<int>{16});
  EXPECT_EQ(o.machine, "t3d");
  EXPECT_TRUE(o.run);
  EXPECT_TRUE(o.plan_text);
  EXPECT_FALSE(o.trace);
}

TEST(Protocol, RejectsMalformedRequestsWithStructuredCodes) {
  // One entry per distinct validation rule; every rejection must be a
  // RequestError carrying kBadRequest plus a fragment naming the culprit.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"", "unexpected end of input"},
      {"not json", "offset"},
      {"[1,2,3]", "must be a JSON object"},
      {R"({"cmd":"ping"})", "missing required member 'v'"},
      {R"({"v":2,"cmd":"ping"})", "unsupported protocol version"},
      {R"({"v":1})", "missing required member 'cmd'"},
      {R"({"v":1,"cmd":"frobnicate"})", "unknown cmd"},
      {R"({"v":1,"cmd":"ping","bench":"x"})", "unknown member 'bench'"},
      {R"({"v":1,"cmd":"optimize"})", "exactly one of 'bench' or 'source'"},
      {R"({"v":1,"cmd":"optimize","bench":"a","source":"b"})",
       "exactly one of 'bench' or 'source'"},
      {R"({"v":1,"cmd":"optimize","bench":""})", "must not be empty"},
      {R"({"v":1,"cmd":"optimize","bench":"a","procs":0})", "between 1 and"},
      {R"({"v":1,"cmd":"optimize","bench":"a","procs":2.5})",
       "must be an integer"},
      {R"({"v":1,"cmd":"optimize","bench":"a","procs":[]})",
       "at least one processor count"},
      {R"({"v":1,"cmd":"optimize","bench":"a","machine":"cm5"})",
       "must be \"t3d\" or \"paragon\""},
      {R"({"v":1,"cmd":"optimize","bench":"a","experiment":[]})",
       "at least one experiment"},
      {R"({"v":1,"cmd":"optimize","bench":"a","config":[1]})",
       "'config' must be an object"},
      {R"({"v":1,"cmd":"optimize","bench":"a","mystery":1})",
       "unknown member 'mystery'"},
      {R"({"v":1,"cmd":"optimize","bench":"a","run":false,"trace":true})",
       "requires 'run'"},
      {R"({"v":1,"cmd":"optimize","bench":"a","plan_text":1})",
       "'plan_text' must be true or false"},
  };
  for (const auto& [line, fragment] : cases) {
    try {
      (void)parse_request(line);
      FAIL() << "accepted: " << line;
    } catch (const RequestError& e) {
      EXPECT_EQ(e.code, ErrorCode::kBadRequest) << line;
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << line << " -> " << e.what();
    }
  }
}

TEST(Protocol, SyntaxErrorsCarryTheByteOffset) {
  try {
    (void)parse_request(R"({"v":1,"cmd":)");
    FAIL();
  } catch (const RequestError& e) {
    EXPECT_GE(e.offset, 0);
  }
  const json::Value err = error_response("r", ErrorCode::kOverloaded, "busy", -1, 75);
  EXPECT_EQ(err.at("error").at("code").string, "overloaded");
  EXPECT_EQ(static_cast<int>(err.at("error").at("retry_after_ms").number), 75);
  EXPECT_FALSE(err.at("error").has("offset"));
}

// ----------------------------------------------------------------- service

/// Collects one client's response lines; wait_for_lines blocks until a
/// predicate-matching count arrives (worker threads answer asynchronously).
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> lines;

  Service::Emit emit() {
    return [this](const std::string& line) {
      // Notify under the lock: a waiter may see its predicate satisfied and
      // destroy this Collector the instant the mutex is released, so the cv
      // must not be touched after unlock.
      const std::lock_guard<std::mutex> lk(mu);
      lines.push_back(line);
      cv.notify_all();
    };
  }

  bool wait_for(const std::string& fragment) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, 30s, [&] {
      for (const std::string& line : lines) {
        if (line.find(fragment) != std::string::npos) return true;
      }
      return false;
    });
  }

  std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> lk(mu);
    return lines;
  }
};

constexpr std::string_view kOptimizeJacobi =
    R"({"v":1,"cmd":"optimize","id":"r1","bench":"jacobi","experiment":"pl","procs":4})";

TEST(Service, AnswersPingStatsAndStreamsAnOptimizeRun) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  Service service(sopts);

  Collector c;
  EXPECT_TRUE(service.handle_line("t", R"({"v":1,"cmd":"ping","id":"p"})", c.emit()));
  ASSERT_TRUE(c.wait_for(R"("kind":"pong")"));

  EXPECT_TRUE(service.handle_line("t", kOptimizeJacobi, c.emit()));
  ASSERT_TRUE(c.wait_for(R"("kind":"done")"));

  const std::vector<std::string> lines = c.snapshot();
  ASSERT_EQ(lines.size(), 4u);  // pong, plan, report, done
  const json::Value plan_line = json::parse(lines[1]);
  EXPECT_EQ(plan_line.at("kind").string, "plan");
  EXPECT_EQ(plan_line.at("cache").string, "miss");
  EXPECT_EQ(plan_line.at("item").string, "jacobi/pl");
  EXPECT_GT(plan_line.at("static_count").number, 0);
  const json::Value report_line = json::parse(lines[2]);
  EXPECT_EQ(report_line.at("kind").string, "report");
  EXPECT_EQ(static_cast<int>(report_line.at("report").at("schema_version").number), 5);
  EXPECT_EQ(report_line.at("report").at("procs").number, 4);
  EXPECT_FALSE(report_line.at("report").has("metrics"))
      << "serve reports must not embed volatile registry snapshots";

  // The stats surface: request counts, the latency histogram, cache stats.
  Collector s;
  EXPECT_TRUE(service.handle_line("t", R"({"v":1,"cmd":"stats","id":"s"})", s.emit()));
  ASSERT_TRUE(s.wait_for(R"("kind":"stats")"));
  const json::Value stats = json::parse(s.snapshot().at(0));
  EXPECT_EQ(stats.at("plan_cache").at("misses").number, 1);
  const json::Value& counters = stats.at("serve").at("counters");
  EXPECT_EQ(counters.at("serve.requests.optimize").number, 1);
  EXPECT_EQ(counters.at("serve.completed").number, 1);
  EXPECT_GE(counters.at("serve.client.t.requests").number, 2);
  const json::Value& hist =
      stats.at("serve").at("histograms").at("serve.request_seconds");
  EXPECT_EQ(hist.at("count").number, 1);
  EXPECT_TRUE(hist.has("p50"));
  EXPECT_TRUE(hist.has("p99"));
}

TEST(Service, PlanTextOptOutDropsTheDumpButKeepsTheCounts) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  Service service(sopts);

  Collector with;
  EXPECT_TRUE(service.handle_line("t", kOptimizeJacobi, with.emit()));
  ASSERT_TRUE(with.wait_for(R"("kind":"done")"));
  const json::Value default_plan = json::parse(with.snapshot().at(0));
  EXPECT_TRUE(default_plan.has("plan_text")) << "plan_text is opt-out";

  Collector without;
  EXPECT_TRUE(service.handle_line(
      "t",
      R"({"v":1,"cmd":"optimize","id":"r2","bench":"jacobi","experiment":"pl","procs":4,"plan_text":false})",
      without.emit()));
  ASSERT_TRUE(without.wait_for(R"("kind":"done")"));
  const json::Value lean_plan = json::parse(without.snapshot().at(0));
  EXPECT_EQ(lean_plan.at("kind").string, "plan");
  EXPECT_FALSE(lean_plan.has("plan_text"));
  EXPECT_EQ(lean_plan.at("cache").string, "hit")
      << "plan_text is presentation only — both spellings share one cache entry";
  EXPECT_EQ(lean_plan.at("static_count").number,
            default_plan.at("static_count").number);
}

TEST(Service, FourConcurrentClientsShareOnePlanAndGetIdenticalStreams) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 4;
  sopts.plan_cache = &cache;
  Service service(sopts);

  std::vector<Collector> clients(4);
  {
    std::vector<std::thread> senders;
    for (int i = 0; i < 4; ++i) {
      senders.emplace_back([&, i] {
        EXPECT_TRUE(service.handle_line("client" + std::to_string(i),
                                        kOptimizeJacobi, clients[i].emit()));
      });
    }
    for (std::thread& t : senders) t.join();
  }
  for (Collector& c : clients) ASSERT_TRUE(c.wait_for(R"("kind":"done")"));

  // Exactly one planning run: 1 miss, 3 hits, whichever worker got there
  // first.
  const exec::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 3);

  // All four streams are identical apart from the hit/miss label on the
  // plan line (exactly one says "miss"), and every other byte agrees.
  int misses = 0;
  std::vector<std::vector<std::string>> streams;
  for (Collector& c : clients) streams.push_back(c.snapshot());
  for (std::vector<std::string>& stream : streams) {
    ASSERT_EQ(stream.size(), 3u);  // plan, report, done
    const std::size_t at = stream[0].find(R"("cache":")");
    ASSERT_NE(at, std::string::npos);
    if (stream[0].compare(at, 14, R"("cache":"miss")") == 0) ++misses;
    // Neutralize the one legitimately divergent byte-range before the
    // stream comparison.
    const std::size_t end = stream[0].find('"', at + 9);
    stream[0].replace(at, end + 1 - at, R"("cache":"*")");
  }
  EXPECT_EQ(misses, 1);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(streams[0], streams[i]) << "client " << i;

  // Bit-identity against a direct, serve-free run of the same
  // configuration: the streamed report document and plan text must match
  // what the library produces first-hand.
  const zir::Program program =
      parser::parse_program(programs::kernel_source("jacobi"));
  const driver::Experiment e = *driver::find_experiment("pl");
  const comm::CommPlan plan = comm::plan_communication(program, e.opts);
  sim::RunConfig config;
  config.machine = machine::t3d_model();
  config.library = e.library;
  config.procs = 4;
  const driver::Metrics m = driver::run_planned(program, plan, e, std::move(config));
  driver::ReportOptions ropts;
  ropts.benchmark = "jacobi";
  ropts.provenance = false;
  ropts.metrics_snapshot = false;
  const json::Value expected = driver::build_report(m, e, 4, nullptr, ropts);

  const json::Value plan_line = json::parse(streams[0][0]);
  EXPECT_EQ(plan_line.at("plan_text").string, comm::to_string(plan, program));
  const json::Value report_line = json::parse(streams[0][1]);
  EXPECT_EQ(report_line.at("report").dump(0), expected.dump(0));
}

TEST(Service, OverloadedAndMalformedRequestsGetStructuredErrorsWhileServing) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool released = false;

  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.max_queue_depth = 2;
  sopts.retry_after_ms = 75;
  sopts.plan_cache = &cache;
  sopts.on_job_start = [&] {
    std::unique_lock<std::mutex> lk(gate_mu);
    gate_cv.wait(lk, [&] { return released; });
  };
  Service service(sopts);

  Collector c1, c2, c3, cbad, cping;
  // Two requests fill the admission window (one executing at the gate, one
  // queued); the third must be refused with retry-after.
  service.handle_line("a", kOptimizeJacobi, c1.emit());
  service.handle_line("b", kOptimizeJacobi, c2.emit());
  service.handle_line("c", kOptimizeJacobi, c3.emit());
  ASSERT_TRUE(c3.wait_for(R"("code":"overloaded")"));
  const json::Value err = json::parse(c3.snapshot().at(0));
  EXPECT_EQ(static_cast<int>(err.at("error").at("retry_after_ms").number), 75);

  // The daemon stays responsive while saturated: malformed input answers
  // structurally, control commands answer synchronously.
  service.handle_line("d", "{{{{", cbad.emit());
  ASSERT_TRUE(cbad.wait_for(R"("code":"bad_request")"));
  service.handle_line("e", R"({"v":1,"cmd":"ping"})", cping.emit());
  ASSERT_TRUE(cping.wait_for(R"("kind":"pong")"));

  {
    const std::lock_guard<std::mutex> lk(gate_mu);
    released = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(c1.wait_for(R"("kind":"done")"));
  ASSERT_TRUE(c2.wait_for(R"("kind":"done")"));
  EXPECT_EQ(service.registry().counter("serve.errors.overloaded"), 1);
}

TEST(Service, ShutdownDrainsAdmittedWorkAndRefusesNewWork) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  Service service(sopts);

  Collector work, shut, late;
  service.handle_line("a", kOptimizeJacobi, work.emit());
  EXPECT_FALSE(
      service.handle_line("a", R"({"v":1,"cmd":"shutdown","id":"bye"})", shut.emit()))
      << "a shutdown request tells the transport to stop serving";
  ASSERT_TRUE(shut.wait_for(R"("kind":"shutdown")"));

  service.handle_line("b", kOptimizeJacobi, late.emit());
  ASSERT_TRUE(late.wait_for(R"("code":"shutting_down")"));

  service.drain();
  EXPECT_TRUE(work.wait_for(R"("kind":"done")"))
      << "admitted work finishes and answers through the drain";
  EXPECT_EQ(service.in_flight(), 0);
}

TEST(Service, SurvivesAdversarialInputAndKeepsServing) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.max_line_bytes = 4096;
  sopts.max_depth = 16;
  sopts.plan_cache = &cache;
  Service service(sopts);

  std::vector<std::string> nasty = {
      std::string(100, '['),                     // nesting bomb -> depth limit
      std::string(8192, 'x'),                    // over the line byte limit
      std::string("{\"v\":1,\x01\x02", 10),      // control bytes
      R"({"v":1,"cmd":"optimize","bench":"jacobi","procs":999999999})",
      R"({"v":1,"cmd":"optimize","source":"program broken;"})",
  };
  for (const std::string& line : nasty) {
    Collector c;
    service.handle_line("f", line, c.emit());
    ASSERT_TRUE(c.wait_for(R"("kind":"error")")) << line.substr(0, 40);
  }
  // procs cap and parse failures are reported per-request...
  EXPECT_GE(service.registry().counter("serve.errors.bad_request"), 4);
  // ...and the service still serves real work afterwards.
  Collector ok;
  service.handle_line("f", kOptimizeJacobi, ok.emit());
  EXPECT_TRUE(ok.wait_for(R"("kind":"done")"));
}

// ----------------------------------------------------------- observability

TEST(Protocol, ParsesTheFlightCommand) {
  const Request req = parse_request(R"({"v":1,"cmd":"flight","id":"f1"})");
  EXPECT_EQ(req.cmd, Request::Cmd::kFlight);
  EXPECT_EQ(req.id, "f1");
  // Strictness holds for the new command too: no optimize members allowed.
  try {
    (void)parse_request(R"({"v":1,"cmd":"flight","bench":"jacobi"})");
    FAIL() << "flight with an optimize member parsed";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
  }
}

TEST(Service, StatsV2CarriesUptimeAndPerErrorCodeCounts) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  Service service(sopts);

  Collector bad;
  service.handle_line("t", "not json", bad.emit());
  ASSERT_TRUE(bad.wait_for(R"("code":"bad_request")"));

  Collector s;
  service.handle_line("t", R"({"v":1,"cmd":"stats","id":"s"})", s.emit());
  ASSERT_TRUE(s.wait_for(R"("kind":"stats")"));
  const json::Value stats = json::parse(s.snapshot().at(0));
  EXPECT_EQ(static_cast<int>(stats.at("stats_version").number), 2);
  EXPECT_GT(stats.at("uptime_seconds").number, 0.0);
  const json::Value& errors = stats.at("errors");
  EXPECT_EQ(errors.at("bad_request").number, 1);
  EXPECT_EQ(errors.at("overloaded").number, 0);
  EXPECT_EQ(errors.at("shutting_down").number, 0);
  EXPECT_EQ(errors.at("internal").number, 0);
}

TEST(Service, FlightRecorderCapturesPhaseAttributedEntries) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  sopts.flight_capacity = 4;
  sopts.slow_request_seconds = 0.001;  // the sleep below always qualifies
  sopts.debug_sleep_ms = 15;           // deterministic slow phase
  Service service(sopts);

  Collector work;
  service.handle_line("t", kOptimizeJacobi, work.emit());
  ASSERT_TRUE(work.wait_for(R"("kind":"done")"));

  Collector f;
  service.handle_line("t", R"({"v":1,"cmd":"flight","id":"f"})", f.emit());
  ASSERT_TRUE(f.wait_for(R"("kind":"flight")"));
  const json::Value dump = json::parse(f.snapshot().at(0));
  const json::Value& flight = dump.at("flight");
  EXPECT_EQ(static_cast<int>(flight.at("capacity").number), 4);
  EXPECT_EQ(static_cast<int>(flight.at("recorded").number), 1);
  ASSERT_EQ(flight.at("recent").array.size(), 1u);
  ASSERT_EQ(flight.at("slowest").array.size(), 1u);

  const json::Value& entry = flight.at("recent").array[0];
  EXPECT_EQ(static_cast<long long>(entry.at("request_number").number), 1);
  EXPECT_EQ(entry.at("id").string, "r1");
  EXPECT_EQ(entry.at("client").string, "t");
  EXPECT_EQ(entry.at("label").string, "jacobi/pl/p4");
  EXPECT_EQ(entry.at("cache").string, "miss");
  EXPECT_EQ(entry.at("error_code").string, "");
  EXPECT_EQ(static_cast<int>(entry.at("cache_misses").number), 1);
  EXPECT_GE(entry.at("latency_ms").number, 15.0);

  // The phase breakdown attributes the injected sleep and the real work.
  bool saw_sleep = false, saw_plan = false;
  double sleep_ms = 0.0;
  for (const json::Value& phase : entry.at("phases").array) {
    const std::string& path = phase.at("path").string;
    if (path == "debug_sleep") {
      saw_sleep = true;
      sleep_ms = phase.at("ms").number;
    }
    if (path == "plan") saw_plan = true;
  }
  EXPECT_TRUE(saw_sleep) << "injected sleep missing from the phase breakdown";
  EXPECT_TRUE(saw_plan) << "planning phase missing from the phase breakdown";
  EXPECT_GE(sleep_ms, 14.0) << "the sleep phase carries its real duration";
}

TEST(Service, FlightSlowestRingOrdersByLatencyAndRecentByArrival) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  sopts.flight_capacity = 2;  // 3 requests overflow both rings
  Service service(sopts);

  for (int i = 1; i <= 3; ++i) {
    Collector c;
    service.handle_line(
        "t",
        R"({"v":1,"cmd":"optimize","id":"q)" + std::to_string(i) +
            R"(","bench":"jacobi","experiment":"pl","procs":4,"plan_text":false})",
        c.emit());
    ASSERT_TRUE(c.wait_for(R"("kind":"done")"));
  }

  Collector f;
  service.handle_line("t", R"({"v":1,"cmd":"flight"})", f.emit());
  ASSERT_TRUE(f.wait_for(R"("kind":"flight")"));
  const json::Value dump = json::parse(f.snapshot().at(0));
  const json::Value& flight = dump.at("flight");
  EXPECT_EQ(static_cast<int>(flight.at("recorded").number), 3);
  ASSERT_EQ(flight.at("recent").array.size(), 2u) << "recent ring is bounded";
  ASSERT_EQ(flight.at("slowest").array.size(), 2u) << "slowest set is bounded";
  // Recent is newest-first; slowest is descending latency.
  EXPECT_EQ(flight.at("recent").array[0].at("id").string, "q3");
  EXPECT_EQ(flight.at("recent").array[1].at("id").string, "q2");
  EXPECT_GE(flight.at("slowest").array[0].at("latency_ms").number,
            flight.at("slowest").array[1].at("latency_ms").number);
}

TEST(Service, FlightDisabledAnswersWithTheEmptyShape) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  sopts.flight_capacity = 0;  // recorder AND per-request profiler off
  Service service(sopts);

  Collector work;
  service.handle_line("t", kOptimizeJacobi, work.emit());
  ASSERT_TRUE(work.wait_for(R"("kind":"done")"));

  Collector f;
  service.handle_line("t", R"({"v":1,"cmd":"flight","id":"f"})", f.emit());
  ASSERT_TRUE(f.wait_for(R"("kind":"flight")"));
  const json::Value dump = json::parse(f.snapshot().at(0));
  const json::Value& flight = dump.at("flight");
  EXPECT_EQ(static_cast<int>(flight.at("capacity").number), 0);
  EXPECT_EQ(static_cast<int>(flight.at("recorded").number), 0);
  EXPECT_TRUE(flight.at("recent").array.empty());
  EXPECT_TRUE(flight.at("slowest").array.empty());
}

TEST(Service, ResponsesAreBitIdenticalWithObservabilityOnAndOff) {
  // The PR 6 determinism contract extended to the observability plane:
  // logging at debug and the flight recorder (with its per-request
  // profiler) must not perturb a single response byte. Log lines go to a
  // capture buffer here so the comparison also proves they carry the
  // request's correlation id without leaking into the stream.
  const auto run_once = [](bool observed) {
    std::string captured;
    if (observed) {
      log::Logger::global().set_level(log::Level::kDebug);
      log::Logger::global().set_capture(&captured);
    } else {
      log::Logger::global().set_level(log::Level::kOff);
    }
    exec::PlanCache cache;
    ServiceOptions sopts;
    sopts.jobs = 1;
    sopts.plan_cache = &cache;
    sopts.flight_capacity = observed ? 8 : 0;
    Service service(sopts);
    Collector c;
    service.handle_line("t", kOptimizeJacobi, c.emit());
    EXPECT_TRUE(c.wait_for(R"("kind":"done")"));
    service.drain();
    log::Logger::global().set_capture(nullptr);
    log::Logger::global().set_level(log::Level::kInfo);
    return std::make_pair(c.snapshot(), captured);
  };

  const auto [observed_lines, log_text] = run_once(true);
  const auto [plain_lines, no_log] = run_once(false);
  EXPECT_EQ(observed_lines, plain_lines)
      << "observability must never change a response byte";
  EXPECT_TRUE(no_log.empty());
  // The completion log line correlates the request: number, id, outcome.
  EXPECT_NE(log_text.find("msg=\"request finished\""), std::string::npos);
  EXPECT_NE(log_text.find("req=1"), std::string::npos);
  EXPECT_NE(log_text.find("id=\"r1\""), std::string::npos);
  EXPECT_NE(log_text.find("cache=\"miss\""), std::string::npos);
}

TEST(Service, PrometheusExpositionReflectsServedRequests) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  Service service(sopts);

  Collector c;
  service.handle_line("t", kOptimizeJacobi, c.emit());
  ASSERT_TRUE(c.wait_for(R"("kind":"done")"));

  const std::string text = service.metrics_prometheus();
  EXPECT_NE(text.find("# TYPE serve_requests counter\nserve_requests 1"),
            std::string::npos);
  EXPECT_NE(text.find("serve_completed 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_request_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find(R"(serve_request_seconds_bucket{le="+Inf"} 1)"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_seconds_count 1"), std::string::npos);
  // Scrape-time derived gauges.
  EXPECT_NE(text.find("# TYPE serve_uptime_seconds gauge"), std::string::npos);
  EXPECT_NE(text.find("serve_plan_cache_hit_ratio 0"), std::string::npos);
  EXPECT_NE(text.find("serve_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("serve_draining 0"), std::string::npos);
  EXPECT_NE(text.find("serve_flight_recorded 1"), std::string::npos);
  // Identity metrics: the build-info gauge (constant 1, identity in the
  // labels) and the daemon's wall-clock start time.
  EXPECT_NE(text.find("# TYPE zcomm_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("zcomm_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find(",compiler=\""), std::string::npos);
  EXPECT_NE(text.find(",build_type=\""), std::string::npos);
  EXPECT_NE(text.find(",sanitizer=\""), std::string::npos);
  EXPECT_NE(text.find("\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zcomm_start_time_seconds gauge"), std::string::npos);
  const auto start_pos = text.find("\nzcomm_start_time_seconds ");
  ASSERT_NE(start_pos, std::string::npos);
  const long long started =
      std::atoll(text.c_str() + start_pos + std::string("\nzcomm_start_time_seconds ").size());
  EXPECT_GT(started, 1600000000LL) << "start time must be a plausible epoch second";
}

// ------------------------------------------------------------------ server

/// A minimal blocking JSON-lines client for the socket tests.
class LineClient {
 public:
  explicit LineClient(int fd) : fd_(fd) {}
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    ASSERT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
  }

  /// Blocks until one full line arrives (gtest-fails on EOF).
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed mid-read";
        return "";
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

TEST(Server, UnixSocketRoundTripWithConcurrentClientsAndGracefulStop) {
  const std::string path =
      "/tmp/zc_serve_test_" + std::to_string(::getpid()) + ".sock";
  ServerOptions opts;
  opts.unix_socket_path = path;
  opts.service.jobs = 2;
  exec::PlanCache cache;
  opts.service.plan_cache = &cache;
  Server server(opts);
  std::thread runner([&] { server.run(); });

  const auto connect_unix = [&]() -> int {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  };

  {
    LineClient a(connect_unix());
    LineClient b(connect_unix());
    a.send_line(R"({"v":1,"cmd":"ping","id":"a"})");
    b.send_line(std::string(kOptimizeJacobi));
    EXPECT_NE(a.read_line().find(R"("kind":"pong")"), std::string::npos);
    EXPECT_NE(b.read_line().find(R"("kind":"plan")"), std::string::npos);
    EXPECT_NE(b.read_line().find(R"("kind":"report")"), std::string::npos);
    EXPECT_NE(b.read_line().find(R"("kind":"done")"), std::string::npos);
    // Malformed input on a live socket answers without dropping the peer.
    a.send_line("garbage");
    EXPECT_NE(a.read_line().find(R"("code":"bad_request")"), std::string::npos);
    a.send_line(R"({"v":1,"cmd":"ping","id":"again"})");
    EXPECT_NE(a.read_line().find(R"("kind":"pong")"), std::string::npos);
  }

  server.request_stop();
  runner.join();
  EXPECT_EQ(::access(path.c_str(), F_OK), -1) << "socket file is unlinked on stop";
}

TEST(Server, TcpEphemeralPortServesAndShutdownCommandStopsRun) {
  ServerOptions opts;
  opts.tcp_port = 0;  // kernel-chosen
  opts.service.jobs = 1;
  exec::PlanCache cache;
  opts.service.plan_cache = &cache;
  Server server(opts);
  ASSERT_GT(server.tcp_port(), 0);
  std::thread runner([&] { server.run(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.tcp_port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  LineClient client(fd);
  client.send_line(std::string(kOptimizeJacobi));
  EXPECT_NE(client.read_line().find(R"("kind":"plan")"), std::string::npos);
  EXPECT_NE(client.read_line().find(R"("kind":"report")"), std::string::npos);
  EXPECT_NE(client.read_line().find(R"("kind":"done")"), std::string::npos);
  client.send_line(R"({"v":1,"cmd":"shutdown"})");
  EXPECT_NE(client.read_line().find(R"("kind":"shutdown")"), std::string::npos);
  runner.join();  // the shutdown request ends run() on its own
}

// ------------------------------------------------------------- http plane

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

/// One HTTP/1.0 exchange: sends `GET target`, returns the full response
/// (head + body; the server closes after writing).
std::string http_get(int port, const std::string& target) {
  const int fd = connect_loopback(port);
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(Server, HttpPlaneServesMetricsHealthAndFlight) {
  ServerOptions opts;
  opts.tcp_port = 0;
  opts.http_port = 0;  // kernel-chosen
  opts.service.jobs = 1;
  exec::PlanCache cache;
  opts.service.plan_cache = &cache;
  Server server(opts);
  ASSERT_GT(server.http_port(), 0);
  std::thread runner([&] { server.run(); });

  {
    LineClient client(connect_loopback(server.tcp_port()));
    client.send_line(std::string(kOptimizeJacobi));
    EXPECT_NE(client.read_line().find(R"("kind":"plan")"), std::string::npos);
    EXPECT_NE(client.read_line().find(R"("kind":"report")"), std::string::npos);
    EXPECT_NE(client.read_line().find(R"("kind":"done")"), std::string::npos);
  }

  const std::string health = http_get(server.http_port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = http_get(server.http_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE serve_requests counter"), std::string::npos);
  EXPECT_NE(metrics.find("serve_completed 1"), std::string::npos);
  EXPECT_NE(metrics.find(R"(serve_request_seconds_bucket{le="+Inf"} 1)"),
            std::string::npos);

  const std::string flight = http_get(server.http_port(), "/flight");
  EXPECT_NE(flight.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(flight.find("application/json"), std::string::npos);
  EXPECT_NE(flight.find(R"("kind":"flight")"), std::string::npos);
  EXPECT_NE(flight.find(R"("label":"jacobi/pl/p4")"), std::string::npos);

  const std::string timeseries = http_get(server.http_port(), "/timeseries");
  EXPECT_NE(timeseries.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(timeseries.find("application/json"), std::string::npos);
  EXPECT_NE(timeseries.find(R"("kind":"zc-wall-timeline")"), std::string::npos);
  EXPECT_NE(timeseries.find(R"("requests")"), std::string::npos);

  EXPECT_NE(http_get(server.http_port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);

  server.request_stop();
  runner.join();
}

TEST(Server, HealthzReports503WhileTheDrainRuns) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool released = false;

  ServerOptions opts;
  opts.tcp_port = 0;
  opts.http_port = 0;
  opts.service.jobs = 1;
  exec::PlanCache cache;
  opts.service.plan_cache = &cache;
  // Hold the worker at pickup so one request is deterministically
  // executing when the stop lands.
  opts.service.on_job_start = [&] {
    std::unique_lock<std::mutex> lk(gate_mu);
    gate_cv.wait(lk, [&] { return released; });
  };
  Server server(opts);
  std::thread runner([&] { server.run(); });

  LineClient client(connect_loopback(server.tcp_port()));
  client.send_line(std::string(kOptimizeJacobi));
  // Wait until the worker holds the job (draining starts only after that).
  while (server.service().in_flight() == 0) std::this_thread::sleep_for(1ms);

  server.request_stop();
  while (!server.service().draining()) std::this_thread::sleep_for(1ms);

  // The JSON listeners are gone but the HTTP plane still answers: health
  // says draining (503), metrics still scrape and show the in-flight work.
  const std::string health = http_get(server.http_port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_NE(health.find("draining"), std::string::npos);
  const std::string metrics = http_get(server.http_port(), "/metrics");
  EXPECT_NE(metrics.find("serve_draining 1"), std::string::npos);
  EXPECT_NE(metrics.find("serve_executing 1"), std::string::npos);

  {
    const std::lock_guard<std::mutex> lk(gate_mu);
    released = true;
  }
  gate_cv.notify_all();
  // The held request still answers its client through the drain.
  EXPECT_NE(client.read_line().find(R"("kind":"plan")"), std::string::npos);
  EXPECT_NE(client.read_line().find(R"("kind":"report")"), std::string::npos);
  EXPECT_NE(client.read_line().find(R"("kind":"done")"), std::string::npos);
  runner.join();
}

TEST(Service, TimeseriesTracksRequestsErrorsAndLatency) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  Service service(sopts);

  Collector bad;
  service.handle_line("t", "not json", bad.emit());
  ASSERT_TRUE(bad.wait_for(R"("code":"bad_request")"));
  Collector work;
  service.handle_line("t", kOptimizeJacobi, work.emit());
  ASSERT_TRUE(work.wait_for(R"("kind":"done")"));

  const json::Value doc = service.timeseries_json();
  EXPECT_EQ(doc.at("kind").string, "zc-wall-timeline");
  EXPECT_GT(doc.at("uptime_seconds").number, 0.0);
  const json::Value& channels = doc.at("channels");
  const auto channel_sum = [&channels](const char* name) {
    double total = 0.0;
    for (const json::Value& row : channels.at(name).array) {
      for (const json::Value& v : row.array) total += v.number;
    }
    return total;
  };
  // One executed optimize; the parse failure lands in errors only (pings
  // and parse rejects never reach the execution path that counts requests).
  EXPECT_EQ(channel_sum("requests"), 1.0);
  EXPECT_EQ(channel_sum("errors"), 1.0);
  // The admission-time depth sample includes the job itself: an empty
  // queue admits at depth 1.
  EXPECT_EQ(channel_sum("queue_depth"), 1.0);
  EXPECT_GT(channel_sum("latency"), 0.0);
}

TEST(Service, PlanCacheHitRateIsExposedOnBothStatSurfaces) {
  exec::PlanCache cache;
  ServiceOptions sopts;
  sopts.jobs = 1;
  sopts.plan_cache = &cache;
  Service service(sopts);

  // Same request twice: one miss, then one hit -> rate 0.5 on both the
  // JSON stats block and the Prometheus exposition.
  for (int i = 0; i < 2; ++i) {
    Collector work;
    service.handle_line("t", kOptimizeJacobi, work.emit());
    ASSERT_TRUE(work.wait_for(R"("kind":"done")"));
  }
  Collector s;
  service.handle_line("t", R"({"v":1,"cmd":"stats","id":"s"})", s.emit());
  ASSERT_TRUE(s.wait_for(R"("kind":"stats")"));
  const json::Value stats = json::parse(s.snapshot().at(0));
  EXPECT_EQ(stats.at("plan_cache").at("hits").number, 1.0);
  EXPECT_EQ(stats.at("plan_cache").at("misses").number, 1.0);
  EXPECT_DOUBLE_EQ(stats.at("plan_cache").at("hit_rate").number, 0.5);

  const std::string prom = service.metrics_prometheus();
  EXPECT_NE(prom.find("serve_plan_cache_hit_ratio 0.5"), std::string::npos);
  EXPECT_NE(prom.find("serve_plan_cache_entries 1"), std::string::npos);
}

}  // namespace
}  // namespace zc::serve
