// Timing-semantics tests for the simulated communication primitives.
#include <gtest/gtest.h>

#include "src/sim/transport.h"

namespace zc::sim {
namespace {

using ironman::CommLibrary;

class TransportTest : public ::testing::Test {
 protected:
  static constexpr int kSrc = 0;
  static constexpr int kDst = 1;

  /// Runs one full DR/SR/DN/SV exchange and returns the clock deltas.
  static std::pair<double, double> exchange(Transport& tx, double t_src0, double t_dst0,
                                            long long bytes, int64_t chan = 0) {
    double t_src = t_src0;
    double t_dst = t_dst0;
    tx.dr(chan, kSrc, kDst, bytes, t_dst);
    tx.sr(chan, kSrc, kDst, bytes, t_src);
    tx.dn(chan, kSrc, kDst, bytes, t_dst);
    tx.sv(chan, kSrc, kDst, bytes, t_src);
    return {t_src - t_src0, t_dst - t_dst0};
  }
};

TEST_F(TransportTest, PvmSenderDoesNotWaitForReceiver) {
  Transport tx(machine::t3d_model(), CommLibrary::kPVM);
  double t_src = 0.0;
  double t_dst = 100.0;  // receiver far ahead: sender must not care
  tx.dr(0, kSrc, kDst, 800, t_dst);
  tx.sr(0, kSrc, kDst, 800, t_src);
  EXPECT_LT(t_src, 1e-3);  // only the CPU-side send cost
  tx.dn(0, kSrc, kDst, 800, t_dst);
  tx.sv(0, kSrc, kDst, 800, t_src);
  EXPECT_LT(t_src, 1e-3);  // SV is a no-op for PVM
}

TEST_F(TransportTest, PvmReceiverWaitsForArrival) {
  Transport tx(machine::t3d_model(), CommLibrary::kPVM);
  double t_src = 5.0;  // sender far behind the receiver's clock? ahead:
  double t_dst = 0.0;
  tx.dr(0, kSrc, kDst, 800, t_dst);
  tx.sr(0, kSrc, kDst, 800, t_src);
  tx.dn(0, kSrc, kDst, 800, t_dst);
  // The message leaves after t=5: the receiver must wait past that.
  EXPECT_GT(t_dst, 5.0);
  tx.sv(0, kSrc, kDst, 800, t_src);
}

TEST_F(TransportTest, ShmemSenderIsGatedByDestinationReadiness) {
  Transport tx(machine::t3d_model(), CommLibrary::kSHMEM);
  double t_src = 0.0;
  double t_dst = 2.0;  // destination reaches DR late
  tx.dr(0, kSrc, kDst, 800, t_dst);
  tx.sr(0, kSrc, kDst, 800, t_src);
  // The put waits for the readiness flag posted after t=2: two-sided
  // coupling (this is what hurts TOMCATV/SP under the SHMEM prototype).
  EXPECT_GT(t_src, 2.0);
  tx.dn(0, kSrc, kDst, 800, t_dst);
  tx.sv(0, kSrc, kDst, 800, t_src);
}

TEST_F(TransportTest, PipeliningHidesWireTimeForPvm) {
  // If both endpoints are past the arrival time, DN costs only CPU time:
  // the latency was hidden by the intervening computation.
  Transport tx(machine::t3d_model(), CommLibrary::kPVM);
  double t_src = 0.0;
  double t_dst = 0.0;
  tx.dr(7, kSrc, kDst, 8000, t_dst);
  tx.sr(7, kSrc, kDst, 8000, t_src);
  // Simulate a long computation on the destination before the receive.
  t_dst += 1.0;
  const double before = t_dst;
  tx.dn(7, kSrc, kDst, 8000, t_dst);
  const double exposed = t_dst - before;
  // Exposed cost is the pvm_recv CPU cost alone, not latency + wire time.
  EXPECT_LT(exposed, 2.0 * machine::t3d_model().primitive_cpu_cost(
                               ironman::Primitive::kPvmRecv, 8000));
  tx.sv(7, kSrc, kDst, 8000, t_src);
}

TEST_F(TransportTest, UnpipelinedReceiverPaysWireTime) {
  Transport tx(machine::t3d_model(), CommLibrary::kPVM);
  double t_src = 0.0;
  double t_dst = 0.0;
  tx.dr(0, kSrc, kDst, 80000, t_dst);
  tx.sr(0, kSrc, kDst, 80000, t_src);
  tx.dn(0, kSrc, kDst, 80000, t_dst);  // immediately: must wait for the wire
  EXPECT_GT(t_dst, tx.wire_time(80000));
  tx.sv(0, kSrc, kDst, 80000, t_src);
}

TEST_F(TransportTest, NxAsyncSvWaitsForDrain) {
  Transport tx(machine::paragon_model(), CommLibrary::kNXAsync);
  double t_src = 0.0;
  double t_dst = 0.0;
  tx.dr(0, kSrc, kDst, 1 << 20, t_dst);   // irecv
  tx.sr(0, kSrc, kDst, 1 << 20, t_src);   // isend: returns fast
  const double after_isend = t_src;
  tx.sv(0, kSrc, kDst, 1 << 20, t_src);   // msgwait: buffer drain of 1 MB
  EXPECT_GT(t_src - after_isend, 1e-3);   // 1 MB over ~175 MB/s >> 1 ms
  tx.dn(0, kSrc, kDst, 1 << 20, t_dst);
}

TEST_F(TransportTest, ChannelsAreFifoAcrossRepeatedExchanges) {
  Transport tx(machine::t3d_model(), CommLibrary::kPVM);
  double t_src = 0.0;
  double t_dst = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto [ds, dd] = exchange(tx, t_src, t_dst, 256);
    t_src += ds;
    t_dst += dd;
  }
  EXPECT_EQ(tx.in_flight(), 0u);
  EXPECT_GT(t_src, 0.0);
  EXPECT_GT(t_dst, t_src);  // receiver also pays arrival latency
}

TEST_F(TransportTest, DistinctChannelsDoNotInterfere) {
  Transport tx(machine::t3d_model(), CommLibrary::kPVM);
  double t_src = 0.0;
  double t_dst = 0.0;
  // Send on channels 1 and 2, receive in the same order.
  tx.sr(1, kSrc, kDst, 80, t_src);
  tx.sr(2, kSrc, kDst, 8000, t_src);
  EXPECT_EQ(tx.in_flight(), 2u);
  double t_dst1 = t_dst;
  tx.dn(2, kSrc, kDst, 8000, t_dst1);
  tx.dn(1, kSrc, kDst, 80, t_dst1);
  EXPECT_EQ(tx.in_flight(), 0u);
}

TEST_F(TransportTest, ExposedOverheadMonotoneInSize) {
  for (const CommLibrary lib : {CommLibrary::kPVM, CommLibrary::kSHMEM}) {
    Transport tx(machine::t3d_model(), lib);
    double prev = 0.0;
    for (long long b = 8; b <= 1 << 16; b *= 2) {
      const double o = tx.exposed_overhead(b);
      EXPECT_GE(o, prev);
      prev = o;
    }
  }
}

TEST_F(TransportTest, TimingIsDeterministic) {
  auto run = [] {
    Transport tx(machine::t3d_model(), CommLibrary::kSHMEM);
    double t_src = 0.0;
    double t_dst = 0.0;
    for (int i = 0; i < 10; ++i) {
      tx.dr(0, 0, 1, 128 * (i + 1), t_dst);
      tx.sr(0, 0, 1, 128 * (i + 1), t_src);
      tx.dn(0, 0, 1, 128 * (i + 1), t_dst);
      tx.sv(0, 0, 1, 128 * (i + 1), t_src);
    }
    return t_src + t_dst;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace zc::sim
