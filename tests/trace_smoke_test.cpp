// End-to-end smoke for the tracing workflow a user would actually run: a
// small traced experiment, the Chrome JSON written to disk and validated
// with the lightweight support/json parser, and the stats CSV round-tripped
// through support/csv. The companion ctest `trace_smoke_cli` drives the
// same flow through the comm_explorer binary's flags.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/driver/driver.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/support/csv.h"
#include "src/support/json.h"
#include "src/trace/chrome.h"
#include "src/trace/recorder.h"

namespace zc::trace {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceSmoke, SmallTracedRunExportsValidJsonAndCsv) {
  const programs::BenchmarkInfo& info = programs::benchmark("tomcatv");
  const zir::Program program = parser::parse_program(info.source);

  Recorder recorder(4);
  sim::RunConfig cfg;
  cfg.procs = 4;
  cfg.config_overrides = info.test_configs;
  cfg.recorder = &recorder;
  const driver::Metrics m =
      driver::run_experiment(program, *driver::find_experiment("pl"), cfg);
  ASSERT_TRUE(m.trace_stats.has_value());
  ASSERT_GT(m.run.total_messages, 0);

  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "zc_trace_smoke";
  std::filesystem::create_directories(dir);

  // Chrome trace: write, read back, parse, sanity-check the shape.
  const std::filesystem::path json_path = dir / "trace.json";
  write_chrome_trace(recorder, json_path.string());
  const json::Value doc = json::parse(read_file(json_path));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  EXPECT_GT(events.array.size(), 0u);
  long long proc_tracks = 0;
  for (const json::Value& e : events.array) {
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name" &&
        e.at("pid").number == 1.0) {
      ++proc_tracks;
    }
  }
  EXPECT_EQ(proc_tracks, 4);

  // Stats CSV: write, parse with support/csv, check a known cell, and
  // confirm the parsed document re-renders to the identical bytes.
  const std::filesystem::path csv_path = dir / "stats.csv";
  {
    std::ofstream out(csv_path);
    ASSERT_TRUE(out.good());
    out << m.trace_stats->to_csv();
  }
  const std::string csv_text = read_file(csv_path);
  const Csv csv = parse_csv(csv_text);
  ASSERT_EQ(csv.headers, (std::vector<std::string>{"name", "value"}));
  bool saw_total = false;
  for (const auto& row : csv.rows) {
    ASSERT_EQ(row.size(), 2u);
    if (row[0] == "total_messages") {
      EXPECT_EQ(row[1], std::to_string(m.run.total_messages));
      saw_total = true;
    }
  }
  EXPECT_TRUE(saw_total);

  CsvWriter rewriter(csv.headers);
  for (const auto& row : csv.rows) rewriter.add_row(row);
  EXPECT_EQ(rewriter.to_string(), csv_text);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace zc::trace
