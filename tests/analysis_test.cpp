// Attribution engine tests: the per-transfer blame conservation law on all
// four paper benchmarks (rows partition the trace's exposed overhead, even
// on capped traces), critical-path decomposition of the makespan, honest
// degradation when detail buffers were truncated, the differential
// conservation law (per-decision savings sum to the end-to-end exposed
// delta for mv vs. mv+rr+cc+pl), and the pure-post-processing contract
// (attribution never perturbs the simulated metrics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/blame.h"
#include "src/analysis/critpath.h"
#include "src/analysis/diff.h"
#include "src/driver/driver.h"
#include "src/driver/report.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/support/json.h"
#include "src/trace/recorder.h"
#include "src/trace/stats.h"

namespace zc::analysis {
namespace {

constexpr const char* kBenchmarks[] = {"tomcatv", "swm", "simple", "sp"};

driver::Metrics run_traced(const std::string& bench, const std::string& experiment,
                           trace::Recorder& recorder, int procs = 16) {
  const programs::BenchmarkInfo& info = programs::benchmark(bench);
  const zir::Program program = parser::parse_program(info.source);
  sim::RunConfig cfg;
  cfg.procs = procs;
  cfg.config_overrides = info.test_configs;
  cfg.recorder = &recorder;
  return driver::run_experiment(program, *driver::find_experiment(experiment), cfg);
}

/// |a - b| within 1e-9 relative (plus an absolute floor for zero totals).
void expect_conserved(double a, double b, const std::string& what) {
  EXPECT_NEAR(a, b, 1e-12 + 1e-9 * std::max(std::abs(a), std::abs(b))) << what;
}

TEST(Blame, ConservationLawHoldsOnAllBenchmarks) {
  for (const char* bench : kBenchmarks) {
    for (const char* experiment : {"baseline", "pl"}) {
      const std::string what = std::string(bench) + "/" + experiment;
      trace::Recorder rec(16);
      const driver::Metrics m = run_traced(bench, experiment, rec);
      const programs::BenchmarkInfo& info = programs::benchmark(bench);
      const zir::Program program = parser::parse_program(info.source);

      const BlameReport report = compute_blame(rec, program, m.plan);
      ASSERT_FALSE(report.rows.empty()) << what;

      // The rows partition the trace's exposed IRONMAN overhead.
      double row_sum = 0.0;
      for (const BlameRow& row : report.rows) row_sum += row.exposed_overhead_seconds();
      expect_conserved(row_sum, report.total_exposed_seconds, what);
      expect_conserved(report.total_exposed_seconds,
                       m.trace_stats->exposed_overhead_seconds, what);

      // And the wire decomposition reconciles with the recorder's totals.
      expect_conserved(report.wire.wire_seconds, rec.wire_totals().wire_seconds, what);
      expect_conserved(report.wire.exposed_seconds, rec.wire_totals().exposed_seconds, what);
    }
  }
}

TEST(Blame, ConservationSurvivesCappedTraces) {
  // Tiny detail buffers: nearly everything is dropped, but the per-transfer
  // aggregates are exact by construction, so blame still reconciles.
  trace::RecorderOptions opts;
  opts.max_events_per_proc = 8;
  opts.max_messages = 4;
  trace::Recorder rec(16, opts);
  const driver::Metrics m = run_traced("tomcatv", "pl", rec);
  ASSERT_GT(rec.dropped_events(), 0);

  const BlameReport report = compute_blame(rec);
  expect_conserved(report.total_exposed_seconds, m.trace_stats->exposed_overhead_seconds,
                   "capped tomcatv/pl");
}

TEST(Blame, RowsCarryAnchorsLabelsAndMembers) {
  trace::Recorder rec(16);
  const driver::Metrics m = run_traced("tomcatv", "pl", rec);
  const zir::Program program =
      parser::parse_program(programs::benchmark("tomcatv").source);

  const BlameReport report = compute_blame(rec, program, m.plan);
  for (const BlameRow& row : report.rows) {
    if (row.transfer < 0) continue;  // the untagged bucket has no plan row
    EXPECT_FALSE(row.label.empty()) << row.transfer;
    EXPECT_GE(row.anchor.block, 0) << row.transfer;
    EXPECT_GT(row.anchor.use_line, 0) << row.transfer;
    EXPECT_FALSE(row.members.empty()) << row.transfer;
  }
  // Renders don't choke and the JSON round-trips.
  EXPECT_FALSE(report.to_string(5).empty());
  EXPECT_FALSE(report.to_csv().empty());
  const std::string dumped = report.to_json().dump();
  EXPECT_EQ(json::parse(dumped).dump(), dumped);
}

TEST(CriticalPath, DecomposesMakespanExactly) {
  trace::Recorder rec(16);
  const driver::Metrics m = run_traced("tomcatv", "pl", rec);
  const zir::Program program =
      parser::parse_program(programs::benchmark("tomcatv").source);

  const CriticalPathReport cp = compute_critical_path(rec, program, m.plan);
  ASSERT_TRUE(cp.exact);
  ASSERT_FALSE(cp.segments.empty());
  EXPECT_GT(cp.makespan, 0.0);
  // The makespan is the latest recorded event end; trailing scalar work can
  // only push the engine's elapsed time past it, never the other way.
  EXPECT_LE(cp.makespan, m.execution_time * (1.0 + 1e-12));

  double kind_sum = cp.compute_seconds + cp.call_cpu_seconds + cp.call_wait_seconds +
                    cp.wire_seconds + cp.barrier_seconds + cp.untracked_seconds;
  expect_conserved(kind_sum, cp.makespan, "kind decomposition");

  double seg_sum = 0.0;
  for (const PathSegment& seg : cp.segments) {
    EXPECT_GE(seg.seconds(), 0.0);
    seg_sum += seg.seconds();
  }
  expect_conserved(seg_sum, cp.makespan, "segment coverage");

  ASSERT_FALSE(cp.transfers.empty());
  for (const PathTransfer& t : cp.transfers) {
    EXPECT_GE(t.slack_seconds, 0.0);
    EXPECT_GT(t.messages, 0);
    if (t.on_path) EXPECT_GT(t.path_seconds, 0.0);
  }
  const std::string dumped = cp.to_json().dump();
  EXPECT_EQ(json::parse(dumped).dump(), dumped);
}

TEST(CriticalPath, DegradesHonestlyWhenCapped) {
  trace::RecorderOptions opts;
  opts.max_events_per_proc = 8;
  opts.max_messages = 4;
  trace::Recorder rec(16, opts);
  run_traced("tomcatv", "pl", rec);

  const CriticalPathReport cp = compute_critical_path(rec);
  EXPECT_FALSE(cp.exact);
  EXPECT_TRUE(cp.segments.empty()) << "no walk on a truncated trace";
  EXPECT_GT(cp.makespan, 0.0);
  EXPECT_FALSE(cp.to_string(5).empty());
}

TEST(Differential, SavingsSumToEndToEndDelta) {
  // The paper's headline question, per decision: mv (baseline) vs. the full
  // mv+rr+cc+pl pipeline. The components plus the untagged delta must
  // partition the end-to-end exposed-overhead delta exactly.
  for (const char* bench : kBenchmarks) {
    trace::Recorder rec_before(16);
    const driver::Metrics before = run_traced(bench, "baseline", rec_before);
    trace::Recorder rec_after(16);
    const driver::Metrics after = run_traced(bench, "pl", rec_after);
    const zir::Program program =
        parser::parse_program(programs::benchmark(bench).source);

    const BlameReport blame_before = compute_blame(rec_before, program, before.plan);
    const BlameReport blame_after = compute_blame(rec_after, program, after.plan);
    const BlameDiff diff = diff_blame(blame_before, blame_after, "baseline", "pl");

    double component_sum = diff.untagged_savings_seconds;
    std::set<int> seen;
    for (const DiffComponent& c : diff.components) {
      component_sum += c.savings_seconds();
      for (const int id : c.transfers) {
        EXPECT_TRUE(seen.insert(id).second)
            << bench << ": transfer " << id << " in two components";
      }
    }
    expect_conserved(component_sum, diff.total_savings_seconds(), bench);
    expect_conserved(diff.total_savings_seconds(),
                     before.trace_stats->exposed_overhead_seconds -
                         after.trace_stats->exposed_overhead_seconds,
                     bench);
    // The full pipeline helps every paper benchmark at this scale.
    EXPECT_GT(diff.total_savings_seconds(), 0.0) << bench;
  }
}

TEST(Differential, ClassifiesOptimizerDecisions) {
  trace::Recorder rec_before(16);
  const driver::Metrics before = run_traced("swm", "baseline", rec_before);
  trace::Recorder rec_after(16);
  const driver::Metrics after = run_traced("swm", "pl", rec_after);
  const zir::Program program = parser::parse_program(programs::benchmark("swm").source);

  const BlameDiff diff = diff_blame(compute_blame(rec_before, program, before.plan),
                                    compute_blame(rec_after, program, after.plan),
                                    "baseline", "pl");
  int removed_or_merged = 0;
  for (const DiffComponent& c : diff.components) {
    if (c.kind == ComponentKind::kRemoved || c.kind == ComponentKind::kMerged) {
      ++removed_or_merged;
      EXPECT_GT(c.rows_before, c.rows_after) << c.label;
    }
  }
  EXPECT_GT(removed_or_merged, 0) << "rr/cc must show up as removed/merged components";
  const std::string dumped = diff.to_json().dump();
  EXPECT_EQ(json::parse(dumped).dump(), dumped);
}

TEST(Attribution, IsPurePostProcessing) {
  // Attribution reads the recorder after the run; the simulated metrics of
  // a traced+attributed run must stay bitwise identical to an untraced run.
  const programs::BenchmarkInfo& info = programs::benchmark("swm");
  const zir::Program program = parser::parse_program(info.source);
  const auto exp = driver::find_experiment("pl");
  ASSERT_TRUE(exp.has_value());

  const driver::Metrics plain =
      driver::run_source(info.source, *exp, 16, info.test_configs);

  trace::Recorder rec(16);
  sim::RunConfig cfg;
  cfg.procs = 16;
  cfg.config_overrides = info.test_configs;
  cfg.recorder = &rec;
  const json::Value doc = driver::run_report(program, *exp, std::move(cfg));

  ASSERT_TRUE(doc.has("blame"));
  ASSERT_TRUE(doc.has("critical_path"));
  EXPECT_EQ(doc.at("execution_time_seconds").number, plain.execution_time);  // bitwise
  EXPECT_EQ(doc.at("static_count").number, static_cast<double>(plain.static_count));
  EXPECT_EQ(doc.at("dynamic_count").number, static_cast<double>(plain.dynamic_count));
  EXPECT_EQ(doc.at("total_messages").number,
            static_cast<double>(plain.run.total_messages));
}

}  // namespace
}  // namespace zc::analysis
