// Provenance and observability invariants:
//   - attaching a PassLog never changes the produced CommPlan (the
//     zero-overhead-off contract's "bit-identical" half);
//   - every rr decision names a live covering transfer of the same array
//     and direction;
//   - cc group members partition the live transfers of their block;
//   - pl placements stay within the feasible send interval and report a
//     non-negative hoist;
// plus unit coverage of the metrics registry and the JSON builder.
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/comm/optimizer.h"
#include "src/driver/driver.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/report/passlog.h"
#include "src/support/diag.h"
#include "src/support/io.h"
#include "src/support/json.h"
#include "src/support/metrics.h"

namespace {

using namespace zc;

const std::vector<std::string>& bench_names() {
  static const std::vector<std::string> names = {"tomcatv", "swm", "simple", "sp"};
  return names;
}

/// Every optimizer configuration worth checking provenance under: the four
/// cumulative levels, the inter-block extension, and the non-default
/// combining heuristics.
std::vector<std::pair<std::string, comm::OptOptions>> option_matrix() {
  using comm::CombineHeuristic;
  using comm::OptLevel;
  using comm::OptOptions;

  std::vector<std::pair<std::string, comm::OptOptions>> v;
  v.emplace_back("baseline", OptOptions::for_level(OptLevel::kBaseline));
  v.emplace_back("rr", OptOptions::for_level(OptLevel::kRR));
  v.emplace_back("cc", OptOptions::for_level(OptLevel::kCC));
  v.emplace_back("pl", OptOptions::for_level(OptLevel::kPL));

  OptOptions inter = OptOptions::for_level(OptLevel::kPL);
  inter.inter_block = true;
  v.emplace_back("pl+inter", inter);

  OptOptions maxlat = OptOptions::for_level(OptLevel::kPL);
  maxlat.heuristic = CombineHeuristic::kMaxLatency;
  v.emplace_back("pl/maxlat", maxlat);

  OptOptions hybrid = OptOptions::for_level(OptLevel::kPL);
  hybrid.heuristic = CombineHeuristic::kHybrid;
  v.emplace_back("pl/hybrid", hybrid);
  return v;
}

TEST(PassLogTest, PlanBitIdenticalWithLogAttached) {
  for (const std::string& bench : bench_names()) {
    const zir::Program program = parser::parse_program(programs::benchmark(bench).source);
    for (const auto& [label, opts] : option_matrix()) {
      const comm::CommPlan bare = comm::plan_communication(program, opts);

      report::PassLog log;
      comm::OptOptions logged = opts;
      logged.pass_log = &log;
      const comm::CommPlan observed = comm::plan_communication(program, logged);

      SCOPED_TRACE(bench + " / " + label);
      EXPECT_EQ(bare.static_count(), observed.static_count());
      EXPECT_EQ(bare.total_transfer_count(), observed.total_transfer_count());
      EXPECT_EQ(comm::to_string(bare, program), comm::to_string(observed, program));
    }
  }
}

TEST(PassLogTest, RRDecisionsNameLiveCoverers) {
  for (const std::string& bench : bench_names()) {
    const zir::Program program = parser::parse_program(programs::benchmark(bench).source);
    for (const auto& [label, opts] : option_matrix()) {
      report::PassLog log;
      comm::OptOptions logged = opts;
      logged.pass_log = &log;
      const comm::CommPlan plan = comm::plan_communication(program, logged);
      SCOPED_TRACE(bench + " / " + label);

      int redundant = 0;
      for (const comm::BlockPlan& bp : plan.blocks) {
        for (const comm::Transfer& t : bp.transfers) redundant += t.redundant ? 1 : 0;
      }
      EXPECT_EQ(static_cast<int>(log.rr.size()), redundant)
          << "one decision per killed transfer";

      for (const report::RRDecision& d : log.rr) {
        ASSERT_GE(d.where.block, 0);
        ASSERT_LT(d.where.block, static_cast<int>(plan.blocks.size()));
        const comm::BlockPlan& bp = plan.blocks[d.where.block];
        ASSERT_GE(d.transfer, 0);
        ASSERT_LT(d.transfer, static_cast<int>(bp.transfers.size()));
        const comm::Transfer& killed = bp.transfers[d.transfer];
        EXPECT_TRUE(killed.redundant);
        EXPECT_EQ(program.array(killed.array).name, d.array);
        EXPECT_EQ(program.direction(killed.direction).name, d.direction);

        ASSERT_GE(d.covering_block, 0);
        ASSERT_LT(d.covering_block, static_cast<int>(plan.blocks.size()));
        const comm::BlockPlan& cbp = plan.blocks[d.covering_block];
        ASSERT_GE(d.covering_transfer, 0);
        ASSERT_LT(d.covering_transfer, static_cast<int>(cbp.transfers.size()));
        const comm::Transfer& coverer = cbp.transfers[d.covering_transfer];
        EXPECT_FALSE(coverer.redundant) << "coverer must be live in the plan";
        EXPECT_EQ(coverer.array, killed.array);
        EXPECT_EQ(coverer.direction, killed.direction);
        EXPECT_NE(&coverer, &killed);
        // After resolve_rr_coverers() even an intra-block decision may point
        // at an earlier block (its original coverer was itself killed by the
        // inter-block pass); within one block the coverer must come first.
        if (d.covering_block == d.where.block) {
          EXPECT_LT(coverer.use_stmt, killed.use_stmt)
              << "an intra-block coverer precedes its kill";
        } else {
          EXPECT_TRUE(opts.inter_block)
              << "cross-block coverage requires the inter-block extension";
          EXPECT_LT(d.covering_block, d.where.block)
              << "flow order: the coverer's block precedes the kill's";
        }
      }
    }
  }
}

TEST(PassLogTest, CCGroupMembersPartitionLiveTransfers) {
  for (const std::string& bench : bench_names()) {
    const zir::Program program = parser::parse_program(programs::benchmark(bench).source);
    for (const auto& [label, opts] : option_matrix()) {
      report::PassLog log;
      comm::OptOptions logged = opts;
      logged.pass_log = &log;
      const comm::CommPlan plan = comm::plan_communication(program, logged);
      SCOPED_TRACE(bench + " / " + label);

      for (const comm::BlockPlan& bp : plan.blocks) {
        // (array, direction, use_stmt) identifies a live transfer within a
        // block; the groups' members must cover each exactly once.
        std::multiset<std::tuple<int, int, int>> live;
        for (const comm::Transfer& t : bp.transfers) {
          if (!t.redundant) {
            live.emplace(t.array.index(), t.direction.index(), t.use_stmt);
          }
        }
        std::multiset<std::tuple<int, int, int>> grouped;
        for (const comm::CommGroup& g : bp.groups) {
          for (const comm::Member& m : g.members) {
            grouped.emplace(m.array.index(), g.direction.index(), m.use_stmt);
          }
        }
        EXPECT_EQ(live, grouped) << "groups must partition the live transfers";
      }

      for (const report::CCMerge& m : log.cc) {
        ASSERT_GE(m.where.block, 0);
        ASSERT_LT(m.where.block, static_cast<int>(plan.blocks.size()));
        const comm::BlockPlan& bp = plan.blocks[m.where.block];
        ASSERT_GE(m.group, 0);
        ASSERT_LT(m.group, static_cast<int>(bp.groups.size()));
        const comm::CommGroup& g = bp.groups[m.group];
        EXPECT_GE(m.members_after, 2) << "a merge implies at least two members";
        EXPECT_LE(m.members_after, static_cast<int>(g.members.size()));
        EXPECT_TRUE(g.has_member(program.find_array(m.array)))
            << m.array << " must be a member of the group it joined";
        EXPECT_EQ(m.heuristic, comm::to_string(logged.heuristic));
        EXPECT_GT(m.group_est_elems, 0);
        EXPECT_GE(m.group_est_elems, m.est_elems);
      }
      if (!opts.combine) EXPECT_TRUE(log.cc.empty());
    }
  }
}

TEST(PassLogTest, PLPlacementsStayWithinFeasibleInterval) {
  for (const std::string& bench : bench_names()) {
    const zir::Program program = parser::parse_program(programs::benchmark(bench).source);
    for (const auto& [label, opts] : option_matrix()) {
      report::PassLog log;
      comm::OptOptions logged = opts;
      logged.pass_log = &log;
      const comm::CommPlan plan = comm::plan_communication(program, logged);
      SCOPED_TRACE(bench + " / " + label);

      EXPECT_EQ(static_cast<int>(log.pl.size()), plan.static_count())
          << "one placement record per communication";
      for (const report::PLPlacement& p : log.pl) {
        ASSERT_GE(p.where.block, 0);
        ASSERT_LT(p.where.block, static_cast<int>(plan.blocks.size()));
        const comm::BlockPlan& bp = plan.blocks[p.where.block];
        ASSERT_GE(p.group, 0);
        ASSERT_LT(p.group, static_cast<int>(bp.groups.size()));
        const comm::CommGroup& g = bp.groups[p.group];

        EXPECT_EQ(p.sr_pos, g.sr_pos);
        EXPECT_EQ(p.dn_pos, g.dn_pos);
        EXPECT_EQ(p.sv_pos, g.sv_pos);
        EXPECT_EQ(p.earliest_send, g.earliest_send);
        EXPECT_EQ(p.first_use, g.first_use);
        EXPECT_EQ(program.direction(g.direction).name, p.direction);

        EXPECT_GE(p.sr_hoist, 0) << "hoist distance is never negative";
        EXPECT_EQ(p.sr_hoist, p.first_use - p.sr_pos);
        EXPECT_GE(p.sr_pos, p.earliest_send) << "SR within the feasible interval";
        EXPECT_LE(p.sr_pos, p.first_use);
        EXPECT_EQ(p.dn_pos, p.first_use) << "DN stays at the first use";
        EXPECT_EQ(p.pipelined, opts.pipeline);
        if (!opts.pipeline) EXPECT_EQ(p.sr_hoist, 0);
      }
    }
  }

  // The paper's pipelining claim, spot-checked: TOMCATV under `pl` hoists at
  // least one SR above its DN.
  const zir::Program tomcatv =
      parser::parse_program(programs::benchmark("tomcatv").source);
  report::PassLog log;
  comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kPL);
  opts.pass_log = &log;
  comm::plan_communication(tomcatv, opts);
  EXPECT_GT(log.total_sr_hoist(), 0);
}

TEST(PassLogTest, DriverRunIsBitIdenticalWithLogAttached) {
  const programs::BenchmarkInfo& info = programs::benchmark("tomcatv");
  const zir::Program program = parser::parse_program(info.source);
  auto exp = driver::find_experiment("pl");
  ASSERT_TRUE(exp.has_value());

  const auto run = [&](report::PassLog* log) {
    driver::Experiment e = *exp;
    e.opts.pass_log = log;
    sim::RunConfig cfg;
    cfg.procs = 4;
    cfg.config_overrides = info.test_configs;
    return driver::run_experiment(program, e, std::move(cfg));
  };

  const driver::Metrics bare = run(nullptr);
  report::PassLog log;
  const driver::Metrics observed = run(&log);

  EXPECT_EQ(bare.static_count, observed.static_count);
  EXPECT_EQ(bare.dynamic_count, observed.dynamic_count);
  EXPECT_EQ(bare.execution_time, observed.execution_time) << "bitwise-equal simulated time";
  EXPECT_FALSE(log.pl.empty());
}

TEST(PassLogTest, ToStringNamesEveryPassWithProvenance) {
  const zir::Program program =
      parser::parse_program(programs::benchmark("tomcatv").source);
  report::PassLog log;
  comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kPL);
  opts.pass_log = &log;
  comm::plan_communication(program, opts);

  const std::string text = log.to_string();
  EXPECT_NE(text.find("rr:"), std::string::npos);
  EXPECT_NE(text.find("cc:"), std::string::npos);
  EXPECT_NE(text.find("pl:"), std::string::npos);
  EXPECT_NE(text.find("[block "), std::string::npos) << "decisions carry source anchors";
}

TEST(MetricsTest, CountersGaugesAndHistograms) {
  metrics::Registry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("absent"), 0);
  EXPECT_EQ(reg.gauge_value("absent"), 0.0);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);

  reg.count("runs");
  reg.count("runs", 2);
  reg.gauge("temp", 1.5);
  reg.gauge("temp", 2.5);
  reg.observe("sizes", 3.0, {2.0, 4.0});
  reg.observe("sizes", 5.0, {99.0});  // later bounds are ignored

  EXPECT_EQ(reg.counter("runs"), 3);
  EXPECT_EQ(reg.gauge_value("temp"), 2.5);
  const metrics::Histogram* h = reg.find_histogram("sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum, 8.0);
  EXPECT_EQ(h->min, 3.0);
  EXPECT_EQ(h->max, 5.0);
  ASSERT_EQ(h->bounds, (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(h->buckets, (std::vector<long long>{0, 1, 1}));

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("counter runs 3"), std::string::npos);
  EXPECT_NE(text.find("gauge temp 2.5"), std::string::npos);
  EXPECT_NE(text.find("hist sizes"), std::string::npos);

  const json::Value doc = json::parse(reg.to_json().dump());
  EXPECT_EQ(doc.at("counters").at("runs").number, 3.0);
  EXPECT_EQ(doc.at("gauges").at("temp").number, 2.5);
  EXPECT_EQ(doc.at("histograms").at("sizes").at("count").number, 2.0);

  reg.reset();
  EXPECT_TRUE(reg.empty());
}

TEST(MetricsTest, HistogramQuantilesPinnedOnKnownSamples) {
  // Ten samples 1..10, one per bucket: the rank interpolation is exact, so
  // the quantiles are pinnable values rather than bucket-resolution blurs.
  metrics::Registry reg;
  std::vector<double> bounds;
  for (int i = 1; i <= 10; ++i) bounds.push_back(static_cast<double>(i));
  for (int i = 1; i <= 10; ++i) reg.observe("latency", static_cast<double>(i), bounds);

  const metrics::Histogram* h = reg.find_histogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.90), 9.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.99), 9.9);
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 10.0);

  // Values beyond the last bound land in the overflow bucket and clamp to
  // the observed max rather than extrapolating to infinity.
  reg.observe("over", 1.0, {2.0});
  reg.observe("over", 50.0, {2.0});
  const metrics::Histogram* o = reg.find_histogram("over");
  ASSERT_NE(o, nullptr);
  EXPECT_LE(o->quantile(0.99), 50.0);
  EXPECT_GE(o->quantile(0.99), 2.0);

  // Empty histogram: quantiles are defined (0), never NaN.
  const metrics::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // Both expositions carry the summaries.
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("hist latency count 10"), std::string::npos);
  EXPECT_NE(text.find(" p50 5 p90 9 p99 9.9"), std::string::npos);
  const json::Value doc = json::parse(reg.to_json().dump());
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("latency").at("p50").number, 5.0);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("latency").at("p90").number, 9.0);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("latency").at("p99").number, 9.9);
}

TEST(MetricsTest, OptimizerAndDriverPublish) {
  auto& reg = metrics::Registry::global();
  reg.reset();

  const programs::BenchmarkInfo& info = programs::benchmark("tomcatv");
  driver::run_source(info.source, *driver::find_experiment("pl"), 4, info.test_configs);

  EXPECT_EQ(reg.counter("driver.experiments"), 1);
  EXPECT_EQ(reg.counter("opt.plans"), 1);
  EXPECT_GT(reg.counter("opt.transfers_generated"), 0);
  EXPECT_GT(reg.counter("sim.communications"), 0);
  EXPECT_GT(reg.gauge_value("driver.last_execution_seconds"), 0.0);
  EXPECT_EQ(reg.gauge_value("driver.last_dynamic_count"),
            static_cast<double>(reg.counter("sim.communications")));
  EXPECT_NE(reg.find_histogram("opt.sr_hoist_stmts"), nullptr);
  reg.reset();
}

TEST(JsonBuilderTest, DumpParseRoundTrip) {
  json::Value doc = json::Value::make_object();
  doc["int"] = json::Value::make_int(42);
  doc["float"] = json::Value::make_num(2.5);
  doc["big"] = json::Value::make_num(1e100);
  doc["str"] = json::Value::make_str("line\n\"quote\"\t\\");
  doc["flag"] = json::Value::make_bool(true);
  doc["none"] = json::Value::make_null();
  doc["nan"] = json::Value::make_num(std::nan(""));
  json::Value arr = json::Value::make_array();
  for (int i = 0; i < 3; ++i) arr.push_back(json::Value::make_int(i));
  doc["list"] = std::move(arr);
  doc["nested"]["implicit"] = json::Value::make_str("objects on demand");

  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"int\": 42"), std::string::npos) << "integral doubles print as integers";
  const json::Value back = json::parse(text);
  EXPECT_EQ(back.at("int").number, 42.0);
  EXPECT_EQ(back.at("float").number, 2.5);
  EXPECT_EQ(back.at("big").number, 1e100);
  EXPECT_EQ(back.at("str").string, "line\n\"quote\"\t\\");
  EXPECT_TRUE(back.at("flag").boolean);
  EXPECT_TRUE(back.at("none").is_null());
  EXPECT_TRUE(back.at("nan").is_null()) << "non-finite numbers render as null";
  ASSERT_EQ(back.at("list").array.size(), 3u);
  EXPECT_EQ(back.at("list").array[2].number, 2.0);
  EXPECT_EQ(back.at("nested").at("implicit").string, "objects on demand");

  EXPECT_EQ(json::parse(text).dump(), text) << "dump is a fixed point through parse";
  EXPECT_EQ(doc.dump(0).find('\n'), std::string::npos) << "indent 0 is single-line";
}

TEST(IoTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/zc_io_test.txt";
  io::write_text_file(path, "round\ntrip\n");
  EXPECT_EQ(io::read_text_file(path), "round\ntrip\n");
}

TEST(IoTest, UnwritablePathThrowsWithPath) {
  try {
    io::write_text_file("/nonexistent-dir/out.json", "x");
    FAIL() << "expected zc::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir/out.json"), std::string::npos);
  }
  EXPECT_THROW(io::read_text_file("/nonexistent-dir/in.json"), Error);
}

}  // namespace
