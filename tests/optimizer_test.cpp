// Unit tests for the communication optimizer, built around the paper's own
// examples: Figure 1 (naive generation, redundant removal, combination,
// pipelining) and the §3.1 descriptions of each pass.
#include <gtest/gtest.h>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"

namespace zc::comm {
namespace {

zir::Program figure1_program() {
  // The paper's Figure 1:
  //   B := f()
  //   A := B@east      (communication of B)
  //   C := B@east      (redundant communication of B)
  //   D := E@east      (combinable with B's communication)
  return parser::parse_program(R"(
program fig1;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C, D, E : [R] double;
procedure main() {
  [R] B := Index1 * 0.5;
  [R] A := B@east;
  [R] C := B@east;
  [R] D := E@east;
}
)");
}

CommPlan plan_fig1(OptOptions opts) {
  return plan_communication(figure1_program(), opts);
}

TEST(Generate, NaiveOneTransferPerUse) {
  const CommPlan plan = plan_fig1(OptOptions{});
  ASSERT_EQ(plan.blocks.size(), 1u);
  const BlockPlan& b = plan.blocks[0];
  // Figure 1(a): three communications, one per shifted reference.
  ASSERT_EQ(b.transfers.size(), 3u);
  EXPECT_EQ(b.transfers[0].use_stmt, 1);
  EXPECT_EQ(b.transfers[1].use_stmt, 2);
  EXPECT_EQ(b.transfers[2].use_stmt, 3);
  EXPECT_EQ(plan.static_count(), 3);
  // Baseline placement: all four calls immediately before the use.
  for (const CommGroup& g : b.groups) {
    EXPECT_EQ(g.sr_pos, g.first_use);
    EXPECT_EQ(g.dn_pos, g.first_use);
    EXPECT_EQ(g.dr_pos, g.sr_pos);
    EXPECT_EQ(g.window(), 0);
  }
}

TEST(Generate, EarliestSendAfterLastWrite) {
  const CommPlan plan = plan_fig1(OptOptions{});
  const BlockPlan& b = plan.blocks[0];
  // B is written by statement 0, so B@east may be sent from point 1 on;
  // E is never written in the block, so from the block top.
  EXPECT_EQ(b.transfers[0].earliest_send, 1);
  EXPECT_EQ(b.transfers[2].earliest_send, 0);
}

TEST(RedundantRemoval, Figure1b) {
  OptOptions opts;
  opts.remove_redundant = true;
  const CommPlan plan = plan_fig1(opts);
  const BlockPlan& b = plan.blocks[0];
  // The second communication of B is redundant and removed.
  ASSERT_EQ(b.transfers.size(), 3u);
  EXPECT_FALSE(b.transfers[0].redundant);
  EXPECT_TRUE(b.transfers[1].redundant);
  EXPECT_FALSE(b.transfers[2].redundant);
  EXPECT_EQ(plan.static_count(), 2);
}

TEST(RedundantRemoval, WriteInvalidatesCache) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := B@east;
  [R] B := A;
  [R] A := B@east;
}
)");
  OptOptions opts;
  opts.remove_redundant = true;
  const CommPlan plan = plan_communication(p, opts);
  // B modified between the two uses: the second transfer is NOT redundant.
  EXPECT_EQ(plan.static_count(), 2);
}

TEST(RedundantRemoval, SmallerRegionIsCovered) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main() {
  [1..n, 1..n] A := B@east;
  [2..4, 2..4] C := B@east;
}
)");
  OptOptions opts;
  opts.remove_redundant = true;
  const CommPlan plan = plan_communication(p, opts);
  EXPECT_EQ(plan.static_count(), 1);
}

TEST(RedundantRemoval, LargerRegionIsNotCovered) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main() {
  [2..4, 2..4] A := B@east;
  [1..n, 1..n] C := B@east;
}
)");
  OptOptions opts;
  opts.remove_redundant = true;
  const CommPlan plan = plan_communication(p, opts);
  // The first transfer only cached a 3x3 slice: the full-region use still
  // needs its own communication.
  EXPECT_EQ(plan.static_count(), 2);
}

TEST(RedundantRemoval, DoesNotCrossBlockBoundaries) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := B@east;
  repeat 2 {
    [R] A := B@east;
  }
}
)");
  OptOptions opts;
  opts.remove_redundant = true;
  const CommPlan plan = plan_communication(p, opts);
  // The loop-body use is in a different basic block: both survive.
  EXPECT_EQ(plan.static_count(), 2);
}

TEST(Combination, Figure1c) {
  OptOptions opts;
  opts.remove_redundant = true;
  opts.combine = true;
  const CommPlan plan = plan_fig1(opts);
  const BlockPlan& b = plan.blocks[0];
  // B and E move in one combined communication.
  ASSERT_EQ(b.groups.size(), 1u);
  ASSERT_EQ(b.groups[0].members.size(), 2u);
  EXPECT_EQ(plan.static_count(), 1);
}

TEST(Combination, RequiresSameDirection) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1], west = [0, -1];
var A, B, C, D : [R] double;
procedure main() {
  [R] A := B@east;
  [R] C := D@west;
}
)");
  OptOptions opts;
  opts.combine = true;
  const CommPlan plan = plan_communication(p, opts);
  EXPECT_EQ(plan.static_count(), 2);
}

TEST(Combination, IllegalWhenMemberWrittenBetween) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, E, D : [R] double;
procedure main() {
  [R] A := B@east;
  [R] E := A;
  [R] D := E@east;
}
)");
  OptOptions opts;
  opts.combine = true;
  const CommPlan plan = plan_communication(p, opts);
  // E is written after B's communication point and before E's use: the
  // combined message would carry stale E values. Two communications.
  EXPECT_EQ(plan.static_count(), 2);
}

TEST(Combination, NeverMergesSameArray) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := B@east;
  [R] B := A;
  [R] A := B@east + A;
}
)");
  OptOptions opts;
  opts.combine = true;  // note: rr off — duplicates survive to grouping
  const CommPlan plan = plan_communication(p, opts);
  EXPECT_EQ(plan.static_count(), 2);
}

TEST(Pipelining, Figure1d) {
  OptOptions opts;
  opts.remove_redundant = true;
  opts.combine = true;
  opts.pipeline = true;
  const CommPlan plan = plan_fig1(opts);
  const BlockPlan& b = plan.blocks[0];
  ASSERT_EQ(b.groups.size(), 1u);
  const CommGroup& g = b.groups[0];
  // Send hoisted to just after B's write (point 1); receive stays at the
  // first use (point 1... B is used at statement 1).
  EXPECT_EQ(g.sr_pos, 1);
  EXPECT_EQ(g.dn_pos, 1);
}

TEST(Pipelining, HoistsToTopOfBlockWhenNoWrite) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C, D : [R] double;
procedure main() {
  [R] A := C;
  [R] C := A + 1.0;
  [R] D := B@east;
}
)");
  OptOptions opts;
  opts.pipeline = true;
  const CommPlan plan = plan_communication(p, opts);
  const CommGroup& g = plan.blocks[0].groups[0];
  EXPECT_EQ(g.sr_pos, 0);  // top of block
  EXPECT_EQ(g.dn_pos, 2);  // just before the use
  EXPECT_EQ(g.window(), 2);
}

TEST(Pipelining, SendWaitsForLastWrite) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main() {
  [R] B := A;
  [R] C := A;
  [R] B := C;
  [R] A := B@east;
}
)");
  OptOptions opts;
  opts.pipeline = true;
  const CommPlan plan = plan_communication(p, opts);
  const CommGroup& g = plan.blocks[0].groups[0];
  EXPECT_EQ(g.sr_pos, 3);  // B last written by statement 2
  EXPECT_EQ(g.dn_pos, 3);
}

TEST(Pipelining, SvPlacedBeforeNextWriteOfMember) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main() {
  [R] A := B@east;
  [R] C := A;
  [R] B := C;
}
)");
  OptOptions opts;
  opts.pipeline = true;
  const CommPlan plan = plan_communication(p, opts);
  const CommGroup& g = plan.blocks[0].groups[0];
  // B is overwritten by statement 2: SV must complete before it.
  EXPECT_EQ(g.sv_pos, 2);
}

TEST(NeedsComm, ThirdDimensionIsLocal) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 4;
region R3 = [1..n, 1..n, 1..n];
direction kp = [0, 0, 1], ip = [1, 0, 0];
var A, B : [R3] double;
procedure main() {
  [R3] A := B@kp;
  [R3] A := B@ip;
}
)");
  EXPECT_FALSE(needs_comm(p.direction(p.find_direction("kp"))));
  EXPECT_TRUE(needs_comm(p.direction(p.find_direction("ip"))));
  const CommPlan plan = plan_communication(p, OptOptions{});
  EXPECT_EQ(plan.static_count(), 1);  // only the @ip shift communicates
}

TEST(Plan, FindBlockByFirstStatement) {
  const zir::Program p = figure1_program();
  const CommPlan plan = plan_communication(p, OptOptions{});
  const zir::StmtId first = p.proc(p.entry()).body.front();
  EXPECT_NE(plan.find_block(first), nullptr);
  EXPECT_EQ(plan.find_block(p.proc(p.entry()).body.back()), nullptr);
}

TEST(Plan, GroupIdsAreUniqueAndDense) {
  OptOptions opts;
  opts.remove_redundant = true;
  const CommPlan plan = plan_fig1(opts);
  std::vector<int> ids;
  for (const BlockPlan& b : plan.blocks) {
    for (const CommGroup& g : b.groups) ids.push_back(g.id);
  }
  ASSERT_EQ(static_cast<int>(ids.size()), plan.static_count());
  for (int i = 0; i < static_cast<int>(ids.size()); ++i) EXPECT_EQ(ids[i], i);
}

TEST(Plan, PrintShowsIronmanCalls) {
  OptOptions opts;
  opts.remove_redundant = true;
  opts.combine = true;
  opts.pipeline = true;
  const zir::Program p = figure1_program();
  const CommPlan plan = plan_communication(p, opts);
  const std::string s = to_string(plan, p);
  EXPECT_NE(s.find("SR(B, E, east)"), std::string::npos);
  EXPECT_NE(s.find("DN(B, E, east)"), std::string::npos);
  EXPECT_NE(s.find("redundant: B@east"), std::string::npos);
}

TEST(SliceEstimate, ColumnForEastShift) {
  const zir::Program p = figure1_program();
  const zir::RegionSpec& spec = p.region(p.find_region("R")).spec;
  const long long elems =
      estimate_slice_elems(p, spec, p.direction(p.find_direction("east")), 2, 2);
  // 8x8 region on a 2x2 mesh: a 4-row local block, slice width 1.
  EXPECT_EQ(elems, 4);
}

}  // namespace
}  // namespace zc::comm
