// Full-pipeline invariants for the windowed telemetry sink (src/tseries):
// for real traced runs of the paper's table benchmarks, the windowed sums
// must reconcile with trace::Stats' exact aggregates to 1e-9 — including
// when the event trace itself was capped — and attaching the sink must not
// perturb the simulation at all (bit-identical results). Also pins the
// report schema v4 "timeline" block and the Chrome counter-track export.
// The fast unit tests for the folding grid live in tseries_smoke_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/driver/driver.h"
#include "src/driver/report.h"
#include "src/exec/sweep.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/support/json.h"
#include "src/trace/chrome.h"
#include "src/trace/recorder.h"
#include "src/trace/stats.h"
#include "src/tseries/tseries.h"

namespace zc {
namespace {

constexpr int kProcs = 4;

struct TracedRun {
  trace::Stats stats;
  driver::Metrics metrics;
};

/// Runs `bench` under experiment `exp` with both a recorder and `series`
/// attached, returning the recorder's exact aggregates.
TracedRun traced_run(const std::string& bench, const std::string& exp,
                     tseries::SimSeries* series, trace::RecorderOptions ropts = {}) {
  const programs::BenchmarkInfo& info = programs::benchmark(bench);
  const zir::Program program = parser::parse_program(info.source);
  trace::Recorder recorder(kProcs, ropts);
  sim::RunConfig cfg;
  cfg.procs = kProcs;
  cfg.config_overrides = info.test_configs;
  cfg.recorder = &recorder;
  cfg.timeline = series;
  TracedRun out;
  out.metrics = driver::run_experiment(program, *driver::find_experiment(exp), cfg);
  out.stats = trace::compute_stats(recorder);
  return out;
}

void expect_conserved(const tseries::SimSeries& s, const trace::Stats& stats,
                      const std::string& label) {
  using S = tseries::SimSeries;
  EXPECT_NEAR(s.total(S::kCpu) + s.total(S::kWait), stats.exposed_overhead_seconds, 1e-9)
      << label;
  EXPECT_NEAR(s.total(S::kCompute), stats.compute_seconds, 1e-9) << label;
  EXPECT_NEAR(s.total(S::kBarrier), stats.barrier_seconds, 1e-9) << label;
  EXPECT_NEAR(s.total(S::kWireExposed), stats.wire.exposed_seconds, 1e-9) << label;
  EXPECT_NEAR(s.total(S::kWireOverlapped), stats.wire.overlapped_seconds, 1e-9) << label;
}

TEST(TimeSeries, WindowedSumsReconcileWithExactStatsOnTableBenchmarks) {
  for (const std::string bench : {"tomcatv", "swm", "simple", "sp"}) {
    tseries::SimSeries series(kProcs);
    const TracedRun run = traced_run(bench, "pl", &series);
    ASSERT_GT(run.stats.total_messages, 0) << bench;
    ASSERT_GT(series.duration(), 0.0) << bench;
    expect_conserved(series, run.stats, bench);
  }
}

TEST(TimeSeries, ReconciliationSurvivesACappedEventTrace) {
  // Cap the recorder's detail buffers far below the run's event count. The
  // recorder's aggregates stay exact by design, and the series never
  // depended on the buffers — both sides must still agree.
  trace::RecorderOptions ropts;
  ropts.max_events_per_proc = 8;
  ropts.max_messages = 8;
  for (const std::string bench : {"tomcatv", "sp"}) {
    tseries::SimSeries series(kProcs);
    const TracedRun run = traced_run(bench, "pl", &series, ropts);
    ASSERT_GT(run.stats.dropped_events, 0) << bench << ": cap did not bite";
    ASSERT_GT(run.stats.dropped_messages, 0) << bench << ": cap did not bite";
    expect_conserved(series, run.stats, bench + " (capped)");
  }
}

TEST(TimeSeries, ConservationHoldsAcrossExperimentsAndWindowCounts) {
  // Totals are invariant to window resolution: a single window (a plain
  // total) and a grid far finer than the event density must agree with the
  // default, on a communication-optimized variant as well as the baseline.
  for (const std::string exp : {"pl", "all"}) {
    double reference = -1.0;
    for (const int window_count : {1, 64, 4096}) {
      tseries::SimSeries series(kProcs, window_count);
      const TracedRun run = traced_run("tomcatv", exp, &series);
      expect_conserved(series, run.stats, exp + " w=" + std::to_string(window_count));
      using S = tseries::SimSeries;
      double grand = 0.0;
      for (int c = 0; c < S::kChannelCount; ++c) {
        grand += series.total(static_cast<S::Channel>(c));
      }
      if (reference < 0.0) reference = grand;
      EXPECT_NEAR(grand, reference, 1e-9) << exp;
    }
  }
}

TEST(TimeSeries, AttachingTheSinkNeverPerturbsTheSimulation) {
  const programs::BenchmarkInfo& info = programs::benchmark("swm");
  const zir::Program program = parser::parse_program(info.source);
  const driver::Experiment exp = *driver::find_experiment("pl");

  sim::RunConfig plain;
  plain.procs = kProcs;
  plain.config_overrides = info.test_configs;
  const driver::Metrics base = driver::run_experiment(program, exp, plain);

  tseries::SimSeries series(kProcs);
  sim::RunConfig observed;
  observed.procs = kProcs;
  observed.config_overrides = info.test_configs;
  observed.timeline = &series;
  const driver::Metrics traced = driver::run_experiment(program, exp, observed);

  EXPECT_EQ(exec::result_checksum(base.run), exec::result_checksum(traced.run));
  EXPECT_GT(series.duration(), 0.0);
}

TEST(TimeSeries, RunReportGainsTheTimelineBlockAndStaysDiffable) {
  const programs::BenchmarkInfo& info = programs::benchmark("tomcatv");
  const zir::Program program = parser::parse_program(info.source);
  const driver::Experiment exp = *driver::find_experiment("pl");

  sim::RunConfig bare;
  bare.procs = kProcs;
  bare.config_overrides = info.test_configs;
  const json::Value without = driver::run_report(program, exp, bare);
  EXPECT_EQ(without.at("schema_version").number, 5.0);
  EXPECT_FALSE(without.has("timeline"));

  tseries::SimSeries series(kProcs);
  sim::RunConfig timed;
  timed.procs = kProcs;
  timed.config_overrides = info.test_configs;
  timed.timeline = &series;
  const json::Value with = driver::run_report(program, exp, timed);
  ASSERT_TRUE(with.has("timeline"));
  const json::Value& block = with.at("timeline");
  EXPECT_EQ(block.at("kind").string, "zc-sim-timeline");
  EXPECT_EQ(static_cast<int>(block.at("procs").number), kProcs);

  // The block is optional: diffing a report that has it against one that
  // does not must not throw or flag a regression on its own.
  const json::Value diff = driver::diff_run_reports(without, with);
  EXPECT_TRUE(diff.has("fields"));
}

TEST(TimeSeries, ChromeExportEmitsCounterTracksForTheTimeline) {
  tseries::SimSeries series(kProcs);
  const TracedRun run = traced_run("simple", "pl", &series);
  ASSERT_GT(run.stats.total_messages, 0);

  // Timeline-only export: valid JSON whose pid-4 track carries "C" events.
  const json::Value doc = json::parse(trace::to_chrome_json(nullptr, nullptr, &series));
  long long counters = 0;
  bool named_track = false;
  for (const json::Value& e : doc.at("traceEvents").array) {
    if (e.at("pid").number != 4.0) continue;
    if (e.at("ph").string == "C") ++counters;
    if (e.at("ph").string == "M" && e.at("name").string == "process_name") {
      named_track = e.at("args").at("name").string == "timeline";
    }
  }
  EXPECT_TRUE(named_track);
  // At minimum the trailing zero per channel is present.
  EXPECT_GE(counters, static_cast<long long>(tseries::SimSeries::kChannelCount));
}

}  // namespace
}  // namespace zc
