// Property-based validation on randomly generated mini-ZPL programs:
//
//  1. Semantics: for any program, any optimization level, any heuristic,
//     any library, the multi-processor run produces the same numbers as
//     the single-processor reference (communication correctness).
//  2. Counts: static counts are monotone (baseline >= rr >= cc), and
//     pipelining never changes them.
//  3. Plan well-formedness: DR <= SR <= DN <= SV, intervals legal.
//  4. Evaluator: the vectorized evaluator agrees with an independent
//     element-at-a-time reference evaluator.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/comm/optimizer.h"
#include "src/sim/engine.h"
#include "src/zir/builder.h"

namespace zc {
namespace {

using zir::ArrayId;
using zir::DirectionId;
using zir::Ex;
using zir::Ix;
using zir::ProgramBuilder;
using zir::RegionId;

/// Generates a random but always-valid stencil program. Expressions are
/// contractive-ish (small coefficients) so numbers stay finite.
class RandomProgram {
 public:
  explicit RandomProgram(unsigned seed) : rng_(seed) {}

  zir::Program generate() {
    ProgramBuilder b("rand");
    const long long n_val = 6 + static_cast<long long>(rng_() % 6);
    const Ix n = b.config("n", n_val);
    const RegionId R = b.region("R", {{0, n + 1}, {0, n + 1}});
    const RegionId I = b.region("I", {{1, n}, {1, n}});

    static const std::vector<std::pair<const char*, std::vector<int>>> kDirs = {
        {"e", {0, 1}}, {"w", {0, -1}}, {"no", {-1, 0}}, {"so", {1, 0}},
        {"ne", {-1, 1}}, {"nw", {-1, -1}}, {"se", {1, 1}}, {"sw", {1, -1}},
    };
    std::vector<DirectionId> dirs;
    for (const auto& [name, off] : kDirs) dirs.push_back(b.direction(name, off));

    const int n_arrays = 2 + static_cast<int>(rng_() % 3);
    std::vector<ArrayId> arrays;
    for (int a = 0; a < n_arrays; ++a) {
      arrays.push_back(b.array("A" + std::to_string(a), R));
    }
    const zir::ScalarId s = b.scalar("s");

    b.proc("main", [&] {
      // Deterministic initialization.
      for (std::size_t a = 0; a < arrays.size(); ++a) {
        b.assign(R, arrays[a],
                 b.unary(zir::UnOp::kSin,
                         b.index(1) * (0.13 + 0.07 * static_cast<double>(a))) *
                         b.unary(zir::UnOp::kCos, b.index(2) * 0.11) +
                     0.01 * static_cast<double>(a));
      }
      const int n_stmts = 4 + static_cast<int>(rng_() % 10);
      for (int k = 0; k < n_stmts; ++k) {
        emit_random_stmt(b, I, n, arrays, dirs, s);
      }
      // A loop with a couple of statements, sometimes row-indexed.
      b.repeat(2, [&] {
        emit_random_stmt(b, I, n, arrays, dirs, s);
        emit_random_stmt(b, I, n, arrays, dirs, s);
      });
      b.sassign_over(b.spec_of(I), s,
                     b.reduce(zir::ReduceOp::kSum, b.ref(arrays[0]) + b.ref(arrays.back())));
    });
    return std::move(b).finish();
  }

 private:
  double coef() { return (static_cast<double>(rng_() % 200) - 100.0) / 400.0; }

  Ex random_operand(ProgramBuilder& b, const std::vector<ArrayId>& arrays,
                    const std::vector<DirectionId>& dirs) {
    const ArrayId a = arrays[rng_() % arrays.size()];
    if (rng_() % 2 == 0) return b.ref(a);
    return b.at(a, dirs[rng_() % dirs.size()]);
  }

  void emit_random_stmt(ProgramBuilder& b, RegionId I, const Ix& n,
                        const std::vector<ArrayId>& arrays,
                        const std::vector<DirectionId>& dirs, zir::ScalarId s) {
    // RHS: 0.4 * lhs + sum of small-coefficient operands.
    const ArrayId lhs = arrays[rng_() % arrays.size()];
    Ex rhs = b.ref(lhs) * 0.4;
    const int terms = 1 + static_cast<int>(rng_() % 4);
    for (int t = 0; t < terms; ++t) {
      rhs = rhs + random_operand(b, arrays, dirs) * coef();
    }
    if (rng_() % 8 == 0) rhs = rhs + b.sref(s) * 0.05;

    if (rng_() % 5 == 0) {
      // Row-region statement (shifts from row k±1 stay in [0, n+1]).
      const long long k = 1 + static_cast<long long>(rng_() % 4);
      b.assign(ProgramBuilder::spec({{Ix(k), Ix(k)}, {1, n}}), lhs, rhs);
    } else {
      b.assign(I, lhs, rhs);
    }
  }

  std::mt19937 rng_;
};

sim::RunResult run_with(const zir::Program& p, const comm::OptOptions& opts, int procs,
                        ironman::CommLibrary lib) {
  const comm::CommPlan plan = comm::plan_communication(p, opts);
  sim::RunConfig cfg;
  cfg.procs = procs;
  cfg.library = lib;
  return sim::run_program(p, plan, cfg);
}

class RandomPrograms : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomPrograms, AllOptimizationsPreserveSemantics) {
  const zir::Program p = RandomProgram(GetParam()).generate();
  const sim::RunResult ref = run_with(p, comm::OptOptions::for_level(comm::OptLevel::kBaseline),
                                      1, ironman::CommLibrary::kPVM);

  std::vector<comm::OptOptions> variants;
  for (const auto level : {comm::OptLevel::kBaseline, comm::OptLevel::kRR, comm::OptLevel::kCC,
                           comm::OptLevel::kPL}) {
    variants.push_back(comm::OptOptions::for_level(level));
  }
  for (const auto h : {comm::CombineHeuristic::kMaxLatency, comm::CombineHeuristic::kNested,
                       comm::CombineHeuristic::kHybrid}) {
    comm::OptOptions o = comm::OptOptions::for_level(comm::OptLevel::kPL);
    o.heuristic = h;
    variants.push_back(o);
  }
  {
    comm::OptOptions o = comm::OptOptions::for_level(comm::OptLevel::kPL);
    o.inter_block = true;  // cross-block extension
    variants.push_back(o);
  }

  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (const auto lib : {ironman::CommLibrary::kPVM, ironman::CommLibrary::kSHMEM}) {
      const sim::RunResult got = run_with(p, variants[v], 4, lib);
      for (const auto& [name, value] : ref.checksums) {
        ASSERT_TRUE(std::isfinite(value)) << "seed " << GetParam();
        const double tol = 1e-9 * std::max(1.0, std::fabs(value));
        ASSERT_NEAR(got.checksums.at(name), value, tol)
            << "seed " << GetParam() << " variant " << v << " lib " << ironman::to_string(lib)
            << " array " << name;
      }
      ASSERT_NEAR(got.scalars.at("s"), ref.scalars.at("s"),
                  1e-9 * std::max(1.0, std::fabs(ref.scalars.at("s"))));
    }
  }
}

TEST_P(RandomPrograms, CountsMonotoneAndPlanWellFormed) {
  const zir::Program p = RandomProgram(GetParam() + 1000).generate();
  const int base =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kBaseline))
          .static_count();
  const int rr = comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kRR))
                     .static_count();
  const int cc = comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kCC))
                     .static_count();
  EXPECT_GE(base, rr);
  EXPECT_GE(rr, cc);

  for (const auto level : {comm::OptLevel::kBaseline, comm::OptLevel::kPL}) {
    const comm::CommPlan plan =
        comm::plan_communication(p, comm::OptOptions::for_level(level));
    for (const comm::BlockPlan& bp : plan.blocks) {
      const int nstmts = static_cast<int>(bp.stmts.size());
      for (const comm::CommGroup& g : bp.groups) {
        EXPECT_LE(g.dr_pos, g.sr_pos);
        EXPECT_LE(g.sr_pos, g.dn_pos);
        EXPECT_LE(g.dn_pos, g.sv_pos);
        EXPECT_GE(g.dr_pos, 0);
        EXPECT_LE(g.sv_pos, nstmts);
        EXPECT_FALSE(g.members.empty());
        // Send point legal for every member: after its earliest, receive
        // before its first use.
        EXPECT_GE(g.sr_pos, g.earliest_send);
        EXPECT_LE(g.dn_pos, g.first_use);
        // No duplicate arrays within a group.
        for (std::size_t i = 0; i < g.members.size(); ++i) {
          for (std::size_t j = i + 1; j < g.members.size(); ++j) {
            EXPECT_NE(g.members[i].array, g.members[j].array);
          }
        }
      }
    }
  }
}

TEST_P(RandomPrograms, VectorEvaluatorMatchesElementwiseReference) {
  const zir::Program p = RandomProgram(GetParam() + 2000).generate();
  // Build a single-processor context covering the whole declared region.
  const zir::IntEnv env = p.default_env();
  const rt::Box declared =
      rt::eval_region(p.region(p.find_region("R")).spec, env);
  std::vector<rt::LocalArray> arrays;
  for (std::size_t a = 0; a < p.array_count(); ++a) {
    arrays.emplace_back(declared, declared, std::array<long long, 3>{1, 1, 0});
    std::mt19937 fill(GetParam() + static_cast<unsigned>(a));
    for (long long i = declared.lo[0]; i <= declared.hi[0]; ++i) {
      for (long long j = declared.lo[1]; j <= declared.hi[1]; ++j) {
        arrays.back().at(i, j) = (static_cast<double>(fill() % 1000) - 500.0) / 250.0;
      }
    }
  }
  std::vector<double> scalars(p.scalar_count(), 0.25);
  rt::EvalContext ctx;
  ctx.program = &p;
  ctx.arrays = &arrays;
  ctx.scalars = &scalars;
  ctx.env = &env;
  const rt::Box inner = rt::eval_region(p.region(p.find_region("I")).spec, env);
  ctx.box = inner;

  // Independent element-at-a-time evaluator.
  struct Ref {
    const zir::Program& p;
    const rt::EvalContext& ctx;
    double at(zir::ExprId id, long long i, long long j) const {
      const zir::Expr& e = p.expr(id);
      switch (e.kind) {
        case zir::Expr::Kind::kConst: return e.const_value;
        case zir::Expr::Kind::kScalarRef: return (*ctx.scalars)[e.scalar.index()];
        case zir::Expr::Kind::kConfigRef:
          return static_cast<double>(ctx.env->config_values[e.config.index()]);
        case zir::Expr::Kind::kArrayRef: return (*ctx.arrays)[e.array.index()].at(i, j);
        case zir::Expr::Kind::kShift: {
          const auto& off = p.direction(e.direction).offsets;
          return (*ctx.arrays)[e.array.index()].at(i + off[0], j + off[1]);
        }
        case zir::Expr::Kind::kIndex:
          return static_cast<double>(e.index_dim == 1 ? i : j);
        case zir::Expr::Kind::kBinary: {
          const double a = at(e.lhs, i, j);
          const double b = at(e.rhs, i, j);
          switch (e.bin_op) {
            case zir::BinOp::kAdd: return a + b;
            case zir::BinOp::kSub: return a - b;
            case zir::BinOp::kMul: return a * b;
            case zir::BinOp::kDiv: return a / b;
            default: return 0.0;  // generator uses arithmetic ops only
          }
        }
        case zir::Expr::Kind::kUnary: {
          const double a = at(e.lhs, i, j);
          switch (e.un_op) {
            case zir::UnOp::kNeg: return -a;
            case zir::UnOp::kSin: return std::sin(a);
            case zir::UnOp::kCos: return std::cos(a);
            case zir::UnOp::kAbs: return std::fabs(a);
            default: return a;
          }
        }
        default:
          ADD_FAILURE() << "unexpected node";
          return 0.0;
      }
    }
  } ref{p, ctx};

  const rt::Evaluator ev(p);
  std::vector<double> out;
  int checked = 0;
  for (std::size_t sid = 0; sid < p.stmt_count() && checked < 6; ++sid) {
    const zir::Stmt& s = p.stmt(zir::StmtId(static_cast<int32_t>(sid)));
    if (s.kind != zir::Stmt::Kind::kArrayAssign || !s.region->is_static()) continue;
    // Only check full-interior statements (row regions have loop vars).
    ev.eval_vector(ctx, s.rhs, out);
    std::size_t k = 0;
    for (long long i = inner.lo[0]; i <= inner.hi[0]; ++i) {
      for (long long j = inner.lo[1]; j <= inner.hi[1]; ++j, ++k) {
        const double want = ref.at(s.rhs, i, j);
        ASSERT_NEAR(out[k], want, 1e-12 * std::max(1.0, std::fabs(want)))
            << "stmt " << sid << " at (" << i << "," << j << ")";
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace zc
