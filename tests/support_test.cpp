#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "src/support/chart.h"
#include "src/support/csv.h"
#include "src/support/diag.h"
#include "src/support/json.h"
#include "src/support/log.h"
#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/table.h"

namespace zc {
namespace {

TEST(Str, JoinAndSplit) {
  EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(str::join({}, ","), "");
  const auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Str, Trim) {
  EXPECT_EQ(str::trim("  x y  "), "x y");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim(" \t\n "), "");
}

TEST(Str, StartsEndsWith) {
  EXPECT_TRUE(str::starts_with("foobar", "foo"));
  EXPECT_FALSE(str::starts_with("fo", "foo"));
  EXPECT_TRUE(str::ends_with("foobar", "bar"));
  EXPECT_FALSE(str::ends_with("ar", "bar"));
}

TEST(Str, FormatF) {
  EXPECT_EQ(str::format_f(1.23456, 3), "1.235");
  EXPECT_EQ(str::format_f(2.0, 0), "2");
}

TEST(Str, WithCommas) {
  EXPECT_EQ(str::with_commas(0), "0");
  EXPECT_EQ(str::with_commas(999), "999");
  EXPECT_EQ(str::with_commas(1000), "1,000");
  EXPECT_EQ(str::with_commas(1234567), "1,234,567");
  EXPECT_EQ(str::with_commas(-1234567), "-1,234,567");
}

TEST(Str, Pad) {
  EXPECT_EQ(str::pad_left("x", 3), "  x");
  EXPECT_EQ(str::pad_right("x", 3), "x  ");
  EXPECT_EQ(str::pad_left("long", 2), "long");
}

TEST(Str, Percent) {
  EXPECT_EQ(str::percent(1.0, 4.0), "25%");
  EXPECT_EQ(str::percent(1.0, 0.0), "--");
}

TEST(Diag, SourceLoc) {
  EXPECT_FALSE(SourceLoc{}.valid());
  EXPECT_TRUE((SourceLoc{3, 7}).valid());
  EXPECT_EQ((SourceLoc{3, 7}).to_string(), "3:7");
}

TEST(Diag, EngineCollectsAndThrows) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({1, 1}, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error({2, 5}, "bad thing");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1);
  EXPECT_NE(diags.to_string().find("2:5: error: bad thing"), std::string::npos);
  EXPECT_THROW(diags.throw_if_errors("ctx"), Error);
}

TEST(Diag, ErrorCarriesLoc) {
  const Error e(SourceLoc{4, 2}, "oops");
  EXPECT_EQ(e.loc().line, 4);
  EXPECT_NE(std::string(e.what()).find("4:2"), std::string::npos);
}

TEST(Table, RendersAligned) {
  Table t({"name", "count"});
  t.add_row({"alpha", "1,234"});
  t.add_separator();
  t.add_row({"b", "7"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha | 1,234"), std::string::npos);
  EXPECT_NE(s.find("------+------"), std::string::npos);
  // Right-aligned numeric column.
  EXPECT_NE(s.find("b     |     7"), std::string::npos);
}

TEST(Table, RowBuilder) {
  RowBuilder rb;
  rb.cell("x").cell(1234567LL).cell(1.5, 2).percent_cell(1, 2);
  auto row = std::move(rb).build();
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "1,234,567");
  EXPECT_EQ(row[2], "1.50");
  EXPECT_EQ(row[3], "50%");
}

TEST(Csv, EscapesFields) {
  CsvWriter w({"a", "b"});
  w.add_row({"plain", "has,comma"});
  w.add_row({"has\"quote", "multi\nline"});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("a,b\n"), std::string::npos);
  EXPECT_NE(s.find("plain,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(BarChart, RendersGroupsAndSeries) {
  BarChart chart("title", {"rr", "cc"});
  chart.set_value_suffix("x");
  chart.add_group("tomcatv", {0.93, 0.76});
  const std::string s = chart.to_string();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("tomcatv"), std::string::npos);
  EXPECT_NE(s.find("0.930x"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(BarChart, NanRendersAsNA) {
  BarChart chart("t", {"s"});
  chart.add_group("g", {std::nan("1")});
  EXPECT_NE(chart.to_string().find("n/a"), std::string::npos);
}

TEST(SeriesChart, RendersAllPoints) {
  SeriesChart chart("overhead", "bytes", "seconds");
  chart.add_series("csend", {8, 64, 4096}, {1e-5, 1.2e-5, 9e-5});
  const std::string s = chart.to_string();
  EXPECT_NE(s.find("csend"), std::string::npos);
  EXPECT_NE(s.find("4096"), std::string::npos);
}

// --- JSON hardening against untrusted input (the serve request path) -----

TEST(Json, RoundTripsWellFormedDocument) {
  const json::Value v = json::parse(R"({"a": [1, 2.5, "x\n", true, null], "b": {}})");
  EXPECT_EQ(v.at("a").array.size(), 5u);
  EXPECT_DOUBLE_EQ(v.at("a").array[1].number, 2.5);
  EXPECT_EQ(v.at("a").array[2].string, "x\n");
  EXPECT_TRUE(v.at("b").is_object());
}

TEST(Json, RejectsDocumentsOverTheByteLimit) {
  json::ParseLimits limits;
  limits.max_bytes = 16;
  EXPECT_NO_THROW(json::parse(R"({"k": 12345})", limits));
  try {
    json::parse(R"({"key": "0123456789abcdef"})", limits);
    FAIL() << "oversized document parsed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("16-byte limit"), std::string::npos);
  }
}

TEST(Json, RejectsNestingBeyondTheDepthLimit) {
  json::ParseLimits limits;
  limits.max_depth = 8;
  std::string at_limit = "1";
  for (int i = 0; i < 8; ++i) at_limit = "[" + at_limit + "]";
  EXPECT_NO_THROW(json::parse(at_limit, limits));
  EXPECT_THROW(json::parse("[" + at_limit + "]", limits), Error);

  // Mixed container nesting counts every level.
  std::string mixed = "0";
  for (int i = 0; i < 5; ++i) mixed = R"({"k": [)" + mixed + "]}";
  EXPECT_THROW(json::parse(mixed, limits), Error);  // 10 levels > 8
}

TEST(Json, DeepAdversarialNestingFailsInsteadOfOverflowing) {
  // A megabyte of '[' used to recurse once per byte; now it must throw the
  // depth error (carrying an offset) long before any stack risk.
  std::string object_bomb;
  for (int i = 0; i < (1 << 18); ++i) object_bomb += R"({"a":)";
  const std::string bombs[] = {std::string(1 << 20, '['), std::move(object_bomb)};
  for (const std::string& bomb : bombs) {
    try {
      json::parse(bomb);
      FAIL() << "unterminated nesting bomb parsed";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("nesting deeper than"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
  }
}

TEST(Json, MalformedInputsThrowWithByteOffsets) {
  // Fuzz-style corpus: every entry must throw zc::Error (never crash, hang,
  // or silently succeed), and the message must carry a byte offset.
  const std::string_view corpus[] = {
      "",        "{",        "[",         "\"abc",     "{\"a\"",    "{\"a\":}",
      "[1,",     "[1 2]",    "{\"a\" 1}", "tru",       "falsee",    "nul",
      "-",       "+1",       "1e",        "0x10",      "1.2.3",     "--1",
      "\"\\q\"", "\"\\u12\"", "\"\\u123g\"", "{\"a\":1,}",  "[]]",   "{}}",
      "[1] 2",   "\x01",     "{1: 2}",    "\"unterminated\\",        "[,]",
  };
  for (const std::string_view text : corpus) {
    try {
      json::parse(text);
      FAIL() << "malformed input parsed: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << "no byte offset for: " << text << " -> " << e.what();
    }
  }
}

TEST(Json, EmbeddedNulAndControlBytesAreRejectedOrEscaped) {
  // NUL inside a string is content (parses; round-trips escaped), NUL
  // outside is a syntax error with an offset.
  const json::Value v = json::parse(std::string_view("\"a\\u0000b\"", 10));
  EXPECT_EQ(v.string.size(), 3u);
  EXPECT_THROW(json::parse(std::string_view("\0", 1)), Error);
  EXPECT_THROW(json::parse(std::string_view("[1,\0]", 5)), Error);
}

// --- Prometheus text exposition (the /metrics scrape body) ---------------

TEST(Metrics, PrometheusExpositionRendersCountersGaugesAndHistograms) {
  metrics::Registry reg;
  reg.count("serve.requests", 3);
  reg.gauge("serve.queue_depth", 2.0);
  const std::vector<double> bounds = {0.01, 0.1, 1.0};
  reg.observe("serve.request_seconds", 0.005, bounds);
  reg.observe("serve.request_seconds", 0.05, bounds);
  reg.observe("serve.request_seconds", 5.0, bounds);  // overflow bucket

  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE serve_requests counter\nserve_requests 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_request_seconds histogram\n"),
            std::string::npos);
  // Buckets are CUMULATIVE (unlike the registry's per-bucket counts) and
  // end with the mandatory le="+Inf" series equal to _count.
  EXPECT_NE(text.find(R"(serve_request_seconds_bucket{le="0.01"} 1)"),
            std::string::npos);
  EXPECT_NE(text.find(R"(serve_request_seconds_bucket{le="0.1"} 2)"),
            std::string::npos);
  EXPECT_NE(text.find(R"(serve_request_seconds_bucket{le="1"} 2)"),
            std::string::npos);
  EXPECT_NE(text.find(R"(serve_request_seconds_bucket{le="+Inf"} 3)"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("serve_request_seconds_sum "), std::string::npos);
}

TEST(Metrics, PrometheusNamesAreSanitized) {
  metrics::Registry reg;
  reg.count("serve.client.tcp:0.requests");
  reg.count("1weird name-x");
  const std::string text = reg.to_prometheus();
  // '.' and other invalid bytes become '_'; ':' is legal; a leading digit
  // gets a '_' prefix.
  EXPECT_NE(text.find("serve_client_tcp:0_requests 1"), std::string::npos);
  EXPECT_NE(text.find("_1weird_name_x 1"), std::string::npos);
  // Nothing outside [a-zA-Z0-9_:] survives anywhere in the exposition.
  for (const char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':' || c == ' ' ||
                    c == '\n' || c == '#' || c == '{' || c == '}' || c == '"' ||
                    c == '=' || c == '+' || c == '.' || c == '-' || c == 'e';
    EXPECT_TRUE(ok) << "unexpected byte in exposition: " << c;
  }
}

// --- Structured logging --------------------------------------------------

/// RAII: points the global logger at a capture buffer (and a chosen
/// level/format) for one test, restoring the defaults on exit.
class CapturedLog {
 public:
  explicit CapturedLog(log::Level level, log::Format format = log::Format::kText) {
    log::Logger::global().set_level(level);
    log::Logger::global().set_format(format);
    log::Logger::global().set_capture(&buffer_);
  }
  ~CapturedLog() {
    log::Logger::global().set_capture(nullptr);
    log::Logger::global().set_format(log::Format::kText);
    log::Logger::global().set_level(log::Level::kInfo);
    log::Logger::global().set_rate_limit(0);
  }
  [[nodiscard]] const std::string& text() const { return buffer_; }

 private:
  std::string buffer_;
};

TEST(Log, TextFormatCarriesLevelSubsystemMessageAndFields) {
  CapturedLog cap(log::Level::kDebug);
  ZC_LOG_INFO("serve", "request finished", log::field("req", 7),
              log::field("client", "tcp:0"), log::field("ok", true),
              log::field("ms", 1.5));
  const std::string& s = cap.text();
  EXPECT_NE(s.find("ts="), std::string::npos);
  EXPECT_NE(s.find(" level=info subsys=serve msg=\"request finished\""),
            std::string::npos);
  EXPECT_NE(s.find(" req=7"), std::string::npos);
  EXPECT_NE(s.find(" client=\"tcp:0\""), std::string::npos)
      << "string fields are quoted, numbers are bare";
  EXPECT_NE(s.find(" ok=true"), std::string::npos);
  EXPECT_NE(s.find(" ms=1.5"), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
}

TEST(Log, FilteredLevelsNeverReachTheSink) {
  CapturedLog cap(log::Level::kWarn);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  ZC_LOG_DEBUG("serve", "hidden", log::field("v", expensive()));
  ZC_LOG_INFO("serve", "hidden too", log::field("v", expensive()));
  ZC_LOG_WARN("serve", "visible", log::field("v", expensive()));
  EXPECT_EQ(evaluations, 1) << "filtered levels must not evaluate fields";
  EXPECT_EQ(cap.text().find("hidden"), std::string::npos);
  EXPECT_NE(cap.text().find("visible"), std::string::npos);
}

TEST(Log, JsonLinesParseAndEscape) {
  CapturedLog cap(log::Level::kInfo, log::Format::kJson);
  ZC_LOG_INFO("serve", "with \"quotes\"\nand newline",
              log::field("path", "a\\b"), log::field("n", 42));
  const std::string& s = cap.text();
  ASSERT_EQ(s.back(), '\n');
  const json::Value v = json::parse(std::string_view(s.data(), s.size() - 1));
  EXPECT_EQ(v.at("level").string, "info");
  EXPECT_EQ(v.at("subsys").string, "serve");
  EXPECT_EQ(v.at("msg").string, "with \"quotes\"\nand newline");
  EXPECT_EQ(v.at("path").string, "a\\b");
  EXPECT_EQ(v.at("n").number, 42);
  EXPECT_FALSE(v.at("ts").string.empty());
}

TEST(Log, RateLimitDropsCountsAndReports) {
  CapturedLog cap(log::Level::kInfo);
  const long long before = log::Logger::global().dropped();
  log::Logger::global().set_rate_limit(2);
  for (int i = 0; i < 5; ++i) ZC_LOG_INFO("serve", "spam", log::field("i", i));
  EXPECT_EQ(log::Logger::global().dropped() - before, 3);
  // Exactly the first two lines of the window reached the sink.
  EXPECT_NE(cap.text().find("i=0"), std::string::npos);
  EXPECT_NE(cap.text().find("i=1"), std::string::npos);
  EXPECT_EQ(cap.text().find("i=2"), std::string::npos);
}

TEST(Log, ParseLevelRoundTrips) {
  log::Level level = log::Level::kInfo;
  EXPECT_TRUE(log::parse_level("warn", level));
  EXPECT_EQ(level, log::Level::kWarn);
  EXPECT_TRUE(log::parse_level("off", level));
  EXPECT_EQ(level, log::Level::kOff);
  EXPECT_FALSE(log::parse_level("loud", level));
  EXPECT_EQ(level, log::Level::kOff) << "failed parses leave the output alone";
}

}  // namespace
}  // namespace zc
