// Unit tests for the windowed time-series core (src/tseries): proportional
// span spreading, the folding resize (sums preserved exactly, window count
// fixed), point samples, the SimSeries wire split, WallSeries concurrency,
// and the CSV/JSON export shapes. The end-to-end conservation laws against
// real traced runs live in tests/tseries_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "src/support/csv.h"
#include "src/support/json.h"
#include "src/tseries/render.h"
#include "src/tseries/tseries.h"

namespace zc::tseries {
namespace {

TEST(Windows, SpreadsSpanProportionallyAcrossWindows) {
  Windows w(1, 1, 4, /*initial_width=*/1.0);
  w.add_span(0, 0, 0.5, 2.5);  // half of [0,1), all of [1,2), half of [2,3)
  EXPECT_DOUBLE_EQ(w.value(0, 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(w.value(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.value(0, 0, 2), 0.5);
  EXPECT_DOUBLE_EQ(w.value(0, 0, 3), 0.0);
  EXPECT_DOUBLE_EQ(w.row_total(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(w.duration(), 2.5);
  EXPECT_EQ(w.used_windows(), 3);
}

TEST(Windows, EmptyAndNonFiniteSpansAddNothing) {
  Windows w(1, 1, 4, 1.0);
  w.add_span(0, 0, 2.0, 2.0);  // empty: only advances duration
  w.add_span(0, 0, 3.0, 1.0);  // negative: ignored entirely
  const double inf = std::numeric_limits<double>::infinity();
  w.add_span(0, 0, 0.0, inf);
  w.add_span(0, 0, std::nan(""), 1.0);
  EXPECT_DOUBLE_EQ(w.channel_total(0), 0.0);
  EXPECT_DOUBLE_EQ(w.duration(), 2.0);
}

TEST(Windows, FoldingDoublesWidthAndPreservesSums) {
  Windows w(1, 1, 4, 1.0);
  w.add_span(0, 0, 0.0, 4.0);  // fills all four windows at width 1
  EXPECT_DOUBLE_EQ(w.window_width(), 1.0);
  w.add_span(0, 0, 6.0, 7.0);  // lands past 4*1 -> fold to width 2
  EXPECT_DOUBLE_EQ(w.window_width(), 2.0);
  EXPECT_EQ(w.window_count(), 4);
  // Old pairs merged: [0,2) = 2, [2,4) = 2; the new span in [6,7).
  EXPECT_DOUBLE_EQ(w.value(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(0, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(w.value(0, 0, 3), 1.0);
  EXPECT_DOUBLE_EQ(w.row_total(0, 0), 5.0);
}

TEST(Windows, RepeatedFoldingConvergesAndConserves) {
  Windows w(2, 2, 3, 1e-6);  // odd window count: the fold's odd-tail case
  double expected = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double t0 = static_cast<double>(i) * 0.37;
    w.add_span(i % 2, i % 2, t0, t0 + 0.25);
    expected += 0.25;
  }
  EXPECT_EQ(w.window_count(), 3);
  EXPECT_NEAR(w.channel_total(0) + w.channel_total(1), expected, 1e-9);
  EXPECT_GE(w.window_count() * w.window_width(), w.duration());
}

TEST(Windows, PointSamplesLandInTheirWindow) {
  Windows w(1, 1, 4, 1.0);
  w.add_at(0, 0, 1.5, 3.0);
  w.add_at(0, 0, 1.9, 2.0);
  EXPECT_DOUBLE_EQ(w.value(0, 0, 1), 5.0);
  w.add_at(0, 0, 100.0, 1.0);  // folds until t fits
  EXPECT_NEAR(w.channel_total(0), 6.0, 1e-12);
}

TEST(Windows, SingleWindowDegeneratesToATotal) {
  Windows w(1, 1, 1, 1.0);
  w.add_span(0, 0, 0.0, 10.0);
  w.add_span(0, 0, 12.0, 13.0);
  EXPECT_EQ(w.used_windows(), 1);
  EXPECT_NEAR(w.row_total(0, 0), 11.0, 1e-12);
}

TEST(SimSeries, CallSplitsWaitAndCpu) {
  SimSeries s(2, 8);
  s.add_call(0, 1.0, 3.0, 4.0);  // wait [1,3), cpu [3,4)
  EXPECT_NEAR(s.total(SimSeries::kWait), 2.0, 1e-12);
  EXPECT_NEAR(s.total(SimSeries::kCpu), 1.0, 1e-12);
}

TEST(SimSeries, WireSplitsExposedAndOverlappedByDnWait) {
  SimSeries s(2, 8);
  // Wire [2,6): 4 s. The destination waited 1.5 s in DN -> exposed 1.5,
  // overlapped 2.5 (the clamp rule of Recorder::record_consumed).
  s.add_wire(1, 2.0, 6.0, 1.5);
  EXPECT_NEAR(s.total(SimSeries::kWireExposed), 1.5, 1e-12);
  EXPECT_NEAR(s.total(SimSeries::kWireOverlapped), 2.5, 1e-12);
  // Wait beyond the wire time clamps to the wire time (sender lag).
  s.add_wire(1, 10.0, 11.0, 5.0);
  EXPECT_NEAR(s.total(SimSeries::kWireExposed), 2.5, 1e-12);
  // Zero-length wire adds nothing.
  s.add_wire(0, 20.0, 20.0, 1.0);
  EXPECT_NEAR(s.total(SimSeries::kWireExposed) + s.total(SimSeries::kWireOverlapped),
              5.0, 1e-12);
}

TEST(SimSeries, JsonAndCsvExportsCarryTheWholeGrid) {
  SimSeries s(2, 4);
  s.add_call(0, 0.0, 1.0, 2.0);
  s.add_compute(1, 0.0, 3.0);
  s.add_barrier(0, 3.0, 4.0);

  const json::Value doc = json::parse(s.to_json().dump());
  EXPECT_EQ(doc.at("kind").string, "zc-sim-timeline");
  EXPECT_EQ(static_cast<int>(doc.at("procs").number), 2);
  const json::Value& channels = doc.at("channels");
  double json_compute = 0.0;
  for (const json::Value& window : channels.at("compute").array[1].array) {
    json_compute += window.number;
  }
  EXPECT_NEAR(json_compute, 3.0, 1e-12);

  const Csv csv = parse_csv(s.to_csv());
  ASSERT_GT(csv.rows.size(), 0u);
  double csv_total = 0.0;
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    csv_total += std::stod(csv.cell(r, "seconds"));
  }
  double grid_total = 0.0;
  for (int c = 0; c < SimSeries::kChannelCount; ++c) {
    grid_total += s.total(static_cast<SimSeries::Channel>(c));
  }
  EXPECT_NEAR(csv_total, grid_total, 1e-9);
}

TEST(WallSeries, ConcurrentProducersConserveTotals) {
  WallSeries s(4, {"busy", "tasks"}, 16, 0.001);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < 500; ++i) {
        const double at = static_cast<double>(i) * 1e-4;
        s.add_span(t, 0, at, at + 5e-5);
        s.add_at(t, 1, at, 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_NEAR(s.channel_total(0), 4 * 500 * 5e-5, 1e-9);
  EXPECT_DOUBLE_EQ(s.channel_total(1), 4.0 * 500.0);
  const json::Value doc = json::parse(s.to_json().dump());
  EXPECT_EQ(doc.at("kind").string, "zc-wall-timeline");
  EXPECT_EQ(static_cast<int>(doc.at("rows").number), 4);
}

TEST(Render, HeatmapAndSweepSummaryMentionEveryRow) {
  SimSeries s(2, 8);
  s.add_compute(0, 0.0, 1.0);
  s.add_compute(1, 0.5, 1.5);
  const std::string map = heatmap(s, "unit");
  EXPECT_NE(map.find("proc 0"), std::string::npos);
  EXPECT_NE(map.find("proc 1"), std::string::npos);
  EXPECT_NE(map.find("totals (s):"), std::string::npos);

  WallSeries w(2, {"busy", "tasks", "latency", "own_pop", "steal", "cache_hit",
                   "cache_miss"});
  w.add_span(0, 0, 0.0, 0.1);
  w.add_at(0, 1, 0.1, 1.0);
  const std::string summary = sweep_summary(w);
  EXPECT_NE(summary.find("worker 0"), std::string::npos);
  EXPECT_NE(summary.find("worker 1"), std::string::npos);
}

}  // namespace
}  // namespace zc::tseries
