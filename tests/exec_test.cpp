// Unit tests for the sweep execution substrate (src/exec): the
// work-stealing thread pool's fork/join and determinism contracts, the plan
// memoization cache (keying, collisions, eviction, metrics counters), and
// the thread-local metrics registry redirect + merge the sweep engine's
// deterministic accounting rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "src/comm/optimizer.h"
#include "src/exec/plan_cache.h"
#include "src/exec/pool.h"
#include "src/exec/sweep.h"
#include "src/parser/parser.h"
#include "src/report/passlog.h"
#include "src/support/diag.h"
#include "src/support/metrics.h"
#include "src/zir/printer.h"

namespace zc::exec {
namespace {

constexpr std::string_view kProgram = R"(
program cachetest;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main() {
  [R] B := Index1 * 0.5;
  [R] A := B@east;
  [R] C := B@east;
}
)";

// Same token stream as kProgram, different whitespace and source offsets —
// structurally identical, so it must share kProgram's cache entry.
constexpr std::string_view kProgramReformatted = R"(
program cachetest;

config n : integer = 8;

region R = [1..n, 1..n];
direction east = [0, 1];

var A, B, C : [R] double;

procedure main() {
  [R] B := Index1 * 0.5;

  [R] A := B@east;
  [R] C := B@east;
}
)";

// Different program text (an extra statement): must key separately even
// when the bucket hash collides.
constexpr std::string_view kOtherProgram = R"(
program cachetest;
config n : integer = 8;
region R = [1..n, 1..n];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main() {
  [R] B := Index1 * 0.5;
  [R] A := B@east;
  [R] C := B@east;
  [R] C := A@east;
}
)";

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const int jobs : {1, 2, 4, 8}) {
    ThreadPool pool(jobs);
    constexpr std::size_t kN = 100;
    std::vector<std::atomic<int>> hits(kN);
    pool.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " with jobs=" << jobs;
    }
  }
}

TEST(ThreadPool, JobsOneRunsInlineInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.run(10, [&](std::size_t i) { order.push_back(i); });  // no lock: inline
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, RejectsZeroJobs) { EXPECT_THROW(ThreadPool(0), Error); }

TEST(ThreadPool, RethrowsLowestIndexFailure) {
  ThreadPool pool(4);
  // Two failing tasks; the lowest submission index must win regardless of
  // completion order.
  try {
    pool.run(50, [&](std::size_t i) {
      if (i == 7 || i == 31) throw Error("task " + std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
}

TEST(ThreadPool, SurvivesFailuresAndRunsEverythingElse) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.run(64,
                        [&](std::size_t i) {
                          hits[i].fetch_add(1);
                          if (i % 9 == 0) throw Error("boom");
                        }),
               Error);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  // The pool stays usable after a failing epoch.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, ReusableAcrossEpochs) {
  ThreadPool pool(3);
  for (int epoch = 0; epoch < 20; ++epoch) {
    std::atomic<int> count{0};
    pool.run(17, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 17);
  }
}

TEST(ThreadPool, CountersAccountForEveryTaskAndPublishToTheRegistry) {
  metrics::Registry reg;
  const metrics::ScopedRegistry scoped(reg);
  for (const int jobs : {1, 3}) {
    ThreadPool pool(jobs);
    pool.run(40, [](std::size_t) {});
    pool.run(40, [](std::size_t) {});
    const PoolCounters c = pool.counters();
    if (jobs == 1) {
      // The inline serial path has no scheduler, hence no scheduler counters.
      EXPECT_EQ(c.own_pops + c.steals, 0);
    } else {
      // own vs. stolen is scheduling-dependent; the sum is not.
      EXPECT_EQ(c.own_pops + c.steals, 2 * 40) << "jobs=" << jobs;
    }
  }
  EXPECT_EQ(reg.counter("exec.pool.own_pops") + reg.counter("exec.pool.steals"),
            2 * 40);
}

TEST(ThreadPool, ContextIdsCoverTheTasksDuringARun) {
  ThreadPool pool(2);
  std::atomic<int> on_context{0};
  std::atomic<int> off_pool{0};
  pool.run(64, [&](std::size_t) {
    const int ctx = ThreadPool::current_context();
    if (ctx >= 0 && ctx < 2) on_context.fetch_add(1);
  });
  EXPECT_EQ(on_context.load(), 64);
  // Off the pool (and on the jobs==1 inline path) there is no context.
  EXPECT_EQ(ThreadPool::current_context(), -1);
  ThreadPool inline_pool(1);
  inline_pool.run(4, [&](std::size_t) {
    if (ThreadPool::current_context() == -1) off_pool.fetch_add(1);
  });
  EXPECT_EQ(off_pool.load(), 4);
}

TEST(PlanCache, MissThenHit) {
  const zir::Program program = parser::parse_program(kProgram);
  const comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kPL);

  PlanCache cache;
  const auto p1 = cache.get_or_plan(program, opts);
  const auto p2 = cache.get_or_plan(program, opts);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1.get(), p2.get());  // the same shared immutable plan
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_GT(s.bytes, 0);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(PlanCache, KeyIgnoresSourceOffsetsAndWhitespace) {
  const zir::Program a = parser::parse_program(kProgram);
  const zir::Program b = parser::parse_program(kProgramReformatted);
  const comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kCC);
  EXPECT_EQ(plan_key(a, opts, "t3d"), plan_key(b, opts, "t3d"));

  PlanCache cache;
  const auto pa = cache.get_or_plan(a, opts, "t3d");
  const auto pb = cache.get_or_plan(b, opts, "t3d");
  EXPECT_EQ(pa.get(), pb.get());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(PlanCache, TextKeyedLookupSharesEntriesWithProgramKeyed) {
  // The serve hot path memoizes to_source(program) and passes it to the
  // text-keyed overload; both spellings must address the same entry.
  const zir::Program program = parser::parse_program(kProgram);
  const std::string canonical = zir::to_source(program);
  const comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kPL);
  EXPECT_EQ(plan_key(program, opts, "t3d"), plan_key_for_text(canonical, opts, "t3d"));

  PlanCache cache;
  const auto pa = cache.get_or_plan(program, opts, "t3d");
  const auto pb = cache.get_or_plan(program, canonical, opts, "t3d");
  EXPECT_EQ(pa.get(), pb.get());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(PlanCache, KeySeparatesOptionsAndMachine) {
  const zir::Program program = parser::parse_program(kProgram);
  const comm::OptOptions pl = comm::OptOptions::for_level(comm::OptLevel::kPL);
  comm::OptOptions maxlat = pl;
  maxlat.heuristic = comm::CombineHeuristic::kMaxLatency;

  EXPECT_NE(plan_key(program, pl, ""), plan_key(program, maxlat, ""));
  EXPECT_NE(plan_key(program, pl, "t3d"), plan_key(program, pl, "paragon"));

  // pass_log is NOT part of the key: attaching provenance never forks plans.
  comm::OptOptions logged = pl;
  report::PassLog log;
  logged.pass_log = &log;
  EXPECT_EQ(plan_key(program, pl, ""), plan_key(program, logged, ""));
}

TEST(PlanCache, HashCollisionsResolveByFullKeyCompare) {
  const zir::Program a = parser::parse_program(kProgram);
  const zir::Program b = parser::parse_program(kOtherProgram);
  const comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kRR);

  // Degenerate hash: every key lands in one bucket, so distinct programs
  // collide and only the full-key compare keeps them apart.
  PlanCache::Options copts;
  copts.hash = [](std::string_view) { return std::uint64_t{42}; };
  PlanCache cache(copts);

  const auto pa = cache.get_or_plan(a, opts);
  const auto pb = cache.get_or_plan(b, opts);
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(pa.get(), pb.get());
  EXPECT_NE(pa->static_count(), pb->static_count());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);

  // And both entries stay retrievable through the shared bucket.
  EXPECT_EQ(cache.get_or_plan(a, opts).get(), pa.get());
  EXPECT_EQ(cache.get_or_plan(b, opts).get(), pb.get());
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST(PlanCache, PublishesHitMissCountersToCurrentRegistry) {
  const zir::Program program = parser::parse_program(kProgram);
  const comm::OptOptions opts = comm::OptOptions::for_level(comm::OptLevel::kRR);

  metrics::Registry local;
  const metrics::ScopedRegistry scoped(local);
  PlanCache cache;
  cache.get_or_plan(program, opts);
  cache.get_or_plan(program, opts);
  cache.get_or_plan(program, opts);
  EXPECT_EQ(local.counter("exec.plan_cache.misses"), 1);
  EXPECT_EQ(local.counter("exec.plan_cache.hits"), 2);
}

TEST(PlanCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  const zir::Program a = parser::parse_program(kProgram);
  const zir::Program b = parser::parse_program(kOtherProgram);
  const comm::OptOptions rr = comm::OptOptions::for_level(comm::OptLevel::kRR);
  const comm::OptOptions cc = comm::OptOptions::for_level(comm::OptLevel::kCC);

  // Budget sized to hold roughly one entry: every new distinct plan evicts
  // the least-recently-used completed one.
  PlanCache::Options copts;
  copts.byte_budget = 1;  // smaller than any entry: at most the newest stays
  PlanCache cache(copts);

  const auto pa = cache.get_or_plan(a, rr);
  ASSERT_NE(pa, nullptr);
  const auto pb = cache.get_or_plan(b, rr);  // evicts a/rr
  ASSERT_NE(pb, nullptr);
  {
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1);
    EXPECT_EQ(s.entries, 1);
  }
  // The evicted plan is still alive for holders of the shared_ptr.
  EXPECT_GT(pa->static_count(), 0);

  // Re-requesting the evicted key is a fresh miss (re-planned), and the
  // interleaving keeps evicting LRU-first.
  const auto pa2 = cache.get_or_plan(a, rr);
  EXPECT_NE(pa2.get(), pa.get());
  const auto pc = cache.get_or_plan(a, cc);
  ASSERT_NE(pc, nullptr);
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 4);
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.evictions, 3);
  EXPECT_EQ(s.entries, 1);
}

TEST(PlanCache, ZeroBudgetMeansUnlimited) {
  const zir::Program a = parser::parse_program(kProgram);
  const zir::Program b = parser::parse_program(kOtherProgram);
  PlanCache cache;  // byte_budget = 0
  for (const auto level :
       {comm::OptLevel::kBaseline, comm::OptLevel::kRR, comm::OptLevel::kCC}) {
    cache.get_or_plan(a, comm::OptOptions::for_level(level));
    cache.get_or_plan(b, comm::OptOptions::for_level(level));
  }
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 6);
  EXPECT_EQ(s.evictions, 0);
}

TEST(PlanCache, ConcurrentRequestsPlanEachKeyOnce) {
  const zir::Program a = parser::parse_program(kProgram);
  const zir::Program b = parser::parse_program(kOtherProgram);
  const std::vector<comm::OptOptions> opts = {
      comm::OptOptions::for_level(comm::OptLevel::kBaseline),
      comm::OptOptions::for_level(comm::OptLevel::kRR),
      comm::OptOptions::for_level(comm::OptLevel::kCC),
      comm::OptOptions::for_level(comm::OptLevel::kPL),
  };
  PlanCache cache;
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 64;
  std::vector<std::shared_ptr<const comm::CommPlan>> got(kTasks);
  pool.run(kTasks, [&](std::size_t i) {
    got[i] = cache.get_or_plan(i % 2 == 0 ? a : b, opts[(i / 2) % opts.size()]);
  });
  for (const auto& p : got) EXPECT_NE(p, nullptr);
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 8);  // 2 programs x 4 option sets, each planned once
  EXPECT_EQ(s.hits, static_cast<long long>(kTasks) - 8);
  // Identical keys resolved to the identical shared plan object.
  std::set<const comm::CommPlan*> distinct;
  for (const auto& p : got) distinct.insert(p.get());
  EXPECT_EQ(distinct.size(), 8u);
}

TEST(PlanCache, ChurnPastBudgetFromManyThreadsConservesStats) {
  // Eviction under concurrency: 8 workers churn 12 distinct configurations
  // through a sharded cache whose budget holds only a couple of plans per
  // shard, with interleaved hits, misses, and evictions. The stats must
  // obey the conservation laws exactly — every lookup is a hit or a miss,
  // every entry is a miss that hasn't been evicted — and plans evicted
  // while a worker still holds them must stay live.
  const zir::Program a = parser::parse_program(kProgram);
  const zir::Program b = parser::parse_program(kOtherProgram);
  std::vector<comm::OptOptions> opts;
  for (const auto level : {comm::OptLevel::kBaseline, comm::OptLevel::kRR,
                           comm::OptLevel::kCC, comm::OptLevel::kPL}) {
    opts.push_back(comm::OptOptions::for_level(level));
  }
  comm::OptOptions maxlat = comm::OptOptions::for_level(comm::OptLevel::kPL);
  maxlat.heuristic = comm::CombineHeuristic::kMaxLatency;
  opts.push_back(maxlat);
  comm::OptOptions hybrid = comm::OptOptions::for_level(comm::OptLevel::kPL);
  hybrid.heuristic = comm::CombineHeuristic::kHybrid;
  opts.push_back(hybrid);

  PlanCache::Options copts;
  copts.byte_budget = 4096;  // a few entries per shard: constant churn
  copts.shards = 2;
  PlanCache cache(copts);

  constexpr int kThreads = 8;
  constexpr int kIters = 120;
  std::vector<std::vector<std::shared_ptr<const comm::CommPlan>>> pinned(kThreads);
  std::atomic<int> null_plans{0};
  ThreadPool pool(kThreads);
  pool.run(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kIters; ++i) {
      const zir::Program& prog = (t + static_cast<std::size_t>(i)) % 2 == 0 ? a : b;
      const comm::OptOptions& o = opts[(t * 7 + static_cast<std::size_t>(i)) % opts.size()];
      const auto plan = cache.get_or_plan(prog, o);
      if (plan == nullptr || plan->static_count() <= 0) {
        null_plans.fetch_add(1);
        continue;
      }
      // Pin a subset across later evictions; the rest drop immediately so
      // eviction actually frees them.
      if (i % 5 == static_cast<int>(t % 5)) pinned[t].push_back(plan);
    }
  });
  EXPECT_EQ(null_plans.load(), 0);

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups(), static_cast<long long>(kThreads) * kIters);  // hits+misses==lookups
  EXPECT_GE(s.misses, 12);   // every distinct key missed at least once
  EXPECT_GT(s.evictions, 0); // the budget actually churned
  EXPECT_EQ(s.entries, s.misses - s.evictions);  // inserts minus evictions survive
  EXPECT_GE(s.entries, 1);

  // Evicted-but-pinned plans are still alive and structurally valid.
  std::size_t held = 0;
  for (const auto& plans : pinned) {
    for (const auto& plan : plans) {
      EXPECT_GT(plan->static_count(), 0);
      ++held;
    }
  }
  EXPECT_EQ(held, static_cast<std::size_t>(kThreads) * (kIters / 5));
}

TEST(Registry, MergeFromAddsCountersAndTakesGauges) {
  metrics::Registry a;
  metrics::Registry b;
  a.count("x", 2);
  a.gauge("g", 1.0);
  b.count("x", 3);
  b.count("y", 7);
  b.gauge("g", 9.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("x"), 5);
  EXPECT_EQ(a.counter("y"), 7);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 9.0);
  // Self-merge is a no-op, not a doubling.
  a.merge_from(a);
  EXPECT_EQ(a.counter("x"), 5);
}

TEST(Registry, MergeFromAddsHistogramsBucketwise) {
  metrics::Registry a;
  metrics::Registry b;
  a.observe("h", 1.0, {2.0, 4.0});
  b.observe("h", 3.0, {2.0, 4.0});
  b.observe("h", 100.0, {2.0, 4.0});
  a.merge_from(b);
  const metrics::Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3);
  EXPECT_DOUBLE_EQ(h->sum, 104.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 100.0);
  ASSERT_EQ(h->buckets.size(), 3u);
  EXPECT_EQ(h->buckets[0], 1);  // 1.0 <= 2
  EXPECT_EQ(h->buckets[1], 1);  // 3.0 <= 4
  EXPECT_EQ(h->buckets[2], 1);  // 100.0 overflow
}

TEST(Registry, ScopedRegistryRedirectsAndRestores) {
  metrics::Registry outer;
  metrics::Registry inner;
  const metrics::ScopedRegistry attach_outer(outer);
  metrics::Registry::current().count("k");
  {
    const metrics::ScopedRegistry attach_inner(inner);
    metrics::Registry::current().count("k");
    metrics::Registry::current().count("k");
  }
  metrics::Registry::current().count("k");
  EXPECT_EQ(outer.counter("k"), 2);
  EXPECT_EQ(inner.counter("k"), 2);
}

TEST(Registry, CurrentIsPerThread) {
  metrics::Registry mine;
  const metrics::ScopedRegistry scoped(mine);
  ThreadPool pool(4);
  // Worker threads have no redirect: their current() is global(), not ours.
  std::atomic<int> redirected{0};
  pool.run(16, [&](std::size_t) {
    if (&metrics::Registry::current() == &mine) redirected.fetch_add(1);
  });
  // Task 0 may run on the caller (which IS redirected); workers never are.
  EXPECT_LE(redirected.load(), 16);
  EXPECT_EQ(&metrics::Registry::current(), &mine);
}

}  // namespace
}  // namespace zc::exec
