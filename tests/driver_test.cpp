// End-to-end driver tests: the Figure 9 experiment key, and the paper's
// headline performance shape on down-scaled benchmark runs — execution
// times fall monotonically baseline -> rr -> cc -> pl; SHMEM helps SWM and
// SIMPLE but hurts TOMCATV and SP (the prototype's heavyweight synch).
#include <gtest/gtest.h>

#include "src/comm/optimizer.h"
#include "src/driver/driver.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"

namespace zc::driver {
namespace {

TEST(Experiments, Figure9KeyIsComplete) {
  const auto exps = paper_experiments();
  ASSERT_EQ(exps.size(), 6u);
  EXPECT_EQ(exps[0].name, "baseline");
  EXPECT_EQ(exps[1].name, "rr");
  EXPECT_EQ(exps[2].name, "cc");
  EXPECT_EQ(exps[3].name, "pl");
  EXPECT_EQ(exps[4].name, "pl with shmem");
  EXPECT_EQ(exps[5].name, "pl with max latency");

  EXPECT_FALSE(exps[0].opts.remove_redundant);
  EXPECT_TRUE(exps[1].opts.remove_redundant);
  EXPECT_FALSE(exps[1].opts.combine);
  EXPECT_TRUE(exps[2].opts.combine);
  EXPECT_FALSE(exps[2].opts.pipeline);
  EXPECT_TRUE(exps[3].opts.pipeline);
  EXPECT_EQ(exps[3].library, ironman::CommLibrary::kPVM);
  EXPECT_EQ(exps[4].library, ironman::CommLibrary::kSHMEM);
  EXPECT_EQ(exps[5].opts.heuristic, comm::CombineHeuristic::kMaxLatency);
}

TEST(Experiments, FindByName) {
  EXPECT_TRUE(find_experiment("pl with shmem").has_value());
  EXPECT_FALSE(find_experiment("bogus").has_value());
}

TEST(Compile, ReportsStaticCount) {
  const Compiled c = compile(programs::benchmark("tomcatv").source,
                             comm::OptOptions::for_level(comm::OptLevel::kCC));
  EXPECT_GT(c.static_count(), 0);
  EXPECT_EQ(c.program.name(), "tomcatv");
}

class ShapeTest : public ::testing::Test {
 protected:
  /// Runs all six paper experiments on a benchmark at test scale, 16 procs.
  std::map<std::string, Metrics> run_all(const std::string& bench) {
    const auto& info = programs::benchmark(bench);
    std::map<std::string, Metrics> out;
    for (const Experiment& e : paper_experiments()) {
      out[e.name] = run_source(info.source, e, /*procs=*/16, info.test_configs);
    }
    return out;
  }
};

TEST_F(ShapeTest, OptimizationLevelsMonotonicallyImprove) {
  for (const char* bench : {"tomcatv", "swm", "simple", "sp"}) {
    const auto m = run_all(bench);
    const double base = m.at("baseline").execution_time;
    const double rr = m.at("rr").execution_time;
    const double cc = m.at("cc").execution_time;
    const double pl = m.at("pl").execution_time;
    EXPECT_LT(rr, base) << bench;
    EXPECT_LT(cc, rr) << bench;
    EXPECT_LE(pl, cc * 1.001) << bench;
    // Paper Figure 10(a): fully optimized runs land well below baseline.
    EXPECT_LT(pl, 0.97 * base) << bench;
  }
}

TEST_F(ShapeTest, ShmemHelpsFlatProgramsHurtsSequentialOnes) {
  // Paper Figure 10(b): SWM and SIMPLE improve under SHMEM; TOMCATV and SP
  // degrade because of the prototype's heavyweight synchronization around
  // their serialized solver sweeps.
  for (const char* bench : {"swm", "simple"}) {
    const auto m = run_all(bench);
    EXPECT_LT(m.at("pl with shmem").execution_time, m.at("pl").execution_time) << bench;
  }
  for (const char* bench : {"tomcatv", "sp"}) {
    const auto m = run_all(bench);
    EXPECT_GT(m.at("pl with shmem").execution_time, m.at("pl").execution_time) << bench;
  }
}

TEST_F(ShapeTest, MaxCombiningBeatsMaxLatencyAtRuntime) {
  // Paper Figure 12: the maximized-combining versions always ran faster
  // than the maximized-latency-hiding versions.
  for (const char* bench : {"tomcatv", "swm", "simple", "sp"}) {
    const auto m = run_all(bench);
    EXPECT_LE(m.at("pl with shmem").execution_time,
              m.at("pl with max latency").execution_time * 1.001)
        << bench;
  }
}

TEST_F(ShapeTest, DynamicCountsMatchFigure8Shape) {
  for (const char* bench : {"tomcatv", "swm", "simple", "sp"}) {
    const auto m = run_all(bench);
    const auto base = m.at("baseline").dynamic_count;
    EXPECT_LT(m.at("rr").dynamic_count, base) << bench;
    EXPECT_LT(m.at("cc").dynamic_count, m.at("rr").dynamic_count) << bench;
    EXPECT_EQ(m.at("pl").dynamic_count, m.at("cc").dynamic_count) << bench;
  }
}

TEST_F(ShapeTest, ParagonAsyncBindingsDoNotBeatSyncOnWholePrograms) {
  // Paper §3.2: on the Paragon, the asynchronous primitives "saw little
  // performance improvement or, in most cases, performance degradation"
  // across the full benchmark suite.
  for (const char* bench : {"tomcatv", "swm", "simple", "sp"}) {
    const auto& info = programs::benchmark(bench);
    const zir::Program p = parser::parse_program(info.source);
    const comm::CommPlan plan =
        comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kPL));
    auto time_with = [&](ironman::CommLibrary lib) {
      sim::RunConfig cfg;
      cfg.machine = machine::paragon_model();
      cfg.library = lib;
      cfg.procs = 16;
      cfg.config_overrides = info.test_configs;
      return sim::run_program(p, plan, cfg).elapsed_seconds;
    };
    const double sync = time_with(ironman::CommLibrary::kNXSync);
    const double async = time_with(ironman::CommLibrary::kNXAsync);
    const double callback = time_with(ironman::CommLibrary::kNXCallback);
    EXPECT_GT(async, 0.98 * sync) << bench;     // little improvement at best
    EXPECT_GT(callback, async * 0.999) << bench;  // callbacks worse still
  }
}

TEST_F(ShapeTest, TomcatvMaxLatencyCountsEqualRR) {
  // Paper §3.3.2: "For TOMCATV, the dynamic communication count is ... the
  // same as for simply removing redundant communication."
  const auto m = run_all("tomcatv");
  EXPECT_EQ(m.at("pl with max latency").dynamic_count, m.at("rr").dynamic_count);
  EXPECT_EQ(m.at("pl with max latency").static_count, m.at("rr").static_count);
}

}  // namespace
}  // namespace zc::driver
