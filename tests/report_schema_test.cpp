// Round-trips a run report through src/support/json and validates the
// schema documented in src/driver/report.h: required keys, their types,
// non-empty per-pass provenance, and serialization stability.
#include <string>

#include <gtest/gtest.h>

#include "src/driver/report.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/support/json.h"
#include "src/trace/recorder.h"

namespace {

using namespace zc;

json::Value generate_report(bool traced) {
  const programs::BenchmarkInfo& info = programs::benchmark("tomcatv");
  const zir::Program program = parser::parse_program(info.source);
  const auto exp = driver::find_experiment("pl");
  EXPECT_TRUE(exp.has_value());

  trace::Recorder recorder(4);
  sim::RunConfig cfg;
  cfg.procs = 4;
  cfg.config_overrides = info.test_configs;
  if (traced) cfg.recorder = &recorder;
  return driver::run_report(program, *exp, std::move(cfg));
}

void expect_number(const json::Value& doc, const std::string& key) {
  ASSERT_TRUE(doc.has(key)) << "missing required key " << key;
  EXPECT_TRUE(doc.at(key).is_number()) << key << " must be a number";
}

void expect_string(const json::Value& doc, const std::string& key) {
  ASSERT_TRUE(doc.has(key)) << "missing required key " << key;
  EXPECT_TRUE(doc.at(key).is_string()) << key << " must be a string";
}

TEST(ReportSchemaTest, RoundTripValidatesRequiredKeys) {
  const json::Value built = generate_report(/*traced=*/true);
  const std::string text = built.dump();
  const json::Value doc = json::parse(text);

  expect_string(doc, "schema");
  EXPECT_EQ(doc.at("schema").string, "zcomm-run-report");
  expect_number(doc, "schema_version");
  EXPECT_EQ(doc.at("schema_version").number, 5.0);
  expect_string(doc, "benchmark");
  EXPECT_EQ(doc.at("benchmark").string, "tomcatv");
  expect_string(doc, "experiment");
  EXPECT_EQ(doc.at("experiment").string, "pl");
  expect_string(doc, "library");
  expect_number(doc, "procs");
  EXPECT_EQ(doc.at("procs").number, 4.0);

  ASSERT_TRUE(doc.has("options"));
  const json::Value& opts = doc.at("options");
  ASSERT_TRUE(opts.is_object());
  for (const char* key : {"remove_redundant", "combine", "pipeline", "inter_block"}) {
    ASSERT_TRUE(opts.has(key)) << key;
    EXPECT_EQ(opts.at(key).kind, json::Value::Kind::kBool) << key;
  }
  EXPECT_TRUE(opts.at("pipeline").boolean);
  expect_string(opts, "heuristic");

  expect_number(doc, "static_count");
  expect_number(doc, "dynamic_count");
  expect_number(doc, "execution_time_seconds");
  expect_number(doc, "total_messages");
  expect_number(doc, "total_bytes");
  expect_number(doc, "reduction_count");
  EXPECT_GT(doc.at("static_count").number, 0.0);
  EXPECT_GE(doc.at("dynamic_count").number, doc.at("static_count").number);
  EXPECT_GT(doc.at("execution_time_seconds").number, 0.0);
}

TEST(ReportSchemaTest, HostFingerprintBlockIsDeterministicAndOptional) {
  const json::Value doc = json::parse(generate_report(/*traced=*/false).dump());
  ASSERT_TRUE(doc.has("host"));
  const json::Value& host = doc.at("host");
  ASSERT_TRUE(host.is_object());
  expect_string(host, "class");
  EXPECT_FALSE(host.at("class").string.empty());
  expect_number(host, "cores");
  EXPECT_GT(host.at("cores").number, 0.0);
  expect_string(host, "cpu_model");
  expect_number(host, "page_size");
  ASSERT_TRUE(host.has("build"));
  const json::Value& build = host.at("build");
  expect_string(build, "compiler");
  EXPECT_FALSE(build.at("compiler").string.empty());
  expect_string(build, "compiler_version");
  // No timestamps anywhere in the block: the same binary must emit the
  // same host block byte-for-byte, keeping reports and response streams
  // deterministic.
  const json::Value again = json::parse(generate_report(/*traced=*/false).dump());
  EXPECT_EQ(host.dump(), again.at("host").dump());

  // The block is skippable for byte-stable golden comparisons.
  const programs::BenchmarkInfo& info = programs::benchmark("tomcatv");
  const zir::Program program = parser::parse_program(info.source);
  const auto exp = driver::find_experiment("pl");
  ASSERT_TRUE(exp.has_value());
  driver::ReportOptions ropts;
  ropts.host_fingerprint = false;
  sim::RunConfig cfg;
  cfg.procs = 4;
  cfg.config_overrides = info.test_configs;
  const json::Value bare = driver::run_report(program, *exp, std::move(cfg), ropts);
  EXPECT_FALSE(bare.has("host"));
}

TEST(ReportSchemaTest, PassProvenanceIsPresentAndNonEmpty) {
  const json::Value doc = json::parse(generate_report(/*traced=*/false).dump());

  ASSERT_TRUE(doc.has("passes"));
  const json::Value& passes = doc.at("passes");
  ASSERT_TRUE(passes.is_object());
  ASSERT_TRUE(passes.has("summary"));
  const json::Value& summary = passes.at("summary");
  EXPECT_GT(summary.at("transfers_generated").number, 0.0);
  EXPECT_GT(summary.at("rr_removed").number, 0.0);
  EXPECT_GT(summary.at("pl_placements").number, 0.0);
  EXPECT_GT(summary.at("total_sr_hoist").number, 0.0);

  for (const char* pass : {"generate", "rr", "cc", "pl"}) {
    ASSERT_TRUE(passes.has(pass)) << pass;
    EXPECT_TRUE(passes.at(pass).is_array()) << pass;
  }
  EXPECT_FALSE(passes.at("rr").array.empty());
  EXPECT_FALSE(passes.at("pl").array.empty());
  // Every decision carries its source anchor.
  for (const json::Value& d : passes.at("rr").array) {
    ASSERT_TRUE(d.has("where"));
    EXPECT_TRUE(d.at("where").at("block").is_number());
    EXPECT_TRUE(d.at("where").at("proc").is_string());
    EXPECT_TRUE(d.at("covering_transfer").is_number());
  }
}

TEST(ReportSchemaTest, TraceBlockPresentOnlyWhenTraced) {
  const json::Value untraced = json::parse(generate_report(/*traced=*/false).dump());
  EXPECT_FALSE(untraced.has("trace"));
  EXPECT_FALSE(untraced.has("blame"));
  EXPECT_FALSE(untraced.has("critical_path"));

  const json::Value traced = json::parse(generate_report(/*traced=*/true).dump());
  ASSERT_TRUE(traced.has("trace"));
  const json::Value& t = traced.at("trace");
  EXPECT_GT(t.at("total_messages").number, 0.0);
  EXPECT_GT(t.at("wire_seconds").number, 0.0);
  ASSERT_TRUE(traced.has("metrics"));
  EXPECT_TRUE(traced.at("metrics").at("counters").is_object());
}

TEST(ReportSchemaTest, AttributionBlocksPresentWhenTraced) {
  const json::Value doc = json::parse(generate_report(/*traced=*/true).dump());

  ASSERT_TRUE(doc.has("blame"));
  const json::Value& blame = doc.at("blame");
  EXPECT_GT(blame.at("communications").number, 0.0);
  ASSERT_FALSE(blame.at("rows").array.empty());
  // The rows partition the trace's exposed overhead (full law pinned by
  // tests/analysis_test.cpp; here: the totals agree across blocks).
  EXPECT_NEAR(blame.at("total_exposed_seconds").number,
              doc.at("trace").at("exposed_overhead_seconds").number,
              1e-9 * doc.at("trace").at("exposed_overhead_seconds").number);
  for (const json::Value& row : blame.at("rows").array) {
    EXPECT_TRUE(row.at("transfer").is_number());
    EXPECT_TRUE(row.at("exposed_overhead_seconds").is_number());
  }

  ASSERT_TRUE(doc.has("critical_path"));
  const json::Value& cp = doc.at("critical_path");
  EXPECT_TRUE(cp.at("exact").boolean);
  EXPECT_GT(cp.at("makespan_seconds").number, 0.0);
  EXPECT_FALSE(cp.at("transfers").array.empty());
}

TEST(ReportSchemaTest, DiffRunReportsMatchesToolVerdicts) {
  const json::Value report = generate_report(/*traced=*/false);
  // Identical reports: no regression, strict improvement impossible.
  const json::Value same = driver::diff_run_reports(report, report);
  EXPECT_FALSE(same.at("regressed").boolean);
  const json::Value strict =
      driver::diff_run_reports(report, report, 0.05, {"static_count"});
  EXPECT_TRUE(strict.at("regressed").boolean);
  EXPECT_FALSE(strict.at("strict").array[0].at("improved").boolean);
  // The JSON is self-describing and round-trips.
  const std::string text = strict.dump();
  EXPECT_EQ(json::parse(text).dump(), text);
}

TEST(ReportSchemaTest, SerializationIsStable) {
  const json::Value built = generate_report(/*traced=*/false);
  const std::string once = built.dump();
  EXPECT_EQ(json::parse(once).dump(), once)
      << "dump -> parse -> dump must be a fixed point";
}

}  // namespace
