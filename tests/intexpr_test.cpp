#include <gtest/gtest.h>

#include "src/support/diag.h"
#include "src/zir/intexpr.h"
#include "src/zir/program.h"

namespace zc::zir {
namespace {

class IntExprTest : public ::testing::Test {
 protected:
  IntExprTest() {
    n_ = program_.add_config({"n", 10});
    i_ = program_.add_loop_var({"i"});
    env_ = program_.default_env();
  }

  Program program_;
  ConfigId n_;
  LoopVarId i_;
  IntEnv env_;
};

TEST_F(IntExprTest, ConstEval) {
  EXPECT_EQ(IntExpr::constant(42).eval(env_), 42);
}

TEST_F(IntExprTest, ConfigEval) {
  EXPECT_EQ(IntExpr::config(n_).eval(env_), 10);
  env_.config_values[n_.index()] = 128;
  EXPECT_EQ(IntExpr::config(n_).eval(env_), 128);
}

TEST_F(IntExprTest, Arithmetic) {
  const IntExpr e = IntExpr::sub(IntExpr::mul(IntExpr::config(n_), IntExpr::constant(3)),
                                 IntExpr::constant(5));
  EXPECT_EQ(e.eval(env_), 25);
  EXPECT_EQ(IntExpr::div(IntExpr::constant(7), IntExpr::constant(2)).eval(env_), 3);
  EXPECT_EQ(IntExpr::neg(IntExpr::constant(4)).eval(env_), -4);
}

TEST_F(IntExprTest, DivisionByZeroThrows) {
  EXPECT_THROW(IntExpr::div(IntExpr::constant(1), IntExpr::constant(0)).eval(env_), Error);
}

TEST_F(IntExprTest, UnboundLoopVarThrows) {
  EXPECT_THROW(IntExpr::loop_var(i_).eval(env_), Error);
}

TEST_F(IntExprTest, BoundLoopVarEvaluates) {
  env_.loop_bound[i_.index()] = true;
  env_.loop_values[i_.index()] = 7;
  EXPECT_EQ(IntExpr::add(IntExpr::loop_var(i_), IntExpr::constant(1)).eval(env_), 8);
}

TEST_F(IntExprTest, IsStatic) {
  EXPECT_TRUE(IntExpr::constant(1).is_static());
  EXPECT_TRUE(IntExpr::add(IntExpr::config(n_), IntExpr::constant(1)).is_static());
  EXPECT_FALSE(IntExpr::loop_var(i_).is_static());
  EXPECT_FALSE(IntExpr::sub(IntExpr::config(n_), IntExpr::loop_var(i_)).is_static());
}

TEST_F(IntExprTest, UsesLoopVar) {
  const LoopVarId j = program_.add_loop_var({"j"});
  const IntExpr e = IntExpr::add(IntExpr::loop_var(i_), IntExpr::constant(2));
  EXPECT_TRUE(e.uses_loop_var(i_));
  EXPECT_FALSE(e.uses_loop_var(j));
}

TEST_F(IntExprTest, StructuralEquality) {
  const IntExpr a = IntExpr::add(IntExpr::config(n_), IntExpr::constant(1));
  const IntExpr b = IntExpr::add(IntExpr::config(n_), IntExpr::constant(1));
  const IntExpr c = IntExpr::add(IntExpr::config(n_), IntExpr::constant(2));
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(IntExpr::constant(11)));  // not value equality
  EXPECT_TRUE(IntExpr::loop_var(i_).equals(IntExpr::loop_var(i_)));
}

TEST_F(IntExprTest, ToString) {
  const IntExpr e = IntExpr::sub(IntExpr::config(n_), IntExpr::constant(1));
  EXPECT_EQ(e.to_string(program_), "(n-1)");
  EXPECT_EQ(IntExpr::neg(IntExpr::loop_var(i_)).to_string(program_), "(-i)");
}

}  // namespace
}  // namespace zc::zir
