// Engine semantics: numerics on a known stencil, counters, imbalance,
// reductions, and determinism.
#include <gtest/gtest.h>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/sim/engine.h"

namespace zc::sim {
namespace {

RunResult run(std::string_view source, comm::OptLevel level, int procs,
              ironman::CommLibrary lib = ironman::CommLibrary::kPVM,
              std::map<std::string, long long> overrides = {}) {
  const zir::Program p = parser::parse_program(source);
  const comm::CommPlan plan = comm::plan_communication(p, comm::OptOptions::for_level(level));
  RunConfig cfg;
  cfg.library = lib;
  cfg.machine = machine::library_available(machine::MachineKind::kT3D, lib)
                    ? machine::t3d_model()
                    : machine::paragon_model();
  cfg.procs = procs;
  cfg.config_overrides = std::move(overrides);
  return run_program(p, plan, cfg);
}

constexpr std::string_view kShiftProgram = R"(
program shift;
config n : integer = 8;
region R = [1..n, 1..n];
region I = [1..n, 1..n-1];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := Index1 * 100.0 + Index2;
  [R] B := 0.0;
  [I] B := A@east;
}
)";

TEST(Engine, ShiftMovesCorrectValuesAcrossProcessors) {
  // B(i,j) = A(i,j+1) = 100 i + j + 1 over [1..8, 1..7]; zero elsewhere.
  double expected = 0.0;
  for (int i = 1; i <= 8; ++i) {
    for (int j = 1; j <= 7; ++j) expected += 100.0 * i + j + 1;
  }
  for (const int procs : {1, 4, 8}) {
    const RunResult r = run(kShiftProgram, comm::OptLevel::kBaseline, procs);
    EXPECT_DOUBLE_EQ(r.checksums.at("B"), expected) << procs << " procs";
  }
}

TEST(Engine, DiagonalShiftAcrossCornerProcessors) {
  constexpr std::string_view src = R"(
program diag;
config n : integer = 8;
region R = [1..n, 1..n];
region I = [2..n, 2..n];
direction nw = [-1, -1];
var A, B : [R] double;
procedure main() {
  [R] A := Index1 * 100.0 + Index2;
  [R] B := 0.0;
  [I] B := A@nw;
}
)";
  double expected = 0.0;
  for (int i = 2; i <= 8; ++i) {
    for (int j = 2; j <= 8; ++j) expected += 100.0 * (i - 1) + (j - 1);
  }
  for (const int procs : {1, 4, 16}) {
    const RunResult r = run(src, comm::OptLevel::kBaseline, procs);
    EXPECT_DOUBLE_EQ(r.checksums.at("B"), expected) << procs << " procs";
  }
}

TEST(Engine, DynamicCountIsIterationScaled) {
  constexpr std::string_view src = R"(
program loopy;
config n : integer = 8;
config iters : integer = 5;
region R = [1..n, 1..n];
region I = [1..n, 1..n-1];
direction east = [0, 1];
var A, B : [R] double;
procedure main() {
  [R] A := 1.0;
  [R] B := 0.0;
  for it in 1..iters {
    [I] B := A@east;
    [I] A := B + 1.0;
  }
}
)";
  const RunResult r = run(src, comm::OptLevel::kBaseline, 4);
  EXPECT_EQ(r.dynamic_count, 5);
  const RunResult r10 = run(src, comm::OptLevel::kBaseline, 4, ironman::CommLibrary::kPVM,
                            {{"iters", 10}});
  EXPECT_EQ(r10.dynamic_count, 10);
}

TEST(Engine, MessagesOnlyWhereDataCrosses) {
  // 2x2 mesh, east shift: only the column boundary moves data — 2 messages
  // (one per processor row).
  const RunResult r = run(kShiftProgram, comm::OptLevel::kBaseline, 4);
  EXPECT_EQ(r.total_messages, 2);
  EXPECT_EQ(r.total_bytes, 2 * 4 * 8);  // 4-row column slices of doubles
  // On one processor there is no communication at all.
  const RunResult r1 = run(kShiftProgram, comm::OptLevel::kBaseline, 1);
  EXPECT_EQ(r1.total_messages, 0);
  EXPECT_EQ(r1.dynamic_count, 1);  // the call set still executes
}

TEST(Engine, RowRegionStatementsOnlyChargeOwners) {
  // A statement over a single row costs time only on the processor row
  // that owns it: the other processor rows' clocks stay behind.
  constexpr std::string_view src = R"(
program rows;
config n : integer = 16;
region R = [1..n, 1..n];
var A : [R] double;
procedure main() {
  [R] A := 1.0;
  [2, 1..n] A := A * 2.0;
  [2, 1..n] A := A * 2.0;
  [2, 1..n] A := A * 2.0;
}
)";
  const zir::Program p = parser::parse_program(src);
  const comm::CommPlan plan =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kBaseline));
  RunConfig cfg;
  cfg.procs = 4;
  Engine engine(p, plan, cfg);
  const RunResult r = engine.run();
  // Row 2 lives on processor row 0; the checksum reflects 1*2*2*2 on row 2.
  EXPECT_DOUBLE_EQ(r.checksums.at("A"), 16.0 * 16.0 - 16.0 + 16.0 * 8.0);
}

TEST(Engine, ReductionComputesGlobalValueAndSynchronizes) {
  constexpr std::string_view src = R"(
program red;
config n : integer = 8;
region R = [1..n, 1..n];
var A : [R] double;
var s, m : double;
procedure main() {
  [R] A := Index1 + Index2;
  [R] s := +<< A;
  [R] m := max<< A;
}
)";
  for (const int procs : {1, 4}) {
    const RunResult r = run(src, comm::OptLevel::kBaseline, procs);
    double sum = 0.0;
    for (int i = 1; i <= 8; ++i) {
      for (int j = 1; j <= 8; ++j) sum += i + j;
    }
    EXPECT_DOUBLE_EQ(r.scalars.at("s"), sum) << procs;
    EXPECT_DOUBLE_EQ(r.scalars.at("m"), 16.0) << procs;
    EXPECT_EQ(r.reduction_count, 2);
  }
}

TEST(Engine, IfBranchesOnReplicatedScalar) {
  constexpr std::string_view src = R"(
program brnch;
config n : integer = 4;
region R = [1..n, 1..n];
var A : [R] double;
var s : double;
procedure main() {
  [R] A := 1.0;
  [R] s := +<< A;
  if s > 10.0 {
    [R] A := 2.0;
  } else {
    [R] A := 3.0;
  }
}
)";
  const RunResult r = run(src, comm::OptLevel::kBaseline, 4);
  EXPECT_DOUBLE_EQ(r.checksums.at("A"), 2.0 * 16);  // sum = 16 > 10
}

TEST(Engine, ElapsedTimePositiveAndDeterministic) {
  const RunResult a = run(kShiftProgram, comm::OptLevel::kBaseline, 4);
  const RunResult b = run(kShiftProgram, comm::OptLevel::kBaseline, 4);
  EXPECT_GT(a.elapsed_seconds, 0.0);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.checksums, b.checksums);
}

TEST(Engine, ShmemRunsProduceSameNumbers) {
  const RunResult pvm = run(kShiftProgram, comm::OptLevel::kPL, 4, ironman::CommLibrary::kPVM);
  const RunResult shm = run(kShiftProgram, comm::OptLevel::kPL, 4, ironman::CommLibrary::kSHMEM);
  EXPECT_EQ(pvm.checksums, shm.checksums);
  EXPECT_NE(pvm.elapsed_seconds, shm.elapsed_seconds);  // timing differs
}

TEST(Engine, ParagonLibrariesProduceSameNumbers) {
  for (const auto lib : {ironman::CommLibrary::kNXSync, ironman::CommLibrary::kNXAsync,
                         ironman::CommLibrary::kNXCallback}) {
    const RunResult r = run(kShiftProgram, comm::OptLevel::kPL, 4, lib);
    const RunResult ref = run(kShiftProgram, comm::OptLevel::kPL, 1, lib);
    EXPECT_EQ(r.checksums, ref.checksums) << ironman::to_string(lib);
  }
}

TEST(Engine, ConfigOverridesApply) {
  const RunResult r = run(kShiftProgram, comm::OptLevel::kBaseline, 4,
                          ironman::CommLibrary::kPVM, {{"n", 12}});
  double expected = 0.0;
  for (int i = 1; i <= 12; ++i) {
    for (int j = 1; j <= 11; ++j) expected += 100.0 * i + j + 1;
  }
  EXPECT_DOUBLE_EQ(r.checksums.at("B"), expected);
}

TEST(Engine, CenterProcIsInterior) {
  const RunResult r = run(kShiftProgram, comm::OptLevel::kBaseline, 4);
  EXPECT_EQ(r.mesh.rows, 2);
  EXPECT_EQ(r.mesh.cols, 2);
  EXPECT_EQ(r.center_proc, r.mesh.rank_of(1, 1));
}

}  // namespace
}  // namespace zc::sim
