// Checks the machine models' qualitative properties the paper measured in
// §3.2 (Figures 3 and 6): the 4 KB combining knee, SHMEM ~10% under PVM,
// and the heavyweight Paragon async/callback primitives.
#include <gtest/gtest.h>

#include "src/machine/model.h"
#include "src/sim/transport.h"

namespace zc::machine {
namespace {

using ironman::CommLibrary;
using ironman::Primitive;

TEST(Models, Figure3Parameters) {
  const MachineModel paragon = paragon_model();
  EXPECT_EQ(paragon.kind, MachineKind::kParagon);
  EXPECT_DOUBLE_EQ(paragon.clock_hz, 50e6);
  EXPECT_NEAR(paragon.timer_granularity, 100e-9, 1e-12);

  const MachineModel t3d = t3d_model();
  EXPECT_EQ(t3d.kind, MachineKind::kT3D);
  EXPECT_DOUBLE_EQ(t3d.clock_hz, 150e6);
  EXPECT_NEAR(t3d.timer_granularity, 150e-9, 1e-12);
}

TEST(Models, LibraryAvailability) {
  EXPECT_TRUE(library_available(MachineKind::kParagon, CommLibrary::kNXSync));
  EXPECT_TRUE(library_available(MachineKind::kParagon, CommLibrary::kNXAsync));
  EXPECT_TRUE(library_available(MachineKind::kParagon, CommLibrary::kNXCallback));
  EXPECT_FALSE(library_available(MachineKind::kParagon, CommLibrary::kPVM));
  EXPECT_TRUE(library_available(MachineKind::kT3D, CommLibrary::kPVM));
  EXPECT_TRUE(library_available(MachineKind::kT3D, CommLibrary::kSHMEM));
  EXPECT_FALSE(library_available(MachineKind::kT3D, CommLibrary::kNXSync));
}

TEST(Models, PrimitiveCostGrowsWithSize) {
  const MachineModel t3d = t3d_model();
  const double small = t3d.primitive_cpu_cost(Primitive::kPvmSend, 8);
  const double large = t3d.primitive_cpu_cost(Primitive::kPvmSend, 8192);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
}

TEST(Models, PacketChargeAppliesBeyond4K) {
  const MachineModel t3d = t3d_model();
  const double just_under = t3d.primitive_cpu_cost(Primitive::kPvmSend, 4096);
  const double just_over = t3d.primitive_cpu_cost(Primitive::kPvmSend, 4097);
  EXPECT_GT(just_over - just_under, t3d.packet_overhead * 0.99);
}

TEST(Models, NoOpCostsNothing) {
  EXPECT_EQ(t3d_model().primitive_cpu_cost(Primitive::kNoOp, 1 << 20), 0.0);
}

/// §3.2: "the knee occurs at about 512 doubles (4K bytes)": below the knee
/// the per-call overhead dominates (combining always wins); above it the
/// per-byte cost dominates (combining stops helping).
TEST(Knee, CombiningWinsBelow4KAndStopsMattering) {
  for (const auto& [machine, lib] :
       std::vector<std::pair<MachineModel, CommLibrary>>{
           {t3d_model(), CommLibrary::kPVM},
           {t3d_model(), CommLibrary::kSHMEM},
           {paragon_model(), CommLibrary::kNXSync}}) {
    const sim::Transport tx(machine, lib);
    // Two 256-double messages vs one 512-double message: combining wins big.
    const double two_small = 2 * tx.exposed_overhead(256 * 8);
    const double one_big = tx.exposed_overhead(512 * 8);
    EXPECT_LT(one_big, two_small) << to_string(lib);
    EXPECT_LT(one_big, 0.75 * two_small) << to_string(lib);

    // Two 512-double messages vs one 1024-double message: combining saves
    // proportionally much less — the curve has gone linear.
    const double two_big = 2 * tx.exposed_overhead(512 * 8);
    const double one_huge = tx.exposed_overhead(1024 * 8);
    const double saving_small = (two_small - one_big) / two_small;
    const double saving_large = (two_big - one_huge) / two_big;
    EXPECT_LT(saving_large, saving_small * 0.8) << to_string(lib);
  }
}

/// §3.2: SHMEM's exposed overhead is ~10% below PVM's in the prototype
/// framework (the heavyweight synch eats most of shmem_put's advantage).
TEST(Shmem, AboutTenPercentBelowPvmAtSmallSizes) {
  const sim::Transport pvm(t3d_model(), CommLibrary::kPVM);
  const sim::Transport shm(t3d_model(), CommLibrary::kSHMEM);
  const double o_pvm = pvm.exposed_overhead(64 * 8);
  const double o_shm = shm.exposed_overhead(64 * 8);
  const double ratio = o_shm / o_pvm;
  EXPECT_GT(ratio, 0.80);
  EXPECT_LT(ratio, 0.97);
}

/// §3.2 / §4: the Paragon's asynchronous primitives are "extremely
/// heavy-weight": they do not beat csend/crecv on exposed overhead, and
/// the callback variants are worse still.
TEST(Paragon, AsyncPrimitivesDoNotBeatCsend) {
  const MachineModel paragon = paragon_model();
  const sim::Transport sync(paragon, CommLibrary::kNXSync);
  const sim::Transport async(paragon, CommLibrary::kNXAsync);
  const sim::Transport callback(paragon, CommLibrary::kNXCallback);
  for (const long long doubles : {1LL, 16LL, 128LL, 512LL}) {
    const long long bytes = doubles * 8;
    EXPECT_GE(async.exposed_overhead(bytes), sync.exposed_overhead(bytes)) << doubles;
    EXPECT_GT(callback.exposed_overhead(bytes), async.exposed_overhead(bytes)) << doubles;
  }
}

TEST(Names, MachineKindToString) {
  EXPECT_EQ(to_string(MachineKind::kParagon), "paragon");
  EXPECT_EQ(to_string(MachineKind::kT3D), "t3d");
}

}  // namespace
}  // namespace zc::machine
