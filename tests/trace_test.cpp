// Trace subsystem tests: recorder bounding and drop accounting, Chrome
// JSON well-formedness (parsed back with support/json), the golden
// zero-perturbation contract (a traced run's Metrics are bit-identical to
// an untraced run), exact reconciliation of trace totals with the engine's
// counters, and the Figure 6 cross-check (traced ping exposed overhead ==
// Transport::exposed_overhead).
#include <gtest/gtest.h>

#include <cmath>

#include "src/driver/driver.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/ping.h"
#include "src/sim/transport.h"
#include "src/support/csv.h"
#include "src/support/json.h"
#include "src/trace/chrome.h"
#include "src/trace/recorder.h"
#include "src/trace/stats.h"

namespace zc::trace {
namespace {

using ironman::CommLibrary;
using ironman::IronmanCall;
using ironman::Primitive;

TEST(Recorder, BoundsEventBuffersAndCountsDrops) {
  RecorderOptions opts;
  opts.max_events_per_proc = 4;
  opts.max_messages = 2;
  Recorder rec(2, opts);

  for (int i = 0; i < 10; ++i) {
    rec.record_compute(0, 100, i * 1.0, i * 1.0 + 0.5);
  }
  EXPECT_EQ(rec.events(0).size(), 4u);
  EXPECT_EQ(rec.events(1).size(), 0u);
  EXPECT_EQ(rec.dropped_events(), 6);
  // Aggregates keep counting past the cap.
  EXPECT_DOUBLE_EQ(rec.compute_seconds(), 10 * 0.5);

  for (int i = 0; i < 5; ++i) {
    const std::int64_t id = rec.record_message(7, /*transfer=*/0, 0, 1, 256, 0.0, 0.1, 0.2);
    EXPECT_EQ(id >= 0, i < 2);  // detailed records stop at the cap
    rec.record_consumed(id, /*transfer=*/0, 0.3, /*wait_seconds=*/0.05, /*wire_seconds=*/0.1);
  }
  EXPECT_EQ(rec.messages().size(), 2u);
  EXPECT_EQ(rec.dropped_messages(), 3);
  EXPECT_EQ(rec.total_messages(), 5);
  EXPECT_EQ(rec.total_bytes(), 5 * 256);
  EXPECT_DOUBLE_EQ(rec.wire_totals().wire_seconds, 5 * 0.1);
  EXPECT_DOUBLE_EQ(rec.wire_totals().exposed_seconds, 5 * 0.05);
  const auto& chan = rec.channel_totals().at({7, 0, 1});
  EXPECT_EQ(chan.messages, 5);
  EXPECT_EQ(chan.bytes, 5 * 256);
}

TEST(Recorder, SizeBucketsStraddleTheKnee) {
  EXPECT_EQ(Recorder::size_bucket(1), 16);
  EXPECT_EQ(Recorder::size_bucket(16), 16);
  EXPECT_EQ(Recorder::size_bucket(17), 32);
  EXPECT_EQ(Recorder::size_bucket(4096), 4096);
  EXPECT_EQ(Recorder::size_bucket(4097), 8192);
  EXPECT_EQ(Recorder::size_bucket(1 << 20), 1 << 20);
  EXPECT_EQ(Recorder::size_bucket((1 << 20) + 1), Recorder::kOverflowBucket);
}

TEST(Recorder, CallTotalsSplitWaitAndCpu) {
  Recorder rec(2);
  // A DN that waited 3 time units and then spent 1 on the copy.
  rec.record_call(1, IronmanCall::kDN, Primitive::kPvmRecv, 0, /*transfer=*/0, 0, 1, 800,
                  /*t_begin=*/10.0, /*t_unblocked=*/13.0, /*t_end=*/14.0);
  const CallTotals& dn = rec.call_totals()[static_cast<std::size_t>(IronmanCall::kDN)];
  EXPECT_EQ(dn.calls, 1);
  EXPECT_DOUBLE_EQ(dn.wait_seconds, 3.0);
  EXPECT_DOUBLE_EQ(dn.cpu_seconds, 1.0);
  const CallTotals& prim = rec.primitive_totals().at(Primitive::kPvmRecv);
  EXPECT_EQ(prim.calls, 1);
  EXPECT_DOUBLE_EQ(prim.wait_seconds, 3.0);
}

/// Runs one paper experiment on a test-scale benchmark, traced.
driver::Metrics run_traced(const std::string& bench, const std::string& experiment,
                           Recorder& recorder, int procs = 16) {
  const programs::BenchmarkInfo& info = programs::benchmark(bench);
  const zir::Program program = parser::parse_program(info.source);
  sim::RunConfig cfg;
  cfg.procs = procs;
  cfg.config_overrides = info.test_configs;
  cfg.recorder = &recorder;
  return driver::run_experiment(program, *driver::find_experiment(experiment), cfg);
}

driver::Metrics run_untraced(const std::string& bench, const std::string& experiment,
                             int procs = 16) {
  const programs::BenchmarkInfo& info = programs::benchmark(bench);
  return driver::run_source(info.source, *driver::find_experiment(experiment), procs,
                            info.test_configs);
}

TEST(TraceGolden, TracedRunIsBitIdenticalToUntraced) {
  for (const char* experiment : {"baseline", "pl", "pl with shmem"}) {
    Recorder rec(16);
    const driver::Metrics traced = run_traced("tomcatv", experiment, rec);
    const driver::Metrics plain = run_untraced("tomcatv", experiment);

    EXPECT_EQ(traced.static_count, plain.static_count) << experiment;
    EXPECT_EQ(traced.dynamic_count, plain.dynamic_count) << experiment;
    EXPECT_EQ(traced.execution_time, plain.execution_time) << experiment;  // bitwise
    EXPECT_EQ(traced.run.total_messages, plain.run.total_messages) << experiment;
    EXPECT_EQ(traced.run.total_bytes, plain.run.total_bytes) << experiment;
    EXPECT_EQ(traced.run.reduction_count, plain.run.reduction_count) << experiment;
    ASSERT_EQ(traced.run.checksums.size(), plain.run.checksums.size()) << experiment;
    for (const auto& [name, sum] : plain.run.checksums) {
      EXPECT_EQ(traced.run.checksums.at(name), sum) << experiment << " " << name;  // bitwise
    }
    for (const auto& [name, value] : plain.run.scalars) {
      EXPECT_EQ(traced.run.scalars.at(name), value) << experiment << " " << name;
    }
    EXPECT_TRUE(traced.trace_stats.has_value()) << experiment;
    EXPECT_FALSE(plain.trace_stats.has_value()) << experiment;
  }
}

TEST(TraceGolden, StatsTotalsReconcileWithRunResult) {
  for (const char* experiment : {"baseline", "cc", "pl", "pl with shmem"}) {
    Recorder rec(16);
    const driver::Metrics m = run_traced("tomcatv", experiment, rec);
    const Stats& s = *m.trace_stats;

    EXPECT_EQ(s.total_messages, m.run.total_messages) << experiment;
    EXPECT_EQ(s.total_bytes, m.run.total_bytes) << experiment;

    long long channel_messages = 0, channel_bytes = 0;
    for (const ChannelStat& ch : s.channels) {
      channel_messages += ch.messages;
      channel_bytes += ch.bytes;
    }
    EXPECT_EQ(channel_messages, m.run.total_messages) << experiment;
    EXPECT_EQ(channel_bytes, m.run.total_bytes) << experiment;

    long long hist_messages = 0, hist_bytes = 0;
    for (const SizeBucket& b : s.histogram) {
      hist_messages += b.messages;
      hist_bytes += b.bytes;
    }
    EXPECT_EQ(hist_messages, m.run.total_messages) << experiment;
    EXPECT_EQ(hist_bytes, m.run.total_bytes) << experiment;

    // Every SR produced a message and every message was consumed by a DN.
    const auto& sr = s.per_call[static_cast<std::size_t>(IronmanCall::kSR)];
    const auto& dn = s.per_call[static_cast<std::size_t>(IronmanCall::kDN)];
    EXPECT_EQ(sr.calls, m.run.total_messages) << experiment;
    EXPECT_EQ(dn.calls, m.run.total_messages) << experiment;
    // And the wire decomposition covers each message's transmission exactly.
    EXPECT_NEAR(s.wire.exposed_seconds + s.wire.overlapped_seconds, s.wire.wire_seconds,
                1e-12 + 1e-9 * s.wire.wire_seconds)
        << experiment;
  }
}

TEST(TraceChrome, JsonParsesBackAndHasAllTracks) {
  Recorder rec(16);
  const driver::Metrics m = run_traced("tomcatv", "pl", rec);
  const std::string text = to_chrome_json(rec);

  const json::Value doc = json::parse(text);
  ASSERT_TRUE(doc.is_object());
  const json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.array.size(), 100u);

  long long spans = 0, metadata = 0, wire_spans = 0, compute_spans = 0, wait_spans = 0;
  for (const json::Value& e : events.array) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.at("ph").string;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++spans;
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_GE(e.at("dur").number, 0.0);
    const double pid = e.at("pid").number;
    if (pid == 2.0) ++wire_spans;
    const std::string& name = e.at("name").string;
    if (name == "compute") ++compute_spans;
    if (name.rfind("wait ", 0) == 0) ++wait_spans;
  }
  EXPECT_GT(spans, 0);
  EXPECT_GE(metadata, 2 + 16);  // two process names + one per processor
  EXPECT_EQ(wire_spans, m.run.total_messages);  // uncapped at this scale
  EXPECT_GT(compute_spans, 0);
  EXPECT_GT(wait_spans, 0);  // some receive always waits at this scale
}

TEST(TraceChrome, PipeliningShowsWireOverlappingCompute) {
  // The acceptance check for `pl` on TOMCATV: transfers must be in flight
  // while destination processors compute — i.e. some message's wire span
  // overlaps a compute span on its destination's track.
  Recorder rec(16);
  run_traced("tomcatv", "pl", rec);

  long long overlapping = 0;
  for (const MessageRecord& msg : rec.messages()) {
    for (const Event& e : rec.events(msg.dst)) {
      if (e.kind != EventKind::kCompute) continue;
      if (e.t_begin < msg.t_arrived && msg.t_on_wire < e.t_end) {
        ++overlapping;
        break;
      }
    }
  }
  EXPECT_GT(overlapping, 0);
  // And the stats agree: a meaningful share of wire time was hidden.
  const Stats s = compute_stats(rec);
  EXPECT_GT(s.wire.overlapped_seconds, 0.0);
}

TEST(TracePing, ExposedOverheadMatchesTransportModel) {
  // The Figure 6 cross-check: in the synthetic ping every transmission is
  // fully overlapped by busy loops, so the traced per-message exposed
  // overhead (wait + CPU inside the IRONMAN calls) must equal the cost
  // model's closed-form Transport::exposed_overhead within 1%.
  struct Case {
    machine::MachineModel machine;
    CommLibrary library;
  };
  const std::vector<Case> cases = {
      {machine::t3d_model(), CommLibrary::kPVM},
      {machine::paragon_model(), CommLibrary::kNXSync},
      {machine::paragon_model(), CommLibrary::kNXAsync},
  };
  for (const Case& c : cases) {
    for (const long long doubles : {64LL, 512LL, 4096LL}) {
      const long long bytes = doubles * 8;
      Recorder rec(2);
      sim::run_ping(c.machine, c.library, {doubles}, /*reps=*/200, &rec);
      const Stats s = compute_stats(rec);
      ASSERT_EQ(s.total_messages, 200);
      const double expected = sim::Transport(c.machine, c.library).exposed_overhead(bytes);
      EXPECT_NEAR(s.exposed_overhead_per_message(), expected, 0.01 * expected)
          << ironman::to_string(c.library) << " @ " << doubles << " doubles";
      // Fully overlapped: essentially none of the wire time is exposed.
      EXPECT_LT(s.wire.exposed_seconds, 0.01 * s.wire.wire_seconds + 1e-12)
          << ironman::to_string(c.library);
    }
  }
}

TEST(TraceStats, InFlightMessagesDoNotPoisonTotals) {
  // A trace cut while messages are still on the wire (posted, never
  // consumed): totals must count the posting but exclude the unconsumed
  // transmission from the wire decomposition, with no NaNs in the ratios.
  Recorder rec(2);
  for (int i = 0; i < 2; ++i) {
    const std::int64_t id =
        rec.record_message(1, /*transfer=*/0, 0, 1, 512, i * 1.0, i * 1.0 + 0.1, i * 1.0 + 0.3);
    rec.record_consumed(id, /*transfer=*/0, i * 1.0 + 0.4, /*wait_seconds=*/0.1,
                        /*wire_seconds=*/0.2);
  }
  // In flight: one with a computed arrival, one cut before arrival was known.
  rec.record_message(1, /*transfer=*/0, 0, 1, 512, 5.0, 5.1, 5.3);
  rec.record_message(1, /*transfer=*/0, 0, 1, 512, 6.0, 6.1, 0.0);

  ASSERT_EQ(rec.messages().size(), 4u);
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_FALSE(rec.messages()[i].consumed);
    EXPECT_EQ(rec.messages()[i].t_consumed, 0.0);
  }

  const Stats s = compute_stats(rec);
  EXPECT_EQ(s.total_messages, 4);  // all postings counted...
  EXPECT_EQ(s.total_bytes, 4 * 512);
  EXPECT_DOUBLE_EQ(s.wire.wire_seconds, 2 * 0.2);  // ...but only consumed wire time
  EXPECT_DOUBLE_EQ(s.wire.exposed_seconds, 2 * 0.1);
  EXPECT_DOUBLE_EQ(s.wire.overlapped_seconds, 2 * 0.1);
  EXPECT_FALSE(std::isnan(s.overlap_fraction()));
  EXPECT_FALSE(std::isnan(s.exposed_overhead_per_message()));
  EXPECT_DOUBLE_EQ(s.overlap_fraction(), 0.5);
}

TEST(TraceChrome, SkipsDegenerateWireSlicesForInFlightMessages) {
  Recorder rec(2);
  // One consumed message, then in-flight records whose spans would be
  // zero-length (arrival == departure) or negative (arrival never set).
  const std::int64_t ok = rec.record_message(1, /*transfer=*/0, 0, 1, 256, 0.0, 0.1, 0.3);
  rec.record_consumed(ok, /*transfer=*/0, 0.4, 0.1, 0.2);
  rec.record_message(1, /*transfer=*/0, 0, 1, 256, 1.0, 1.1, 1.1);
  rec.record_message(1, /*transfer=*/0, 0, 1, 256, 2.0, 2.1, 0.0);

  const json::Value doc = json::parse(to_chrome_json(rec));
  long long wire_spans = 0;
  for (const json::Value& e : doc.at("traceEvents").array) {
    if (e.at("ph").string != "X" || e.at("pid").number != 2.0) continue;
    ++wire_spans;
    EXPECT_GT(e.at("dur").number, 0.0);
  }
  EXPECT_EQ(wire_spans, 1);  // only the consumed message renders
}

TEST(TraceChrome, SpanArgsCarryAttributionAndParseBack) {
  Recorder rec(2);
  rec.set_transfer_label(3, "U@east");
  rec.record_call(1, IronmanCall::kDN, Primitive::kPvmRecv, 1, /*transfer=*/3, 0, 1, 256,
                  /*t_begin=*/0.0, /*t_unblocked=*/0.2, /*t_end=*/0.25);
  const std::int64_t id = rec.record_message(1, /*transfer=*/3, 0, 1, 256, 0.0, 0.05, 0.2);
  rec.record_consumed(id, /*transfer=*/3, 0.2, 0.2, 0.15);

  const json::Value doc = json::parse(to_chrome_json(rec));
  bool saw_call = false, saw_wait = false, saw_wire = false;
  for (const json::Value& e : doc.at("traceEvents").array) {
    if (e.at("ph").string != "X") continue;
    const json::Value& args = e.at("args");
    EXPECT_EQ(args.at("transfer").number, 3.0);
    EXPECT_EQ(args.at("transfer_label").string, "U@east");
    EXPECT_EQ(args.at("bytes").number, 256.0);
    if (e.at("pid").number == 2.0) {
      saw_wire = true;
      EXPECT_EQ(args.at("consumed_us").number, 0.2 * 1e6);
    } else if (e.at("name").string.rfind("wait ", 0) == 0) {
      saw_wait = true;
      EXPECT_EQ(args.at("primitive").string, "pvm_recv");
    } else {
      saw_call = true;
      EXPECT_EQ(args.at("primitive").string, "pvm_recv");
      EXPECT_EQ(args.at("src").number, 0.0);
      EXPECT_EQ(args.at("dst").number, 1.0);
    }
  }
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_wire);
}

TEST(TraceStats, CsvHasStableTotalsAndRendersRoundTrip) {
  Recorder rec(16);
  const driver::Metrics m = run_traced("swm", "cc", rec);
  const std::string text = m.trace_stats->to_csv();

  const Csv csv = parse_csv(text);
  ASSERT_EQ(csv.headers, (std::vector<std::string>{"name", "value"}));
  auto value_of = [&csv](const std::string& name) -> std::string {
    for (std::size_t r = 0; r < csv.rows.size(); ++r) {
      if (csv.rows[r][0] == name) return csv.rows[r][1];
    }
    ADD_FAILURE() << "missing CSV key " << name;
    return "";
  };
  EXPECT_EQ(value_of("total_messages"), std::to_string(m.run.total_messages));
  EXPECT_EQ(value_of("total_bytes"), std::to_string(m.run.total_bytes));
  EXPECT_EQ(value_of("procs"), "16");

  // Re-rendering the parsed document reproduces the bytes exactly.
  CsvWriter rewriter(csv.headers);
  for (const auto& row : csv.rows) rewriter.add_row(row);
  EXPECT_EQ(rewriter.to_string(), text);
}

}  // namespace
}  // namespace zc::trace
