// Determinism stress for the parallel sweep engine: the same grid run on
// 8 concurrent workers, 20 repetitions, must be bit-identical to a serial
// golden in every observable — result checksums, the communication plans
// executed, trace Stats, and the merged metrics registry. This is the
// enforcement teeth behind the contract documented in src/exec/sweep.h;
// it is labeled `tsan` so a -DZC_SANITIZE=thread build races it hard.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/driver/driver.h"
#include "src/exec/plan_cache.h"
#include "src/exec/sweep.h"
#include "src/parser/parser.h"
#include "src/support/metrics.h"

namespace zc::exec {
namespace {

constexpr int kWorkers = 8;
constexpr int kReps = 20;

std::shared_ptr<const zir::Program> stress_program() {
  static const std::shared_ptr<const zir::Program> program =
      std::make_shared<const zir::Program>(parser::parse_program(R"(
program stress;
config n : integer = 16;
region R = [0..n+1, 0..n+1];
region I = [1..n, 1..n];
direction east = [0, 1];
direction south = [1, 0];
var A, B, C, D, E : [R] double;
procedure main() {
  [R] B := Index1 * 0.5;
  [R] E := Index2 * 0.25;
  [I] A := B@east + E@south;
  [I] C := B@east;
  [I] D := E@east + A@south;
}
)"));
  return program;
}

// One repetition of the grid: every paper experiment on the stress program,
// traced, at two processor counts — enough shape variety that a scheduling
// bug has somewhere to show.
std::vector<SweepItem> grid_rep(int rep) {
  std::vector<SweepItem> items;
  for (const driver::Experiment& e : driver::paper_experiments()) {
    for (const int procs : {16, 64}) {
      SweepItem item;
      item.label = e.name + "/p" + std::to_string(procs) + "/r" + std::to_string(rep);
      item.program = stress_program();
      item.experiment = e;
      item.procs = procs;
      item.trace = true;
      items.push_back(std::move(item));
    }
  }
  return items;
}

struct Golden {
  std::uint64_t checksum = 0;
  std::string plan_text;
  std::string trace_csv;
  int static_count = 0;
  long long dynamic_count = 0;
};

TEST(SweepDeterminism, EightWorkersTimesTwentyRepsMatchSerialGolden) {
  // Serial golden: one repetition of the grid through the inline jobs=1
  // path with its own plan cache and its own merged registry.
  const std::vector<SweepItem> base = grid_rep(0);
  PlanCache golden_cache;
  SweepOptions golden_opts;
  golden_opts.jobs = 1;
  golden_opts.plan_cache = &golden_cache;

  metrics::Registry golden_registry;
  std::vector<SweepResult> golden_results;
  {
    const metrics::ScopedRegistry scoped(golden_registry);
    golden_results = run_sweep(base, golden_opts);
  }
  ASSERT_EQ(golden_results.size(), base.size());
  std::vector<Golden> golden(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_TRUE(golden_results[i].ok) << base[i].label << ": " << golden_results[i].error;
    ASSERT_NE(golden_results[i].plan, nullptr);
    ASSERT_TRUE(golden_results[i].metrics.trace_stats.has_value()) << base[i].label;
    golden[i].checksum = result_checksum(golden_results[i].metrics.run);
    golden[i].plan_text = comm::to_string(*golden_results[i].plan, *base[i].program);
    golden[i].trace_csv = golden_results[i].metrics.trace_stats->to_csv();
    golden[i].static_count = golden_results[i].metrics.static_count;
    golden[i].dynamic_count = golden_results[i].metrics.dynamic_count;
  }

  // Stress: 20 repetitions of that grid in ONE submission, fanned across 8
  // workers with a shared fresh cache, so the same (program, options) keys
  // are hammered concurrently while distinct keys plan in parallel.
  std::vector<SweepItem> items;
  for (int rep = 0; rep < kReps; ++rep) {
    for (SweepItem& item : grid_rep(rep)) items.push_back(std::move(item));
  }
  PlanCache stress_cache;
  SweepOptions stress_opts;
  stress_opts.jobs = kWorkers;
  stress_opts.plan_cache = &stress_cache;

  metrics::Registry stress_registry;
  std::vector<SweepResult> results;
  {
    const metrics::ScopedRegistry scoped(stress_registry);
    results = run_sweep(items, stress_opts);
  }
  ASSERT_EQ(results.size(), base.size() * kReps);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const Golden& want = golden[i % base.size()];
    const SweepResult& got = results[i];
    ASSERT_TRUE(got.ok) << items[i].label << ": " << got.error;
    EXPECT_EQ(result_checksum(got.metrics.run), want.checksum) << items[i].label;
    EXPECT_EQ(got.metrics.static_count, want.static_count) << items[i].label;
    EXPECT_EQ(got.metrics.dynamic_count, want.dynamic_count) << items[i].label;
    ASSERT_NE(got.plan, nullptr) << items[i].label;
    EXPECT_EQ(comm::to_string(*got.plan, *items[i].program), want.plan_text)
        << items[i].label;
    ASSERT_TRUE(got.metrics.trace_stats.has_value()) << items[i].label;
    EXPECT_EQ(got.metrics.trace_stats->to_csv(), want.trace_csv) << items[i].label;
  }

  // The cache planned each distinct (experiment opts) exactly once no matter
  // how many workers raced on it: misses == distinct keys, deterministic.
  const PlanCacheStats cs = stress_cache.stats();
  EXPECT_EQ(cs.misses, golden_cache.stats().misses);
  EXPECT_EQ(cs.hits + cs.misses,
            static_cast<long long>(results.size()));
  EXPECT_GT(cs.hits, 0);

  // Merged metrics are deterministic too: the stress registry's counters are
  // exactly kReps x the golden's (submission-order merge, per-task isolation).
  EXPECT_EQ(stress_registry.counter("sim.runs"),
            golden_registry.counter("sim.runs") * kReps);
  EXPECT_EQ(stress_registry.counter("sim.messages"),
            golden_registry.counter("sim.messages") * kReps);
}

// Identical plans are not just equal text — cache hits share the same plan
// object across runs and repetitions (one immutable CommPlan per key).
TEST(SweepDeterminism, CacheSharesOnePlanObjectPerKey) {
  std::vector<SweepItem> items;
  for (int rep = 0; rep < 4; ++rep) {
    for (SweepItem& item : grid_rep(rep)) items.push_back(std::move(item));
  }
  PlanCache cache;
  SweepOptions opts;
  opts.jobs = kWorkers;
  opts.plan_cache = &cache;
  opts.merge_metrics = false;
  const std::vector<SweepResult> results = run_sweep(items, opts);

  const std::size_t per_rep = items.size() / 4;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << items[i].label;
    const std::size_t base_slot = i % per_rep;
    EXPECT_EQ(results[i].plan.get(), results[base_slot].plan.get())
        << items[i].label << " should share " << items[base_slot].label << "'s plan";
  }
}

}  // namespace
}  // namespace zc::exec
