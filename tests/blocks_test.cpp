#include <gtest/gtest.h>

#include "src/comm/blocks.h"
#include "src/parser/parser.h"

namespace zc::comm {
namespace {

TEST(Blocks, SingleRunIsOneBlock) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
var A, B : [R] double;
procedure main() {
  [R] A := 0.0;
  [R] B := 1.0;
  [R] A := B;
}
)");
  const auto blocks = find_blocks(p);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].stmts.size(), 3u);
}

TEST(Blocks, ControlFlowSplitsBlocks) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
var A, B : [R] double;
var s : double;
procedure main() {
  [R] A := 0.0;
  repeat 2 {
    [R] B := A;
    [R] A := B;
  }
  [R] B := 2.0;
  s := 1.0;
  if s > 0.0 {
    [R] A := 3.0;
  } else {
    [R] A := 4.0;
  }
}
)");
  const auto blocks = find_blocks(p);
  // Blocks: [A:=0], [B:=2; s:=1] (outer, after the loop), [B:=A; A:=B]
  // (loop body), [A:=3], [A:=4].
  ASSERT_EQ(blocks.size(), 5u);
  EXPECT_EQ(blocks[0].stmts.size(), 1u);
  EXPECT_EQ(blocks[1].stmts.size(), 2u);  // B:=2 and the scalar assign
  EXPECT_EQ(blocks[2].stmts.size(), 2u);  // loop body
}

TEST(Blocks, ScalarAssignsJoinArrayAssignBlocks) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
var A : [R] double;
var s : double;
procedure main() {
  [R] A := 0.0;
  [R] s := +<< A;
  [R] A := A + 1.0;
}
)");
  const auto blocks = find_blocks(p);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].stmts.size(), 3u);
}

TEST(Blocks, CalleeVisitedOnceAcrossCallSites) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
var A : [R] double;
procedure sub() {
  [R] A := A + 1.0;
}
procedure main() {
  sub();
  sub();
  sub();
}
)");
  const auto blocks = find_blocks(p);
  // sub's single block is planned once, not three times (static counts!).
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(p.proc(blocks[0].proc).name, "sub");
}

TEST(Blocks, UnreachableProcedureIgnored) {
  const zir::Program p = parser::parse_program(R"(
program t;
config n : integer = 8;
region R = [1..n, 1..n];
var A : [R] double;
procedure dead() {
  [R] A := 9.0;
}
procedure main() {
  [R] A := 0.0;
}
)");
  const auto blocks = find_blocks(p);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(p.proc(blocks[0].proc).name, "main");
}

}  // namespace
}  // namespace zc::comm
