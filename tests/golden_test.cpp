// Golden semantic validation: every benchmark, at every optimization level
// and combining heuristic, on a multi-processor mesh, must produce the same
// numerical results as the single-processor reference run. An incorrectly
// removed, combined, or mis-placed communication changes the numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"
#include "src/sim/engine.h"

namespace zc {
namespace {

sim::RunResult run_cfg(const zir::Program& p, const comm::OptOptions& opts, int procs,
                       ironman::CommLibrary lib,
                       const std::map<std::string, long long>& overrides) {
  const comm::CommPlan plan = comm::plan_communication(p, opts);
  sim::RunConfig cfg;
  cfg.library = lib;
  cfg.procs = procs;
  cfg.config_overrides = overrides;
  return sim::run_program(p, plan, cfg);
}

void expect_checksums_match(const std::map<std::string, double>& got,
                            const std::map<std::string, double>& want,
                            const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (const auto& [name, value] : want) {
    const double g = got.at(name);
    ASSERT_TRUE(std::isfinite(value)) << label << " " << name << " reference not finite";
    // Summation order differs across partitions; allow tight relative slack.
    const double tol = 1e-9 * std::max(1.0, std::fabs(value));
    EXPECT_NEAR(g, value, tol) << label << " array " << name;
  }
}

struct GoldenCase {
  std::string benchmark;
  std::string experiment;  // paper Figure 9 key name
  int procs;
};

class GoldenBenchmarks : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenBenchmarks, MatchesSequentialReference) {
  const GoldenCase& c = GetParam();
  const programs::BenchmarkInfo& info = programs::benchmark(c.benchmark);
  const zir::Program p = parser::parse_program(info.source);

  // Reference: one processor, baseline plan (no communication happens).
  const sim::RunResult ref =
      run_cfg(p, comm::OptOptions::for_level(comm::OptLevel::kBaseline), 1,
              ironman::CommLibrary::kPVM, info.test_configs);

  const auto maybe = [&]() {
    using comm::CombineHeuristic;
    using comm::OptLevel;
    comm::OptOptions o;
    ironman::CommLibrary lib = ironman::CommLibrary::kPVM;
    if (c.experiment == "baseline") {
      o = comm::OptOptions::for_level(OptLevel::kBaseline);
    } else if (c.experiment == "rr") {
      o = comm::OptOptions::for_level(OptLevel::kRR);
    } else if (c.experiment == "cc") {
      o = comm::OptOptions::for_level(OptLevel::kCC);
    } else if (c.experiment == "pl") {
      o = comm::OptOptions::for_level(OptLevel::kPL);
    } else if (c.experiment == "pl with shmem") {
      o = comm::OptOptions::for_level(OptLevel::kPL);
      lib = ironman::CommLibrary::kSHMEM;
    } else if (c.experiment == "pl with max latency") {
      o = comm::OptOptions::for_level(OptLevel::kPL);
      o.heuristic = CombineHeuristic::kMaxLatency;
      lib = ironman::CommLibrary::kSHMEM;
    } else if (c.experiment == "pl nested") {
      o = comm::OptOptions::for_level(OptLevel::kPL);
      o.heuristic = CombineHeuristic::kNested;
    } else if (c.experiment == "pl hybrid") {
      o = comm::OptOptions::for_level(OptLevel::kPL);
      o.heuristic = CombineHeuristic::kHybrid;
    }
    return std::make_pair(o, lib);
  }();

  const sim::RunResult got = run_cfg(p, maybe.first, c.procs, maybe.second, info.test_configs);
  expect_checksums_match(got.checksums, ref.checksums,
                         c.benchmark + "/" + c.experiment + "/p" + std::to_string(c.procs));
}

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  for (const char* bench : {"tomcatv", "swm", "simple", "sp"}) {
    for (const char* exp : {"baseline", "rr", "cc", "pl", "pl with shmem",
                            "pl with max latency", "pl nested", "pl hybrid"}) {
      cases.push_back({bench, exp, 4});
    }
    cases.push_back({bench, "pl", 9});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string s = info.param.benchmark + "_" + info.param.experiment + "_p" +
                  std::to_string(info.param.procs);
  for (char& ch : s) {
    if (ch == ' ') ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GoldenBenchmarks, ::testing::ValuesIn(golden_cases()),
                         case_name);

// The kernels, too, with a diagonal-heavy stencil (life) included.
class GoldenKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenKernels, MatchesSequentialReference) {
  const zir::Program p = parser::parse_program(programs::kernel_source(GetParam()));
  const sim::RunResult ref = run_cfg(p, comm::OptOptions::for_level(comm::OptLevel::kBaseline),
                                     1, ironman::CommLibrary::kPVM, {});
  for (const auto level : {comm::OptLevel::kBaseline, comm::OptLevel::kRR, comm::OptLevel::kCC,
                           comm::OptLevel::kPL}) {
    const sim::RunResult got =
        run_cfg(p, comm::OptOptions::for_level(level), 4, ironman::CommLibrary::kPVM, {});
    expect_checksums_match(got.checksums, ref.checksums,
                           GetParam() + "/" + comm::to_string(level));
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, GoldenKernels,
                         ::testing::Values("jacobi", "life", "heat3d"));

}  // namespace
}  // namespace zc
