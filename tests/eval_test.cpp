#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/eval.h"
#include "src/zir/builder.h"

namespace zc::rt {
namespace {

using zir::Ex;
using zir::ProgramBuilder;

/// Fixture: one 4x4 array A over [1..4,1..4] with fluff 1 on a single
/// processor covering [1..4] x [1..4]; A(i,j) = 10*i + j.
class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : builder_("t") {
    builder_.config("n", 4);
    n_ = zir::ConfigId(0);
  }

  void Build(const std::function<Ex(ProgramBuilder&)>& make_rhs) {
    const zir::Ix n = zir::Ix(zir::IntExpr::config(zir::ConfigId(0)));
    R_ = builder_.region("R", {{0, n + 1}, {0, n + 1}});
    A_ = builder_.array("A", R_);
    B_ = builder_.array("B", R_);
    s_ = builder_.scalar("s");
    Ex rhs = make_rhs(builder_);
    builder_.proc("main", [&] { builder_.assign(R_, B_, rhs); });
    program_ = std::move(builder_).finish();

    env_ = program_.default_env();
    const Box declared = Box::make(2, {0, 0, 0}, {5, 5, 0});
    arrays_.emplace_back(declared, declared, std::array<long long, 3>{1, 1, 0});  // A
    arrays_.emplace_back(declared, declared, std::array<long long, 3>{1, 1, 0});  // B
    for (long long i = 0; i <= 5; ++i) {
      for (long long j = 0; j <= 5; ++j) {
        arrays_[0].at(i, j) = 10.0 * static_cast<double>(i) + static_cast<double>(j);
      }
    }
    scalars_ = {2.5};
    ctx_.program = &program_;
    ctx_.arrays = &arrays_;
    ctx_.scalars = &scalars_;
    ctx_.env = &env_;
    ctx_.box = Box::make(2, {1, 1, 0}, {4, 4, 0});
  }

  zir::ExprId rhs_expr() const {
    return program_.stmt(program_.proc(program_.entry()).body[0]).rhs;
  }

  ProgramBuilder builder_;
  zir::ConfigId n_;
  zir::RegionId R_;
  zir::ArrayId A_;
  zir::ArrayId B_;
  zir::ScalarId s_;
  zir::Program program_;
  zir::IntEnv env_;
  std::vector<LocalArray> arrays_;
  std::vector<double> scalars_;
  EvalContext ctx_;
};

TEST_F(EvalTest, ArrayRefReadsBox) {
  Build([](ProgramBuilder& b) { return b.ref(b.program().find_array("A")); });
  Evaluator ev(program_);
  std::vector<double> out;
  ev.eval_vector(ctx_, rhs_expr(), out);
  ASSERT_EQ(out.size(), 16u);
  EXPECT_DOUBLE_EQ(out[0], 11.0);   // (1,1)
  EXPECT_DOUBLE_EQ(out[3], 14.0);   // (1,4)
  EXPECT_DOUBLE_EQ(out[15], 44.0);  // (4,4)
}

TEST_F(EvalTest, ShiftReadsNeighborCells) {
  Build([](ProgramBuilder& b) {
    const zir::DirectionId east = b.direction("east", {0, 1});
    return b.at(b.program().find_array("A"), east);
  });
  Evaluator ev(program_);
  std::vector<double> out;
  ev.eval_vector(ctx_, rhs_expr(), out);
  EXPECT_DOUBLE_EQ(out[0], 12.0);   // A(1,2)
  EXPECT_DOUBLE_EQ(out[3], 15.0);   // A(1,5): fluff cell
  EXPECT_DOUBLE_EQ(out[15], 45.0);  // A(4,5)
}

TEST_F(EvalTest, MixedScalarVectorArithmetic) {
  Build([](ProgramBuilder& b) {
    const zir::ArrayId A = b.program().find_array("A");
    const zir::ScalarId s = b.program().find_scalar("s");
    return b.ref(A) * b.sref(s) + 1.0;
  });
  Evaluator ev(program_);
  std::vector<double> out;
  ev.eval_vector(ctx_, rhs_expr(), out);
  EXPECT_DOUBLE_EQ(out[0], 11.0 * 2.5 + 1.0);
}

TEST_F(EvalTest, IndexArrays) {
  Build([](ProgramBuilder& b) { return b.index(1) * 100.0 + b.index(2); });
  Evaluator ev(program_);
  std::vector<double> out;
  ev.eval_vector(ctx_, rhs_expr(), out);
  EXPECT_DOUBLE_EQ(out[0], 101.0);
  EXPECT_DOUBLE_EQ(out[5], 202.0);  // (2,2)
}

TEST_F(EvalTest, ComparisonYieldsZeroOne) {
  Build([](ProgramBuilder& b) {
    const zir::ArrayId A = b.program().find_array("A");
    return b.binary(zir::BinOp::kGt, b.ref(A), b.lit(22.0));
  });
  Evaluator ev(program_);
  std::vector<double> out;
  ev.eval_vector(ctx_, rhs_expr(), out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);   // 11 > 22
  EXPECT_DOUBLE_EQ(out[15], 1.0);  // 44 > 22
}

TEST_F(EvalTest, UnaryFunctions) {
  Build([](ProgramBuilder& b) {
    const zir::ArrayId A = b.program().find_array("A");
    return b.sqrt(b.abs(b.lit(0.0) - b.ref(A)));
  });
  Evaluator ev(program_);
  std::vector<double> out;
  ev.eval_vector(ctx_, rhs_expr(), out);
  EXPECT_DOUBLE_EQ(out[0], std::sqrt(11.0));
}

TEST_F(EvalTest, ReducePartialsAndScalar) {
  Build([](ProgramBuilder& b) {
    const zir::ArrayId A = b.program().find_array("A");
    return b.ref(A);  // placeholder; we evaluate a reduce expr directly below
  });
  // s := (max<< A) - (+<< A) / 16
  zir::Program& p = program_;
  zir::Expr ref;
  ref.kind = zir::Expr::Kind::kArrayRef;
  ref.array = p.find_array("A");
  const zir::ExprId ref_id = p.add_expr(ref);
  zir::Expr maxr;
  maxr.kind = zir::Expr::Kind::kReduce;
  maxr.reduce_op = zir::ReduceOp::kMax;
  maxr.lhs = ref_id;
  const zir::ExprId max_id = p.add_expr(maxr);
  zir::Expr sumr;
  sumr.kind = zir::Expr::Kind::kReduce;
  sumr.reduce_op = zir::ReduceOp::kSum;
  sumr.lhs = ref_id;
  const zir::ExprId sum_id = p.add_expr(sumr);
  zir::Expr diff;
  diff.kind = zir::Expr::Kind::kBinary;
  diff.bin_op = zir::BinOp::kSub;
  diff.lhs = max_id;
  diff.rhs = sum_id;
  const zir::ExprId top = p.add_expr(diff);

  Evaluator ev(p);
  const auto ops = ev.reduce_ops(top);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], zir::ReduceOp::kMax);
  EXPECT_EQ(ops[1], zir::ReduceOp::kSum);

  std::vector<double> partials;
  ev.eval_reduce_partials(ctx_, top, partials);
  ASSERT_EQ(partials.size(), 2u);
  EXPECT_DOUBLE_EQ(partials[0], 44.0);
  double expected_sum = 0.0;
  for (long long i = 1; i <= 4; ++i) {
    for (long long j = 1; j <= 4; ++j) expected_sum += 10.0 * i + j;
  }
  EXPECT_DOUBLE_EQ(partials[1], expected_sum);

  const double v = ev.eval_scalar(ctx_, top, partials);
  EXPECT_DOUBLE_EQ(v, 44.0 - expected_sum);
}

TEST_F(EvalTest, ReducePartialOfEmptyBoxIsIdentity) {
  Build([](ProgramBuilder& b) { return b.ref(b.program().find_array("A")); });
  zir::Expr red;
  red.kind = zir::Expr::Kind::kReduce;
  red.reduce_op = zir::ReduceOp::kMax;
  red.lhs = rhs_expr();
  const zir::ExprId top = program_.add_expr(red);
  EvalContext empty = ctx_;
  empty.box = Box::make(2, {2, 2, 0}, {1, 1, 0});  // empty
  Evaluator ev(program_);
  std::vector<double> partials;
  ev.eval_reduce_partials(empty, top, partials);
  ASSERT_EQ(partials.size(), 1u);
  EXPECT_EQ(partials[0], reduce_identity(zir::ReduceOp::kMax));
}

TEST(ReduceOps, IdentityAndCombine) {
  EXPECT_EQ(reduce_identity(zir::ReduceOp::kSum), 0.0);
  EXPECT_EQ(reduce_combine(zir::ReduceOp::kSum, 2.0, 3.0), 5.0);
  EXPECT_EQ(reduce_combine(zir::ReduceOp::kMax, 2.0, 3.0), 3.0);
  EXPECT_EQ(reduce_combine(zir::ReduceOp::kMin, 2.0, 3.0), 2.0);
  EXPECT_GT(reduce_identity(zir::ReduceOp::kMin), 1e300);
  EXPECT_LT(reduce_identity(zir::ReduceOp::kMax), -1e300);
}

}  // namespace
}  // namespace zc::rt
