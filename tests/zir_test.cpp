#include <gtest/gtest.h>

#include "src/support/diag.h"
#include "src/zir/builder.h"
#include "src/zir/printer.h"
#include "src/zir/program.h"

namespace zc::zir {
namespace {

/// A small two-array stencil program used by several tests.
Program make_jacobi() {
  ProgramBuilder b("jacobi");
  const Ix n = b.config("n", 8);
  const RegionId R = b.region("R", {{0, n + 1}, {0, n + 1}});
  const RegionId I = b.region("I", {{1, n}, {1, n}});
  const DirectionId east = b.direction("east", {0, 1});
  const DirectionId west = b.direction("west", {0, -1});
  const ArrayId A = b.array("A", R);
  const ArrayId B = b.array("B", R);
  const ScalarId err = b.scalar("err");
  b.proc("main", [&] {
    b.assign(R, A, b.lit(0.0));
    b.assign(R, B, b.lit(0.0));
    b.repeat(3, [&] {
      b.assign(I, B, (b.at(A, east) + b.at(A, west)) * 0.5);
      b.sassign_over(b.spec_of(I), err, b.reduce(ReduceOp::kMax, b.abs(b.ref(B) - b.ref(A))));
      b.assign(I, A, b.ref(B));
    });
  });
  return std::move(b).finish();
}

TEST(Builder, BuildsValidProgram) {
  const Program p = make_jacobi();
  EXPECT_EQ(p.name(), "jacobi");
  EXPECT_EQ(p.config_count(), 1u);
  EXPECT_EQ(p.region_count(), 2u);
  EXPECT_EQ(p.direction_count(), 2u);
  EXPECT_EQ(p.array_count(), 2u);
  EXPECT_EQ(p.scalar_count(), 1u);
  EXPECT_TRUE(p.entry().valid());
  EXPECT_EQ(p.proc(p.entry()).name, "main");
  EXPECT_EQ(p.rank(), 2);
}

TEST(Builder, FindByName) {
  const Program p = make_jacobi();
  EXPECT_TRUE(p.find_array("A").valid());
  EXPECT_TRUE(p.find_region("I").valid());
  EXPECT_TRUE(p.find_direction("east").valid());
  EXPECT_TRUE(p.find_config("n").valid());
  EXPECT_TRUE(p.find_scalar("err").valid());
  EXPECT_FALSE(p.find_array("Z").valid());
  EXPECT_FALSE(p.find_proc("nosuch").valid());
}

TEST(Builder, DefaultEnvUsesConfigDefaults) {
  const Program p = make_jacobi();
  const IntEnv env = p.default_env();
  EXPECT_EQ(env.config_values[p.find_config("n").index()], 8);
}

TEST(Analysis, CollectShiftRefsDeduplicates) {
  ProgramBuilder b("t");
  const Ix n = b.config("n", 4);
  const RegionId R = b.region("R", {{1, n}, {1, n}});
  const DirectionId e = b.direction("e", {0, 1});
  const ArrayId A = b.array("A", R);
  const ArrayId B = b.array("B", R);
  b.proc("main", [&] {
    // A@e appears twice; B unshifted.
    b.assign(R, B, b.at(A, e) + b.at(A, e) * b.ref(B));
  });
  const Program p = std::move(b).finish();
  const Stmt& s = p.stmt(p.proc(p.entry()).body[0]);
  const auto refs = collect_shift_refs(p, s.rhs);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].array, p.find_array("A"));

  const auto reads = collect_arrays_read(p, s.rhs);
  EXPECT_EQ(reads.size(), 2u);
}

TEST(Analysis, CountFlops) {
  ProgramBuilder b("t");
  const Ix n = b.config("n", 4);
  const RegionId R = b.region("R", {{1, n}});
  const ArrayId A = b.array("A", R);
  b.proc("main", [&] {
    b.assign(R, A, b.ref(A) * 2.0 + 1.0);  // two binary ops
  });
  const Program p = std::move(b).finish();
  const Stmt& s = p.stmt(p.proc(p.entry()).body[0]);
  EXPECT_EQ(count_flops(p, s.rhs), 2);
}

TEST(Analysis, IsArrayValued) {
  ProgramBuilder b("t");
  const Ix n = b.config("n", 4);
  const RegionId R = b.region("R", {{1, n}});
  const ArrayId A = b.array("A", R);
  const ScalarId s = b.scalar("s");
  b.proc("main", [&] {
    b.sassign_over(b.spec_of(R), s, b.reduce(ReduceOp::kSum, b.ref(A)) * 2.0);
  });
  const Program p = std::move(b).finish();
  const Stmt& stmt = p.stmt(p.proc(p.entry()).body[0]);
  // The whole rhs is scalar-valued (reduction scalarizes its operand).
  EXPECT_FALSE(is_array_valued(p, stmt.rhs));
}

TEST(Validation, ArrayAssignWithoutRegionFails) {
  Program p;
  p.set_name("bad");
  const RegionId r = p.add_region({"R", {{
      {IntExpr::constant(1), IntExpr::constant(4)},
  }}});
  const ArrayId a = p.add_array({"A", r, ElemType::kF64});
  Expr c;
  c.kind = Expr::Kind::kConst;
  const ExprId rhs = p.add_expr(c);
  Stmt s;
  s.kind = Stmt::Kind::kArrayAssign;
  s.lhs_array = a;
  s.rhs = rhs;  // no region
  const StmtId sid = p.add_stmt(std::move(s));
  p.set_entry(p.add_proc({"main", {sid}}));
  EXPECT_THROW(p.validate(), Error);
}

TEST(Validation, RecursionFails) {
  Program p;
  p.set_name("rec");
  p.add_region({"R", {{{IntExpr::constant(1), IntExpr::constant(4)}}}});
  Stmt call;
  call.kind = Stmt::Kind::kCall;
  call.callee = ProcId(0);  // calls itself
  const StmtId sid = p.add_stmt(std::move(call));
  p.set_entry(p.add_proc({"main", {sid}}));
  EXPECT_THROW(p.validate(), Error);
}

TEST(Validation, DirectionRankMismatchFails) {
  ProgramBuilder b("t");
  const Ix n = b.config("n", 4);
  const RegionId R = b.region("R", {{1, n}, {1, n}});
  const DirectionId d1 = b.direction("d1", {1});  // rank 1 direction
  const ArrayId A = b.array("A", R);
  b.proc("main", [&] { b.assign(R, A, b.at(A, d1)); });
  EXPECT_THROW(std::move(b).finish(), Error);
}

TEST(Validation, NestedReduceFails) {
  ProgramBuilder b("t");
  const Ix n = b.config("n", 4);
  const RegionId R = b.region("R", {{1, n}});
  const ArrayId A = b.array("A", R);
  const ScalarId s = b.scalar("s");
  b.proc("main", [&] {
    const Ex inner = b.reduce(ReduceOp::kSum, b.ref(A));
    b.sassign_over(b.spec_of(R), s, b.reduce(ReduceOp::kMax, b.ref(A) + inner));
  });
  EXPECT_THROW(std::move(b).finish(), Error);
}

TEST(Validation, ArrayInScalarContextFails) {
  ProgramBuilder b("t");
  const Ix n = b.config("n", 4);
  const RegionId R = b.region("R", {{1, n}});
  const ArrayId A = b.array("A", R);
  const ScalarId s = b.scalar("s");
  b.proc("main", [&] { b.sassign(s, b.ref(A)); });  // bare array, no reduce
  EXPECT_THROW(std::move(b).finish(), Error);
}

TEST(Printer, RoundTripContainsConstructs) {
  const Program p = make_jacobi();
  const std::string src = to_source(p);
  EXPECT_NE(src.find("program jacobi;"), std::string::npos);
  EXPECT_NE(src.find("config n : integer = 8;"), std::string::npos);
  EXPECT_NE(src.find("region I = [1..n, 1..n];"), std::string::npos);
  EXPECT_NE(src.find("direction east = [0, 1];"), std::string::npos);
  EXPECT_NE(src.find("var A : [R] double;"), std::string::npos);
  EXPECT_NE(src.find("A@east"), std::string::npos);
  EXPECT_NE(src.find("max<<"), std::string::npos);
  EXPECT_NE(src.find("for _rep in 1..3"), std::string::npos);
}

TEST(Printer, ExprPrecedenceParenthesized) {
  ProgramBuilder b("t");
  const Ix n = b.config("n", 4);
  const RegionId R = b.region("R", {{1, n}});
  const ArrayId A = b.array("A", R);
  b.proc("main", [&] { b.assign(R, A, (b.ref(A) + 1.0) * 2.0); });
  const Program p = std::move(b).finish();
  const std::string s = stmt_to_string(p, p.proc(p.entry()).body[0]);
  EXPECT_NE(s.find("((A + 1.0) * 2.0)"), std::string::npos);
}

}  // namespace
}  // namespace zc::zir
