// Verifies the IRONMAN binding table against the paper's Figure 5.
#include <gtest/gtest.h>

#include "src/ironman/ironman.h"

namespace zc::ironman {
namespace {

TEST(Bindings, ParagonMessagePassing) {
  EXPECT_EQ(binding(CommLibrary::kNXSync, IronmanCall::kDR), Primitive::kNoOp);
  EXPECT_EQ(binding(CommLibrary::kNXSync, IronmanCall::kSR), Primitive::kCsend);
  EXPECT_EQ(binding(CommLibrary::kNXSync, IronmanCall::kDN), Primitive::kCrecv);
  EXPECT_EQ(binding(CommLibrary::kNXSync, IronmanCall::kSV), Primitive::kNoOp);
}

TEST(Bindings, ParagonAsynchronous) {
  EXPECT_EQ(binding(CommLibrary::kNXAsync, IronmanCall::kDR), Primitive::kIrecv);
  EXPECT_EQ(binding(CommLibrary::kNXAsync, IronmanCall::kSR), Primitive::kIsend);
  EXPECT_EQ(binding(CommLibrary::kNXAsync, IronmanCall::kDN), Primitive::kMsgwaitRecv);
  EXPECT_EQ(binding(CommLibrary::kNXAsync, IronmanCall::kSV), Primitive::kMsgwaitSend);
}

TEST(Bindings, ParagonCallback) {
  EXPECT_EQ(binding(CommLibrary::kNXCallback, IronmanCall::kDR), Primitive::kHprobe);
  EXPECT_EQ(binding(CommLibrary::kNXCallback, IronmanCall::kSR), Primitive::kHsend);
  EXPECT_EQ(binding(CommLibrary::kNXCallback, IronmanCall::kDN), Primitive::kHrecv);
  EXPECT_EQ(binding(CommLibrary::kNXCallback, IronmanCall::kSV), Primitive::kMsgwaitSend);
}

TEST(Bindings, T3DPvm) {
  EXPECT_EQ(binding(CommLibrary::kPVM, IronmanCall::kDR), Primitive::kNoOp);
  EXPECT_EQ(binding(CommLibrary::kPVM, IronmanCall::kSR), Primitive::kPvmSend);
  EXPECT_EQ(binding(CommLibrary::kPVM, IronmanCall::kDN), Primitive::kPvmRecv);
  EXPECT_EQ(binding(CommLibrary::kPVM, IronmanCall::kSV), Primitive::kNoOp);
}

TEST(Bindings, T3DShmem) {
  EXPECT_EQ(binding(CommLibrary::kSHMEM, IronmanCall::kDR), Primitive::kSynchPost);
  EXPECT_EQ(binding(CommLibrary::kSHMEM, IronmanCall::kSR), Primitive::kShmemPut);
  EXPECT_EQ(binding(CommLibrary::kSHMEM, IronmanCall::kDN), Primitive::kSynchWait);
  EXPECT_EQ(binding(CommLibrary::kSHMEM, IronmanCall::kSV), Primitive::kNoOp);
}

TEST(Endpoints, SourceVsDestination) {
  EXPECT_EQ(endpoint_of(Primitive::kNoOp), Endpoint::kNone);
  EXPECT_EQ(endpoint_of(Primitive::kCsend), Endpoint::kSource);
  EXPECT_EQ(endpoint_of(Primitive::kIsend), Endpoint::kSource);
  EXPECT_EQ(endpoint_of(Primitive::kShmemPut), Endpoint::kSource);
  EXPECT_EQ(endpoint_of(Primitive::kMsgwaitSend), Endpoint::kSource);
  EXPECT_EQ(endpoint_of(Primitive::kCrecv), Endpoint::kDestination);
  EXPECT_EQ(endpoint_of(Primitive::kIrecv), Endpoint::kDestination);
  EXPECT_EQ(endpoint_of(Primitive::kSynchPost), Endpoint::kDestination);
  EXPECT_EQ(endpoint_of(Primitive::kHprobe), Endpoint::kDestination);
}

TEST(Names, RoundTrip) {
  EXPECT_EQ(to_string(CommLibrary::kPVM), "pvm");
  EXPECT_EQ(to_string(CommLibrary::kSHMEM), "shmem");
  EXPECT_EQ(to_string(IronmanCall::kDR), "DR");
  EXPECT_EQ(to_string(IronmanCall::kSV), "SV");
  EXPECT_EQ(to_string(Primitive::kPvmSend), "pvm_send");
  EXPECT_EQ(to_string(Primitive::kShmemPut), "shmem_put");
  EXPECT_EQ(to_string(Primitive::kSynchPost), "synch");
}

}  // namespace
}  // namespace zc::ironman
