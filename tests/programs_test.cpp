// Structural checks on the benchmark suite: the programs parse, have the
// communication profiles the paper describes, and the static counts move
// the way the paper's Figure 8 / 11 report.
#include <gtest/gtest.h>

#include "src/comm/optimizer.h"
#include "src/parser/parser.h"
#include "src/programs/programs.h"

namespace zc {
namespace {

int static_count(const zir::Program& p, comm::OptLevel level,
                 comm::CombineHeuristic h = comm::CombineHeuristic::kMaxCombining) {
  comm::OptOptions o = comm::OptOptions::for_level(level);
  o.heuristic = h;
  return comm::plan_communication(p, o).static_count();
}

TEST(Suite, HasTheFourPaperPrograms) {
  const auto& suite = programs::benchmark_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "tomcatv");
  EXPECT_EQ(suite[1].name, "swm");
  EXPECT_EQ(suite[2].name, "simple");
  EXPECT_EQ(suite[3].name, "sp");
  EXPECT_THROW(programs::benchmark("nosuch"), Error);
}

TEST(Suite, AllProgramsParseAndValidate) {
  for (const auto& info : programs::benchmark_suite()) {
    EXPECT_NO_THROW({
      const zir::Program p = parser::parse_program(info.source);
      EXPECT_EQ(p.name(), info.name);
    }) << info.name;
  }
  for (const char* k : {"jacobi", "life", "heat3d"}) {
    EXPECT_NO_THROW(parser::parse_program(programs::kernel_source(k))) << k;
  }
  EXPECT_THROW(programs::kernel_source("nosuch"), Error);
}

TEST(Suite, PaperConfigsMatchFigure7Sizes) {
  EXPECT_EQ(programs::benchmark("tomcatv").paper_configs.at("n"), 128);
  EXPECT_EQ(programs::benchmark("swm").paper_configs.at("n"), 512);
  EXPECT_EQ(programs::benchmark("simple").paper_configs.at("n"), 256);
  EXPECT_EQ(programs::benchmark("sp").paper_configs.at("n"), 16);
}

/// Figure 8 shape: static counts fall substantially under rr and again
/// under cc, for every benchmark.
TEST(Counts, StaticCountsShrinkAsInFigure8) {
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const int base = static_count(p, comm::OptLevel::kBaseline);
    const int rr = static_count(p, comm::OptLevel::kRR);
    const int cc = static_count(p, comm::OptLevel::kCC);
    const int pl = static_count(p, comm::OptLevel::kPL);
    EXPECT_GT(base, 0) << info.name;
    EXPECT_LT(rr, base) << info.name;             // redundancy exists
    EXPECT_LT(cc, rr) << info.name;               // combining exists
    EXPECT_EQ(pl, cc) << info.name;               // pipelining count-neutral
    // Paper: static counts end up between 20% and 55% of baseline.
    EXPECT_LE(cc, (60 * base) / 100) << info.name;
    EXPECT_GE(cc, (10 * base) / 100) << info.name;
  }
}

/// Figure 11 shape: combining for maximum latency hiding keeps more
/// communications than maximum combining; for TOMCATV it combines nothing
/// (its static count equals rr's, as in the paper).
TEST(Counts, MaxLatencyKeepsMoreCommunications) {
  for (const auto& info : programs::benchmark_suite()) {
    const zir::Program p = parser::parse_program(info.source);
    const int rr = static_count(p, comm::OptLevel::kRR);
    const int maxcomb = static_count(p, comm::OptLevel::kPL);
    const int maxlat =
        static_count(p, comm::OptLevel::kPL, comm::CombineHeuristic::kMaxLatency);
    EXPECT_GE(maxlat, maxcomb) << info.name;
    EXPECT_LE(maxlat, rr) << info.name;
    if (info.name == "tomcatv") EXPECT_EQ(maxlat, rr);
  }
}

/// TOMCATV's baseline static count lands near the paper's 46.
TEST(Counts, TomcatvBaselineNearPaper) {
  const zir::Program p = parser::parse_program(programs::benchmark("tomcatv").source);
  const int base = static_count(p, comm::OptLevel::kBaseline);
  EXPECT_GE(base, 35);
  EXPECT_LE(base, 55);
}

/// SP: z-direction shifts produce no communication (dim 2 is local), so
/// z_solve contributes nothing to the static count.
TEST(Counts, SpZSweepIsCommunicationFree) {
  const zir::Program p = parser::parse_program(programs::benchmark("sp").source);
  const comm::CommPlan plan =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kBaseline));
  const zir::ProcId z = p.find_proc("z_solve");
  ASSERT_TRUE(z.valid());
  for (const comm::BlockPlan& b : plan.blocks) {
    if (b.proc == z) {
      EXPECT_TRUE(b.groups.empty());
      EXPECT_TRUE(b.transfers.empty());
    }
  }
}

/// TOMCATV's solver: the paper says pipelining opportunities are limited
/// by cross-loop dependences — the sweep-body groups have zero or tiny
/// latency-hiding windows even under pl.
TEST(Structure, TomcatvSolverWindowsAreTiny) {
  const zir::Program p = parser::parse_program(programs::benchmark("tomcatv").source);
  const comm::CommPlan plan =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kPL));
  // Sweep-body blocks are the 3-statement and 2-statement blocks.
  for (const comm::BlockPlan& b : plan.blocks) {
    if (b.stmts.size() <= 3 && !b.groups.empty()) {
      for (const comm::CommGroup& g : b.groups) {
        EXPECT_LE(g.window(), 1) << "solver block group " << g.id;
      }
    }
  }
}

/// SIMPLE: all communication sits in main-body blocks with room to
/// pipeline — at least some groups get a multi-statement window.
TEST(Structure, SimpleHasWidePipelineWindows) {
  const zir::Program p = parser::parse_program(programs::benchmark("simple").source);
  const comm::CommPlan plan =
      comm::plan_communication(p, comm::OptOptions::for_level(comm::OptLevel::kPL));
  int wide = 0;
  for (const comm::BlockPlan& b : plan.blocks) {
    for (const comm::CommGroup& g : b.groups) wide += g.window() >= 2 ? 1 : 0;
  }
  EXPECT_GE(wide, 3);
}

}  // namespace
}  // namespace zc
