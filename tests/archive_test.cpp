// The perf archive (src/archive): envelope round trips, legacy ingestion
// of pre-envelope samples (including every committed BENCH_*.json), metric
// extraction and direction inference, MAD noise bands, the like-for-like
// regression gate with its host-class refusal, the JSON-lines store, and
// the self-contained dashboard.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/archive/archive.h"
#include "src/archive/dashboard.h"
#include "src/archive/envelope.h"
#include "src/archive/trend.h"
#include "src/support/fingerprint.h"
#include "src/support/io.h"
#include "src/support/json.h"

namespace {

using namespace zc;
using archive::Direction;
using archive::Envelope;
using archive::Verdict;
using json::Value;

/// A minimal bench-perf payload with one timed result.
Value bench_payload(const std::string& bench, double median_ns) {
  Value result = Value::make_object();
  result["name"] = Value::make_str("tomcatv/pl");
  result["median_ns"] = Value::make_num(median_ns);
  Value results = Value::make_array();
  results.push_back(std::move(result));
  Value doc = Value::make_object();
  doc["schema"] = Value::make_str("zcomm-bench-perf");
  doc["bench"] = Value::make_str(bench);
  doc["results"] = std::move(results);
  return doc;
}

Envelope sample(const std::string& bench, double median_ns, long long when,
                const std::string& host_class = "") {
  Envelope e = archive::wrap(bench_payload(bench, median_ns), when, "");
  if (!host_class.empty()) {
    e.host.forced_class = host_class;
    e.host.known = true;
  }
  return e;
}

// ----------------------------------------------------------------- envelope

TEST(Envelope, WrapRoundTripsThroughJson) {
  const Envelope e = archive::wrap(bench_payload("t1", 123.0), 1700000000, "abc123");
  EXPECT_FALSE(e.legacy);
  EXPECT_EQ(e.kind, "zcomm-bench-perf");
  EXPECT_EQ(e.bench, "t1");
  EXPECT_EQ(e.recorded_at_utc(), "2023-11-14T22:13:20Z");

  const Envelope back = archive::envelope_from_json(json::parse(e.to_json().dump()));
  EXPECT_FALSE(back.legacy);
  EXPECT_EQ(back.unix_time, 1700000000);
  EXPECT_EQ(back.git_sha, "abc123");
  EXPECT_EQ(back.host_class(), e.host_class());
  EXPECT_EQ(back.build.compiler, e.build.compiler);
  // Bit-exactness, not just field equality: the archive's append line and a
  // re-ingested record must be the same bytes.
  EXPECT_EQ(back.to_json().dump(0), e.to_json().dump(0));
}

TEST(Envelope, BarePayloadIngestsAsLegacyHostUnknown) {
  const Envelope e = archive::envelope_from_json(bench_payload("t1", 9.0));
  EXPECT_TRUE(e.legacy);
  EXPECT_FALSE(e.host.known);
  EXPECT_EQ(e.host_class(), "unknown");
  EXPECT_EQ(e.kind, "zcomm-bench-perf");
  EXPECT_EQ(e.bench, "t1");
  EXPECT_EQ(e.unix_time, 0);
}

TEST(Envelope, BareRunReportDonatesItsOwnHostBlock) {
  Value report = Value::make_object();
  report["schema"] = Value::make_str("zcomm-run-report");
  report["benchmark"] = Value::make_str("swm");
  report["execution_time_seconds"] = Value::make_num(1.5);
  Value host = fingerprint::current_host().to_json();
  report["host"] = std::move(host);

  const Envelope e = archive::envelope_from_json(report);
  EXPECT_TRUE(e.legacy);
  EXPECT_TRUE(e.host.known);
  EXPECT_EQ(e.host_class(), fingerprint::current_host().host_class());
  EXPECT_EQ(e.bench, "swm") << "run reports label themselves 'benchmark'";
}

TEST(Envelope, HostClassIsStableAndForcedClassWins) {
  const fingerprint::Host h = fingerprint::current_host();
  EXPECT_TRUE(h.known);
  EXPECT_GT(h.cores, 0);
  EXPECT_NE(h.host_class(), "unknown");
  EXPECT_EQ(h.host_class(), fingerprint::current_host().host_class());

  fingerprint::Host forced = h;
  forced.forced_class = "ci-other-box";
  EXPECT_EQ(forced.host_class(), "ci-other-box");
}

// ------------------------------------------------------ metrics & direction

TEST(Metrics, DirectionFollowsMetricName) {
  EXPECT_EQ(archive::direction_for("median_ns"), Direction::kLowerIsBetter);
  EXPECT_EQ(archive::direction_for("execution_time_seconds"), Direction::kLowerIsBetter);
  EXPECT_EQ(archive::direction_for("legacy_serial_s"), Direction::kLowerIsBetter);
  EXPECT_EQ(archive::direction_for("static_count"), Direction::kLowerIsBetter);
  EXPECT_EQ(archive::direction_for("dynamic_count"), Direction::kLowerIsBetter);
  EXPECT_EQ(archive::direction_for("reqs_per_sec"), Direction::kHigherIsBetter);
  EXPECT_EQ(archive::direction_for("plan_cache_hit_rate"), Direction::kHigherIsBetter);
  EXPECT_EQ(archive::direction_for("overlap_fraction"), Direction::kHigherIsBetter);
  EXPECT_EQ(archive::direction_for("grid_runs"), Direction::kNeutral);
  EXPECT_EQ(archive::direction_for("jobs"), Direction::kNeutral);
}

TEST(Metrics, ExtractionFlattensResultsAndSkipsTelemetryBlocks) {
  const Envelope e = archive::wrap(bench_payload("t1", 42.0), 1, "");
  const std::vector<archive::Measurement> ms = archive::extract_metrics(e);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].metric, "results.tomcatv/pl.median_ns");
  EXPECT_EQ(ms[0].value, 42.0);
  EXPECT_EQ(ms[0].direction, Direction::kLowerIsBetter);

  // Run-report shape: top-level numerics are measurements; the metrics
  // snapshot, provenance, profile, and timeline blocks are telemetry.
  Value report = Value::make_object();
  report["schema"] = Value::make_str("zcomm-run-report");
  report["benchmark"] = Value::make_str("swm");
  report["execution_time_seconds"] = Value::make_num(2.0);
  report["static_count"] = Value::make_num(10.0);
  Value noise = Value::make_object();
  noise["counter"] = Value::make_num(999.0);
  report["metrics"] = noise;
  report["passes"] = Value::make_object();
  report["host"] = fingerprint::current_host().to_json();

  const Envelope r = archive::envelope_from_json(report);
  const std::vector<archive::Measurement> rm = archive::extract_metrics(r);
  ASSERT_EQ(rm.size(), 2u);
  for (const archive::Measurement& m : rm) {
    EXPECT_TRUE(m.metric == "execution_time_seconds" || m.metric == "static_count")
        << m.metric;
    EXPECT_EQ(m.direction, Direction::kLowerIsBetter) << m.metric;
  }
}

// ----------------------------------------------------------------- trending

TEST(Trend, MadBandAndRelativeFloor) {
  // Median 100, MAD 2: the 3-sigma band is 100 +- max(3*1.4826*2, 0.1*100)
  // = 100 +- 10 (the relative floor dominates 8.9).
  const std::vector<double> values = {98, 99, 100, 101, 102, 100, 100};
  const archive::TrendStats st = archive::trend_stats(values, 3.0, 0.10);
  EXPECT_EQ(st.n, 7);
  EXPECT_DOUBLE_EQ(st.median, 100.0);
  EXPECT_DOUBLE_EQ(st.mad, 1.0);
  EXPECT_DOUBLE_EQ(st.band_low, 90.0);
  EXPECT_DOUBLE_EQ(st.band_high, 110.0);

  // Noisier series: the MAD term wins over the floor.
  const std::vector<double> noisy = {80, 90, 100, 110, 120};
  const archive::TrendStats n = archive::trend_stats(noisy, 3.0, 0.10);
  EXPECT_DOUBLE_EQ(n.median, 100.0);
  EXPECT_DOUBLE_EQ(n.mad, 10.0);
  EXPECT_DOUBLE_EQ(n.band_high, 100.0 + 3.0 * 1.4826 * 10.0);
  EXPECT_DOUBLE_EQ(n.band_low, 100.0 - 3.0 * 1.4826 * 10.0);
}

TEST(Trend, DeterministicSeriesCollapsesToTheFloor) {
  const std::vector<double> flat = {5.0, 5.0, 5.0};
  const archive::TrendStats st = archive::trend_stats(flat, 3.0, 0.10);
  EXPECT_DOUBLE_EQ(st.mad, 0.0);
  EXPECT_DOUBLE_EQ(st.band_low, 4.5);
  EXPECT_DOUBLE_EQ(st.band_high, 5.5);
}

TEST(Trend, SparklineSpansTheRange) {
  EXPECT_EQ(archive::sparkline({}), "");
  EXPECT_EQ(archive::sparkline({1.0, 1.0, 1.0}), "...");
  const std::string s = archive::sparkline({0.0, 1.0});
  EXPECT_EQ(s.size(), 6u) << "two 3-byte glyphs";
  EXPECT_EQ(s.substr(0, 3), "▁");
  EXPECT_EQ(s.substr(3, 3), "█");
}

TEST(Trend, SeriesAreKeyedByHostClass) {
  std::vector<Envelope> records;
  records.push_back(sample("t1", 100, 1, "box-a"));
  records.push_back(sample("t1", 101, 2, "box-a"));
  records.push_back(sample("t1", 500, 3, "box-b"));
  const auto series = archive::build_series(records);
  ASSERT_EQ(series.size(), 2u);
  const archive::SeriesKey a{"t1", "results.tomcatv/pl.median_ns", "box-a"};
  const archive::SeriesKey b{"t1", "results.tomcatv/pl.median_ns", "box-b"};
  ASSERT_TRUE(series.count(a));
  ASSERT_TRUE(series.count(b));
  EXPECT_EQ(series.at(a).points.size(), 2u);
  EXPECT_EQ(series.at(b).points.size(), 1u);
}

// ------------------------------------------------------------------- gating

std::vector<Envelope> history_of(std::initializer_list<double> values,
                                 const std::string& host_class) {
  std::vector<Envelope> h;
  long long t = 1;
  for (const double v : values) h.push_back(sample("t1", v, t++, host_class));
  return h;
}

TEST(Check, InBandSamplePasses) {
  const auto history = history_of({100, 101, 99, 100}, "box-a");
  const archive::CheckResult r =
      archive::check_sample(history, sample("t1", 102, 9, "box-a"));
  EXPECT_EQ(r.overall(), Verdict::kOk);
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_EQ(r.compared, 1);
  EXPECT_EQ(r.regressions, 0);
}

TEST(Check, SlowdownBeyondTheBandRegresses) {
  const auto history = history_of({100, 101, 99, 100}, "box-a");
  const archive::CheckResult r =
      archive::check_sample(history, sample("t1", 200, 9, "box-a"));
  EXPECT_EQ(r.overall(), Verdict::kRegression);
  EXPECT_EQ(r.exit_code(), 1);
  ASSERT_EQ(r.metrics.size(), 1u);
  EXPECT_NEAR(r.metrics[0].delta_fraction(), 1.0, 1e-9);
}

TEST(Check, ImprovementBeyondTheBandIsNotARegression) {
  const auto history = history_of({100, 101, 99, 100}, "box-a");
  const archive::CheckResult r =
      archive::check_sample(history, sample("t1", 50, 9, "box-a"));
  EXPECT_EQ(r.overall(), Verdict::kImprovement);
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(Check, InjectedScaleForcesADeterministicRegression) {
  const auto history = history_of({100, 100, 100}, "box-a");
  archive::CheckOptions opts;
  opts.inject_scale = 2.0;
  const archive::CheckResult r =
      archive::check_sample(history, sample("t1", 100, 9, "box-a"), opts);
  EXPECT_EQ(r.overall(), Verdict::kRegression);
  EXPECT_EQ(r.exit_code(), 1);
}

TEST(Check, CrossHostClassHistoryIsRefusedNotCompared) {
  const auto history = history_of({100, 100, 100}, "box-a");
  const archive::CheckResult r =
      archive::check_sample(history, sample("t1", 100, 9, "box-b"));
  EXPECT_EQ(r.overall(), Verdict::kRefusedHostClass);
  EXPECT_EQ(r.exit_code(), 3);
  EXPECT_EQ(r.compared, 0);
  ASSERT_EQ(r.archive_classes.size(), 1u);
  EXPECT_EQ(r.archive_classes[0], "box-a");
}

TEST(Check, LegacyUnknownHostRecordsNeverGate) {
  std::vector<Envelope> history;
  for (long long t = 1; t <= 3; ++t) {
    history.push_back(archive::envelope_from_json(bench_payload("t1", 100.0)));
    history.back().unix_time = t;
  }
  // Fresh sample from a real host: legacy history is not like-for-like, so
  // this refuses rather than comparing against unknown hardware.
  const archive::CheckResult r =
      archive::check_sample(history, sample("t1", 100, 9, "box-a"));
  EXPECT_EQ(r.overall(), Verdict::kRefusedHostClass);
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(Check, EmptyHistoryIsNoBaseline) {
  const archive::CheckResult r =
      archive::check_sample({}, sample("t1", 100, 9, "box-a"));
  EXPECT_EQ(r.overall(), Verdict::kNoBaseline);
  EXPECT_EQ(r.exit_code(), 4);
}

// -------------------------------------------------------------------- store

TEST(Store, AppendReadBackAndFilter) {
  const std::string path = testing::TempDir() + "/zc_archive_test.jsonl";
  std::filesystem::remove(path);
  const archive::Archive store(path);
  EXPECT_TRUE(store.read_all().empty()) << "missing file reads as empty";

  store.append(sample("t1", 100, 1000, "box-a"));
  store.append(sample("t2", 5, 2000, "box-a"));
  store.append(sample("t1", 101, 3000, "box-b"));

  int skipped = 0;
  const std::vector<Envelope> all = store.read_all(&skipped);
  EXPECT_EQ(skipped, 0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].bench, "t1");
  EXPECT_EQ(all[1].bench, "t2");
  EXPECT_EQ(all[2].host_class(), "box-b");

  archive::Query q;
  q.bench = "t1";
  EXPECT_EQ(store.select(q).size(), 2u);
  q.host_class = "box-a";
  EXPECT_EQ(store.select(q).size(), 1u);
  archive::Query range;
  range.since_unix = 1500;
  range.until_unix = 2500;
  const auto mid = store.select(range);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].bench, "t2");
  std::filesystem::remove(path);
}

TEST(Store, UnparseableLinesAreSkippedNotFatal) {
  const std::string path = testing::TempDir() + "/zc_archive_garbage.jsonl";
  std::filesystem::remove(path);
  const archive::Archive store(path);
  store.append(sample("t1", 100, 1, "box-a"));
  {
    // Simulate a torn concurrent write plus stray noise.
    std::string text = io::read_text_file(path);
    text += "{\"schema\": \"zcomm-perf-env";
    text += "\n\nnot json at all\n";
    io::write_text_file(path, text);
  }
  store.append(sample("t1", 101, 2, "box-a"));

  int skipped = 0;
  const std::vector<Envelope> all = store.read_all(&skipped);
  EXPECT_EQ(skipped, 2) << "torn line + noise line; blanks are free";
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1].unix_time, 2);
  std::filesystem::remove(path);
}

TEST(Store, CommittedBenchFilesAllIngest) {
  // Every BENCH_*.json committed at the repo root must stay readable
  // forever. Pre-envelope files (through PR 9) ingest as legacy samples
  // under host class "unknown" — trendable history, never a gating
  // baseline. Envelope-era files carry the recording host's class and
  // timestamp verbatim. Either way, metrics must extract.
  const std::filesystem::path root = ZC_REPO_ROOT;
  int seen = 0, legacy = 0, enveloped = 0;
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") continue;
    ++seen;
    const Envelope e =
        archive::envelope_from_json(json::parse(io::read_text_file(entry.path().string())));
    if (e.legacy) {
      ++legacy;
      EXPECT_EQ(e.host_class(), "unknown") << name;
    } else {
      ++enveloped;
      EXPECT_NE(e.host_class(), "unknown") << name;
      EXPECT_GT(e.unix_time, 0) << name;
    }
    EXPECT_FALSE(e.bench.empty()) << name;
    EXPECT_GT(archive::extract_metrics(e).size(), 0u) << name;
  }
  EXPECT_GE(seen, 3) << "the repo ships at least three BENCH_*.json fixtures";
  EXPECT_GE(legacy, 1) << "a pre-envelope fixture must stay committed (back-compat)";
  EXPECT_GE(enveloped, 1) << "the engine-scaling era ships full envelopes";
}

// ---------------------------------------------------------------- dashboard

TEST(Dashboard, SelfContainedHtmlWithSparklines) {
  std::vector<Envelope> records;
  for (long long t = 1; t <= 5; ++t) {
    records.push_back(sample("t1", 100.0 + static_cast<double>(t), t, "box-a"));
  }
  const std::string html = archive::render_dashboard(records);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos) << "inline SVG sparkline";
  EXPECT_NE(html.find("zcomm perf dashboard"), std::string::npos);
  EXPECT_NE(html.find("box-a"), std::string::npos);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
  // Embedded machine-readable copy of the latest record.
  EXPECT_NE(html.find("application/json"), std::string::npos);
}

TEST(Dashboard, EmptyArchiveStillRenders) {
  const std::string html = archive::render_dashboard({});
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("0 record"), std::string::npos);
}

TEST(Dashboard, ScriptEmbedsEscapeClosingTags) {
  Value doc = bench_payload("t1", 1.0);
  doc["note"] = Value::make_str("</script><b>evil</b>");
  Envelope e = archive::wrap(doc, 1, "");
  const std::string html = archive::render_dashboard({e});
  EXPECT_EQ(html.find("</script><b>evil</b>"), std::string::npos)
      << "payload text must not terminate the embed block";
}

}  // namespace
