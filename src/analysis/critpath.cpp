#include "src/analysis/critpath.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "src/prof/prof.h"
#include "src/support/check.h"
#include "src/support/csv.h"
#include "src/support/str.h"

namespace zc::analysis {

namespace {

using trace::Event;
using trace::EventKind;
using trace::MessageRecord;

std::string seconds_str(double s) {
  std::ostringstream os;
  os.precision(17);
  os << s;
  return os.str();
}

std::string kind_key(PathSegment::Kind kind) {
  switch (kind) {
    case PathSegment::Kind::kCompute: return "compute";
    case PathSegment::Kind::kCallCpu: return "call_cpu";
    case PathSegment::Kind::kCallWait: return "call_wait";
    case PathSegment::Kind::kWire: return "wire";
    case PathSegment::Kind::kBarrier: return "barrier";
    case PathSegment::Kind::kUntracked: return "untracked";
  }
  return "?";
}

using ChanKey = std::tuple<std::int64_t, int, int>;

/// FIFO pairing state mirroring the Transport's per-channel arrival queues:
/// the k-th DN event on a channel consumed the k-th message sent on it.
struct Pairing {
  std::map<ChanKey, std::vector<std::size_t>> messages;  ///< indices, send order
  /// (proc, index-in-track) of a DN event -> its message index (or npos).
  std::map<std::pair<int, std::size_t>, std::size_t> dn_message;
  /// message index -> (src proc, index-in-track) of the SR that sent it.
  std::map<std::size_t, std::pair<int, std::size_t>> message_sr;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

Pairing build_pairing(const trace::Recorder& recorder) {
  Pairing p;
  const std::vector<MessageRecord>& msgs = recorder.messages();
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    p.messages[{msgs[i].chan, msgs[i].src, msgs[i].dst}].push_back(i);
  }
  std::map<ChanKey, std::size_t> dn_seen;
  std::map<ChanKey, std::size_t> sr_seen;
  for (int proc = 0; proc < recorder.procs(); ++proc) {
    const std::vector<Event>& track = recorder.events(proc);
    for (std::size_t i = 0; i < track.size(); ++i) {
      const Event& e = track[i];
      if (e.kind != EventKind::kCall) continue;
      const ChanKey key{e.chan, e.src, e.dst};
      if (e.call == ironman::IronmanCall::kDN) {
        const std::size_t k = dn_seen[key]++;
        const auto it = p.messages.find(key);
        p.dn_message[{proc, i}] =
            (it != p.messages.end() && k < it->second.size()) ? it->second[k] : Pairing::npos;
      } else if (e.call == ironman::IronmanCall::kSR) {
        const std::size_t k = sr_seen[key]++;
        const auto it = p.messages.find(key);
        if (it != p.messages.end() && k < it->second.size()) {
          p.message_sr[it->second[k]] = {proc, i};
        }
      }
    }
  }
  return p;
}

/// Per-processor barrier ordinals: every barrier records once on every
/// processor, so the k-th barrier event in each track is the same barrier.
std::vector<std::vector<std::size_t>> barrier_positions(const trace::Recorder& recorder) {
  std::vector<std::vector<std::size_t>> pos(static_cast<std::size_t>(recorder.procs()));
  for (int proc = 0; proc < recorder.procs(); ++proc) {
    const std::vector<Event>& track = recorder.events(proc);
    for (std::size_t i = 0; i < track.size(); ++i) {
      if (track[i].kind == EventKind::kBarrier) pos[static_cast<std::size_t>(proc)].push_back(i);
    }
  }
  return pos;
}

void finish_transfers(CriticalPathReport& report, const trace::Recorder& recorder) {
  // Slack for every transfer with consumed messages, independent of the
  // walk: pair messages with their DN events and take the minimum idle gap
  // between arrival and the DN's begin.
  std::map<std::int64_t, PathTransfer> by_transfer;
  for (const PathSegment& seg : report.segments) {
    if (seg.transfer < 0) continue;
    if (seg.kind != PathSegment::Kind::kCallCpu && seg.kind != PathSegment::Kind::kCallWait &&
        seg.kind != PathSegment::Kind::kWire) {
      continue;
    }
    PathTransfer& t = by_transfer[seg.transfer];
    t.transfer = seg.transfer;
    t.path_seconds += seg.seconds();
    t.on_path = true;
  }

  const Pairing pairing = build_pairing(recorder);
  const std::vector<MessageRecord>& msgs = recorder.messages();
  std::map<std::int64_t, double> min_slack;
  std::map<std::int64_t, long long> msg_count;
  for (int proc = 0; proc < recorder.procs(); ++proc) {
    const std::vector<Event>& track = recorder.events(proc);
    for (std::size_t i = 0; i < track.size(); ++i) {
      const auto it = pairing.dn_message.find({proc, i});
      if (it == pairing.dn_message.end() || it->second == Pairing::npos) continue;
      const MessageRecord& m = msgs[it->second];
      if (!m.consumed) continue;
      const double slack = std::max(0.0, track[i].t_begin - m.t_arrived);
      const auto [sit, inserted] = min_slack.emplace(m.transfer, slack);
      if (!inserted) sit->second = std::min(sit->second, slack);
      ++msg_count[m.transfer];
    }
  }
  for (const auto& [transfer, slack] : min_slack) {
    PathTransfer& t = by_transfer[transfer];
    t.transfer = transfer;
    t.slack_seconds = slack;
    t.messages = msg_count[transfer];
  }

  for (auto& [transfer, t] : by_transfer) {
    t.label = transfer < 0 ? "(untagged)" : recorder.transfer_label(transfer);
    report.transfers.push_back(std::move(t));
  }
  std::sort(report.transfers.begin(), report.transfers.end(),
            [](const PathTransfer& a, const PathTransfer& b) {
              if (a.path_seconds != b.path_seconds) return a.path_seconds > b.path_seconds;
              if (a.slack_seconds != b.slack_seconds) return a.slack_seconds < b.slack_seconds;
              return a.transfer < b.transfer;
            });
}

}  // namespace

CriticalPathReport compute_critical_path(const trace::Recorder& recorder) {
  ZC_PROF_SPAN("analysis/critpath");
  CriticalPathReport report;

  int start_proc = -1;
  for (int proc = 0; proc < recorder.procs(); ++proc) {
    const std::vector<Event>& track = recorder.events(proc);
    if (track.empty()) continue;
    if (track.back().t_end > report.makespan) {
      report.makespan = track.back().t_end;
      start_proc = proc;
    }
  }
  report.exact = recorder.dropped_events() == 0 && recorder.dropped_messages() == 0;
  if (start_proc < 0) return report;
  if (!report.exact) {
    // Capped detail buffers break the FIFO pairing; report totals only.
    finish_transfers(report, recorder);
    return report;
  }

  const Pairing pairing = build_pairing(recorder);
  const std::vector<std::vector<std::size_t>> barriers = barrier_positions(recorder);
  const std::vector<MessageRecord>& msgs = recorder.messages();
  const double eps = 1e-12 * std::max(1.0, report.makespan);

  // Backward walk state: per-proc scan index (time only decreases, so a
  // monotone cursor per processor is enough), plus per-proc barrier
  // ordinals consumed from the back.
  std::vector<std::size_t> idx(static_cast<std::size_t>(recorder.procs()));
  for (int proc = 0; proc < recorder.procs(); ++proc) {
    idx[static_cast<std::size_t>(proc)] = recorder.events(proc).size();
  }

  auto emit = [&report](PathSegment::Kind kind, int proc, double t0, double t1,
                        std::int64_t transfer = -1,
                        ironman::IronmanCall call = ironman::IronmanCall::kDR) {
    if (t1 - t0 <= 0.0) return;
    PathSegment seg;
    seg.kind = kind;
    seg.proc = proc;
    seg.transfer = transfer;
    seg.call = call;
    seg.t_begin = t0;
    seg.t_end = t1;
    report.segments.push_back(seg);
    switch (kind) {
      case PathSegment::Kind::kCompute: report.compute_seconds += t1 - t0; break;
      case PathSegment::Kind::kCallCpu: report.call_cpu_seconds += t1 - t0; break;
      case PathSegment::Kind::kCallWait: report.call_wait_seconds += t1 - t0; break;
      case PathSegment::Kind::kWire: report.wire_seconds += t1 - t0; break;
      case PathSegment::Kind::kBarrier: report.barrier_seconds += t1 - t0; break;
      case PathSegment::Kind::kUntracked: report.untracked_seconds += t1 - t0; break;
    }
  };

  int proc = start_proc;
  double t = report.makespan;
  // Every iteration either consumes one event from some track or closes an
  // untracked gap down to an event's end, so the walk is linear in events.
  const std::size_t max_iters = [&recorder] {
    std::size_t n = 16;
    for (int p = 0; p < recorder.procs(); ++p) n += 2 * recorder.events(p).size();
    return n;
  }();
  for (std::size_t iter = 0; t > eps && iter < max_iters; ++iter) {
    const std::vector<Event>& track = recorder.events(proc);
    std::size_t& i = idx[static_cast<std::size_t>(proc)];
    while (i > 0 && track[i - 1].t_begin >= t - eps) --i;
    if (i == 0) {
      emit(PathSegment::Kind::kUntracked, proc, 0.0, t);
      break;
    }
    const Event& e = track[i - 1];
    if (e.t_end < t - eps) {
      // Clock advanced without a record (scalar statement, loop bookkeeping).
      emit(PathSegment::Kind::kUntracked, proc, e.t_end, t);
      t = e.t_end;
      continue;
    }
    --i;  // consume e
    switch (e.kind) {
      case EventKind::kCompute:
        emit(PathSegment::Kind::kCompute, proc, e.t_begin, t);
        t = e.t_begin;
        break;
      case EventKind::kBarrier: {
        // This is proc's k-th barrier; the barrier ends when its latest
        // participant arrives — hop there.
        const std::vector<std::size_t>& own = barriers[static_cast<std::size_t>(proc)];
        const auto kit = std::find(own.begin(), own.end(), i);
        ZC_ASSERT(kit != own.end());
        const std::size_t k = static_cast<std::size_t>(kit - own.begin());
        int bind = proc;
        double bind_begin = e.t_begin;
        for (int p = 0; p < recorder.procs(); ++p) {
          const std::vector<std::size_t>& pos = barriers[static_cast<std::size_t>(p)];
          if (k >= pos.size()) continue;
          const Event& be = recorder.events(p)[pos[k]];
          if (be.t_begin > bind_begin) {
            bind_begin = be.t_begin;
            bind = p;
          }
        }
        emit(PathSegment::Kind::kBarrier, bind, bind_begin, t);
        if (bind != proc) {
          proc = bind;
          // Consume the binding proc's copy of this barrier so the scan
          // continues before it.
          idx[static_cast<std::size_t>(bind)] = barriers[static_cast<std::size_t>(bind)][k];
        }
        t = bind_begin;
        break;
      }
      case EventKind::kCall: {
        const double unblocked = std::min(e.t_unblocked, t);
        emit(PathSegment::Kind::kCallCpu, proc, unblocked, t, e.transfer, e.call);
        t = unblocked;
        if (e.t_unblocked - e.t_begin <= eps) break;
        std::size_t msg = Pairing::npos;
        if (e.call == ironman::IronmanCall::kDN) {
          const auto mit = pairing.dn_message.find({proc, i});
          if (mit != pairing.dn_message.end()) msg = mit->second;
        }
        if (msg != Pairing::npos && msgs[msg].t_arrived >= t - eps) {
          // The DN was bound by this message's transit: wire back to the
          // send, then continue on the source processor.
          const MessageRecord& m = msgs[msg];
          const double on_wire = std::min(m.t_on_wire, t);
          emit(PathSegment::Kind::kWire, m.src, on_wire, t, m.transfer);
          t = on_wire;
          proc = m.src;
        } else {
          // Gated SR (readiness), SV drain, or an unmatched DN: count the
          // wait against the transfer and keep walking this processor —
          // for barriers-backed readiness the chain rejoins at the barrier.
          emit(PathSegment::Kind::kCallWait, proc, e.t_begin, t, e.transfer, e.call);
          t = e.t_begin;
        }
        break;
      }
    }
  }

  std::reverse(report.segments.begin(), report.segments.end());
  finish_transfers(report, recorder);
  return report;
}

CriticalPathReport compute_critical_path(const trace::Recorder& recorder,
                                         const zir::Program& program,
                                         const comm::CommPlan& plan) {
  CriticalPathReport report = compute_critical_path(recorder);
  const std::map<std::int64_t, Anchor> anchors = plan_anchors(program, plan);
  for (PathTransfer& t : report.transfers) {
    if (const auto it = anchors.find(t.transfer); it != anchors.end()) t.anchor = it->second;
  }
  return report;
}

std::string CriticalPathReport::to_string(int top_n) const {
  std::ostringstream os;
  os << "critical path: makespan " << str::format_f(makespan * 1e3, 3) << " ms";
  if (!exact) {
    os << " (trace truncated: walk skipped, slack/totals only)\n";
  } else {
    os << " = compute " << str::format_f(compute_seconds * 1e3, 3) << " + call cpu "
       << str::format_f(call_cpu_seconds * 1e3, 3) << " + wait "
       << str::format_f(call_wait_seconds * 1e3, 3) << " + wire "
       << str::format_f(wire_seconds * 1e3, 3) << " + barrier "
       << str::format_f(barrier_seconds * 1e3, 3) << " + untracked "
       << str::format_f(untracked_seconds * 1e3, 3) << " ms over " << segments.size()
       << " segments\n";
  }
  std::size_t shown = transfers.size();
  if (top_n >= 0) shown = std::min(shown, static_cast<std::size_t>(top_n));
  for (std::size_t i = 0; i < shown; ++i) {
    const PathTransfer& t = transfers[i];
    os << "  #" << t.transfer;
    if (!t.label.empty()) os << " " << t.label;
    if (!t.anchor.proc.empty()) {
      os << " (" << t.anchor.proc;
      if (t.anchor.use_line > 0) os << ":" << t.anchor.use_line;
      os << ")";
    }
    os << ": " << str::format_f(t.path_seconds * 1e3, 3) << " ms on path, slack "
       << str::format_f(t.slack_seconds * 1e3, 3) << " ms, "
       << str::with_commas(t.messages) << " msgs" << (t.on_path ? "" : " (off path)") << "\n";
  }
  if (shown < transfers.size()) os << "  ... " << transfers.size() - shown << " more\n";
  return os.str();
}

std::string CriticalPathReport::to_csv() const {
  CsvWriter csv({"transfer", "label", "proc", "use_line", "path_seconds", "slack_seconds",
                 "messages", "on_path"});
  for (const PathTransfer& t : transfers) {
    csv.add_row({std::to_string(t.transfer), t.label, t.anchor.proc,
                 std::to_string(t.anchor.use_line), seconds_str(t.path_seconds),
                 seconds_str(t.slack_seconds), std::to_string(t.messages),
                 t.on_path ? "1" : "0"});
  }
  return csv.to_string();
}

json::Value CriticalPathReport::to_json(int top_n) const {
  json::Value v = json::Value::make_object();
  v["makespan_seconds"] = json::Value::make_num(makespan);
  v["exact"] = json::Value::make_bool(exact);
  json::Value by_kind = json::Value::make_object();
  by_kind[kind_key(PathSegment::Kind::kCompute)] = json::Value::make_num(compute_seconds);
  by_kind[kind_key(PathSegment::Kind::kCallCpu)] = json::Value::make_num(call_cpu_seconds);
  by_kind[kind_key(PathSegment::Kind::kCallWait)] = json::Value::make_num(call_wait_seconds);
  by_kind[kind_key(PathSegment::Kind::kWire)] = json::Value::make_num(wire_seconds);
  by_kind[kind_key(PathSegment::Kind::kBarrier)] = json::Value::make_num(barrier_seconds);
  by_kind[kind_key(PathSegment::Kind::kUntracked)] = json::Value::make_num(untracked_seconds);
  v["path_seconds_by_kind"] = std::move(by_kind);
  v["segments"] = json::Value::make_int(static_cast<long long>(segments.size()));
  std::size_t shown = transfers.size();
  if (top_n >= 0) shown = std::min(shown, static_cast<std::size_t>(top_n));
  v["truncated"] = json::Value::make_bool(shown < transfers.size());
  json::Value arr = json::Value::make_array();
  for (std::size_t i = 0; i < shown; ++i) {
    const PathTransfer& t = transfers[i];
    json::Value r = json::Value::make_object();
    r["transfer"] = json::Value::make_int(t.transfer);
    r["label"] = json::Value::make_str(t.label);
    if (!t.anchor.proc.empty()) {
      r["proc"] = json::Value::make_str(t.anchor.proc);
      r["block"] = json::Value::make_int(t.anchor.block);
      r["use_line"] = json::Value::make_int(t.anchor.use_line);
    }
    r["path_seconds"] = json::Value::make_num(t.path_seconds);
    r["slack_seconds"] = json::Value::make_num(t.slack_seconds);
    r["messages"] = json::Value::make_int(t.messages);
    r["on_path"] = json::Value::make_bool(t.on_path);
    arr.push_back(std::move(r));
  }
  v["transfers"] = std::move(arr);
  return v;
}

}  // namespace zc::analysis
