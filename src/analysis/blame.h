// Per-transfer blame: an exact decomposition of where communication time
// went, joined from two layers that each know half the story — the trace
// (what the simulated run actually did) and the comm plan (which source
// transfer caused it).
//
// A blame row is one communication (CommGroup) keyed by its lead
// transfer_id, with the wait / software-overhead split per IRONMAN call
// slot and the exposed-vs-overlapped wire decomposition for its messages.
// Rows come from the Recorder's exact per-transfer aggregates, so the
// report's conservation law holds even on truncated traces:
//
//   sum over rows of exposed_overhead_seconds == Stats::exposed_overhead_seconds
//
// (checked to 1e-9 relative by tests/analysis_test.cpp on all four paper
// benchmarks). Untagged records — direct Transport use without a plan —
// land in a single row with transfer == -1 so nothing escapes the sum.
//
// Attribution is opt-in like everything in src/trace: it reads a Recorder
// after the fact and adds no hooks of its own, so runs without a recorder
// pay nothing and traced runs pay only the recording they already paid.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/comm/plan.h"
#include "src/support/json.h"
#include "src/trace/recorder.h"
#include "src/zir/program.h"

namespace zc::analysis {

/// Where a transfer lives in the plan and the source: filled when the
/// program + plan are available, default-empty otherwise.
struct Anchor {
  int block = -1;       ///< index into CommPlan::blocks (-1 = unknown)
  std::string proc;     ///< enclosing procedure name
  int use_line = 0;     ///< source line of the group's first use (0 = none)
};

/// One communication's share of the run's communication time.
struct BlameRow {
  std::int64_t transfer = -1;  ///< group lead transfer id (-1 = untagged row)
  std::string label;           ///< member arrays + direction ("" if unknown)
  std::vector<int> members;    ///< member transfer ids (empty without a plan)
  Anchor anchor;
  trace::TransferTotals totals;

  /// This row's share of Stats::exposed_overhead_seconds (wait + CPU over
  /// the four call slots).
  [[nodiscard]] double exposed_overhead_seconds() const {
    return totals.exposed_overhead_seconds();
  }
  [[nodiscard]] double wait_seconds() const;
  [[nodiscard]] double cpu_seconds() const;
};

struct BlameReport {
  /// All rows, sorted by exposed overhead descending (ties by transfer id).
  std::vector<BlameRow> rows;

  /// Sum over rows — equals trace::Stats::exposed_overhead_seconds exactly
  /// (the rows partition every recorded call).
  double total_exposed_seconds = 0.0;
  /// The untagged (transfer == -1) row's share of the total, 0 if none.
  double untagged_exposed_seconds = 0.0;
  /// Wire decomposition summed over rows == Recorder::wire_totals().
  trace::WireTotals wire;

  /// Human-readable table, biggest offenders first (`top_n` < 0 = all).
  [[nodiscard]] std::string to_string(int top_n = -1) const;
  /// One row per transfer, stable columns.
  [[nodiscard]] std::string to_csv() const;
  /// Machine-readable block for run reports (`top_n` < 0 = all rows).
  [[nodiscard]] json::Value to_json(int top_n = -1) const;
};

/// Blame from the recorder alone: rows carry labels registered by the
/// engine but no plan anchors / member lists.
[[nodiscard]] BlameReport compute_blame(const trace::Recorder& recorder);

/// Blame joined with the plan: rows additionally carry member transfer ids
/// (the differential layer's matching key) and source anchors.
[[nodiscard]] BlameReport compute_blame(const trace::Recorder& recorder,
                                        const zir::Program& program,
                                        const comm::CommPlan& plan);

/// Plan-side join table: group lead transfer id -> source anchor. Shared by
/// blame, the critical path, and the differential renders.
[[nodiscard]] std::map<std::int64_t, Anchor> plan_anchors(const zir::Program& program,
                                                          const comm::CommPlan& plan);

}  // namespace zc::analysis
