#include "src/analysis/diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "src/prof/prof.h"
#include "src/support/csv.h"
#include "src/support/str.h"

namespace zc::analysis {

namespace {

std::string seconds_str(double s) {
  std::ostringstream os;
  os.precision(17);
  os << s;
  return os.str();
}

/// Plain union-find over transfer ids.
class UnionFind {
 public:
  int find(int x) {
    auto [it, inserted] = parent_.emplace(x, x);
    if (it->second == x) return x;
    return it->second = find(it->second);
  }
  void unite(int a, int b) { parent_[find(a)] = find(b); }

 private:
  std::map<int, int> parent_;
};

/// The ids a row contributes to the join: its members, or its lead id when
/// the report was built without a plan (baseline runs have one member per
/// group anyway).
std::vector<int> row_ids(const BlameRow& row) {
  if (!row.members.empty()) return row.members;
  return {static_cast<int>(row.transfer)};
}

}  // namespace

const char* to_string(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kRemoved: return "removed";
    case ComponentKind::kMerged: return "merged";
    case ComponentKind::kRepositioned: return "repositioned";
    case ComponentKind::kUnchanged: return "unchanged";
    case ComponentKind::kAppeared: return "appeared";
  }
  return "?";
}

BlameDiff diff_blame(const BlameReport& before, const BlameReport& after,
                     std::string name_before, std::string name_after) {
  BlameDiff diff;
  ZC_PROF_SPAN("analysis/diff");
  diff.name_before = std::move(name_before);
  diff.name_after = std::move(name_after);
  diff.before_total_seconds = before.total_exposed_seconds;
  diff.after_total_seconds = after.total_exposed_seconds;
  diff.untagged_savings_seconds =
      before.untagged_exposed_seconds - after.untagged_exposed_seconds;

  // Union member ids within every tagged row of both runs, so each
  // component covers whole communications on both sides.
  UnionFind uf;
  for (const BlameReport* report : {&before, &after}) {
    for (const BlameRow& row : report->rows) {
      if (row.transfer < 0) continue;
      const std::vector<int> ids = row_ids(row);
      for (std::size_t i = 1; i < ids.size(); ++i) uf.unite(ids[0], ids[i]);
    }
  }

  struct Acc {
    DiffComponent component;
    std::set<int> ids;
    std::set<int> ids_before;  ///< ids live (communicated) in the before run
    std::set<int> ids_after;
  };
  std::map<int, Acc> by_root;
  auto accumulate = [&](const BlameReport& report, bool is_before) {
    for (const BlameRow& row : report.rows) {
      if (row.transfer < 0) continue;
      const std::vector<int> ids = row_ids(row);
      Acc& acc = by_root[uf.find(ids[0])];
      acc.ids.insert(ids.begin(), ids.end());
      if (is_before) {
        acc.ids_before.insert(ids.begin(), ids.end());
        ++acc.component.rows_before;
        acc.component.before_seconds += row.exposed_overhead_seconds();
        if (acc.component.label.empty()) acc.component.label = row.label;
        if (acc.component.anchor.proc.empty()) acc.component.anchor = row.anchor;
      } else {
        acc.ids_after.insert(ids.begin(), ids.end());
        ++acc.component.rows_after;
        acc.component.after_seconds += row.exposed_overhead_seconds();
        if (acc.component.label.empty()) acc.component.label = row.label;
        if (acc.component.anchor.proc.empty()) acc.component.anchor = row.anchor;
      }
    }
  };
  accumulate(before, /*is_before=*/true);
  accumulate(after, /*is_before=*/false);

  for (auto& [root, acc] : by_root) {
    DiffComponent& c = acc.component;
    c.transfers.assign(acc.ids.begin(), acc.ids.end());
    const bool any_removed = [&acc] {
      for (int id : acc.ids_before) {
        if (acc.ids_after.count(id) == 0) return true;
      }
      return false;
    }();
    constexpr double kTol = 1e-15;
    if (acc.component.rows_before == 0) {
      c.kind = ComponentKind::kAppeared;
    } else if (any_removed) {
      c.kind = ComponentKind::kRemoved;
    } else if (c.rows_after < c.rows_before) {
      c.kind = ComponentKind::kMerged;
    } else if (std::abs(c.savings_seconds()) >
               kTol * std::max(std::abs(c.before_seconds), 1.0)) {
      c.kind = ComponentKind::kRepositioned;
    } else {
      c.kind = ComponentKind::kUnchanged;
    }
    diff.components.push_back(std::move(c));
  }
  std::sort(diff.components.begin(), diff.components.end(),
            [](const DiffComponent& a, const DiffComponent& b) {
              if (a.savings_seconds() != b.savings_seconds()) {
                return a.savings_seconds() > b.savings_seconds();
              }
              return a.transfers < b.transfers;
            });
  return diff;
}

std::string BlameDiff::to_string(int top_n) const {
  std::ostringstream os;
  os << "differential attribution: " << name_before << " -> " << name_after << "\n";
  os << "  exposed overhead " << str::format_f(before_total_seconds * 1e3, 3) << " ms -> "
     << str::format_f(after_total_seconds * 1e3, 3) << " ms (saved "
     << str::format_f(total_savings_seconds() * 1e3, 3) << " ms, "
     << str::percent(total_savings_seconds(), before_total_seconds) << ")\n";
  std::size_t shown = components.size();
  if (top_n >= 0) shown = std::min(shown, static_cast<std::size_t>(top_n));
  for (std::size_t i = 0; i < shown; ++i) {
    const DiffComponent& c = components[i];
    os << "  [" << analysis::to_string(c.kind) << "] ";
    if (!c.label.empty()) os << c.label << " ";
    os << "{";
    for (std::size_t k = 0; k < c.transfers.size(); ++k) {
      if (k > 0) os << ",";
      os << "#" << c.transfers[k];
    }
    os << "}";
    if (!c.anchor.proc.empty()) {
      os << " (" << c.anchor.proc;
      if (c.anchor.use_line > 0) os << ":" << c.anchor.use_line;
      os << ")";
    }
    os << ": " << str::format_f(c.before_seconds * 1e3, 3) << " -> "
       << str::format_f(c.after_seconds * 1e3, 3) << " ms, saved "
       << str::format_f(c.savings_seconds() * 1e3, 3) << " ms (" << c.rows_before << " -> "
       << c.rows_after << " comms)\n";
  }
  if (shown < components.size()) os << "  ... " << components.size() - shown << " more\n";
  if (untagged_savings_seconds != 0.0) {
    os << "  untagged delta " << str::format_f(untagged_savings_seconds * 1e3, 3) << " ms\n";
  }
  return os.str();
}

std::string BlameDiff::to_csv() const {
  CsvWriter csv({"kind", "transfers", "label", "proc", "use_line", "rows_before", "rows_after",
                 "before_seconds", "after_seconds", "savings_seconds"});
  for (const DiffComponent& c : components) {
    std::vector<std::string> ids;
    ids.reserve(c.transfers.size());
    for (int id : c.transfers) ids.push_back(std::to_string(id));
    csv.add_row({analysis::to_string(c.kind), str::join(ids, "+"), c.label, c.anchor.proc,
                 std::to_string(c.anchor.use_line), std::to_string(c.rows_before),
                 std::to_string(c.rows_after), seconds_str(c.before_seconds),
                 seconds_str(c.after_seconds), seconds_str(c.savings_seconds())});
  }
  return csv.to_string();
}

json::Value BlameDiff::to_json(int top_n) const {
  json::Value v = json::Value::make_object();
  v["before"] = json::Value::make_str(name_before);
  v["after"] = json::Value::make_str(name_after);
  v["before_exposed_seconds"] = json::Value::make_num(before_total_seconds);
  v["after_exposed_seconds"] = json::Value::make_num(after_total_seconds);
  v["savings_seconds"] = json::Value::make_num(total_savings_seconds());
  v["untagged_savings_seconds"] = json::Value::make_num(untagged_savings_seconds);
  std::size_t shown = components.size();
  if (top_n >= 0) shown = std::min(shown, static_cast<std::size_t>(top_n));
  v["truncated"] = json::Value::make_bool(shown < components.size());
  json::Value arr = json::Value::make_array();
  for (std::size_t i = 0; i < shown; ++i) {
    const DiffComponent& c = components[i];
    json::Value r = json::Value::make_object();
    r["kind"] = json::Value::make_str(analysis::to_string(c.kind));
    json::Value ids = json::Value::make_array();
    for (int id : c.transfers) ids.push_back(json::Value::make_int(id));
    r["transfers"] = std::move(ids);
    r["label"] = json::Value::make_str(c.label);
    if (!c.anchor.proc.empty()) {
      r["proc"] = json::Value::make_str(c.anchor.proc);
      r["use_line"] = json::Value::make_int(c.anchor.use_line);
    }
    r["rows_before"] = json::Value::make_int(c.rows_before);
    r["rows_after"] = json::Value::make_int(c.rows_after);
    r["before_seconds"] = json::Value::make_num(c.before_seconds);
    r["after_seconds"] = json::Value::make_num(c.after_seconds);
    r["savings_seconds"] = json::Value::make_num(c.savings_seconds());
    arr.push_back(std::move(r));
  }
  v["components"] = std::move(arr);
  return v;
}

}  // namespace zc::analysis
