#include "src/analysis/blame.h"

#include <algorithm>
#include <sstream>

#include "src/prof/prof.h"
#include "src/support/csv.h"
#include "src/support/str.h"
#include "src/trace/stats.h"

namespace zc::analysis {

namespace {

constexpr std::array<ironman::IronmanCall, 4> kCalls = {
    ironman::IronmanCall::kDR, ironman::IronmanCall::kSR, ironman::IronmanCall::kDN,
    ironman::IronmanCall::kSV};

std::string seconds_str(double s) {
  std::ostringstream os;
  os.precision(17);
  os << s;
  return os.str();
}

void sort_rows(std::vector<BlameRow>& rows) {
  std::sort(rows.begin(), rows.end(), [](const BlameRow& a, const BlameRow& b) {
    const double ea = a.exposed_overhead_seconds();
    const double eb = b.exposed_overhead_seconds();
    if (ea != eb) return ea > eb;
    return a.transfer < b.transfer;
  });
}

BlameReport finish(std::vector<BlameRow> rows) {
  BlameReport report;
  for (const BlameRow& row : rows) {
    report.total_exposed_seconds += row.exposed_overhead_seconds();
    if (row.transfer < 0) report.untagged_exposed_seconds += row.exposed_overhead_seconds();
    report.wire.wire_seconds += row.totals.wire.wire_seconds;
    report.wire.exposed_seconds += row.totals.wire.exposed_seconds;
    report.wire.overlapped_seconds += row.totals.wire.overlapped_seconds;
    report.wire.dn_wait_seconds += row.totals.wire.dn_wait_seconds;
  }
  sort_rows(rows);
  report.rows = std::move(rows);
  return report;
}

}  // namespace

double BlameRow::wait_seconds() const {
  double total = 0.0;
  for (const trace::CallTotals& c : totals.per_call) total += c.wait_seconds;
  return total;
}

double BlameRow::cpu_seconds() const {
  double total = 0.0;
  for (const trace::CallTotals& c : totals.per_call) total += c.cpu_seconds;
  return total;
}

BlameReport compute_blame(const trace::Recorder& recorder) {
  ZC_PROF_SPAN("analysis/blame");
  std::vector<BlameRow> rows;
  rows.reserve(recorder.transfer_totals().size());
  for (const auto& [transfer, totals] : recorder.transfer_totals()) {
    BlameRow row;
    row.transfer = transfer;
    row.label = transfer < 0 ? "(untagged)" : recorder.transfer_label(transfer);
    row.totals = totals;
    rows.push_back(std::move(row));
  }
  return finish(std::move(rows));
}

std::map<std::int64_t, Anchor> plan_anchors(const zir::Program& program,
                                            const comm::CommPlan& plan) {
  std::map<std::int64_t, Anchor> anchors;
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) {
    const comm::BlockPlan& block = plan.blocks[b];
    for (const comm::CommGroup& group : block.groups) {
      Anchor a;
      a.block = static_cast<int>(b);
      a.proc = program.proc(block.proc).name;
      if (group.first_use >= 0 && group.first_use < static_cast<int>(block.stmts.size())) {
        a.use_line = program.stmt(block.stmts[static_cast<std::size_t>(group.first_use)]).loc.line;
      }
      anchors[group.transfer_id] = std::move(a);
    }
  }
  return anchors;
}

BlameReport compute_blame(const trace::Recorder& recorder, const zir::Program& program,
                          const comm::CommPlan& plan) {
  BlameReport report = compute_blame(recorder);
  const std::map<std::int64_t, Anchor> anchors = plan_anchors(program, plan);

  // Member ids per lead id, from the plan.
  std::map<std::int64_t, std::vector<int>> members;
  for (const comm::BlockPlan& block : plan.blocks) {
    for (const comm::CommGroup& group : block.groups) {
      std::vector<int>& ids = members[group.transfer_id];
      for (const comm::Member& m : group.members) ids.push_back(m.transfer_id);
    }
  }
  for (BlameRow& row : report.rows) {
    if (const auto it = anchors.find(row.transfer); it != anchors.end()) row.anchor = it->second;
    if (const auto it = members.find(row.transfer); it != members.end()) row.members = it->second;
  }
  return report;
}

std::string BlameReport::to_string(int top_n) const {
  std::ostringstream os;
  os << "blame: " << rows.size() << " communications, exposed overhead "
     << str::format_f(total_exposed_seconds * 1e3, 3) << " ms (wire exposed "
     << str::format_f(wire.exposed_seconds * 1e3, 3) << " ms of "
     << str::format_f(wire.wire_seconds * 1e3, 3) << " ms)\n";
  std::size_t shown = rows.size();
  if (top_n >= 0) shown = std::min(shown, static_cast<std::size_t>(top_n));
  for (std::size_t i = 0; i < shown; ++i) {
    const BlameRow& row = rows[i];
    os << "  #" << row.transfer;
    if (!row.label.empty()) os << " " << row.label;
    if (!row.anchor.proc.empty()) {
      os << " (" << row.anchor.proc;
      if (row.anchor.use_line > 0) os << ":" << row.anchor.use_line;
      os << ")";
    }
    os << ": " << str::format_f(row.exposed_overhead_seconds() * 1e3, 3) << " ms exposed ("
       << str::format_f(row.wait_seconds() * 1e3, 3) << " wait + "
       << str::format_f(row.cpu_seconds() * 1e3, 3) << " cpu), wire exposed "
       << str::format_f(row.totals.wire.exposed_seconds * 1e3, 3) << " / "
       << str::format_f(row.totals.wire.wire_seconds * 1e3, 3) << " ms, "
       << str::with_commas(row.totals.messages) << " msgs, "
       << str::with_commas(row.totals.bytes) << " B";
    if (row.members.size() > 1) os << ", " << row.members.size() << " members";
    os << "\n";
  }
  if (shown < rows.size()) {
    os << "  ... " << rows.size() - shown << " more (see --blame with a larger top count)\n";
  }
  return os.str();
}

std::string BlameReport::to_csv() const {
  CsvWriter csv({"transfer", "label", "proc", "use_line", "members", "messages", "bytes",
                 "exposed_overhead_seconds", "wait_seconds", "cpu_seconds", "wire_seconds",
                 "exposed_wire_seconds", "overlapped_wire_seconds"});
  for (const BlameRow& row : rows) {
    std::vector<std::string> ids;
    ids.reserve(row.members.size());
    for (int id : row.members) ids.push_back(std::to_string(id));
    csv.add_row({std::to_string(row.transfer), row.label, row.anchor.proc,
                 std::to_string(row.anchor.use_line), str::join(ids, "+"),
                 std::to_string(row.totals.messages), std::to_string(row.totals.bytes),
                 seconds_str(row.exposed_overhead_seconds()), seconds_str(row.wait_seconds()),
                 seconds_str(row.cpu_seconds()), seconds_str(row.totals.wire.wire_seconds),
                 seconds_str(row.totals.wire.exposed_seconds),
                 seconds_str(row.totals.wire.overlapped_seconds)});
  }
  return csv.to_string();
}

json::Value BlameReport::to_json(int top_n) const {
  json::Value v = json::Value::make_object();
  v["total_exposed_seconds"] = json::Value::make_num(total_exposed_seconds);
  v["untagged_exposed_seconds"] = json::Value::make_num(untagged_exposed_seconds);
  v["wire_seconds"] = json::Value::make_num(wire.wire_seconds);
  v["exposed_wire_seconds"] = json::Value::make_num(wire.exposed_seconds);
  v["overlapped_wire_seconds"] = json::Value::make_num(wire.overlapped_seconds);
  v["communications"] = json::Value::make_int(static_cast<long long>(rows.size()));
  std::size_t shown = rows.size();
  if (top_n >= 0) shown = std::min(shown, static_cast<std::size_t>(top_n));
  v["truncated"] = json::Value::make_bool(shown < rows.size());
  json::Value arr = json::Value::make_array();
  for (std::size_t i = 0; i < shown; ++i) {
    const BlameRow& row = rows[i];
    json::Value r = json::Value::make_object();
    r["transfer"] = json::Value::make_int(row.transfer);
    r["label"] = json::Value::make_str(row.label);
    if (!row.anchor.proc.empty()) {
      r["proc"] = json::Value::make_str(row.anchor.proc);
      r["block"] = json::Value::make_int(row.anchor.block);
      r["use_line"] = json::Value::make_int(row.anchor.use_line);
    }
    if (!row.members.empty()) {
      json::Value ids = json::Value::make_array();
      for (int id : row.members) ids.push_back(json::Value::make_int(id));
      r["members"] = std::move(ids);
    }
    r["messages"] = json::Value::make_int(row.totals.messages);
    r["bytes"] = json::Value::make_int(row.totals.bytes);
    r["exposed_overhead_seconds"] = json::Value::make_num(row.exposed_overhead_seconds());
    r["wait_seconds"] = json::Value::make_num(row.wait_seconds());
    r["cpu_seconds"] = json::Value::make_num(row.cpu_seconds());
    r["wire_seconds"] = json::Value::make_num(row.totals.wire.wire_seconds);
    r["exposed_wire_seconds"] = json::Value::make_num(row.totals.wire.exposed_seconds);
    r["overlapped_wire_seconds"] = json::Value::make_num(row.totals.wire.overlapped_seconds);
    json::Value calls = json::Value::make_object();
    for (std::size_t c = 0; c < kCalls.size(); ++c) {
      const trace::CallTotals& ct = row.totals.per_call[c];
      if (ct.calls == 0) continue;
      json::Value cv = json::Value::make_object();
      cv["calls"] = json::Value::make_int(ct.calls);
      cv["wait_seconds"] = json::Value::make_num(ct.wait_seconds);
      cv["cpu_seconds"] = json::Value::make_num(ct.cpu_seconds);
      calls[ironman::to_string(kCalls[c])] = std::move(cv);
    }
    r["per_call"] = std::move(calls);
    arr.push_back(std::move(r));
  }
  v["rows"] = std::move(arr);
  return v;
}

}  // namespace zc::analysis
