// Differential attribution: run the same program twice at different
// optimization settings, blame both traces, and decompose the end-to-end
// exposed-overhead delta into per-decision savings.
//
// Matching is exact, not fuzzy: transfer ids are assigned by the generation
// pass, which is option-independent, so the same program yields the same
// ids at every OptLevel. Two runs' blame rows are joined into connected
// components (union-find over member transfer ids: each row links its
// members), and every component is classified by what the optimizer did
// between the two settings:
//
//   removed       ids communicated before, absent after (redundant removal)
//   merged        several communications before, fewer after (combination)
//   repositioned  same communications, different cost (pipelining /
//                 placement / library changes)
//   unchanged     same communications, same cost
//   appeared      communicated after but not before (does not arise
//                 between levels of the paper's pipeline)
//
// Because the components partition the rows of both reports, per-component
// savings plus the untagged delta sum exactly to the end-to-end exposed
// delta — the conservation law tests/analysis_test.cpp pins for mv vs.
// mv+rr+cc+pl on the paper benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/blame.h"
#include "src/support/json.h"

namespace zc::analysis {

enum class ComponentKind {
  kRemoved,
  kMerged,
  kRepositioned,
  kUnchanged,
  kAppeared,
};

[[nodiscard]] const char* to_string(ComponentKind kind);

/// One connected set of transfers across the two runs.
struct DiffComponent {
  ComponentKind kind = ComponentKind::kUnchanged;
  std::vector<int> transfers;  ///< sorted member transfer ids
  std::string label;           ///< representative label (before side preferred)
  Anchor anchor;               ///< representative anchor (before side preferred)
  int rows_before = 0;         ///< communications in the before run
  int rows_after = 0;          ///< communications in the after run
  double before_seconds = 0.0; ///< exposed overhead in the before run
  double after_seconds = 0.0;  ///< exposed overhead in the after run

  [[nodiscard]] double savings_seconds() const { return before_seconds - after_seconds; }
};

struct BlameDiff {
  std::string name_before;
  std::string name_after;
  double before_total_seconds = 0.0;  ///< BlameReport::total_exposed_seconds
  double after_total_seconds = 0.0;
  double untagged_savings_seconds = 0.0;  ///< before-after delta of untagged rows

  /// Components sorted by savings descending. Their savings plus the
  /// untagged delta equal total_savings_seconds() exactly (partition).
  std::vector<DiffComponent> components;

  [[nodiscard]] double total_savings_seconds() const {
    return before_total_seconds - after_total_seconds;
  }

  [[nodiscard]] std::string to_string(int top_n = -1) const;
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] json::Value to_json(int top_n = -1) const;
};

/// Joins two blame reports of the SAME program (ids must come from the same
/// generation pass; both reports need plan-joined member lists).
[[nodiscard]] BlameDiff diff_blame(const BlameReport& before, const BlameReport& after,
                                   std::string name_before = "before",
                                   std::string name_after = "after");

}  // namespace zc::analysis
