// Critical-path analysis over a recorded trace: the longest chain of
// simulated dependences that determines the run's finish time, and how much
// of it each communication occupies.
//
// The engine's timing (either core — lockstep and event-driven emit
// bit-identical traces) is a constraint system — compute spans and
// IRONMAN CPU costs advance one processor's clock, messages carry time
// across processors (a DN that waited was bound by its message's wire
// transit, which was bound by the SR that sent it), and barriers bind every
// clock to the latest participant. The walk starts at the event with the
// latest end time and follows the binding constraint backward:
//
//   call CPU span      -> continue on the same processor at t_unblocked
//   DN with wait > 0   -> the message's wire transit, then hop to the
//                         sending SR (messages pair with DN events FIFO per
//                         channel (chan, src, dst), mirroring the
//                         Transport's arrival queues)
//   SR/SV with wait    -> a wait segment (gated send / drain), same proc
//   barrier            -> hop to the binding participant (latest t_begin
//                         of the k-th barrier across processors)
//   gap between events -> untracked (scalar statements and loop
//                         bookkeeping advance clocks without records)
//
// Per-transfer slack is the dual: the minimum over a transfer's messages of
// how long each sat consumed-ready before its DN began. Zero slack means
// some message bound its receiver — more pipelining distance could pay;
// positive slack means the transfer's wire time was fully hidden with
// margin.
//
// The walk needs the detailed event buffers; when the recorder dropped
// records at a cap the FIFO pairing loses alignment, so the report
// degrades honestly: `exact` turns false and only the totals survive.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/blame.h"
#include "src/support/json.h"
#include "src/trace/recorder.h"

namespace zc::analysis {

/// One hop of the critical path (chronological after the walk reverses).
struct PathSegment {
  enum class Kind {
    kCompute,    ///< array-statement local work
    kCallCpu,    ///< software overhead inside an IRONMAN call
    kCallWait,   ///< blocked inside SR/SV (gated send, drain) — on-proc wait
    kWire,       ///< message transit binding a DN
    kBarrier,    ///< global synch / reduction combine
    kUntracked,  ///< clock advance with no event (scalar statements)
  };
  Kind kind = Kind::kUntracked;
  int proc = -1;                ///< owning processor (source proc for kWire)
  std::int64_t transfer = -1;   ///< for kCallCpu/kCallWait/kWire
  ironman::IronmanCall call = ironman::IronmanCall::kDR;  ///< kCallCpu/kCallWait
  double t_begin = 0.0;
  double t_end = 0.0;

  [[nodiscard]] double seconds() const { return t_end - t_begin; }
};

/// One communication's presence on the path, plus its scheduling slack.
struct PathTransfer {
  std::int64_t transfer = -1;
  std::string label;
  Anchor anchor;               ///< filled when a plan was joined
  double path_seconds = 0.0;   ///< time on the critical path (cpu+wait+wire)
  double slack_seconds = 0.0;  ///< min over messages of (dn.t_begin - t_arrived)+
  long long messages = 0;      ///< consumed messages seen for this transfer
  bool on_path = false;
};

struct CriticalPathReport {
  double makespan = 0.0;  ///< latest event end (== elapsed minus untracked tail)
  bool exact = true;      ///< false when detail buffers were capped (no walk)

  std::vector<PathSegment> segments;  ///< chronological

  // Path time by kind (sums to makespan when exact).
  double compute_seconds = 0.0;
  double call_cpu_seconds = 0.0;
  double call_wait_seconds = 0.0;
  double wire_seconds = 0.0;
  double barrier_seconds = 0.0;
  double untracked_seconds = 0.0;

  /// Every transfer with consumed messages, path occupants first (sorted by
  /// path time descending, then slack ascending).
  std::vector<PathTransfer> transfers;

  [[nodiscard]] std::string to_string(int top_n = -1) const;
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] json::Value to_json(int top_n = -1) const;
};

/// Walks the recorded constraint chain. Labels come from the recorder.
[[nodiscard]] CriticalPathReport compute_critical_path(const trace::Recorder& recorder);

/// Same, with plan/source anchors joined onto the per-transfer rows.
[[nodiscard]] CriticalPathReport compute_critical_path(const trace::Recorder& recorder,
                                                       const zir::Program& program,
                                                       const comm::CommPlan& plan);

}  // namespace zc::analysis
