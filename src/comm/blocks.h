// Basic-block discovery: walks every procedure reachable from the entry and
// returns the source-level basic blocks — maximal runs of array/scalar
// assignment statements not interrupted by control flow (for/if/call).
#pragma once

#include <vector>

#include "src/zir/program.h"

namespace zc::comm {

struct Block {
  zir::ProcId proc;
  std::vector<zir::StmtId> stmts;
};

/// Blocks are returned in a deterministic order: procedures in reachability
/// (DFS) order from the entry, blocks in body order, outer-before-inner.
/// Each reachable procedure is visited exactly once (a procedure called from
/// two sites contributes its blocks once, matching a static count).
std::vector<Block> find_blocks(const zir::Program& program);

}  // namespace zc::comm
