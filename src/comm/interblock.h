// Extension: communication optimization across basic-block boundaries —
// the paper's first future-work item ("we may want to employ a standard
// data flow analysis algorithm to apply optimizations across basic block
// boundaries", §4).
//
// A forward dataflow walk over the program's execution structure carries
// the cached-slices state across block boundaries: a transfer is redundant
// if ANY path-dominating earlier transfer communicated a covering slice of
// the same (array, direction) and no write intervened. The analysis is
// conservative at control flow:
//   - loop entry/exit clear the cache (the body may write anything);
//     within one body iteration the state flows block to block;
//   - both branches of an `if` start from the pre-branch state; the cache
//     is cleared at the join;
//   - a procedure call invalidates every array in the callee's transitive
//     mod-set; callee bodies are analyzed once with an empty entry state
//     (their marks must hold for every call site).
#pragma once

#include <set>
#include <vector>

#include "src/comm/plan.h"
#include "src/report/passlog.h"

namespace zc::comm {

/// Arrays written (transitively, through calls) by `proc`'s body.
std::set<zir::ArrayId> mod_set(const zir::Program& program, zir::ProcId proc);

/// Marks additional transfers redundant across block boundaries. Must run
/// after per-block generation and intra-block removal, before grouping;
/// `plan.rebuild_index()` must have been called. `log`, when given, records
/// one RRDecision (inter_block = true) per kill.
void apply_inter_block_removal(const zir::Program& program, CommPlan& plan,
                               report::PassLog* log = nullptr);

}  // namespace zc::comm
