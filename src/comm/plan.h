// The communication plan: the optimizer's output, consumed by the SPMD
// lowering in src/runtime and by the static-count reporting.
//
// Terminology follows the paper: a *transfer* is the need for one array's
// non-local slice at one use site; a *communication* (CommGroup here) is the
// set of IRONMAN calls performing one data transfer, possibly carrying
// several combined transfers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/zir/program.h"

namespace zc::comm {

/// One (array, direction) requirement at a use statement, with the feasible
/// send interval derived from def/use analysis within the basic block.
struct Transfer {
  zir::ArrayId array;
  zir::DirectionId direction;
  /// Plan-unique identity, assigned in generation order (block-major) before
  /// any optimization runs. Generation is option-independent, so the same
  /// program yields the same ids at every OptLevel — this is what lets the
  /// attribution layer (src/analysis) match transfers across two runs and
  /// map trace records back to the plan.
  int transfer_id = -1;
  int use_stmt = 0;       ///< block-relative index of the first use
  int earliest_send = 0;  ///< block-relative insertion point (0 = block top)
  bool redundant = false; ///< removed by redundant-communication removal

  /// The latest legal receive point (an insertion point, = use_stmt).
  [[nodiscard]] int latest_recv() const { return use_stmt; }
};

/// One member of a communication: which array slice it carries and the
/// statement whose region defines that slice.
struct Member {
  zir::ArrayId array;
  int use_stmt = 0;      ///< block-relative index of the defining use
  int transfer_id = -1;  ///< the member's originating Transfer::transfer_id
};

/// One actual communication: DR/SR/DN/SV call positions plus the member
/// arrays it carries. Positions are block-relative insertion points: value
/// `p` means "immediately before the block's p-th statement" (p == size
/// means end of block).
struct CommGroup {
  int id = 0;  ///< program-unique, for tracing and tests
  /// The lead (first) member's Transfer::transfer_id — the stable identity
  /// the simulator stamps into trace records. Unique per group: a transfer
  /// joins at most one group.
  int transfer_id = -1;
  zir::DirectionId direction;
  std::vector<Member> members;
  int dr_pos = 0;
  int sr_pos = 0;
  int dn_pos = 0;
  int sv_pos = 0;
  int first_use = 0;      ///< min over members of use_stmt
  int earliest_send = 0;  ///< max over members of Transfer::earliest_send

  /// Latency-hiding window in statements (0 when not pipelined).
  [[nodiscard]] int window() const { return dn_pos - sr_pos; }

  [[nodiscard]] bool has_member(zir::ArrayId array) const;
};

/// The plan for one source-level basic block: a run of array/scalar
/// assignment statements uninterrupted by control flow (paper §3.1).
struct BlockPlan {
  zir::ProcId proc;                 ///< procedure containing the block
  std::vector<zir::StmtId> stmts;   ///< the block's statements, in order
  std::vector<Transfer> transfers;  ///< after generation (+ rr marking)
  std::vector<CommGroup> groups;    ///< final communications

  [[nodiscard]] int live_transfer_count() const;
};

/// The whole-program plan.
struct CommPlan {
  std::vector<BlockPlan> blocks;

  /// The paper's "static count": communications in the program text.
  [[nodiscard]] int static_count() const;

  /// Transfers before any removal (the baseline static count equals this
  /// when no optimization is enabled).
  [[nodiscard]] int total_transfer_count() const;

  /// Looks up the plan for the block starting at `first_stmt`; nullptr if
  /// that statement does not start a planned block.
  [[nodiscard]] const BlockPlan* find_block(zir::StmtId first_stmt) const;

  /// Index from first-statement id, built once after planning.
  void rebuild_index();

 private:
  std::map<zir::StmtId, std::size_t> index_;
};

/// Renders the plan as annotated pseudo-SPMD source, in the style of the
/// paper's Figure 1 (send/receive lines interleaved with statements).
std::string to_string(const CommPlan& plan, const zir::Program& program);

}  // namespace zc::comm
