#include "src/comm/blocks.h"

#include <unordered_set>

#include "src/support/check.h"

namespace zc::comm {

namespace {

class BlockFinder {
 public:
  explicit BlockFinder(const zir::Program& program) : p_(program) {}

  std::vector<Block> run() {
    visit_proc(p_.entry());
    return std::move(blocks_);
  }

 private:
  void visit_proc(zir::ProcId id) {
    if (!id.valid() || visited_.count(id.value) != 0) return;
    visited_.insert(id.value);
    visit_body(id, p_.proc(id).body);
  }

  void visit_body(zir::ProcId proc, const std::vector<zir::StmtId>& body) {
    Block current{proc, {}};
    auto flush = [&] {
      if (!current.stmts.empty()) {
        blocks_.push_back(std::move(current));
        current = Block{proc, {}};
      }
    };

    std::vector<zir::ProcId> callees;
    std::vector<const std::vector<zir::StmtId>*> nested;
    for (zir::StmtId sid : body) {
      const zir::Stmt& s = p_.stmt(sid);
      switch (s.kind) {
        case zir::Stmt::Kind::kArrayAssign:
        case zir::Stmt::Kind::kScalarAssign:
          current.stmts.push_back(sid);
          break;
        case zir::Stmt::Kind::kFor:
          flush();
          nested.push_back(&s.body);
          break;
        case zir::Stmt::Kind::kIf:
          flush();
          nested.push_back(&s.body);
          if (!s.else_body.empty()) nested.push_back(&s.else_body);
          break;
        case zir::Stmt::Kind::kCall:
          flush();
          callees.push_back(s.callee);
          break;
      }
    }
    flush();

    // Outer blocks of this body first, then nested bodies, then callees —
    // purely a deterministic reporting order.
    for (const auto* b : nested) visit_body(proc, *b);
    for (zir::ProcId callee : callees) visit_proc(callee);
  }

  const zir::Program& p_;
  std::unordered_set<int32_t> visited_;
  std::vector<Block> blocks_;
};

}  // namespace

std::vector<Block> find_blocks(const zir::Program& program) { return BlockFinder(program).run(); }

}  // namespace zc::comm
