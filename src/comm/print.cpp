#include <sstream>

#include "src/comm/plan.h"
#include "src/support/str.h"
#include "src/zir/printer.h"

namespace zc::comm {

namespace {

/// Comma-separated member list, e.g. "B, E".
std::string member_list(const zir::Program& p, const CommGroup& g) {
  std::vector<std::string> names;
  names.reserve(g.members.size());
  for (const Member& m : g.members) names.push_back(p.array(m.array).name);
  return str::join(names, ", ");
}

}  // namespace

std::string to_string(const CommPlan& plan, const zir::Program& program) {
  std::ostringstream os;
  for (std::size_t bi = 0; bi < plan.blocks.size(); ++bi) {
    const BlockPlan& b = plan.blocks[bi];
    os << "-- block " << bi << " in " << program.proc(b.proc).name << " ("
       << b.transfers.size() << " transfers, " << b.groups.size() << " communications)\n";

    const int n = static_cast<int>(b.stmts.size());
    for (int pos = 0; pos <= n; ++pos) {
      // IRONMAN calls at this insertion point: receives-side setup and sends
      // first, then completions, deterministically by group id.
      for (const CommGroup& g : b.groups) {
        if (g.dr_pos == pos) {
          os << "  DR(" << member_list(program, g) << ", "
             << program.direction(g.direction).name << ")   -- comm " << g.id << "\n";
        }
        if (g.sr_pos == pos) {
          os << "  SR(" << member_list(program, g) << ", "
             << program.direction(g.direction).name << ")   -- comm " << g.id << "\n";
        }
      }
      for (const CommGroup& g : b.groups) {
        if (g.dn_pos == pos) {
          os << "  DN(" << member_list(program, g) << ", "
             << program.direction(g.direction).name << ")   -- comm " << g.id << "\n";
        }
        if (g.sv_pos == pos) {
          os << "  SV(" << member_list(program, g) << ", "
             << program.direction(g.direction).name << ")   -- comm " << g.id << "\n";
        }
      }
      if (pos < n) {
        std::string text = zir::stmt_to_string(program, b.stmts[pos], 1);
        // Annotate removed-redundant uses on the statement line.
        for (const Transfer& t : b.transfers) {
          if (t.redundant && t.use_stmt == pos) {
            text.insert(text.size() - 1, "  -- redundant: " + program.array(t.array).name + "@" +
                                             program.direction(t.direction).name);
            break;
          }
        }
        os << text;
      }
    }
  }
  return os.str();
}

}  // namespace zc::comm
