#include "src/comm/optimizer.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/comm/interblock.h"
#include "src/prof/prof.h"
#include "src/support/check.h"
#include "src/support/metrics.h"

namespace zc::comm {

report::BlockRef block_provenance(const zir::Program& program, zir::ProcId proc,
                                  const std::vector<zir::StmtId>& stmts, int block_index) {
  report::BlockRef ref;
  ref.block = block_index;
  ref.proc = program.proc(proc).name;
  if (!stmts.empty()) ref.first_line = program.stmt(stmts.front()).loc.line;
  return ref;
}

std::string to_string(OptLevel level) {
  switch (level) {
    case OptLevel::kBaseline: return "baseline";
    case OptLevel::kRR: return "rr";
    case OptLevel::kCC: return "cc";
    case OptLevel::kPL: return "pl";
  }
  return "?";
}

std::string to_string(CombineHeuristic heuristic) {
  switch (heuristic) {
    case CombineHeuristic::kMaxCombining: return "max-combining";
    case CombineHeuristic::kMaxLatency: return "max-latency";
    case CombineHeuristic::kNested: return "nested";
    case CombineHeuristic::kHybrid: return "hybrid";
  }
  return "?";
}

bool needs_comm(const zir::DirectionDecl& direction) {
  const int distributed_dims = std::min(direction.rank(), 2);
  for (int k = 0; k < distributed_dims; ++k) {
    if (direction.offsets[k] != 0) return true;
  }
  return false;
}

bool CommGroup::has_member(zir::ArrayId array) const {
  for (const Member& m : members) {
    if (m.array == array) return true;
  }
  return false;
}

int BlockPlan::live_transfer_count() const {
  int n = 0;
  for (const Transfer& t : transfers) n += t.redundant ? 0 : 1;
  return n;
}

int CommPlan::static_count() const {
  int n = 0;
  for (const BlockPlan& b : blocks) n += static_cast<int>(b.groups.size());
  return n;
}

int CommPlan::total_transfer_count() const {
  int n = 0;
  for (const BlockPlan& b : blocks) n += static_cast<int>(b.transfers.size());
  return n;
}

void CommPlan::rebuild_index() {
  index_.clear();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (!blocks[i].stmts.empty()) index_[blocks[i].stmts.front()] = i;
  }
}

const BlockPlan* CommPlan::find_block(zir::StmtId first_stmt) const {
  const auto it = index_.find(first_stmt);
  return it == index_.end() ? nullptr : &blocks[it->second];
}

namespace {

/// The arrays a block statement writes (at most one: its LHS array).
zir::ArrayId written_array(const zir::Program& p, zir::StmtId sid) {
  const zir::Stmt& s = p.stmt(sid);
  if (s.kind == zir::Stmt::Kind::kArrayAssign) return s.lhs_array;
  return zir::ArrayId{};
}

}  // namespace

std::vector<Transfer> generate_transfers(const zir::Program& program, const Block& block) {
  ZC_PROF_SPAN("opt/generate");
  std::vector<Transfer> transfers;
  std::map<zir::ArrayId, int> last_write;  // block-relative stmt index of last write

  for (int s = 0; s < static_cast<int>(block.stmts.size()); ++s) {
    const zir::Stmt& stmt = program.stmt(block.stmts[s]);
    ZC_ASSERT(stmt.kind == zir::Stmt::Kind::kArrayAssign ||
              stmt.kind == zir::Stmt::Kind::kScalarAssign);

    for (const zir::ShiftRef& ref : collect_shift_refs(program, stmt.rhs)) {
      if (!needs_comm(program.direction(ref.direction))) continue;
      Transfer t;
      t.array = ref.array;
      t.direction = ref.direction;
      t.use_stmt = s;
      const auto it = last_write.find(ref.array);
      // Whole-array semantics: the RHS is read before the LHS is written, so
      // a write at statement w allows a send at insertion point w+1.
      t.earliest_send = it == last_write.end() ? 0 : it->second + 1;
      transfers.push_back(t);
    }

    const zir::ArrayId w = written_array(program, block.stmts[s]);
    if (w.valid()) last_write[w] = s;
  }
  return transfers;
}

namespace {

/// Structural equality of region specs.
bool region_specs_equal(const zir::RegionSpec& a, const zir::RegionSpec& b) {
  if (a.rank() != b.rank()) return false;
  for (int d = 0; d < a.rank(); ++d) {
    if (!a.dims[d].lo.equals(b.dims[d].lo) || !a.dims[d].hi.equals(b.dims[d].hi)) return false;
  }
  return true;
}

/// True if a slice communicated for a use over `cached` is guaranteed to
/// cover a later use over `use`: structurally identical regions always
/// cover; otherwise both must be static and `cached` must contain `use`.
bool region_covers(const zir::Program& program, const zir::RegionSpec& cached,
                   const zir::RegionSpec& use) {
  if (region_specs_equal(cached, use)) return true;
  if (!cached.is_static() || !use.is_static()) return false;
  const zir::IntEnv env = program.default_env();
  long long lo_c = 0;
  long long hi_c = 0;
  long long lo_u = 0;
  long long hi_u = 0;
  if (cached.rank() != use.rank()) return false;
  for (int d = 0; d < cached.rank(); ++d) {
    lo_c = cached.dims[d].lo.eval(env);
    hi_c = cached.dims[d].hi.eval(env);
    lo_u = use.dims[d].lo.eval(env);
    hi_u = use.dims[d].hi.eval(env);
    if (lo_u < lo_c || hi_u > hi_c) return false;
  }
  return true;
}

const zir::RegionSpec& stmt_region(const zir::Program& program, const Block& block, int s) {
  const zir::Stmt& stmt = program.stmt(block.stmts[s]);
  ZC_ASSERT(stmt.region.has_value());
  return *stmt.region;
}

}  // namespace

void apply_redundant_removal(const zir::Program& program, const Block& block,
                             std::vector<Transfer>& transfers, report::PassLog* log,
                             int block_index) {
  ZC_PROF_SPAN("opt/rr");
  // Sweep the block: a transfer is redundant iff the same (array, direction)
  // slice was communicated earlier over a region covering this use, and the
  // array has not been written since (paper §2 / §3.1). Caching state resets
  // at block boundaries because the analysis is intra-block.
  struct CachedSlice {
    const zir::RegionSpec* spec;
    int transfer;  ///< index of the transfer that communicated the slice
  };
  std::map<std::pair<int32_t, int32_t>, std::vector<CachedSlice>> cached;
  std::size_t next = 0;
  for (int s = 0; s < static_cast<int>(block.stmts.size()); ++s) {
    for (; next < transfers.size() && transfers[next].use_stmt == s; ++next) {
      Transfer& t = transfers[next];
      const auto key = std::make_pair(t.array.value, t.direction.value);
      const zir::RegionSpec& use = stmt_region(program, block, s);
      const CachedSlice* coverer = nullptr;
      for (const CachedSlice& prior : cached[key]) {
        if (region_covers(program, *prior.spec, use)) {
          coverer = &prior;
          break;
        }
      }
      if (coverer != nullptr) {
        t.redundant = true;
        if (log != nullptr) {
          report::RRDecision d;
          d.where = block_provenance(program, block.proc, block.stmts, block_index);
          d.transfer = static_cast<int>(next);
          d.array = program.array(t.array).name;
          d.direction = program.direction(t.direction).name;
          d.use_stmt = s;
          d.use_line = program.stmt(block.stmts[s]).loc.line;
          d.covering_block = block_index;
          d.covering_transfer = coverer->transfer;
          log->rr.push_back(std::move(d));
        }
      } else {
        cached[key].push_back({&use, static_cast<int>(next)});
      }
    }
    const zir::ArrayId w = written_array(program, block.stmts[s]);
    if (w.valid()) {
      // Invalidate every cached slice of the written array.
      for (auto& [key, specs] : cached) {
        if (key.first == w.value) specs.clear();
      }
    }
  }
}

long long estimate_slice_elems(const zir::Program& program, const zir::RegionSpec& spec,
                               const zir::DirectionDecl& direction, int mesh_rows,
                               int mesh_cols) {
  const zir::IntEnv env = program.default_env();
  long long elems = 1;
  for (int k = 0; k < spec.rank(); ++k) {
    const int off = k < direction.rank() ? direction.offsets[k] : 0;
    if (off != 0) {
      elems *= std::abs(off);
      continue;
    }
    long long extent = 1;
    const zir::RangeSpec& r = spec.dims[k];
    if (r.lo.is_static() && r.hi.is_static()) {
      extent = std::max<long long>(0, r.hi.eval(env) - r.lo.eval(env) + 1);
    }
    // Dims 0 and 1 are distributed over the mesh; dim 2 is processor-local.
    if (k == 0) extent = (extent + mesh_rows - 1) / mesh_rows;
    if (k == 1) extent = (extent + mesh_cols - 1) / mesh_cols;
    elems *= std::max<long long>(1, extent);
  }
  return elems;
}

namespace {

/// Internal grouping state: a CommGroup plus the data needed for legality
/// and heuristic checks while merging.
struct OpenGroup {
  CommGroup group;
  long long est_elems = 0;     ///< per-processor element estimate (hybrid)
  int max_member_window = 0;   ///< largest single-member feasible window
};

/// Feasible window of a transfer, in statements.
int transfer_window(const Transfer& t) { return t.use_stmt - t.earliest_send; }

/// The use-site region of the statement a transfer first feeds.
const zir::RegionSpec& use_region(const zir::Program& p, const Block& block, const Transfer& t) {
  const zir::Stmt& s = p.stmt(block.stmts[t.use_stmt]);
  ZC_ASSERT(s.region.has_value());
  return *s.region;
}

}  // namespace

std::vector<CommGroup> form_groups(const zir::Program& program, const Block& block,
                                   const std::vector<Transfer>& transfers,
                                   const OptOptions& options, int block_index) {
  ZC_PROF_SPAN("opt/cc");
  std::vector<OpenGroup> open;

  for (const Transfer& t : transfers) {
    if (t.redundant) continue;

    const long long t_elems =
        estimate_slice_elems(program, use_region(program, block, t),
                             program.direction(t.direction), options.est_mesh_rows,
                             options.est_mesh_cols);

    OpenGroup* host = nullptr;
    if (options.combine) {
      for (OpenGroup& g : open) {
        if (g.group.direction != t.direction) continue;
        // Never merge two transfers of the same array: that is redundancy
        // removal's job, not combination's (and is illegal when the array
        // was written in between, which is the only way duplicates survive
        // the rr pass).
        if (g.group.has_member(t.array)) continue;
        const int new_lo = std::max(g.group.earliest_send, t.earliest_send);
        const int new_hi = std::min(g.group.first_use, t.use_stmt);
        // Legality (paper §3.1): a single send point must exist that is
        // after every member's last write and before every member's use.
        if (new_lo > new_hi) continue;

        if (options.heuristic == CombineHeuristic::kMaxLatency) {
          // Combine only when no member's latency-hiding window shrinks:
          // the feasible intervals must coincide exactly (see options.h for
          // why this is the reading that matches the paper's Figure 11).
          if (t.earliest_send != g.group.earliest_send || t.use_stmt != g.group.first_use) {
            continue;
          }
        } else if (options.heuristic == CombineHeuristic::kNested) {
          // Ablation variant: allow complete nesting — the set's minimum
          // window is preserved, but the outer member's window shrinks.
          const bool t_in_g =
              t.earliest_send >= g.group.earliest_send && t.use_stmt <= g.group.first_use;
          const bool g_in_t =
              g.group.earliest_send >= t.earliest_send && g.group.first_use <= t.use_stmt;
          if (!t_in_g && !g_in_t) continue;
        } else if (options.heuristic == CombineHeuristic::kHybrid) {
          // Extension: respect the measured 4 KB knee and keep a usable
          // latency-hiding window.
          if (g.est_elems + t_elems > options.hybrid_max_elems) continue;
          const int max_window = std::max(g.max_member_window, transfer_window(t));
          if (static_cast<double>(new_hi - new_lo) <
              options.hybrid_min_window_fraction * static_cast<double>(max_window)) {
            continue;
          }
        }

        host = &g;
        break;
      }
    }

    if (host != nullptr) {
      host->group.members.push_back({t.array, t.use_stmt, t.transfer_id});
      host->group.earliest_send = std::max(host->group.earliest_send, t.earliest_send);
      host->group.first_use = std::min(host->group.first_use, t.use_stmt);
      host->est_elems += t_elems;
      host->max_member_window = std::max(host->max_member_window, transfer_window(t));
      if (options.pass_log != nullptr) {
        report::CCMerge m;
        m.where = block_provenance(program, block.proc, block.stmts, block_index);
        m.group = static_cast<int>(host - open.data());
        m.heuristic = to_string(options.heuristic);
        m.array = program.array(t.array).name;
        m.use_stmt = t.use_stmt;
        m.use_line = program.stmt(block.stmts[t.use_stmt]).loc.line;
        m.est_elems = t_elems;
        m.group_est_elems = host->est_elems;
        m.members_after = static_cast<int>(host->group.members.size());
        options.pass_log->cc.push_back(std::move(m));
      }
    } else {
      OpenGroup g;
      g.group.transfer_id = t.transfer_id;
      g.group.direction = t.direction;
      g.group.members = {{t.array, t.use_stmt, t.transfer_id}};
      g.group.earliest_send = t.earliest_send;
      g.group.first_use = t.use_stmt;
      g.est_elems = t_elems;
      g.max_member_window = transfer_window(t);
      open.push_back(std::move(g));
    }
  }

  std::vector<CommGroup> groups;
  groups.reserve(open.size());
  for (OpenGroup& g : open) groups.push_back(std::move(g.group));
  return groups;
}

void place_groups(const zir::Program& program, const Block& block,
                  std::vector<CommGroup>& groups, bool pipeline, report::PassLog* log,
                  int block_index) {
  ZC_PROF_SPAN("opt/pl");
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    CommGroup& g = groups[gi];
    g.sr_pos = pipeline ? g.earliest_send : g.first_use;
    g.dn_pos = g.first_use;
    g.dr_pos = g.sr_pos;

    // SV: the transmission must be complete before any member array is
    // overwritten. Find the first write to a member at or after the send.
    int sv = g.dn_pos;
    bool found = false;
    for (int s = g.sr_pos; s < static_cast<int>(block.stmts.size()) && !found; ++s) {
      const zir::ArrayId w = written_array(program, block.stmts[s]);
      if (!w.valid()) continue;
      if (g.has_member(w)) {
        sv = std::max(g.dn_pos, s);
        found = true;
      }
    }
    g.sv_pos = sv;

    if (log != nullptr) {
      report::PLPlacement p;
      p.where = block_provenance(program, block.proc, block.stmts, block_index);
      p.group = static_cast<int>(gi);
      p.direction = program.direction(g.direction).name;
      p.earliest_send = g.earliest_send;
      p.first_use = g.first_use;
      p.sr_pos = g.sr_pos;
      p.dn_pos = g.dn_pos;
      p.sv_pos = g.sv_pos;
      p.sr_hoist = g.first_use - g.sr_pos;
      p.pipelined = pipeline;
      log->pl.push_back(std::move(p));
    }
  }
}

CommPlan plan_communication(const zir::Program& program, const OptOptions& options) {
  ZC_PROF_SPAN("plan_communication");
  report::PassLog* log = options.pass_log;
  if (log != nullptr) log->clear();

  CommPlan plan;
  std::vector<Block> blocks = find_blocks(program);
  int next_transfer_id = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Block& block = blocks[i];
    BlockPlan bp;
    bp.proc = block.proc;
    bp.stmts = block.stmts;
    bp.transfers = generate_transfers(program, block);
    // Identity is assigned before any optimization touches the transfers:
    // generation is option-independent, so ids line up across OptLevels.
    for (Transfer& t : bp.transfers) t.transfer_id = next_transfer_id++;
    if (log != nullptr) {
      report::GenRecord g;
      g.where = block_provenance(program, block.proc, block.stmts, static_cast<int>(i));
      g.stmts = static_cast<int>(block.stmts.size());
      g.transfers = static_cast<int>(bp.transfers.size());
      log->generated.push_back(std::move(g));
    }
    if (options.remove_redundant) {
      apply_redundant_removal(program, block, bp.transfers, log, static_cast<int>(i));
    }
    plan.blocks.push_back(std::move(bp));
  }
  plan.rebuild_index();

  if (options.remove_redundant && options.inter_block) {
    apply_inter_block_removal(program, plan, log);
  }

  int next_id = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    BlockPlan& bp = plan.blocks[i];
    bp.groups = form_groups(program, blocks[i], bp.transfers, options, static_cast<int>(i));
    place_groups(program, blocks[i], bp.groups, options.pipeline, log, static_cast<int>(i));
    for (CommGroup& g : bp.groups) g.id = next_id++;
  }

  // An inter-block kill may have removed a transfer an intra-block decision
  // named as its coverer; re-point every decision at the live chain root.
  if (log != nullptr) log->resolve_rr_coverers();

  auto& reg = metrics::Registry::current();
  reg.count("opt.plans");
  reg.count("opt.transfers_generated", plan.total_transfer_count());
  int live = 0;
  for (const BlockPlan& bp : plan.blocks) live += bp.live_transfer_count();
  reg.count("opt.transfers_removed", plan.total_transfer_count() - live);
  reg.count("opt.groups_formed", plan.static_count());
  if (options.pipeline) {
    for (const BlockPlan& bp : plan.blocks) {
      for (const CommGroup& g : bp.groups) {
        reg.observe("opt.sr_hoist_stmts", static_cast<double>(g.first_use - g.sr_pos));
      }
    }
  }
  return plan;
}

}  // namespace zc::comm
