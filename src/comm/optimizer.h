// The machine-independent communication optimizer — the paper's core
// contribution. `plan_communication` runs the full pipeline; the individual
// passes are exported for unit testing.
//
// Pipeline (per source-level basic block):
//   1. generate_transfers      — naive generation with message vectorization:
//                                one transfer per shifted reference per
//                                statement (paper Figure 1(a); vectorization
//                                is inherent to the array IR, §2).
//   2. apply_redundant_removal — drop transfers whose (array, direction)
//                                slice is already cached and unmodified.
//   3. form_groups             — communication combination under the chosen
//                                heuristic (max-combining / max-latency /
//                                hybrid); without combining, one group per
//                                live transfer.
//   4. place_groups            — final DR/SR/DN/SV placement; pipelining
//                                pushes SR (and DR) up to the earliest legal
//                                point and leaves DN at the latest.
#pragma once

#include "src/comm/blocks.h"
#include "src/comm/options.h"
#include "src/comm/plan.h"
#include "src/report/passlog.h"

namespace zc::comm {

/// True if a shift by `direction` requires inter-processor communication
/// under the 2-D block distribution (dims 0 and 1 distributed, dim 2 of
/// rank-3 arrays processor-local).
bool needs_comm(const zir::DirectionDecl& direction);

/// Pass 1: transfers in statement order with feasible send intervals.
std::vector<Transfer> generate_transfers(const zir::Program& program, const Block& block);

/// Pass 2: marks redundant transfers (in place). `log`, when given, records
/// one RRDecision per kill (with `block_index` as the block's plan index).
void apply_redundant_removal(const zir::Program& program, const Block& block,
                             std::vector<Transfer>& transfers,
                             report::PassLog* log = nullptr, int block_index = -1);

/// Pass 3: groups live transfers into communications. Merge events go to
/// options.pass_log when set (`block_index` anchors them in the plan).
std::vector<CommGroup> form_groups(const zir::Program& program, const Block& block,
                                   const std::vector<Transfer>& transfers,
                                   const OptOptions& options, int block_index = -1);

/// Pass 4: assigns DR/SR/DN/SV positions (in place). `log`, when given,
/// records one PLPlacement per group.
void place_groups(const zir::Program& program, const Block& block,
                  std::vector<CommGroup>& groups, bool pipeline,
                  report::PassLog* log = nullptr, int block_index = -1);

/// Full pipeline over every reachable basic block.
CommPlan plan_communication(const zir::Program& program, const OptOptions& options);

/// Source anchor for provenance records: the block's plan index, enclosing
/// procedure name, and first statement's source line (shared by the
/// intra-block passes and the inter-block dataflow pass).
report::BlockRef block_provenance(const zir::Program& program, zir::ProcId proc,
                                  const std::vector<zir::StmtId>& stmts, int block_index);

/// Static per-processor element estimate for one member slice of a
/// communication in `direction` over a use region `spec` (used by the hybrid
/// heuristic and by reporting; loop-dependent extents estimate as 1).
long long estimate_slice_elems(const zir::Program& program, const zir::RegionSpec& spec,
                               const zir::DirectionDecl& direction, int mesh_rows, int mesh_cols);

}  // namespace zc::comm
