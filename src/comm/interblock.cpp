#include "src/comm/interblock.h"

#include <map>
#include <unordered_set>

#include "src/comm/optimizer.h"
#include "src/prof/prof.h"
#include "src/support/check.h"

namespace zc::comm {

namespace {

void mod_set_impl(const zir::Program& p, zir::ProcId proc, std::set<zir::ArrayId>& out,
                  std::unordered_set<int32_t>& visited, const std::vector<zir::StmtId>& body) {
  for (zir::StmtId sid : body) {
    const zir::Stmt& s = p.stmt(sid);
    switch (s.kind) {
      case zir::Stmt::Kind::kArrayAssign:
        out.insert(s.lhs_array);
        break;
      case zir::Stmt::Kind::kScalarAssign:
        break;
      case zir::Stmt::Kind::kFor:
        mod_set_impl(p, proc, out, visited, s.body);
        break;
      case zir::Stmt::Kind::kIf:
        mod_set_impl(p, proc, out, visited, s.body);
        mod_set_impl(p, proc, out, visited, s.else_body);
        break;
      case zir::Stmt::Kind::kCall:
        if (visited.insert(s.callee.value).second) {
          mod_set_impl(p, proc, out, visited, p.proc(s.callee).body);
        }
        break;
    }
  }
}

/// One cached slice: the communicated region plus the live transfer that
/// communicated it (for provenance records).
struct CachedSlice {
  const zir::RegionSpec* spec;
  int block;
  int transfer;
};

/// The dataflow state: cached (array, direction) slices with their regions.
using Cache = std::map<std::pair<int32_t, int32_t>, std::vector<CachedSlice>>;

/// Region-coverage check shared with the intra-block pass (duplicated here
/// deliberately: the intra pass is a paper-faithful standalone unit).
bool covers(const zir::Program& p, const zir::RegionSpec& cached, const zir::RegionSpec& use) {
  auto equal = [](const zir::RegionSpec& a, const zir::RegionSpec& b) {
    if (a.rank() != b.rank()) return false;
    for (int d = 0; d < a.rank(); ++d) {
      if (!a.dims[d].lo.equals(b.dims[d].lo) || !a.dims[d].hi.equals(b.dims[d].hi)) return false;
    }
    return true;
  };
  if (equal(cached, use)) return true;
  if (!cached.is_static() || !use.is_static() || cached.rank() != use.rank()) return false;
  const zir::IntEnv env = p.default_env();
  for (int d = 0; d < cached.rank(); ++d) {
    if (use.dims[d].lo.eval(env) < cached.dims[d].lo.eval(env) ||
        use.dims[d].hi.eval(env) > cached.dims[d].hi.eval(env)) {
      return false;
    }
  }
  return true;
}

class InterBlockAnalysis {
 public:
  InterBlockAnalysis(const zir::Program& p, CommPlan& plan, report::PassLog* log)
      : p_(p), plan_(plan), log_(log) {
    count_call_sites(p_.proc(p_.entry()).body);
  }

  void run() { visit_proc(p_.entry()); }

 private:
  void count_call_sites(const std::vector<zir::StmtId>& body) {
    for (zir::StmtId sid : body) {
      const zir::Stmt& s = p_.stmt(sid);
      switch (s.kind) {
        case zir::Stmt::Kind::kFor:
          count_call_sites(s.body);
          break;
        case zir::Stmt::Kind::kIf:
          count_call_sites(s.body);
          count_call_sites(s.else_body);
          break;
        case zir::Stmt::Kind::kCall: {
          const bool first = call_sites_.count(s.callee.value) == 0;
          ++call_sites_[s.callee.value];
          if (first) count_call_sites(p_.proc(s.callee).body);
          break;
        }
        default:
          break;
      }
    }
  }

  void visit_proc(zir::ProcId proc) {
    if (!proc.valid() || analyzed_.count(proc.value) != 0) return;
    analyzed_.insert(proc.value);
    // Marks in a multiply-called procedure must hold for every call site:
    // empty entry state. (Single-call-site procedures are analyzed inline
    // at their call, context-sensitively — see visit_body.)
    Cache cache;
    visit_body(p_.proc(proc).body, cache);
  }

  void invalidate(Cache& cache, zir::ArrayId array) {
    for (auto& [key, specs] : cache) {
      if (key.first == array.value) specs.clear();
    }
  }

  void visit_body(const std::vector<zir::StmtId>& body, Cache& cache) {
    std::size_t i = 0;
    while (i < body.size()) {
      const zir::Stmt& s = p_.stmt(body[i]);
      switch (s.kind) {
        case zir::Stmt::Kind::kArrayAssign:
        case zir::Stmt::Kind::kScalarAssign: {
          // An assign-run: flow through the block's transfers, marking
          // those covered by slices cached in EARLIER blocks.
          BlockPlan* bp = find_block_mutable(body[i]);
          ZC_ASSERT(bp != nullptr);
          flow_block(*bp, cache);
          i += bp->stmts.size();
          continue;
        }
        case zir::Stmt::Kind::kFor: {
          // Conservative: the body may modify anything on a back edge.
          cache.clear();
          visit_body(s.body, cache);
          cache.clear();
          break;
        }
        case zir::Stmt::Kind::kIf: {
          Cache then_cache = cache;
          visit_body(s.body, then_cache);
          Cache else_cache = cache;
          visit_body(s.else_body, else_cache);
          cache.clear();  // conservative join
          break;
        }
        case zir::Stmt::Kind::kCall: {
          if (call_sites_.at(s.callee.value) == 1 && analyzed_.count(s.callee.value) == 0) {
            // Context-sensitive: a procedure with a single call site flows
            // the caller's state through (and its writes/transfers update
            // the caller's state in turn).
            analyzed_.insert(s.callee.value);
            visit_body(p_.proc(s.callee).body, cache);
          } else {
            visit_proc(s.callee);
            for (zir::ArrayId a : mod_set(p_, s.callee)) invalidate(cache, a);
          }
          break;
        }
      }
      ++i;
    }
  }

  void flow_block(BlockPlan& bp, Cache& cache) {
    const int block_index = static_cast<int>(&bp - plan_.blocks.data());
    std::size_t next = 0;
    for (int s = 0; s < static_cast<int>(bp.stmts.size()); ++s) {
      const zir::Stmt& stmt = p_.stmt(bp.stmts[s]);
      for (; next < bp.transfers.size() && bp.transfers[next].use_stmt == s; ++next) {
        Transfer& t = bp.transfers[next];
        const auto key = std::make_pair(t.array.value, t.direction.value);
        ZC_ASSERT(stmt.region.has_value());
        if (!t.redundant) {
          const CachedSlice* coverer = nullptr;
          for (const CachedSlice& prior : cache[key]) {
            if (covers(p_, *prior.spec, *stmt.region)) {
              coverer = &prior;
              break;
            }
          }
          if (coverer != nullptr) {
            t.redundant = true;
            if (log_ != nullptr) {
              report::RRDecision d;
              d.where = block_provenance(p_, bp.proc, bp.stmts, block_index);
              d.transfer = static_cast<int>(next);
              d.array = p_.array(t.array).name;
              d.direction = p_.direction(t.direction).name;
              d.use_stmt = s;
              d.use_line = stmt.loc.line;
              d.inter_block = true;
              d.covering_block = coverer->block;
              d.covering_transfer = coverer->transfer;
              log_->rr.push_back(std::move(d));
            }
          } else {
            cache[key].push_back({&*stmt.region, block_index, static_cast<int>(next)});
          }
        }
        // Intra-block-redundant transfers ride on an earlier cached slice;
        // the cache entry for that slice is already present.
      }
      if (stmt.kind == zir::Stmt::Kind::kArrayAssign) invalidate(cache, stmt.lhs_array);
    }
  }

  BlockPlan* find_block_mutable(zir::StmtId first) {
    const BlockPlan* bp = plan_.find_block(first);
    return const_cast<BlockPlan*>(bp);
  }

  const zir::Program& p_;
  CommPlan& plan_;
  report::PassLog* log_;
  std::unordered_set<int32_t> analyzed_;
  std::map<int32_t, int> call_sites_;
};

}  // namespace

std::set<zir::ArrayId> mod_set(const zir::Program& program, zir::ProcId proc) {
  std::set<zir::ArrayId> out;
  std::unordered_set<int32_t> visited{proc.value};
  mod_set_impl(program, proc, out, visited, program.proc(proc).body);
  return out;
}

void apply_inter_block_removal(const zir::Program& program, CommPlan& plan,
                               report::PassLog* log) {
  ZC_PROF_SPAN("opt/interblock");
  InterBlockAnalysis(program, plan, log).run();
}

}  // namespace zc::comm
