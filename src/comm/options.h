// Optimizer configuration: the experiment key of the paper's Figure 9.
#pragma once

#include <string>

namespace zc::report {
class PassLog;
}  // namespace zc::report

namespace zc::comm {

/// Cumulative optimization levels exactly as in the paper (Figure 9):
/// each level includes everything before it.
enum class OptLevel {
  kBaseline,  ///< message vectorization only (naive generation)
  kRR,        ///< + redundant communication removal
  kCC,        ///< + communication combination
  kPL,        ///< + communication pipelining
};

/// How aggressively to combine communications (paper §2, Figure 2; the
/// hybrid is the paper's suggested future work, implemented as an extension).
enum class CombineHeuristic {
  kMaxCombining,  ///< combine whenever legal (paper's default)
  kMaxLatency,    ///< combine only when no member's latency-hiding window
                  ///< shrinks — the feasible send intervals must coincide.
                  ///< (This is the reading of the paper's "completely
                  ///< nested" rule that reproduces its Figure 11 counts:
                  ///< TOMCATV combines nothing under max-latency.)
  kNested,        ///< ablation: the looser literal reading — combine when
                  ///< one feasible interval nests inside the other, so the
                  ///< set's minimum window is preserved but an individual
                  ///< member's window may shrink
  kHybrid,        ///< extension: combine while the combined message stays
                  ///< under a machine-derived size cap and the window does
                  ///< not collapse below a fraction of the largest member's
};

struct OptOptions {
  bool remove_redundant = false;
  bool combine = false;
  bool pipeline = false;
  CombineHeuristic heuristic = CombineHeuristic::kMaxCombining;

  /// Extension (paper future work §4): redundant-communication removal
  /// across basic-block boundaries via a forward dataflow analysis.
  /// Requires remove_redundant.
  bool inter_block = false;

  // Hybrid-heuristic knobs (ignored by the other heuristics):
  /// Per-processor element cap for a combined message (512 doubles = the
  /// 4 KB knee measured in §3.2).
  long long hybrid_max_elems = 512;
  /// Refuse a merge that would shrink the group's latency-hiding window
  /// below this fraction of the largest member window.
  double hybrid_min_window_fraction = 0.5;
  /// Nominal processor-grid edge used for static size estimates.
  int est_mesh_rows = 8;
  int est_mesh_cols = 8;

  /// Optional pass-provenance sink (src/report/passlog.h): when set, every
  /// pass records its decisions here. Null by default; the passes do no
  /// recording at all then, and the produced plan is bit-identical whether
  /// or not a log is attached.
  report::PassLog* pass_log = nullptr;

  [[nodiscard]] static OptOptions for_level(OptLevel level) {
    OptOptions o;
    o.remove_redundant = level >= OptLevel::kRR;
    o.combine = level >= OptLevel::kCC;
    o.pipeline = level >= OptLevel::kPL;
    return o;
  }
};

[[nodiscard]] std::string to_string(OptLevel level);
[[nodiscard]] std::string to_string(CombineHeuristic heuristic);

}  // namespace zc::comm
