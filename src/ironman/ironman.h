// The IRONMAN architecture-independent communication interface
// (Chamberlain, Choi & Snyder 1996), as used by the paper.
//
// A single data transfer is four calls demarcating regions where the
// transfer may occur, named for the program state at each endpoint:
//   DR — destination ready to receive the transmission
//   SR — source ready for transmission
//   DN — transmitted data needed at the destination
//   SV — transmission must be completed at the source (data may become
//        volatile)
// At link time each call maps to a communication primitive or a no-op,
// per library (paper Figure 5). The simulator implements the primitives'
// timing and data-movement semantics in src/sim.
#pragma once

#include <string>

namespace zc::ironman {

enum class IronmanCall { kDR, kSR, kDN, kSV };

/// The communication libraries evaluated by the paper.
enum class CommLibrary {
  kNXSync,      ///< Paragon NX csend/crecv (basic message passing)
  kNXAsync,     ///< Paragon NX isend/irecv + msgwait (co-processor)
  kNXCallback,  ///< Paragon NX hsend/hrecv (callbacks)
  kPVM,         ///< T3D vendor-optimized PVM (message passing)
  kSHMEM,       ///< T3D SHMEM one-way communication (shmem_put)
};

/// The primitives the bindings map to. kSynchPost / kSynchWait are the two
/// halves of the prototype SHMEM synchronization the paper calls
/// "unnecessarily heavy-weight".
enum class Primitive {
  kNoOp,
  kCsend, kCrecv,
  kIsend, kIrecv, kMsgwaitSend, kMsgwaitRecv,
  kHsend, kHrecv, kHprobe,
  kPvmSend, kPvmRecv,
  kShmemPut, kSynchPost, kSynchWait,
};

/// The binding table of the paper's Figure 5.
Primitive binding(CommLibrary library, IronmanCall call);

/// Whether the primitive acts on the inbound channel (this processor as
/// destination) or the outbound channel (this processor as source).
enum class Endpoint { kNone, kSource, kDestination };
Endpoint endpoint_of(Primitive primitive);

std::string to_string(CommLibrary library);
std::string to_string(IronmanCall call);
std::string to_string(Primitive primitive);

}  // namespace zc::ironman
