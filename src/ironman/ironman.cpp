#include "src/ironman/ironman.h"

#include "src/support/check.h"

namespace zc::ironman {

Primitive binding(CommLibrary library, IronmanCall call) {
  // Paper Figure 5: IRONMAN bindings on the Paragon and T3D.
  switch (library) {
    case CommLibrary::kNXSync:
      switch (call) {
        case IronmanCall::kDR: return Primitive::kNoOp;
        case IronmanCall::kSR: return Primitive::kCsend;
        case IronmanCall::kDN: return Primitive::kCrecv;
        case IronmanCall::kSV: return Primitive::kNoOp;
      }
      break;
    case CommLibrary::kNXAsync:
      switch (call) {
        case IronmanCall::kDR: return Primitive::kIrecv;
        case IronmanCall::kSR: return Primitive::kIsend;
        case IronmanCall::kDN: return Primitive::kMsgwaitRecv;
        case IronmanCall::kSV: return Primitive::kMsgwaitSend;
      }
      break;
    case CommLibrary::kNXCallback:
      switch (call) {
        case IronmanCall::kDR: return Primitive::kHprobe;
        case IronmanCall::kSR: return Primitive::kHsend;
        case IronmanCall::kDN: return Primitive::kHrecv;
        case IronmanCall::kSV: return Primitive::kMsgwaitSend;
      }
      break;
    case CommLibrary::kPVM:
      switch (call) {
        case IronmanCall::kDR: return Primitive::kNoOp;
        case IronmanCall::kSR: return Primitive::kPvmSend;
        case IronmanCall::kDN: return Primitive::kPvmRecv;
        case IronmanCall::kSV: return Primitive::kNoOp;
      }
      break;
    case CommLibrary::kSHMEM:
      switch (call) {
        case IronmanCall::kDR: return Primitive::kSynchPost;
        case IronmanCall::kSR: return Primitive::kShmemPut;
        case IronmanCall::kDN: return Primitive::kSynchWait;
        case IronmanCall::kSV: return Primitive::kNoOp;
      }
      break;
  }
  ZC_ASSERT(false);
  return Primitive::kNoOp;
}

Endpoint endpoint_of(Primitive primitive) {
  switch (primitive) {
    case Primitive::kNoOp:
      return Endpoint::kNone;
    case Primitive::kCsend:
    case Primitive::kIsend:
    case Primitive::kMsgwaitSend:
    case Primitive::kHsend:
    case Primitive::kPvmSend:
    case Primitive::kShmemPut:
      return Endpoint::kSource;
    case Primitive::kCrecv:
    case Primitive::kIrecv:
    case Primitive::kMsgwaitRecv:
    case Primitive::kHrecv:
    case Primitive::kHprobe:
    case Primitive::kPvmRecv:
    case Primitive::kSynchPost:
    case Primitive::kSynchWait:
      return Endpoint::kDestination;
  }
  return Endpoint::kNone;
}

std::string to_string(CommLibrary library) {
  switch (library) {
    case CommLibrary::kNXSync: return "nx-csend/crecv";
    case CommLibrary::kNXAsync: return "nx-isend/irecv";
    case CommLibrary::kNXCallback: return "nx-hsend/hrecv";
    case CommLibrary::kPVM: return "pvm";
    case CommLibrary::kSHMEM: return "shmem";
  }
  return "?";
}

std::string to_string(IronmanCall call) {
  switch (call) {
    case IronmanCall::kDR: return "DR";
    case IronmanCall::kSR: return "SR";
    case IronmanCall::kDN: return "DN";
    case IronmanCall::kSV: return "SV";
  }
  return "?";
}

std::string to_string(Primitive primitive) {
  switch (primitive) {
    case Primitive::kNoOp: return "no-op";
    case Primitive::kCsend: return "csend";
    case Primitive::kCrecv: return "crecv";
    case Primitive::kIsend: return "isend";
    case Primitive::kIrecv: return "irecv";
    case Primitive::kMsgwaitSend: return "msgwait";
    case Primitive::kMsgwaitRecv: return "msgwait";
    case Primitive::kHsend: return "hsend";
    case Primitive::kHrecv: return "hrecv";
    case Primitive::kHprobe: return "hprobe";
    case Primitive::kPvmSend: return "pvm_send";
    case Primitive::kPvmRecv: return "pvm_recv";
    case Primitive::kShmemPut: return "shmem_put";
    case Primitive::kSynchPost: return "synch";
    case Primitive::kSynchWait: return "synch";
  }
  return "?";
}

}  // namespace zc::ironman
