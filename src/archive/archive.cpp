#include "src/archive/archive.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/support/diag.h"
#include "src/support/str.h"

namespace zc::archive {

namespace {

using json::Value;

/// Payload members that are configuration or per-run telemetry, not
/// measurements — recursing into them would drown the trend view.
bool skip_block(const std::string& key) {
  static const char* const kSkip[] = {"params",  "options",  "metrics",       "passes",
                                      "host",    "build",    "host_profile",  "timeline",
                                      "blame",   "critical_path", "windows",  "series"};
  for (const char* s : kSkip) {
    if (key == s) return true;
  }
  return false;
}

/// Element label inside an array: the member that names the row.
std::string element_label(const Value& v, std::size_t index) {
  if (v.is_object()) {
    if (v.has("name") && v.at("name").is_string()) return v.at("name").string;
    // The serve-throughput grid: cells keyed by mode/cache/jobs.
    if (v.has("mode") && v.has("cache") && v.has("jobs")) {
      return v.at("mode").string + ":" + v.at("cache").string + ":j" +
             std::to_string(static_cast<long long>(v.at("jobs").number));
    }
  }
  return std::to_string(index);
}

void walk(const Value& v, const std::string& prefix, std::vector<Measurement>& out) {
  if (v.is_object()) {
    for (const auto& [key, member] : v.object) {
      if (skip_block(key)) continue;
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (member.is_number()) {
        const Direction d = direction_for(key);
        if (d != Direction::kNeutral) out.push_back({path, member.number, d});
      } else if (member.is_object() || member.is_array()) {
        walk(member, path, out);
      }
    }
  } else if (v.is_array()) {
    for (std::size_t i = 0; i < v.array.size(); ++i) {
      walk(v.array[i], prefix.empty() ? element_label(v.array[i], i)
                                      : prefix + "." + element_label(v.array[i], i),
           out);
    }
  }
}

}  // namespace

Direction direction_for(const std::string& metric) {
  const auto has = [&](const char* needle) {
    return metric.find(needle) != std::string::npos;
  };
  // Count fields are deterministic outputs worth gating even though their
  // names carry no unit suffix (the paper's Tables 1-4 track them down).
  if (metric == "static_count" || metric == "dynamic_count" ||
      str::ends_with(metric, ".static_count") || str::ends_with(metric, ".dynamic_count")) {
    return Direction::kLowerIsBetter;
  }
  if (has("per_sec") || has("speedup") || has("hit_rate") || has("hit_ratio") ||
      has("overlap_fraction")) {
    return Direction::kHigherIsBetter;
  }
  if (str::ends_with(metric, "_ns") || str::ends_with(metric, "_ms") ||
      str::ends_with(metric, "_s") || str::ends_with(metric, "_seconds")) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kNeutral;
}

std::vector<Measurement> extract_metrics(const Envelope& e) {
  std::vector<Measurement> out;
  walk(e.payload, "", out);
  return out;
}

bool Query::matches(const Envelope& e) const {
  if (!bench.empty() && e.bench.find(bench) == std::string::npos) return false;
  if (!host_class.empty() && e.host_class() != host_class) return false;
  if (since_unix != 0 && e.unix_time < since_unix) return false;
  if (until_unix != 0 && e.unix_time > until_unix) return false;
  return true;
}

void Archive::append(const Envelope& e) const {
  std::ofstream f(path_, std::ios::app | std::ios::binary);
  if (!f) throw Error("archive: cannot open '" + path_ + "': " + std::strerror(errno));
  f << e.to_json().dump(0) << "\n";
  f.flush();
  if (!f) throw Error("archive: short write to '" + path_ + "'");
}

std::vector<Envelope> Archive::read_all(int* skipped) const {
  std::vector<Envelope> out;
  if (skipped != nullptr) *skipped = 0;
  std::ifstream f(path_, std::ios::binary);
  if (!f) return out;  // no history yet — an empty archive, not an error
  std::string line;
  while (std::getline(f, line)) {
    if (str::trim(line).empty()) continue;
    try {
      out.push_back(envelope_from_json(json::parse(line)));
    } catch (const std::exception&) {
      if (skipped != nullptr) ++*skipped;
    }
  }
  return out;
}

std::vector<Envelope> Archive::select(const Query& q, int* skipped) const {
  std::vector<Envelope> all = read_all(skipped);
  std::vector<Envelope> out;
  for (Envelope& e : all) {
    if (q.matches(e)) out.push_back(std::move(e));
  }
  return out;
}

}  // namespace zc::archive
