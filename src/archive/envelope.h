// The perf-archive envelope: a schema'd wrapper that turns any bench
// sample or run report into an archival record. The payload is carried
// verbatim; the envelope adds what the payload alone cannot answer later —
// *when* it was measured (injected UTC timestamp, never sampled inside the
// serializer, so tests and replays are deterministic), *where* (host
// fingerprint: cores, CPU model, page size, sanitizer) and *with what*
// (build fingerprint: compiler, build type), plus an optional git sha.
//
// Pre-envelope files (the committed BENCH_*.json history) parse as legacy
// records: payload preserved, host class "unknown" — still ingestible and
// queryable, but never eligible for a like-for-like regression gate.
#pragma once

#include <string>

#include "src/support/fingerprint.h"
#include "src/support/json.h"

namespace zc::archive {

inline constexpr const char* kEnvelopeSchema = "zcomm-perf-envelope";
inline constexpr int kEnvelopeVersion = 1;

struct Envelope {
  int version = kEnvelopeVersion;
  long long unix_time = 0;      ///< seconds since the epoch, injected by the caller
  std::string git_sha;          ///< "" = not recorded
  bool legacy = false;          ///< payload predates the envelope (host unknown)
  fingerprint::Host host;       ///< host.known == false for legacy records
  fingerprint::Build build;     ///< empty strings for legacy records
  std::string kind;             ///< payload "schema" string, or "unknown"
  std::string bench;            ///< payload "bench" label, or "" when absent
  json::Value payload;

  /// The UTC rendering of unix_time, e.g. "2026-08-08T12:00:00Z".
  [[nodiscard]] std::string recorded_at_utc() const;

  [[nodiscard]] std::string host_class() const { return host.host_class(); }

  [[nodiscard]] json::Value to_json() const;
};

/// Wraps a payload in a fresh envelope stamped with this process's host and
/// build fingerprints. `unix_time` is injected (pass std::time(nullptr) for
/// "now"); kind/bench are lifted from the payload's "schema"/"bench"
/// members when present.
Envelope wrap(json::Value payload, long long unix_time, std::string git_sha = "");

/// Parses either an envelope document or a bare legacy payload (anything
/// without schema == "zcomm-perf-envelope"), which becomes a legacy record
/// with host class "unknown" and unix_time 0.
Envelope envelope_from_json(const json::Value& doc);

}  // namespace zc::archive
