// Trend statistics and noise-aware regression verdicts over the archive.
//
// Every series is keyed (bench, metric, host_class) — the host class is
// part of the identity, never averaged across. The baseline for a series
// is the median of its history; the noise band is a MAD estimate
// (median absolute deviation scaled to sigma by 1.4826) widened by a
// relative floor so deterministic series (simulated times, counts) still
// tolerate configured drift instead of failing on any ULP.
//
// The regression gate (`check_sample`) is report_diff's per-pair verdict
// generalized over history, with one rule report_diff could not enforce:
// a fresh sample is only ever compared against history from the *same*
// host class. When the archive holds history for the bench but none of it
// is like-for-like, the check refuses (kRefusedHostClass) instead of
// quietly comparing a 1-core container against an 8-core workstation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/archive/archive.h"

namespace zc::archive {

struct SeriesKey {
  std::string bench;
  std::string metric;
  std::string host_class;

  bool operator<(const SeriesKey& o) const {
    if (bench != o.bench) return bench < o.bench;
    if (metric != o.metric) return metric < o.metric;
    return host_class < o.host_class;
  }
};

struct SeriesPoint {
  long long unix_time = 0;
  double value = 0.0;
};

struct Series {
  SeriesKey key;
  Direction direction = Direction::kNeutral;
  std::vector<SeriesPoint> points;  ///< archive append order
};

/// Groups every measurement in `records` into per-key series (file order
/// preserved within each). `metric_filter` is a substring filter ("" = all).
std::map<SeriesKey, Series> build_series(const std::vector<Envelope>& records,
                                         const std::string& metric_filter = "");

/// Robust location/spread for one series.
struct TrendStats {
  int n = 0;
  double median = 0.0;
  double mad = 0.0;        ///< raw median absolute deviation
  double band_low = 0.0;   ///< median - half_band
  double band_high = 0.0;  ///< median + half_band
};

/// half_band = max(band_sigmas * 1.4826 * MAD, rel_floor * |median|).
TrendStats trend_stats(const std::vector<double>& values, double band_sigmas = 3.0,
                       double rel_floor = 0.10);

double median_of(std::vector<double> values);

/// Unicode sparkline of the series values (one glyph per point, value
/// range normalized; '.' glyphs for a flat series).
std::string sparkline(const std::vector<double>& values);

enum class Verdict {
  kOk,
  kImprovement,       ///< beyond the band in the better direction
  kRegression,        ///< beyond the band in the worse direction
  kNoBaseline,        ///< no history at all for this (bench, metric)
  kRefusedHostClass,  ///< history exists, but only under other host classes
};

const char* to_string(Verdict v);

/// One gated metric of a fresh sample.
struct MetricVerdict {
  std::string metric;
  Direction direction = Direction::kNeutral;
  double value = 0.0;       ///< the fresh sample (after any injected scale)
  TrendStats baseline;      ///< stats over same-class history
  Verdict verdict = Verdict::kNoBaseline;

  /// Signed relative delta vs the baseline median (0 when no baseline).
  [[nodiscard]] double delta_fraction() const;
};

struct CheckOptions {
  double band_sigmas = 3.0;
  double rel_floor = 0.10;   ///< minimum half-band as a fraction of |median|
  std::string metric_filter; ///< substring ("" = every gateable metric)
  /// Deterministic regression injection for tests/CI: every lower-is-better
  /// metric of the fresh sample is multiplied by this, every
  /// higher-is-better metric divided. 1.0 = measure what was given.
  double inject_scale = 1.0;
};

struct CheckResult {
  std::string bench;
  std::string host_class;                 ///< the fresh sample's class
  std::vector<MetricVerdict> metrics;
  std::vector<std::string> archive_classes;  ///< classes seen for this bench
  int compared = 0;
  int regressions = 0;
  int improvements = 0;
  int refused = 0;
  int no_baseline = 0;

  /// The process exit code contract: 0 ok, 1 regression, 3 refused
  /// (nothing was comparable across host classes), 4 archive empty for
  /// this bench entirely.
  [[nodiscard]] int exit_code() const;
  [[nodiscard]] Verdict overall() const;
};

/// Gates `fresh` against same-host-class history in `history` (the fresh
/// sample itself may already be among the records; the median is robust to
/// that). History from other classes is never compared.
CheckResult check_sample(const std::vector<Envelope>& history, const Envelope& fresh,
                         const CheckOptions& opts = {});

}  // namespace zc::archive
