// Self-contained static HTML dashboard over the perf archive: one file,
// zero external fetches (all CSS inline, charts are inline SVG, data is
// embedded in <script type="application/json"> blocks), so it can be
// attached to a PR, served from a dumb file host, or opened from disk.
//
// Anatomy (DESIGN.md §14):
//   header      archive path, record count, host classes seen
//   per bench   one table: metric x host-class rows with an SVG sparkline
//               of the series, n / median / noise band, latest value and
//               its delta vs the median, and the trend verdict badge
//   latest      the most recent record's identity (fingerprints, git sha)
//               plus, when that record is a run report: its windowed
//               timeline rendered as a per-processor heatmap and its host
//               profile rendered as an expandable span tree ("flamegraph
//               data"), both also embedded as raw JSON
#pragma once

#include <string>
#include <vector>

#include "src/archive/trend.h"

namespace zc::archive {

struct DashboardOptions {
  std::string title = "zcomm perf dashboard";
  double band_sigmas = 3.0;
  double rel_floor = 0.10;
  int max_points = 200;  ///< sparkline tail length per series
};

/// Renders the dashboard HTML for `records` (typically Archive::read_all).
std::string render_dashboard(const std::vector<Envelope>& records,
                             const DashboardOptions& opts = {});

}  // namespace zc::archive
