// The append-only perf-history store: one envelope (envelope.h) per line
// of a JSON-lines file. Append never rewrites existing bytes, so the
// archive survives concurrent benches and interrupted runs; readers skip
// blank lines and surface (rather than die on) unparseable ones.
//
// On top of the raw records sits the metric view: every payload schema the
// repo produces (zcomm-bench-perf, the sweep/serve/tseries harness docs,
// zcomm-run-report) flattens into named numeric metrics with a measurement
// direction, so trend statistics and regression gates (trend.h) work
// uniformly over all of them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/archive/envelope.h"

namespace zc::archive {

/// Which way "better" points for a metric, derived from its name:
/// durations (ns/s/seconds/ms suffixes) and counts regress upward,
/// throughputs/speedups/hit rates regress downward. Neutral metrics are
/// shown in trends but never gated.
enum class Direction { kLowerIsBetter, kHigherIsBetter, kNeutral };

Direction direction_for(const std::string& metric);

/// One extracted measurement: `metric` is a dotted path within the payload
/// ("tomcatv/pl.median_ns", "cells.plan:warm:j1.reqs_per_sec").
struct Measurement {
  std::string metric;
  double value = 0.0;
  Direction direction = Direction::kNeutral;
};

/// Flattens the gateable numeric metrics out of an envelope's payload.
/// Container blocks that are per-run telemetry rather than measurements
/// (metrics snapshots, pass provenance, profiles, timelines, attribution)
/// are skipped.
std::vector<Measurement> extract_metrics(const Envelope& e);

/// Time-range / identity filter for reads. Empty string = no constraint;
/// bench/metric match by substring, host_class matches exactly.
struct Query {
  std::string bench;
  std::string metric;      ///< applied by callers that look at measurements
  std::string host_class;  ///< exact match ("" = all classes)
  long long since_unix = 0;
  long long until_unix = 0;  ///< 0 = open-ended

  [[nodiscard]] bool matches(const Envelope& e) const;
};

class Archive {
 public:
  explicit Archive(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Appends one record (compact single-line JSON + '\n'). Creates the
  /// file on first use; throws zc::Error when the path cannot be opened.
  void append(const Envelope& e) const;

  /// Every parseable record, in file (= chronological append) order. A
  /// missing file reads as empty. Unparseable lines are counted into
  /// `skipped` (when non-null), never thrown past.
  [[nodiscard]] std::vector<Envelope> read_all(int* skipped = nullptr) const;

  /// read_all filtered by `q` (bench/host_class/time range).
  [[nodiscard]] std::vector<Envelope> select(const Query& q, int* skipped = nullptr) const;

 private:
  std::string path_;
};

}  // namespace zc::archive
