#include "src/archive/trend.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace zc::archive {

std::map<SeriesKey, Series> build_series(const std::vector<Envelope>& records,
                                         const std::string& metric_filter) {
  std::map<SeriesKey, Series> out;
  for (const Envelope& e : records) {
    for (const Measurement& m : extract_metrics(e)) {
      if (!metric_filter.empty() && m.metric.find(metric_filter) == std::string::npos) {
        continue;
      }
      const SeriesKey key{e.bench, m.metric, e.host_class()};
      Series& s = out[key];
      if (s.points.empty()) {
        s.key = key;
        s.direction = m.direction;
      }
      s.points.push_back({e.unix_time, m.value});
    }
  }
  return out;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

TrendStats trend_stats(const std::vector<double>& values, double band_sigmas,
                       double rel_floor) {
  TrendStats t;
  t.n = static_cast<int>(values.size());
  if (values.empty()) return t;
  t.median = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::fabs(v - t.median));
  t.mad = median_of(std::move(deviations));
  // 1.4826 rescales MAD to a normal sigma; the relative floor keeps
  // deterministic series (MAD == 0) from gating at zero width.
  const double half_band =
      std::max(band_sigmas * 1.4826 * t.mad, rel_floor * std::fabs(t.median));
  t.band_low = t.median - half_band;
  t.band_high = t.median + half_band;
  return t;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* const kGlyphs[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it;
  const double span = *hi_it - lo;
  if (span <= 0.0) return std::string(values.size(), '.');
  std::string out;
  for (const double v : values) {
    const int level =
        std::clamp(static_cast<int>((v - lo) / span * 7.999), 0, 7);
    out += kGlyphs[level];
  }
  return out;
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kRegression: return "REGRESSION";
    case Verdict::kNoBaseline: return "no-baseline";
    case Verdict::kRefusedHostClass: return "refused-host-class";
  }
  return "?";
}

double MetricVerdict::delta_fraction() const {
  if (baseline.n == 0 || baseline.median == 0.0) return 0.0;
  return (value - baseline.median) / std::fabs(baseline.median);
}

int CheckResult::exit_code() const {
  if (regressions > 0) return 1;
  if (compared > 0) return 0;
  if (refused > 0) return 3;
  if (no_baseline > 0 || metrics.empty()) return 4;
  return 0;
}

Verdict CheckResult::overall() const {
  if (regressions > 0) return Verdict::kRegression;
  if (compared > 0) return improvements > 0 ? Verdict::kImprovement : Verdict::kOk;
  if (refused > 0) return Verdict::kRefusedHostClass;
  return Verdict::kNoBaseline;
}

CheckResult check_sample(const std::vector<Envelope>& history, const Envelope& fresh,
                         const CheckOptions& opts) {
  CheckResult r;
  r.bench = fresh.bench;
  r.host_class = fresh.host_class();

  // Same-bench history, split like-for-like vs everything else.
  std::vector<Envelope> comparable;
  std::set<std::string> classes;
  for (const Envelope& e : history) {
    if (e.bench != fresh.bench) continue;
    classes.insert(e.host_class());
    if (e.host_class() == r.host_class) comparable.push_back(e);
  }
  r.archive_classes.assign(classes.begin(), classes.end());
  const std::map<SeriesKey, Series> series = build_series(comparable, opts.metric_filter);

  for (const Measurement& m : extract_metrics(fresh)) {
    if (!opts.metric_filter.empty() &&
        m.metric.find(opts.metric_filter) == std::string::npos) {
      continue;
    }
    MetricVerdict v;
    v.metric = m.metric;
    v.direction = m.direction;
    v.value = m.value;
    if (opts.inject_scale != 1.0) {
      v.value = m.direction == Direction::kHigherIsBetter ? m.value / opts.inject_scale
                                                          : m.value * opts.inject_scale;
    }
    const auto it = series.find(SeriesKey{fresh.bench, m.metric, r.host_class});
    if (it == series.end()) {
      // No like-for-like history for this metric: a refusal when other
      // host classes have it, otherwise simply no baseline yet.
      const bool elsewhere = classes.size() > (classes.count(r.host_class) != 0 ? 1u : 0u);
      v.verdict = elsewhere ? Verdict::kRefusedHostClass : Verdict::kNoBaseline;
      elsewhere ? ++r.refused : ++r.no_baseline;
      r.metrics.push_back(std::move(v));
      continue;
    }
    std::vector<double> values;
    values.reserve(it->second.points.size());
    for (const SeriesPoint& p : it->second.points) values.push_back(p.value);
    v.baseline = trend_stats(values, opts.band_sigmas, opts.rel_floor);
    ++r.compared;
    const bool above = v.value > v.baseline.band_high;
    const bool below = v.value < v.baseline.band_low;
    if (!above && !below) {
      v.verdict = Verdict::kOk;
    } else if ((above && m.direction == Direction::kLowerIsBetter) ||
               (below && m.direction == Direction::kHigherIsBetter)) {
      v.verdict = Verdict::kRegression;
      ++r.regressions;
    } else {
      v.verdict = Verdict::kImprovement;
      ++r.improvements;
    }
    r.metrics.push_back(std::move(v));
  }
  return r;
}

}  // namespace zc::archive
