#include "src/archive/envelope.h"

#include <ctime>
#include <utility>

namespace zc::archive {

namespace {

using json::Value;

void lift_labels(Envelope& e) {
  if (e.payload.is_object()) {
    if (e.payload.has("schema") && e.payload.at("schema").is_string()) {
      e.kind = e.payload.at("schema").string;
    }
    if (e.payload.has("bench") && e.payload.at("bench").is_string()) {
      e.bench = e.payload.at("bench").string;
    } else if (e.payload.has("benchmark") && e.payload.at("benchmark").is_string()) {
      e.bench = e.payload.at("benchmark").string;  // run-report spelling
    }
  }
  if (e.kind.empty()) e.kind = "unknown";
}

}  // namespace

std::string Envelope::recorded_at_utc() const {
  const std::time_t t = static_cast<std::time_t>(unix_time);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Value Envelope::to_json() const {
  Value doc = Value::make_object();
  doc["schema"] = Value::make_str(kEnvelopeSchema);
  doc["schema_version"] = Value::make_int(version);
  doc["recorded_at_utc"] = Value::make_str(recorded_at_utc());
  doc["unix_time"] = Value::make_int(unix_time);
  if (!git_sha.empty()) doc["git_sha"] = Value::make_str(git_sha);
  doc["host"] = host.to_json();
  if (!legacy) doc["build"] = build.to_json();
  doc["kind"] = Value::make_str(kind);
  if (!bench.empty()) doc["bench"] = Value::make_str(bench);
  doc["payload"] = payload;
  return doc;
}

Envelope wrap(json::Value payload, long long unix_time, std::string git_sha) {
  Envelope e;
  e.unix_time = unix_time;
  e.git_sha = std::move(git_sha);
  e.host = fingerprint::current_host();
  e.build = fingerprint::current_build();
  e.payload = std::move(payload);
  lift_labels(e);
  return e;
}

Envelope envelope_from_json(const json::Value& doc) {
  Envelope e;
  const bool enveloped = doc.is_object() && doc.has("schema") &&
                         doc.at("schema").is_string() &&
                         doc.at("schema").string == kEnvelopeSchema;
  if (!enveloped) {
    // A pre-envelope sample: keep the payload whole. A bare run report
    // (schema v5+) carries its own "host" fingerprint block — adopt it;
    // anything older is honestly host-unknown.
    e.legacy = true;
    e.payload = doc;
    if (doc.is_object() && doc.has("host") && doc.at("host").is_object() &&
        doc.at("host").has("class")) {
      e.host = fingerprint::Host::from_json(doc.at("host"));
    } else {
      e.host.known = false;
    }
    lift_labels(e);
    return e;
  }
  if (doc.has("schema_version")) e.version = static_cast<int>(doc.at("schema_version").number);
  if (doc.has("unix_time")) e.unix_time = static_cast<long long>(doc.at("unix_time").number);
  if (doc.has("git_sha") && doc.at("git_sha").is_string()) e.git_sha = doc.at("git_sha").string;
  if (doc.has("host")) {
    e.host = fingerprint::Host::from_json(doc.at("host"));
  } else {
    e.host.known = false;
  }
  if (doc.has("build")) {
    e.build = fingerprint::Build::from_json(doc.at("build"));
  } else {
    e.legacy = true;
  }
  if (doc.has("kind") && doc.at("kind").is_string()) e.kind = doc.at("kind").string;
  if (doc.has("bench") && doc.at("bench").is_string()) e.bench = doc.at("bench").string;
  if (doc.has("payload")) e.payload = doc.at("payload");
  lift_labels(e);
  return e;
}

}  // namespace zc::archive
