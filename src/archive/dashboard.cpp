#include "src/archive/dashboard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "src/support/str.h"

namespace zc::archive {

namespace {

using json::Value;

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// </script> inside an embedded JSON block would terminate it early.
std::string script_safe(const std::string& json_text) {
  std::string out = json_text;
  std::size_t pos = 0;
  while ((pos = out.find("</", pos)) != std::string::npos) {
    out.replace(pos, 2, "<\\/");
    pos += 3;
  }
  return out;
}

std::string fmt(double v) {
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  if (a >= 1e6 || a < 1e-3) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
  }
  return str::format_f(v, a >= 100 ? 1 : 4);
}

/// Inline-SVG sparkline: polyline over the series with the noise band as a
/// translucent rect. Width scales with point count so dense history stays
/// readable.
std::string svg_sparkline(const std::vector<double>& values, const TrendStats& t) {
  const int n = static_cast<int>(values.size());
  const double w = std::max(60, n * 8);
  const double h = 26.0;
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  lo = std::min(lo, t.band_low);
  hi = std::max(hi, t.band_high);
  if (hi <= lo) {
    hi = lo + (lo == 0.0 ? 1.0 : std::fabs(lo) * 0.01);
  }
  const auto x_at = [&](int i) {
    return n == 1 ? w / 2 : 2.0 + (w - 4.0) * i / (n - 1);
  };
  const auto y_at = [&](double v) { return h - 3.0 - (h - 6.0) * (v - lo) / (hi - lo); };

  std::string svg = "<svg class=\"spark\" width=\"" + fmt(w) + "\" height=\"" + fmt(h) +
                    "\" viewBox=\"0 0 " + fmt(w) + " " + fmt(h) + "\">";
  const double band_y = y_at(t.band_high);
  const double band_h = std::max(0.5, y_at(t.band_low) - band_y);
  svg += "<rect class=\"band\" x=\"0\" y=\"" + fmt(band_y) + "\" width=\"" + fmt(w) +
         "\" height=\"" + fmt(band_h) + "\"/>";
  std::string points;
  for (int i = 0; i < n; ++i) {
    if (!points.empty()) points += " ";
    points += fmt(x_at(i)) + "," + fmt(y_at(values[i]));
  }
  svg += "<polyline class=\"line\" points=\"" + points + "\"/>";
  svg += "<circle class=\"last\" cx=\"" + fmt(x_at(n - 1)) + "\" cy=\"" +
         fmt(y_at(values.back())) + "\" r=\"2.2\"/>";
  svg += "</svg>";
  return svg;
}

const char* verdict_css(Verdict v) {
  switch (v) {
    case Verdict::kRegression: return "bad";
    case Verdict::kImprovement: return "good";
    case Verdict::kOk: return "ok";
    default: return "na";
  }
}

/// The per-processor heatmap of a run report's "timeline" block: one table
/// per channel of interest, cell opacity proportional to the window value.
std::string timeline_heatmap(const Value& timeline) {
  if (!timeline.has("channels")) return "";
  std::string out;
  for (const char* channel : {"cpu", "wait", "wire_exposed"}) {
    if (!timeline.at("channels").has(channel)) continue;
    const Value& per_proc = timeline.at("channels").at(channel);
    double peak = 0.0;
    for (const Value& row : per_proc.array) {
      for (const Value& cell : row.array) peak = std::max(peak, cell.number);
    }
    out += "<h4>timeline · " + std::string(channel) + "</h4><table class=\"heat\">";
    int p = 0;
    for (const Value& row : per_proc.array) {
      out += "<tr><th>p" + std::to_string(p++) + "</th>";
      for (const Value& cell : row.array) {
        const double a = peak > 0.0 ? cell.number / peak : 0.0;
        out += "<td style=\"background:rgba(31,111,235," + str::format_f(a, 3) +
               ")\" title=\"" + fmt(cell.number) + "s\"></td>";
      }
      out += "</tr>";
    }
    out += "</table>";
  }
  return out;
}

/// The host profile's span forest as nested <details> — the flamegraph
/// data, browsable without any script.
void span_tree(const Value& spans, std::string& out, int depth) {
  for (const Value& s : spans.array) {
    const std::string name = html_escape(s.at("name").string);
    const std::string total = fmt(s.at("total_seconds").number);
    const bool leaf = !s.has("children") || s.at("children").array.empty();
    if (leaf) {
      out += "<div class=\"span\" style=\"margin-left:" + std::to_string(depth) +
             "em\">" + name + " <span class=\"t\">" + total + "s</span></div>";
    } else {
      out += "<details" + std::string(depth < 2 ? " open" : "") +
             " style=\"margin-left:" + std::to_string(depth) + "em\"><summary>" + name +
             " <span class=\"t\">" + total + "s</span></summary>";
      span_tree(s.at("children"), out, depth + 1);
      out += "</details>";
    }
  }
}

}  // namespace

std::string render_dashboard(const std::vector<Envelope>& records,
                             const DashboardOptions& opts) {
  std::string html =
      "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      "<meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">\n"
      "<title>" + html_escape(opts.title) + "</title>\n<style>\n"
      ":root{color-scheme:light dark}\n"
      "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:72em;"
      "padding:0 1em;color:#1f2328;background:#fff}\n"
      "@media(prefers-color-scheme:dark){body{color:#e6edf3;background:#0d1117}}\n"
      "h1{font-size:1.4em} h2{font-size:1.1em;border-bottom:1px solid #8884;"
      "padding-bottom:.2em;margin-top:2em}\n"
      "table{border-collapse:collapse;width:100%} td,th{padding:.25em .6em;"
      "text-align:left;border-bottom:1px solid #8883;font-variant-numeric:tabular-nums}\n"
      ".spark .line{fill:none;stroke:#1f6feb;stroke-width:1.5}\n"
      ".spark .band{fill:#1f6feb22}.spark .last{fill:#1f6feb}\n"
      ".badge{border-radius:1em;padding:.05em .6em;font-size:.85em}\n"
      ".badge.ok{background:#2da44e33}.badge.good{background:#1f6feb33}\n"
      ".badge.bad{background:#cf222e44}.badge.na{background:#8883}\n"
      ".meta{color:#888;font-size:.9em}\n"
      "table.heat td{width:8px;height:14px;padding:0;border:0}\n"
      "table.heat th{font-size:.75em;padding:0 .4em;border:0}\n"
      ".span,.t{font-family:ui-monospace,monospace;font-size:.9em}.t{color:#888}\n"
      "</style>\n</head>\n<body>\n";
  html += "<h1>" + html_escape(opts.title) + "</h1>\n";

  std::set<std::string> classes;
  std::set<std::string> benches;
  for (const Envelope& e : records) {
    classes.insert(e.host_class());
    benches.insert(e.bench.empty() ? "(unnamed)" : e.bench);
  }
  html += "<p class=\"meta\">" + std::to_string(records.size()) + " records · " +
          std::to_string(benches.size()) + " benches · host classes: ";
  bool first = true;
  for (const std::string& c : classes) {
    if (!first) html += ", ";
    html += "<code>" + html_escape(c) + "</code>";
    first = false;
  }
  html += "</p>\n";

  // --- per-bench trend tables -------------------------------------------
  const std::map<SeriesKey, Series> series = build_series(records);
  std::string current_bench;
  bool table_open = false;
  for (const auto& [key, s] : series) {
    if (key.bench != current_bench) {
      if (table_open) html += "</table>\n";
      current_bench = key.bench;
      html += "<h2>" + html_escape(current_bench.empty() ? "(unnamed)" : current_bench) +
              "</h2>\n<table><tr><th>metric</th><th>host class</th><th>trend</th>"
              "<th>n</th><th>median</th><th>band</th><th>latest</th><th>Δ</th>"
              "<th>verdict</th></tr>\n";
      table_open = true;
    }
    std::vector<double> values;
    values.reserve(s.points.size());
    for (const SeriesPoint& p : s.points) values.push_back(p.value);
    if (static_cast<int>(values.size()) > opts.max_points) {
      values.erase(values.begin(),
                   values.end() - opts.max_points);
    }
    const TrendStats t = trend_stats(values, opts.band_sigmas, opts.rel_floor);
    const double latest = values.back();
    Verdict v = Verdict::kOk;
    if (values.size() < 2 || s.direction == Direction::kNeutral) {
      v = Verdict::kNoBaseline;
    } else if (latest > t.band_high || latest < t.band_low) {
      const bool worse = (latest > t.band_high) == (s.direction == Direction::kLowerIsBetter);
      v = worse ? Verdict::kRegression : Verdict::kImprovement;
    }
    const double delta = t.median != 0.0 ? (latest - t.median) / std::fabs(t.median) : 0.0;
    html += "<tr><td><code>" + html_escape(key.metric) + "</code></td><td><code>" +
            html_escape(key.host_class) + "</code></td><td>" + svg_sparkline(values, t) +
            "</td><td>" + std::to_string(t.n) + "</td><td>" + fmt(t.median) + "</td><td>" +
            fmt(t.band_low) + " … " + fmt(t.band_high) + "</td><td>" + fmt(latest) +
            "</td><td>" + (delta >= 0 ? "+" : "") + str::format_f(delta * 100.0, 1) +
            "%</td><td><span class=\"badge " + verdict_css(v) + "\">" +
            to_string(v == Verdict::kNoBaseline ? Verdict::kOk : v) + "</span></td></tr>\n";
  }
  if (table_open) html += "</table>\n";

  // --- the most recent record -------------------------------------------
  const Envelope* latest = nullptr;
  for (const Envelope& e : records) {
    if (latest == nullptr || e.unix_time >= latest->unix_time) latest = &e;
  }
  if (latest != nullptr) {
    html += "<h2>latest record</h2>\n<p class=\"meta\">" +
            html_escape(latest->bench.empty() ? latest->kind : latest->bench) + " · " +
            html_escape(latest->kind) + " · " + html_escape(latest->recorded_at_utc()) +
            " · host <code>" + html_escape(latest->host_class()) + "</code>";
    if (!latest->build.compiler.empty()) {
      html += " · " + html_escape(latest->build.compiler);
    }
    if (!latest->git_sha.empty()) {
      html += " · <code>" + html_escape(latest->git_sha.substr(0, 12)) + "</code>";
    }
    html += "</p>\n";
    if (latest->payload.is_object() && latest->payload.has("timeline")) {
      html += timeline_heatmap(latest->payload.at("timeline"));
      html += "<script type=\"application/json\" id=\"zc-timeline-data\">" +
              script_safe(latest->payload.at("timeline").dump(0)) + "</script>\n";
    }
    if (latest->payload.is_object() && latest->payload.has("host_profile")) {
      const Value& hp = latest->payload.at("host_profile");
      html += "<h4>host profile (flamegraph data)</h4>";
      if (hp.has("spans")) {
        std::string tree;
        span_tree(hp.at("spans"), tree, 0);
        html += tree;
      }
      html += "<script type=\"application/json\" id=\"zc-flamegraph-data\">" +
              script_safe(hp.dump(0)) + "</script>\n";
    }
    html += "<details><summary class=\"meta\">raw record JSON</summary><script "
            "type=\"application/json\" id=\"zc-latest-record\">" +
            script_safe(latest->to_json().dump(0)) + "</script><pre>" +
            html_escape(latest->to_json().dump(2)) + "</pre></details>\n";
  } else {
    html += "<p class=\"meta\">the archive is empty — record a sample with "
            "<code>zcomm_bench record</code></p>\n";
  }

  html += "</body>\n</html>\n";
  return html;
}

}  // namespace zc::archive
