#include "src/exec/pool.h"

#include <algorithm>

#include "src/support/diag.h"

namespace zc::exec {

ThreadPool::ThreadPool(int jobs) : jobs_(jobs) {
  if (jobs < 1) throw Error("thread pool needs jobs >= 1");
  queues_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::hardware_jobs() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

bool ThreadPool::pop_own(int self, std::size_t& task) {
  Queue& q = *queues_[static_cast<std::size_t>(self)];
  const std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  task = q.tasks.back();
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::steal(int self, std::size_t& task) {
  // Victims in a fixed rotation starting after `self`: every context scans
  // all the others, so any remaining task is always reachable.
  for (int k = 1; k < jobs_; ++k) {
    Queue& q = *queues_[static_cast<std::size_t>((self + k) % jobs_)];
    const std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty()) continue;
    task = q.tasks.front();  // FIFO end: the oldest (fattest remaining) work
    q.tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::run_one(int self) {
  std::size_t task = 0;
  if (!pop_own(self, task) && !steal(self, task)) return false;
  std::exception_ptr error;
  try {
    (*fn_)(task);
  } catch (...) {
    error = std::current_exception();
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (error) errors_[task] = std::move(error);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(int self) {
  unsigned long long seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    // Tasks are only enqueued at the start of an epoch (tasks never spawn
    // tasks), so once every deque is empty this epoch is over for us.
    while (run_one(self)) {
    }
  }
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::lock_guard<std::mutex> run_lk(run_mu_);
  if (n == 0) return;

  if (jobs_ == 1) {
    // Inline serial path: no threads, no queues — submission order exactly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    const std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    errors_.assign(n, nullptr);
    remaining_ = n;
    // Round-robin seeding; contexts drain their own share and steal the rest.
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[i % static_cast<std::size_t>(jobs_)];
      const std::lock_guard<std::mutex> qlk(q.mu);
      q.tasks.push_back(i);
    }
    ++epoch_;
  }
  work_cv_.notify_all();

  while (run_one(0)) {
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return remaining_ == 0; });
    fn_ = nullptr;
  }
  for (std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace zc::exec
