#include "src/exec/pool.h"

#include <algorithm>
#include <string>

#include "src/prof/prof.h"
#include "src/support/diag.h"
#include "src/support/metrics.h"

namespace zc::exec {

namespace {

// Which pool context this thread is, -1 off-pool. File-local thread_locals:
// a thread belongs to at most one pool at a time (contexts are created by
// one pool and run() serializes), so plain globals are unambiguous.
thread_local int tl_context = -1;
thread_local bool tl_stolen = false;

// prof::Span keeps the name pointer for the profiler's lifetime, so
// per-worker names must outlive every pool: intern them once, forever.
const char* worker_span_name(int context) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> names;
  const std::lock_guard<std::mutex> lk(mu);
  while (static_cast<int>(names.size()) <= context) {
    names.push_back(std::make_unique<std::string>(
        "pool/worker/" + std::to_string(static_cast<int>(names.size()))));
  }
  return names[static_cast<std::size_t>(context)]->c_str();
}

}  // namespace

ThreadPool::ThreadPool(int jobs) : jobs_(jobs) {
  if (jobs < 1) throw Error("thread pool needs jobs >= 1");
  queues_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::hardware_jobs() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

PoolCounters ThreadPool::counters() const {
  PoolCounters c;
  c.own_pops = own_pops_.load(std::memory_order_relaxed);
  c.steals = steals_.load(std::memory_order_relaxed);
  c.parks = parks_.load(std::memory_order_relaxed);
  return c;
}

int ThreadPool::current_context() { return tl_context; }

bool ThreadPool::current_task_stolen() { return tl_stolen; }

bool ThreadPool::pop_own(int self, std::size_t& task) {
  Queue& q = *queues_[static_cast<std::size_t>(self)];
  const std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  task = q.tasks.back();
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::steal(int self, std::size_t& task) {
  // Victims in a fixed rotation starting after `self`: every context scans
  // all the others, so any remaining task is always reachable.
  for (int k = 1; k < jobs_; ++k) {
    Queue& q = *queues_[static_cast<std::size_t>((self + k) % jobs_)];
    const std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty()) continue;
    task = q.tasks.front();  // FIFO end: the oldest (fattest remaining) work
    q.tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::run_one(int self) {
  std::size_t task = 0;
  bool stolen = false;
  if (pop_own(self, task)) {
    own_pops_.fetch_add(1, std::memory_order_relaxed);
  } else if (steal(self, task)) {
    stolen = true;
    steals_.fetch_add(1, std::memory_order_relaxed);
  } else {
    return false;
  }
  tl_stolen = stolen;
  std::exception_ptr error;
  try {
    // Task spans nest under this worker's "pool/worker/N" span, so a
    // --profile tree attributes scheduler overhead per worker: the worker
    // node's SELF time is exactly the epoch's scheduling cost on that
    // context (queue locks, pop/steal scans, completion bookkeeping), and
    // the own/stolen split shows where each worker's task time came from.
    const prof::Span task_span(stolen ? "pool/task/stolen" : "pool/task");
    (*fn_)(task);
  } catch (...) {
    error = std::current_exception();
  }
  tl_stolen = false;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (error) errors_[task] = std::move(error);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::drain_epoch(int self) {
  tl_context = self;
  if (profiler_ != nullptr) {
    // Attach only when a profiler is actually set: prof::Attach(nullptr)
    // would *detach* whatever profiler the caller context already carries.
    const prof::Attach attach(profiler_);
    const prof::Span span(worker_span_name(self));
    while (run_one(self)) {
    }
  } else {
    while (run_one(self)) {
    }
  }
  tl_context = -1;
}

void ThreadPool::worker_loop(int self) {
  unsigned long long seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    // Tasks are only enqueued at the start of an epoch (tasks never spawn
    // tasks), so once every deque is empty this epoch is over for us.
    drain_epoch(self);
    parks_.fetch_add(1, std::memory_order_relaxed);  // back to the epoch wait
  }
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::lock_guard<std::mutex> run_lk(run_mu_);
  if (n == 0) return;

  if (jobs_ == 1) {
    // Inline serial path: no threads, no queues — submission order exactly.
    // tl_context stays -1: there is no scheduler, so there is no context.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const PoolCounters before = counters();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    errors_.assign(n, nullptr);
    remaining_ = n;
    // Round-robin seeding; contexts drain their own share and steal the rest.
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[i % static_cast<std::size_t>(jobs_)];
      const std::lock_guard<std::mutex> qlk(q.mu);
      q.tasks.push_back(i);
    }
    ++epoch_;
  }
  work_cv_.notify_all();

  drain_epoch(0);
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return remaining_ == 0; });
    fn_ = nullptr;
  }

  // Publish the epoch's scheduler deltas into the *caller's* registry. Task
  // registries (ScopedRegistry inside fn) never see these: the own/steal
  // split depends on scheduling and must stay out of the deterministic
  // per-task merges.
  const PoolCounters after = counters();
  metrics::Registry& reg = metrics::Registry::current();
  reg.count("exec.pool.own_pops", after.own_pops - before.own_pops);
  reg.count("exec.pool.steals", after.steals - before.steals);
  reg.count("exec.pool.parks", after.parks - before.parks);

  for (std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace zc::exec
