// A work-stealing thread pool for fanning independent pipeline runs across
// cores (the sweep engine's execution substrate, src/exec/sweep.h).
//
// Model: `jobs` execution contexts — the calling thread plus jobs-1 worker
// threads. `run(n, fn)` distributes task indices round-robin across
// per-context deques; each context pops from the back of its own deque
// (LIFO, cache-friendly) and steals from the front of a victim's (FIFO, the
// oldest — largest remaining — work first). The caller participates and
// blocks until every task finished, so `run` is a complete fork/join.
//
// Determinism contract: task *results* are slotted by submission index, so
// collection order never depends on scheduling. With jobs == 1 no threads
// are created at all and tasks execute inline in submission order — the
// exact serial path, which the sweep's bit-identity tests compare against.
//
// Exceptions: a throwing task never takes down a worker. The first failure
// by submission index (not by completion time — deterministic) is rethrown
// from run() after the join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace zc::exec {

class ThreadPool {
 public:
  /// `jobs` >= 1: total execution contexts (caller + jobs-1 workers).
  explicit ThreadPool(int jobs);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Executes fn(0) .. fn(n-1), in parallel across the pool, and returns
  /// when all have finished. One run at a time (calls serialize). Rethrows
  /// the lowest-index task exception, if any, after every task completed.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The machine's hardware concurrency, clamped to >= 1 — what `--jobs 0`
  /// resolves to in the CLI surfaces.
  [[nodiscard]] static int hardware_jobs();

 private:
  /// One context's deque. Guarded by its own mutex: tasks here are whole
  /// pipeline runs (>= tens of microseconds), so a mutex per deque costs
  /// nothing measurable and stays obviously correct under TSan.
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void worker_loop(int self);
  bool run_one(int self);
  bool pop_own(int self, std::size_t& task);
  bool steal(int self, std::size_t& task);

  const int jobs_;
  std::vector<std::unique_ptr<Queue>> queues_;  // [0] = the caller's
  std::vector<std::thread> threads_;            // jobs_ - 1 workers

  std::mutex mu_;                    // guards the epoch / completion state
  std::condition_variable work_cv_;  // wakes workers at a new epoch
  std::condition_variable done_cv_;  // wakes run() at completion
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::vector<std::exception_ptr> errors_;  // slot per task of the epoch
  std::size_t remaining_ = 0;
  unsigned long long epoch_ = 0;
  bool stop_ = false;

  std::mutex run_mu_;  // serializes run() callers
};

}  // namespace zc::exec
