// A work-stealing thread pool for fanning independent pipeline runs across
// cores (the sweep engine's execution substrate, src/exec/sweep.h).
//
// Model: `jobs` execution contexts — the calling thread plus jobs-1 worker
// threads. `run(n, fn)` distributes task indices round-robin across
// per-context deques; each context pops from the back of its own deque
// (LIFO, cache-friendly) and steals from the front of a victim's (FIFO, the
// oldest — largest remaining — work first). The caller participates and
// blocks until every task finished, so `run` is a complete fork/join.
//
// Determinism contract: task *results* are slotted by submission index, so
// collection order never depends on scheduling. With jobs == 1 no threads
// are created at all and tasks execute inline in submission order — the
// exact serial path, which the sweep's bit-identity tests compare against.
//
// Exceptions: a throwing task never takes down a worker. The first failure
// by submission index (not by completion time — deterministic) is rethrown
// from run() after the join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace zc::prof {
class Profiler;
}  // namespace zc::prof

namespace zc::exec {

/// Scheduler-level counters, summed over every context since construction.
/// own_pops + steals = tasks executed; parks = epoch waits a worker slept
/// through. The split is scheduling-dependent (never part of any
/// determinism contract) — it answers "did work actually balance?"
struct PoolCounters {
  long long own_pops = 0;
  long long steals = 0;
  long long parks = 0;
};

class ThreadPool {
 public:
  /// `jobs` >= 1: total execution contexts (caller + jobs-1 workers).
  explicit ThreadPool(int jobs);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Executes fn(0) .. fn(n-1), in parallel across the pool, and returns
  /// when all have finished. One run at a time (calls serialize). Rethrows
  /// the lowest-index task exception, if any, after every task completed.
  ///
  /// After the join, the epoch's own-pop/steal/park deltas are published to
  /// metrics::Registry::current() as exec.pool.{own_pops,steals,parks}
  /// counters — the caller's registry, never a task's (the split is
  /// scheduling-dependent, so it must stay out of the deterministic
  /// per-task merges).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Attaches a host profiler: each context wraps its share of every epoch
  /// in a per-worker "pool/worker/<i>" span (interned names), so --profile
  /// attributes scheduler overhead per worker — the span's self time is
  /// pop/steal/park cost, its children are the tasks. nullptr (default)
  /// keeps the loops span-free.
  void set_profiler(prof::Profiler* profiler) { profiler_ = profiler; }

  /// Cumulative scheduler counters across all epochs (snapshot).
  [[nodiscard]] PoolCounters counters() const;

  /// The executing context's index (0 = the run() caller) while inside a
  /// task run by this pool family; -1 on threads that are not pool
  /// contexts (including tasks executed on the jobs == 1 inline path).
  [[nodiscard]] static int current_context();

  /// True while the current task was obtained by stealing rather than
  /// popped from its own deque. Meaningful only inside a task.
  [[nodiscard]] static bool current_task_stolen();

  /// The machine's hardware concurrency, clamped to >= 1 — what `--jobs 0`
  /// resolves to in the CLI surfaces.
  [[nodiscard]] static int hardware_jobs();

 private:
  /// One context's deque. Guarded by its own mutex: tasks here are whole
  /// pipeline runs (>= tens of microseconds), so a mutex per deque costs
  /// nothing measurable and stays obviously correct under TSan.
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void worker_loop(int self);
  bool run_one(int self);
  bool pop_own(int self, std::size_t& task);
  bool steal(int self, std::size_t& task);
  void drain_epoch(int self);

  const int jobs_;
  std::vector<std::unique_ptr<Queue>> queues_;  // [0] = the caller's
  std::vector<std::thread> threads_;            // jobs_ - 1 workers

  // Scheduler counters: relaxed atomics — written by the owning context,
  // read by counters()/run() at any time; ordering is irrelevant for
  // monotonic telemetry sums.
  std::atomic<long long> own_pops_{0};
  std::atomic<long long> steals_{0};
  std::atomic<long long> parks_{0};
  prof::Profiler* profiler_ = nullptr;

  std::mutex mu_;                    // guards the epoch / completion state
  std::condition_variable work_cv_;  // wakes workers at a new epoch
  std::condition_variable done_cv_;  // wakes run() at completion
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::vector<std::exception_ptr> errors_;  // slot per task of the epoch
  std::size_t remaining_ = 0;
  unsigned long long epoch_ = 0;
  bool stop_ = false;

  std::mutex run_mu_;  // serializes run() callers
};

}  // namespace zc::exec
