// Concurrency-safe memoization of communication plans: a sweep over a grid
// of (program x OptOptions x machine) configurations parses and optimizes
// each *distinct* configuration exactly once, sharing one immutable
// comm::CommPlan across every run that executes it (plans are read-only
// after planning; the engine never mutates one).
//
// Keying: the cache key is the *content* of the configuration, not object
// identity — the canonical printed form of the ZIR program (zir::to_source,
// which drops source offsets: two programs lexed from sources differing
// only in whitespace/comments key identically) plus every semantic
// OptOptions field plus a machine salt (the model name; planning itself is
// machine-independent, so e.g. "pl" and "pl with shmem" — same options,
// same T3D — share one plan). OptOptions::pass_log is deliberately NOT part
// of the key and never attached to cached planning: plans are bit-identical
// with or without a log (src/report contract), and provenance callers go to
// plan_communication directly.
//
// Collisions: entries are bucketed by a 64-bit FNV-1a hash of the key but
// verified by full key comparison, so hash collisions cost a probe, never
// correctness (tests force a degenerate constant hash to pin this).
//
// Concurrency: one mutex guards the table; planning itself runs outside it
// under a per-entry std::call_once, so two workers asking for the same key
// block on one planning run while different keys plan in parallel. Hit/miss
// totals are deterministic for a fixed work set (misses == distinct keys)
// regardless of scheduling.
//
// Eviction: an optional byte budget (approximate plan + key footprint)
// evicts least-recently-used *completed* entries; shared_ptr keeps evicted
// plans alive for the runs still holding them.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/comm/optimizer.h"

namespace zc::exec {

/// Builds the canonical cache key text for (program, options, machine).
std::string plan_key(const zir::Program& program, const comm::OptOptions& options,
                     std::string_view machine_salt);

/// 64-bit FNV-1a — the default bucket hash.
std::uint64_t fnv1a(std::string_view s);

/// Approximate resident size of a plan (vectors' element footprints); the
/// unit the byte budget is accounted in.
long long plan_size_bytes(const comm::CommPlan& plan);

struct PlanCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
  long long entries = 0;  ///< currently resident
  long long bytes = 0;    ///< approximate resident footprint

  [[nodiscard]] double hit_rate() const {
    const long long total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class PlanCache {
 public:
  struct Options {
    /// 0 = unlimited. Otherwise evict LRU completed entries whenever the
    /// approximate resident footprint exceeds this.
    long long byte_budget = 0;
    /// Test seam: override the bucket hash (e.g. a constant, to force every
    /// key into one bucket and exercise collision handling).
    std::function<std::uint64_t(std::string_view)> hash;
  };

  PlanCache();
  explicit PlanCache(Options options);

  /// The cached plan for (program, options, machine_salt), planning and
  /// inserting on first request. Also bumps the exec.plan_cache.{hits,
  /// misses} counters in metrics::Registry::current().
  std::shared_ptr<const comm::CommPlan> get_or_plan(const zir::Program& program,
                                                    const comm::OptOptions& options,
                                                    std::string_view machine_salt = "");

  /// Lookup without planning (nullptr on miss; does not count hit/miss).
  [[nodiscard]] std::shared_ptr<const comm::CommPlan> peek(const std::string& key) const;

  [[nodiscard]] PlanCacheStats stats() const;
  void clear();

  /// The process-wide cache the bench harnesses and CLI sweeps share.
  static PlanCache& process();

 private:
  // Entries are shared_ptr-owned so a looked-up entry stays alive for the
  // caller holding it even if eviction drops it from the table meanwhile.
  struct Entry {
    std::string key;
    std::once_flag once;
    std::shared_ptr<const comm::CommPlan> plan;  // set under `once`
    long long bytes = 0;                         // set under `once`
    std::list<Entry*>::iterator lru;             // position in lru_
  };

  void touch_locked(Entry& entry);
  void account_and_evict(Entry& entry);

  mutable std::mutex mu_;
  Options options_;
  std::function<std::uint64_t(std::string_view)> hash_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>> buckets_;
  std::list<Entry*> lru_;  // front = most recently used
  PlanCacheStats stats_;
};

}  // namespace zc::exec
