// Concurrency-safe memoization of communication plans: a sweep over a grid
// of (program x OptOptions x machine) configurations parses and optimizes
// each *distinct* configuration exactly once, sharing one immutable
// comm::CommPlan across every run that executes it (plans are read-only
// after planning; the engine never mutates one).
//
// Keying: the cache key is the *content* of the configuration, not object
// identity — the canonical printed form of the ZIR program (zir::to_source,
// which drops source offsets: two programs lexed from sources differing
// only in whitespace/comments key identically) plus every semantic
// OptOptions field plus a machine salt (the model name; planning itself is
// machine-independent, so e.g. "pl" and "pl with shmem" — same options,
// same T3D — share one plan). OptOptions::pass_log is deliberately NOT part
// of the key and never attached to cached planning: plans are bit-identical
// with or without a log (src/report contract), and provenance callers go to
// plan_communication directly.
//
// Collisions: entries are bucketed by a 64-bit FNV-1a hash of the key but
// verified by full key comparison, so hash collisions cost a probe, never
// correctness (tests force a degenerate constant hash to pin this).
//
// Concurrency: the table is split into `Options::shards` independently
// mutex-guarded shards (keys route by bucket hash), so concurrent lookups
// of different keys contend only within a shard — the process-wide cache a
// long-running server answers from uses 16 shards; the default is 1, which
// is exactly the single-lock behaviour. Planning itself runs outside any
// table lock under a per-entry std::call_once, so two workers asking for
// the same key block on one planning run while different keys plan in
// parallel. Hit/miss totals are deterministic for a fixed work set
// (misses == distinct keys) regardless of scheduling or shard count.
//
// Eviction: an optional byte budget (approximate plan + key footprint)
// evicts least-recently-used *completed* entries; shared_ptr keeps evicted
// plans alive for the runs still holding them. With shards > 1 the budget
// splits evenly and LRU order is per-shard — approximate global LRU, exact
// conservation: entries == misses - evictions always holds in aggregate.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/comm/optimizer.h"
#include "src/support/json.h"

namespace zc::exec {

/// Builds the canonical cache key text for (program, options, machine).
std::string plan_key(const zir::Program& program, const comm::OptOptions& options,
                     std::string_view machine_salt);

/// Same key, from an already-printed canonical program text (the
/// zir::to_source output). Lets a caller that looks the same program up
/// many times — the serve hot path — pay the program serialization once.
std::string plan_key_for_text(std::string_view program_text,
                              const comm::OptOptions& options,
                              std::string_view machine_salt);

/// 64-bit FNV-1a — the default bucket hash.
std::uint64_t fnv1a(std::string_view s);

/// Approximate resident size of a plan (vectors' element footprints); the
/// unit the byte budget is accounted in.
long long plan_size_bytes(const comm::CommPlan& plan);

struct PlanCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
  long long entries = 0;  ///< currently resident
  long long bytes = 0;    ///< approximate resident footprint

  [[nodiscard]] long long lookups() const { return hits + misses; }

  [[nodiscard]] double hit_rate() const {
    const long long total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Serve-facing exposition: {hits, misses, evictions, entries, bytes,
  /// hit_rate} — what a {"cmd":"stats"} response embeds.
  [[nodiscard]] json::Value to_json() const;
};

class PlanCache {
 public:
  struct Options {
    /// 0 = unlimited. Otherwise evict LRU completed entries whenever the
    /// approximate resident footprint exceeds this (split evenly across
    /// shards when shards > 1).
    long long byte_budget = 0;
    /// Lock stripes: keys route to shards by bucket hash, each shard with
    /// its own mutex, table, LRU list, and budget slice. 1 (the default)
    /// is the exact single-lock, global-LRU behaviour; values < 1 clamp
    /// to 1. The process() cache uses kProcessShards.
    int shards = 1;
    /// Test seam: override the bucket hash (e.g. a constant, to force every
    /// key into one bucket and exercise collision handling).
    std::function<std::uint64_t(std::string_view)> hash;
  };

  /// Stripe count for the shared process-wide cache (the serve hot path).
  static constexpr int kProcessShards = 16;

  PlanCache();
  explicit PlanCache(Options options);

  /// The cached plan for (program, options, machine_salt), planning and
  /// inserting on first request. Also bumps the exec.plan_cache.{hits,
  /// misses} counters in metrics::Registry::current().
  std::shared_ptr<const comm::CommPlan> get_or_plan(const zir::Program& program,
                                                    const comm::OptOptions& options,
                                                    std::string_view machine_salt = "");

  /// Same lookup with the program's canonical text (zir::to_source output)
  /// supplied by the caller, skipping the per-lookup serialization — the
  /// serve hot path, where the text is memoized alongside the program.
  /// `program_text` MUST be to_source(program) or lookups silently fork.
  std::shared_ptr<const comm::CommPlan> get_or_plan(const zir::Program& program,
                                                    std::string_view program_text,
                                                    const comm::OptOptions& options,
                                                    std::string_view machine_salt);

  /// Lookup without planning (nullptr on miss; does not count hit/miss).
  [[nodiscard]] std::shared_ptr<const comm::CommPlan> peek(const std::string& key) const;

  [[nodiscard]] PlanCacheStats stats() const;
  void clear();

  /// The process-wide cache the bench harnesses and CLI sweeps share.
  static PlanCache& process();

 private:
  // Entries are shared_ptr-owned so a looked-up entry stays alive for the
  // caller holding it even if eviction drops it from the table meanwhile.
  struct Entry {
    std::string key;
    std::once_flag once;
    // plan/bytes are published under the shard lock (peek and the eviction
    // scan read them through other entries' pointers while holding it); the
    // filling thread's waiters are additionally ordered by `once`.
    std::shared_ptr<const comm::CommPlan> plan;
    long long bytes = 0;
    std::list<Entry*>::iterator lru;             // position in the shard's lru
  };

  /// One lock stripe: its own table, LRU order, stats, and budget slice.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>> buckets;
    std::list<Entry*> lru;  // front = most recently used
    PlanCacheStats stats;
    long long byte_budget = 0;  // this shard's slice; 0 = unlimited
  };

  std::shared_ptr<const comm::CommPlan> get_or_plan_keyed(std::string key,
                                                          const zir::Program& program,
                                                          const comm::OptOptions& options);

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) const;
  static void touch_locked(Shard& shard, Entry& entry);
  /// Publishes a freshly-planned entry's plan/bytes under the shard lock,
  /// charges the budget, and evicts LRU completed entries past it.
  void account_and_evict(Shard& shard, Entry& entry,
                         std::shared_ptr<const comm::CommPlan> plan, long long bytes);

  Options options_;
  std::function<std::uint64_t(std::string_view)> hash_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace zc::exec
