#include "src/exec/sweep.h"

#include <chrono>
#include <cstring>
#include <exception>

#include "src/prof/prof.h"
#include "src/support/check.h"

namespace zc::exec {

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer — cheap and well-distributed for fold hashing.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return h * 1099511628211ULL ^ v;
}

std::uint64_t mix_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) h = mix(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

std::uint64_t result_checksum(const sim::RunResult& result) {
  std::uint64_t h = 1469598103934665603ULL;
  h = mix(h, bits_of(result.elapsed_seconds));
  h = mix(h, static_cast<std::uint64_t>(result.dynamic_count));
  h = mix(h, static_cast<std::uint64_t>(result.total_messages));
  h = mix(h, static_cast<std::uint64_t>(result.total_bytes));
  h = mix(h, static_cast<std::uint64_t>(result.reduction_count));
  for (const auto& [name, value] : result.scalars) {
    h = mix_str(h, name);
    h = mix(h, bits_of(value));
  }
  for (const auto& [name, value] : result.checksums) {
    h = mix_str(h, name);
    h = mix(h, bits_of(value));
  }
  for (const sim::CommCounters& c : result.per_proc) {
    h = mix(h, static_cast<std::uint64_t>(c.communications));
    h = mix(h, static_cast<std::uint64_t>(c.messages_sent));
    h = mix(h, static_cast<std::uint64_t>(c.messages_received));
    h = mix(h, static_cast<std::uint64_t>(c.bytes_sent));
    h = mix(h, static_cast<std::uint64_t>(c.bytes_received));
  }
  return h;
}

std::vector<SweepResult> run_sweep(const std::vector<SweepItem>& items,
                                   const SweepOptions& options) {
  PlanCache& cache = options.plan_cache != nullptr ? *options.plan_cache : PlanCache::process();
  const int jobs = options.jobs == 0 ? ThreadPool::hardware_jobs() : options.jobs;

  std::vector<SweepResult> results(items.size());

  const auto task = [&](std::size_t i) {
    const SweepItem& item = items[i];
    SweepResult& out = results[i];  // submission slot: no cross-task writes
    out.registry = std::make_shared<metrics::Registry>();
    const metrics::ScopedRegistry scoped(*out.registry);
    // Worker threads have no profiler attached; opt this task in for its
    // duration so its spans merge into the submitter's profile tree.
    const prof::Attach attach(options.host_profiler);
    const auto wall_start = std::chrono::steady_clock::now();
    try {
      if (item.program == nullptr) throw Error("sweep item '" + item.label + "' has no program");
      out.plan = cache.get_or_plan(*item.program, item.experiment.opts, item.machine.name);

      sim::RunConfig config;
      config.machine = item.machine;
      config.procs = item.procs;
      config.config_overrides = item.config_overrides;
      std::unique_ptr<trace::Recorder> recorder;
      if (item.trace) {
        recorder = std::make_unique<trace::Recorder>(item.procs, options.recorder_options);
        config.recorder = recorder.get();
      }
      out.metrics = driver::run_planned(*item.program, *out.plan, item.experiment,
                                        std::move(config));
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  };

  if (jobs == 1) {
    // Inline serial path — identical to ThreadPool(1) but with zero pool
    // setup, and the baseline every parallel schedule is compared against.
    for (std::size_t i = 0; i < items.size(); ++i) task(i);
  } else {
    ThreadPool pool(jobs);
    pool.run(items.size(), task);
  }

  if (options.merge_metrics) {
    metrics::Registry& sink = metrics::Registry::current();
    for (const SweepResult& r : results) {
      if (r.registry != nullptr) sink.merge_from(*r.registry);
    }
  }
  return results;
}

}  // namespace zc::exec
