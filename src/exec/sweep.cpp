#include "src/exec/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>

#include "src/prof/prof.h"
#include "src/support/check.h"

namespace zc::exec {

namespace {

/// Resolved channel indices of a sweep telemetry sink (-1 = channel absent;
/// resolution by name keeps WallSeries generic).
struct TelemetryChannels {
  int busy = -1;
  int tasks = -1;
  int latency = -1;
  int own_pop = -1;
  int steal = -1;
  int cache_hit = -1;
  int cache_miss = -1;
};

int channel_index(const std::vector<std::string>& names, const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

TelemetryChannels resolve_channels(const tseries::WallSeries& series) {
  const std::vector<std::string>& names = series.channel_names();
  TelemetryChannels ch;
  ch.busy = channel_index(names, "busy");
  ch.tasks = channel_index(names, "tasks");
  ch.latency = channel_index(names, "latency");
  ch.own_pop = channel_index(names, "own_pop");
  ch.steal = channel_index(names, "steal");
  ch.cache_hit = channel_index(names, "cache_hit");
  ch.cache_miss = channel_index(names, "cache_miss");
  return ch;
}

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer — cheap and well-distributed for fold hashing.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return h * 1099511628211ULL ^ v;
}

std::uint64_t mix_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) h = mix(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

std::uint64_t result_checksum(const sim::RunResult& result) {
  std::uint64_t h = 1469598103934665603ULL;
  h = mix(h, bits_of(result.elapsed_seconds));
  h = mix(h, static_cast<std::uint64_t>(result.dynamic_count));
  h = mix(h, static_cast<std::uint64_t>(result.total_messages));
  h = mix(h, static_cast<std::uint64_t>(result.total_bytes));
  h = mix(h, static_cast<std::uint64_t>(result.reduction_count));
  for (const auto& [name, value] : result.scalars) {
    h = mix_str(h, name);
    h = mix(h, bits_of(value));
  }
  for (const auto& [name, value] : result.checksums) {
    h = mix_str(h, name);
    h = mix(h, bits_of(value));
  }
  for (const sim::CommCounters& c : result.per_proc) {
    h = mix(h, static_cast<std::uint64_t>(c.communications));
    h = mix(h, static_cast<std::uint64_t>(c.messages_sent));
    h = mix(h, static_cast<std::uint64_t>(c.messages_received));
    h = mix(h, static_cast<std::uint64_t>(c.bytes_sent));
    h = mix(h, static_cast<std::uint64_t>(c.bytes_received));
  }
  return h;
}

std::unique_ptr<tseries::WallSeries> make_sweep_series(int jobs, int window_count) {
  const int rows = std::max(1, jobs == 0 ? ThreadPool::hardware_jobs() : jobs);
  return std::make_unique<tseries::WallSeries>(
      rows,
      std::vector<std::string>{"busy", "tasks", "latency", "own_pop", "steal", "cache_hit",
                               "cache_miss"},
      window_count);
}

std::vector<SweepResult> run_sweep(const std::vector<SweepItem>& items,
                                   const SweepOptions& options) {
  PlanCache& cache = options.plan_cache != nullptr ? *options.plan_cache : PlanCache::process();
  const int jobs = options.jobs == 0 ? ThreadPool::hardware_jobs() : options.jobs;

  std::vector<SweepResult> results(items.size());

  tseries::WallSeries* const telemetry = options.telemetry;
  TelemetryChannels channels;
  if (telemetry != nullptr) {
    ZC_ASSERT(telemetry->rows() >= std::max(1, jobs));
    channels = resolve_channels(*telemetry);
  }
  std::atomic<std::size_t> finished{0};
  std::mutex progress_mu;

  const auto task = [&](std::size_t i) {
    const SweepItem& item = items[i];
    SweepResult& out = results[i];  // submission slot: no cross-task writes
    out.registry = std::make_shared<metrics::Registry>();
    const metrics::ScopedRegistry scoped(*out.registry);
    // The pool wraps each context's epoch drain in a profiler attach + a
    // pool/worker/<i> span (set_profiler below), so pool-run tasks nest
    // their spans there. Attach here only on spanless paths — the jobs == 1
    // inline loop — and never with nullptr: prof::Attach(nullptr) would
    // *detach* a profiler the calling thread already carries.
    std::optional<prof::Attach> attach;
    if (options.host_profiler != nullptr && !prof::enabled()) {
      attach.emplace(options.host_profiler);
    }
    const double tel_begin = telemetry != nullptr ? telemetry->now() : 0.0;
    const auto wall_start = std::chrono::steady_clock::now();
    try {
      if (item.program == nullptr) throw Error("sweep item '" + item.label + "' has no program");
      out.plan = cache.get_or_plan(*item.program, item.experiment.opts, item.machine.name);

      sim::RunConfig config;
      config.machine = item.machine;
      config.procs = item.procs;
      config.config_overrides = item.config_overrides;
      std::unique_ptr<trace::Recorder> recorder;
      if (item.trace) {
        recorder = std::make_unique<trace::Recorder>(item.procs, options.recorder_options);
        config.recorder = recorder.get();
      }
      out.metrics = driver::run_planned(*item.program, *out.plan, item.experiment,
                                        std::move(config));
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

    if (telemetry != nullptr) {
      // Row = execution context; the inline path (current_context() == -1)
      // maps to row 0. All writes go through WallSeries' lock.
      const double tel_end = telemetry->now();
      const int row = std::max(0, ThreadPool::current_context());
      if (channels.busy >= 0) telemetry->add_span(row, channels.busy, tel_begin, tel_end);
      if (channels.tasks >= 0) telemetry->add_at(row, channels.tasks, tel_end, 1.0);
      if (channels.latency >= 0) {
        telemetry->add_at(row, channels.latency, tel_end, out.wall_seconds);
      }
      const int pop_channel =
          ThreadPool::current_task_stolen() ? channels.steal : channels.own_pop;
      if (pop_channel >= 0) telemetry->add_at(row, pop_channel, tel_end, 1.0);
      const long long hits = out.registry->counter("exec.plan_cache.hits");
      const long long misses = out.registry->counter("exec.plan_cache.misses");
      if (channels.cache_hit >= 0 && hits > 0) {
        telemetry->add_at(row, channels.cache_hit, tel_end, static_cast<double>(hits));
      }
      if (channels.cache_miss >= 0 && misses > 0) {
        telemetry->add_at(row, channels.cache_miss, tel_end, static_cast<double>(misses));
      }
    }
    if (options.progress) {
      const std::size_t done = finished.fetch_add(1, std::memory_order_relaxed) + 1;
      const std::lock_guard<std::mutex> lk(progress_mu);
      options.progress(done, items.size());
    }
  };

  if (jobs == 1) {
    // Inline serial path — identical to ThreadPool(1) but with zero pool
    // setup, and the baseline every parallel schedule is compared against.
    for (std::size_t i = 0; i < items.size(); ++i) task(i);
  } else {
    ThreadPool pool(jobs);
    pool.set_profiler(options.host_profiler);
    pool.run(items.size(), task);
  }

  if (options.merge_metrics) {
    metrics::Registry& sink = metrics::Registry::current();
    for (const SweepResult& r : results) {
      if (r.registry != nullptr) sink.merge_from(*r.registry);
    }
  }
  return results;
}

}  // namespace zc::exec
