#include "src/exec/plan_cache.h"

#include <sstream>
#include <utility>

#include "src/support/metrics.h"
#include "src/zir/printer.h"

namespace zc::exec {

std::string plan_key(const zir::Program& program, const comm::OptOptions& options,
                     std::string_view machine_salt) {
  // Every semantic OptOptions field participates; pass_log deliberately does
  // not (see the header contract). The program is keyed by its canonical
  // printed form, which two structurally identical programs share no matter
  // how their sources were formatted.
  std::ostringstream key;
  key << "machine=" << machine_salt << '\n'
      << "remove_redundant=" << options.remove_redundant << '\n'
      << "combine=" << options.combine << '\n'
      << "pipeline=" << options.pipeline << '\n'
      << "heuristic=" << static_cast<int>(options.heuristic) << '\n'
      << "inter_block=" << options.inter_block << '\n'
      << "hybrid_max_elems=" << options.hybrid_max_elems << '\n'
      << "hybrid_min_window_fraction=" << options.hybrid_min_window_fraction << '\n'
      << "est_mesh_rows=" << options.est_mesh_rows << '\n'
      << "est_mesh_cols=" << options.est_mesh_cols << '\n'
      << "program:\n"
      << zir::to_source(program);
  return std::move(key).str();
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

long long plan_size_bytes(const comm::CommPlan& plan) {
  long long bytes = static_cast<long long>(sizeof(comm::CommPlan));
  for (const comm::BlockPlan& block : plan.blocks) {
    bytes += static_cast<long long>(sizeof(block));
    bytes += static_cast<long long>(block.stmts.size() * sizeof(zir::StmtId));
    bytes += static_cast<long long>(block.transfers.size() * sizeof(comm::Transfer));
    for (const comm::CommGroup& group : block.groups) {
      bytes += static_cast<long long>(sizeof(group));
      bytes += static_cast<long long>(group.members.size() * sizeof(comm::Member));
    }
  }
  return bytes;
}

PlanCache::PlanCache() : PlanCache(Options{}) {}

PlanCache::PlanCache(Options options) : options_(std::move(options)) {
  hash_ = options_.hash ? options_.hash : fnv1a;
}

std::shared_ptr<const comm::CommPlan> PlanCache::get_or_plan(const zir::Program& program,
                                                             const comm::OptOptions& options,
                                                             std::string_view machine_salt) {
  const std::string key = plan_key(program, options, machine_salt);
  const std::uint64_t h = hash_(key);

  std::shared_ptr<Entry> entry;  // pins the entry across eviction
  bool inserted = false;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::shared_ptr<Entry>>& bucket = buckets_[h];
    for (const std::shared_ptr<Entry>& candidate : bucket) {
      if (candidate->key == key) {  // full-key compare: collisions only probe
        entry = candidate;
        break;
      }
    }
    if (entry == nullptr) {
      entry = std::make_shared<Entry>();
      bucket.push_back(entry);
      entry->key = key;
      lru_.push_front(entry.get());
      entry->lru = lru_.begin();
      ++stats_.entries;
      ++stats_.misses;
      inserted = true;
    } else {
      ++stats_.hits;
      touch_locked(*entry);
    }
  }

  if (inserted) {
    metrics::Registry::current().count("exec.plan_cache.misses");
  } else {
    metrics::Registry::current().count("exec.plan_cache.hits");
  }

  // Planning runs outside the table lock: concurrent distinct keys plan in
  // parallel; concurrent requests for the same key block on one planning run.
  std::call_once(entry->once, [&] {
    comm::OptOptions clean = options;
    clean.pass_log = nullptr;  // plans are bit-identical without a log
    auto plan = std::make_shared<comm::CommPlan>(comm::plan_communication(program, clean));
    entry->bytes = plan_size_bytes(*plan) + static_cast<long long>(entry->key.size());
    entry->plan = std::move(plan);
    account_and_evict(*entry);
  });
  return entry->plan;
}

std::shared_ptr<const comm::CommPlan> PlanCache::peek(const std::string& key) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = buckets_.find(hash_(key));
  if (it == buckets_.end()) return nullptr;
  for (const std::shared_ptr<Entry>& candidate : it->second) {
    if (candidate->key == key) return candidate->plan;
  }
  return nullptr;
}

PlanCacheStats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lk(mu_);
  buckets_.clear();
  lru_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

void PlanCache::touch_locked(Entry& entry) {
  lru_.erase(entry.lru);
  lru_.push_front(&entry);
  entry.lru = lru_.begin();
}

void PlanCache::account_and_evict(Entry& entry) {
  long long evicted = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stats_.bytes += entry.bytes;
    if (options_.byte_budget > 0) {
      // Evict least-recently-used *completed* entries (a still-planning entry
      // has bytes == 0 and owners waiting on its once_flag) until under
      // budget; never the entry just filled, so a plan larger than the whole
      // budget still gets returned and merely won't be retained long.
      auto it = lru_.end();
      while (stats_.bytes > options_.byte_budget && it != lru_.begin()) {
        --it;
        Entry* victim = *it;
        if (victim == &entry || victim->plan == nullptr) continue;
        stats_.bytes -= victim->bytes;
        --stats_.entries;
        ++stats_.evictions;
        ++evicted;
        const std::uint64_t h = hash_(victim->key);
        it = lru_.erase(it);
        std::vector<std::shared_ptr<Entry>>& bucket = buckets_[h];
        for (auto b = bucket.begin(); b != bucket.end(); ++b) {
          if (b->get() == victim) {
            bucket.erase(b);
            break;
          }
        }
        if (bucket.empty()) buckets_.erase(h);
      }
    }
  }
  if (evicted > 0) {
    metrics::Registry::current().count("exec.plan_cache.evictions", evicted);
  }
}

PlanCache& PlanCache::process() {
  static PlanCache cache;
  return cache;
}

}  // namespace zc::exec
