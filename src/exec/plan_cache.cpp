#include "src/exec/plan_cache.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/support/metrics.h"
#include "src/zir/printer.h"

namespace zc::exec {

std::string plan_key_for_text(std::string_view program_text,
                              const comm::OptOptions& options,
                              std::string_view machine_salt) {
  // Every semantic OptOptions field participates; pass_log deliberately does
  // not (see the header contract). The program is keyed by its canonical
  // printed form, which two structurally identical programs share no matter
  // how their sources were formatted.
  std::ostringstream key;
  key << "machine=" << machine_salt << '\n'
      << "remove_redundant=" << options.remove_redundant << '\n'
      << "combine=" << options.combine << '\n'
      << "pipeline=" << options.pipeline << '\n'
      << "heuristic=" << static_cast<int>(options.heuristic) << '\n'
      << "inter_block=" << options.inter_block << '\n'
      << "hybrid_max_elems=" << options.hybrid_max_elems << '\n'
      << "hybrid_min_window_fraction=" << options.hybrid_min_window_fraction << '\n'
      << "est_mesh_rows=" << options.est_mesh_rows << '\n'
      << "est_mesh_cols=" << options.est_mesh_cols << '\n'
      << "program:\n"
      << program_text;
  return std::move(key).str();
}

std::string plan_key(const zir::Program& program, const comm::OptOptions& options,
                     std::string_view machine_salt) {
  return plan_key_for_text(zir::to_source(program), options, machine_salt);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

long long plan_size_bytes(const comm::CommPlan& plan) {
  long long bytes = static_cast<long long>(sizeof(comm::CommPlan));
  for (const comm::BlockPlan& block : plan.blocks) {
    bytes += static_cast<long long>(sizeof(block));
    bytes += static_cast<long long>(block.stmts.size() * sizeof(zir::StmtId));
    bytes += static_cast<long long>(block.transfers.size() * sizeof(comm::Transfer));
    for (const comm::CommGroup& group : block.groups) {
      bytes += static_cast<long long>(sizeof(group));
      bytes += static_cast<long long>(group.members.size() * sizeof(comm::Member));
    }
  }
  return bytes;
}

json::Value PlanCacheStats::to_json() const {
  json::Value v = json::Value::make_object();
  v["hits"] = json::Value::make_int(hits);
  v["misses"] = json::Value::make_int(misses);
  v["evictions"] = json::Value::make_int(evictions);
  v["entries"] = json::Value::make_int(entries);
  v["bytes"] = json::Value::make_int(bytes);
  v["hit_rate"] = json::Value::make_num(hit_rate());
  return v;
}

PlanCache::PlanCache() : PlanCache(Options{}) {}

PlanCache::PlanCache(Options options) : options_(std::move(options)) {
  hash_ = options_.hash ? options_.hash : fnv1a;
  const int shards = std::max(1, options_.shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // The budget splits evenly; the first shard absorbs the remainder so
    // the slices sum exactly to the configured budget.
    if (options_.byte_budget > 0) {
      shard->byte_budget = options_.byte_budget / shards +
                           (i == 0 ? options_.byte_budget % shards : 0);
      shard->byte_budget = std::max<long long>(shard->byte_budget, 1);
    }
    shards_.push_back(std::move(shard));
  }
}

PlanCache::Shard& PlanCache::shard_for(std::uint64_t hash) const {
  return *shards_[hash % shards_.size()];
}

std::shared_ptr<const comm::CommPlan> PlanCache::get_or_plan(const zir::Program& program,
                                                             const comm::OptOptions& options,
                                                             std::string_view machine_salt) {
  return get_or_plan_keyed(plan_key(program, options, machine_salt), program, options);
}

std::shared_ptr<const comm::CommPlan> PlanCache::get_or_plan(const zir::Program& program,
                                                             std::string_view program_text,
                                                             const comm::OptOptions& options,
                                                             std::string_view machine_salt) {
  return get_or_plan_keyed(plan_key_for_text(program_text, options, machine_salt),
                           program, options);
}

std::shared_ptr<const comm::CommPlan> PlanCache::get_or_plan_keyed(
    std::string key, const zir::Program& program, const comm::OptOptions& options) {
  const std::uint64_t h = hash_(key);
  Shard& shard = shard_for(h);

  std::shared_ptr<Entry> entry;  // pins the entry across eviction
  bool inserted = false;
  {
    const std::lock_guard<std::mutex> lk(shard.mu);
    std::vector<std::shared_ptr<Entry>>& bucket = shard.buckets[h];
    for (const std::shared_ptr<Entry>& candidate : bucket) {
      if (candidate->key == key) {  // full-key compare: collisions only probe
        entry = candidate;
        break;
      }
    }
    if (entry == nullptr) {
      entry = std::make_shared<Entry>();
      bucket.push_back(entry);
      entry->key = std::move(key);
      shard.lru.push_front(entry.get());
      entry->lru = shard.lru.begin();
      ++shard.stats.entries;
      ++shard.stats.misses;
      inserted = true;
    } else {
      ++shard.stats.hits;
      touch_locked(shard, *entry);
    }
  }

  if (inserted) {
    metrics::Registry::current().count("exec.plan_cache.misses");
  } else {
    metrics::Registry::current().count("exec.plan_cache.hits");
  }

  // Planning runs outside the table lock: concurrent distinct keys plan in
  // parallel; concurrent requests for the same key block on one planning run.
  std::call_once(entry->once, [&] {
    comm::OptOptions clean = options;
    clean.pass_log = nullptr;  // plans are bit-identical without a log
    auto plan = std::make_shared<comm::CommPlan>(comm::plan_communication(program, clean));
    const long long bytes =
        plan_size_bytes(*plan) + static_cast<long long>(entry->key.size());
    // Publication happens under the shard lock: peek() and the eviction scan
    // read other entries' plan pointers while holding it, and either can land
    // on this entry mid-fill. Waiters on the once_flag need no lock — call_once
    // orders their reads after this store.
    account_and_evict(shard, *entry, std::move(plan), bytes);
  });
  return entry->plan;
}

std::shared_ptr<const comm::CommPlan> PlanCache::peek(const std::string& key) const {
  const std::uint64_t h = hash_(key);
  Shard& shard = shard_for(h);
  const std::lock_guard<std::mutex> lk(shard.mu);
  const auto it = shard.buckets.find(h);
  if (it == shard.buckets.end()) return nullptr;
  for (const std::shared_ptr<Entry>& candidate : it->second) {
    if (candidate->key == key) return candidate->plan;
  }
  return nullptr;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lk(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.entries += shard->stats.entries;
    total.bytes += shard->stats.bytes;
  }
  return total;
}

void PlanCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lk(shard->mu);
    shard->buckets.clear();
    shard->lru.clear();
    shard->stats.entries = 0;
    shard->stats.bytes = 0;
  }
}

void PlanCache::touch_locked(Shard& shard, Entry& entry) {
  shard.lru.erase(entry.lru);
  shard.lru.push_front(&entry);
  entry.lru = shard.lru.begin();
}

void PlanCache::account_and_evict(Shard& shard, Entry& entry,
                                  std::shared_ptr<const comm::CommPlan> plan,
                                  long long bytes) {
  long long evicted = 0;
  {
    const std::lock_guard<std::mutex> lk(shard.mu);
    entry.bytes = bytes;
    entry.plan = std::move(plan);
    shard.stats.bytes += entry.bytes;
    if (shard.byte_budget > 0) {
      // Evict least-recently-used *completed* entries (a still-planning entry
      // has bytes == 0 and owners waiting on its once_flag) until under
      // budget; never the entry just filled, so a plan larger than the whole
      // budget still gets returned and merely won't be retained long.
      auto it = shard.lru.end();
      while (shard.stats.bytes > shard.byte_budget && it != shard.lru.begin()) {
        --it;
        Entry* victim = *it;
        if (victim == &entry || victim->plan == nullptr) continue;
        shard.stats.bytes -= victim->bytes;
        --shard.stats.entries;
        ++shard.stats.evictions;
        ++evicted;
        const std::uint64_t h = hash_(victim->key);
        it = shard.lru.erase(it);
        std::vector<std::shared_ptr<Entry>>& bucket = shard.buckets[h];
        for (auto b = bucket.begin(); b != bucket.end(); ++b) {
          if (b->get() == victim) {
            bucket.erase(b);
            break;
          }
        }
        if (bucket.empty()) shard.buckets.erase(h);
      }
    }
  }
  if (evicted > 0) {
    metrics::Registry::current().count("exec.plan_cache.evictions", evicted);
  }
}

PlanCache& PlanCache::process() {
  static PlanCache cache{[] {
    Options options;
    options.shards = kProcessShards;
    return options;
  }()};
  return cache;
}

}  // namespace zc::exec
