// The sweep engine: runs a grid of independent pipeline configurations
// (program x experiment x procs x overrides) across a work-stealing thread
// pool (src/exec/pool.h), memoizing communication plans in a PlanCache so
// each distinct (program, options) pair is optimized exactly once.
//
// Determinism contract (what the stress test pins):
//   - Results are collected into a vector slotted by submission index —
//     result order never depends on scheduling.
//   - Each task publishes metrics into its own private Registry
//     (metrics::ScopedRegistry); at join those are merged into the
//     submitter's Registry::current() in submission order, so merged totals
//     are identical for any jobs count.
//   - Each task gets its own sim::Engine, Transport, and (if tracing) its
//     own trace::Recorder; the only cross-task shared state is deeply const:
//     the zir::Program, the cached CommPlans, and the machine model value.
//   - options.jobs == 1 executes inline on the calling thread in submission
//     order — the exact serial path — and every jobs > 1 schedule must
//     produce bit-identical checksums, plans, and trace Stats against it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/driver.h"
#include "src/exec/plan_cache.h"
#include "src/exec/pool.h"
#include "src/support/metrics.h"
#include "src/trace/recorder.h"
#include "src/tseries/tseries.h"

namespace zc::prof {
class Profiler;
}  // namespace zc::prof

namespace zc::exec {

/// One grid point: everything one pipeline run needs.
struct SweepItem {
  std::string label;  ///< caller's row identity (e.g. "tomcatv/pl/p64")
  /// The parsed program, shared across items (parse once per source — the
  /// scheduler never parses).
  std::shared_ptr<const zir::Program> program;
  driver::Experiment experiment;
  int procs = 64;
  std::map<std::string, long long> config_overrides;
  machine::MachineModel machine = machine::t3d_model();
  bool trace = false;  ///< attach a per-run Recorder, yielding trace_stats
};

/// One grid point's outcome, in the submission slot of its SweepItem.
struct SweepResult {
  bool ok = false;
  std::string error;  ///< what() of the task's exception, when !ok

  driver::Metrics metrics;  ///< run detail (valid when ok)
  /// The shared cached plan this run executed (also copied inside
  /// metrics.plan, as for a serial driver run).
  std::shared_ptr<const comm::CommPlan> plan;
  /// The task's private metrics registry (also merged into the submitter's
  /// current() at join, in submission order).
  std::shared_ptr<metrics::Registry> registry;
  double wall_seconds = 0.0;  ///< host wall time of this task's plan+run
};

struct SweepOptions {
  /// Execution contexts (caller + jobs-1 workers). 1 = inline serial.
  /// 0 = ThreadPool::hardware_jobs().
  int jobs = 1;
  /// Plan memoization cache; nullptr = PlanCache::process().
  PlanCache* plan_cache = nullptr;
  /// Optional host profiler: each task attaches to it for its duration so
  /// worker spans land in the merged profile tree.
  prof::Profiler* host_profiler = nullptr;
  /// Recorder sizing for items with trace = true.
  trace::RecorderOptions recorder_options;
  /// Merge each task's registry into the submitter's Registry::current()
  /// at join (submission order). Off only for callers that inspect
  /// per-result registries themselves.
  bool merge_metrics = true;
  /// Optional per-worker wall-clock telemetry sink (see make_sweep_series;
  /// rows must cover the resolved jobs count). Each task adds its busy span
  /// plus tasks / latency / own_pop-or-steal / cache_hit-or-miss point
  /// samples at completion. nullptr = off, no per-task telemetry work.
  /// Telemetry never feeds back into results: checksums, plans, and merged
  /// metrics stay bit-identical with it on or off.
  tseries::WallSeries* telemetry = nullptr;
  /// Called after each task completes with (finished, total), serialized by
  /// an internal mutex (safe to print from). Invocation order is
  /// scheduling-dependent — progress output must go to stderr, never to a
  /// determinism-pinned stream.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Builds the WallSeries a sweep feeds: one row per execution context
/// (max(1, jobs) — the jobs == 1 inline path maps to row 0) and the
/// channels {"busy", "tasks", "latency", "own_pop", "steal", "cache_hit",
/// "cache_miss"}. busy is seconds-in-task (utilization = busy / width),
/// tasks / own_pop / steal / cache_* are counts, latency is summed task
/// wall seconds (mean = latency / tasks).
std::unique_ptr<tseries::WallSeries> make_sweep_series(int jobs, int window_count = 64);

/// Runs every item and returns results in submission order. Item failures
/// are reported per-result (ok = false), never thrown; only pool-level
/// failures throw.
std::vector<SweepResult> run_sweep(const std::vector<SweepItem>& items,
                                   const SweepOptions& options = {});

/// Order-independent bit-fold of a run's numeric outputs (checksums,
/// scalars, counters, elapsed time) — equal iff the runs are bit-identical
/// in every compared field. The sweep determinism tests compare these.
std::uint64_t result_checksum(const sim::RunResult& result);

}  // namespace zc::exec
