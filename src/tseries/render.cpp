#include "src/tseries/render.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace zc::tseries {

namespace {

// Ten-step intensity ramp: index by round(fraction * 9).
constexpr const char kRamp[] = " .:-=+*#%@";

char glyph(double fraction) {
  const int step = static_cast<int>(std::lround(std::clamp(fraction, 0.0, 1.0) * 9.0));
  return kRamp[step];
}

std::string fixed(double v, int digits = 3) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string sci(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

int channel_index(const WallSeries& s, const std::string& name) {
  const auto& names = s.channel_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string heatmap(const SimSeries& s, const std::string& title) {
  std::ostringstream out;
  const int used = s.used_windows();
  const double w = s.window_width();
  out << "timeline: " << title << " — " << s.procs() << " procs, " << used << " window"
      << (used == 1 ? "" : "s") << " x " << sci(w) << " s (duration " << sci(s.duration())
      << " s)\n";
  out << "utilization = (cpu + compute) / window; ramp \"" << kRamp << "\" = 0..100%\n";
  for (int p = 0; p < s.procs(); ++p) {
    out << "  proc " << p << (p < 10 ? "  |" : " |");
    for (int i = 0; i < used; ++i) {
      const double busy =
          s.value(p, SimSeries::kCpu, i) + s.value(p, SimSeries::kCompute, i);
      out << glyph(busy / w);
    }
    out << "|\n";
  }
  // Aggregate rows: average over processors so the scale stays 0..1.
  const double procs = static_cast<double>(s.procs());
  for (const SimSeries::Channel c : {SimSeries::kWait, SimSeries::kWireExposed}) {
    out << (c == SimSeries::kWait ? "  wait    |" : "  exposed |");
    for (int i = 0; i < used; ++i) {
      double sum = 0.0;
      for (int p = 0; p < s.procs(); ++p) sum += s.value(p, c, i);
      out << glyph(sum / (procs * w));
    }
    out << "|\n";
  }
  out << "totals (s):";
  for (int c = 0; c < SimSeries::kChannelCount; ++c) {
    out << " " << SimSeries::channel_name(c) << " "
        << sci(s.total(static_cast<SimSeries::Channel>(c)));
  }
  out << "\n";
  return out.str();
}

std::string sweep_summary(const WallSeries& s) {
  std::ostringstream out;
  const int used = s.used_windows();
  const double w = s.window_width();
  const int busy = channel_index(s, "busy");
  const int tasks = channel_index(s, "tasks");
  const int latency = channel_index(s, "latency");
  const int own = channel_index(s, "own_pop");
  const int steal = channel_index(s, "steal");
  const int hit = channel_index(s, "cache_hit");
  const int miss = channel_index(s, "cache_miss");
  out << "sweep timeline: " << s.rows() << " worker" << (s.rows() == 1 ? "" : "s") << ", "
      << used << " window" << (used == 1 ? "" : "s") << " x " << sci(w) << " s\n";
  for (int r = 0; r < s.rows(); ++r) {
    const double row_tasks = tasks >= 0 ? s.row_total(r, tasks) : 0.0;
    const double row_busy = busy >= 0 ? s.row_total(r, busy) : 0.0;
    const double denom = std::max(s.duration(), w);
    out << "  worker " << r << ": busy " << fixed(100.0 * row_busy / denom, 1) << "% |";
    if (busy >= 0) {
      for (int i = 0; i < used; ++i) out << glyph(s.value(r, busy, i) / w);
    }
    out << "| tasks " << static_cast<long long>(row_tasks);
    if (own >= 0 && steal >= 0) {
      out << " (own " << static_cast<long long>(s.row_total(r, own)) << ", stolen "
          << static_cast<long long>(s.row_total(r, steal)) << ")";
    }
    if (latency >= 0 && row_tasks > 0.0) {
      out << ", mean latency " << fixed(1e3 * s.row_total(r, latency) / row_tasks, 2)
          << " ms";
    }
    out << "\n";
  }
  if (hit >= 0 && miss >= 0) {
    const double hits = s.channel_total(hit);
    const double lookups = hits + s.channel_total(miss);
    if (lookups > 0.0) {
      out << "  plan cache: " << static_cast<long long>(hits) << "/"
          << static_cast<long long>(lookups) << " hits (rate "
          << fixed(hits / lookups, 3) << ")\n";
    }
  }
  return out.str();
}

}  // namespace zc::tseries
