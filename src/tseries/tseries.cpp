#include "src/tseries/tseries.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"
#include "src/support/csv.h"

namespace zc::tseries {

Windows::Windows(int rows, int channels, int window_count, double initial_width)
    : rows_(rows), channels_(channels), window_count_(window_count), width_(initial_width) {
  ZC_ASSERT(rows >= 1);
  ZC_ASSERT(channels >= 1);
  ZC_ASSERT(window_count >= 1);
  ZC_ASSERT(initial_width > 0.0);
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(channels) *
                   static_cast<std::size_t>(window_count),
               0.0);
}

std::size_t Windows::index(int row, int channel, int window) const {
  return (static_cast<std::size_t>(row) * static_cast<std::size_t>(channels_) +
          static_cast<std::size_t>(channel)) *
             static_cast<std::size_t>(window_count_) +
         static_cast<std::size_t>(window);
}

void Windows::fold_until(double t) {
  while (t > width_ * static_cast<double>(window_count_)) {
    // Merge adjacent window pairs: sums are preserved exactly (each cell
    // lands in exactly one merged cell), resolution halves.
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < channels_; ++c) {
        double* w = &data_[index(r, c, 0)];
        const int half = (window_count_ + 1) / 2;
        for (int i = 0; i < half; ++i) {
          const double a = w[2 * i];
          const double b = 2 * i + 1 < window_count_ ? w[2 * i + 1] : 0.0;
          w[i] = a + b;
        }
        std::fill(w + half, w + window_count_, 0.0);
      }
    }
    width_ *= 2.0;
  }
}

void Windows::add_span(int row, int channel, double t0, double t1) {
  if (!std::isfinite(t0) || !std::isfinite(t1)) return;
  t0 = std::max(t0, 0.0);
  duration_ = std::max(duration_, t1);
  if (t1 <= t0) return;
  fold_until(t1);
  const double w = width_;
  const int first = std::min(window_count_ - 1, static_cast<int>(t0 / w));
  for (int i = first; i < window_count_; ++i) {
    const double lo = std::max(t0, static_cast<double>(i) * w);
    const double hi = std::min(t1, static_cast<double>(i + 1) * w);
    if (hi <= lo) break;
    data_[index(row, channel, i)] += hi - lo;
  }
}

void Windows::add_at(int row, int channel, double t, double value) {
  if (!std::isfinite(t)) return;
  t = std::max(t, 0.0);
  duration_ = std::max(duration_, t);
  fold_until(t);
  const int i = std::min(window_count_ - 1, static_cast<int>(t / width_));
  data_[index(row, channel, i)] += value;
}

int Windows::used_windows() const {
  if (duration_ <= 0.0) return 1;
  const int used = static_cast<int>(std::ceil(duration_ / width_));
  return std::clamp(used, 1, window_count_);
}

double Windows::value(int row, int channel, int window) const {
  return data_[index(row, channel, window)];
}

double Windows::row_total(int row, int channel) const {
  double total = 0.0;
  for (int i = 0; i < window_count_; ++i) total += data_[index(row, channel, i)];
  return total;
}

double Windows::channel_total(int channel) const {
  double total = 0.0;
  for (int r = 0; r < rows_; ++r) total += row_total(r, channel);
  return total;
}

// ---- SimSeries ------------------------------------------------------------

const char* SimSeries::channel_name(int channel) {
  switch (channel) {
    case kCpu: return "cpu";
    case kWait: return "wait";
    case kWireExposed: return "wire_exposed";
    case kWireOverlapped: return "wire_overlapped";
    case kCompute: return "compute";
    case kBarrier: return "barrier";
    default: return "?";
  }
}

SimSeries::SimSeries(int procs, int window_count)
    : windows_(procs, kChannelCount, window_count) {}

void SimSeries::add_call(int proc, double begin, double unblocked, double end) {
  windows_.add_span(proc, kWait, begin, unblocked);
  windows_.add_span(proc, kCpu, unblocked, end);
}

void SimSeries::add_compute(int proc, double begin, double end) {
  windows_.add_span(proc, kCompute, begin, end);
}

void SimSeries::add_barrier(int proc, double begin, double end) {
  windows_.add_span(proc, kBarrier, begin, end);
}

void SimSeries::add_wire(int dst, double on_wire, double arrived, double wait_seconds) {
  const double wire = arrived - on_wire;
  if (!(wire > 0.0)) return;
  const double exposed = std::clamp(wait_seconds, 0.0, wire);
  windows_.add_span(dst, kWireExposed, arrived - exposed, arrived);
  windows_.add_span(dst, kWireOverlapped, on_wire, arrived - exposed);
}

json::Value SimSeries::to_json() const {
  json::Value v = json::Value::make_object();
  v["kind"] = json::Value::make_str("zc-sim-timeline");
  v["procs"] = json::Value::make_int(procs());
  v["window_count"] = json::Value::make_int(window_count());
  v["window_width"] = json::Value::make_num(window_width());
  v["duration"] = json::Value::make_num(duration());
  const int used = used_windows();
  v["used_windows"] = json::Value::make_int(used);
  json::Value channels = json::Value::make_object();
  for (int c = 0; c < kChannelCount; ++c) {
    json::Value per_proc = json::Value::make_array();
    for (int p = 0; p < procs(); ++p) {
      json::Value row = json::Value::make_array();
      for (int w = 0; w < used; ++w) {
        row.push_back(json::Value::make_num(value(p, static_cast<Channel>(c), w)));
      }
      per_proc.push_back(std::move(row));
    }
    channels[channel_name(c)] = std::move(per_proc);
  }
  v["channels"] = std::move(channels);
  return v;
}

std::string SimSeries::to_csv() const {
  CsvWriter csv({"proc", "channel", "window", "t0", "t1", "seconds"});
  const int used = used_windows();
  const double w = window_width();
  for (int p = 0; p < procs(); ++p) {
    for (int c = 0; c < kChannelCount; ++c) {
      for (int i = 0; i < used; ++i) {
        const double seconds = value(p, static_cast<Channel>(c), i);
        if (seconds == 0.0) continue;
        csv.add_row({std::to_string(p), channel_name(c), std::to_string(i),
                     std::to_string(static_cast<double>(i) * w),
                     std::to_string(static_cast<double>(i + 1) * w),
                     std::to_string(seconds)});
      }
    }
  }
  return csv.to_string();
}

// ---- WallSeries -----------------------------------------------------------

WallSeries::WallSeries(int rows, std::vector<std::string> channel_names, int window_count,
                       double initial_width)
    : names_(std::move(channel_names)),
      windows_(rows, static_cast<int>(names_.size()), window_count, initial_width) {}

double WallSeries::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - origin_).count();
}

void WallSeries::add_span(int row, int channel, double t0, double t1) {
  const std::lock_guard<std::mutex> lk(mu_);
  windows_.add_span(row, channel, t0, t1);
}

void WallSeries::add_at(int row, int channel, double t, double value) {
  const std::lock_guard<std::mutex> lk(mu_);
  windows_.add_at(row, channel, t, value);
}

int WallSeries::rows() const { return windows_.rows(); }

double WallSeries::channel_total(int channel) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return windows_.channel_total(channel);
}

double WallSeries::row_total(int row, int channel) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return windows_.row_total(row, channel);
}

double WallSeries::window_width() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return windows_.window_width();
}

double WallSeries::duration() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return windows_.duration();
}

int WallSeries::used_windows() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return windows_.used_windows();
}

double WallSeries::value(int row, int channel, int window) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return windows_.value(row, channel, window);
}

json::Value WallSeries::to_json() const {
  const std::lock_guard<std::mutex> lk(mu_);
  json::Value v = json::Value::make_object();
  v["kind"] = json::Value::make_str("zc-wall-timeline");
  v["rows"] = json::Value::make_int(windows_.rows());
  v["window_count"] = json::Value::make_int(windows_.window_count());
  v["window_width"] = json::Value::make_num(windows_.window_width());
  v["duration"] = json::Value::make_num(windows_.duration());
  const int used = windows_.used_windows();
  v["used_windows"] = json::Value::make_int(used);
  json::Value channels = json::Value::make_object();
  for (int c = 0; c < windows_.channels(); ++c) {
    json::Value per_row = json::Value::make_array();
    for (int r = 0; r < windows_.rows(); ++r) {
      json::Value row = json::Value::make_array();
      for (int w = 0; w < used; ++w) row.push_back(json::Value::make_num(windows_.value(r, c, w)));
      per_row.push_back(std::move(row));
    }
    channels[names_[static_cast<std::size_t>(c)]] = std::move(per_row);
  }
  v["channels"] = std::move(channels);
  return v;
}

}  // namespace zc::tseries
