// Windowed time-series telemetry: streaming, bounded-memory aggregation of
// where time goes, over fixed time windows instead of recorded events.
//
// The trace subsystem (src/trace) answers "what happened" at full fidelity
// but its event buffers are bounded — past RecorderOptions caps, detail is
// dropped. trace::Stats answers "how much, in total" exactly, but collapses
// the whole run to one number per quantity. This layer sits between the
// two: O(rows x windows) memory no matter how many events the run produces,
// with an exact conservation law — the sum over a channel's windows equals
// the same quantity's exact aggregate (trace::Stats / RunResult) to
// floating-point roundoff, even when the event trace itself was capped.
// That is the shape the ROADMAP's 4096-processor engine rewrite needs:
// utilization-over-time at any scale, never an event log.
//
// Three producers feed it:
//   SimSeries   per-simulated-processor CPU / wait / wire / compute /
//               barrier seconds over simulated time, fed from the same
//               Transport/Engine hook points as trace::Recorder via a
//               nullable RunConfig sink (zero overhead when null, exactly
//               like the recorder; never changes timing or numerics —
//               golden-checked).
//   WallSeries  thread-safe wall-clock windows: per-worker sweep telemetry
//               (src/exec/sweep) and the serve daemon's request/latency/
//               queue-depth series (GET /timeseries).
//
// Unknown total duration is handled by folding: when a sample lands past
// the last window, the window width doubles and adjacent window pairs merge
// (sums preserved exactly) until the sample fits — the window count never
// grows, the resolution adapts.
#pragma once

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace zc::tseries {

/// The folding accumulator grid shared by both series types: `rows` x
/// `channels` x `window_count` doubles, windows covering
/// [0, window_count * window_width). Not thread-safe (WallSeries adds the
/// lock). Seconds are *spread* across windows proportionally to overlap, so
/// channel totals are conserved under both spreading and folding.
class Windows {
 public:
  Windows(int rows, int channels, int window_count, double initial_width = 1e-6);

  /// Spreads `t1 - t0` seconds of `channel` activity on `row` across the
  /// windows the span [t0, t1) overlaps. Empty/negative spans only advance
  /// duration(). Non-finite endpoints are ignored.
  void add_span(int row, int channel, double t0, double t1);

  /// Adds `value` to the window containing `t` (a point sample: counts,
  /// latency sums, queue-depth samples).
  void add_at(int row, int channel, double t, double value);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] int window_count() const { return window_count_; }
  /// Current width of one window; doubles on every fold.
  [[nodiscard]] double window_width() const { return width_; }
  /// Largest time seen by any add (>= the end of the last nonzero window).
  [[nodiscard]] double duration() const { return duration_; }
  /// Windows actually covered by [0, duration()]: what renderers show.
  [[nodiscard]] int used_windows() const;

  [[nodiscard]] double value(int row, int channel, int window) const;
  /// Sum over all windows of one (row, channel) — the conserved total.
  [[nodiscard]] double row_total(int row, int channel) const;
  /// Sum over all rows and windows of one channel.
  [[nodiscard]] double channel_total(int channel) const;

 private:
  void fold_until(double t);
  [[nodiscard]] std::size_t index(int row, int channel, int window) const;

  int rows_;
  int channels_;
  int window_count_;
  double width_;
  double duration_ = 0.0;
  std::vector<double> data_;  // [row][channel][window], dense
};

/// The simulator's producer: one row per simulated processor, fed from the
/// exact hook points that feed trace::Recorder. Attach via
/// sim::RunConfig::timeline (nullptr = off, no per-event work at all).
class SimSeries {
 public:
  /// Channel layout. kCpu/kWait split IRONMAN call spans the way
  /// trace::CallTotals does (cpu_seconds / wait_seconds); kWireExposed /
  /// kWireOverlapped split each consumed message's transmission the way
  /// trace::WireTotals does (exposed = the part of the wire time the
  /// destination actually waited through at DN, clamped to the wire time).
  enum Channel {
    kCpu = 0,         ///< CPU inside IRONMAN calls (software overhead)
    kWait,            ///< blocked inside IRONMAN calls (arrival/readiness/drain)
    kWireExposed,     ///< wire time the destination waited through
    kWireOverlapped,  ///< wire time hidden behind other work
    kCompute,         ///< local statement execution
    kBarrier,         ///< global synch / reduction combine participation
    kChannelCount
  };
  [[nodiscard]] static const char* channel_name(int channel);

  explicit SimSeries(int procs, int window_count = 64);

  // ---- hook points (called by src/sim when a timeline is attached) ----

  /// One IRONMAN call span: [begin, unblocked) was wait, [unblocked, end)
  /// was CPU — the decomposition Recorder::record_call aggregates.
  void add_call(int proc, double begin, double unblocked, double end);
  /// Local compute span of one statement execution on `proc`.
  void add_compute(int proc, double begin, double end);
  /// `proc`'s participation in a global synch / reduction combine.
  void add_barrier(int proc, double begin, double end);
  /// The matching DN consumed a message that was on the wire over
  /// [on_wire, arrived) after the destination waited `wait_seconds` in DN.
  /// The exposed part (clamp(wait, 0, wire), Recorder::record_consumed's
  /// rule) is attributed to the transmission's tail [arrived - exposed,
  /// arrived); the remainder was overlapped over [on_wire, arrived -
  /// exposed). Attributed to the destination's row.
  void add_wire(int dst, double on_wire, double arrived, double wait_seconds);

  // ---- accessors ----

  [[nodiscard]] int procs() const { return windows_.rows(); }
  [[nodiscard]] int window_count() const { return windows_.window_count(); }
  [[nodiscard]] double window_width() const { return windows_.window_width(); }
  [[nodiscard]] double duration() const { return windows_.duration(); }
  [[nodiscard]] int used_windows() const { return windows_.used_windows(); }
  [[nodiscard]] double value(int proc, Channel channel, int window) const {
    return windows_.value(proc, channel, window);
  }
  /// Conserved totals: total(kCpu) + total(kWait) reconciles with
  /// trace::Stats::exposed_overhead_seconds, total(kWireExposed) /
  /// total(kWireOverlapped) with Stats::wire, total(kCompute) /
  /// total(kBarrier) with the compute / barrier aggregates — to 1e-9, even
  /// when the event trace was capped (tests/tseries_test.cpp).
  [[nodiscard]] double total(Channel channel) const {
    return windows_.channel_total(channel);
  }
  [[nodiscard]] double proc_total(int proc, Channel channel) const {
    return windows_.row_total(proc, channel);
  }

  /// {"kind":"zc-sim-timeline", procs, window_count, window_width,
  ///  duration, channels: {name: [proc][window]}} — windows beyond
  /// used_windows() are omitted (they are identically zero).
  [[nodiscard]] json::Value to_json() const;
  /// proc,channel,window,t0,t1,seconds rows (nonzero cells only).
  [[nodiscard]] std::string to_csv() const;

 private:
  Windows windows_;
};

/// Host-side producer: wall-clock windows written concurrently by worker
/// threads (one mutex — producers are request/task-grained, never hot).
/// Rows are whatever the caller shards by (sweep: worker contexts; serve:
/// one row); channels are named at construction.
class WallSeries {
 public:
  WallSeries(int rows, std::vector<std::string> channel_names, int window_count = 64,
             double initial_width = 0.25);

  /// Seconds since construction on the steady clock — the time base every
  /// add expects.
  [[nodiscard]] double now() const;

  void add_span(int row, int channel, double t0, double t1);
  void add_at(int row, int channel, double t, double value);

  [[nodiscard]] int rows() const;
  [[nodiscard]] const std::vector<std::string>& channel_names() const { return names_; }

  /// Snapshot under the lock: {"kind":"zc-wall-timeline", rows,
  /// window_count, window_width, duration, channels: {name: [row][window]}}.
  [[nodiscard]] json::Value to_json() const;
  /// Conserved total of one channel across all rows and windows.
  [[nodiscard]] double channel_total(int channel) const;
  /// One row's total for one channel.
  [[nodiscard]] double row_total(int row, int channel) const;
  [[nodiscard]] double window_width() const;
  [[nodiscard]] double duration() const;
  [[nodiscard]] int used_windows() const;
  [[nodiscard]] double value(int row, int channel, int window) const;

 private:
  const std::chrono::steady_clock::time_point origin_ = std::chrono::steady_clock::now();
  std::vector<std::string> names_;
  mutable std::mutex mu_;
  Windows windows_;
};

}  // namespace zc::tseries
