// Terminal renderings of the windowed series: the per-processor utilization
// heatmap behind `comm_explorer --timeline` and the per-worker summary
// behind `--sweep ... --timeline`. Pure formatting — every number shown is
// an accessor away on the series itself.
#pragma once

#include <string>

#include "src/tseries/tseries.h"

namespace zc::tseries {

/// ASCII heatmap: one row per simulated processor, one column per used
/// window, glyph by busy fraction ((cpu + compute) / window width, the
/// "doing work" share), followed by aggregate per-window rows for wait and
/// exposed wire time and the conserved channel totals. `title` labels the
/// run (e.g. "tomcatv/pl, 16 procs").
[[nodiscard]] std::string heatmap(const SimSeries& series, const std::string& title);

/// Per-row (worker) summary of a WallSeries built with the sweep channel
/// layout (see exec::make_sweep_series): busy share, task count, own-pop vs
/// steal split, mean task latency, plan-cache hit rate, plus a per-window
/// busy sparkline per worker.
[[nodiscard]] std::string sweep_summary(const WallSeries& series);

}  // namespace zc::tseries
