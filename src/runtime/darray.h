// Per-processor storage for one distributed array: the owned block plus a
// fluff (ghost) margin wide enough for every direction the program declares.
// Fluff cells hold cached copies of neighbor-owned elements and are filled
// only by communication — so a miscompiled communication plan produces wrong
// numbers, which the golden tests catch.
#pragma once

#include <vector>

#include "src/runtime/layout.h"
#include "src/zir/program.h"

namespace zc::rt {

class LocalArray {
 public:
  /// `owned`: this processor's part of the array's declared region (may be
  /// empty). `declared`: the full declared region. `fluff`: margin width per
  /// dimension. Storage covers owned expanded by fluff, clamped to declared
  /// (fluff never extends past the declared region: those cells cannot be
  /// read by a valid program).
  LocalArray(Box owned, const Box& declared, const std::array<long long, kMaxRank>& fluff);

  LocalArray() = default;

  [[nodiscard]] const Box& owned() const { return owned_; }
  [[nodiscard]] const Box& storage_box() const { return storage_; }

  [[nodiscard]] bool covers(const Box& b) const { return storage_.contains(b); }

  /// Element accessors by global index (must lie within the storage box).
  [[nodiscard]] double at(long long i, long long j = 0, long long k = 0) const;
  double& at(long long i, long long j = 0, long long k = 0);

  /// Bulk copy of `b` (within the storage box) into `out`, row-major
  /// (dim 0 outer, last dim contiguous). `out` must hold b.count() doubles.
  void read_box(const Box& b, double* out) const;

  /// Bulk write of `b` from `in`, same layout.
  void write_box(const Box& b, const double* in);

  /// Fills the whole allocation with `value` (tests / init).
  void fill(double value);

  [[nodiscard]] std::size_t allocation_size() const { return data_.size(); }

 private:
  [[nodiscard]] std::size_t offset(long long i, long long j, long long k) const;

  Box owned_;
  Box storage_;
  std::array<long long, kMaxRank> stride_{};
  std::vector<double> data_;
};

/// Computes the fluff width needed per dimension: the max |offset| over all
/// declared directions (at least 0). Distributed and local dims both get
/// margins — rank-3 dim-2 shifts read within the declared region, which the
/// storage clamp already covers.
std::array<long long, kMaxRank> fluff_widths(const zir::Program& program);

}  // namespace zc::rt
