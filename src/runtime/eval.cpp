#include "src/runtime/eval.h"

#include <cmath>
#include <limits>

#include "src/support/check.h"
#include "src/support/diag.h"

namespace zc::rt {

double reduce_identity(zir::ReduceOp op) {
  switch (op) {
    case zir::ReduceOp::kSum: return 0.0;
    case zir::ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
    case zir::ReduceOp::kMin: return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double reduce_combine(zir::ReduceOp op, double a, double b) {
  switch (op) {
    case zir::ReduceOp::kSum: return a + b;
    case zir::ReduceOp::kMax: return std::max(a, b);
    case zir::ReduceOp::kMin: return std::min(a, b);
  }
  return 0.0;
}

double Evaluator::apply_bin_scalar(zir::BinOp op, double a, double b) const {
  return apply_bin(op, a, b);
}

double Evaluator::apply_un_scalar(zir::UnOp op, double a) const {
  return apply_un(op, a);
}

Evaluator::Value Evaluator::eval(const EvalContext& ctx, zir::ExprId id) const {
  const zir::Expr& e = p_.expr(id);
  Value out;
  const std::size_t n = static_cast<std::size_t>(ctx.box.count());

  switch (e.kind) {
    case zir::Expr::Kind::kConst:
      out.s = e.const_value;
      return out;
    case zir::Expr::Kind::kScalarRef:
      out.s = (*ctx.scalars)[e.scalar.index()];
      return out;
    case zir::Expr::Kind::kLoopVarRef: {
      ZC_ASSERT(ctx.env->loop_bound[e.loop_var.index()]);
      out.s = static_cast<double>(ctx.env->loop_values[e.loop_var.index()]);
      return out;
    }
    case zir::Expr::Kind::kConfigRef:
      out.s = static_cast<double>(ctx.env->config_values[e.config.index()]);
      return out;

    case zir::Expr::Kind::kArrayRef: {
      out.is_vec = true;
      out.v.resize(n);
      const LocalArray& a = (*ctx.arrays)[e.array.index()];
      ZC_ASSERT(a.covers(ctx.box));
      a.read_box(ctx.box, out.v.data());
      return out;
    }
    case zir::Expr::Kind::kShift: {
      out.is_vec = true;
      out.v.resize(n);
      const LocalArray& a = (*ctx.arrays)[e.array.index()];
      const Box src = ctx.box.shifted(p_.direction(e.direction).offsets);
      if (!a.covers(src)) {
        throw Error("shifted read of '" + p_.array(e.array).name +
                    "' outside its declared region (program reads past its border): need " +
                    src.to_string() + ", have " + a.storage_box().to_string());
      }
      a.read_box(src, out.v.data());
      return out;
    }
    case zir::Expr::Kind::kIndex: {
      out.is_vec = true;
      out.v.resize(n);
      const int dim = e.index_dim - 1;
      ZC_ASSERT(dim >= 0 && dim < ctx.box.rank);
      std::size_t k = 0;
      const Box& b = ctx.box;
      const long long j_lo = b.rank >= 2 ? b.lo[1] : 0;
      const long long j_hi = b.rank >= 2 ? b.hi[1] : 0;
      const long long k_lo = b.rank >= 3 ? b.lo[2] : 0;
      const long long k_hi = b.rank >= 3 ? b.hi[2] : 0;
      for (long long i = b.lo[0]; i <= b.hi[0]; ++i) {
        for (long long j = j_lo; j <= j_hi; ++j) {
          for (long long kk = k_lo; kk <= k_hi; ++kk) {
            const long long coord = dim == 0 ? i : dim == 1 ? j : kk;
            out.v[k++] = static_cast<double>(coord);
          }
        }
      }
      return out;
    }

    case zir::Expr::Kind::kBinary: {
      Value a = eval(ctx, e.lhs);
      Value b = eval(ctx, e.rhs);
      if (!a.is_vec && !b.is_vec) {
        out.s = apply_bin_scalar(e.bin_op, a.s, b.s);
        return out;
      }
      out.is_vec = true;
      if (a.is_vec && b.is_vec) {
        out.v = std::move(a.v);
        for (std::size_t i = 0; i < n; ++i) out.v[i] = apply_bin_scalar(e.bin_op, out.v[i], b.v[i]);
      } else if (a.is_vec) {
        out.v = std::move(a.v);
        for (std::size_t i = 0; i < n; ++i) out.v[i] = apply_bin_scalar(e.bin_op, out.v[i], b.s);
      } else {
        out.v = std::move(b.v);
        for (std::size_t i = 0; i < n; ++i) out.v[i] = apply_bin_scalar(e.bin_op, a.s, out.v[i]);
      }
      return out;
    }
    case zir::Expr::Kind::kUnary: {
      Value a = eval(ctx, e.lhs);
      if (!a.is_vec) {
        out.s = apply_un_scalar(e.un_op, a.s);
        return out;
      }
      out.is_vec = true;
      out.v = std::move(a.v);
      for (std::size_t i = 0; i < n; ++i) out.v[i] = apply_un_scalar(e.un_op, out.v[i]);
      return out;
    }
    case zir::Expr::Kind::kReduce:
      // Reductions never appear in vector contexts (validated); the scalar
      // paths below intercept them before reaching here.
      throw Error("internal: reduction evaluated in vector context");
  }
  ZC_ASSERT(false);
  return out;
}

void Evaluator::eval_vector(const EvalContext& ctx, zir::ExprId id,
                            std::vector<double>& out) const {
  Value v = eval(ctx, id);
  const std::size_t n = static_cast<std::size_t>(ctx.box.count());
  if (v.is_vec) {
    out = std::move(v.v);
  } else {
    out.assign(n, v.s);
  }
}

void Evaluator::eval_reduce_partials(const EvalContext& ctx, zir::ExprId id,
                                     std::vector<double>& partials) const {
  const std::vector<zir::ExprId> nodes = zir::collect_reduce_exprs(p_, id);
  partials.clear();
  std::vector<double> buf;
  for (zir::ExprId node : nodes) {
    const zir::Expr& e = p_.expr(node);
    double acc = reduce_identity(e.reduce_op);
    if (!ctx.box.empty()) {
      eval_vector(ctx, e.lhs, buf);
      for (double x : buf) acc = reduce_combine(e.reduce_op, acc, x);
    }
    partials.push_back(acc);
  }
}

std::vector<zir::ReduceOp> Evaluator::reduce_ops(zir::ExprId id) const {
  const std::vector<zir::ExprId> nodes = zir::collect_reduce_exprs(p_, id);
  std::vector<zir::ReduceOp> ops;
  ops.reserve(nodes.size());
  for (zir::ExprId node : nodes) ops.push_back(p_.expr(node).reduce_op);
  return ops;
}

double Evaluator::eval_scalar(const EvalContext& ctx, zir::ExprId id,
                              std::span<const double> reduce_values) const {
  std::size_t next = 0;
  const double result = eval_scalar_rec(ctx, id, reduce_values, next);
  ZC_ASSERT(next == reduce_values.size());
  return result;
}

double Evaluator::eval_scalar_rec(const EvalContext& ctx, zir::ExprId id,
                                  std::span<const double> reduce_values,
                                  std::size_t& next_reduce) const {
  const zir::Expr& e = p_.expr(id);
  switch (e.kind) {
    case zir::Expr::Kind::kConst:
      return e.const_value;
    case zir::Expr::Kind::kScalarRef:
      return (*ctx.scalars)[e.scalar.index()];
    case zir::Expr::Kind::kLoopVarRef:
      ZC_ASSERT(ctx.env->loop_bound[e.loop_var.index()]);
      return static_cast<double>(ctx.env->loop_values[e.loop_var.index()]);
    case zir::Expr::Kind::kConfigRef:
      return static_cast<double>(ctx.env->config_values[e.config.index()]);
    case zir::Expr::Kind::kReduce:
      ZC_ASSERT(next_reduce < reduce_values.size());
      return reduce_values[next_reduce++];
    case zir::Expr::Kind::kBinary: {
      // Left-to-right so reduce-value consumption matches DFS order.
      const double a = eval_scalar_rec(ctx, e.lhs, reduce_values, next_reduce);
      const double b = eval_scalar_rec(ctx, e.rhs, reduce_values, next_reduce);
      return apply_bin_scalar(e.bin_op, a, b);
    }
    case zir::Expr::Kind::kUnary:
      return apply_un_scalar(e.un_op, eval_scalar_rec(ctx, e.lhs, reduce_values, next_reduce));
    case zir::Expr::Kind::kArrayRef:
    case zir::Expr::Kind::kShift:
    case zir::Expr::Kind::kIndex:
      throw Error("internal: array-valued node in scalar evaluation");
  }
  ZC_ASSERT(false);
  return 0.0;
}

}  // namespace zc::rt
