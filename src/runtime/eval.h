// Per-processor evaluation of ZIR expressions over local index boxes.
//
// Array-valued expressions evaluate element-wise over a target box (the
// intersection of the statement's region with the processor's owned block),
// reading shifted operands from fluff when they fall outside the owned
// block. Scalar-valued expressions evaluate once; reductions are two-phase
// (local partial here, cross-processor combine in the engine).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "src/runtime/darray.h"
#include "src/runtime/layout.h"
#include "src/zir/program.h"

namespace zc::rt {

/// Evaluation context for one processor.
struct EvalContext {
  const zir::Program* program = nullptr;
  /// This processor's storage, indexed by ArrayId.
  const std::vector<LocalArray>* arrays = nullptr;
  /// Replicated scalar values, indexed by ScalarId.
  const std::vector<double>* scalars = nullptr;
  /// Config values and current loop-variable bindings.
  const zir::IntEnv* env = nullptr;
  /// Target box for array-valued evaluation.
  Box box;
};

/// Identity element of a reduction.
double reduce_identity(zir::ReduceOp op);
/// Combines two partial values.
double reduce_combine(zir::ReduceOp op, double a, double b);

/// Scalar semantics of the value operators. Inline and shared between the
/// tree-walking Evaluator and the compiled expression programs (src/sim/
/// bytecode) so both paths perform bit-identical arithmetic.
inline double apply_bin(zir::BinOp op, double a, double b) {
  using zir::BinOp;
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kMul: return a * b;
    case BinOp::kDiv: return a / b;
    case BinOp::kMin: return std::min(a, b);
    case BinOp::kMax: return std::max(a, b);
    case BinOp::kPow: return std::pow(a, b);
    case BinOp::kLt: return a < b ? 1.0 : 0.0;
    case BinOp::kLe: return a <= b ? 1.0 : 0.0;
    case BinOp::kGt: return a > b ? 1.0 : 0.0;
    case BinOp::kGe: return a >= b ? 1.0 : 0.0;
    case BinOp::kEq: return a == b ? 1.0 : 0.0;
    case BinOp::kNe: return a != b ? 1.0 : 0.0;
    case BinOp::kAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case BinOp::kOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  return 0.0;
}

inline double apply_un(zir::UnOp op, double a) {
  using zir::UnOp;
  switch (op) {
    case UnOp::kNeg: return -a;
    case UnOp::kNot: return a == 0.0 ? 1.0 : 0.0;
    case UnOp::kAbs: return std::fabs(a);
    case UnOp::kSqrt: return std::sqrt(a);
    case UnOp::kExp: return std::exp(a);
    case UnOp::kLog: return std::log(a);
    case UnOp::kSin: return std::sin(a);
    case UnOp::kCos: return std::cos(a);
  }
  return 0.0;
}

class Evaluator {
 public:
  explicit Evaluator(const zir::Program& program) : p_(program) {}

  /// Evaluates an array-valued expression over ctx.box into `out`
  /// (resized to box.count(), row-major). The expression must not contain
  /// reductions.
  void eval_vector(const EvalContext& ctx, zir::ExprId id, std::vector<double>& out) const;

  /// Local partials for each Reduce node of a scalar-valued expression, in
  /// first-occurrence DFS order. Partials for an empty box are the
  /// reduction identity.
  void eval_reduce_partials(const EvalContext& ctx, zir::ExprId id,
                            std::vector<double>& partials) const;

  /// The reduce operators in the same DFS order as the partials.
  std::vector<zir::ReduceOp> reduce_ops(zir::ExprId id) const;

  /// Evaluates a scalar-valued expression; `reduce_values` supplies the
  /// globally-combined value for each Reduce node (DFS order).
  double eval_scalar(const EvalContext& ctx, zir::ExprId id,
                     std::span<const double> reduce_values) const;

 private:
  struct Value {
    bool is_vec = false;
    double s = 0.0;
    std::vector<double> v;
  };

  Value eval(const EvalContext& ctx, zir::ExprId id) const;
  double eval_scalar_rec(const EvalContext& ctx, zir::ExprId id,
                         std::span<const double> reduce_values, std::size_t& next_reduce) const;
  double apply_bin_scalar(zir::BinOp op, double a, double b) const;
  double apply_un_scalar(zir::UnOp op, double a) const;

  const zir::Program& p_;
};

}  // namespace zc::rt
