#include "src/runtime/darray.h"

#include <algorithm>

#include "src/support/check.h"

namespace zc::rt {

LocalArray::LocalArray(Box owned, const Box& declared,
                       const std::array<long long, kMaxRank>& fluff)
    : owned_(owned) {
  storage_ = owned_;
  if (!owned_.empty()) {
    for (int d = 0; d < storage_.rank; ++d) {
      storage_.lo[d] = std::max(declared.lo[d], owned_.lo[d] - fluff[d]);
      storage_.hi[d] = std::min(declared.hi[d], owned_.hi[d] + fluff[d]);
    }
  }
  // Row-major strides: last dim contiguous.
  long long size = 1;
  for (int d = storage_.rank - 1; d >= 0; --d) {
    stride_[d] = size;
    size *= storage_.extent(d);
  }
  data_.assign(storage_.empty() ? 0 : static_cast<std::size_t>(size), 0.0);
}

std::size_t LocalArray::offset(long long i, long long j, long long k) const {
  long long off = (i - storage_.lo[0]) * stride_[0];
  if (storage_.rank >= 2) off += (j - storage_.lo[1]) * stride_[1];
  if (storage_.rank >= 3) off += (k - storage_.lo[2]) * stride_[2];
  ZC_ASSERT(off >= 0 && off < static_cast<long long>(data_.size()));
  return static_cast<std::size_t>(off);
}

double LocalArray::at(long long i, long long j, long long k) const {
  return data_[offset(i, j, k)];
}

double& LocalArray::at(long long i, long long j, long long k) {
  return data_[offset(i, j, k)];
}

namespace {

/// Iterates the outer (non-contiguous) dims of `b` and invokes `fn(i, j,
/// span_lo, span_len)` once per contiguous last-dim span.
template <typename Fn>
void for_each_span(const Box& b, Fn&& fn) {
  if (b.empty()) return;
  const int last = b.rank - 1;
  const long long span_lo = b.lo[last];
  const long long span_len = b.extent(last);
  const long long i_hi = b.rank >= 2 ? b.hi[0] : b.lo[0];
  const long long j_lo = b.rank >= 3 ? b.lo[1] : 0;
  const long long j_hi = b.rank >= 3 ? b.hi[1] : 0;
  for (long long i = b.lo[0]; i <= i_hi; ++i) {
    for (long long j = j_lo; j <= j_hi; ++j) {
      fn(i, j, span_lo, span_len);
    }
  }
}

}  // namespace

void LocalArray::read_box(const Box& b, double* out) const {
  ZC_ASSERT(covers(b));
  std::size_t n = 0;
  for_each_span(b, [&](long long i, long long j, long long span_lo, long long span_len) {
    const double* src = b.rank == 1 ? &data_[offset(i, 0, 0)]
                        : b.rank == 2 ? &data_[offset(i, span_lo, 0)]
                                      : &data_[offset(i, j, span_lo)];
    std::copy(src, src + span_len, out + n);
    n += static_cast<std::size_t>(span_len);
  });
}

void LocalArray::write_box(const Box& b, const double* in) {
  ZC_ASSERT(covers(b));
  std::size_t n = 0;
  for_each_span(b, [&](long long i, long long j, long long span_lo, long long span_len) {
    double* dst = b.rank == 1 ? &data_[offset(i, 0, 0)]
                  : b.rank == 2 ? &data_[offset(i, span_lo, 0)]
                                : &data_[offset(i, j, span_lo)];
    std::copy(in + n, in + n + span_len, dst);
    n += static_cast<std::size_t>(span_len);
  });
}

void LocalArray::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

std::array<long long, kMaxRank> fluff_widths(const zir::Program& program) {
  std::array<long long, kMaxRank> w{};
  for (std::size_t i = 0; i < program.direction_count(); ++i) {
    const zir::DirectionDecl& d = program.direction(zir::DirectionId(static_cast<int32_t>(i)));
    for (int k = 0; k < d.rank() && k < kMaxRank; ++k) {
      w[k] = std::max<long long>(w[k], std::abs(d.offsets[k]));
    }
  }
  return w;
}

}  // namespace zc::rt
