// Index-space geometry: boxes (rectangular index sets), the 2-D block
// distribution over a virtual processor mesh, and per-processor ownership.
//
// Per the paper (§3.1): all arrays are trivially aligned — element (i,j) of
// every array lives on the same processor — and block distributed across a
// two-dimensional virtual processor mesh. Rank-3 arrays distribute their
// first two dimensions; the third is processor-local.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/zir/program.h"

namespace zc::rt {

inline constexpr int kMaxRank = 3;

/// A rectangular box of global indices, `rank` dims of inclusive [lo, hi].
/// Any lo > hi means the box is empty.
struct Box {
  int rank = 0;
  std::array<long long, kMaxRank> lo{};
  std::array<long long, kMaxRank> hi{};

  [[nodiscard]] static Box make(int rank, std::array<long long, kMaxRank> lo,
                                std::array<long long, kMaxRank> hi);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] long long extent(int dim) const;
  [[nodiscard]] long long count() const;
  [[nodiscard]] bool contains(const Box& inner) const;

  /// Shifts the whole box by the direction's offsets (dims beyond the
  /// direction's rank are unshifted).
  [[nodiscard]] Box shifted(const std::vector<int>& offsets) const;

  [[nodiscard]] Box intersect(const Box& other) const;

  /// `*this` minus `other` as a list of disjoint boxes (≤ 2·rank pieces),
  /// in a deterministic dim-major order.
  [[nodiscard]] std::vector<Box> subtract(const Box& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Box&, const Box&) = default;
};

/// Evaluates a RegionSpec to a Box under `env` (loop variables bound as in
/// the current execution context). Empty ranges yield an empty box.
Box eval_region(const zir::RegionSpec& spec, const zir::IntEnv& env);

/// The processor mesh: `rows x cols` processors, row-major ranks.
struct Mesh {
  int rows = 1;
  int cols = 1;

  [[nodiscard]] int procs() const { return rows * cols; }
  [[nodiscard]] int rank_of(int r, int c) const { return r * cols + c; }
  [[nodiscard]] int row_of(int rank) const { return rank / cols; }
  [[nodiscard]] int col_of(int rank) const { return rank % cols; }

  /// The most interior processor — the one the paper's per-processor dynamic
  /// counts are measured on (it has neighbors on all sides when possible).
  [[nodiscard]] int center_rank() const { return rank_of(rows / 2, cols / 2); }

  /// A near-square factorization of `procs` (rows <= cols).
  [[nodiscard]] static Mesh near_square(int procs);
};

/// Block distribution of the program's global index space over a mesh.
/// The distribution space is the bounding box of all declared regions
/// (so border rows/columns belong to edge processors), dims 0 and 1 only.
class BlockDist {
 public:
  BlockDist(const zir::Program& program, const zir::IntEnv& env, Mesh mesh);

  [[nodiscard]] const Mesh& mesh() const { return mesh_; }
  [[nodiscard]] const Box& space() const { return space_; }
  [[nodiscard]] int program_rank() const { return space_.rank; }

  /// The sub-box of the distribution space owned by `proc` (dim 2, if any,
  /// is whole). May be empty on over-decomposed meshes.
  [[nodiscard]] Box owned(int proc) const;

  /// All processors whose owned box intersects `b` (small: scans the
  /// bounding proc-coordinate window of `b`).
  [[nodiscard]] std::vector<int> owners(const Box& b) const;

  /// Block boundaries in `dim` (0 or 1): processor index `k` owns
  /// [cut(dim,k), cut(dim,k+1) - 1].
  [[nodiscard]] long long cut(int dim, int k) const;

 private:
  Mesh mesh_;
  Box space_;
  std::array<std::vector<long long>, 2> cuts_;
};

}  // namespace zc::rt
