#include "src/runtime/layout.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/check.h"
#include "src/support/diag.h"

namespace zc::rt {

Box Box::make(int rank, std::array<long long, kMaxRank> lo, std::array<long long, kMaxRank> hi) {
  ZC_ASSERT(rank >= 1 && rank <= kMaxRank);
  Box b;
  b.rank = rank;
  b.lo = lo;
  b.hi = hi;
  return b;
}

bool Box::empty() const {
  for (int d = 0; d < rank; ++d) {
    if (lo[d] > hi[d]) return true;
  }
  return rank == 0;
}

long long Box::extent(int dim) const {
  ZC_ASSERT(dim >= 0 && dim < rank);
  return std::max<long long>(0, hi[dim] - lo[dim] + 1);
}

long long Box::count() const {
  if (empty()) return 0;
  long long n = 1;
  for (int d = 0; d < rank; ++d) n *= extent(d);
  return n;
}

bool Box::contains(const Box& inner) const {
  if (inner.empty()) return true;
  if (empty() || inner.rank != rank) return false;
  for (int d = 0; d < rank; ++d) {
    if (inner.lo[d] < lo[d] || inner.hi[d] > hi[d]) return false;
  }
  return true;
}

Box Box::shifted(const std::vector<int>& offsets) const {
  Box b = *this;
  for (int d = 0; d < rank && d < static_cast<int>(offsets.size()); ++d) {
    b.lo[d] += offsets[d];
    b.hi[d] += offsets[d];
  }
  return b;
}

Box Box::intersect(const Box& other) const {
  ZC_ASSERT(rank == other.rank);
  Box b;
  b.rank = rank;
  for (int d = 0; d < rank; ++d) {
    b.lo[d] = std::max(lo[d], other.lo[d]);
    b.hi[d] = std::min(hi[d], other.hi[d]);
  }
  return b;
}

std::vector<Box> Box::subtract(const Box& other) const {
  std::vector<Box> pieces;
  if (empty()) return pieces;
  const Box overlap = intersect(other);
  if (overlap.empty()) {
    pieces.push_back(*this);
    return pieces;
  }
  // Peel slabs off dimension by dimension; the remainder shrinks to the
  // overlap. Deterministic: low slab then high slab, dim 0 outward.
  Box rest = *this;
  for (int d = 0; d < rank; ++d) {
    if (rest.lo[d] < overlap.lo[d]) {
      Box slab = rest;
      slab.hi[d] = overlap.lo[d] - 1;
      pieces.push_back(slab);
      rest.lo[d] = overlap.lo[d];
    }
    if (rest.hi[d] > overlap.hi[d]) {
      Box slab = rest;
      slab.lo[d] = overlap.hi[d] + 1;
      pieces.push_back(slab);
      rest.hi[d] = overlap.hi[d];
    }
  }
  return pieces;
}

std::string Box::to_string() const {
  std::ostringstream os;
  os << "[";
  for (int d = 0; d < rank; ++d) {
    if (d > 0) os << ", ";
    os << lo[d] << ".." << hi[d];
  }
  os << "]";
  return os.str();
}

Box eval_region(const zir::RegionSpec& spec, const zir::IntEnv& env) {
  Box b;
  b.rank = spec.rank();
  ZC_ASSERT(b.rank >= 1 && b.rank <= kMaxRank);
  for (int d = 0; d < b.rank; ++d) {
    b.lo[d] = spec.dims[d].lo.eval(env);
    b.hi[d] = spec.dims[d].hi.eval(env);
  }
  return b;
}

Mesh Mesh::near_square(int procs) {
  ZC_ASSERT(procs >= 1);
  int rows = static_cast<int>(std::sqrt(static_cast<double>(procs)));
  while (rows > 1 && procs % rows != 0) --rows;
  return Mesh{rows, procs / rows};
}

BlockDist::BlockDist(const zir::Program& program, const zir::IntEnv& env, Mesh mesh)
    : mesh_(mesh) {
  if (program.region_count() == 0) throw Error("program declares no regions");
  // Distribution space: bounding box over all declared regions (dims 0, 1;
  // plus dim 2 extent for rank-3 programs).
  bool first = true;
  for (std::size_t i = 0; i < program.region_count(); ++i) {
    const Box b =
        eval_region(program.region(zir::RegionId(static_cast<int32_t>(i))).spec, env);
    if (b.empty()) continue;
    if (first) {
      space_ = b;
      first = false;
      continue;
    }
    // Promote rank if a higher-rank region appears.
    if (b.rank > space_.rank) {
      for (int d = space_.rank; d < b.rank; ++d) {
        space_.lo[d] = b.lo[d];
        space_.hi[d] = b.hi[d];
      }
      space_.rank = b.rank;
    }
    for (int d = 0; d < b.rank; ++d) {
      space_.lo[d] = std::min(space_.lo[d], b.lo[d]);
      space_.hi[d] = std::max(space_.hi[d], b.hi[d]);
    }
  }
  if (first) throw Error("all declared regions are empty");

  const int mesh_dims[2] = {mesh_.rows, mesh_.cols};
  for (int d = 0; d < 2; ++d) {
    const long long extent = d < space_.rank ? space_.extent(d) : 1;
    const int parts = d < space_.rank ? mesh_dims[d] : 1;
    cuts_[d].resize(parts + 1);
    for (int k = 0; k <= parts; ++k) {
      cuts_[d][k] = (d < space_.rank ? space_.lo[d] : 0) + extent * k / parts;
    }
  }
}

long long BlockDist::cut(int dim, int k) const {
  ZC_ASSERT(dim >= 0 && dim < 2);
  ZC_ASSERT(k >= 0 && k < static_cast<int>(cuts_[dim].size()));
  return cuts_[dim][k];
}

Box BlockDist::owned(int proc) const {
  const int r = mesh_.row_of(proc);
  const int c = mesh_.col_of(proc);
  Box b = space_;
  b.lo[0] = cuts_[0][r];
  b.hi[0] = cuts_[0][r + 1] - 1;
  if (space_.rank >= 2) {
    b.lo[1] = cuts_[1][c];
    b.hi[1] = cuts_[1][c + 1] - 1;
  }
  return b;
}

std::vector<int> BlockDist::owners(const Box& b) const {
  std::vector<int> result;
  if (b.empty()) return result;
  // Binary search over the monotonic cut array (replacing the former linear
  // scan, which dominated geometry building at 4096 processors). The window
  // may include empty blocks on over-decomposed meshes; the per-processor
  // intersection test below filters those exactly as the scan did.
  auto part_range = [&](int dim, int parts, long long lo, long long hi, int& first, int& last) {
    const std::vector<long long>& cuts = cuts_[dim];
    // first: the least k with cuts[k+1] - 1 >= lo, i.e. cuts[k+1] > lo.
    first = static_cast<int>(
        std::upper_bound(cuts.begin() + 1, cuts.end(), lo) - (cuts.begin() + 1));
    // last: the greatest k with cuts[k] <= hi.
    last = static_cast<int>(std::upper_bound(cuts.begin(), cuts.end() - 1, hi) -
                            cuts.begin()) -
           1;
    if (first >= parts || last < 0) {
      first = parts;
      last = -1;
    }
  };
  int r0 = 0;
  int r1 = 0;
  int c0 = 0;
  int c1 = 0;
  part_range(0, mesh_.rows, b.lo[0], b.hi[0], r0, r1);
  if (space_.rank >= 2 && b.rank >= 2) {
    part_range(1, mesh_.cols, b.lo[1], b.hi[1], c0, c1);
  } else {
    c1 = mesh_.cols - 1;
  }
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      const int proc = mesh_.rank_of(r, c);
      Box cropped = owned(proc);
      cropped.rank = b.rank;
      if (!cropped.intersect(b).empty()) result.push_back(proc);
    }
  }
  return result;
}

}  // namespace zc::rt
