// Strongly-typed indices into the Program arenas. Using distinct types (not
// raw ints) keeps array/scalar/region/expression indices from being mixed up
// at compile time.
#pragma once

#include <cstdint>
#include <functional>

namespace zc::zir {

template <typename Tag>
struct Id {
  int32_t value = -1;

  Id() = default;
  explicit Id(int32_t v) : value(v) {}

  [[nodiscard]] bool valid() const { return value >= 0; }
  [[nodiscard]] std::size_t index() const { return static_cast<std::size_t>(value); }

  friend bool operator==(Id, Id) = default;
  friend auto operator<=>(Id, Id) = default;
};

struct ConfigTag {};
struct RegionTag {};
struct DirectionTag {};
struct ArrayTag {};
struct ScalarTag {};
struct LoopVarTag {};
struct ExprTag {};
struct StmtTag {};
struct ProcTag {};

using ConfigId = Id<ConfigTag>;
using RegionId = Id<RegionTag>;
using DirectionId = Id<DirectionTag>;
using ArrayId = Id<ArrayTag>;
using ScalarId = Id<ScalarTag>;
using LoopVarId = Id<LoopVarTag>;
using ExprId = Id<ExprTag>;
using StmtId = Id<StmtTag>;
using ProcId = Id<ProcTag>;

}  // namespace zc::zir

template <typename Tag>
struct std::hash<zc::zir::Id<Tag>> {
  std::size_t operator()(zc::zir::Id<Tag> id) const noexcept {
    return std::hash<int32_t>{}(id.value);
  }
};
