// The mini-ZPL intermediate representation (ZIR).
//
// A Program is a set of declarations (config constants, regions, directions,
// distributed arrays, replicated scalars) plus procedures whose bodies are
// whole-array statements, scalar statements, counted loops, and scalar
// conditionals. This mirrors the representation the paper's optimizer works
// on: array statements are NOT expanded to loop nests before communication
// generation, so a "source-level basic block" is a run of array statements
// (paper §3.1).
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/support/diag.h"
#include "src/zir/ids.h"
#include "src/zir/intexpr.h"

namespace zc::zir {

/// Element type of arrays and scalars. The benchmarks use doubles; integers
/// exist for counters and loop-derived values.
enum class ElemType { kF64, kI64 };

/// A compile-time integer configuration constant, e.g. the problem size `n`.
/// Overridable at run time (like ZPL's `config var`).
struct ConfigDecl {
  std::string name;
  long long default_value = 0;
};

/// One dimension of a region: the inclusive range [lo, hi].
struct RangeSpec {
  IntExpr lo;
  IntExpr hi;
};

/// A (possibly loop-variable-dependent) rectangular index region.
struct RegionSpec {
  std::vector<RangeSpec> dims;

  [[nodiscard]] int rank() const { return static_cast<int>(dims.size()); }
  [[nodiscard]] bool is_static() const;
};

/// A named region declaration; bounds must be static (configs only).
struct RegionDecl {
  std::string name;
  RegionSpec spec;
};

/// A named direction (static offset vector), e.g. east = [0, 1].
struct DirectionDecl {
  std::string name;
  std::vector<int> offsets;

  [[nodiscard]] int rank() const { return static_cast<int>(offsets.size()); }
};

/// A distributed array, declared over a named region.
struct ArrayDecl {
  std::string name;
  RegionId region;
  ElemType type = ElemType::kF64;
};

/// A replicated scalar variable.
struct ScalarDecl {
  std::string name;
  ElemType type = ElemType::kF64;
};

/// A loop index variable (integer, replicated).
struct LoopVarDecl {
  std::string name;
};

/// Binary operators for value expressions. Comparisons yield 0.0 / 1.0.
enum class BinOp {
  kAdd, kSub, kMul, kDiv,
  kMin, kMax, kPow,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnOp { kNeg, kNot, kAbs, kSqrt, kExp, kLog, kSin, kCos };

/// Reduction operators (ZPL's `+<<`, `max<<`, `min<<`): array-valued operand,
/// scalar result, combined across all processors.
enum class ReduceOp { kSum, kMax, kMin };

/// A node in a value expression tree. Expressions are stored in a per-program
/// arena and referenced by ExprId.
struct Expr {
  enum class Kind {
    kConst,      ///< f64 literal
    kScalarRef,  ///< replicated scalar
    kLoopVarRef, ///< enclosing loop variable, as a double
    kConfigRef,  ///< config constant, as a double
    kArrayRef,   ///< unshifted element of a distributed array
    kShift,      ///< A@d — the paper's `@` operator; the only comm source
    kIndex,      ///< ZPL's Indexk: the global index in dimension `dim`
    kBinary,
    kUnary,
    kReduce,     ///< scalar-valued reduction of an array-valued operand
  };

  Kind kind = Kind::kConst;
  double const_value = 0.0;
  ScalarId scalar{};
  LoopVarId loop_var{};
  ConfigId config{};
  ArrayId array{};
  DirectionId direction{};
  int index_dim = 0;  // for kIndex: 1-based dimension
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ReduceOp reduce_op = ReduceOp::kSum;
  ExprId lhs{};
  ExprId rhs{};
  SourceLoc loc{};
};

/// Statement kinds. Bodies of For/If are vectors of StmtIds into the arena.
struct Stmt {
  enum class Kind {
    kArrayAssign,   ///< [region] A := expr
    kScalarAssign,  ///< s := expr  (expr may contain a reduction, with region)
    kFor,           ///< for v in lo..hi by step { body }
    kIf,            ///< if cond { then } else { else }
    kCall,          ///< proc()
  };

  Kind kind = Stmt::Kind::kArrayAssign;

  // kArrayAssign / kScalarAssign
  std::optional<RegionSpec> region;  // required for array assigns & reductions
  ArrayId lhs_array{};
  ScalarId lhs_scalar{};
  ExprId rhs{};

  // kFor
  LoopVarId loop_var{};
  IntExpr lo;
  IntExpr hi;
  long long step = 1;  // nonzero; negative steps iterate downward
  std::vector<StmtId> body;

  // kIf
  ExprId cond{};  // scalar-valued
  std::vector<StmtId> else_body;

  // kCall
  ProcId callee{};

  SourceLoc loc{};
};

struct ProcDecl {
  std::string name;
  std::vector<StmtId> body;
};

/// The program: all declaration tables plus the statement/expression arenas.
/// Construct with ProgramBuilder or the parser; treat as immutable afterward.
class Program {
 public:
  // --- declaration tables ------------------------------------------------
  ConfigId add_config(ConfigDecl d);
  RegionId add_region(RegionDecl d);
  DirectionId add_direction(DirectionDecl d);
  ArrayId add_array(ArrayDecl d);
  ScalarId add_scalar(ScalarDecl d);
  LoopVarId add_loop_var(LoopVarDecl d);
  ExprId add_expr(Expr e);
  StmtId add_stmt(Stmt s);
  ProcId add_proc(ProcDecl p);

  [[nodiscard]] const ConfigDecl& config(ConfigId id) const { return configs_.at(id.index()); }
  [[nodiscard]] const RegionDecl& region(RegionId id) const { return regions_.at(id.index()); }
  [[nodiscard]] const DirectionDecl& direction(DirectionId id) const {
    return directions_.at(id.index());
  }
  [[nodiscard]] const ArrayDecl& array(ArrayId id) const { return arrays_.at(id.index()); }
  [[nodiscard]] const ScalarDecl& scalar(ScalarId id) const { return scalars_.at(id.index()); }
  [[nodiscard]] const LoopVarDecl& loop_var(LoopVarId id) const {
    return loop_vars_.at(id.index());
  }
  [[nodiscard]] const Expr& expr(ExprId id) const { return exprs_.at(id.index()); }
  [[nodiscard]] const Stmt& stmt(StmtId id) const { return stmts_.at(id.index()); }
  [[nodiscard]] const ProcDecl& proc(ProcId id) const { return procs_.at(id.index()); }

  [[nodiscard]] std::size_t config_count() const { return configs_.size(); }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] std::size_t direction_count() const { return directions_.size(); }
  [[nodiscard]] std::size_t array_count() const { return arrays_.size(); }
  [[nodiscard]] std::size_t scalar_count() const { return scalars_.size(); }
  [[nodiscard]] std::size_t loop_var_count() const { return loop_vars_.size(); }
  [[nodiscard]] std::size_t expr_count() const { return exprs_.size(); }
  [[nodiscard]] std::size_t stmt_count() const { return stmts_.size(); }
  [[nodiscard]] std::size_t proc_count() const { return procs_.size(); }

  // --- lookup by name (returns invalid id if absent) ----------------------
  [[nodiscard]] ConfigId find_config(std::string_view name) const;
  [[nodiscard]] RegionId find_region(std::string_view name) const;
  [[nodiscard]] DirectionId find_direction(std::string_view name) const;
  [[nodiscard]] ArrayId find_array(std::string_view name) const;
  [[nodiscard]] ScalarId find_scalar(std::string_view name) const;
  [[nodiscard]] ProcId find_proc(std::string_view name) const;

  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& name() const { return name_; }

  void set_entry(ProcId p) { entry_ = p; }
  [[nodiscard]] ProcId entry() const { return entry_; }

  /// The rank of the problem (max rank over declared regions): 2 or 3.
  [[nodiscard]] int rank() const;

  /// Builds an IntEnv with default config values (loop slots sized but unbound).
  [[nodiscard]] IntEnv default_env() const;

  /// Structural validation: name/rank consistency, entry exists, bodies
  /// reference valid ids, no recursion, expressions well-kinded (array vs
  /// scalar contexts). Throws zc::Error describing the first problem found.
  void validate() const;

 private:
  std::string name_ = "unnamed";
  std::vector<ConfigDecl> configs_;
  std::vector<RegionDecl> regions_;
  std::vector<DirectionDecl> directions_;
  std::vector<ArrayDecl> arrays_;
  std::vector<ScalarDecl> scalars_;
  std::vector<LoopVarDecl> loop_vars_;
  std::vector<Expr> exprs_;
  std::vector<Stmt> stmts_;
  std::vector<ProcDecl> procs_;
  ProcId entry_{};
};

/// True if the expression (transitively) references distributed array data,
/// making it array-valued; reductions re-scalarize their operand.
bool is_array_valued(const Program& program, ExprId id);

/// Collects the distinct (array, direction) shift references in `id`,
/// in first-occurrence order. Unshifted ArrayRefs are not included.
struct ShiftRef {
  ArrayId array;
  DirectionId direction;
  friend bool operator==(const ShiftRef&, const ShiftRef&) = default;
};
std::vector<ShiftRef> collect_shift_refs(const Program& program, ExprId id);

/// Collects distinct arrays read (shifted or not) by the expression.
std::vector<ArrayId> collect_arrays_read(const Program& program, ExprId id);

/// Collects the Reduce nodes of a scalar-valued expression in
/// first-occurrence DFS order — the order in which the evaluator consumes
/// globally-combined reduce values, and in which the engine's compiled
/// reduce programs produce partials.
std::vector<ExprId> collect_reduce_exprs(const Program& program, ExprId id);

/// Counts arithmetic operation nodes (the per-element flop estimate used by
/// the simulator's compute cost model).
int count_flops(const Program& program, ExprId id);

}  // namespace zc::zir
