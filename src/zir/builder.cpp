#include "src/zir/builder.h"

#include "src/prof/prof.h"
#include "src/support/check.h"
#include "src/support/diag.h"

namespace zc::zir {

// --- Ex operators -----------------------------------------------------------

namespace {
Ex make_binary(BinOp op, const Ex& a, const Ex& b) {
  ZC_ASSERT(a.builder() != nullptr && a.builder() == b.builder());
  return a.builder()->binary(op, a, b);
}
}  // namespace

Ex operator+(const Ex& a, const Ex& b) { return make_binary(BinOp::kAdd, a, b); }
Ex operator-(const Ex& a, const Ex& b) { return make_binary(BinOp::kSub, a, b); }
Ex operator*(const Ex& a, const Ex& b) { return make_binary(BinOp::kMul, a, b); }
Ex operator/(const Ex& a, const Ex& b) { return make_binary(BinOp::kDiv, a, b); }
Ex operator-(const Ex& a) { return a.builder()->unary(UnOp::kNeg, a); }

Ex operator+(const Ex& a, double b) { return a + a.builder()->lit(b); }
Ex operator+(double a, const Ex& b) { return b.builder()->lit(a) + b; }
Ex operator-(const Ex& a, double b) { return a - a.builder()->lit(b); }
Ex operator-(double a, const Ex& b) { return b.builder()->lit(a) - b; }
Ex operator*(const Ex& a, double b) { return a * a.builder()->lit(b); }
Ex operator*(double a, const Ex& b) { return b.builder()->lit(a) * b; }
Ex operator/(const Ex& a, double b) { return a / a.builder()->lit(b); }
Ex operator/(double a, const Ex& b) { return b.builder()->lit(a) / b; }

// --- ProgramBuilder ---------------------------------------------------------

ProgramBuilder::ProgramBuilder(std::string name) { program_.set_name(std::move(name)); }

Ix ProgramBuilder::config(const std::string& name, long long default_value) {
  const ConfigId id = program_.add_config({name, default_value});
  return Ix(IntExpr::config(id));
}

RegionId ProgramBuilder::region(const std::string& name, std::vector<std::pair<Ix, Ix>> bounds) {
  RegionSpec s;
  for (auto& [lo, hi] : bounds) s.dims.push_back({lo.expr(), hi.expr()});
  return program_.add_region({name, std::move(s)});
}

DirectionId ProgramBuilder::direction(const std::string& name, std::vector<int> offsets) {
  return program_.add_direction({name, std::move(offsets)});
}

ArrayId ProgramBuilder::array(const std::string& name, RegionId over, ElemType type) {
  return program_.add_array({name, over, type});
}

ScalarId ProgramBuilder::scalar(const std::string& name, ElemType type) {
  return program_.add_scalar({name, type});
}

Ex ProgramBuilder::wrap(Expr e) { return Ex(this, program_.add_expr(std::move(e))); }

Ex ProgramBuilder::lit(double v) {
  Expr e;
  e.kind = Expr::Kind::kConst;
  e.const_value = v;
  return wrap(e);
}

Ex ProgramBuilder::ref(ArrayId a) {
  Expr e;
  e.kind = Expr::Kind::kArrayRef;
  e.array = a;
  return wrap(e);
}

Ex ProgramBuilder::at(ArrayId a, DirectionId d) {
  Expr e;
  e.kind = Expr::Kind::kShift;
  e.array = a;
  e.direction = d;
  return wrap(e);
}

Ex ProgramBuilder::sref(ScalarId s) {
  Expr e;
  e.kind = Expr::Kind::kScalarRef;
  e.scalar = s;
  return wrap(e);
}

Ex ProgramBuilder::index(int dim) {
  Expr e;
  e.kind = Expr::Kind::kIndex;
  e.index_dim = dim;
  return wrap(e);
}

Ex ProgramBuilder::binary(BinOp op, Ex a, Ex b) {
  Expr e;
  e.kind = Expr::Kind::kBinary;
  e.bin_op = op;
  e.lhs = a.id();
  e.rhs = b.id();
  return wrap(e);
}

Ex ProgramBuilder::unary(UnOp op, Ex a) {
  Expr e;
  e.kind = Expr::Kind::kUnary;
  e.un_op = op;
  e.lhs = a.id();
  return wrap(e);
}

Ex ProgramBuilder::min(Ex a, Ex b) { return binary(BinOp::kMin, a, b); }
Ex ProgramBuilder::max(Ex a, Ex b) { return binary(BinOp::kMax, a, b); }
Ex ProgramBuilder::sqrt(Ex a) { return unary(UnOp::kSqrt, a); }
Ex ProgramBuilder::abs(Ex a) { return unary(UnOp::kAbs, a); }

Ex ProgramBuilder::reduce(ReduceOp op, Ex a) {
  Expr e;
  e.kind = Expr::Kind::kReduce;
  e.reduce_op = op;
  e.lhs = a.id();
  return wrap(e);
}

RegionSpec ProgramBuilder::spec(std::vector<std::pair<Ix, Ix>> bounds) {
  RegionSpec s;
  for (auto& [lo, hi] : bounds) s.dims.push_back({lo.expr(), hi.expr()});
  return s;
}

RegionSpec ProgramBuilder::spec_of(RegionId r) const { return program_.region(r).spec; }

Ix ProgramBuilder::loop_ix() const {
  if (loop_stack_.empty()) throw Error("loop_ix() used outside a for_ body");
  return Ix(IntExpr::loop_var(loop_stack_.back()));
}

Ex ProgramBuilder::loop_ex() {
  if (loop_stack_.empty()) throw Error("loop_ex() used outside a for_ body");
  Expr e;
  e.kind = Expr::Kind::kLoopVarRef;
  e.loop_var = loop_stack_.back();
  return wrap(e);
}

void ProgramBuilder::emit(Stmt s) {
  if (body_stack_.empty()) throw Error("statement emitted outside a procedure body");
  body_stack_.back().push_back(program_.add_stmt(std::move(s)));
}

void ProgramBuilder::assign(RegionId region, ArrayId lhs, Ex rhs) {
  assign(spec_of(region), lhs, rhs);
}

void ProgramBuilder::assign(RegionSpec region, ArrayId lhs, Ex rhs) {
  Stmt s;
  s.kind = Stmt::Kind::kArrayAssign;
  s.region = std::move(region);
  s.lhs_array = lhs;
  s.rhs = rhs.id();
  emit(std::move(s));
}

void ProgramBuilder::sassign(ScalarId lhs, Ex rhs) {
  Stmt s;
  s.kind = Stmt::Kind::kScalarAssign;
  s.lhs_scalar = lhs;
  s.rhs = rhs.id();
  emit(std::move(s));
}

void ProgramBuilder::sassign_over(RegionSpec region, ScalarId lhs, Ex rhs) {
  Stmt s;
  s.kind = Stmt::Kind::kScalarAssign;
  s.region = std::move(region);
  s.lhs_scalar = lhs;
  s.rhs = rhs.id();
  emit(std::move(s));
}

void ProgramBuilder::for_(const std::string& var, Ix lo, Ix hi,
                          const std::function<void()>& body, long long step) {
  const LoopVarId v = program_.add_loop_var({var});
  loop_stack_.push_back(v);
  body_stack_.emplace_back();
  body();
  std::vector<StmtId> stmts = std::move(body_stack_.back());
  body_stack_.pop_back();
  loop_stack_.pop_back();

  Stmt s;
  s.kind = Stmt::Kind::kFor;
  s.loop_var = v;
  s.lo = lo.expr();
  s.hi = hi.expr();
  s.step = step;
  s.body = std::move(stmts);
  emit(std::move(s));
}

void ProgramBuilder::repeat(Ix count, const std::function<void()>& body) {
  for_("_rep", 1, count, body);
}

void ProgramBuilder::if_(Ex cond, const std::function<void()>& then_body,
                         const std::function<void()>& else_body) {
  body_stack_.emplace_back();
  then_body();
  std::vector<StmtId> then_stmts = std::move(body_stack_.back());
  body_stack_.pop_back();

  std::vector<StmtId> else_stmts;
  if (else_body) {
    body_stack_.emplace_back();
    else_body();
    else_stmts = std::move(body_stack_.back());
    body_stack_.pop_back();
  }

  Stmt s;
  s.kind = Stmt::Kind::kIf;
  s.cond = cond.id();
  s.body = std::move(then_stmts);
  s.else_body = std::move(else_stmts);
  emit(std::move(s));
}

void ProgramBuilder::call(ProcId callee) {
  Stmt s;
  s.kind = Stmt::Kind::kCall;
  s.callee = callee;
  emit(std::move(s));
}

ProcId ProgramBuilder::proc(const std::string& name, const std::function<void()>& body) {
  body_stack_.emplace_back();
  body();
  std::vector<StmtId> stmts = std::move(body_stack_.back());
  body_stack_.pop_back();
  return program_.add_proc({name, std::move(stmts)});
}

Program ProgramBuilder::finish() && {
  ZC_PROF_SPAN("zir/build");
  ProcId entry = program_.find_proc("main");
  if (!entry.valid() && program_.proc_count() > 0) {
    entry = ProcId(static_cast<int32_t>(program_.proc_count() - 1));
  }
  program_.set_entry(entry);
  program_.validate();
  return std::move(program_);
}

}  // namespace zc::zir
