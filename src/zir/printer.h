// Pretty printer: renders a Program back to mini-ZPL-ish source. Used by
// tests (round-trip checks) and the compiler-explorer example.
#pragma once

#include <string>

#include "src/zir/program.h"

namespace zc::zir {

/// Renders the full program: declarations then procedures.
std::string to_source(const Program& program);

/// Renders a single expression.
std::string expr_to_string(const Program& program, ExprId id);

/// Renders a region spec like "[1..n, 2..n-1]".
std::string region_spec_to_string(const Program& program, const RegionSpec& spec);

/// Renders one statement (with trailing newline), indented by `indent` levels.
std::string stmt_to_string(const Program& program, StmtId id, int indent = 0);

}  // namespace zc::zir
