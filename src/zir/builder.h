// ProgramBuilder: an ergonomic C++ DSL for constructing ZIR programs.
// Used by tests, examples, and the property-test program generator; the
// benchmark suite itself goes through the mini-ZPL parser.
//
// Example:
//   ProgramBuilder b("jacobi");
//   Ix n = b.config("n", 64);
//   RegionId R = b.region("R", {{1, n}, {1, n}});
//   DirectionId east = b.direction("east", {0, 1});
//   ArrayId A = b.array("A", R), B = b.array("B", R);
//   b.proc("main", [&] {
//     b.repeat(10, [&] { b.assign(R, A, (b.at(B, east) + b.ref(B)) * 0.5); });
//   });
//   Program p = std::move(b).finish();
#pragma once

#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/zir/program.h"

namespace zc::zir {

class ProgramBuilder;

/// Integer-expression wrapper with arithmetic operators, for bounds.
class Ix {
 public:
  Ix(long long v) : expr_(IntExpr::constant(v)) {}  // NOLINT: implicit by design
  explicit Ix(IntExpr e) : expr_(std::move(e)) {}

  [[nodiscard]] const IntExpr& expr() const { return expr_; }

  friend Ix operator+(const Ix& a, const Ix& b) { return Ix(IntExpr::add(a.expr_, b.expr_)); }
  friend Ix operator-(const Ix& a, const Ix& b) { return Ix(IntExpr::sub(a.expr_, b.expr_)); }
  friend Ix operator*(const Ix& a, const Ix& b) { return Ix(IntExpr::mul(a.expr_, b.expr_)); }
  friend Ix operator/(const Ix& a, const Ix& b) { return Ix(IntExpr::div(a.expr_, b.expr_)); }
  friend Ix operator-(const Ix& a) { return Ix(IntExpr::neg(a.expr_)); }

 private:
  IntExpr expr_;
};

/// Value-expression wrapper with arithmetic operators.
class Ex {
 public:
  Ex() = default;
  Ex(ProgramBuilder* b, ExprId id) : builder_(b), id_(id) {}

  [[nodiscard]] ExprId id() const { return id_; }
  [[nodiscard]] ProgramBuilder* builder() const { return builder_; }
  [[nodiscard]] bool valid() const { return builder_ != nullptr && id_.valid(); }

  friend Ex operator+(const Ex& a, const Ex& b);
  friend Ex operator-(const Ex& a, const Ex& b);
  friend Ex operator*(const Ex& a, const Ex& b);
  friend Ex operator/(const Ex& a, const Ex& b);
  friend Ex operator-(const Ex& a);

  // Mixed with double literals.
  friend Ex operator+(const Ex& a, double b);
  friend Ex operator+(double a, const Ex& b);
  friend Ex operator-(const Ex& a, double b);
  friend Ex operator-(double a, const Ex& b);
  friend Ex operator*(const Ex& a, double b);
  friend Ex operator*(double a, const Ex& b);
  friend Ex operator/(const Ex& a, double b);
  friend Ex operator/(double a, const Ex& b);

 private:
  ProgramBuilder* builder_ = nullptr;
  ExprId id_{};
};

/// Builds a Program imperatively. Statement-emitting calls append to the
/// innermost open body (procedure, loop, or branch).
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // --- declarations --------------------------------------------------------
  /// Declares a config constant and returns an Ix referring to it.
  Ix config(const std::string& name, long long default_value);
  RegionId region(const std::string& name, std::vector<std::pair<Ix, Ix>> bounds);
  DirectionId direction(const std::string& name, std::vector<int> offsets);
  ArrayId array(const std::string& name, RegionId over, ElemType type = ElemType::kF64);
  ScalarId scalar(const std::string& name, ElemType type = ElemType::kF64);

  // --- expressions ----------------------------------------------------------
  Ex lit(double v);
  Ex ref(ArrayId a);
  Ex at(ArrayId a, DirectionId d);  ///< A@d
  Ex sref(ScalarId s);
  Ex index(int dim);  ///< ZPL Index1 / Index2 / Index3
  Ex binary(BinOp op, Ex a, Ex b);
  Ex unary(UnOp op, Ex a);
  Ex min(Ex a, Ex b);
  Ex max(Ex a, Ex b);
  Ex sqrt(Ex a);
  Ex abs(Ex a);
  Ex reduce(ReduceOp op, Ex a);

  // --- region specs ---------------------------------------------------------
  /// An inline region spec (bounds may reference in-scope loop variables).
  static RegionSpec spec(std::vector<std::pair<Ix, Ix>> bounds);
  /// The spec of a previously declared named region.
  [[nodiscard]] RegionSpec spec_of(RegionId r) const;
  /// The current loop variable of the innermost `for_` as an Ix.
  [[nodiscard]] Ix loop_ix() const;
  /// ... and as a (scalar-valued) Ex.
  Ex loop_ex();

  // --- statements -----------------------------------------------------------
  void assign(RegionId region, ArrayId lhs, Ex rhs);
  void assign(RegionSpec region, ArrayId lhs, Ex rhs);
  void sassign(ScalarId lhs, Ex rhs);
  /// Scalar assignment whose rhs contains a reduction over `region`.
  void sassign_over(RegionSpec region, ScalarId lhs, Ex rhs);
  void for_(const std::string& var, Ix lo, Ix hi, const std::function<void()>& body,
            long long step = 1);
  void repeat(Ix count, const std::function<void()>& body);
  void if_(Ex cond, const std::function<void()>& then_body,
           const std::function<void()>& else_body = nullptr);
  void call(ProcId callee);

  // --- procedures -----------------------------------------------------------
  ProcId proc(const std::string& name, const std::function<void()>& body);

  /// Finishes construction; validates; the entry is the procedure named
  /// "main" (or the last procedure declared if none is named main).
  [[nodiscard]] Program finish() &&;

  [[nodiscard]] Program& program() { return program_; }

 private:
  friend class Ex;
  Ex wrap(Expr e);
  void emit(Stmt s);

  Program program_;
  // Bodies under construction, innermost last. Values (not pointers into the
  // statement arena) so that arena growth cannot invalidate them.
  std::vector<std::vector<StmtId>> body_stack_;
  std::vector<LoopVarId> loop_stack_;
};

}  // namespace zc::zir
