#include "src/zir/intexpr.h"

#include "src/support/check.h"
#include "src/support/diag.h"
#include "src/zir/program.h"

namespace zc::zir {

IntExpr IntExpr::constant(long long v) {
  IntExpr e;
  e.kind_ = Kind::kConst;
  e.const_value_ = v;
  return e;
}

IntExpr IntExpr::config(ConfigId id) {
  IntExpr e;
  e.kind_ = Kind::kConfig;
  e.config_id_ = id;
  return e;
}

IntExpr IntExpr::loop_var(LoopVarId id) {
  IntExpr e;
  e.kind_ = Kind::kLoopVar;
  e.loop_var_id_ = id;
  return e;
}

IntExpr IntExpr::add(IntExpr a, IntExpr b) {
  IntExpr e;
  e.kind_ = Kind::kAdd;
  e.lhs_ = std::make_shared<const IntExpr>(std::move(a));
  e.rhs_ = std::make_shared<const IntExpr>(std::move(b));
  return e;
}

IntExpr IntExpr::sub(IntExpr a, IntExpr b) {
  IntExpr e;
  e.kind_ = Kind::kSub;
  e.lhs_ = std::make_shared<const IntExpr>(std::move(a));
  e.rhs_ = std::make_shared<const IntExpr>(std::move(b));
  return e;
}

IntExpr IntExpr::mul(IntExpr a, IntExpr b) {
  IntExpr e;
  e.kind_ = Kind::kMul;
  e.lhs_ = std::make_shared<const IntExpr>(std::move(a));
  e.rhs_ = std::make_shared<const IntExpr>(std::move(b));
  return e;
}

IntExpr IntExpr::div(IntExpr a, IntExpr b) {
  IntExpr e;
  e.kind_ = Kind::kDiv;
  e.lhs_ = std::make_shared<const IntExpr>(std::move(a));
  e.rhs_ = std::make_shared<const IntExpr>(std::move(b));
  return e;
}

IntExpr IntExpr::neg(IntExpr a) {
  IntExpr e;
  e.kind_ = Kind::kNeg;
  e.lhs_ = std::make_shared<const IntExpr>(std::move(a));
  return e;
}

long long IntExpr::eval(const IntEnv& env) const {
  switch (kind_) {
    case Kind::kConst:
      return const_value_;
    case Kind::kConfig:
      ZC_ASSERT(config_id_.index() < env.config_values.size());
      return env.config_values[config_id_.index()];
    case Kind::kLoopVar:
      if (loop_var_id_.index() >= env.loop_bound.size() || !env.loop_bound[loop_var_id_.index()]) {
        throw Error("loop variable used outside its loop in a bound expression");
      }
      return env.loop_values[loop_var_id_.index()];
    case Kind::kAdd:
      return lhs_->eval(env) + rhs_->eval(env);
    case Kind::kSub:
      return lhs_->eval(env) - rhs_->eval(env);
    case Kind::kMul:
      return lhs_->eval(env) * rhs_->eval(env);
    case Kind::kDiv: {
      const long long d = rhs_->eval(env);
      if (d == 0) throw Error("division by zero in integer bound expression");
      return lhs_->eval(env) / d;
    }
    case Kind::kNeg:
      return -lhs_->eval(env);
  }
  ZC_ASSERT(false);
  return 0;
}

bool IntExpr::is_static() const {
  switch (kind_) {
    case Kind::kConst:
    case Kind::kConfig:
      return true;
    case Kind::kLoopVar:
      return false;
    case Kind::kNeg:
      return lhs_->is_static();
    default:
      return lhs_->is_static() && rhs_->is_static();
  }
}

bool IntExpr::uses_loop_var(LoopVarId id) const {
  switch (kind_) {
    case Kind::kConst:
    case Kind::kConfig:
      return false;
    case Kind::kLoopVar:
      return loop_var_id_ == id;
    case Kind::kNeg:
      return lhs_->uses_loop_var(id);
    default:
      return lhs_->uses_loop_var(id) || rhs_->uses_loop_var(id);
  }
}

bool IntExpr::equals(const IntExpr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kConst:
      return const_value_ == other.const_value_;
    case Kind::kConfig:
      return config_id_ == other.config_id_;
    case Kind::kLoopVar:
      return loop_var_id_ == other.loop_var_id_;
    case Kind::kNeg:
      return lhs_->equals(*other.lhs_);
    default:
      return lhs_->equals(*other.lhs_) && rhs_->equals(*other.rhs_);
  }
}

std::string IntExpr::to_string(const Program& program) const {
  switch (kind_) {
    case Kind::kConst:
      return std::to_string(const_value_);
    case Kind::kConfig:
      return program.config(config_id_).name;
    case Kind::kLoopVar:
      return program.loop_var(loop_var_id_).name;
    case Kind::kAdd:
      return "(" + lhs_->to_string(program) + "+" + rhs_->to_string(program) + ")";
    case Kind::kSub:
      return "(" + lhs_->to_string(program) + "-" + rhs_->to_string(program) + ")";
    case Kind::kMul:
      return "(" + lhs_->to_string(program) + "*" + rhs_->to_string(program) + ")";
    case Kind::kDiv:
      return "(" + lhs_->to_string(program) + "/" + rhs_->to_string(program) + ")";
    case Kind::kNeg:
      return "(-" + lhs_->to_string(program) + ")";
  }
  return "?";
}

}  // namespace zc::zir
