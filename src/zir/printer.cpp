#include "src/zir/printer.h"

#include <sstream>

#include "src/support/check.h"

namespace zc::zir {

namespace {

const char* bin_op_token(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
    case BinOp::kPow: return "pow";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

const char* un_op_token(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kNot: return "!";
    case UnOp::kAbs: return "abs";
    case UnOp::kSqrt: return "sqrt";
    case UnOp::kExp: return "exp";
    case UnOp::kLog: return "log";
    case UnOp::kSin: return "sin";
    case UnOp::kCos: return "cos";
  }
  return "?";
}

const char* reduce_op_token(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "+<<";
    case ReduceOp::kMax: return "max<<";
    case ReduceOp::kMin: return "min<<";
  }
  return "?";
}

bool is_function_style(BinOp op) {
  return op == BinOp::kMin || op == BinOp::kMax || op == BinOp::kPow;
}

std::string format_const(double v) {
  std::ostringstream os;
  os << v;
  std::string s = os.str();
  // Make sure literals parse back as doubles, not integers.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void print_body(const Program& p, const std::vector<StmtId>& body, int indent,
                std::ostringstream& os) {
  for (StmtId id : body) os << stmt_to_string(p, id, indent);
}

}  // namespace

std::string expr_to_string(const Program& p, ExprId id) {
  const Expr& e = p.expr(id);
  switch (e.kind) {
    case Expr::Kind::kConst:
      return format_const(e.const_value);
    case Expr::Kind::kScalarRef:
      return p.scalar(e.scalar).name;
    case Expr::Kind::kLoopVarRef:
      return p.loop_var(e.loop_var).name;
    case Expr::Kind::kConfigRef:
      return p.config(e.config).name;
    case Expr::Kind::kArrayRef:
      return p.array(e.array).name;
    case Expr::Kind::kShift:
      return p.array(e.array).name + "@" + p.direction(e.direction).name;
    case Expr::Kind::kIndex:
      return "Index" + std::to_string(e.index_dim);
    case Expr::Kind::kBinary: {
      const std::string a = expr_to_string(p, e.lhs);
      const std::string b = expr_to_string(p, e.rhs);
      if (is_function_style(e.bin_op)) {
        return std::string(bin_op_token(e.bin_op)) + "(" + a + ", " + b + ")";
      }
      return "(" + a + " " + bin_op_token(e.bin_op) + " " + b + ")";
    }
    case Expr::Kind::kUnary: {
      const std::string a = expr_to_string(p, e.lhs);
      if (e.un_op == UnOp::kNeg || e.un_op == UnOp::kNot) {
        return std::string(un_op_token(e.un_op)) + a;
      }
      return std::string(un_op_token(e.un_op)) + "(" + a + ")";
    }
    case Expr::Kind::kReduce:
      return std::string(reduce_op_token(e.reduce_op)) + " " + expr_to_string(p, e.lhs);
  }
  return "?";
}

std::string region_spec_to_string(const Program& p, const RegionSpec& spec) {
  std::string out = "[";
  for (int d = 0; d < spec.rank(); ++d) {
    if (d > 0) out += ", ";
    out += spec.dims[d].lo.to_string(p);
    out += "..";
    out += spec.dims[d].hi.to_string(p);
  }
  out += "]";
  return out;
}

std::string stmt_to_string(const Program& p, StmtId id, int indent) {
  const Stmt& s = p.stmt(id);
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (s.kind) {
    case Stmt::Kind::kArrayAssign:
      os << pad << region_spec_to_string(p, *s.region) << " " << p.array(s.lhs_array).name
         << " := " << expr_to_string(p, s.rhs) << ";\n";
      break;
    case Stmt::Kind::kScalarAssign:
      os << pad;
      if (s.region.has_value()) os << region_spec_to_string(p, *s.region) << " ";
      os << p.scalar(s.lhs_scalar).name << " := " << expr_to_string(p, s.rhs) << ";\n";
      break;
    case Stmt::Kind::kFor:
      os << pad << "for " << p.loop_var(s.loop_var).name << " in " << s.lo.to_string(p) << ".."
         << s.hi.to_string(p);
      if (s.step != 1) os << " by " << s.step;
      os << " {\n";
      print_body(p, s.body, indent + 1, os);
      os << pad << "}\n";
      break;
    case Stmt::Kind::kIf:
      os << pad << "if " << expr_to_string(p, s.cond) << " {\n";
      print_body(p, s.body, indent + 1, os);
      if (!s.else_body.empty()) {
        os << pad << "} else {\n";
        print_body(p, s.else_body, indent + 1, os);
      }
      os << pad << "}\n";
      break;
    case Stmt::Kind::kCall:
      os << pad << p.proc(s.callee).name << "();\n";
      break;
  }
  return os.str();
}

std::string to_source(const Program& p) {
  std::ostringstream os;
  os << "program " << p.name() << ";\n\n";
  for (std::size_t i = 0; i < p.config_count(); ++i) {
    const ConfigDecl& c = p.config(ConfigId(static_cast<int32_t>(i)));
    os << "config " << c.name << " : integer = " << c.default_value << ";\n";
  }
  for (std::size_t i = 0; i < p.region_count(); ++i) {
    const RegionDecl& r = p.region(RegionId(static_cast<int32_t>(i)));
    os << "region " << r.name << " = " << region_spec_to_string(p, r.spec) << ";\n";
  }
  for (std::size_t i = 0; i < p.direction_count(); ++i) {
    const DirectionDecl& d = p.direction(DirectionId(static_cast<int32_t>(i)));
    os << "direction " << d.name << " = [";
    for (std::size_t k = 0; k < d.offsets.size(); ++k) {
      if (k > 0) os << ", ";
      os << d.offsets[k];
    }
    os << "];\n";
  }
  for (std::size_t i = 0; i < p.array_count(); ++i) {
    const ArrayDecl& a = p.array(ArrayId(static_cast<int32_t>(i)));
    os << "var " << a.name << " : [" << p.region(a.region).name << "] "
       << (a.type == ElemType::kF64 ? "double" : "integer") << ";\n";
  }
  for (std::size_t i = 0; i < p.scalar_count(); ++i) {
    const ScalarDecl& sd = p.scalar(ScalarId(static_cast<int32_t>(i)));
    os << "var " << sd.name << " : " << (sd.type == ElemType::kF64 ? "double" : "integer")
       << ";\n";
  }
  os << "\n";
  for (std::size_t i = 0; i < p.proc_count(); ++i) {
    const ProcDecl& pr = p.proc(ProcId(static_cast<int32_t>(i)));
    os << "procedure " << pr.name << "() {\n";
    print_body(p, pr.body, 1, os);
    os << "}\n\n";
  }
  return os.str();
}

}  // namespace zc::zir
