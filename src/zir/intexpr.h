// Integer expressions: the small arithmetic language used for region bounds,
// loop bounds, and repeat counts. Operands are literals, config constants
// (e.g. the problem size `n`), and enclosing loop variables — this is what
// lets TOMCATV express its row-sweep regions `[i, 1..n]`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/zir/ids.h"

namespace zc::zir {

class Program;  // for name lookup in to_string

/// Environment for evaluating an IntExpr: config constant values plus the
/// values of loop variables currently in scope.
struct IntEnv {
  std::vector<long long> config_values;            // indexed by ConfigId
  std::vector<long long> loop_values;              // indexed by LoopVarId
  std::vector<bool> loop_bound;                    // indexed by LoopVarId
};

/// A small value-semantic expression tree over integers.
class IntExpr {
 public:
  enum class Kind { kConst, kConfig, kLoopVar, kAdd, kSub, kMul, kDiv, kNeg };

  IntExpr() : kind_(Kind::kConst), const_value_(0) {}

  static IntExpr constant(long long v);
  static IntExpr config(ConfigId id);
  static IntExpr loop_var(LoopVarId id);
  static IntExpr add(IntExpr a, IntExpr b);
  static IntExpr sub(IntExpr a, IntExpr b);
  static IntExpr mul(IntExpr a, IntExpr b);
  static IntExpr div(IntExpr a, IntExpr b);
  static IntExpr neg(IntExpr a);

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Evaluates under `env`; throws zc::Error on unbound loop variable or
  /// division by zero.
  [[nodiscard]] long long eval(const IntEnv& env) const;

  /// True if no loop variables occur (value depends only on configs).
  [[nodiscard]] bool is_static() const;

  /// True if this loop variable occurs in the expression.
  [[nodiscard]] bool uses_loop_var(LoopVarId id) const;

  /// Structural equality (same tree shape, same leaves).
  [[nodiscard]] bool equals(const IntExpr& other) const;

  [[nodiscard]] std::string to_string(const Program& program) const;

 private:
  Kind kind_;
  long long const_value_ = 0;
  ConfigId config_id_{};
  LoopVarId loop_var_id_{};
  // Children are heap-allocated to keep IntExpr copyable with value
  // semantics; trees are tiny (a handful of nodes).
  std::shared_ptr<const IntExpr> lhs_;
  std::shared_ptr<const IntExpr> rhs_;
};

}  // namespace zc::zir
