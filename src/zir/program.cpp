#include "src/zir/program.h"

#include <unordered_set>

#include "src/prof/prof.h"
#include "src/support/check.h"

namespace zc::zir {

bool RegionSpec::is_static() const {
  for (const RangeSpec& r : dims) {
    if (!r.lo.is_static() || !r.hi.is_static()) return false;
  }
  return true;
}

ConfigId Program::add_config(ConfigDecl d) {
  configs_.push_back(std::move(d));
  return ConfigId(static_cast<int32_t>(configs_.size() - 1));
}

RegionId Program::add_region(RegionDecl d) {
  regions_.push_back(std::move(d));
  return RegionId(static_cast<int32_t>(regions_.size() - 1));
}

DirectionId Program::add_direction(DirectionDecl d) {
  directions_.push_back(std::move(d));
  return DirectionId(static_cast<int32_t>(directions_.size() - 1));
}

ArrayId Program::add_array(ArrayDecl d) {
  arrays_.push_back(std::move(d));
  return ArrayId(static_cast<int32_t>(arrays_.size() - 1));
}

ScalarId Program::add_scalar(ScalarDecl d) {
  scalars_.push_back(std::move(d));
  return ScalarId(static_cast<int32_t>(scalars_.size() - 1));
}

LoopVarId Program::add_loop_var(LoopVarDecl d) {
  loop_vars_.push_back(std::move(d));
  return LoopVarId(static_cast<int32_t>(loop_vars_.size() - 1));
}

ExprId Program::add_expr(Expr e) {
  exprs_.push_back(std::move(e));
  return ExprId(static_cast<int32_t>(exprs_.size() - 1));
}

StmtId Program::add_stmt(Stmt s) {
  stmts_.push_back(std::move(s));
  return StmtId(static_cast<int32_t>(stmts_.size() - 1));
}

ProcId Program::add_proc(ProcDecl p) {
  procs_.push_back(std::move(p));
  return ProcId(static_cast<int32_t>(procs_.size() - 1));
}

namespace {
template <typename DeclVector, typename IdType>
IdType find_by_name(const DeclVector& decls, std::string_view name) {
  for (std::size_t i = 0; i < decls.size(); ++i) {
    if (decls[i].name == name) return IdType(static_cast<int32_t>(i));
  }
  return IdType{};
}
}  // namespace

ConfigId Program::find_config(std::string_view name) const {
  return find_by_name<decltype(configs_), ConfigId>(configs_, name);
}
RegionId Program::find_region(std::string_view name) const {
  return find_by_name<decltype(regions_), RegionId>(regions_, name);
}
DirectionId Program::find_direction(std::string_view name) const {
  return find_by_name<decltype(directions_), DirectionId>(directions_, name);
}
ArrayId Program::find_array(std::string_view name) const {
  return find_by_name<decltype(arrays_), ArrayId>(arrays_, name);
}
ScalarId Program::find_scalar(std::string_view name) const {
  return find_by_name<decltype(scalars_), ScalarId>(scalars_, name);
}
ProcId Program::find_proc(std::string_view name) const {
  return find_by_name<decltype(procs_), ProcId>(procs_, name);
}

int Program::rank() const {
  int r = 0;
  for (const RegionDecl& region : regions_) r = std::max(r, region.spec.rank());
  return r;
}

IntEnv Program::default_env() const {
  IntEnv env;
  env.config_values.reserve(configs_.size());
  for (const ConfigDecl& c : configs_) env.config_values.push_back(c.default_value);
  env.loop_values.assign(loop_vars_.size(), 0);
  env.loop_bound.assign(loop_vars_.size(), false);
  return env;
}

namespace {

/// Validation walker: checks id ranges, rank agreement, expression kinds,
/// and recursion. Kept out of the header; reports via zc::Error.
class Validator {
 public:
  explicit Validator(const Program& program) : p_(program) {}

  void run() {
    if (!p_.entry().valid() || p_.entry().index() >= p_.proc_count()) {
      throw Error("program '" + p_.name() + "' has no valid entry procedure");
    }
    for (std::size_t i = 0; i < p_.array_count(); ++i) {
      const ArrayDecl& a = p_.array(ArrayId(static_cast<int32_t>(i)));
      if (!a.region.valid() || a.region.index() >= p_.region_count()) {
        throw Error("array '" + a.name + "' declared over an invalid region");
      }
      if (!p_.region(a.region).spec.is_static()) {
        throw Error("array '" + a.name + "' declared over a non-static region");
      }
    }
    check_proc(p_.entry());
  }

 private:
  void check_proc(ProcId id) {
    if (visiting_.count(id.value) != 0) {
      throw Error("recursive call of procedure '" + p_.proc(id).name + "' is not supported");
    }
    if (done_.count(id.value) != 0) return;
    visiting_.insert(id.value);
    for (StmtId s : p_.proc(id).body) check_stmt(s);
    visiting_.erase(id.value);
    done_.insert(id.value);
  }

  void check_region_spec(const RegionSpec& spec, SourceLoc loc) {
    if (spec.rank() == 0) throw Error(loc, "region has rank 0");
    if (spec.rank() > 3) throw Error(loc, "regions of rank > 3 are not supported");
  }

  void check_stmt(StmtId id) {
    if (!id.valid() || id.index() >= p_.stmt_count()) throw Error("invalid statement id");
    const Stmt& s = p_.stmt(id);
    switch (s.kind) {
      case Stmt::Kind::kArrayAssign: {
        if (!s.region.has_value()) {
          throw Error(s.loc, "array assignment requires a region scope");
        }
        check_region_spec(*s.region, s.loc);
        const ArrayDecl& lhs = p_.array(s.lhs_array);
        const int lhs_rank = p_.region(lhs.region).spec.rank();
        if (lhs_rank != s.region->rank()) {
          throw Error(s.loc, "region rank does not match array '" + lhs.name + "' rank");
        }
        check_expr(s.rhs, /*array_context=*/true, s.region->rank());
        break;
      }
      case Stmt::Kind::kScalarAssign: {
        const int rank = s.region.has_value() ? s.region->rank() : 0;
        if (s.region.has_value()) check_region_spec(*s.region, s.loc);
        const bool has_reduce = contains_reduce(s.rhs);
        if (has_reduce && !s.region.has_value()) {
          throw Error(s.loc, "reduction requires a region scope");
        }
        check_expr(s.rhs, /*array_context=*/false, rank);
        break;
      }
      case Stmt::Kind::kFor: {
        if (s.step == 0) throw Error(s.loc, "loop step must be nonzero");
        for (StmtId b : s.body) check_stmt(b);
        break;
      }
      case Stmt::Kind::kIf: {
        check_expr(s.cond, /*array_context=*/false, 0);
        if (is_array_valued(p_, s.cond)) {
          throw Error(s.loc, "if condition must be scalar-valued");
        }
        for (StmtId b : s.body) check_stmt(b);
        for (StmtId b : s.else_body) check_stmt(b);
        break;
      }
      case Stmt::Kind::kCall: {
        if (!s.callee.valid() || s.callee.index() >= p_.proc_count()) {
          throw Error(s.loc, "call of undeclared procedure");
        }
        check_proc(s.callee);
        break;
      }
    }
  }

  [[nodiscard]] bool contains_reduce(ExprId id) const {
    const Expr& e = p_.expr(id);
    if (e.kind == Expr::Kind::kReduce) return true;
    bool found = false;
    if (e.lhs.valid()) found = found || contains_reduce(e.lhs);
    if (e.rhs.valid()) found = found || contains_reduce(e.rhs);
    return found;
  }

  void check_expr(ExprId id, bool array_context, int rank) {
    if (!id.valid() || id.index() >= p_.expr_count()) throw Error("invalid expression id");
    const Expr& e = p_.expr(id);
    switch (e.kind) {
      case Expr::Kind::kConst:
      case Expr::Kind::kLoopVarRef:
      case Expr::Kind::kConfigRef:
        break;
      case Expr::Kind::kScalarRef:
        if (!e.scalar.valid() || e.scalar.index() >= p_.scalar_count()) {
          throw Error(e.loc, "reference to undeclared scalar");
        }
        break;
      case Expr::Kind::kArrayRef:
      case Expr::Kind::kShift: {
        if (!e.array.valid() || e.array.index() >= p_.array_count()) {
          throw Error(e.loc, "reference to undeclared array");
        }
        if (!array_context) {
          throw Error(e.loc, "array '" + p_.array(e.array).name +
                                 "' used where a scalar value is required");
        }
        const int array_rank = p_.region(p_.array(e.array).region).spec.rank();
        if (rank != 0 && array_rank != rank) {
          throw Error(e.loc, "array '" + p_.array(e.array).name +
                                 "' rank does not match statement region rank");
        }
        if (e.kind == Expr::Kind::kShift) {
          if (!e.direction.valid() || e.direction.index() >= p_.direction_count()) {
            throw Error(e.loc, "shift by undeclared direction");
          }
          if (p_.direction(e.direction).rank() != array_rank) {
            throw Error(e.loc, "direction rank does not match array rank");
          }
        }
        break;
      }
      case Expr::Kind::kIndex:
        if (!array_context) throw Error(e.loc, "Index used in scalar context");
        if (e.index_dim < 1 || (rank != 0 && e.index_dim > rank)) {
          throw Error(e.loc, "Index dimension out of range");
        }
        break;
      case Expr::Kind::kBinary:
        check_expr(e.lhs, array_context, rank);
        check_expr(e.rhs, array_context, rank);
        break;
      case Expr::Kind::kUnary:
        check_expr(e.lhs, array_context, rank);
        break;
      case Expr::Kind::kReduce:
        // The operand of a reduction is array-valued even in scalar contexts.
        check_expr(e.lhs, /*array_context=*/true, rank);
        if (!is_array_valued(p_, e.lhs)) {
          throw Error(e.loc, "reduction operand must be array-valued");
        }
        if (contains_reduce(e.lhs)) {
          throw Error(e.loc, "nested reductions are not supported");
        }
        break;
    }
  }

  const Program& p_;
  std::unordered_set<int32_t> visiting_;
  std::unordered_set<int32_t> done_;
};

}  // namespace

void Program::validate() const {
  ZC_PROF_SPAN("zir/validate");
  Validator(*this).run();
}

bool is_array_valued(const Program& program, ExprId id) {
  const Expr& e = program.expr(id);
  switch (e.kind) {
    case Expr::Kind::kArrayRef:
    case Expr::Kind::kShift:
    case Expr::Kind::kIndex:
      return true;
    case Expr::Kind::kReduce:
      return false;  // reductions scalarize
    case Expr::Kind::kBinary:
      return is_array_valued(program, e.lhs) || is_array_valued(program, e.rhs);
    case Expr::Kind::kUnary:
      return is_array_valued(program, e.lhs);
    default:
      return false;
  }
}

namespace {
void collect_shift_refs_impl(const Program& p, ExprId id, std::vector<ShiftRef>& out) {
  const Expr& e = p.expr(id);
  if (e.kind == Expr::Kind::kShift) {
    const ShiftRef ref{e.array, e.direction};
    bool seen = false;
    for (const ShiftRef& r : out) seen = seen || (r == ref);
    if (!seen) out.push_back(ref);
  }
  if (e.lhs.valid()) collect_shift_refs_impl(p, e.lhs, out);
  if (e.rhs.valid()) collect_shift_refs_impl(p, e.rhs, out);
}

void collect_arrays_read_impl(const Program& p, ExprId id, std::vector<ArrayId>& out) {
  const Expr& e = p.expr(id);
  if (e.kind == Expr::Kind::kArrayRef || e.kind == Expr::Kind::kShift) {
    bool seen = false;
    for (ArrayId a : out) seen = seen || (a == e.array);
    if (!seen) out.push_back(e.array);
  }
  if (e.lhs.valid()) collect_arrays_read_impl(p, e.lhs, out);
  if (e.rhs.valid()) collect_arrays_read_impl(p, e.rhs, out);
}
}  // namespace

std::vector<ShiftRef> collect_shift_refs(const Program& program, ExprId id) {
  std::vector<ShiftRef> out;
  collect_shift_refs_impl(program, id, out);
  return out;
}

std::vector<ArrayId> collect_arrays_read(const Program& program, ExprId id) {
  std::vector<ArrayId> out;
  collect_arrays_read_impl(program, id, out);
  return out;
}

std::vector<ExprId> collect_reduce_exprs(const Program& program, ExprId id) {
  std::vector<ExprId> out;
  // Iterative first-occurrence DFS (lhs before rhs), matching the runtime
  // evaluator's reduce-value consumption order. Nested reductions are
  // rejected by validation, so recursion stops at a Reduce node.
  std::vector<ExprId> stack{id};
  while (!stack.empty()) {
    const ExprId at = stack.back();
    stack.pop_back();
    const Expr& e = program.expr(at);
    if (e.kind == Expr::Kind::kReduce) {
      out.push_back(at);
      continue;
    }
    if (e.rhs.valid()) stack.push_back(e.rhs);
    if (e.lhs.valid()) stack.push_back(e.lhs);
  }
  return out;
}

int count_flops(const Program& program, ExprId id) {
  const Expr& e = program.expr(id);
  int n = 0;
  switch (e.kind) {
    case Expr::Kind::kBinary:
      n = 1 + count_flops(program, e.lhs) + count_flops(program, e.rhs);
      break;
    case Expr::Kind::kUnary:
      // Transcendental unaries cost more than negation on real machines;
      // approximate with a fixed multiplier.
      n = (e.un_op == UnOp::kNeg || e.un_op == UnOp::kNot || e.un_op == UnOp::kAbs ? 1 : 8) +
          count_flops(program, e.lhs);
      break;
    case Expr::Kind::kReduce:
      n = 1 + count_flops(program, e.lhs);
      break;
    default:
      n = 0;
      break;
  }
  return n;
}

}  // namespace zc::zir
