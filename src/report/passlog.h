// Pass provenance: structured records of *why* the optimizer did what it
// did, one record per decision, collected while `plan_communication` runs.
//
// The log answers the attribution questions the counts alone cannot:
//   rr — which earlier (live) transfer's slice covered the killed one;
//   cc — which transfers were merged into which group, under which
//        heuristic, and at what estimated per-processor message size;
//   pl — how far each communication's SR was hoisted above its DN, and
//        within which feasible send interval.
//
// A PassLog is attached through OptOptions::pass_log (null by default).
// The contract mirrors src/trace: with no log attached the passes do no
// recording at all, and the produced CommPlan is bit-identical whether or
// not a log is attached (golden-checked by tests/report_test.cpp).
//
// Records reference plan structure by index (block index in
// CommPlan::blocks, transfer index in BlockPlan::transfers, group index in
// BlockPlan::groups) plus source anchors (procedure name, source line), so
// the log is plain data with no dependency on the IR.
#pragma once

#include <string>
#include <vector>

#include "src/support/json.h"

namespace zc::report {

/// Where a decision applies: the plan block plus its source anchor.
struct BlockRef {
  int block = -1;       ///< index into CommPlan::blocks
  std::string proc;     ///< enclosing procedure name
  int first_line = 0;   ///< source line of the block's first statement (0 = none)

  [[nodiscard]] std::string to_string() const;
};

/// Pass 1 (generation): per-block transfer counts before any optimization.
struct GenRecord {
  BlockRef where;
  int stmts = 0;      ///< statements in the block
  int transfers = 0;  ///< transfers generated (message vectorization only)
};

/// Pass 2 (redundant removal): one record per killed transfer, naming the
/// covering transfer whose communicated slice makes it redundant. After
/// `resolve_rr_coverers()` the named coverer is always live in the plan.
struct RRDecision {
  BlockRef where;             ///< block of the killed transfer
  int transfer = -1;          ///< index into that block's transfers (the killed one)
  std::string array;          ///< array of the killed transfer
  std::string direction;      ///< direction of the killed transfer
  int use_stmt = 0;           ///< block-relative statement index of the use
  int use_line = 0;           ///< source line of the use statement
  bool inter_block = false;   ///< killed by the inter-block dataflow pass
  int covering_block = -1;    ///< block index of the covering transfer
  int covering_transfer = -1; ///< transfer index within the covering block
};

/// Pass 3 (combination): one record per merge event — a transfer joining an
/// already-open group. Groups that never absorb a second member produce no
/// record (nothing was combined).
struct CCMerge {
  BlockRef where;
  int group = -1;                ///< index into the block's groups
  std::string heuristic;         ///< combine heuristic in force
  std::string array;             ///< the member that joined
  int use_stmt = 0;              ///< block-relative index of its use
  int use_line = 0;              ///< source line of its use
  long long est_elems = 0;       ///< joining member's per-proc slice estimate
  long long group_est_elems = 0; ///< group total estimate after the merge
  int members_after = 0;         ///< member count after the merge
};

/// Pass 4 (placement): one record per communication. `sr_hoist` is the
/// paper's pipelining distance — how many statements the SR moved up from
/// its unpipelined position (the first use, where DN stays).
struct PLPlacement {
  BlockRef where;
  int group = -1;          ///< index into the block's groups
  std::string direction;
  int earliest_send = 0;   ///< feasible interval lower bound (from generation)
  int first_use = 0;       ///< feasible interval upper bound
  int sr_pos = 0;
  int dn_pos = 0;
  int sv_pos = 0;
  int sr_hoist = 0;        ///< first_use - sr_pos (0 when not pipelined)
  bool pipelined = false;
};

/// The per-plan decision log. Cleared and refilled by one
/// `plan_communication` call when attached via OptOptions::pass_log.
class PassLog {
 public:
  std::vector<GenRecord> generated;
  std::vector<RRDecision> rr;
  std::vector<CCMerge> cc;
  std::vector<PLPlacement> pl;

  void clear();

  /// Re-points each rr decision at a live coverer by following kill chains:
  /// the inter-block pass can kill a transfer that an earlier intra-block
  /// decision named as its coverer. Called once at the end of planning.
  void resolve_rr_coverers();

  /// Aggregates for summaries: total SR hoist distance over all placements.
  [[nodiscard]] long long total_sr_hoist() const;

  /// Human-readable explanation, one line per decision (comm_explorer
  /// --explain).
  [[nodiscard]] std::string to_string() const;

  /// Machine-readable form for run reports. At most `max_per_pass` records
  /// per pass are emitted (negative = no cap); a "truncated" flag records
  /// whether any were dropped.
  [[nodiscard]] json::Value to_json(int max_per_pass = -1) const;
};

}  // namespace zc::report
