#include "src/report/passlog.h"

#include <map>
#include <utility>

namespace zc::report {

std::string BlockRef::to_string() const {
  std::string s = "block " + std::to_string(block) + " @ " + proc;
  if (first_line > 0) s += ":" + std::to_string(first_line);
  return s;
}

void PassLog::clear() {
  generated.clear();
  rr.clear();
  cc.clear();
  pl.clear();
}

void PassLog::resolve_rr_coverers() {
  std::map<std::pair<int, int>, const RRDecision*> killed;
  for (const RRDecision& d : rr) killed[{d.where.block, d.transfer}] = &d;
  for (RRDecision& d : rr) {
    // Coverage chains always point strictly earlier in flow order, so this
    // terminates; the root of the chain is a transfer no decision killed.
    auto key = std::make_pair(d.covering_block, d.covering_transfer);
    for (auto it = killed.find(key); it != killed.end(); it = killed.find(key)) {
      key = {it->second->covering_block, it->second->covering_transfer};
    }
    d.covering_block = key.first;
    d.covering_transfer = key.second;
  }
}

long long PassLog::total_sr_hoist() const {
  long long total = 0;
  for (const PLPlacement& p : pl) total += p.sr_hoist;
  return total;
}

std::string PassLog::to_string() const {
  std::string out;
  long long transfers = 0;
  for (const GenRecord& g : generated) transfers += g.transfers;
  out += "generate: " + std::to_string(transfers) + " transfers in " +
         std::to_string(generated.size()) + " blocks\n";

  out += "rr: " + std::to_string(rr.size()) + " transfers removed\n";
  for (const RRDecision& d : rr) {
    out += "  [" + d.where.to_string() + "] " + d.array + "@" + d.direction + " at stmt " +
           std::to_string(d.use_stmt);
    if (d.use_line > 0) out += " (line " + std::to_string(d.use_line) + ")";
    out += " covered by transfer #" + std::to_string(d.covering_transfer) + " of block " +
           std::to_string(d.covering_block);
    out += d.inter_block ? " -- inter-block\n" : "\n";
  }

  out += "cc: " + std::to_string(cc.size()) + " merges\n";
  for (const CCMerge& m : cc) {
    out += "  [" + m.where.to_string() + "] " + m.array + " at stmt " +
           std::to_string(m.use_stmt);
    if (m.use_line > 0) out += " (line " + std::to_string(m.use_line) + ")";
    out += " joined group " + std::to_string(m.group) + " under " + m.heuristic + ": " +
           std::to_string(m.members_after) + " members, ~" +
           std::to_string(m.group_est_elems) + " elems/proc\n";
  }

  out += "pl: " + std::to_string(pl.size()) + " placements, total SR hoist " +
         std::to_string(total_sr_hoist()) + " stmts\n";
  for (const PLPlacement& p : pl) {
    out += "  [" + p.where.to_string() + "] group " + std::to_string(p.group) + " dir " +
           p.direction + ": SR at " + std::to_string(p.sr_pos) + ", DN at " +
           std::to_string(p.dn_pos) + ", hoist " + std::to_string(p.sr_hoist) +
           " (feasible [" + std::to_string(p.earliest_send) + ", " +
           std::to_string(p.first_use) + "])\n";
  }
  return out;
}

namespace {

json::Value ref_json(const BlockRef& ref) {
  json::Value v = json::Value::make_object();
  v["block"] = json::Value::make_int(ref.block);
  v["proc"] = json::Value::make_str(ref.proc);
  v["first_line"] = json::Value::make_int(ref.first_line);
  return v;
}

/// How many of `n` records to emit under the cap (negative cap = all).
std::size_t capped(std::size_t n, int max_per_pass) {
  if (max_per_pass < 0) return n;
  return std::min(n, static_cast<std::size_t>(max_per_pass));
}

}  // namespace

json::Value PassLog::to_json(int max_per_pass) const {
  using json::Value;
  Value doc = Value::make_object();

  long long transfers = 0;
  for (const GenRecord& g : generated) transfers += g.transfers;
  Value summary = Value::make_object();
  summary["blocks"] = Value::make_int(static_cast<long long>(generated.size()));
  summary["transfers_generated"] = Value::make_int(transfers);
  summary["rr_removed"] = Value::make_int(static_cast<long long>(rr.size()));
  summary["cc_merges"] = Value::make_int(static_cast<long long>(cc.size()));
  summary["pl_placements"] = Value::make_int(static_cast<long long>(pl.size()));
  summary["total_sr_hoist"] = Value::make_int(total_sr_hoist());
  doc["summary"] = std::move(summary);

  Value gen = Value::make_array();
  for (std::size_t i = 0; i < capped(generated.size(), max_per_pass); ++i) {
    const GenRecord& g = generated[i];
    Value v = ref_json(g.where);
    v["stmts"] = Value::make_int(g.stmts);
    v["transfers"] = Value::make_int(g.transfers);
    gen.push_back(std::move(v));
  }
  doc["generate"] = std::move(gen);

  Value rrs = Value::make_array();
  for (std::size_t i = 0; i < capped(rr.size(), max_per_pass); ++i) {
    const RRDecision& d = rr[i];
    Value v = Value::make_object();
    v["where"] = ref_json(d.where);
    v["transfer"] = Value::make_int(d.transfer);
    v["array"] = Value::make_str(d.array);
    v["direction"] = Value::make_str(d.direction);
    v["use_stmt"] = Value::make_int(d.use_stmt);
    v["use_line"] = Value::make_int(d.use_line);
    v["inter_block"] = Value::make_bool(d.inter_block);
    v["covering_block"] = Value::make_int(d.covering_block);
    v["covering_transfer"] = Value::make_int(d.covering_transfer);
    rrs.push_back(std::move(v));
  }
  doc["rr"] = std::move(rrs);

  Value ccs = Value::make_array();
  for (std::size_t i = 0; i < capped(cc.size(), max_per_pass); ++i) {
    const CCMerge& m = cc[i];
    Value v = Value::make_object();
    v["where"] = ref_json(m.where);
    v["group"] = Value::make_int(m.group);
    v["heuristic"] = Value::make_str(m.heuristic);
    v["array"] = Value::make_str(m.array);
    v["use_stmt"] = Value::make_int(m.use_stmt);
    v["use_line"] = Value::make_int(m.use_line);
    v["est_elems"] = Value::make_int(m.est_elems);
    v["group_est_elems"] = Value::make_int(m.group_est_elems);
    v["members_after"] = Value::make_int(m.members_after);
    ccs.push_back(std::move(v));
  }
  doc["cc"] = std::move(ccs);

  Value pls = Value::make_array();
  for (std::size_t i = 0; i < capped(pl.size(), max_per_pass); ++i) {
    const PLPlacement& p = pl[i];
    Value v = Value::make_object();
    v["where"] = ref_json(p.where);
    v["group"] = Value::make_int(p.group);
    v["direction"] = Value::make_str(p.direction);
    v["earliest_send"] = Value::make_int(p.earliest_send);
    v["first_use"] = Value::make_int(p.first_use);
    v["sr_pos"] = Value::make_int(p.sr_pos);
    v["dn_pos"] = Value::make_int(p.dn_pos);
    v["sv_pos"] = Value::make_int(p.sv_pos);
    v["sr_hoist"] = Value::make_int(p.sr_hoist);
    v["pipelined"] = Value::make_bool(p.pipelined);
    pls.push_back(std::move(v));
  }
  doc["pl"] = std::move(pls);

  const bool truncated =
      max_per_pass >= 0 &&
      (generated.size() > static_cast<std::size_t>(max_per_pass) ||
       rr.size() > static_cast<std::size_t>(max_per_pass) ||
       cc.size() > static_cast<std::size_t>(max_per_pass) ||
       pl.size() > static_cast<std::size_t>(max_per_pass));
  doc["truncated"] = Value::make_bool(truncated);
  return doc;
}

}  // namespace zc::report
