// Compiled ZIR: the lowering pass that flattens a (program, comm plan) pair
// into a direct-threaded bytecode, plus the compiled-expression programs the
// event-driven engine core executes (see src/sim/engine_event.cpp).
//
// The lockstep interpreter walks the statement tree per executed statement:
// map lookups to find the block plan, recursive expression evaluation with a
// heap-allocated Value per node, and O(procs) geometry scans per
// communication. Lowering hoists all of that to compile time:
//
//   * control flow (loops, branches, calls, comm insertion points) becomes
//     a flat instruction array with jump targets — calls are inlined
//     (validation guarantees no recursion), block plans are pre-resolved;
//   * expressions become postfix stack programs over pooled buffers —
//     no per-node allocation, operands pre-bound to array / scalar slots;
//   * statement cost metadata (flops, arrays touched) and loop-invariant
//     ("static") region boxes are evaluated once;
//   * communication geometry — the point-to-point messages a CommGroup
//     decomposes into — is cached per evaluated member-region key, with
//     transport channels pre-resolved per message.
//
// Everything here preserves the lockstep engine's observable behaviour
// bit-for-bit: the same arithmetic in the same order per element, the same
// transport/recorder/timeline call sequence, the same error messages.
// DESIGN.md §15 states the argument; tests/engine_event_test.cpp pins it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/comm/plan.h"
#include "src/machine/model.h"
#include "src/runtime/darray.h"
#include "src/runtime/eval.h"
#include "src/runtime/layout.h"
#include "src/sim/transport.h"
#include "src/zir/program.h"

namespace zc::sim {

// ---------------------------------------------------------------------------
// Compiled expressions: postfix programs over a scalar stack and a bank of
// vector buffers (one per stack depth, reused across evaluations).

struct ExprStep {
  enum class Op : std::uint8_t {
    kConstS,     ///< push literal on the scalar stack
    kScalarS,    ///< push scalars[a]
    kLoopVarS,   ///< push loop value a (must be bound)
    kConfigS,    ///< push config value a
    kBinSS,      ///< scalar ⊗ scalar
    kUnS,        ///< scalar unary
    kLoadArray,  ///< push vector: read_box(box) of array a
    kLoadShift,  ///< push vector: read_box(box @ direction b) of array a
    kLoadIndex,  ///< push vector: global index in (1-based) dimension a
    kBinVV,      ///< vector ⊗ vector, in place into the left operand
    kBinVS,      ///< vector ⊗ scalar
    kBinSV,      ///< scalar ⊗ vector
    kUnV,        ///< vector unary, in place
  };
  Op op = Op::kConstS;
  zir::BinOp bin_op = zir::BinOp::kAdd;
  zir::UnOp un_op = zir::UnOp::kNeg;
  std::int32_t a = 0;  ///< array / scalar / config / loop-var / dimension
  std::int32_t b = 0;  ///< direction index (kLoadShift)
  double value = 0.0;  ///< kConstS literal
};

struct ExprProg {
  std::vector<ExprStep> steps;
  bool is_vec = false;  ///< result kind; scalar results splat over the box
  int max_vdepth = 0;   ///< vector-stack high-water mark
};

/// Reusable evaluation scratch shared by every ExprProg of a run.
struct ExprScratch {
  std::vector<std::vector<double>> vbufs;  // indexed by vector-stack depth
  std::vector<double> sstack;
};

/// Compiles a reduction-free value expression. Throws on Reduce nodes (the
/// engine compiles reduce operands individually).
ExprProg compile_expr(const zir::Program& program, zir::ExprId id);

/// Evaluates `prog` over `box` for one processor's state. Returns the
/// row-major result (box.count() elements) as a reference into `scratch`,
/// valid until the next call. Bit-identical to Evaluator::eval_vector on
/// the source expression, including the out-of-bounds shift error.
const std::vector<double>& eval_expr_prog(const ExprProg& prog, const zir::Program& program,
                                          const std::vector<rt::LocalArray>& arrays,
                                          const std::vector<double>& scalars,
                                          const zir::IntEnv& env, const rt::Box& box,
                                          ExprScratch& scratch);

// ---------------------------------------------------------------------------
// Instruction stream.

struct Inst {
  enum class Op : std::uint8_t {
    kAssign,   ///< a = index into CompiledSim::assigns
    kScalar,   ///< a = index into CompiledSim::scalar_stmts
    kReduce,   ///< a = index into CompiledSim::reduces
    kCommDR,   ///< a = index into CompiledSim::groups (likewise below)
    kCommSR,
    kCommDN,
    kCommSV,
    kForInit,  ///< a = loop index; b = pc past the loop (empty ranges)
    kForNext,  ///< a = loop index; b = pc of the loop body
    kIf,       ///< a = if index; b = pc of the else branch
    kJump,     ///< b = target pc
    kHalt,
  };
  Op op = Op::kHalt;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

// ---------------------------------------------------------------------------
// Side tables. `stmt` pointers reference the program's arena (stable).
// Mutable fields are per-run execution caches (the engine is single-use).

struct CompiledAssign {
  const zir::Stmt* stmt = nullptr;
  std::int32_t lhs_array = 0;
  ExprProg rhs;
  /// flops·flop_time + arrays_touched·elem_mem_time, precomputed with the
  /// exact expression shape of Engine::stmt_cost.
  double per_elem_cost = 0.0;
  bool region_static = false;  ///< no loop variables in the region bounds
  rt::Box static_box;          ///< pre-evaluated when region_static

  /// Lazily-built active-processor cache for static regions: the processors
  /// whose owned block intersects the region, ascending, with local boxes
  /// and full statement cost precomputed.
  struct Active {
    int proc = 0;
    rt::Box local;
    double cost = 0.0;
  };
  bool actives_ready = false;
  std::vector<Active> actives;
};

struct CompiledScalarStmt {
  const zir::Stmt* stmt = nullptr;  ///< non-reduce scalar assignment
};

struct CompiledReduce {
  const zir::Stmt* stmt = nullptr;
  std::vector<zir::ReduceOp> ops;   ///< DFS order (collect_reduce_exprs)
  std::vector<ExprProg> operands;   ///< one per reduce node, same order
  double per_elem_cost = 0.0;
  bool region_static = false;
  rt::Box static_box;
};

struct CompiledLoop {
  const zir::Stmt* stmt = nullptr;  ///< kFor: bounds, step, loop var
};

struct CompiledIf {
  const zir::Stmt* stmt = nullptr;  ///< kIf: condition
};

/// The point-to-point messages one CommGroup execution decomposes into under
/// fixed member-region boxes, with transport channels pre-resolved. Cached:
/// identical member boxes imply identical geometry (the build depends only
/// on the boxes, the fixed distribution, and the fixed declared regions).
struct CommGeometry {
  struct Part {
    std::int32_t array = 0;
    rt::Box box;
  };
  struct Msg {
    int src = 0;
    int dst = 0;
    long long bytes = 0;
    std::vector<Part> parts;
    Transport::ChannelHandle channel;
    /// SR-captured payload, cleared at DN (retains capacity — the cached
    /// geometry doubles as the allocation pool the lockstep engine keeps
    /// per GroupExec).
    std::vector<double> payload;
  };
  std::vector<Msg> msgs;
  std::vector<int> participants;  ///< procs appearing as src or dst, ascending
};

struct CompiledGroup {
  const comm::CommGroup* group = nullptr;
  struct MemberSpec {
    std::int32_t array = 0;
    const zir::RegionSpec* region = nullptr;
    bool is_static = false;
    rt::Box static_box;  ///< pre-evaluated when is_static
  };
  std::vector<MemberSpec> members;
  bool all_static = true;

  // Geometry caches + the at-most-one outstanding execution (DR..SV).
  bool static_ready = false;
  CommGeometry static_geom;
  std::map<std::vector<long long>, CommGeometry> dynamic_geoms;
  CommGeometry* outstanding = nullptr;
};

/// The compiled form of (program, plan) for one run.
struct CompiledSim {
  std::vector<Inst> code;
  std::vector<CompiledAssign> assigns;
  std::vector<CompiledScalarStmt> scalar_stmts;
  std::vector<CompiledReduce> reduces;
  std::vector<CompiledLoop> loops;
  std::vector<CompiledIf> ifs;
  std::vector<CompiledGroup> groups;
};

// ---------------------------------------------------------------------------
// Event-core runtime state.

/// The event-driven engine core's mutable run state: the compiled program
/// plus the deferred clock-bump log that makes uniform all-processor clock
/// advances O(1).
///
/// Scalar statements, branch evaluations, and loop bookkeeping advance every
/// processor's clock by the same amount. The lockstep core pays O(procs) per
/// such statement; the event core appends the amount to `bump_log` and
/// replays a processor's pending entries only when that clock is next
/// observed (ev_touch). Replay is strictly sequential per processor — never
/// coalesced — because float addition is not associative: (c+a)+b generally
/// differs from c+(a+b) in the last bit, and the contract is bit-identity
/// with lockstep.
///
/// Pristine memoization: a processor untouched since the last barrier
/// (cursor 0, clock bit-equal to `pristine_base`) would replay exactly the
/// shared prefix every other pristine processor replays. `pristine_value`
/// caches that rolling sum (extended incrementally through `pristine_len`),
/// so materializing P idle processors at a barrier costs O(P + log entries)
/// instead of O(P · log entries).
struct EventState {
  CompiledSim sim;
  ExprScratch scratch;

  // Deferred uniform clock bumps.
  std::vector<double> bump_log;
  std::vector<std::size_t> bump_cursor;  ///< per proc: log entries replayed
  double pristine_base = 0.0;   ///< clock value of an untouched processor
  double pristine_value = 0.0;  ///< pristine_base + bump_log[0..pristine_len)
  std::size_t pristine_len = 0;

  /// Runtime frame of an active counted loop (kForInit..kForNext).
  struct ForFrame {
    std::int32_t loop = 0;  ///< index into CompiledSim::loops
    long long i = 0;
    long long hi = 0;
    long long step = 1;
    long long old_value = 0;  ///< saved binding of the loop variable
    bool was_bound = false;
  };
  std::vector<ForFrame> for_stack;

  // Reusable scratch (fully rewritten before each use).
  std::vector<double> reduce_global;
  std::vector<rt::Box> member_boxes;
  std::vector<long long> geom_key;
};

/// Lowers the entry procedure (calls inlined, block plans pre-resolved,
/// comm call slots expanded in DR/SR/DN/SV order at each insertion point).
/// `env` carries the run's config values, fixing every loop-invariant
/// region at compile time; `machine` prices the per-statement cost model.
CompiledSim compile_sim(const zir::Program& program, const comm::CommPlan& plan,
                        const zir::IntEnv& env, const machine::MachineModel& machine);

}  // namespace zc::sim
