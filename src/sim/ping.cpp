#include "src/sim/ping.h"

#include <algorithm>

#include "src/sim/transport.h"
#include "src/support/check.h"

namespace zc::sim {

long long PingResult::knee_doubles() const {
  ZC_ASSERT(!points.empty());
  const double floor = points.front().exposed;
  for (const PingPoint& pt : points) {
    if (pt.exposed >= 2.0 * floor) return pt.doubles;
  }
  return points.back().doubles;
}

PingResult run_ping(const machine::MachineModel& machine, ironman::CommLibrary library,
                    const std::vector<long long>& sizes, int reps,
                    trace::Recorder* recorder) {
  PingResult result;
  result.machine = machine.kind;
  result.library = library;

  for (const long long doubles : sizes) {
    const long long bytes = doubles * static_cast<long long>(sizeof(double));
    Transport tx(machine, library);
    tx.set_recorder(recorder);
    // A dedicated two-node partition (paper §3.1). clocks[0] sends to
    // clocks[1] on channel 0.
    std::vector<double> clocks(2, 0.0);
    // Busy work long enough to hide the transmission: it must cover the
    // peer's CPU-side costs plus the wire time of this size.
    const double busy = tx.exposed_overhead(bytes) + tx.wire_time(bytes) + 25e-6;

    auto busy_loop = [&] {
      clocks[0] += busy;
      clocks[1] += busy;
    };

    double exposed_total = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const double start0 = clocks[0];
      const double start1 = clocks[1];
      busy_loop();
      if (tx.dr_is_global_synch()) {
        tx.global_synch(clocks);
        tx.post_readiness(0, 0, 1, clocks[1]);
      } else {
        tx.dr(0, 0, 1, bytes, clocks[1]);
      }
      busy_loop();
      tx.sr(0, 0, 1, bytes, clocks[0]);
      busy_loop();
      tx.dn(0, 0, 1, bytes, clocks[1]);
      busy_loop();
      tx.sv(0, 0, 1, bytes, clocks[0]);

      // The paper subtracts the busy-loop time; the remainder on each
      // endpoint is that endpoint's exposed software overhead. Clocks are
      // re-aligned between repetitions (outside the measurement) so
      // endpoint cost asymmetry cannot accumulate into artificial waits.
      exposed_total += (clocks[0] - start0 - 4.0 * busy) + (clocks[1] - start1 - 4.0 * busy);
      clocks[0] = clocks[1] = std::max(clocks[0], clocks[1]);
    }
    result.points.push_back({doubles, exposed_total / reps});
  }
  return result;
}

std::vector<long long> default_ping_sizes() {
  std::vector<long long> sizes;
  for (long long s = 1; s <= 4096; s *= 2) sizes.push_back(s);
  return sizes;
}

}  // namespace zc::sim
