// The paper's §3.2 synthetic benchmark: one node sends a message to another
// 10000 times; between any of the four communication parts a busy loop runs,
// long enough to hide the transmission time, and its cost is subtracted.
// What remains is the *exposed* (software) communication overhead per
// message — the curves of Figure 6.
#pragma once

#include <vector>

#include "src/ironman/ironman.h"
#include "src/machine/model.h"
#include "src/trace/recorder.h"

namespace zc::sim {

struct PingPoint {
  long long doubles = 0;  ///< message size in doubles (the paper's x axis)
  double exposed = 0.0;   ///< exposed overhead per message, seconds (both
                          ///< endpoints combined)
};

struct PingResult {
  machine::MachineKind machine;
  ironman::CommLibrary library;
  std::vector<PingPoint> points;

  /// The knee: the first size at which doubling the message no longer
  /// leaves the per-message overhead overhead-dominated — where the
  /// exposed cost has grown to at least twice its small-message floor.
  [[nodiscard]] long long knee_doubles() const;
};

/// Runs the two-node ping for each size in `sizes` (in doubles). An
/// optional recorder (covering >= 2 processors) traces every exchange;
/// sizes accumulate into the same recorder.
PingResult run_ping(const machine::MachineModel& machine, ironman::CommLibrary library,
                    const std::vector<long long>& sizes, int reps = 10000,
                    trace::Recorder* recorder = nullptr);

/// The paper's size sweep: powers of two from 1 to 4096 doubles.
std::vector<long long> default_ping_sizes();

}  // namespace zc::sim
