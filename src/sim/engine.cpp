#include "src/sim/engine.h"

#include <algorithm>

#include "src/prof/prof.h"
#include "src/sim/bytecode.h"
#include "src/support/check.h"
#include "src/support/diag.h"
#include "src/support/metrics.h"
#include "src/tseries/tseries.h"

namespace zc::sim {

namespace {

zir::IntEnv make_env(const zir::Program& p, const std::map<std::string, long long>& overrides) {
  zir::IntEnv env = p.default_env();
  for (const auto& [name, value] : overrides) {
    const zir::ConfigId id = p.find_config(name);
    if (!id.valid()) throw Error("config override for unknown config '" + name + "'");
    env.config_values[id.index()] = value;
  }
  return env;
}

rt::Mesh make_mesh(const zir::Program& p, int procs) {
  if (procs < 1) throw Error("processor count must be >= 1");
  if (p.rank() <= 1) return rt::Mesh{procs, 1};
  return rt::Mesh::near_square(procs);
}

}  // namespace

/// One in-progress execution of a CommGroup: the point-to-point messages it
/// decomposes into under the current loop bindings, with captured payloads.
///
/// Pooled (Engine::acquire_exec / recycle_exec): only the first `live`
/// entries of `msgs` are meaningful; slots past that are dormant recycled
/// records whose parts/payload vectors keep their capacity, so steady-state
/// execution builds messages without allocating.
struct Engine::GroupExec {
  struct Part {
    zir::ArrayId array;
    rt::Box box;
  };
  struct Msg {
    int src = 0;
    int dst = 0;
    long long bytes = 0;
    std::vector<Part> parts;
    std::vector<double> payload;
  };
  std::vector<Msg> msgs;
  std::size_t live = 0;

  /// Claims the next message slot (recycled capacity when available).
  Msg& append(int src, int dst) {
    if (live == msgs.size()) msgs.emplace_back();
    Msg& msg = msgs[live++];
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 0;
    msg.parts.clear();
    msg.payload.clear();
    return msg;
  }
};

Engine::~Engine() = default;

Engine::Engine(const zir::Program& program, const comm::CommPlan& plan, RunConfig config)
    : p_(program),
      plan_(plan),
      cfg_(std::move(config)),
      mesh_(make_mesh(program, cfg_.procs)),
      env_(make_env(program, cfg_.config_overrides)),
      dist_(program, env_, mesh_),
      transport_(cfg_.machine, cfg_.library),
      evaluator_(program) {
  if (cfg_.recorder != nullptr) {
    ZC_ASSERT(cfg_.recorder->procs() >= mesh_.procs());
    transport_.set_recorder(cfg_.recorder);
    // Register human-readable labels for every group's transfer id up front
    // so exporters / analysis can name spans without the plan in hand.
    for (const comm::BlockPlan& block : plan_.blocks) {
      for (const comm::CommGroup& group : block.groups) {
        std::string label;
        for (const comm::Member& m : group.members) {
          if (!label.empty()) label += "+";
          label += p_.array(m.array).name;
        }
        label += "@";
        label += p_.direction(group.direction).name;
        cfg_.recorder->set_transfer_label(group.transfer_id, std::move(label));
      }
    }
  }
  if (cfg_.timeline != nullptr) {
    ZC_ASSERT(cfg_.timeline->procs() >= mesh_.procs());
    transport_.set_timeline(cfg_.timeline);
  }
  ZC_PROF_SPAN("sim/alloc");
  const int procs = mesh_.procs();
  clock_.assign(procs, 0.0);
  counters_.assign(procs, CommCounters{});
  scalars_.assign(p_.scalar_count(), 0.0);

  declared_.resize(p_.array_count());
  const auto fluff = rt::fluff_widths(p_);
  arrays_.resize(procs);
  for (int proc = 0; proc < procs; ++proc) arrays_[proc].resize(p_.array_count());
  for (std::size_t a = 0; a < p_.array_count(); ++a) {
    const zir::ArrayDecl& decl = p_.array(zir::ArrayId(static_cast<int32_t>(a)));
    declared_[a] = rt::eval_region(p_.region(decl.region).spec, env_);
    for (int proc = 0; proc < procs; ++proc) {
      rt::Box owned = dist_.owned(proc);
      // Clamp ownership to the array's declared region; dim 2 (if any) of
      // the declared region is whole on every processor.
      rt::Box my = owned;
      my.rank = declared_[a].rank;
      for (int d = 0; d < my.rank; ++d) {
        if (d < 2) {
          my.lo[d] = std::max(owned.lo[d], declared_[a].lo[d]);
          my.hi[d] = std::min(owned.hi[d], declared_[a].hi[d]);
        } else {
          my.lo[d] = declared_[a].lo[d];
          my.hi[d] = declared_[a].hi[d];
        }
      }
      arrays_[proc][a] = rt::LocalArray(my, declared_[a], fluff);
    }
  }
  if (prof::enabled()) {
    long long array_bytes = 0;
    for (const std::vector<rt::LocalArray>& per_proc : arrays_) {
      for (const rt::LocalArray& la : per_proc) {
        array_bytes += static_cast<long long>(la.allocation_size() * sizeof(double));
      }
    }
    prof::add_bytes(array_bytes);
  }
}

rt::EvalContext Engine::context_for(int proc) const {
  rt::EvalContext ctx;
  ctx.program = &p_;
  ctx.arrays = &arrays_[proc];
  ctx.scalars = &scalars_;
  ctx.env = &env_;
  return ctx;
}

double Engine::stmt_cost(const zir::Stmt& stmt, long long elems) const {
  auto it = stmt_cost_cache_.find(stmt.rhs.value);
  if (it == stmt_cost_cache_.end()) {
    StmtCost c;
    c.flops = zir::count_flops(p_, stmt.rhs);
    c.arrays_touched = static_cast<int>(zir::collect_arrays_read(p_, stmt.rhs).size()) + 1;
    it = stmt_cost_cache_.emplace(stmt.rhs.value, c).first;
  }
  const StmtCost& c = it->second;
  return cfg_.machine.stmt_overhead +
         static_cast<double>(elems) *
             (c.flops * cfg_.machine.flop_time + c.arrays_touched * cfg_.machine.elem_mem_time);
}

void Engine::allreduce_clocks(double extra_per_stage) {
  const int stages = machine::barrier_stages(mesh_.procs());
  double t = 0.0;
  for (double c : clock_) t = std::max(t, c);
  t += stages * (extra_per_stage + cfg_.machine.wire_latency);
  if (cfg_.recorder != nullptr) {
    for (std::size_t p = 0; p < clock_.size(); ++p) {
      cfg_.recorder->record_barrier(static_cast<int>(p), clock_[p], t);
    }
  }
  if (cfg_.timeline != nullptr) {
    for (std::size_t p = 0; p < clock_.size(); ++p) {
      cfg_.timeline->add_barrier(static_cast<int>(p), clock_[p], t);
    }
  }
  std::fill(clock_.begin(), clock_.end(), t);
}

RunResult Engine::run() {
  ZC_PROF_SPAN("sim/run");
  ZC_ASSERT(!ran_);
  ran_ = true;

  if (cfg_.engine == EngineKind::kLockstep) {
    run_lockstep();
  } else {
    run_event();
  }
  return finish();
}

void Engine::run_lockstep() {
  exec_body(p_.proc(p_.entry()).body);
  ZC_ASSERT(outstanding_.empty());
}

RunResult Engine::finish() {
  RunResult r;
  r.mesh = mesh_;
  r.center_proc = mesh_.center_rank();
  r.elapsed_seconds = *std::max_element(clock_.begin(), clock_.end());
  r.per_proc = counters_;
  r.dynamic_count = dynamic_comm_count_;
  for (const CommCounters& c : counters_) {
    r.total_messages += c.messages_sent;
    r.total_bytes += c.bytes_sent;
  }
  r.reduction_count = reduction_count_;
  for (std::size_t s = 0; s < p_.scalar_count(); ++s) {
    r.scalars[p_.scalar(zir::ScalarId(static_cast<int32_t>(s))).name] = scalars_[s];
  }
  // Checksums: sum over each array's declared region (owned parts only, so
  // every element is counted exactly once).
  std::vector<double> buf;
  for (std::size_t a = 0; a < p_.array_count(); ++a) {
    double sum = 0.0;
    for (int proc = 0; proc < mesh_.procs(); ++proc) {
      const rt::LocalArray& la = arrays_[proc][a];
      if (la.owned().empty()) continue;
      buf.resize(static_cast<std::size_t>(la.owned().count()));
      la.read_box(la.owned(), buf.data());
      for (double x : buf) sum += x;
    }
    r.checksums[p_.array(zir::ArrayId(static_cast<int32_t>(a))).name] = sum;
  }

  // Published once per run (never per message) — see src/support/metrics.h.
  auto& reg = metrics::Registry::current();
  reg.count("sim.runs");
  reg.count("sim.communications", r.dynamic_count);
  reg.count("sim.messages", r.total_messages);
  reg.count("sim.bytes", r.total_bytes);
  reg.count("sim.reductions", r.reduction_count);
  reg.gauge("sim.last_elapsed_seconds", r.elapsed_seconds);
  reg.gauge("sim.last_procs", static_cast<double>(mesh_.procs()));
  return r;
}

void Engine::exec_body(const std::vector<zir::StmtId>& body) {
  std::size_t i = 0;
  while (i < body.size()) {
    const zir::Stmt& s = p_.stmt(body[i]);
    if (s.kind == zir::Stmt::Kind::kArrayAssign || s.kind == zir::Stmt::Kind::kScalarAssign) {
      const comm::BlockPlan* bp = plan_.find_block(body[i]);
      ZC_ASSERT(bp != nullptr);  // every assign run starts a planned block
      exec_block(*bp);
      i += bp->stmts.size();
      continue;
    }
    exec_stmt(body[i]);
    ++i;
  }
}

void Engine::exec_block(const comm::BlockPlan& block) {
  // Block-level is the finest span here on purpose: a per-statement span
  // pushed bench_prof_overhead's attached cost past the 5% budget.
  ZC_PROF_SPAN("sim/block");
  const int n = static_cast<int>(block.stmts.size());
  for (int pos = 0; pos <= n; ++pos) {
    exec_comm_position(block, pos);
    if (pos < n) exec_stmt(block.stmts[pos]);
  }
}

void Engine::exec_comm_position(const comm::BlockPlan& block, int pos) {
  // Call-slot order at one insertion point: DR then SR (receive-side setup
  // and sends), then DN then SV (completions) — matching the paper's
  // DR/SR/DN/SV listing for co-located calls and deadlock-free for
  // pipelined ones (all sends precede all receives at a point).
  for (const comm::CommGroup& g : block.groups) {
    if (g.dr_pos != pos) continue;
    std::unique_ptr<GroupExec> exec = acquire_exec();
    build_group_exec(block, g, *exec);
    auto [it, inserted] = outstanding_.emplace(g.id, std::move(exec));
    ZC_ASSERT(inserted);  // at most one outstanding execution per group
    comm_dr(g, *it->second);
  }
  for (const comm::CommGroup& g : block.groups) {
    if (g.sr_pos == pos) comm_sr(g, *outstanding_.at(g.id));
  }
  for (const comm::CommGroup& g : block.groups) {
    if (g.dn_pos == pos) comm_dn(g, *outstanding_.at(g.id));
  }
  for (const comm::CommGroup& g : block.groups) {
    if (g.sv_pos != pos) continue;
    auto it = outstanding_.find(g.id);
    ZC_ASSERT(it != outstanding_.end());
    comm_sv(g, *it->second);
    recycle_exec(std::move(it->second));
    outstanding_.erase(it);
  }
}

std::unique_ptr<Engine::GroupExec> Engine::acquire_exec() {
  if (exec_pool_.empty()) return std::make_unique<GroupExec>();
  std::unique_ptr<GroupExec> exec = std::move(exec_pool_.back());
  exec_pool_.pop_back();
  exec->live = 0;
  return exec;
}

void Engine::recycle_exec(std::unique_ptr<GroupExec> exec) {
  exec_pool_.push_back(std::move(exec));
}

void Engine::build_group_exec(const comm::BlockPlan& block, const comm::CommGroup& group,
                              GroupExec& exec) {
  const std::vector<int>& offsets = p_.direction(group.direction).offsets;

  // (src, dst) -> slot in exec.msgs. A linear scan: groups decompose into at
  // most a handful of point-to-point messages, and this avoids the per-call
  // node allocations a map would make in the engine's inner loop.
  const auto slot_for = [&exec](int src, int dst) -> GroupExec::Msg& {
    for (std::size_t i = 0; i < exec.live; ++i) {
      if (exec.msgs[i].src == src && exec.msgs[i].dst == dst) return exec.msgs[i];
    }
    return exec.append(src, dst);
  };

  for (const comm::Member& m : group.members) {
    const zir::Stmt& use = p_.stmt(block.stmts[m.use_stmt]);
    ZC_ASSERT(use.region.has_value());
    const rt::Box region = rt::eval_region(*use.region, env_);
    const rt::Box& declared = declared_[m.array.index()];
    if (region.empty()) continue;

    for (int dst = 0; dst < mesh_.procs(); ++dst) {
      const rt::Box& owned_dst = arrays_[dst][m.array.index()].owned();
      if (owned_dst.empty()) continue;
      const rt::Box use_local = region.intersect(owned_dst);
      if (use_local.empty()) continue;
      const rt::Box needed = use_local.shifted(offsets).intersect(declared);
      for (const rt::Box& piece : needed.subtract(owned_dst)) {
        for (int src : dist_.owners(piece)) {
          if (src == dst) continue;
          const rt::Box slice = piece.intersect(arrays_[src][m.array.index()].owned());
          if (slice.empty()) continue;
          GroupExec::Msg& msg = slot_for(src, dst);
          msg.parts.push_back({m.array, slice});
          msg.bytes += slice.count() * static_cast<long long>(sizeof(double));
        }
      }
    }
  }

  // The paper's dynamic count: the number of communications (IRONMAN call
  // sets) the SPMD program executes. Every processor runs the same calls,
  // so the count is a program property; per-processor counters additionally
  // record which executions actually moved data through each processor.
  ++dynamic_comm_count_;
  participated_.assign(static_cast<std::size_t>(mesh_.procs()), 0);
  for (std::size_t i = 0; i < exec.live; ++i) {
    participated_[static_cast<std::size_t>(exec.msgs[i].src)] = 1;
    participated_[static_cast<std::size_t>(exec.msgs[i].dst)] = 1;
  }
  for (int proc = 0; proc < mesh_.procs(); ++proc) {
    if (participated_[static_cast<std::size_t>(proc)] != 0) ++counters_[proc].communications;
  }
}

void Engine::comm_dr(const comm::CommGroup& group, GroupExec& exec) {
  ZC_PROF_SPAN("sim/comm/dr");
  transport_.set_transfer(group.transfer_id);
  if (transport_.dr_is_global_synch()) {
    // SHMEM prototype: the DR synch is a global barrier executed by every
    // processor, with data to move or not — the heavyweight behaviour the
    // paper blames for TOMCATV's and SP's SHMEM slowdowns.
    transport_.global_synch(clock_);
    for (std::size_t i = 0; i < exec.live; ++i) {
      const GroupExec::Msg& msg = exec.msgs[i];
      transport_.post_readiness(group.id, msg.src, msg.dst, clock_[msg.dst]);
    }
    return;
  }
  for (std::size_t i = 0; i < exec.live; ++i) {
    const GroupExec::Msg& msg = exec.msgs[i];
    transport_.dr(group.id, msg.src, msg.dst, msg.bytes, clock_[msg.dst]);
  }
}

void Engine::comm_sr(const comm::CommGroup& group, GroupExec& exec) {
  ZC_PROF_SPAN("sim/comm/sr");
  transport_.set_transfer(group.transfer_id);
  for (std::size_t i = 0; i < exec.live; ++i) {
    GroupExec::Msg& msg = exec.msgs[i];
    // Capture the payload now: pipelining is only correct if the data at SR
    // equals the data at use, which the optimizer's legality rules
    // guarantee — and the golden tests verify.
    msg.payload.clear();
    msg.payload.reserve(static_cast<std::size_t>(msg.bytes / sizeof(double)));
    for (const GroupExec::Part& part : msg.parts) {
      const std::size_t at = msg.payload.size();
      msg.payload.resize(at + static_cast<std::size_t>(part.box.count()));
      arrays_[msg.src][part.array.index()].read_box(part.box, msg.payload.data() + at);
    }
    transport_.sr(group.id, msg.src, msg.dst, msg.bytes, clock_[msg.src]);
    ++counters_[msg.src].messages_sent;
    counters_[msg.src].bytes_sent += msg.bytes;
  }
}

void Engine::comm_dn(const comm::CommGroup& group, GroupExec& exec) {
  ZC_PROF_SPAN("sim/comm/dn");
  transport_.set_transfer(group.transfer_id);
  for (std::size_t i = 0; i < exec.live; ++i) {
    GroupExec::Msg& msg = exec.msgs[i];
    transport_.dn(group.id, msg.src, msg.dst, msg.bytes, clock_[msg.dst]);
    std::size_t at = 0;
    for (const GroupExec::Part& part : msg.parts) {
      arrays_[msg.dst][part.array.index()].write_box(part.box, msg.payload.data() + at);
      at += static_cast<std::size_t>(part.box.count());
    }
    // Cleared but NOT shrunk: the slot recycles through the exec pool and
    // the retained capacity is exactly what kills the per-event allocation.
    msg.payload.clear();
    ++counters_[msg.dst].messages_received;
    counters_[msg.dst].bytes_received += msg.bytes;
  }
}

void Engine::comm_sv(const comm::CommGroup& group, GroupExec& exec) {
  ZC_PROF_SPAN("sim/comm/sv");
  transport_.set_transfer(group.transfer_id);
  for (std::size_t i = 0; i < exec.live; ++i) {
    const GroupExec::Msg& msg = exec.msgs[i];
    transport_.sv(group.id, msg.src, msg.dst, msg.bytes, clock_[msg.src]);
  }
}

void Engine::exec_stmt(zir::StmtId sid) {
  const zir::Stmt& s = p_.stmt(sid);
  switch (s.kind) {
    case zir::Stmt::Kind::kArrayAssign:
      exec_array_assign(s);
      return;
    case zir::Stmt::Kind::kScalarAssign:
      exec_scalar_assign(s);
      return;
    case zir::Stmt::Kind::kFor: {
      const long long lo = s.lo.eval(env_);
      const long long hi = s.hi.eval(env_);
      const std::size_t v = s.loop_var.index();
      const bool was_bound = env_.loop_bound[v];
      const long long old_value = env_.loop_values[v];
      env_.loop_bound[v] = true;
      for (long long i = lo; s.step > 0 ? i <= hi : i >= hi; i += s.step) {
        env_.loop_values[v] = i;
        for (double& c : clock_) c += cfg_.machine.scalar_stmt_time;  // loop bookkeeping
        exec_body(s.body);
      }
      env_.loop_bound[v] = was_bound;
      env_.loop_values[v] = old_value;
      return;
    }
    case zir::Stmt::Kind::kIf: {
      const rt::EvalContext ctx = context_for(0);
      const double cond = evaluator_.eval_scalar(ctx, s.cond, {});
      for (double& c : clock_) c += cfg_.machine.scalar_stmt_time;
      exec_body(cond != 0.0 ? s.body : s.else_body);
      return;
    }
    case zir::Stmt::Kind::kCall:
      exec_body(p_.proc(s.callee).body);
      return;
  }
}

void Engine::exec_array_assign(const zir::Stmt& stmt) {
  const rt::Box region = rt::eval_region(*stmt.region, env_);
  if (region.empty()) return;
  if (!declared_[stmt.lhs_array.index()].contains(region)) {
    throw Error("statement region " + region.to_string() + " exceeds the declared region of '" +
                p_.array(stmt.lhs_array).name + "'");
  }
  std::vector<double>& buf = eval_buf_;  // member scratch: fully rewritten below
  for (int proc = 0; proc < mesh_.procs(); ++proc) {
    rt::LocalArray& lhs = arrays_[proc][stmt.lhs_array.index()];
    if (lhs.owned().empty()) continue;
    const rt::Box local = region.intersect(lhs.owned());
    if (local.empty()) continue;
    rt::EvalContext ctx = context_for(proc);
    ctx.box = local;
    evaluator_.eval_vector(ctx, stmt.rhs, buf);
    lhs.write_box(local, buf.data());
    const double t0 = clock_[proc];
    clock_[proc] += stmt_cost(stmt, local.count());
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->record_compute(proc, local.count(), t0, clock_[proc]);
    }
    if (cfg_.timeline != nullptr) cfg_.timeline->add_compute(proc, t0, clock_[proc]);
  }
}

void Engine::exec_scalar_assign(const zir::Stmt& stmt) {
  const std::vector<zir::ReduceOp> ops = evaluator_.reduce_ops(stmt.rhs);
  if (ops.empty()) {
    const rt::EvalContext ctx = context_for(0);
    scalars_[stmt.lhs_scalar.index()] = evaluator_.eval_scalar(ctx, stmt.rhs, {});
    for (double& c : clock_) c += cfg_.machine.scalar_stmt_time;
    return;
  }

  ZC_ASSERT(stmt.region.has_value());
  const rt::Box region = rt::eval_region(*stmt.region, env_);
  std::vector<double>& global = reduce_global_;  // member scratch: fully rewritten
  global.assign(ops.size(), 0.0);
  for (std::size_t k = 0; k < ops.size(); ++k) global[k] = rt::reduce_identity(ops[k]);

  std::vector<double>& partials = reduce_partials_;  // member scratch: fully rewritten
  for (int proc = 0; proc < mesh_.procs(); ++proc) {
    // Crop the owned box to the region's rank (a rank-2 reduction in a
    // rank-3 program reduces over dims 0 and 1 only).
    rt::Box owned = dist_.owned(proc);
    owned.rank = region.rank;
    for (int d = dist_.space().rank; d < region.rank; ++d) {
      owned.lo[d] = region.lo[d];
      owned.hi[d] = region.hi[d];
    }
    const rt::Box local = region.intersect(owned);
    rt::EvalContext ctx = context_for(proc);
    ctx.box = local;
    evaluator_.eval_reduce_partials(ctx, stmt.rhs, partials);
    for (std::size_t k = 0; k < ops.size(); ++k) {
      global[k] = rt::reduce_combine(ops[k], global[k], partials[k]);
    }
    if (!local.empty()) {
      const double t0 = clock_[proc];
      clock_[proc] += stmt_cost(stmt, local.count());
      if (cfg_.recorder != nullptr) {
        cfg_.recorder->record_compute(proc, local.count(), t0, clock_[proc]);
      }
      if (cfg_.timeline != nullptr) cfg_.timeline->add_compute(proc, t0, clock_[proc]);
    }
  }

  // Combine across processors: a log-tree allreduce that synchronizes all
  // clocks (reductions are ZPL primitives outside the optimized
  // point-to-point communication; counted separately).
  allreduce_clocks(cfg_.machine.reduce_stage_overhead);
  ++reduction_count_;

  const rt::EvalContext ctx = context_for(0);
  scalars_[stmt.lhs_scalar.index()] = evaluator_.eval_scalar(ctx, stmt.rhs, global);
}

RunResult run_program(const zir::Program& program, const comm::CommPlan& plan,
                      RunConfig config) {
  Engine engine(program, plan, std::move(config));
  return engine.run();
}

}  // namespace zc::sim
