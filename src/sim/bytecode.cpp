#include "src/sim/bytecode.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/diag.h"

namespace zc::sim {

namespace {

class ExprCompiler {
 public:
  explicit ExprCompiler(const zir::Program& program) : p_(program) {}

  ExprProg compile(zir::ExprId id) {
    prog_.is_vec = emit(id);
    return std::move(prog_);
  }

 private:
  /// Emits postfix steps for `id`; returns true when the node is
  /// array-valued. Operand order (left subtree fully before right) matches
  /// the recursive evaluator, so side effects — the out-of-bounds shift
  /// throw — fire at the same point.
  bool emit(zir::ExprId id) {
    const zir::Expr& e = p_.expr(id);
    ExprStep st;
    switch (e.kind) {
      case zir::Expr::Kind::kConst:
        st.op = ExprStep::Op::kConstS;
        st.value = e.const_value;
        prog_.steps.push_back(st);
        return false;
      case zir::Expr::Kind::kScalarRef:
        st.op = ExprStep::Op::kScalarS;
        st.a = e.scalar.index();
        prog_.steps.push_back(st);
        return false;
      case zir::Expr::Kind::kLoopVarRef:
        st.op = ExprStep::Op::kLoopVarS;
        st.a = e.loop_var.index();
        prog_.steps.push_back(st);
        return false;
      case zir::Expr::Kind::kConfigRef:
        st.op = ExprStep::Op::kConfigS;
        st.a = e.config.index();
        prog_.steps.push_back(st);
        return false;
      case zir::Expr::Kind::kArrayRef:
        st.op = ExprStep::Op::kLoadArray;
        st.a = e.array.index();
        prog_.steps.push_back(st);
        push_vec();
        return true;
      case zir::Expr::Kind::kShift:
        st.op = ExprStep::Op::kLoadShift;
        st.a = e.array.index();
        st.b = e.direction.index();
        prog_.steps.push_back(st);
        push_vec();
        return true;
      case zir::Expr::Kind::kIndex:
        st.op = ExprStep::Op::kLoadIndex;
        st.a = e.index_dim;
        prog_.steps.push_back(st);
        push_vec();
        return true;
      case zir::Expr::Kind::kBinary: {
        const bool lv = emit(e.lhs);
        const bool rv = emit(e.rhs);
        st.bin_op = e.bin_op;
        if (lv && rv) {
          st.op = ExprStep::Op::kBinVV;
          --vdepth_;
        } else if (lv) {
          st.op = ExprStep::Op::kBinVS;
        } else if (rv) {
          st.op = ExprStep::Op::kBinSV;
        } else {
          st.op = ExprStep::Op::kBinSS;
        }
        prog_.steps.push_back(st);
        return lv || rv;
      }
      case zir::Expr::Kind::kUnary: {
        const bool v = emit(e.lhs);
        st.op = v ? ExprStep::Op::kUnV : ExprStep::Op::kUnS;
        st.un_op = e.un_op;
        prog_.steps.push_back(st);
        return v;
      }
      case zir::Expr::Kind::kReduce:
        throw Error("internal: reduction compiled in vector context");
    }
    ZC_ASSERT(false);
    return false;
  }

  void push_vec() {
    ++vdepth_;
    prog_.max_vdepth = std::max(prog_.max_vdepth, vdepth_);
  }

  const zir::Program& p_;
  ExprProg prog_;
  int vdepth_ = 0;
};

}  // namespace

ExprProg compile_expr(const zir::Program& program, zir::ExprId id) {
  return ExprCompiler(program).compile(id);
}

const std::vector<double>& eval_expr_prog(const ExprProg& prog, const zir::Program& program,
                                          const std::vector<rt::LocalArray>& arrays,
                                          const std::vector<double>& scalars,
                                          const zir::IntEnv& env, const rt::Box& box,
                                          ExprScratch& scratch) {
  const std::size_t n = static_cast<std::size_t>(box.count());
  auto& vb = scratch.vbufs;
  if (vb.size() < static_cast<std::size_t>(std::max(prog.max_vdepth, 1))) {
    vb.resize(static_cast<std::size_t>(std::max(prog.max_vdepth, 1)));
  }
  auto& ss = scratch.sstack;
  ss.clear();
  int vd = 0;

  for (const ExprStep& st : prog.steps) {
    switch (st.op) {
      case ExprStep::Op::kConstS:
        ss.push_back(st.value);
        break;
      case ExprStep::Op::kScalarS:
        ss.push_back(scalars[static_cast<std::size_t>(st.a)]);
        break;
      case ExprStep::Op::kLoopVarS:
        ZC_ASSERT(env.loop_bound[static_cast<std::size_t>(st.a)]);
        ss.push_back(static_cast<double>(env.loop_values[static_cast<std::size_t>(st.a)]));
        break;
      case ExprStep::Op::kConfigS:
        ss.push_back(static_cast<double>(env.config_values[static_cast<std::size_t>(st.a)]));
        break;
      case ExprStep::Op::kBinSS: {
        const double b = ss.back();
        ss.pop_back();
        ss.back() = rt::apply_bin(st.bin_op, ss.back(), b);
        break;
      }
      case ExprStep::Op::kUnS:
        ss.back() = rt::apply_un(st.un_op, ss.back());
        break;
      case ExprStep::Op::kLoadArray: {
        std::vector<double>& buf = vb[static_cast<std::size_t>(vd++)];
        buf.resize(n);
        const rt::LocalArray& a = arrays[static_cast<std::size_t>(st.a)];
        ZC_ASSERT(a.covers(box));
        a.read_box(box, buf.data());
        break;
      }
      case ExprStep::Op::kLoadShift: {
        std::vector<double>& buf = vb[static_cast<std::size_t>(vd++)];
        buf.resize(n);
        const rt::LocalArray& a = arrays[static_cast<std::size_t>(st.a)];
        const rt::Box src =
            box.shifted(program.direction(zir::DirectionId(st.b)).offsets);
        if (!a.covers(src)) {
          throw Error("shifted read of '" + program.array(zir::ArrayId(st.a)).name +
                      "' outside its declared region (program reads past its border): need " +
                      src.to_string() + ", have " + a.storage_box().to_string());
        }
        a.read_box(src, buf.data());
        break;
      }
      case ExprStep::Op::kLoadIndex: {
        std::vector<double>& buf = vb[static_cast<std::size_t>(vd++)];
        buf.resize(n);
        const int dim = st.a - 1;
        ZC_ASSERT(dim >= 0 && dim < box.rank);
        std::size_t k = 0;
        const rt::Box& b = box;
        const long long j_lo = b.rank >= 2 ? b.lo[1] : 0;
        const long long j_hi = b.rank >= 2 ? b.hi[1] : 0;
        const long long k_lo = b.rank >= 3 ? b.lo[2] : 0;
        const long long k_hi = b.rank >= 3 ? b.hi[2] : 0;
        for (long long i = b.lo[0]; i <= b.hi[0]; ++i) {
          for (long long j = j_lo; j <= j_hi; ++j) {
            for (long long kk = k_lo; kk <= k_hi; ++kk) {
              const long long coord = dim == 0 ? i : dim == 1 ? j : kk;
              buf[k++] = static_cast<double>(coord);
            }
          }
        }
        break;
      }
      case ExprStep::Op::kBinVV: {
        std::vector<double>& l = vb[static_cast<std::size_t>(vd - 2)];
        const std::vector<double>& r = vb[static_cast<std::size_t>(vd - 1)];
        for (std::size_t i = 0; i < n; ++i) l[i] = rt::apply_bin(st.bin_op, l[i], r[i]);
        --vd;
        break;
      }
      case ExprStep::Op::kBinVS: {
        const double b = ss.back();
        ss.pop_back();
        std::vector<double>& l = vb[static_cast<std::size_t>(vd - 1)];
        for (std::size_t i = 0; i < n; ++i) l[i] = rt::apply_bin(st.bin_op, l[i], b);
        break;
      }
      case ExprStep::Op::kBinSV: {
        const double a = ss.back();
        ss.pop_back();
        std::vector<double>& r = vb[static_cast<std::size_t>(vd - 1)];
        for (std::size_t i = 0; i < n; ++i) r[i] = rt::apply_bin(st.bin_op, a, r[i]);
        break;
      }
      case ExprStep::Op::kUnV: {
        std::vector<double>& l = vb[static_cast<std::size_t>(vd - 1)];
        for (std::size_t i = 0; i < n; ++i) l[i] = rt::apply_un(st.un_op, l[i]);
        break;
      }
    }
  }

  if (prog.is_vec) {
    ZC_ASSERT(vd == 1 && ss.empty());
    return vb[0];
  }
  ZC_ASSERT(vd == 0 && ss.size() == 1);
  vb[0].assign(n, ss.back());
  return vb[0];
}

// ---------------------------------------------------------------------------
// Statement lowering.

namespace {

class Lowerer {
 public:
  Lowerer(const zir::Program& program, const comm::CommPlan& plan, const zir::IntEnv& env,
          const machine::MachineModel& machine)
      : p_(program), plan_(plan), env_(env), machine_(machine) {}

  CompiledSim lower() {
    lower_body(p_.proc(p_.entry()).body);
    emit(Inst::Op::kHalt);
    return std::move(sim_);
  }

 private:
  std::int32_t emit(Inst::Op op, std::int32_t a = 0, std::int32_t b = 0) {
    sim_.code.push_back(Inst{op, a, b});
    return static_cast<std::int32_t>(sim_.code.size()) - 1;
  }

  void lower_body(const std::vector<zir::StmtId>& body) {
    std::size_t i = 0;
    while (i < body.size()) {
      const zir::Stmt& s = p_.stmt(body[i]);
      if (s.kind == zir::Stmt::Kind::kArrayAssign || s.kind == zir::Stmt::Kind::kScalarAssign) {
        const comm::BlockPlan* bp = plan_.find_block(body[i]);
        ZC_ASSERT(bp != nullptr);  // every assign run starts a planned block
        lower_block(*bp);
        i += bp->stmts.size();
        continue;
      }
      lower_stmt(body[i]);
      ++i;
    }
  }

  void lower_block(const comm::BlockPlan& block) {
    // One CompiledGroup per (lowering site, group): caches are per site, but
    // group/transfer ids — all the transport and trace see — are the plan's.
    std::vector<std::int32_t> gidx;
    gidx.reserve(block.groups.size());
    for (const comm::CommGroup& g : block.groups) {
      gidx.push_back(lower_group(block, g));
    }
    // Call-slot order at each insertion point matches the lockstep engine's
    // exec_comm_position: DR then SR, then DN then SV, in group order.
    const int n = static_cast<int>(block.stmts.size());
    for (int pos = 0; pos <= n; ++pos) {
      for (std::size_t k = 0; k < block.groups.size(); ++k) {
        if (block.groups[k].dr_pos == pos) emit(Inst::Op::kCommDR, gidx[k]);
      }
      for (std::size_t k = 0; k < block.groups.size(); ++k) {
        if (block.groups[k].sr_pos == pos) emit(Inst::Op::kCommSR, gidx[k]);
      }
      for (std::size_t k = 0; k < block.groups.size(); ++k) {
        if (block.groups[k].dn_pos == pos) emit(Inst::Op::kCommDN, gidx[k]);
      }
      for (std::size_t k = 0; k < block.groups.size(); ++k) {
        if (block.groups[k].sv_pos == pos) emit(Inst::Op::kCommSV, gidx[k]);
      }
      if (pos < n) lower_stmt(block.stmts[pos]);
    }
  }

  std::int32_t lower_group(const comm::BlockPlan& block, const comm::CommGroup& g) {
    CompiledGroup cg;
    cg.group = &g;
    for (const comm::Member& m : g.members) {
      const zir::Stmt& use = p_.stmt(block.stmts[m.use_stmt]);
      ZC_ASSERT(use.region.has_value());
      CompiledGroup::MemberSpec spec;
      spec.array = m.array.index();
      spec.region = &*use.region;
      spec.is_static = use.region->is_static();
      if (spec.is_static) spec.static_box = rt::eval_region(*use.region, env_);
      cg.all_static = cg.all_static && spec.is_static;
      cg.members.push_back(std::move(spec));
    }
    sim_.groups.push_back(std::move(cg));
    return static_cast<std::int32_t>(sim_.groups.size()) - 1;
  }

  /// The cost-model metadata the lockstep engine caches per statement,
  /// folded with the exact expression shape of Engine::stmt_cost.
  double per_elem_cost(zir::ExprId rhs) const {
    const int flops = zir::count_flops(p_, rhs);
    const int arrays_touched = static_cast<int>(zir::collect_arrays_read(p_, rhs).size()) + 1;
    return flops * machine_.flop_time + arrays_touched * machine_.elem_mem_time;
  }

  void lower_stmt(zir::StmtId sid) {
    const zir::Stmt& s = p_.stmt(sid);
    switch (s.kind) {
      case zir::Stmt::Kind::kArrayAssign: {
        CompiledAssign ca;
        ca.stmt = &s;
        ca.lhs_array = s.lhs_array.index();
        ca.rhs = compile_expr(p_, s.rhs);
        ca.per_elem_cost = per_elem_cost(s.rhs);
        ZC_ASSERT(s.region.has_value());
        ca.region_static = s.region->is_static();
        if (ca.region_static) ca.static_box = rt::eval_region(*s.region, env_);
        sim_.assigns.push_back(std::move(ca));
        emit(Inst::Op::kAssign, static_cast<std::int32_t>(sim_.assigns.size()) - 1);
        return;
      }
      case zir::Stmt::Kind::kScalarAssign: {
        const std::vector<zir::ExprId> reduce_nodes = zir::collect_reduce_exprs(p_, s.rhs);
        if (reduce_nodes.empty()) {
          sim_.scalar_stmts.push_back(CompiledScalarStmt{&s});
          emit(Inst::Op::kScalar, static_cast<std::int32_t>(sim_.scalar_stmts.size()) - 1);
          return;
        }
        CompiledReduce cr;
        cr.stmt = &s;
        for (const zir::ExprId node : reduce_nodes) {
          cr.ops.push_back(p_.expr(node).reduce_op);
          cr.operands.push_back(compile_expr(p_, p_.expr(node).lhs));
        }
        cr.per_elem_cost = per_elem_cost(s.rhs);
        ZC_ASSERT(s.region.has_value());
        cr.region_static = s.region->is_static();
        if (cr.region_static) cr.static_box = rt::eval_region(*s.region, env_);
        sim_.reduces.push_back(std::move(cr));
        emit(Inst::Op::kReduce, static_cast<std::int32_t>(sim_.reduces.size()) - 1);
        return;
      }
      case zir::Stmt::Kind::kFor: {
        sim_.loops.push_back(CompiledLoop{&s});
        const std::int32_t li = static_cast<std::int32_t>(sim_.loops.size()) - 1;
        const std::int32_t init_pc = emit(Inst::Op::kForInit, li);
        const std::int32_t body_pc = static_cast<std::int32_t>(sim_.code.size());
        lower_body(s.body);
        emit(Inst::Op::kForNext, li, body_pc);
        sim_.code[static_cast<std::size_t>(init_pc)].b =
            static_cast<std::int32_t>(sim_.code.size());
        return;
      }
      case zir::Stmt::Kind::kIf: {
        sim_.ifs.push_back(CompiledIf{&s});
        const std::int32_t ii = static_cast<std::int32_t>(sim_.ifs.size()) - 1;
        const std::int32_t if_pc = emit(Inst::Op::kIf, ii);
        lower_body(s.body);
        const std::int32_t jump_pc = emit(Inst::Op::kJump);
        sim_.code[static_cast<std::size_t>(if_pc)].b =
            static_cast<std::int32_t>(sim_.code.size());
        lower_body(s.else_body);
        sim_.code[static_cast<std::size_t>(jump_pc)].b =
            static_cast<std::int32_t>(sim_.code.size());
        return;
      }
      case zir::Stmt::Kind::kCall:
        // Inlined: validation guarantees no recursion, and the lockstep
        // engine executes the callee body in place exactly like this.
        lower_body(p_.proc(s.callee).body);
        return;
    }
  }

  const zir::Program& p_;
  const comm::CommPlan& plan_;
  const zir::IntEnv& env_;
  const machine::MachineModel& machine_;
  CompiledSim sim_;
};

}  // namespace

CompiledSim compile_sim(const zir::Program& program, const comm::CommPlan& plan,
                        const zir::IntEnv& env, const machine::MachineModel& machine) {
  return Lowerer(program, plan, env, machine).lower();
}

}  // namespace zc::sim
