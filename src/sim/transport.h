// Timing simulation of the communication primitives behind the IRONMAN
// bindings. The Transport is pure timing: it advances per-processor virtual
// clocks and tracks in-flight messages per channel; actual payload movement
// is the engine's job (or nobody's, for the synthetic ping benchmark).
//
// Model per primitive (LogGP-flavoured):
//   csend/pvm_send   CPU: o + bytes·g (+ per-packet charge); buffered — the
//                    sender proceeds when the copy completes. Arrival at the
//                    destination after wire latency + bytes/bandwidth.
//   crecv/pvm_recv   waits for arrival, then pays o + bytes·g (copy out).
//   isend/hsend      CPU: o only (co-processor DMA); the source buffer is
//                    busy until the wire drains (msgwait at SV).
//   irecv/hprobe     CPU: o (posting).
//   msgwait          waits for the tracked completion, then o.
//   hrecv            waits for arrival, then o (handler dispatch).
//   shmem_put        one-sided: waits for the destination's readiness flag
//                    (posted by DR = synch), then CPU-stores the data:
//                    o + bytes·g; arrival after wire latency.
//   synch (DR)       destination posts a readiness flag to its source.
//   synch (DN)       destination waits for the put's arrival flag.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "src/ironman/ironman.h"
#include "src/machine/model.h"
#include "src/trace/recorder.h"

namespace zc::tseries {
class SimSeries;
}  // namespace zc::tseries

namespace zc::sim {

class Transport {
 public:
  Transport(const machine::MachineModel& machine, ironman::CommLibrary library);

  [[nodiscard]] const machine::MachineModel& machine() const { return machine_; }
  [[nodiscard]] ironman::CommLibrary library() const { return library_; }

  /// Attaches a trace recorder (nullptr = tracing off, the default; no
  /// per-call work happens then). Every IRONMAN call and message lifecycle
  /// is recorded while attached.
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }
  [[nodiscard]] trace::Recorder* recorder() const { return recorder_; }

  /// Attaches a windowed time-series sink (nullptr = off, the default; no
  /// per-call work happens then — the same zero-overhead-off contract as
  /// the recorder). Every call span, consumed message's wire interval, and
  /// barrier participation is accumulated while attached; like tracing,
  /// the timeline never changes timing or numerics.
  void set_timeline(tseries::SimSeries* timeline) { timeline_ = timeline; }
  [[nodiscard]] tseries::SimSeries* timeline() const { return timeline_; }

  /// Sets the plan transfer id stamped into subsequently recorded calls and
  /// message lifecycles (the engine sets it per CommGroup before issuing the
  /// group's calls). -1 — the default — marks records as untagged; callers
  /// without a plan (ping, direct tests) never need to touch this.
  void set_transfer(std::int64_t transfer) { transfer_ = transfer; }
  [[nodiscard]] std::int64_t transfer() const { return transfer_; }

  /// The four IRONMAN calls for one message of `bytes` on the channel
  /// `(chan, src, dst)`. `t_dst` / `t_src` are the endpoint clocks,
  /// advanced in place. Calls for one message must be issued in DR, SR,
  /// DN, SV order (the engine's statement-ordered execution guarantees
  /// this).
  void dr(int64_t chan, int src, int dst, int64_t bytes, double& t_dst);
  void sr(int64_t chan, int src, int dst, int64_t bytes, double& t_src);
  void dn(int64_t chan, int src, int dst, int64_t bytes, double& t_dst);
  void sv(int64_t chan, int src, int dst, int64_t bytes, double& t_src);

  /// A pre-resolved channel: stable for the life of the Transport (channel
  /// state lives in std::map nodes), so hot callers — the engine's cached
  /// message geometries — skip the map lookup on every call. Handle calls
  /// are bit-identical to the map-keyed forms above.
  class ChannelHandle {
   public:
    ChannelHandle() = default;

   private:
    friend class Transport;
    explicit ChannelHandle(void* ch) : ch_(ch) {}
    void* ch_ = nullptr;
  };
  [[nodiscard]] ChannelHandle channel_handle(int64_t chan, int src, int dst);

  /// Handle forms of the four calls; `chan` is still passed for trace
  /// records, which key on the channel id.
  void dr(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes, double& t_dst);
  void sr(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes, double& t_src);
  void dn(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes, double& t_dst);
  void sv(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes, double& t_src);

  /// True when the DR binding synchronizes globally: the SHMEM prototype's
  /// heavyweight synch is modeled as a barrier over all processors (the
  /// behaviour behind the paper's TOMCATV/SP degradation under SHMEM).
  [[nodiscard]] bool dr_is_global_synch() const;

  /// Applies the barrier cost model to every clock: all advance to the max
  /// plus the participation overhead and the combine-tree stages.
  void global_synch(std::vector<double>& clocks) const;

  /// Posts a readiness flag on a channel without CPU cost (the cost was
  /// paid by global_synch). Gates the subsequent shmem_put.
  void post_readiness(int64_t chan, int src, int dst, double when);

  /// The exposed (CPU-side) cost of a full DR/SR/DN/SV set for one message
  /// when the transmission itself is fully overlapped by computation —
  /// what the paper's Figure 6 synthetic benchmark measures.
  [[nodiscard]] double exposed_overhead(int64_t bytes) const;

  /// Wire time: latency plus bytes over link bandwidth.
  [[nodiscard]] double wire_time(int64_t bytes) const;

  /// Number of in-flight (sent, not yet received) messages; for tests.
  [[nodiscard]] std::size_t in_flight() const;

 private:
  /// Per-message trace state paralleling `arrivals` (maintained while a
  /// recorder or timeline is attached).
  struct WireRecord {
    int64_t id = -1;        ///< Recorder message handle (-1 = record dropped)
    int64_t transfer = -1;  ///< transfer id at send time (survives the cap)
    double on_wire = 0.0;
    double arrived = 0.0;
  };

  struct Channel {
    std::deque<double> readiness;       ///< DR flags awaiting the source
    std::deque<double> arrivals;        ///< message arrival times for DN
    std::deque<double> send_completes;  ///< for SV = msgwait bindings
    std::deque<WireRecord> wire_records;  ///< FIFO twin of `arrivals` when observed
  };

  Channel& channel(int64_t chan, int src, int dst);

  /// Records one sent message (SR side) with a recorder or timeline
  /// attached (the wire-record FIFO feeds both; the recorder handle is -1
  /// when only the timeline is watching).
  void trace_send(Channel& ch, int64_t chan, int src, int dst, int64_t bytes,
                  double t_posted, double t_on_wire, double t_arrived);

  /// True when any observer needs per-message / per-call work.
  [[nodiscard]] bool observed() const {
    return recorder_ != nullptr || timeline_ != nullptr;
  }

  const machine::MachineModel machine_;
  const ironman::CommLibrary library_;
  const bool sv_waits_;
  std::map<std::tuple<int64_t, int, int>, Channel> channels_;
  trace::Recorder* recorder_ = nullptr;
  tseries::SimSeries* timeline_ = nullptr;
  int64_t transfer_ = -1;  ///< stamped into trace records (see set_transfer)
};

}  // namespace zc::sim
