// The SPMD execution engine: runs a compiled (program + comm plan) on a
// simulated multicomputer, producing real numerical results, virtual
// execution time, and the paper's static/dynamic communication counts.
//
// Mini-ZPL has no processor-divergent control flow (loop bounds and branch
// conditions are replicated scalars), so the engine holds P processor
// states and executes every statement / IRONMAN call for the processors it
// concerns before moving on. This is exact for this language class,
// single-threaded, and deterministic — the substitution for the paper's
// 64-node T3D runs.
//
// Two cores share this contract (RunConfig::engine selects one):
//
//   kEvent (default)  compiles the program + plan to flat bytecode
//                     (src/sim/bytecode.h) and drives per-processor virtual
//                     clocks through a deferred-bump log, so statements that
//                     advance every clock uniformly cost O(1) and idle
//                     processors cost nothing until observed. This is what
//                     makes 4096+ simulated processors practical.
//   kLockstep         the original tree-walking interpreter: every
//                     statement executes for every processor in turn. Kept
//                     as the executable specification the event core is
//                     golden-tested against (tests/engine_event_test.cpp);
//                     prefer kEvent everywhere else.
//
// Both cores produce bit-identical results: RunResult scalars/checksums,
// communication counts, trace::Stats, and windowed timelines all match
// exactly. DESIGN.md §15 explains why.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/plan.h"
#include "src/ironman/ironman.h"
#include "src/machine/model.h"
#include "src/runtime/darray.h"
#include "src/runtime/eval.h"
#include "src/runtime/layout.h"
#include "src/sim/transport.h"
#include "src/trace/recorder.h"
#include "src/zir/program.h"

namespace zc::sim {

struct CompiledAssign;
struct CompiledReduce;
struct CompiledGroup;
struct CommGeometry;
struct EventState;

/// Which execution core runs the program (see the header comment).
enum class EngineKind {
  kEvent,     ///< compiled bytecode + event-driven virtual clocks (default)
  kLockstep,  ///< tree-walking reference interpreter
};

struct RunConfig {
  machine::MachineModel machine = machine::t3d_model();
  ironman::CommLibrary library = ironman::CommLibrary::kPVM;
  int procs = 64;
  /// Execution core. Both produce bit-identical results; kEvent is the
  /// fast one, kLockstep the reference it is golden-tested against.
  EngineKind engine = EngineKind::kEvent;
  /// Override config constants by name (e.g. problem size / iterations).
  std::map<std::string, long long> config_overrides;
  /// Optional trace recorder (see src/trace). nullptr — the default — means
  /// tracing is off and the run does no event recording at all; the
  /// recorder, when given, must cover at least `procs` processors. Tracing
  /// never changes timing or numerics (golden-checked).
  trace::Recorder* recorder = nullptr;
  /// Optional windowed time-series sink (see src/tseries). nullptr — the
  /// default — means no per-event accumulation at all, the same
  /// zero-overhead-off contract as the recorder. When given, it must cover
  /// at least `procs` rows; memory stays O(procs x windows) no matter how
  /// many events the run produces, and the windowed sums reconcile with
  /// trace::Stats / RunResult exactly. Never changes timing or numerics
  /// (golden-checked, like tracing).
  tseries::SimSeries* timeline = nullptr;
};

/// Per-processor communication counters.
struct CommCounters {
  /// Communications (group executions) in which this processor actually
  /// sent or received data (a subset of the SPMD-wide dynamic count).
  long long communications = 0;
  long long messages_sent = 0;
  long long messages_received = 0;
  long long bytes_sent = 0;
  long long bytes_received = 0;
};

struct RunResult {
  double elapsed_seconds = 0.0;  ///< max processor clock at completion

  /// The paper's dynamic count: communications (IRONMAN call sets) executed
  /// by the SPMD program — identical on every processor, as in the paper's
  /// "number of communications performed ... on a single processor".
  long long dynamic_count = 0;
  int center_proc = 0;

  long long total_messages = 0;
  long long total_bytes = 0;
  long long reduction_count = 0;  ///< reductions executed (reported separately)

  rt::Mesh mesh;
  std::vector<CommCounters> per_proc;

  /// Final scalar values and per-array checksums (sum over the declared
  /// region), for verifying optimized runs against the reference.
  std::map<std::string, double> scalars;
  std::map<std::string, double> checksums;
};

class Engine {
 public:
  Engine(const zir::Program& program, const comm::CommPlan& plan, RunConfig config);
  ~Engine();  // out of line: GroupExec / EventState are incomplete here
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the program's entry procedure once. Single-use.
  RunResult run();

 private:
  struct GroupExec;  // one in-progress execution of a CommGroup

  /// Shared result assembly + metrics publication (both cores).
  RunResult finish();

  // --- lockstep core (engine.cpp) ----------------------------------------
  void run_lockstep();
  void exec_body(const std::vector<zir::StmtId>& body);
  void exec_block(const comm::BlockPlan& block);
  void exec_comm_position(const comm::BlockPlan& block, int pos);
  void exec_stmt(zir::StmtId sid);
  void exec_array_assign(const zir::Stmt& stmt);
  void exec_scalar_assign(const zir::Stmt& stmt);

  /// Fills `exec` (a pooled object — retained capacity, `live` reset by the
  /// caller via acquire_exec) with the group's messages under the current
  /// loop bindings.
  void build_group_exec(const comm::BlockPlan& block, const comm::CommGroup& group,
                        GroupExec& exec);
  [[nodiscard]] std::unique_ptr<GroupExec> acquire_exec();
  void recycle_exec(std::unique_ptr<GroupExec> exec);
  void comm_dr(const comm::CommGroup& group, GroupExec& exec);
  void comm_sr(const comm::CommGroup& group, GroupExec& exec);
  void comm_dn(const comm::CommGroup& group, GroupExec& exec);
  void comm_sv(const comm::CommGroup& group, GroupExec& exec);

  [[nodiscard]] rt::EvalContext context_for(int proc) const;
  [[nodiscard]] double stmt_cost(const zir::Stmt& stmt, long long elems) const;
  void allreduce_clocks(double extra_per_stage);

  // --- event-driven core (engine_event.cpp) ------------------------------
  void run_event();
  void ev_exec_assign(CompiledAssign& ca);
  void ev_exec_reduce(CompiledReduce& cr);
  void ev_comm_dr(CompiledGroup& cg);
  void ev_comm_sr(CompiledGroup& cg);
  void ev_comm_dn(CompiledGroup& cg);
  void ev_comm_sv(CompiledGroup& cg);
  /// Resolves (building / caching) the group's message geometry for the
  /// current loop bindings and marks it outstanding.
  CommGeometry& ev_resolve_geometry(CompiledGroup& cg);
  void ev_build_geometry(const CompiledGroup& cg, const std::vector<rt::Box>& member_boxes,
                         CommGeometry& geom);
  /// Appends a uniform all-processor clock bump to the deferred log.
  void ev_bump(double amount);
  /// Replays a processor's pending deferred bumps so clock_[proc] is current.
  void ev_touch(int proc);
  void ev_materialize_all();
  void ev_compact_bumps();
  void ev_advance_pristine();
  /// Resets the bump log after a barrier left every clock equal to `t`.
  void ev_barrier_reset(double t);

  const zir::Program& p_;
  const comm::CommPlan& plan_;
  RunConfig cfg_;

  rt::Mesh mesh_;
  zir::IntEnv env_;
  rt::BlockDist dist_;
  Transport transport_;
  rt::Evaluator evaluator_;

  std::vector<double> clock_;                        // per proc
  std::vector<std::vector<rt::LocalArray>> arrays_;  // [proc][array]
  std::vector<rt::Box> declared_;                    // per array
  std::vector<double> scalars_;                      // replicated
  std::vector<CommCounters> counters_;               // per proc
  long long reduction_count_ = 0;
  long long dynamic_comm_count_ = 0;  // communications executed (SPMD-wide)

  std::map<int, std::unique_ptr<GroupExec>> outstanding_;  // by group id

  // Hot-path allocation recycling (bit-identity preserving: every buffer is
  // fully rewritten before use). GroupExec objects — message records with
  // their parts/payload vectors — cycle through a free list so steady-state
  // communication executes with no per-event allocation once capacities
  // have grown to the program's working set (gated by bench_micro_passes).
  std::vector<std::unique_ptr<GroupExec>> exec_pool_;
  std::vector<char> participated_;        // scratch: per-proc flags
  std::vector<double> eval_buf_;          // scratch: exec_array_assign RHS
  std::vector<double> reduce_global_;     // scratch: exec_scalar_assign
  std::vector<double> reduce_partials_;   // scratch: exec_scalar_assign

  // Per-statement cost metadata cache.
  struct StmtCost {
    int flops = 0;
    int arrays_touched = 0;
  };
  mutable std::map<int32_t, StmtCost> stmt_cost_cache_;

  /// Event-core state (compiled program + clock bump log); null until
  /// run_event compiles, and in lockstep runs.
  std::unique_ptr<EventState> ev_;

  bool ran_ = false;
};

/// Convenience: plan with `options`, then run. The standard entry point for
/// benches / examples; see also src/driver for the experiment-level API.
RunResult run_program(const zir::Program& program, const comm::CommPlan& plan, RunConfig config);

}  // namespace zc::sim
