// The event-driven engine core: executes the compiled bytecode
// (src/sim/bytecode.h) over per-processor virtual clocks.
//
// Why one walker is exact. Mini-ZPL has no processor-divergent control
// flow, so every processor executes the same instruction sequence; the only
// per-processor divergence is in clock values and array contents. A single
// walker stepping the flat instruction stream in program order therefore
// reproduces the lockstep core's global order of every observable call —
// transport DR/SR/DN/SV, recorder events, timeline events, compute hooks —
// exactly, not merely its aggregates. Per instruction it touches only the
// processors the instruction concerns (the statement's active set, a
// message's endpoints), which is what drops the per-statement cost from
// O(procs) to O(active).
//
// Why the clocks stay bit-identical. Uniform all-processor bumps (scalar
// statements, branches, loop bookkeeping) go through the deferred bump log
// in EventState, replayed per processor in the original order — float
// addition is not associative, so the amounts are never coalesced. Barriers
// (reductions, the SHMEM global synch) leave every clock equal, which both
// empties and compacts the log. DESIGN.md §15 states the full argument.
#include <algorithm>
#include <cstring>

#include "src/prof/prof.h"
#include "src/sim/bytecode.h"
#include "src/sim/engine.h"
#include "src/support/check.h"
#include "src/support/diag.h"
#include "src/tseries/tseries.h"

namespace zc::sim {

namespace {

/// Exact (bitwise) clock comparison: the pristine fast path must never
/// conflate 0.0 with -0.0 or otherwise round.
bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

/// Compact the bump log once it holds this many deferred entries (replaying
/// everyone is O(procs + entries); the threshold just bounds memory and the
/// worst-case single replay).
constexpr std::size_t kBumpCompactThreshold = 1u << 16;

}  // namespace

// ---------------------------------------------------------------------------
// Deferred clock bumps.

void Engine::ev_bump(double amount) {
  ev_->bump_log.push_back(amount);
  if (ev_->bump_log.size() >= kBumpCompactThreshold) ev_compact_bumps();
}

void Engine::ev_advance_pristine() {
  EventState& ev = *ev_;
  for (; ev.pristine_len < ev.bump_log.size(); ++ev.pristine_len) {
    ev.pristine_value += ev.bump_log[ev.pristine_len];
  }
}

void Engine::ev_touch(int proc) {
  EventState& ev = *ev_;
  const std::size_t n = ev.bump_log.size();
  std::size_t& cur = ev.bump_cursor[static_cast<std::size_t>(proc)];
  if (cur == n) return;
  double& c = clock_[static_cast<std::size_t>(proc)];
  if (cur == 0 && bits_equal(c, ev.pristine_base)) {
    // Untouched since the last barrier/compaction: every such processor
    // replays the identical prefix, memoized in pristine_value.
    ev_advance_pristine();
    c = ev.pristine_value;
    cur = n;
    return;
  }
  for (; cur < n; ++cur) c += ev.bump_log[cur];
}

void Engine::ev_materialize_all() {
  for (int proc = 0; proc < mesh_.procs(); ++proc) ev_touch(proc);
}

void Engine::ev_compact_bumps() {
  EventState& ev = *ev_;
  ev_materialize_all();
  ev.bump_log.clear();
  std::fill(ev.bump_cursor.begin(), ev.bump_cursor.end(), 0);
  // Processors that were pristine materialized to pristine_value; rebasing
  // keeps them on the fast path.
  ev.pristine_base = ev.pristine_value;
  ev.pristine_len = 0;
}

void Engine::ev_barrier_reset(double t) {
  EventState& ev = *ev_;
  ev.bump_log.clear();
  std::fill(ev.bump_cursor.begin(), ev.bump_cursor.end(), 0);
  ev.pristine_base = t;
  ev.pristine_value = t;
  ev.pristine_len = 0;
}

// ---------------------------------------------------------------------------
// Statements.

void Engine::ev_exec_assign(CompiledAssign& ca) {
  const zir::Stmt& stmt = *ca.stmt;
  const rt::Box region = ca.region_static ? ca.static_box : rt::eval_region(*stmt.region, env_);
  if (region.empty()) return;
  if (!declared_[stmt.lhs_array.index()].contains(region)) {
    throw Error("statement region " + region.to_string() + " exceeds the declared region of '" +
                p_.array(stmt.lhs_array).name + "'");
  }
  EventState& ev = *ev_;
  const std::size_t a = static_cast<std::size_t>(ca.lhs_array);

  const auto run_one = [&](int proc, const rt::Box& local, double cost) {
    const std::vector<double>& buf =
        eval_expr_prog(ca.rhs, p_, arrays_[proc], scalars_, env_, local, ev.scratch);
    arrays_[proc][a].write_box(local, buf.data());
    ev_touch(proc);
    const double t0 = clock_[proc];
    clock_[proc] += cost;
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->record_compute(proc, local.count(), t0, clock_[proc]);
    }
    if (cfg_.timeline != nullptr) cfg_.timeline->add_compute(proc, t0, clock_[proc]);
  };

  if (ca.region_static) {
    if (!ca.actives_ready) {
      for (int proc = 0; proc < mesh_.procs(); ++proc) {
        const rt::Box& owned = arrays_[proc][a].owned();
        if (owned.empty()) continue;
        const rt::Box local = region.intersect(owned);
        if (local.empty()) continue;
        const double cost = cfg_.machine.stmt_overhead +
                            static_cast<double>(local.count()) * ca.per_elem_cost;
        ca.actives.push_back({proc, local, cost});
      }
      ca.actives_ready = true;
    }
    for (const CompiledAssign::Active& act : ca.actives) run_one(act.proc, act.local, act.cost);
    return;
  }
  for (int proc = 0; proc < mesh_.procs(); ++proc) {
    const rt::Box& owned = arrays_[proc][a].owned();
    if (owned.empty()) continue;
    const rt::Box local = region.intersect(owned);
    if (local.empty()) continue;
    const double cost =
        cfg_.machine.stmt_overhead + static_cast<double>(local.count()) * ca.per_elem_cost;
    run_one(proc, local, cost);
  }
}

void Engine::ev_exec_reduce(CompiledReduce& cr) {
  const zir::Stmt& stmt = *cr.stmt;
  const rt::Box region = cr.region_static ? cr.static_box : rt::eval_region(*stmt.region, env_);
  EventState& ev = *ev_;
  std::vector<double>& global = ev.reduce_global;
  global.clear();
  for (const zir::ReduceOp op : cr.ops) global.push_back(rt::reduce_identity(op));

  for (int proc = 0; proc < mesh_.procs(); ++proc) {
    // Crop the owned box to the region's rank (a rank-2 reduction in a
    // rank-3 program reduces over dims 0 and 1 only) — as in lockstep.
    rt::Box owned = dist_.owned(proc);
    owned.rank = region.rank;
    for (int d = dist_.space().rank; d < region.rank; ++d) {
      owned.lo[d] = region.lo[d];
      owned.hi[d] = region.hi[d];
    }
    const rt::Box local = region.intersect(owned);
    if (local.empty()) {
      // Lockstep combines the identity partial of every inactive processor;
      // combining is not always a bitwise no-op (-0.0 + 0.0 = +0.0), so the
      // event core combines it too.
      for (std::size_t k = 0; k < cr.ops.size(); ++k) {
        global[k] = rt::reduce_combine(cr.ops[k], global[k], rt::reduce_identity(cr.ops[k]));
      }
      continue;
    }
    for (std::size_t k = 0; k < cr.ops.size(); ++k) {
      const std::vector<double>& buf =
          eval_expr_prog(cr.operands[k], p_, arrays_[proc], scalars_, env_, local, ev.scratch);
      double acc = rt::reduce_identity(cr.ops[k]);
      for (const double x : buf) acc = rt::reduce_combine(cr.ops[k], acc, x);
      global[k] = rt::reduce_combine(cr.ops[k], global[k], acc);
    }
    ev_touch(proc);
    const double t0 = clock_[proc];
    clock_[proc] += cfg_.machine.stmt_overhead +
                    static_cast<double>(local.count()) * cr.per_elem_cost;
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->record_compute(proc, local.count(), t0, clock_[proc]);
    }
    if (cfg_.timeline != nullptr) cfg_.timeline->add_compute(proc, t0, clock_[proc]);
  }

  ev_materialize_all();
  allreduce_clocks(cfg_.machine.reduce_stage_overhead);
  ev_barrier_reset(clock_[0]);
  ++reduction_count_;

  const rt::EvalContext ctx = context_for(0);
  scalars_[stmt.lhs_scalar.index()] = evaluator_.eval_scalar(ctx, stmt.rhs, global);
}

// ---------------------------------------------------------------------------
// Communication.

void Engine::ev_build_geometry(const CompiledGroup& cg,
                               const std::vector<rt::Box>& member_boxes, CommGeometry& geom) {
  const std::vector<int>& offsets = p_.direction(cg.group->direction).offsets;

  const auto slot_for = [&geom](int src, int dst) -> CommGeometry::Msg& {
    for (CommGeometry::Msg& m : geom.msgs) {
      if (m.src == src && m.dst == dst) return m;
    }
    geom.msgs.emplace_back();
    CommGeometry::Msg& m = geom.msgs.back();
    m.src = src;
    m.dst = dst;
    return m;
  };

  for (std::size_t i = 0; i < cg.members.size(); ++i) {
    const std::size_t a = static_cast<std::size_t>(cg.members[i].array);
    const rt::Box& region = member_boxes[i];
    const rt::Box& declared = declared_[a];
    if (region.empty()) continue;

    // dist_.owners(region) is a superset of the processors whose clamped
    // owned block meets the region (clamping only shrinks within the
    // distributed dims), ascending — so filtering by the same emptiness
    // checks as lockstep's 0..P-1 scan visits the same dsts in the same
    // order without touching idle processors.
    for (const int dst : dist_.owners(region)) {
      const rt::Box& owned_dst = arrays_[dst][a].owned();
      if (owned_dst.empty()) continue;
      const rt::Box use_local = region.intersect(owned_dst);
      if (use_local.empty()) continue;
      const rt::Box needed = use_local.shifted(offsets).intersect(declared);
      for (const rt::Box& piece : needed.subtract(owned_dst)) {
        for (const int src : dist_.owners(piece)) {
          if (src == dst) continue;
          const rt::Box slice = piece.intersect(arrays_[src][a].owned());
          if (slice.empty()) continue;
          CommGeometry::Msg& msg = slot_for(src, dst);
          msg.parts.push_back({cg.members[i].array, slice});
          msg.bytes += slice.count() * static_cast<long long>(sizeof(double));
        }
      }
    }
  }

  for (CommGeometry::Msg& msg : geom.msgs) {
    msg.channel = transport_.channel_handle(cg.group->id, msg.src, msg.dst);
    geom.participants.push_back(msg.src);
    geom.participants.push_back(msg.dst);
  }
  std::sort(geom.participants.begin(), geom.participants.end());
  geom.participants.erase(std::unique(geom.participants.begin(), geom.participants.end()),
                          geom.participants.end());
}

CommGeometry& Engine::ev_resolve_geometry(CompiledGroup& cg) {
  ZC_ASSERT(cg.outstanding == nullptr);  // at most one outstanding execution
  if (cg.all_static) {
    if (!cg.static_ready) {
      ev_->member_boxes.clear();
      for (const CompiledGroup::MemberSpec& m : cg.members) {
        ev_->member_boxes.push_back(m.static_box);
      }
      ev_build_geometry(cg, ev_->member_boxes, cg.static_geom);
      cg.static_ready = true;
    }
    cg.outstanding = &cg.static_geom;
    return cg.static_geom;
  }

  std::vector<rt::Box>& boxes = ev_->member_boxes;
  boxes.clear();
  std::vector<long long>& key = ev_->geom_key;
  key.clear();
  for (const CompiledGroup::MemberSpec& m : cg.members) {
    boxes.push_back(m.is_static ? m.static_box : rt::eval_region(*m.region, env_));
    const rt::Box& b = boxes.back();
    key.push_back(b.rank);
    for (int d = 0; d < b.rank; ++d) {
      key.push_back(b.lo[d]);
      key.push_back(b.hi[d]);
    }
  }
  const auto [it, inserted] = cg.dynamic_geoms.try_emplace(key);
  if (inserted) ev_build_geometry(cg, boxes, it->second);
  cg.outstanding = &it->second;
  return it->second;
}

void Engine::ev_comm_dr(CompiledGroup& cg) {
  CommGeometry& geom = ev_resolve_geometry(cg);

  // The paper's dynamic count and the per-processor participation counters,
  // exactly as lockstep's build_group_exec tallies them at DR time.
  ++dynamic_comm_count_;
  for (const int proc : geom.participants) ++counters_[proc].communications;

  transport_.set_transfer(cg.group->transfer_id);
  if (transport_.dr_is_global_synch()) {
    // SHMEM prototype: the DR synch is a global barrier executed by every
    // processor, with data to move or not.
    ev_materialize_all();
    transport_.global_synch(clock_);
    ev_barrier_reset(clock_[0]);
    for (const CommGeometry::Msg& msg : geom.msgs) {
      transport_.post_readiness(cg.group->id, msg.src, msg.dst, clock_[msg.dst]);
    }
    return;
  }
  for (CommGeometry::Msg& msg : geom.msgs) {
    ev_touch(msg.dst);
    transport_.dr(msg.channel, cg.group->id, msg.src, msg.dst, msg.bytes, clock_[msg.dst]);
  }
}

void Engine::ev_comm_sr(CompiledGroup& cg) {
  ZC_ASSERT(cg.outstanding != nullptr);
  CommGeometry& geom = *cg.outstanding;
  transport_.set_transfer(cg.group->transfer_id);
  for (CommGeometry::Msg& msg : geom.msgs) {
    // Capture the payload now: pipelining is only correct if the data at SR
    // equals the data at use (the optimizer's legality rules guarantee it).
    msg.payload.clear();
    msg.payload.reserve(static_cast<std::size_t>(msg.bytes / sizeof(double)));
    for (const CommGeometry::Part& part : msg.parts) {
      const std::size_t at = msg.payload.size();
      msg.payload.resize(at + static_cast<std::size_t>(part.box.count()));
      arrays_[msg.src][static_cast<std::size_t>(part.array)].read_box(
          part.box, msg.payload.data() + at);
    }
    ev_touch(msg.src);
    transport_.sr(msg.channel, cg.group->id, msg.src, msg.dst, msg.bytes, clock_[msg.src]);
    ++counters_[msg.src].messages_sent;
    counters_[msg.src].bytes_sent += msg.bytes;
  }
}

void Engine::ev_comm_dn(CompiledGroup& cg) {
  ZC_ASSERT(cg.outstanding != nullptr);
  CommGeometry& geom = *cg.outstanding;
  transport_.set_transfer(cg.group->transfer_id);
  for (CommGeometry::Msg& msg : geom.msgs) {
    ev_touch(msg.dst);
    transport_.dn(msg.channel, cg.group->id, msg.src, msg.dst, msg.bytes, clock_[msg.dst]);
    std::size_t at = 0;
    for (const CommGeometry::Part& part : msg.parts) {
      arrays_[msg.dst][static_cast<std::size_t>(part.array)].write_box(
          part.box, msg.payload.data() + at);
      at += static_cast<std::size_t>(part.box.count());
    }
    // Cleared but NOT shrunk: the cached geometry doubles as the payload
    // allocation pool, so steady state moves data without allocating.
    msg.payload.clear();
    ++counters_[msg.dst].messages_received;
    counters_[msg.dst].bytes_received += msg.bytes;
  }
}

void Engine::ev_comm_sv(CompiledGroup& cg) {
  ZC_ASSERT(cg.outstanding != nullptr);
  CommGeometry& geom = *cg.outstanding;
  transport_.set_transfer(cg.group->transfer_id);
  for (const CommGeometry::Msg& msg : geom.msgs) {
    ev_touch(msg.src);
    transport_.sv(msg.channel, cg.group->id, msg.src, msg.dst, msg.bytes, clock_[msg.src]);
  }
  cg.outstanding = nullptr;
}

// ---------------------------------------------------------------------------
// The instruction loop.

void Engine::run_event() {
  {
    ZC_PROF_SPAN("sim/compile");
    ev_ = std::make_unique<EventState>();
    ev_->sim = compile_sim(p_, plan_, env_, cfg_.machine);
    ev_->bump_cursor.assign(static_cast<std::size_t>(mesh_.procs()), 0);
  }
  EventState& ev = *ev_;
  CompiledSim& cs = ev.sim;

  std::int32_t pc = 0;
  for (;;) {
    const Inst in = cs.code[static_cast<std::size_t>(pc)];
    switch (in.op) {
      case Inst::Op::kAssign:
        ev_exec_assign(cs.assigns[static_cast<std::size_t>(in.a)]);
        ++pc;
        break;
      case Inst::Op::kScalar: {
        const zir::Stmt& s = *cs.scalar_stmts[static_cast<std::size_t>(in.a)].stmt;
        const rt::EvalContext ctx = context_for(0);
        scalars_[s.lhs_scalar.index()] = evaluator_.eval_scalar(ctx, s.rhs, {});
        ev_bump(cfg_.machine.scalar_stmt_time);
        ++pc;
        break;
      }
      case Inst::Op::kReduce:
        ev_exec_reduce(cs.reduces[static_cast<std::size_t>(in.a)]);
        ++pc;
        break;
      case Inst::Op::kCommDR:
        ev_comm_dr(cs.groups[static_cast<std::size_t>(in.a)]);
        ++pc;
        break;
      case Inst::Op::kCommSR:
        ev_comm_sr(cs.groups[static_cast<std::size_t>(in.a)]);
        ++pc;
        break;
      case Inst::Op::kCommDN:
        ev_comm_dn(cs.groups[static_cast<std::size_t>(in.a)]);
        ++pc;
        break;
      case Inst::Op::kCommSV:
        ev_comm_sv(cs.groups[static_cast<std::size_t>(in.a)]);
        ++pc;
        break;
      case Inst::Op::kForInit: {
        const zir::Stmt& s = *cs.loops[static_cast<std::size_t>(in.a)].stmt;
        const long long lo = s.lo.eval(env_);
        const long long hi = s.hi.eval(env_);
        if (s.step > 0 ? lo > hi : lo < hi) {
          pc = in.b;  // empty range: no frame, no bookkeeping charge
          break;
        }
        EventState::ForFrame f;
        f.loop = in.a;
        f.i = lo;
        f.hi = hi;
        f.step = s.step;
        const std::size_t v = s.loop_var.index();
        f.was_bound = env_.loop_bound[v];
        f.old_value = env_.loop_values[v];
        env_.loop_bound[v] = true;
        env_.loop_values[v] = lo;
        ev.for_stack.push_back(f);
        ev_bump(cfg_.machine.scalar_stmt_time);  // loop bookkeeping, as lockstep
        ++pc;
        break;
      }
      case Inst::Op::kForNext: {
        EventState::ForFrame& f = ev.for_stack.back();
        const zir::Stmt& s = *cs.loops[static_cast<std::size_t>(f.loop)].stmt;
        const std::size_t v = s.loop_var.index();
        f.i += f.step;
        if (f.step > 0 ? f.i <= f.hi : f.i >= f.hi) {
          env_.loop_values[v] = f.i;
          ev_bump(cfg_.machine.scalar_stmt_time);
          pc = in.b;
        } else {
          env_.loop_bound[v] = f.was_bound;
          env_.loop_values[v] = f.old_value;
          ev.for_stack.pop_back();
          ++pc;
        }
        break;
      }
      case Inst::Op::kIf: {
        const zir::Stmt& s = *cs.ifs[static_cast<std::size_t>(in.a)].stmt;
        const rt::EvalContext ctx = context_for(0);
        const double cond = evaluator_.eval_scalar(ctx, s.cond, {});
        ev_bump(cfg_.machine.scalar_stmt_time);
        pc = cond != 0.0 ? pc + 1 : in.b;
        break;
      }
      case Inst::Op::kJump:
        pc = in.b;
        break;
      case Inst::Op::kHalt: {
        ev_materialize_all();
        for (const CompiledGroup& cg : cs.groups) ZC_ASSERT(cg.outstanding == nullptr);
        ZC_ASSERT(ev.for_stack.empty());
        return;
      }
    }
  }
}

}  // namespace zc::sim
