#include "src/sim/transport.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"
#include "src/tseries/tseries.h"

namespace zc::sim {

using ironman::CommLibrary;
using ironman::IronmanCall;
using ironman::Primitive;

Transport::Transport(const machine::MachineModel& machine, ironman::CommLibrary library)
    : machine_(machine),
      library_(library),
      sv_waits_(ironman::binding(library, IronmanCall::kSV) == Primitive::kMsgwaitSend) {
  ZC_ASSERT(machine::library_available(machine_.kind, library_));
}

Transport::Channel& Transport::channel(int64_t chan, int src, int dst) {
  return channels_[{chan, src, dst}];
}

Transport::ChannelHandle Transport::channel_handle(int64_t chan, int src, int dst) {
  return ChannelHandle(&channel(chan, src, dst));
}

void Transport::trace_send(Channel& ch, int64_t chan, int src, int dst, int64_t bytes,
                           double t_posted, double t_on_wire, double t_arrived) {
  const int64_t id = recorder_ != nullptr
                         ? recorder_->record_message(chan, transfer_, src, dst, bytes,
                                                     t_posted, t_on_wire, t_arrived)
                         : -1;
  ch.wire_records.push_back({id, transfer_, t_on_wire, t_arrived});
}

double Transport::wire_time(int64_t bytes) const {
  return machine_.wire_latency +
         static_cast<double>(bytes) * machine_.channel_per_byte(library_);
}

void Transport::dr(int64_t chan, int src, int dst, int64_t bytes, double& t_dst) {
  dr(channel_handle(chan, src, dst), chan, src, dst, bytes, t_dst);
}

void Transport::dr(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes,
                   double& t_dst) {
  const Primitive prim = ironman::binding(library_, IronmanCall::kDR);
  const double begin = t_dst;
  switch (prim) {
    case Primitive::kNoOp:
      return;
    case Primitive::kIrecv:
    case Primitive::kHprobe:
      // Posting the receive costs CPU but creates no tracked state in this
      // model (arrival timing is independent of posting time).
      t_dst += machine_.primitive_cpu_cost(prim, bytes);
      break;
    case Primitive::kSynchPost: {
      // Destination announces buffer readiness to its source; the flag
      // crosses the wire and gates the source's shmem_put.
      t_dst += machine_.primitive_cpu_cost(prim, bytes);
      static_cast<Channel*>(h.ch_)->readiness.push_back(t_dst + machine_.wire_latency);
      break;
    }
    default:
      ZC_ASSERT(false);
  }
  if (recorder_ != nullptr) {
    recorder_->record_call(dst, IronmanCall::kDR, prim, chan, transfer_, src, dst, bytes,
                           begin, begin, t_dst);
  }
  if (timeline_ != nullptr) timeline_->add_call(dst, begin, begin, t_dst);
}

void Transport::sr(int64_t chan, int src, int dst, int64_t bytes, double& t_src) {
  sr(channel_handle(chan, src, dst), chan, src, dst, bytes, t_src);
}

void Transport::sr(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes,
                   double& t_src) {
  const Primitive prim = ironman::binding(library_, IronmanCall::kSR);
  Channel& ch = *static_cast<Channel*>(h.ch_);
  const double begin = t_src;
  double unblocked = begin;  // when the call stopped waiting (gated sends)
  double on_wire = 0.0;      // when the first byte leaves the source
  double arrival = 0.0;
  switch (prim) {
    case Primitive::kCsend:
    case Primitive::kPvmSend: {
      // Blocking buffered send: the CPU copies/packs, then the message is
      // on the wire; the source may proceed immediately after the copy.
      t_src += machine_.primitive_cpu_cost(prim, bytes);
      on_wire = t_src;
      arrival = t_src + wire_time(bytes);
      ch.arrivals.push_back(arrival);
      if (sv_waits_) ch.send_completes.push_back(t_src);
      break;
    }
    case Primitive::kIsend:
    case Primitive::kHsend: {
      // Asynchronous: heavy posting overhead, then the co-processor drains
      // the user buffer onto the wire; buffer reusable once drained.
      t_src += machine_.primitive_cpu_cost(prim, bytes);
      const double drained = t_src + static_cast<double>(bytes) * machine_.wire_per_byte;
      on_wire = t_src;
      arrival = t_src + wire_time(bytes);
      ch.arrivals.push_back(arrival);
      if (sv_waits_) ch.send_completes.push_back(drained);
      break;
    }
    case Primitive::kShmemPut: {
      // One-sided put, gated on the destination's readiness flag.
      ZC_ASSERT(!ch.readiness.empty());
      const double ready = ch.readiness.front();
      ch.readiness.pop_front();
      unblocked = std::max(t_src, ready);
      t_src = unblocked + machine_.primitive_cpu_cost(prim, bytes);
      on_wire = unblocked;  // the CPU store streams straight onto the wire
      arrival = t_src + machine_.wire_latency;
      ch.arrivals.push_back(arrival);
      if (sv_waits_) ch.send_completes.push_back(t_src);
      break;
    }
    default:
      ZC_ASSERT(false);
  }
  if (recorder_ != nullptr) {
    recorder_->record_call(src, IronmanCall::kSR, prim, chan, transfer_, src, dst, bytes,
                           begin, unblocked, t_src);
  }
  if (timeline_ != nullptr) timeline_->add_call(src, begin, unblocked, t_src);
  if (observed()) trace_send(ch, chan, src, dst, bytes, begin, on_wire, arrival);
}

void Transport::dn(int64_t chan, int src, int dst, int64_t bytes, double& t_dst) {
  dn(channel_handle(chan, src, dst), chan, src, dst, bytes, t_dst);
}

void Transport::dn(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes,
                   double& t_dst) {
  const Primitive prim = ironman::binding(library_, IronmanCall::kDN);
  Channel& ch = *static_cast<Channel*>(h.ch_);
  ZC_ASSERT(!ch.arrivals.empty());
  const double arrival = ch.arrivals.front();
  ch.arrivals.pop_front();
  const double begin = t_dst;
  const double unblocked = std::max(begin, arrival);
  switch (prim) {
    case Primitive::kCrecv:
    case Primitive::kPvmRecv:
      // Wait for arrival, then copy/unpack out of the system buffer.
      t_dst = unblocked + machine_.primitive_cpu_cost(prim, bytes);
      break;
    case Primitive::kMsgwaitRecv:
    case Primitive::kHrecv:
    case Primitive::kSynchWait:
      // Completion wait; data was deposited directly (DMA / put).
      t_dst = unblocked + machine_.primitive_cpu_cost(prim, bytes);
      break;
    default:
      ZC_ASSERT(false);
  }
  if (recorder_ != nullptr) {
    recorder_->record_call(dst, IronmanCall::kDN, prim, chan, transfer_, src, dst, bytes,
                           begin, unblocked, t_dst);
  }
  if (timeline_ != nullptr) timeline_->add_call(dst, begin, unblocked, t_dst);
  if (observed()) {
    // The wire-record FIFO twins `arrivals`; it can be short only if the
    // observer was attached after traffic was already in flight. The
    // transfer id comes from the wire record (stamped at send time), not
    // from transfer_: the consuming DN may belong to a different group's
    // call slot only in hand-driven tests, never in engine runs.
    if (!ch.wire_records.empty()) {
      const WireRecord wr = ch.wire_records.front();
      ch.wire_records.pop_front();
      if (recorder_ != nullptr) {
        recorder_->record_consumed(wr.id, wr.transfer, t_dst, unblocked - begin,
                                   wr.arrived - wr.on_wire);
      }
      if (timeline_ != nullptr) {
        timeline_->add_wire(dst, wr.on_wire, wr.arrived, unblocked - begin);
      }
    }
  }
}

void Transport::sv(int64_t chan, int src, int dst, int64_t bytes, double& t_src) {
  sv(channel_handle(chan, src, dst), chan, src, dst, bytes, t_src);
}

void Transport::sv(ChannelHandle h, int64_t chan, int src, int dst, int64_t bytes,
                   double& t_src) {
  const Primitive prim = ironman::binding(library_, IronmanCall::kSV);
  switch (prim) {
    case Primitive::kNoOp:
      return;
    case Primitive::kMsgwaitSend: {
      Channel& ch = *static_cast<Channel*>(h.ch_);
      ZC_ASSERT(!ch.send_completes.empty());
      const double complete = ch.send_completes.front();
      ch.send_completes.pop_front();
      const double begin = t_src;
      const double unblocked = std::max(begin, complete);
      t_src = unblocked + machine_.primitive_cpu_cost(prim, bytes);
      if (recorder_ != nullptr) {
        recorder_->record_call(src, IronmanCall::kSV, prim, chan, transfer_, src, dst, bytes,
                               begin, unblocked, t_src);
      }
      if (timeline_ != nullptr) timeline_->add_call(src, begin, unblocked, t_src);
      return;
    }
    default:
      ZC_ASSERT(false);
  }
}

bool Transport::dr_is_global_synch() const {
  return ironman::binding(library_, IronmanCall::kDR) == Primitive::kSynchPost;
}

void Transport::global_synch(std::vector<double>& clocks) const {
  ZC_ASSERT(!clocks.empty());
  double t = clocks[0];
  for (double c : clocks) t = std::max(t, c);
  const int stages = machine::barrier_stages(static_cast<int>(clocks.size()));
  t += machine_.synch_post.overhead + stages * machine_.synch_stage;
  if (recorder_ != nullptr) {
    for (std::size_t p = 0; p < clocks.size(); ++p) {
      recorder_->record_barrier(static_cast<int>(p), clocks[p], t);
    }
  }
  if (timeline_ != nullptr) {
    for (std::size_t p = 0; p < clocks.size(); ++p) {
      timeline_->add_barrier(static_cast<int>(p), clocks[p], t);
    }
  }
  std::fill(clocks.begin(), clocks.end(), t);
}

void Transport::post_readiness(int64_t chan, int src, int dst, double when) {
  channel(chan, src, dst).readiness.push_back(when + machine_.wire_latency);
}

double Transport::exposed_overhead(int64_t bytes) const {
  double total = 0.0;
  for (const IronmanCall call :
       {IronmanCall::kDR, IronmanCall::kSR, IronmanCall::kDN, IronmanCall::kSV}) {
    total += machine_.primitive_cpu_cost(ironman::binding(library_, call), bytes);
  }
  // The SHMEM prototype's DR synch is a barrier: BOTH endpoints pay the
  // participation overhead, not just the destination.
  if (dr_is_global_synch()) total += machine_.synch_post.overhead;
  return total;
}

std::size_t Transport::in_flight() const {
  std::size_t n = 0;
  for (const auto& [key, ch] : channels_) n += ch.arrivals.size();
  return n;
}

}  // namespace zc::sim
