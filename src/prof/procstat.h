// Process-level cost gauges for the host machine the toolchain runs on,
// published alongside the simulated counters (support/metrics) so run
// reports carry both sides of the host/simulated split.
#pragma once

namespace zc::prof {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 where procfs is unavailable.
long long peak_rss_bytes();

}  // namespace zc::prof
