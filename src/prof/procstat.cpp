#include "src/prof/procstat.h"

#include <cstdio>
#include <cstring>

namespace zc::prof {

long long peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  long long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace zc::prof
