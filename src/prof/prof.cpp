#include "src/prof/prof.h"

#include <cmath>
#include <cstring>
#include <iomanip>
#include <sstream>

namespace zc::prof {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Flamegraph frame names must not contain the folded-format separators.
std::string sanitize_frame(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ') c = '_';
    if (c == ';') c = ':';
  }
  return out;
}

}  // namespace

/// Per-attached-thread state: an interned span tree plus the open-frame
/// stack. Only its owning thread mutates it (no lock on the span fast
/// path); the profiler reads it when aggregating, which callers do after
/// parallel sections complete.
struct Profiler::ThreadState {
  struct Frame {
    int node = -1;
    const char* name = nullptr;  ///< the caller's literal — stable storage
                                 ///< for TimelineEvent (Node::name strings
                                 ///< relocate when `nodes` grows)
    Clock::time_point start;
  };

  Profiler* owner = nullptr;
  std::vector<Node> nodes;
  std::vector<int> roots;
  std::vector<Frame> stack;
  std::vector<TimelineEvent> timeline;
  long long dropped_timeline = 0;

  int find_or_add_child(int parent, const char* name) {
    const std::vector<int>& siblings = parent < 0 ? roots : nodes[parent].children;
    for (const int c : siblings) {
      // Fast path: instrumentation sites pass string literals, so repeat
      // entries usually share the pointer; fall back to a content compare.
      if (nodes[c].name.c_str() == name || nodes[c].name == name) return c;
    }
    const int id = static_cast<int>(nodes.size());
    Node n;
    n.name = name;
    n.parent = parent;
    nodes.push_back(std::move(n));
    (parent < 0 ? roots : nodes[parent].children).push_back(id);
    return id;
  }
};

namespace {

thread_local Profiler::ThreadState* tl_state = nullptr;

}  // namespace

Profiler::Profiler(std::size_t max_timeline_events)
    : epoch_(Clock::now()), max_timeline_events_(max_timeline_events) {}

Profiler::~Profiler() = default;

Profiler::ThreadState* Profiler::register_thread() {
  const std::lock_guard<std::mutex> lock(mu_);
  threads_.push_back(std::make_unique<ThreadState>());
  threads_.back()->owner = this;
  return threads_.back().get();
}

Attach::Attach(Profiler* profiler) : prev_(tl_state) {
  tl_state = profiler == nullptr ? nullptr : profiler->register_thread();
}

Attach::~Attach() { tl_state = static_cast<Profiler::ThreadState*>(prev_); }

Span::Span(const char* name) : state_(tl_state) {
  if (state_ == nullptr) return;  // off: no allocation, no clock read
  auto* s = static_cast<Profiler::ThreadState*>(state_);
  const int parent = s->stack.empty() ? -1 : s->stack.back().node;
  const int node = s->find_or_add_child(parent, name);
  s->nodes[node].count += 1;
  s->stack.push_back({node, name, Clock::now()});
}

Span::~Span() {
  if (state_ == nullptr) return;
  auto* s = static_cast<Profiler::ThreadState*>(state_);
  const Clock::time_point end = Clock::now();
  const Profiler::ThreadState::Frame frame = s->stack.back();
  s->stack.pop_back();
  s->nodes[frame.node].total_seconds += seconds_between(frame.start, end);
  if (s->timeline.size() < s->owner->max_timeline_events_) {
    TimelineEvent e;
    e.name = frame.name;
    e.t_begin = seconds_between(s->owner->epoch_, frame.start);
    e.t_end = seconds_between(s->owner->epoch_, end);
    e.depth = static_cast<int>(s->stack.size());
    s->timeline.push_back(e);
  } else {
    s->dropped_timeline += 1;
  }
}

void add_bytes(long long n) {
  Profiler::ThreadState* s = tl_state;
  if (s == nullptr || s->stack.empty()) return;
  s->nodes[s->stack.back().node].bytes += n;
}

bool enabled() { return tl_state != nullptr; }

double Profiler::Tree::self_seconds(int node) const {
  double children_total = 0.0;
  for (const int c : nodes[node].children) children_total += nodes[c].total_seconds;
  return nodes[node].total_seconds - children_total;
}

double Profiler::Tree::wall_seconds() const {
  double total = 0.0;
  for (const int r : roots) total += nodes[r].total_seconds;
  return total;
}

namespace {

/// Merges thread-tree node `src` (with open-frame `extra` time) into the
/// merged tree under `dst_parent` (-1 = a root), combining by name.
void merge_node(const std::vector<Node>& src_nodes, int src, const std::vector<double>& extra,
                Profiler::Tree& out, int dst_parent) {
  std::vector<int>& siblings = dst_parent < 0 ? out.roots : out.nodes[dst_parent].children;
  int dst = -1;
  for (const int c : siblings) {
    if (out.nodes[c].name == src_nodes[src].name) {
      dst = c;
      break;
    }
  }
  if (dst < 0) {
    dst = static_cast<int>(out.nodes.size());
    Node n;
    n.name = src_nodes[src].name;
    n.parent = dst_parent;
    out.nodes.push_back(std::move(n));
    // Re-fetch: out.nodes may have reallocated, invalidating `siblings`.
    (dst_parent < 0 ? out.roots : out.nodes[dst_parent].children).push_back(dst);
  }
  out.nodes[dst].count += src_nodes[src].count;
  out.nodes[dst].total_seconds += src_nodes[src].total_seconds + extra[src];
  out.nodes[dst].bytes += src_nodes[src].bytes;
  for (const int c : src_nodes[src].children) merge_node(src_nodes, c, extra, out, dst);
}

}  // namespace

Profiler::Tree Profiler::tree() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Tree out;
  const Clock::time_point now = Clock::now();
  for (const std::unique_ptr<ThreadState>& ts : threads_) {
    std::vector<double> extra(ts->nodes.size(), 0.0);
    for (const ThreadState::Frame& f : ts->stack) {
      extra[f.node] += seconds_between(f.start, now);
    }
    for (const int r : ts->roots) merge_node(ts->nodes, r, extra, out, -1);
  }
  return out;
}

namespace {

void flat_node(const Profiler::Tree& t, int node, int depth, const std::string& prefix,
               int max_depth, std::vector<Profiler::FlatSpan>& out) {
  if (max_depth > 0 && depth >= max_depth) return;
  const Node& n = t.nodes[node];
  Profiler::FlatSpan row;
  row.path = prefix.empty() ? n.name : prefix + "/" + n.name;
  row.depth = depth;
  row.count = n.count;
  row.total_seconds = n.total_seconds;
  row.self_seconds = t.self_seconds(node);
  const std::string path = row.path;
  out.push_back(std::move(row));
  for (const int c : n.children) flat_node(t, c, depth + 1, path, max_depth, out);
}

}  // namespace

std::vector<Profiler::FlatSpan> Profiler::flat(int max_depth) const {
  const Tree t = tree();
  std::vector<FlatSpan> out;
  out.reserve(t.nodes.size());
  for (const int r : t.roots) flat_node(t, r, 0, "", max_depth, out);
  return out;
}

namespace {

void text_node(const Profiler::Tree& t, int node, int depth, std::ostringstream& os) {
  const Node& n = t.nodes[node];
  std::string name(static_cast<std::size_t>(2 * depth), ' ');
  name += n.name;
  if (name.size() < 36) name.resize(36, ' ');
  os << "  " << name << std::setw(8) << n.count << std::setw(12) << std::fixed
     << std::setprecision(3) << n.total_seconds * 1e3 << std::setw(12)
     << t.self_seconds(node) * 1e3 << std::setw(14) << n.bytes << "\n";
  for (const int c : n.children) text_node(t, c, depth + 1, os);
}

}  // namespace

std::string Profiler::to_text() const {
  const Tree t = tree();
  std::ostringstream os;
  os << "host profile: wall " << std::fixed << std::setprecision(3) << t.wall_seconds() * 1e3
     << " ms, " << t.nodes.size() << " span(s)\n";
  if (t.nodes.empty()) return os.str();
  std::string header = "  span";
  header.resize(38, ' ');
  os << header << "   count    total ms     self ms         bytes\n";
  for (const int r : t.roots) text_node(t, r, 0, os);
  return os.str();
}

namespace {

void folded_node(const Profiler::Tree& t, int node, const std::string& prefix,
                 std::ostringstream& os) {
  const Node& n = t.nodes[node];
  const std::string path =
      prefix.empty() ? sanitize_frame(n.name) : prefix + ";" + sanitize_frame(n.name);
  const long long self_us = std::llround(t.self_seconds(node) * 1e6);
  if (self_us > 0) os << path << " " << self_us << "\n";
  for (const int c : n.children) folded_node(t, c, path, os);
}

}  // namespace

std::string Profiler::to_folded() const {
  const Tree t = tree();
  std::ostringstream os;
  for (const int r : t.roots) folded_node(t, r, "", os);
  return os.str();
}

namespace {

json::Value json_node(const Profiler::Tree& t, int node) {
  const Node& n = t.nodes[node];
  json::Value v = json::Value::make_object();
  v["name"] = json::Value::make_str(n.name);
  v["count"] = json::Value::make_int(n.count);
  v["total_seconds"] = json::Value::make_num(n.total_seconds);
  v["self_seconds"] = json::Value::make_num(t.self_seconds(node));
  v["bytes"] = json::Value::make_int(n.bytes);
  json::Value children = json::Value::make_array();
  for (const int c : n.children) children.push_back(json_node(t, c));
  v["children"] = std::move(children);
  return v;
}

}  // namespace

json::Value Profiler::to_json() const {
  const Tree t = tree();
  json::Value v = json::Value::make_object();
  v["wall_seconds"] = json::Value::make_num(t.wall_seconds());
  json::Value spans = json::Value::make_array();
  for (const int r : t.roots) spans.push_back(json_node(t, r));
  v["spans"] = std::move(spans);
  return v;
}

int Profiler::thread_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

std::vector<TimelineEvent> Profiler::timeline(int thread) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return threads_.at(static_cast<std::size_t>(thread))->timeline;
}

long long Profiler::dropped_timeline_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  long long dropped = 0;
  for (const std::unique_ptr<ThreadState>& ts : threads_) dropped += ts->dropped_timeline;
  return dropped;
}

}  // namespace zc::prof
