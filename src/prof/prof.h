// Host-side hierarchical profiler for the toolchain itself: where does
// `plan_communication`, the engine, or an analysis pass spend *real* CPU
// time and memory — as opposed to src/trace, which records the *simulated*
// machine's virtual time.
//
// Model: RAII scoped spans (`Span`, usually via ZC_PROF_SPAN) push onto a
// thread-local span stack; closing a span accumulates its wall time
// (steady_clock) into a per-thread tree node keyed by (parent, name).
// `add_bytes` attributes instrumented allocations to the innermost open
// span. `Profiler::tree()` merges the per-thread trees by path into one
// aggregate span tree (count, total/self seconds, bytes per node);
// currently-open frames contribute their elapsed-so-far time, so the root
// total tracks end-to-end wall time even when snapshotted mid-run.
//
// Zero-overhead-off contract (mirrors src/trace and src/report/passlog):
// the profiler is opt-in via `Attach`; with no profiler attached to the
// calling thread a Span constructor is a single thread-local pointer test —
// no allocation, no clock reads — and every instrumented subsystem produces
// bit-identical outputs profiled or not (checked by tests/prof_test.cpp and
// bench_prof_overhead).
//
// Exports: a text tree (`to_text`), folded stack lines for flamegraph.pl
// (`to_folded`), nested JSON for run reports (`to_json`), and a bounded
// per-thread timeline of completed spans that src/trace/chrome renders as
// host tracks next to the simulated timeline.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace zc::prof {

/// One node of an aggregated span tree (per-thread or merged).
struct Node {
  std::string name;
  int parent = -1;  ///< index into the owning tree's nodes; -1 = root
  long long count = 0;
  double total_seconds = 0.0;
  long long bytes = 0;  ///< instrumented allocations attributed here
  std::vector<int> children;  ///< indices into the owning tree's nodes
};

/// A completed span occurrence, for the Chrome timeline export. Times are
/// host seconds relative to the profiler's construction.
struct TimelineEvent {
  const char* name = nullptr;
  double t_begin = 0.0;
  double t_end = 0.0;
  int depth = 0;  ///< stack depth at entry (0 = a root span)
};

class Profiler {
 public:
  /// `max_timeline_events` bounds the per-thread completed-span timeline
  /// kept for the Chrome export (further spans are counted as dropped; the
  /// aggregate tree is always exact, like trace::Recorder's aggregates).
  explicit Profiler(std::size_t max_timeline_events = 1 << 16);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The merged span tree over every thread that ever attached. Children
  /// are merged by name; `roots` index the top-level spans. Open frames are
  /// included with their elapsed-so-far time (their count already includes
  /// the in-progress entry).
  struct Tree {
    std::vector<Node> nodes;
    std::vector<int> roots;

    /// total − Σ children's totals; ≥ 0 by construction (children nest
    /// within their parent on the same clock).
    [[nodiscard]] double self_seconds(int node) const;
    /// Σ root totals — the profiled wall time.
    [[nodiscard]] double wall_seconds() const;
  };
  [[nodiscard]] Tree tree() const;

  /// One row of the flattened snapshot below.
  struct FlatSpan {
    std::string path;  ///< '/'-joined span names from the root
    int depth = 0;     ///< 0 = a root span
    long long count = 0;
    double total_seconds = 0.0;
    double self_seconds = 0.0;
  };

  /// The merged tree as depth-first rows — the span snapshot the serve
  /// flight recorder embeds per request. `max_depth` > 0 keeps only rows
  /// with depth < max_depth (1 = roots only); <= 0 keeps everything.
  /// Each kept row's total still includes its pruned descendants.
  [[nodiscard]] std::vector<FlatSpan> flat(int max_depth = 0) const;

  /// Indented text tree: count, total/self ms, bytes per node, preceded by
  /// a wall-time header (comm_explorer --profile).
  [[nodiscard]] std::string to_text() const;

  /// Folded stack lines for flamegraph.pl: `root;child;leaf <self_us>`,
  /// one line per node, frame names sanitized (no ' ' or ';'). Values are
  /// self times in integer microseconds.
  [[nodiscard]] std::string to_folded() const;

  /// {"wall_seconds": W, "spans": [{name, count, total_seconds,
  ///  self_seconds, bytes, children: [...]}, ...]} — the run report's
  /// host_profile payload (minus process gauges, which the report adds).
  [[nodiscard]] json::Value to_json() const;

  /// Per-thread completed-span timelines for the Chrome export, in thread
  /// registration order. Labels are "host thread N".
  [[nodiscard]] int thread_count() const;
  [[nodiscard]] std::vector<TimelineEvent> timeline(int thread) const;
  [[nodiscard]] long long dropped_timeline_events() const;

  /// Opaque per-attached-thread state (defined in prof.cpp; public only so
  /// the thread-local current-profiler pointer can name it).
  struct ThreadState;

 private:
  friend class Attach;
  friend class Span;
  friend void add_bytes(long long n);

  ThreadState* register_thread();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t max_timeline_events_;
};

/// RAII: makes `profiler` (which may be null — a no-op) the calling
/// thread's current profiler for its lifetime, restoring the previous one
/// on destruction. Each attaching thread gets its own span stack; stacks
/// never interleave across threads.
class Attach {
 public:
  explicit Attach(Profiler* profiler);
  ~Attach();
  Attach(const Attach&) = delete;
  Attach& operator=(const Attach&) = delete;

 private:
  void* prev_ = nullptr;  // the thread's previous ThreadState*
};

/// A scoped span. `name` must outlive the profiler (string literals only —
/// the tree and timeline keep the pointer until aggregation).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void* state_ = nullptr;  // ThreadState* captured at entry; null = off
};

/// Attributes `n` bytes of instrumented allocation to the calling thread's
/// innermost open span. No-op without an attached profiler or open span.
void add_bytes(long long n);

/// True iff the calling thread currently has a profiler attached — lets
/// instrumentation sites skip byte-accounting work entirely when off.
[[nodiscard]] bool enabled();

#define ZC_PROF_CAT2(a, b) a##b
#define ZC_PROF_CAT(a, b) ZC_PROF_CAT2(a, b)
/// Opens a span for the rest of the enclosing scope.
#define ZC_PROF_SPAN(name) ::zc::prof::Span ZC_PROF_CAT(zc_prof_span_, __LINE__)(name)

}  // namespace zc::prof
