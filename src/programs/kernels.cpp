// Small kernels used by tests and examples (not part of the paper's suite).
#include "src/programs/sources.h"

namespace zc::programs {

const std::string_view kJacobiSource = R"zpl(
program jacobi;

config n     : integer = 64;
config iters : integer = 10;

region R = [0..n+1, 0..n+1];
region I = [1..n, 1..n];

direction east = [0, 1], west = [0, -1], north = [-1, 0], south = [1, 0];

var A, B : [R] double;
var err  : double;

procedure main() {
  [R] A := 0.0;
  [R] B := 0.0;
  [0..n+1, 0] A := 1.0;          -- hot west border
  [0, 0..n+1] A := 1.0;          -- hot north border
  for it in 1..iters {
    [I] B := 0.25 * (A@east + A@west + A@north + A@south);
    [I] err := max<< abs(B - A);
    [I] A := B;
  }
}
)zpl";

const std::string_view kLifeSource = R"zpl(
program life;

config n     : integer = 32;
config gens  : integer = 8;

region R = [0..n+1, 0..n+1];
region I = [1..n, 1..n];

direction east = [0, 1],  west = [0, -1], north = [-1, 0], south = [1, 0],
          ne   = [-1, 1], nw   = [-1, -1], se = [1, 1],    sw   = [1, -1];

var W, NN : [R] double;  -- world and neighbor counts (0.0 / 1.0 cells)
var alive : double;

procedure main() {
  [R] W := 0.0;
  -- A pseudo-random soup: cell alive iff a hash-ish trig expression is
  -- positive; deterministic and partition-independent.
  [I] W := (sin(12.9898 * Index1 + 78.233 * Index2) > 0.3) * 1.0;
  for g in 1..gens {
    [I] NN := W@east + W@west + W@north + W@south + W@ne + W@nw + W@se + W@sw;
    [I] W := max(0.0, min(1.0, (NN == 3.0) + W * (NN == 2.0)));
    [I] alive := +<< W;
  }
}
)zpl";

const std::string_view kHeat3dSource = R"zpl(
program heat3d;

config n     : integer = 12;
config iters : integer = 6;

region R = [0..n+1, 0..n+1, 0..n+1];
region I = [1..n, 1..n, 1..n];

direction ip = [1, 0, 0], im = [-1, 0, 0],
          jp = [0, 1, 0], jm = [0, -1, 0],
          kp = [0, 0, 1], km = [0, 0, -1];

var T, TN : [R] double;
var tmax  : double;

procedure main() {
  [R] T := 0.0;
  [I] T := sin(0.5 * Index1) * sin(0.4 * Index2) * sin(0.3 * Index3);
  for it in 1..iters {
    [I] TN := T + 0.1 * (T@ip + T@im + T@jp + T@jm + T@kp + T@km - 6.0 * T);
    [I] T := TN;
    [I] tmax := max<< abs(T);
  }
}
)zpl";

}  // namespace zc::programs
