// SP: a 3-D ADI (approximate-factorization) CFD kernel in the mold of the
// NAS SP application benchmark: five solution components, directional flux
// phases, fourth-order artificial dissipation (radius-2 stencils), a 3-D
// stencil RHS, then line solves swept along each dimension. The x and y
// sweeps serialize across processor rows/columns (the paper's "inherently
// sequential" phases that make the heavyweight SHMEM prototype lose); the
// z sweep and every k-direction shift are communication-free because the
// third dimension is processor-local under the 2-D block distribution.
#include "src/programs/sources.h"

namespace zc::programs {

const std::string_view kSpSource = R"zpl(
program sp;

config n     : integer = 16;
config iters : integer = 50;

region R3 = [1..n, 1..n, 1..n];
region I3 = [2..n-1, 2..n-1, 2..n-1];
region D3 = [3..n-2, 3..n-2, 3..n-2];  -- dissipation interior (radius 2)

direction ip  = [1, 0, 0],  im  = [-1, 0, 0],
          jp  = [0, 1, 0],  jm  = [0, -1, 0],
          kp  = [0, 0, 1],  km  = [0, 0, -1],
          ip2 = [2, 0, 0],  im2 = [-2, 0, 0],
          jp2 = [0, 2, 0],  jm2 = [0, -2, 0],
          kp2 = [0, 0, 2],  km2 = [0, 0, -2];

var U1, U2, U3, U4, U5  : [R3] double;  -- density, 3 momenta, energy
var R1, R2, R3V, R4, R5 : [R3] double;  -- right-hand sides
var G1, G2, G3, G4, G5  : [R3] double;  -- directional fluxes
var T1, T2, T3, T4, T5  : [R3] double;  -- sweep workspace
var PF                  : [R3] double;  -- elimination factor
var SPD                 : [R3] double;  -- speed-of-sound-ish field
var rnorm               : double;

procedure init() {
  [R3] U1 := 1.0 + 0.1 * sin(0.3 * Index1) * cos(0.2 * Index2) * sin(0.25 * Index3);
  [R3] U2 := 0.1 * cos(0.2 * Index1) * sin(0.3 * Index3);
  [R3] U3 := 0.1 * sin(0.25 * Index2) * cos(0.2 * Index3);
  [R3] U4 := 0.1 * cos(0.3 * Index1) * sin(0.2 * Index2);
  [R3] U5 := 2.0 + 0.1 * cos(0.15 * Index1 * Index2);
  [R3] R1 := 0.0;
  [R3] R2 := 0.0;
  [R3] R3V := 0.0;
  [R3] R4 := 0.0;
  [R3] R5 := 0.0;
  [R3] G1 := 0.0;
  [R3] G2 := 0.0;
  [R3] G3 := 0.0;
  [R3] G4 := 0.0;
  [R3] G5 := 0.0;
  [R3] T1 := 0.0;
  [R3] T2 := 0.0;
  [R3] T3 := 0.0;
  [R3] T4 := 0.0;
  [R3] T5 := 0.0;
  [R3] PF := 0.3;
  [R3] SPD := 1.0;
}

-- xi-direction fluxes: central differences of each component, with
-- pressure/velocity coupling through U1 and SPD.
procedure flux_x() {
  [I3] SPD := sqrt(abs(U5 / U1)) + 0.1;
  [I3] G1 := 0.05 * (U2@ip - U2@im);
  [I3] G2 := 0.05 * (U2@ip * U2@ip - U2@im * U2@im) + 0.01 * (U1@ip - U1@im) * SPD;
  [I3] G3 := 0.05 * (U3@ip - U3@im) * U2;
  [I3] G4 := 0.05 * (U4@ip - U4@im) * U2;
  [I3] G5 := 0.05 * (U5@ip - U5@im) * U2 + 0.01 * (U2@ip - U2@im) * SPD;
}

-- eta-direction fluxes accumulate into the same flux arrays.
procedure flux_y() {
  [I3] G1 := G1 + 0.05 * (U3@jp - U3@jm);
  [I3] G2 := G2 + 0.05 * (U2@jp - U2@jm) * U3;
  [I3] G3 := G3 + 0.05 * (U3@jp * U3@jp - U3@jm * U3@jm) + 0.01 * (U1@jp - U1@jm) * SPD;
  [I3] G4 := G4 + 0.05 * (U4@jp - U4@jm) * U3;
  [I3] G5 := G5 + 0.05 * (U5@jp - U5@jm) * U3 + 0.01 * (U3@jp - U3@jm) * SPD;
}

-- zeta-direction fluxes: processor-local (no communication is generated
-- for k-direction shifts under the 2-D distribution).
procedure flux_z() {
  [I3] G1 := G1 + 0.05 * (U4@kp - U4@km);
  [I3] G2 := G2 + 0.05 * (U2@kp - U2@km) * U4;
  [I3] G3 := G3 + 0.05 * (U3@kp - U3@km) * U4;
  [I3] G4 := G4 + 0.05 * (U4@kp * U4@kp - U4@km * U4@km) + 0.01 * (U1@kp - U1@km) * SPD;
  [I3] G5 := G5 + 0.05 * (U5@kp - U5@km) * U4 + 0.01 * (U4@kp - U4@km) * SPD;
}

-- Fourth-order artificial dissipation: radius-2 stencils in all three
-- dimensions (k-direction again free).
procedure dissipation() {
  [D3] G1 := G1 - 0.01 * (U1@ip2 + U1@im2 + U1@jp2 + U1@jm2 + U1@kp2 + U1@km2 - 6.0 * U1);
  [D3] G2 := G2 - 0.01 * (U2@ip2 + U2@im2 + U2@jp2 + U2@jm2 + U2@kp2 + U2@km2 - 6.0 * U2);
  [D3] G3 := G3 - 0.01 * (U3@ip2 + U3@im2 + U3@jp2 + U3@jm2 + U3@kp2 + U3@km2 - 6.0 * U3);
  [D3] G4 := G4 - 0.01 * (U4@ip2 + U4@im2 + U4@jp2 + U4@jm2 + U4@kp2 + U4@km2 - 6.0 * U4);
  [D3] G5 := G5 - 0.01 * (U5@ip2 + U5@im2 + U5@jp2 + U5@jm2 + U5@kp2 + U5@km2 - 6.0 * U5);
}

-- Assemble the right-hand sides: a 3-D Laplacian of each component plus
-- the flux divergence. The U1 face slices recur across the five
-- statements — redundant communication food.
procedure compute_rhs() {
  [I3] R1 := 0.05 * (U1@ip + U1@im + U1@jp + U1@jm + U1@kp + U1@km - 6.0 * U1) - 0.1 * G1;
  [I3] R2 := 0.05 * (U2@ip + U2@im + U2@jp + U2@jm + U2@kp + U2@km - 6.0 * U2) - 0.1 * G2
             - 0.01 * (U1@ip - U1@im) * SPD;
  [I3] R3V := 0.05 * (U3@ip + U3@im + U3@jp + U3@jm + U3@kp + U3@km - 6.0 * U3) - 0.1 * G3
             - 0.01 * (U1@jp - U1@jm) * SPD;
  [I3] R4 := 0.05 * (U4@ip + U4@im + U4@jp + U4@jm + U4@kp + U4@km - 6.0 * U4) - 0.1 * G4
             - 0.01 * (U1@kp - U1@km) * SPD;
  [I3] R5 := 0.05 * (U5@ip + U5@im + U5@jp + U5@jm + U5@kp + U5@km - 6.0 * U5) - 0.1 * G5
             - 0.005 * (U2@ip - U2@im + U3@jp - U3@jm + U4@kp - U4@km);
}

-- Line solve along dimension 1: forward elimination south, then backward
-- substitution north; serializes across processor rows.
procedure x_solve() {
  [2, 1..n, 1..n] PF := 0.3;
  [2, 1..n, 1..n] T1 := 0.3 * R1;
  [2, 1..n, 1..n] T2 := 0.3 * R2;
  [2, 1..n, 1..n] T3 := 0.3 * R3V;
  [2, 1..n, 1..n] T4 := 0.3 * R4;
  [2, 1..n, 1..n] T5 := 0.3 * R5;
  -- As in NAS SP, the momentum/energy factors are pre-scaled in place each
  -- step before their row is eliminated: the write splits their feasible
  -- send intervals away from PF/T1's, so most sweep communications cannot
  -- legally combine (the paper's SP also keeps most of its sweep comms).
  for i in 3..n-1 {
    [i, 1..n, 1..n] PF := 1.0 / (3.4 - PF@im);
    [i, 1..n, 1..n] T1 := (R1 + T1@im) * PF;
    [i, 1..n, 1..n] T2 := 0.6 * T2 + 0.4 * R2;
    [i, 1..n, 1..n] T2 := (T2 + T2@im) * PF;
    [i, 1..n, 1..n] T3 := 0.6 * T3 + 0.4 * R3V;
    [i, 1..n, 1..n] T3 := (T3 + T3@im) * PF;
    [i, 1..n, 1..n] T4 := 0.6 * T4 + 0.4 * R4;
    [i, 1..n, 1..n] T4 := (T4 + T4@im) * PF;
    [i, 1..n, 1..n] T5 := 0.6 * T5 + 0.4 * R5;
    [i, 1..n, 1..n] T5 := (T5 + T5@im) * PF;
  }
  for i in n-2..2 by -1 {
    [i, 1..n, 1..n] T1 := T1 + PF * T1@ip;
    [i, 1..n, 1..n] T2 := 0.9 * T2 + 0.02 * T1;
    [i, 1..n, 1..n] T2 := T2 + PF * T2@ip;
    [i, 1..n, 1..n] T3 := 0.9 * T3 + 0.02 * T1;
    [i, 1..n, 1..n] T3 := T3 + PF * T3@ip;
    [i, 1..n, 1..n] T4 := 0.9 * T4 + 0.02 * T1;
    [i, 1..n, 1..n] T4 := T4 + PF * T4@ip;
    [i, 1..n, 1..n] T5 := 0.9 * T5 + 0.02 * T1;
    [i, 1..n, 1..n] T5 := T5 + PF * T5@ip;
  }
}

-- Line solve along dimension 2: serializes across processor columns.
procedure y_solve() {
  [1..n, 2, 1..n] PF := 0.3;
  [1..n, 2, 1..n] T1 := T1 + 0.3 * R1;
  [1..n, 2, 1..n] T2 := T2 + 0.3 * R2;
  [1..n, 2, 1..n] T3 := T3 + 0.3 * R3V;
  [1..n, 2, 1..n] T4 := T4 + 0.3 * R4;
  [1..n, 2, 1..n] T5 := T5 + 0.3 * R5;
  for j in 3..n-1 {
    [1..n, j, 1..n] PF := 1.0 / (3.4 - PF@jm);
    [1..n, j, 1..n] T1 := (T1 + T1@jm) * PF;
    [1..n, j, 1..n] T2 := 0.6 * T2 + 0.01 * T1;
    [1..n, j, 1..n] T2 := (T2 + T2@jm) * PF;
    [1..n, j, 1..n] T3 := 0.6 * T3 + 0.01 * T1;
    [1..n, j, 1..n] T3 := (T3 + T3@jm) * PF;
    [1..n, j, 1..n] T4 := 0.6 * T4 + 0.01 * T1;
    [1..n, j, 1..n] T4 := (T4 + T4@jm) * PF;
    [1..n, j, 1..n] T5 := 0.6 * T5 + 0.01 * T1;
    [1..n, j, 1..n] T5 := (T5 + T5@jm) * PF;
  }
  for j in n-2..2 by -1 {
    [1..n, j, 1..n] T1 := T1 + PF * T1@jp;
    [1..n, j, 1..n] T2 := 0.9 * T2 + 0.02 * T1;
    [1..n, j, 1..n] T2 := T2 + PF * T2@jp;
    [1..n, j, 1..n] T3 := 0.9 * T3 + 0.02 * T1;
    [1..n, j, 1..n] T3 := T3 + PF * T3@jp;
    [1..n, j, 1..n] T4 := 0.9 * T4 + 0.02 * T1;
    [1..n, j, 1..n] T4 := T4 + PF * T4@jp;
    [1..n, j, 1..n] T5 := 0.9 * T5 + 0.02 * T1;
    [1..n, j, 1..n] T5 := T5 + PF * T5@jp;
  }
}

-- Line solve along dimension 3: the sweep runs entirely within each
-- processor (no communication is generated for kp/km shifts).
procedure z_solve() {
  [1..n, 1..n, 2] PF := 0.3;
  [1..n, 1..n, 2] T1 := T1 + 0.3 * R1;
  [1..n, 1..n, 2] T5 := T5 + 0.3 * R5;
  for k in 3..n-1 {
    [1..n, 1..n, k] PF := 1.0 / (3.4 - PF@km);
    [1..n, 1..n, k] T1 := (T1 + T1@km) * PF;
    [1..n, 1..n, k] T2 := (T2 + T2@km) * PF;
    [1..n, 1..n, k] T3 := (T3 + T3@km) * PF;
    [1..n, 1..n, k] T4 := (T4 + T4@km) * PF;
    [1..n, 1..n, k] T5 := (T5 + T5@km) * PF;
  }
  for k in n-2..2 by -1 {
    [1..n, 1..n, k] T1 := T1 + PF * T1@kp;
    [1..n, 1..n, k] T2 := T2 + PF * T2@kp;
    [1..n, 1..n, k] T3 := T3 + PF * T3@kp;
    [1..n, 1..n, k] T4 := T4 + PF * T4@kp;
    [1..n, 1..n, k] T5 := T5 + PF * T5@kp;
  }
}

procedure add_update() {
  [I3] U1 := U1 + 0.2 * T1;
  [I3] U2 := U2 + 0.2 * T2;
  [I3] U3 := U3 + 0.2 * T3;
  [I3] U4 := U4 + 0.2 * T4;
  [I3] U5 := U5 + 0.2 * T5;
  [I3] rnorm := max<< (abs(T1) + abs(T5));
}

procedure main() {
  init();
  for it in 1..iters {
    flux_x();
    flux_y();
    flux_z();
    dissipation();
    compute_rhs();
    x_solve();
    y_solve();
    z_solve();
    add_update();
  }
}
)zpl";

}  // namespace zc::programs
