// The benchmark suite of the paper's Figure 7, ported to mini-ZPL, plus
// small kernels used by tests and examples. Sources are embedded so every
// binary is self-contained.
//
// Port fidelity notes (full discussion in DESIGN.md):
//  - TOMCATV: the main stencil block is the paper's Figure 4 verbatim; the
//    Thompson tri-diagonal solver is expressed as row sweeps over
//    loop-indexed regions, giving the cross-loop dependences and short
//    code sequences that the paper says limit pipelining.
//  - SWM: the shallow-water main loop (fluxes/vorticity, time update, time
//    shift, boundary rows) with the standard 13 arrays.
//  - SIMPLE: a 2-D staggered-mesh Lagrangian hydrodynamics cycle
//    (predict/correct, EOS, artificial viscosity, heat conduction) — many
//    statements, all communication in the main body.
//  - SP: a 3-D ADI kernel in the NAS-SP mold: RHS stencils plus x/y/z line
//    sweeps; the z sweep needs no communication (dim 2 is processor-local).
// Update coefficients are chosen contractive so every benchmark is
// numerically stable for arbitrary iteration counts (checksums stay finite;
// the communication structure is what the experiments measure).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace zc::programs {

struct BenchmarkInfo {
  std::string name;
  std::string description;         ///< the paper's Figure 7 description
  std::string_view source;         ///< mini-ZPL text
  std::string size_label;          ///< e.g. "128x128" (paper's table headers)
  /// Paper-scale problem settings (the appendix tables' configurations).
  std::map<std::string, long long> paper_configs;
  /// Reduced settings for fast test runs (same structure, smaller/fewer).
  std::map<std::string, long long> test_configs;
};

/// The four programs of Figure 7, in paper order.
const std::vector<BenchmarkInfo>& benchmark_suite();

/// Benchmark by name ("tomcatv", "swm", "simple", "sp"); throws zc::Error
/// if unknown.
const BenchmarkInfo& benchmark(std::string_view name);

/// Small kernel sources for tests/examples: "jacobi", "life", "heat3d".
std::string_view kernel_source(std::string_view name);

}  // namespace zc::programs
