#include "src/programs/programs.h"

#include "src/programs/sources.h"
#include "src/support/diag.h"

namespace zc::programs {

const std::vector<BenchmarkInfo>& benchmark_suite() {
  static const std::vector<BenchmarkInfo> suite = {
      {
          "tomcatv",
          "Thompson solver and grid generation (SPEC)",
          kTomcatvSource,
          "128x128",
          {{"n", 128}, {"iters", 100}},
          {{"n", 40}, {"iters", 4}},
      },
      {
          "swm",
          "Weather prediction (shallow water model)",
          kSwmSource,
          "512x512",
          {{"n", 512}, {"iters", 40}},
          {{"n", 48}, {"iters", 4}},
      },
      {
          "simple",
          "Hydrodynamics simulation (Livermore Labs)",
          kSimpleSource,
          "256x256",
          {{"n", 256}, {"iters", 25}},
          {{"n", 40}, {"iters", 3}},
      },
      {
          "sp",
          "CFD computation (NAS Application Benchmarks)",
          kSpSource,
          "16x16x16",
          {{"n", 16}, {"iters", 50}},
          {{"n", 12}, {"iters", 3}},
      },
  };
  return suite;
}

const BenchmarkInfo& benchmark(std::string_view name) {
  for (const BenchmarkInfo& b : benchmark_suite()) {
    if (b.name == name) return b;
  }
  throw Error("unknown benchmark '" + std::string(name) + "'");
}

std::string_view kernel_source(std::string_view name) {
  if (name == "jacobi") return kJacobiSource;
  if (name == "life") return kLifeSource;
  if (name == "heat3d") return kHeat3dSource;
  throw Error("unknown kernel '" + std::string(name) + "'");
}

}  // namespace zc::programs
