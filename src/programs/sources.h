// Internal: the embedded mini-ZPL sources, one per translation unit.
#pragma once

#include <string_view>

namespace zc::programs {

extern const std::string_view kTomcatvSource;
extern const std::string_view kSwmSource;
extern const std::string_view kSimpleSource;
extern const std::string_view kSpSource;
extern const std::string_view kJacobiSource;
extern const std::string_view kLifeSource;
extern const std::string_view kHeat3dSource;

}  // namespace zc::programs
