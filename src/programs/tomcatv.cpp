// TOMCATV (SPEC): Thompson solver and grid generation. The main stencil
// block reproduces the paper's Figure 4; the tri-diagonal solves run as
// forward/backward row sweeps whose cross-loop dependences limit
// pipelining, exactly the behaviour the paper reports for this benchmark.
#include "src/programs/sources.h"

namespace zc::programs {

const std::string_view kTomcatvSource = R"zpl(
program tomcatv;

config n     : integer = 128;
config iters : integer = 100;

region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];

direction east  = [0, 1],  west  = [0, -1],
          north = [-1, 0], south = [1, 0],
          ne    = [-1, 1], nw    = [-1, -1],
          se    = [1, 1],  sw    = [1, -1];

var X, Y                  : [R] double;   -- grid coordinates
var XX, YX, XY, YY        : [R] double;   -- metric terms
var AA, BB, CC            : [R] double;   -- coefficients
var RX, RY                : [R] double;   -- residuals
var PP, QX, QY            : [R] double;   -- solver workspace
var DX, DY                : [R] double;   -- corrections
var resid                 : double;

procedure init() {
  -- Initial algebraic grid, slightly perturbed.
  [R] X := Index2 + 0.02 * Index1 * sin(0.05 * Index2);
  [R] Y := Index1 + 0.02 * Index2 * sin(0.05 * Index1);
  [R] PP := 0.0;
  [R] QX := 0.0;
  [R] QY := 0.0;
  [R] DX := 0.0;
  [R] DY := 0.0;
  [R] XX := 0.0;
  [R] YX := 0.0;
  [R] XY := 0.0;
  [R] YY := 0.0;
  [R] AA := 0.0;
  [R] BB := 0.0;
  [R] CC := 0.0;
  [R] RX := 0.0;
  [R] RY := 0.0;
  -- Pre-smooth the grid. The second stencil pair re-reads the same slices
  -- without intervening writes: classic redundant set-up communication.
  [I] XX := 0.5 * X + 0.125 * (X@east + X@west + X@north + X@south);
  [I] YY := 0.5 * Y + 0.125 * (Y@east + Y@west + Y@north + Y@south);
  [I] XY := X@east - X@west + Y@north - Y@south;
  [I] YX := X@east + X@west - Y@north - Y@south;
  [I] X := XX;
  [I] Y := YY;
}

procedure main() {
  init();
  for it in 1..iters {
    -- Main stencil block: the paper's Figure 4, verbatim.
    [I] XX := X@east - X@west;
    [I] YX := Y@east - Y@west;
    [I] XY := X@south - X@north;
    [I] YY := Y@south - Y@north;
    [I] AA := 0.250 * (XY * XY + YY * YY);
    [I] BB := 0.250 * (XX * XX + YX * YX);
    [I] CC := 0.125 * (XX * XY + YX * YY);
    [I] RX := AA * (X@east - 2.0 * X + X@west) + BB * (X@south - 2.0 * X + X@north)
              - CC * (X@se - X@ne - X@sw + X@nw);
    [I] RY := AA * (Y@east - 2.0 * Y + Y@west) + BB * (Y@south - 2.0 * Y + Y@north)
              - CC * (Y@se - Y@ne - Y@sw + Y@nw);

    -- Thompson tri-diagonal solves along the first dimension, for the X and
    -- Y systems together. Forward elimination sweeps south; the row regions
    -- serialize across processor rows.
    [2, 2..n-1] PP := 0.25;
    [2, 2..n-1] QX := 0.25 * RX;
    [2, 2..n-1] QY := 0.25 * RY;
    for i in 3..n-1 {
      [i, 2..n-1] PP := 1.0 / (4.0 - PP@north);
      [i, 2..n-1] QX := (RX + QX@north) * PP;
      [i, 2..n-1] QY := (RY + QY@north) * PP;
    }
    -- Backward substitution sweeps north.
    [n-1, 2..n-1] DX := QX;
    [n-1, 2..n-1] DY := QY;
    for i in n-2..2 by -1 {
      [i, 2..n-1] DX := QX + PP * DX@south;
      [i, 2..n-1] DY := QY + PP * DY@south;
    }

    -- Residual and grid update.
    [I] resid := max<< (abs(DX) + abs(DY));
    [I] X := X + 0.8 * DX;
    [I] Y := Y + 0.8 * DY;
  }
}
)zpl";

}  // namespace zc::programs
