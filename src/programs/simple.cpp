// SIMPLE: the Livermore Lagrangian hydrodynamics benchmark. The cycle runs
// as a sequence of phase procedures — artificial viscosity, deviatoric
// stress, zone-to-node forces, motion, geometry, density/EOS, PdV energy
// work, directional heat conduction, corner conduction, boundaries — with
// every communication in the main body. Each phase leads with local
// (shift-free) statements so its stencil communications have room to
// pipeline: this is why the paper sees SIMPLE gain the most from
// pipelining and from SHMEM's lower per-transfer blocking. Several phases
// deliberately re-read slices cached earlier in the same block (redundant
// communication), and paired same-direction reads (e.g. KAPPA with TEMP)
// combine.
#include "src/programs/sources.h"

namespace zc::programs {

const std::string_view kSimpleSource = R"zpl(
program simple;

config n     : integer = 256;
config iters : integer = 25;

region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];

direction east  = [0, 1],  west  = [0, -1],
          north = [-1, 0], south = [1, 0],
          ne    = [-1, 1], nw    = [-1, -1],
          se    = [1, 1],  sw    = [1, -1];

var XN, YN       : [R] double;  -- node coordinates
var UN, VN       : [R] double;  -- node velocities
var UA, VA       : [R] double;  -- time-averaged velocities
var RHO, MASS    : [R] double;  -- zone density / (fixed) mass
var PRES, EN     : [R] double;  -- zone pressure / specific energy
var Q, QC        : [R] double;  -- linear / corner artificial viscosity
var DIV, CURL    : [R] double;  -- velocity divergence and curl
var SXX, SYY, SXY : [R] double; -- deviatoric stress components
var AREA         : [R] double;  -- zone area
var TEMP, KAPPA  : [R] double;  -- temperature / conductivity
var HFX, HFY     : [R] double;  -- heat fluxes
var W1, W2, W3   : [R] double;  -- work arrays
var FX, FY       : [R] double;  -- node forces
var dtc, echeck  : double;

procedure init() {
  [R] XN := Index2 + 0.03 * sin(0.06 * Index1);
  [R] YN := Index1 + 0.03 * sin(0.05 * Index2);
  [R] UN := 0.1 * sin(0.04 * Index1) * cos(0.07 * Index2);
  [R] VN := 0.1 * cos(0.06 * Index1) * sin(0.05 * Index2);
  [R] UA := UN;
  [R] VA := VN;
  [R] MASS := 1.0 + 0.2 * sin(0.03 * Index1 * Index2);
  [R] RHO := MASS;
  [R] EN := 1.0 + 0.1 * cos(0.05 * Index1);
  [R] PRES := 0.4 * RHO * EN;
  [R] TEMP := EN;
  [R] KAPPA := 0.01 + 0.002 * TEMP;
  [R] Q := 0.0;
  [R] QC := 0.0;
  [R] DIV := 0.0;
  [R] CURL := 0.0;
  [R] SXX := 0.0;
  [R] SYY := 0.0;
  [R] SXY := 0.0;
  [R] AREA := 1.0;
  [R] HFX := 0.0;
  [R] HFY := 0.0;
  [R] W1 := 0.0;
  [R] W2 := 0.0;
  [R] W3 := 0.0;
  [R] FX := 0.0;
  [R] FY := 0.0;
}

-- Artificial viscosity: local terms from last cycle's divergence lead,
-- then the divergence/curl stencils and the corner (hourglass) viscosity.
-- The corner statement re-reads the face slices (redundant) and adds the
-- four diagonal slices.
procedure viscosity() {
  [I] Q := 0.3 * RHO * abs(DIV) * (abs(DIV) - DIV);
  [I] W1 := PRES + Q;
  -- Shock region in the upper half of the mesh: expensive viscosity
  -- limiting on the top processor rows only. The velocity slices the
  -- stencils below need can be sent from the top of the block, before this
  -- work begins — with pipelining, the lower half's receives do not wait
  -- for it (and the release-wave work in the energy phase is the
  -- complementary lower-half load, so without pipelining the two
  -- imbalances serialize at the seam).
  [2..n/2, 2..n-1] W2 := sqrt(abs(Q * Q + 0.5 * RHO)) * (1.0 + 0.1 * abs(DIV))
                       + sqrt(abs(PRES + 0.2 * EN)) * (1.0 - 0.05 * abs(CURL))
                       + sqrt(abs(RHO * EN + 0.25 * PRES)) * (1.0 + 0.02 * abs(SXY))
                       + sqrt(abs(0.5 * EN + Q)) * sqrt(abs(1.0 + 0.1 * RHO * RHO))
                       + sqrt(abs(PRES * RHO + 0.125)) * (1.0 - 0.01 * abs(SXX));
  [I] DIV := (UN@east - UN@west) + (VN@south - VN@north);
  [I] CURL := (VN@east - VN@west) - (UN@south - UN@north);
  [I] QC := 0.05 * RHO * abs((UN@ne - UN@sw) - (UN@nw - UN@se)
            + (VN@ne - VN@sw) + (VN@nw - VN@se));
  [I] W2 := 0.25 * abs(UN@east - UN@west) + 0.25 * abs(VN@south - VN@north);
}

-- Deviatoric stress: the velocity-gradient slices were cached by the
-- viscosity phase in a DIFFERENT block, so these are fresh transfers;
-- within this block the second pair of statements re-reads them.
procedure stress() {
  [I] SXX := 0.9 * SXX + 0.01 * (UN@east - UN@west);
  [I] SYY := 0.9 * SYY + 0.01 * (VN@south - VN@north);
  [I] SXY := 0.9 * SXY + 0.005 * ((UN@south - UN@north) + (VN@east - VN@west));
  [I] W3 := 0.5 * abs(UN@east - UN@west) + 0.5 * abs(VN@south - VN@north);
}

-- Zone stresses -> node forces, with the total stress assembled locally
-- first. FX and FY re-read the same corner slices of W1, and the limiter
-- statements re-read everything once more (redundant communication).
procedure forces() {
  [I] W1 := PRES + Q + QC - SXX - SYY;
  [I] W2 := SXY * 2.0;
  [I] FX := W1@west - W1@east + 0.5 * (W1@nw - W1@ne + W1@sw - W1@se)
            + 0.25 * (W2@south - W2@north);
  [I] FY := W1@north - W1@south + 0.5 * (W1@nw + W1@ne - W1@sw - W1@se)
            + 0.25 * (W2@east - W2@west);
  [I] FX := FX + 0.05 * (W1@ne + W1@nw - W1@se - W1@sw) * (W1@east - W1@west);
  [I] FY := FY + 0.05 * (W1@se + W1@ne - W1@sw - W1@nw) * (W1@north - W1@south);
}

-- Predictor: advance velocities and node positions (all local).
procedure motion() {
  [I] UA := UN;
  [I] VA := VN;
  [I] UN := 0.99 * UN + 0.002 * FX;
  [I] VN := 0.99 * VN + 0.002 * FY;
  [I] XN := XN + 0.005 * (UN + UA);
  [I] YN := YN + 0.005 * (VN + VA);
}

-- Zone geometry from the coordinates as of cycle start: area from the
-- cell diagonals, a skewness measure from the corner coordinates, and a
-- re-read pair (redundant).
procedure geometry() {
  [I] W2 := 0.01 * (abs(FX) + abs(FY));
  [I] RHO := MASS / max(AREA, 0.25);
  [I] AREA := 1.0 + 0.25 * ((XN@east - XN@west) * (YN@south - YN@north)
              - (XN@south - XN@north) * (YN@east - YN@west));
  [I] W1 := 0.0625 * abs((XN@ne - XN@sw) * (YN@nw - YN@se)
              - (XN@nw - XN@se) * (YN@ne - YN@sw));
  [I] W3 := 0.125 * abs((XN@east - XN@west) + (YN@south - YN@north));
}

-- EOS and PdV energy work with face-averaged pressures; the second
-- statement re-reads all four pressure faces (redundant).
procedure energy() {
  [I] EN := 0.98 * EN - 0.004 * (PRES + Q) * DIV + 0.02;
  -- Release wave in the lower half: the complementary expensive local work
  -- (see the shock region in viscosity()). The pressure-face slices below
  -- hoist above it under pipelining.
  [n/2+1..n-1, 2..n-1] W3 := sqrt(abs(EN * EN + 0.3 * PRES)) * (1.0 + 0.1 * abs(DIV))
                           + sqrt(abs(RHO + 0.1 * EN)) * (1.0 - 0.04 * abs(Q))
                           + sqrt(abs(PRES * EN + 0.2 * RHO)) * (1.0 + 0.03 * abs(SYY))
                           + sqrt(abs(0.4 * RHO + PRES)) * sqrt(abs(1.0 + 0.05 * EN * EN))
                           + sqrt(abs(EN * RHO + 0.25)) * (1.0 - 0.02 * abs(SXY));
  [I] W2 := 0.125 * (PRES@east + PRES@west + PRES@north + PRES@south) + 0.5 * PRES;
  [I] W3 := 0.0625 * abs(PRES@east - PRES@west) + 0.0625 * abs(PRES@north - PRES@south);
  [I] EN := EN - 0.002 * W2 * DIV;
  [I] PRES := 0.4 * RHO * EN;
  [I] dtc := min<< (0.2 + abs(DIV));
}

-- Heat conduction, east-west pass: face conductivities pair KAPPA with
-- TEMP per direction (combinable, identical feasible intervals).
procedure conduct_x() {
  [I] W2 := 0.05 * EN;
  [I] HFX := 0.5 * (KAPPA + KAPPA@east) * (TEMP@east - TEMP)
           + 0.5 * (KAPPA + KAPPA@west) * (TEMP@west - TEMP);
  [I] W1 := 0.25 * (abs(TEMP@east - TEMP) + abs(TEMP@west - TEMP));
}

-- Heat conduction, north-south pass.
procedure conduct_y() {
  [I] W3 := 0.1 + 0.25 * RHO;
  [I] HFY := 0.5 * (KAPPA + KAPPA@north) * (TEMP@north - TEMP)
           + 0.5 * (KAPPA + KAPPA@south) * (TEMP@south - TEMP);
  [I] W2 := 0.25 * (abs(TEMP@north - TEMP) + abs(TEMP@south - TEMP));
}

-- Corner conduction correction and the temperature/energy update.
procedure conduct_corner() {
  [I] W3 := 1.0 / (1.0 + W1 + W2);
  [I] HFX := HFX + 0.125 * (TEMP@ne + TEMP@nw + TEMP@se + TEMP@sw - 4.0 * TEMP) * KAPPA;
  [I] TEMP := TEMP + 0.1 * (HFX + HFY) * W3;
  [I] EN := EN + 0.05 * (TEMP - EN);
  [I] KAPPA := 0.01 + 0.002 * TEMP;
}

procedure boundaries() {
  [1, 1..n]  UN := UN@south;
  [n, 1..n]  UN := 0.0 - UN@north;
  [1..n, 1]  VN := VN@east;
  [1..n, n]  VN := 0.0 - VN@west;
  [1, 1..n]  TEMP := TEMP@south;
  [n, 1..n]  TEMP := TEMP@north;
}

procedure main() {
  init();
  for it in 1..iters {
    viscosity();
    stress();
    forces();
    motion();
    geometry();
    energy();
    conduct_x();
    conduct_y();
    conduct_corner();
    boundaries();
  }
  [I] echeck := +<< (EN + RHO);
}
)zpl";

}  // namespace zc::programs
