// SWM: shallow water model weather prediction benchmark. One flat main loop
// (fluxes/vorticity, time update, time shift, boundary rows) — the paper
// notes its pipelining head-room is limited, which is why the cheaper
// SHMEM overheads help it noticeably.
#include "src/programs/sources.h"

namespace zc::programs {

const std::string_view kSwmSource = R"zpl(
program swm;

config n     : integer = 512;
config iters : integer = 40;

region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];

direction east  = [0, 1],  west  = [0, -1],
          north = [-1, 0], south = [1, 0],
          ne    = [-1, 1], sw    = [1, -1];

var U, V, P          : [R] double;  -- velocities and pressure
var UNEW, VNEW, PNEW : [R] double;
var UOLD, VOLD, POLD : [R] double;
var CU, CV, Z, H     : [R] double;  -- mass fluxes, vorticity, height
var check            : double;

procedure init() {
  [R] P := 10.0 + 0.5 * sin(0.11 * Index1) * cos(0.09 * Index2);
  [R] U := 0.5 * cos(0.07 * Index1) * sin(0.13 * Index2);
  [R] V := 0.5 * sin(0.05 * Index1) * cos(0.08 * Index2);
  [R] UOLD := U;
  [R] VOLD := V;
  [R] POLD := P;
  [R] UNEW := 0.0;
  [R] VNEW := 0.0;
  [R] PNEW := 0.0;
  [R] CU := 0.0;
  [R] CV := 0.0;
  [R] Z := 0.0;
  [R] H := 0.0;
}

procedure main() {
  init();
  for it in 1..iters {
    -- Mass fluxes, potential vorticity, and height field. The repeated
    -- P@west / P@south reads in the Z statement are redundant.
    [I] CU := 0.5 * (P + P@west) * U;
    [I] CV := 0.5 * (P + P@south) * V;
    [I] Z := (0.25 * (V - V@west) - 0.25 * (U - U@south))
             / (1.0 + 0.25 * (P + P@west + P@south + P@sw));
    [I] H := P + 0.125 * (U * U + U@east * U@east) + 0.125 * (V * V + V@north * V@north);

    -- Leapfrog time update (coefficients contractive for stability).
    [I] UNEW := 0.96 * UOLD + 0.01 * (Z + Z@north) * (CV + CV@north + CV@east + CV@ne)
                - 0.02 * (H@east - H);
    [I] VNEW := 0.96 * VOLD - 0.01 * (Z + Z@east) * (CU + CU@east + CU@north + CU@ne)
                + 0.02 * (H@north - H);
    [I] PNEW := 0.96 * POLD - 0.02 * (CU@east - CU + CV@north - CV);

    -- Time shift with Robert-Asselin-style smoothing.
    [I] UOLD := U + 0.05 * (UNEW - 2.0 * U + UOLD);
    [I] VOLD := V + 0.05 * (VNEW - 2.0 * V + VOLD);
    [I] POLD := P + 0.05 * (PNEW - 2.0 * P + POLD);
    [I] U := UNEW;
    [I] V := VNEW;
    [I] P := PNEW;

    -- Boundary rows/columns (reflective).
    [1, 1..n]   U := U@south;
    [n, 1..n]   V := V@north;
    [1..n, 1]   P := P@east;
    [1..n, n]   P := 2.0 * P@west - P;
  }
  [I] check := +<< (U + V + P);
}
)zpl";

}  // namespace zc::programs
