// Compact POD event records for the communication trace subsystem.
//
// Two record families cover everything the simulator can narrate:
//   Event          one span on one simulated processor's timeline — an
//                  IRONMAN call (DR/SR/DN/SV with its bound primitive), a
//                  compute span (an array statement's local work), or a
//                  barrier participation (global synch / reduction tree).
//   MessageRecord  one point-to-point message's lifecycle on its channel:
//                  posted (SR entered), on-wire (first byte leaves the
//                  source), arrived (last byte at the destination),
//                  consumed (DN completed).
// All timestamps are the engine's virtual seconds; records are stamped with
// the processor id, the channel identity (chan, src, dst), and — for records
// produced by the SPMD engine — the plan-unique transfer id, so exporters
// can rebuild per-processor tracks and per-channel wire lanes and the
// attribution layer (src/analysis) can map every record back to the
// communication plan that caused it.
#pragma once

#include <cstdint>

#include "src/ironman/ironman.h"

namespace zc::trace {

enum class EventKind : std::uint8_t {
  kCall,     ///< one IRONMAN call executed by one processor
  kCompute,  ///< local compute span of one array/scalar statement
  kBarrier,  ///< participation in a global synch or reduction combine
};

/// One span on a processor's timeline. For kCall, `t_unblocked` is the
/// virtual time at which the call's blocking condition (message arrival,
/// readiness flag, send completion) was satisfied; the interval
/// [t_begin, t_unblocked] is wait time and [t_unblocked, t_end] is CPU
/// (software overhead) time. Non-blocking calls have t_unblocked == t_begin.
struct Event {
  EventKind kind = EventKind::kCompute;
  ironman::IronmanCall call = ironman::IronmanCall::kDR;       ///< kCall only
  ironman::Primitive primitive = ironman::Primitive::kNoOp;    ///< kCall only
  std::int32_t proc = 0;
  std::int64_t chan = -1;      ///< channel id (kCall only; -1 otherwise)
  std::int64_t transfer = -1;  ///< comm::Transfer::transfer_id (-1 = untagged)
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int64_t amount = 0;  ///< bytes (kCall), elements (kCompute), 0 (kBarrier)
  double t_begin = 0.0;
  double t_unblocked = 0.0;
  double t_end = 0.0;

  [[nodiscard]] double wait_seconds() const { return t_unblocked - t_begin; }
  [[nodiscard]] double cpu_seconds() const { return t_end - t_unblocked; }
};

/// One message's life on the wire. `t_consumed` stays 0 until the matching
/// DN completes (a message still in flight when the trace is exported).
struct MessageRecord {
  std::int64_t chan = -1;
  std::int64_t transfer = -1;  ///< comm::Transfer::transfer_id (-1 = untagged)
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int64_t bytes = 0;
  double t_posted = 0.0;
  double t_on_wire = 0.0;
  double t_arrived = 0.0;
  double t_consumed = 0.0;
  bool consumed = false;
};

}  // namespace zc::trace
