// The Recorder: per-processor bounded event buffers plus always-exact
// aggregate counters, filled by the simulator's hook points.
//
// Tracing is opt-in and null by default: the simulator holds a
// `trace::Recorder*` that is nullptr unless the caller attached one, and
// every hook site is guarded by that pointer — a run without a recorder
// performs no event allocation and no aggregate arithmetic (the
// zero-overhead-when-off contract, checked by bench_trace_overhead).
//
// The detailed Event / MessageRecord buffers are bounded (RecorderOptions);
// once a cap is hit further records are counted in dropped_events() /
// dropped_messages() and discarded. The aggregates (totals, per-call and
// per-primitive CPU/wait, wire exposure, per-channel and histogram counts)
// are updated on EVERY record regardless of the caps, so trace::Stats
// reconciles exactly with the engine's RunResult even on capped traces.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "src/trace/events.h"

namespace zc::trace {

struct RecorderOptions {
  /// Cap on detailed events kept per processor track.
  std::size_t max_events_per_proc = 1 << 16;
  /// Cap on detailed message lifecycle records.
  std::size_t max_messages = 1 << 16;
};

/// CPU/wait totals for one IRONMAN call slot or one bound primitive.
struct CallTotals {
  long long calls = 0;
  double wait_seconds = 0.0;  ///< blocked on arrival / readiness / drain
  double cpu_seconds = 0.0;   ///< software overhead executing the primitive
};

/// Wire-time decomposition over all consumed messages: `exposed` is the
/// part of the transmission the destination actually waited through at DN
/// (capped at the wire time; waiting for a sender that has not sent yet is
/// load imbalance, not wire exposure), `overlapped` is the rest — the
/// paper's Figure 6 distinction, measured per real message.
struct WireTotals {
  double wire_seconds = 0.0;
  double exposed_seconds = 0.0;
  double overlapped_seconds = 0.0;
  double dn_wait_seconds = 0.0;  ///< full DN wait, including sender lag
};

struct ChannelTotals {
  long long messages = 0;
  long long bytes = 0;
};

/// Exact per-transfer aggregates, keyed by the plan's transfer id (the
/// attribution unit of src/analysis). Never capped: updated on every record
/// like the other aggregates, so per-transfer blame reconciles with
/// trace::Stats even on truncated traces. Key -1 collects untagged records
/// (direct Transport use, e.g. the synthetic ping).
struct TransferTotals {
  std::array<CallTotals, 4> per_call{};  ///< indexed by IronmanCall
  WireTotals wire;
  long long messages = 0;
  long long bytes = 0;

  /// Processor time inside this transfer's IRONMAN calls (wait + CPU) —
  /// the transfer's share of Stats::exposed_overhead_seconds.
  [[nodiscard]] double exposed_overhead_seconds() const {
    double total = 0.0;
    for (const CallTotals& c : per_call) total += c.wait_seconds + c.cpu_seconds;
    return total;
  }
};

class Recorder {
 public:
  explicit Recorder(int procs, RecorderOptions options = {});

  // ---- hook points (called by src/sim when a recorder is attached) ----

  /// One IRONMAN call span on `proc`'s timeline. No-op primitives are not
  /// recorded (the simulator never calls this for them). `transfer` is the
  /// plan's transfer id for the communication the call belongs to (-1 when
  /// the caller has no plan, e.g. the synthetic ping).
  void record_call(int proc, ironman::IronmanCall call, ironman::Primitive primitive,
                   std::int64_t chan, std::int64_t transfer, int src, int dst,
                   std::int64_t bytes, double t_begin, double t_unblocked, double t_end);

  /// Local compute span of one statement execution on `proc`.
  void record_compute(int proc, std::int64_t elems, double t_begin, double t_end);

  /// `proc`'s participation in a global synch / reduction combine.
  void record_barrier(int proc, double t_begin, double t_end);

  /// A message put on the wire. Returns a handle for record_consumed, or
  /// -1 if the detailed record was dropped (aggregates still counted).
  std::int64_t record_message(std::int64_t chan, std::int64_t transfer, int src, int dst,
                              std::int64_t bytes, double t_posted, double t_on_wire,
                              double t_arrived);

  /// The matching DN completed. `wait_seconds` is the destination's full
  /// wait inside DN; `wire_seconds` the message's transmission time — both
  /// passed explicitly (along with the transfer id) so the exposure
  /// aggregates stay exact even when the detailed record was dropped
  /// (`message` == -1).
  void record_consumed(std::int64_t message, std::int64_t transfer, double t_consumed,
                       double wait_seconds, double wire_seconds);

  // ---- accessors ----

  [[nodiscard]] int procs() const { return static_cast<int>(events_.size()); }
  [[nodiscard]] const std::vector<Event>& events(int proc) const;
  [[nodiscard]] const std::vector<MessageRecord>& messages() const { return messages_; }
  [[nodiscard]] long long dropped_events() const { return dropped_events_; }
  [[nodiscard]] long long dropped_messages() const { return dropped_messages_; }

  [[nodiscard]] long long total_messages() const { return total_messages_; }
  [[nodiscard]] long long total_bytes() const { return total_bytes_; }
  [[nodiscard]] const std::array<CallTotals, 4>& call_totals() const { return call_totals_; }
  [[nodiscard]] const std::map<ironman::Primitive, CallTotals>& primitive_totals() const {
    return primitive_totals_;
  }
  [[nodiscard]] const WireTotals& wire_totals() const { return wire_totals_; }
  [[nodiscard]] double compute_seconds() const { return compute_seconds_; }
  [[nodiscard]] double barrier_seconds() const { return barrier_seconds_; }
  [[nodiscard]] long long barrier_count() const { return barrier_count_; }

  /// Per-channel traffic, keyed by (chan, src, dst).
  [[nodiscard]] const std::map<std::tuple<std::int64_t, int, int>, ChannelTotals>&
  channel_totals() const {
    return channel_totals_;
  }

  /// Message-size histogram: key is the bucket's inclusive power-of-two
  /// upper bound in bytes (16 B .. 1 MiB, chosen to straddle the paper's
  /// 4 KB packet knee); the overflow bucket uses kOverflowBucket.
  static constexpr std::int64_t kOverflowBucket = INT64_MAX;
  [[nodiscard]] const std::map<std::int64_t, ChannelTotals>& size_histogram() const {
    return size_histogram_;
  }

  /// The histogram bucket a message of `bytes` lands in.
  static std::int64_t size_bucket(std::int64_t bytes);

  /// Exact per-transfer aggregates (see TransferTotals), keyed by transfer id.
  [[nodiscard]] const std::map<std::int64_t, TransferTotals>& transfer_totals() const {
    return transfer_totals_;
  }

  /// Human-readable label for a transfer id (member arrays + direction),
  /// registered by the engine when tracing starts so exporters can name
  /// spans without reaching back into the plan. Unknown ids yield "".
  void set_transfer_label(std::int64_t transfer, std::string label);
  [[nodiscard]] const std::string& transfer_label(std::int64_t transfer) const;

 private:
  void push_event(const Event& event);

  RecorderOptions options_;
  std::vector<std::vector<Event>> events_;  // one track per processor
  std::vector<MessageRecord> messages_;
  long long dropped_events_ = 0;
  long long dropped_messages_ = 0;

  // Exact aggregates (never capped).
  long long total_messages_ = 0;
  long long total_bytes_ = 0;
  std::array<CallTotals, 4> call_totals_{};  // indexed by IronmanCall
  std::map<ironman::Primitive, CallTotals> primitive_totals_;
  WireTotals wire_totals_;
  double compute_seconds_ = 0.0;
  double barrier_seconds_ = 0.0;
  long long barrier_count_ = 0;
  std::map<std::tuple<std::int64_t, int, int>, ChannelTotals> channel_totals_;
  std::map<std::int64_t, ChannelTotals> size_histogram_;
  std::map<std::int64_t, TransferTotals> transfer_totals_;
  std::map<std::int64_t, std::string> transfer_labels_;
};

}  // namespace zc::trace
