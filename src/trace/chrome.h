// Exports a Recorder's contents as Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Layout: one process per record family —
//   pid 1 "processors"  one thread per simulated processor carrying its
//                       IRONMAN call spans (wait + CPU), compute spans, and
//                       barrier participations;
//   pid 2 "wire"        one thread (lane) per channel (chan, src->dst)
//                       carrying each message's transmission interval.
// Timestamps are the simulator's virtual seconds rendered in microseconds
// (the trace-event format's unit); all spans are complete ("X") events so
// the file stays valid even for truncated traces.
#pragma once

#include <string>

#include "src/trace/recorder.h"

namespace zc::trace {

/// Renders the whole trace as one JSON document.
[[nodiscard]] std::string to_chrome_json(const Recorder& recorder);

/// Writes to_chrome_json(recorder) to `path`; throws zc::Error on I/O
/// failure.
void write_chrome_trace(const Recorder& recorder, const std::string& path);

}  // namespace zc::trace
