// Exports a Recorder's contents as Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Layout: one process per record family —
//   pid 1 "processors"  one thread per simulated processor carrying its
//                       IRONMAN call spans (wait + CPU), compute spans, and
//                       barrier participations;
//   pid 2 "wire"        one thread (lane) per channel (chan, src->dst)
//                       carrying each message's transmission interval;
//   pid 3 "host"        (optional) one thread per prof::Profiler-attached
//                       host thread, carrying the toolchain's own span
//                       timeline — so the simulated run and the host-side
//                       cost of producing it open in one viewer.
//   pid 4 "timeline"    (optional) one counter ("C") track per
//                       tseries::SimSeries channel: the channel's
//                       all-processor seconds per window divided by the
//                       window width — the average number of processors in
//                       that activity, the run's utilization curve.
// Timestamps are the simulator's virtual seconds (pids 1–2, 4) or the
// host's wall-clock seconds since profiler construction (pid 3), both
// rendered in microseconds (the trace-event format's unit); all spans are
// complete ("X") events so the file stays valid even for truncated traces.
#pragma once

#include <string>

#include "src/prof/prof.h"
#include "src/trace/recorder.h"
#include "src/tseries/tseries.h"

namespace zc::trace {

/// Renders the whole trace as one JSON document.
[[nodiscard]] std::string to_chrome_json(const Recorder& recorder);

/// As above, with either side optional: `recorder` may be null (host spans
/// only) and `host` may be null (simulated spans only — equivalent to the
/// one-argument overload). At least one must be non-null.
[[nodiscard]] std::string to_chrome_json(const Recorder* recorder, const prof::Profiler* host);

/// As above plus an optional windowed timeline (pid 4 counter tracks). Any
/// subset of the sources may be null; at least one must be non-null.
[[nodiscard]] std::string to_chrome_json(const Recorder* recorder, const prof::Profiler* host,
                                         const tseries::SimSeries* timeline);

/// Writes to_chrome_json(recorder) to `path`; throws zc::Error on I/O
/// failure.
void write_chrome_trace(const Recorder& recorder, const std::string& path);

/// Writes the combined (simulated + host) document to `path`; throws
/// zc::Error on I/O failure or when both sources are null.
void write_chrome_trace(const Recorder* recorder, const prof::Profiler* host,
                        const std::string& path);

/// Writes the combined (simulated + host + timeline) document to `path`;
/// throws zc::Error on I/O failure or when all sources are null.
void write_chrome_trace(const Recorder* recorder, const prof::Profiler* host,
                        const tseries::SimSeries* timeline, const std::string& path);

}  // namespace zc::trace
