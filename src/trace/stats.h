// Aggregate analytics over a recorded trace: where each IRONMAN call's time
// went (wait vs. CPU), how much wire time was exposed vs. overlapped (the
// paper's Figure 6 quantity, measured per real message instead of only the
// synthetic ping), per-channel traffic, and a message-size histogram
// bucketed around the 4 KB packet knee. Renders to a name,value CSV via
// src/support/csv for machine consumption and to a human-readable summary.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ironman/ironman.h"
#include "src/trace/recorder.h"

namespace zc::trace {

struct ChannelStat {
  std::int64_t chan = -1;
  int src = -1;
  int dst = -1;
  long long messages = 0;
  long long bytes = 0;
};

struct SizeBucket {
  std::int64_t upper_bytes = 0;  ///< inclusive bound; Recorder::kOverflowBucket = rest
  long long messages = 0;
  long long bytes = 0;
};

struct Stats {
  int procs = 0;
  long long total_messages = 0;
  long long total_bytes = 0;

  /// Per IRONMAN call slot (indexed by ironman::IronmanCall) and per bound
  /// primitive: call counts with wait/CPU decomposition.
  std::array<CallTotals, 4> per_call{};
  std::vector<std::pair<ironman::Primitive, CallTotals>> per_primitive;

  /// Total processor time spent inside IRONMAN calls (wait + CPU) — the
  /// measured counterpart of Transport::exposed_overhead when transmissions
  /// are fully overlapped.
  double exposed_overhead_seconds = 0.0;

  WireTotals wire;  ///< wire time split into exposed vs. overlapped

  double compute_seconds = 0.0;
  double barrier_seconds = 0.0;
  long long barrier_count = 0;

  std::vector<ChannelStat> channels;
  std::vector<SizeBucket> histogram;

  long long dropped_events = 0;
  long long dropped_messages = 0;

  /// Exposed overhead per message (Figure 6's y axis for a traced run).
  [[nodiscard]] double exposed_overhead_per_message() const;
  /// Fraction of wire time hidden behind computation (0 when no traffic).
  [[nodiscard]] double overlap_fraction() const;

  /// name,value CSV (stable keys, one row per metric / channel / bucket).
  [[nodiscard]] std::string to_csv() const;
  /// Human-readable multi-line summary for terminals.
  [[nodiscard]] std::string to_string() const;
};

/// Snapshots the recorder's exact aggregates into a Stats.
[[nodiscard]] Stats compute_stats(const Recorder& recorder);

/// A unique, stable label per primitive (disambiguates the msgwait and
/// synch pairs that share a user-facing name).
[[nodiscard]] std::string primitive_key(ironman::Primitive primitive);

}  // namespace zc::trace
