#include "src/trace/stats.h"

#include <sstream>

#include "src/support/csv.h"
#include "src/support/str.h"

namespace zc::trace {

namespace {

constexpr std::array<ironman::IronmanCall, 4> kCalls = {
    ironman::IronmanCall::kDR, ironman::IronmanCall::kSR, ironman::IronmanCall::kDN,
    ironman::IronmanCall::kSV};

std::string seconds_str(double s) {
  std::ostringstream os;
  os.precision(17);
  os << s;
  return os.str();
}

std::string bucket_label(std::int64_t upper_bytes) {
  if (upper_bytes == Recorder::kOverflowBucket) return ">1048576B";
  return "<=" + std::to_string(upper_bytes) + "B";
}

}  // namespace

std::string primitive_key(ironman::Primitive primitive) {
  using ironman::Primitive;
  switch (primitive) {
    case Primitive::kMsgwaitSend: return "msgwait_send";
    case Primitive::kMsgwaitRecv: return "msgwait_recv";
    case Primitive::kSynchPost: return "synch_post";
    case Primitive::kSynchWait: return "synch_wait";
    default: return ironman::to_string(primitive);
  }
}

double Stats::exposed_overhead_per_message() const {
  if (total_messages == 0) return 0.0;
  return exposed_overhead_seconds / static_cast<double>(total_messages);
}

double Stats::overlap_fraction() const {
  if (wire.wire_seconds <= 0.0) return 0.0;
  return wire.overlapped_seconds / wire.wire_seconds;
}

Stats compute_stats(const Recorder& recorder) {
  Stats s;
  s.procs = recorder.procs();
  s.total_messages = recorder.total_messages();
  s.total_bytes = recorder.total_bytes();
  s.per_call = recorder.call_totals();
  for (const auto& [prim, totals] : recorder.primitive_totals()) {
    s.per_primitive.emplace_back(prim, totals);
  }
  for (const CallTotals& c : s.per_call) {
    s.exposed_overhead_seconds += c.wait_seconds + c.cpu_seconds;
  }
  s.wire = recorder.wire_totals();
  s.compute_seconds = recorder.compute_seconds();
  s.barrier_seconds = recorder.barrier_seconds();
  s.barrier_count = recorder.barrier_count();
  for (const auto& [key, totals] : recorder.channel_totals()) {
    const auto& [chan, src, dst] = key;
    s.channels.push_back({chan, src, dst, totals.messages, totals.bytes});
  }
  for (const auto& [upper, totals] : recorder.size_histogram()) {
    s.histogram.push_back({upper, totals.messages, totals.bytes});
  }
  s.dropped_events = recorder.dropped_events();
  s.dropped_messages = recorder.dropped_messages();
  return s;
}

std::string Stats::to_csv() const {
  CsvWriter csv({"name", "value"});
  auto row = [&csv](const std::string& name, const std::string& value) {
    csv.add_row({name, value});
  };
  row("procs", std::to_string(procs));
  row("total_messages", std::to_string(total_messages));
  row("total_bytes", std::to_string(total_bytes));
  row("exposed_overhead_seconds", seconds_str(exposed_overhead_seconds));
  row("wire_seconds", seconds_str(wire.wire_seconds));
  row("exposed_wire_seconds", seconds_str(wire.exposed_seconds));
  row("overlapped_wire_seconds", seconds_str(wire.overlapped_seconds));
  row("dn_wait_seconds", seconds_str(wire.dn_wait_seconds));
  row("compute_seconds", seconds_str(compute_seconds));
  row("barrier_seconds", seconds_str(barrier_seconds));
  row("barrier_count", std::to_string(barrier_count));
  row("dropped_events", std::to_string(dropped_events));
  row("dropped_messages", std::to_string(dropped_messages));
  for (std::size_t i = 0; i < per_call.size(); ++i) {
    const std::string base = "call." + ironman::to_string(kCalls[i]);
    row(base + ".calls", std::to_string(per_call[i].calls));
    row(base + ".wait_seconds", seconds_str(per_call[i].wait_seconds));
    row(base + ".cpu_seconds", seconds_str(per_call[i].cpu_seconds));
  }
  for (const auto& [prim, totals] : per_primitive) {
    const std::string base = "primitive." + primitive_key(prim);
    row(base + ".calls", std::to_string(totals.calls));
    row(base + ".wait_seconds", seconds_str(totals.wait_seconds));
    row(base + ".cpu_seconds", seconds_str(totals.cpu_seconds));
  }
  for (const ChannelStat& ch : channels) {
    const std::string base = "channel." + std::to_string(ch.chan) + "." +
                             std::to_string(ch.src) + "-" + std::to_string(ch.dst);
    row(base + ".messages", std::to_string(ch.messages));
    row(base + ".bytes", std::to_string(ch.bytes));
  }
  for (const SizeBucket& b : histogram) {
    const std::string base = "hist." + bucket_label(b.upper_bytes);
    row(base + ".messages", std::to_string(b.messages));
    row(base + ".bytes", std::to_string(b.bytes));
  }
  return csv.to_string();
}

std::string Stats::to_string() const {
  std::ostringstream os;
  os << "trace stats: " << str::with_commas(total_messages) << " messages, "
     << str::with_commas(total_bytes) << " bytes over " << channels.size()
     << " channels on " << procs << " procs\n";
  os << "  wire time " << str::format_f(wire.wire_seconds * 1e3, 3) << " ms: exposed "
     << str::format_f(wire.exposed_seconds * 1e3, 3) << " ms, overlapped "
     << str::format_f(wire.overlapped_seconds * 1e3, 3) << " ms ("
     << str::percent(wire.overlapped_seconds, wire.wire_seconds) << " hidden)\n";
  os << "  ironman overhead " << str::format_f(exposed_overhead_seconds * 1e3, 3)
     << " ms; compute " << str::format_f(compute_seconds * 1e3, 3) << " ms; barriers "
     << str::with_commas(barrier_count) << " taking "
     << str::format_f(barrier_seconds * 1e3, 3) << " ms\n";
  for (std::size_t i = 0; i < per_call.size(); ++i) {
    if (per_call[i].calls == 0) continue;
    os << "  " << ironman::to_string(kCalls[i]) << ": "
       << str::with_commas(per_call[i].calls) << " calls, wait "
       << str::format_f(per_call[i].wait_seconds * 1e3, 3) << " ms, cpu "
       << str::format_f(per_call[i].cpu_seconds * 1e3, 3) << " ms\n";
  }
  os << "  message sizes:";
  for (const SizeBucket& b : histogram) {
    os << " " << bucket_label(b.upper_bytes) << ":" << b.messages;
  }
  os << "\n";
  if (dropped_events > 0 || dropped_messages > 0) {
    os << "  (truncated: " << dropped_events << " events, " << dropped_messages
       << " message records dropped at the buffer cap)\n";
  }
  return os.str();
}

}  // namespace zc::trace
