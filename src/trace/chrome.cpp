#include "src/trace/chrome.h"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <tuple>

#include "src/support/diag.h"

namespace zc::trace {

namespace {

constexpr int kProcessorsPid = 1;
constexpr int kWirePid = 2;
constexpr int kHostPid = 3;
constexpr int kTimelinePid = 4;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes one complete ("X") event. `args` is pre-rendered JSON ("{...}").
void emit_span(std::ostream& os, bool& first, int pid, std::int64_t tid,
               const std::string& name, const std::string& cat, double t_begin_s,
               double t_end_s, const std::string& args) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"ph":"X","pid":)" << pid << R"(,"tid":)" << tid << R"(,"name":")"
     << json_escape(name) << R"(","cat":")" << cat << R"(","ts":)" << t_begin_s * 1e6
     << R"(,"dur":)" << (t_end_s - t_begin_s) * 1e6;
  if (!args.empty()) os << R"(,"args":)" << args;
  os << "}";
}

void emit_metadata(std::ostream& os, bool& first, int pid, std::int64_t tid,
                   const std::string& what, const std::string& name) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"ph":"M","pid":)" << pid << R"(,"tid":)" << tid << R"(,"name":")" << what
     << R"(","args":{"name":")" << json_escape(name) << R"("}})";
}

std::string channel_label(std::int64_t chan, int src, int dst) {
  std::ostringstream os;
  os << "chan " << chan << ": " << src << "->" << dst;
  return os.str();
}

}  // namespace

std::string to_chrome_json(const Recorder& recorder) {
  return to_chrome_json(&recorder, nullptr);
}

std::string to_chrome_json(const Recorder* rec, const prof::Profiler* host) {
  return to_chrome_json(rec, host, nullptr);
}

std::string to_chrome_json(const Recorder* rec, const prof::Profiler* host,
                           const tseries::SimSeries* timeline) {
  if (rec == nullptr && host == nullptr && timeline == nullptr) {
    throw Error("to_chrome_json needs a recorder, a host profiler, or a timeline");
  }
  std::ostringstream os;
  os << std::setprecision(15);
  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Track naming. The wire lanes are numbered in channel-key order so
  // repeated exports of the same run are byte-identical.
  std::map<std::tuple<std::int64_t, int, int>, std::int64_t> lanes;
  if (rec != nullptr) {
    const Recorder& recorder = *rec;
    emit_metadata(os, first, kProcessorsPid, 0, "process_name", "processors");
    emit_metadata(os, first, kWirePid, 0, "process_name", "wire");
    for (int proc = 0; proc < recorder.procs(); ++proc) {
      emit_metadata(os, first, kProcessorsPid, proc, "thread_name",
                    "proc " + std::to_string(proc));
    }
    for (const auto& [key, totals] : recorder.channel_totals()) {
      const std::int64_t lane = static_cast<std::int64_t>(lanes.size());
      lanes.emplace(key, lane);
      const auto& [chan, src, dst] = key;
      emit_metadata(os, first, kWirePid, lane, "thread_name", channel_label(chan, src, dst));
    }
  }
  if (host != nullptr) {
    emit_metadata(os, first, kHostPid, 0, "process_name", "host");
    for (int t = 0; t < host->thread_count(); ++t) {
      emit_metadata(os, first, kHostPid, t, "thread_name", "host thread " + std::to_string(t));
    }
  }
  if (timeline != nullptr) {
    emit_metadata(os, first, kTimelinePid, 0, "process_name", "timeline");
  }

  // Processor tracks: calls (with the wait part split out), compute spans,
  // barriers. Events were recorded in per-processor clock order, so each
  // track is already sorted and non-overlapping.
  for (int proc = 0; rec != nullptr && proc < rec->procs(); ++proc) {
    const Recorder& recorder = *rec;
    for (const Event& e : recorder.events(proc)) {
      std::ostringstream args;
      args << std::setprecision(15);
      switch (e.kind) {
        case EventKind::kCall: {
          const std::string name =
              ironman::to_string(e.call) + " " + ironman::to_string(e.primitive);
          std::ostringstream common;
          common << R"("primitive":")" << ironman::to_string(e.primitive) << R"(","chan":)"
                 << e.chan << R"(,"bytes":)" << e.amount << R"(,"transfer":)" << e.transfer;
          const std::string& label = recorder.transfer_label(e.transfer);
          if (!label.empty()) common << R"(,"transfer_label":")" << json_escape(label) << '"';
          if (e.wait_seconds() > 0.0) {
            args << "{" << common.str() << "}";
            emit_span(os, first, kProcessorsPid, proc, "wait " + name, "wait", e.t_begin,
                      e.t_unblocked, args.str());
            args.str("");
          }
          args << std::setprecision(15) << "{" << common.str() << R"(,"src":)" << e.src
               << R"(,"dst":)" << e.dst << R"(,"wait_us":)" << e.wait_seconds() * 1e6 << "}";
          emit_span(os, first, kProcessorsPid, proc, name, "ironman", e.t_unblocked, e.t_end,
                    args.str());
          break;
        }
        case EventKind::kCompute:
          args << R"({"elems":)" << e.amount << "}";
          emit_span(os, first, kProcessorsPid, proc, "compute", "compute", e.t_begin, e.t_end,
                    args.str());
          break;
        case EventKind::kBarrier:
          emit_span(os, first, kProcessorsPid, proc, "barrier", "sync", e.t_begin, e.t_end,
                    "");
          break;
      }
    }
  }

  // Wire lanes: one span per recorded message covering its transmission.
  // Messages still in flight when the trace was cut (never consumed, and
  // possibly without a computed arrival) would render as zero-length or
  // negative slices, which Perfetto rejects — skip those.
  if (rec != nullptr) {
    const Recorder& recorder = *rec;
    for (const MessageRecord& m : recorder.messages()) {
      if (!m.consumed && !(m.t_arrived > m.t_on_wire)) continue;
      const auto lane = lanes.find({m.chan, m.src, m.dst});
      if (lane == lanes.end()) continue;  // aggregates capped before this message
      std::ostringstream args;
      args << std::setprecision(15);
      args << R"({"bytes":)" << m.bytes << R"(,"transfer":)" << m.transfer;
      const std::string& label = recorder.transfer_label(m.transfer);
      if (!label.empty()) args << R"(,"transfer_label":")" << json_escape(label) << '"';
      args << R"(,"posted_us":)" << m.t_posted * 1e6 << R"(,"consumed_us":)"
           << (m.consumed ? m.t_consumed * 1e6 : -1.0) << "}";
      emit_span(os, first, kWirePid, lane->second, std::to_string(m.bytes) + " B", "wire",
                m.t_on_wire, m.t_arrived, args.str());
    }
  }

  // Host tracks: the toolchain's own completed spans, one thread per
  // attached host thread, on the profiler's wall clock.
  if (host != nullptr) {
    for (int t = 0; t < host->thread_count(); ++t) {
      for (const prof::TimelineEvent& e : host->timeline(t)) {
        emit_span(os, first, kHostPid, t, e.name, "host", e.t_begin, e.t_end, "");
      }
    }
  }

  // Timeline counter tracks: one "C" series per channel; the value at each
  // window start is the channel's seconds (summed over processors) divided
  // by the window width — average processors in that activity. A trailing
  // zero at the series end closes the last step.
  if (timeline != nullptr) {
    const double width = timeline->window_width();
    const int used = timeline->used_windows();
    for (int c = 0; c < tseries::SimSeries::kChannelCount; ++c) {
      const auto channel = static_cast<tseries::SimSeries::Channel>(c);
      const char* name = tseries::SimSeries::channel_name(c);
      for (int w = 0; w < used; ++w) {
        double seconds = 0.0;
        for (int proc = 0; proc < timeline->procs(); ++proc) {
          seconds += timeline->value(proc, channel, w);
        }
        if (!first) os << ",\n";
        first = false;
        os << R"({"ph":"C","pid":)" << kTimelinePid << R"(,"tid":0,"name":")" << name
           << R"(","ts":)" << static_cast<double>(w) * width * 1e6 << R"(,"args":{")" << name
           << R"(":)" << seconds / width << "}}";
      }
      if (!first) os << ",\n";
      os << R"({"ph":"C","pid":)" << kTimelinePid << R"(,"tid":0,"name":")" << name
         << R"(","ts":)" << static_cast<double>(used) * width * 1e6 << R"(,"args":{")" << name
         << R"(":0}})";
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"";
  const long long dropped_events = rec != nullptr ? rec->dropped_events() : 0;
  const long long dropped_messages = rec != nullptr ? rec->dropped_messages() : 0;
  const long long dropped_host = host != nullptr ? host->dropped_timeline_events() : 0;
  if (dropped_events > 0 || dropped_messages > 0 || dropped_host > 0) {
    os << ",\"otherData\":{\"dropped_events\":" << dropped_events
       << ",\"dropped_messages\":" << dropped_messages
       << ",\"dropped_host_events\":" << dropped_host << "}";
  }
  os << "}\n";
  return os.str();
}

void write_chrome_trace(const Recorder& recorder, const std::string& path) {
  write_chrome_trace(&recorder, nullptr, path);
}

void write_chrome_trace(const Recorder* recorder, const prof::Profiler* host,
                        const std::string& path) {
  write_chrome_trace(recorder, host, nullptr, path);
}

void write_chrome_trace(const Recorder* recorder, const prof::Profiler* host,
                        const tseries::SimSeries* timeline, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace output file: " + path);
  out << to_chrome_json(recorder, host, timeline);
  if (!out) throw Error("failed writing trace output file: " + path);
}

}  // namespace zc::trace
