#include "src/trace/recorder.h"

#include <algorithm>

#include "src/support/check.h"

namespace zc::trace {

Recorder::Recorder(int procs, RecorderOptions options) : options_(options) {
  ZC_ASSERT(procs >= 1);
  events_.resize(static_cast<std::size_t>(procs));
}

const std::vector<Event>& Recorder::events(int proc) const {
  ZC_ASSERT(proc >= 0 && proc < procs());
  return events_[static_cast<std::size_t>(proc)];
}

void Recorder::push_event(const Event& event) {
  ZC_ASSERT(event.proc >= 0 && event.proc < procs());
  std::vector<Event>& track = events_[static_cast<std::size_t>(event.proc)];
  if (track.size() >= options_.max_events_per_proc) {
    ++dropped_events_;
    return;
  }
  track.push_back(event);
}

void Recorder::record_call(int proc, ironman::IronmanCall call, ironman::Primitive primitive,
                           std::int64_t chan, std::int64_t transfer, int src, int dst,
                           std::int64_t bytes, double t_begin, double t_unblocked,
                           double t_end) {
  CallTotals& by_call = call_totals_[static_cast<std::size_t>(call)];
  ++by_call.calls;
  by_call.wait_seconds += t_unblocked - t_begin;
  by_call.cpu_seconds += t_end - t_unblocked;
  CallTotals& by_prim = primitive_totals_[primitive];
  ++by_prim.calls;
  by_prim.wait_seconds += t_unblocked - t_begin;
  by_prim.cpu_seconds += t_end - t_unblocked;
  CallTotals& by_transfer = transfer_totals_[transfer].per_call[static_cast<std::size_t>(call)];
  ++by_transfer.calls;
  by_transfer.wait_seconds += t_unblocked - t_begin;
  by_transfer.cpu_seconds += t_end - t_unblocked;

  Event e;
  e.kind = EventKind::kCall;
  e.call = call;
  e.primitive = primitive;
  e.proc = proc;
  e.chan = chan;
  e.transfer = transfer;
  e.src = src;
  e.dst = dst;
  e.amount = bytes;
  e.t_begin = t_begin;
  e.t_unblocked = t_unblocked;
  e.t_end = t_end;
  push_event(e);
}

void Recorder::record_compute(int proc, std::int64_t elems, double t_begin, double t_end) {
  compute_seconds_ += t_end - t_begin;
  Event e;
  e.kind = EventKind::kCompute;
  e.proc = proc;
  e.amount = elems;
  e.t_begin = t_begin;
  e.t_unblocked = t_begin;
  e.t_end = t_end;
  push_event(e);
}

void Recorder::record_barrier(int proc, double t_begin, double t_end) {
  barrier_seconds_ += t_end - t_begin;
  if (proc == 0) ++barrier_count_;  // count each barrier once, not per proc
  Event e;
  e.kind = EventKind::kBarrier;
  e.proc = proc;
  e.t_begin = t_begin;
  e.t_unblocked = t_begin;
  e.t_end = t_end;
  push_event(e);
}

std::int64_t Recorder::size_bucket(std::int64_t bytes) {
  for (std::int64_t upper = 16; upper <= (1 << 20); upper *= 2) {
    if (bytes <= upper) return upper;
  }
  return kOverflowBucket;
}

std::int64_t Recorder::record_message(std::int64_t chan, std::int64_t transfer, int src,
                                      int dst, std::int64_t bytes, double t_posted,
                                      double t_on_wire, double t_arrived) {
  ++total_messages_;
  total_bytes_ += bytes;
  ChannelTotals& ct = channel_totals_[{chan, src, dst}];
  ++ct.messages;
  ct.bytes += bytes;
  ChannelTotals& bucket = size_histogram_[size_bucket(bytes)];
  ++bucket.messages;
  bucket.bytes += bytes;
  TransferTotals& tt = transfer_totals_[transfer];
  ++tt.messages;
  tt.bytes += bytes;

  if (messages_.size() >= options_.max_messages) {
    ++dropped_messages_;
    return -1;
  }
  MessageRecord m;
  m.chan = chan;
  m.transfer = transfer;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.t_posted = t_posted;
  m.t_on_wire = t_on_wire;
  m.t_arrived = t_arrived;
  messages_.push_back(m);
  return static_cast<std::int64_t>(messages_.size()) - 1;
}

void Recorder::record_consumed(std::int64_t message, std::int64_t transfer, double t_consumed,
                               double wait_seconds, double wire_seconds) {
  const double exposed = std::clamp(wait_seconds, 0.0, wire_seconds);
  wire_totals_.wire_seconds += wire_seconds;
  wire_totals_.exposed_seconds += exposed;
  wire_totals_.overlapped_seconds += wire_seconds - exposed;
  wire_totals_.dn_wait_seconds += std::max(wait_seconds, 0.0);
  WireTotals& tw = transfer_totals_[transfer].wire;
  tw.wire_seconds += wire_seconds;
  tw.exposed_seconds += exposed;
  tw.overlapped_seconds += wire_seconds - exposed;
  tw.dn_wait_seconds += std::max(wait_seconds, 0.0);

  if (message < 0) return;  // detailed record was dropped at the cap
  ZC_ASSERT(message < static_cast<std::int64_t>(messages_.size()));
  MessageRecord& m = messages_[static_cast<std::size_t>(message)];
  m.t_consumed = t_consumed;
  m.consumed = true;
}

void Recorder::set_transfer_label(std::int64_t transfer, std::string label) {
  transfer_labels_[transfer] = std::move(label);
}

const std::string& Recorder::transfer_label(std::int64_t transfer) const {
  static const std::string kEmpty;
  const auto it = transfer_labels_.find(transfer);
  return it == transfer_labels_.end() ? kEmpty : it->second;
}

}  // namespace zc::trace
