// Machine cost models for the two platforms of the paper's Figure 3:
// the Intel Paragon (50 MHz, NX) and the Cray T3D (150 MHz, PVM + SHMEM).
//
// The paper ran on real hardware; we substitute a LogGP-style model: each
// communication primitive has a fixed CPU overhead plus a per-byte CPU cost
// (copies / packing), messages cross a wire with latency and per-byte gap,
// and long messages pay a per-packet overhead (which produces the ~4 KB
// knee of Figure 6). Computation costs flops x flop_time plus a per-element
// memory charge. All times in seconds.
#pragma once

#include <string>

#include "src/ironman/ironman.h"

namespace zc::machine {

enum class MachineKind { kParagon, kT3D };

/// CPU-side cost of invoking a primitive: `overhead + bytes * per_byte`.
struct PrimitiveCost {
  double overhead = 0.0;
  double per_byte = 0.0;

  [[nodiscard]] double at(long long bytes) const {
    return overhead + static_cast<double>(bytes) * per_byte;
  }
};

struct MachineModel {
  std::string name;
  MachineKind kind = MachineKind::kT3D;
  double clock_hz = 0.0;
  double timer_granularity = 0.0;  ///< reporting only (Figure 3)

  // Computation.
  double flop_time = 0.0;       ///< seconds per arithmetic op
  double elem_mem_time = 0.0;   ///< per array element touched
  double stmt_overhead = 0.0;   ///< fixed per array statement (loop setup)
  double scalar_stmt_time = 0.0;

  // Network.
  double wire_latency = 0.0;   ///< first-byte latency between neighbors
  double wire_per_byte = 0.0;  ///< inverse RAW link bandwidth
  long long packet_bytes = 4096;
  double packet_overhead = 0.0;  ///< per additional packet, CPU side

  /// Effective channel bandwidth differs per library: on the T3D, PVM's
  /// protocol moved data at ~25 MB/s while shmem_put streamed at ~120 MB/s;
  /// Paragon NX delivered ~70 MB/s of its 175 MB/s links. This is the
  /// hideable (transfer-time) part of a message's cost.
  [[nodiscard]] double channel_per_byte(ironman::CommLibrary library) const;
  double pvm_channel_per_byte = 0.0;
  double nx_channel_per_byte = 0.0;
  double shmem_channel_per_byte = 0.0;

  // Primitive costs (only those meaningful on the machine are used).
  PrimitiveCost csend, crecv;
  PrimitiveCost isend, irecv, msgwait;
  PrimitiveCost hsend, hrecv, hprobe;
  PrimitiveCost pvm_send, pvm_recv;
  PrimitiveCost shmem_put;
  PrimitiveCost synch_post;  ///< SHMEM prototype: destination posts readiness
  PrimitiveCost synch_wait;  ///< ... and endpoints wait on the flags
  /// The prototype's DR synch is a *global* barrier (the simplest correct
  /// buffer-safety implementation, and the behaviour that reproduces the
  /// paper's TOMCATV/SP degradation): per-stage cost of its combine tree.
  double synch_stage = 0.0;

  // Reductions (not part of the optimized communication, but benchmarks use
  // them): a log-tree combine; per-stage cost below.
  double reduce_stage_overhead = 0.0;

  /// CPU cost of `primitive` for a `bytes`-sized transfer, including the
  /// per-packet charge for primitives that move data through the CPU.
  [[nodiscard]] double primitive_cpu_cost(ironman::Primitive primitive, long long bytes) const;
};

/// The Intel Paragon model (50 MHz i860, NX message passing). The async and
/// callback primitives carry the "extremely heavy-weight" overheads the
/// paper measured (§3.2, §4).
MachineModel paragon_model();

/// The Cray T3D model (150 MHz Alpha, vendor PVM + prototype-IRONMAN SHMEM
/// whose synchronization is deliberately heavy, as the paper describes).
MachineModel t3d_model();

/// True if `library` exists on `kind` (NX on Paragon; PVM/SHMEM on T3D).
bool library_available(MachineKind kind, ironman::CommLibrary library);

/// Stages of a log-tree barrier / combine over `participants` processors:
/// max(1, ceil(log2(participants))). Centralized so the engine's allreduce
/// and the transport's global synch use bit-identical arithmetic (both
/// previously inlined this expression; large-P correctness depends on the
/// two agreeing exactly).
int barrier_stages(int participants);

std::string to_string(MachineKind kind);

}  // namespace zc::machine
