#include "src/machine/model.h"

#include <algorithm>
#include <cmath>

namespace zc::machine {

double MachineModel::channel_per_byte(ironman::CommLibrary library) const {
  switch (library) {
    case ironman::CommLibrary::kNXSync:
    case ironman::CommLibrary::kNXAsync:
    case ironman::CommLibrary::kNXCallback:
      return nx_channel_per_byte;
    case ironman::CommLibrary::kPVM:
      return pvm_channel_per_byte;
    case ironman::CommLibrary::kSHMEM:
      return shmem_channel_per_byte;
  }
  return wire_per_byte;
}

double MachineModel::primitive_cpu_cost(ironman::Primitive primitive, long long bytes) const {
  using ironman::Primitive;
  const PrimitiveCost* cost = nullptr;
  bool moves_data_through_cpu = false;
  switch (primitive) {
    case Primitive::kNoOp: return 0.0;
    case Primitive::kCsend: cost = &csend; moves_data_through_cpu = true; break;
    case Primitive::kCrecv: cost = &crecv; moves_data_through_cpu = true; break;
    case Primitive::kIsend: cost = &isend; break;
    case Primitive::kIrecv: cost = &irecv; break;
    case Primitive::kMsgwaitSend:
    case Primitive::kMsgwaitRecv: cost = &msgwait; break;
    case Primitive::kHsend: cost = &hsend; break;
    case Primitive::kHrecv: cost = &hrecv; break;
    case Primitive::kHprobe: cost = &hprobe; break;
    case Primitive::kPvmSend: cost = &pvm_send; moves_data_through_cpu = true; break;
    case Primitive::kPvmRecv: cost = &pvm_recv; moves_data_through_cpu = true; break;
    case Primitive::kShmemPut: cost = &shmem_put; moves_data_through_cpu = true; break;
    case Primitive::kSynchPost: cost = &synch_post; break;
    case Primitive::kSynchWait: cost = &synch_wait; break;
  }
  double t = cost->at(bytes);
  if (moves_data_through_cpu && bytes > 0) {
    const long long extra_packets = (bytes - 1) / packet_bytes;
    t += static_cast<double>(extra_packets) * packet_overhead;
  }
  return t;
}

MachineModel paragon_model() {
  MachineModel m;
  m.name = "Intel Paragon";
  m.kind = MachineKind::kParagon;
  m.clock_hz = 50e6;
  m.timer_granularity = 100e-9;  // ~100 ns (Figure 3)

  // 50 MHz i860XP: ~10 MFLOPS sustained on stencil code.
  m.flop_time = 1.0e-7;
  m.elem_mem_time = 6.0e-8;
  m.stmt_overhead = 4.0e-6;
  m.scalar_stmt_time = 1.0e-6;

  m.wire_latency = 6.0e-6;
  m.wire_per_byte = 1.0 / 175.0e6;  // 175 MB/s mesh links
  m.nx_channel_per_byte = 1.0 / 70.0e6;
  m.pvm_channel_per_byte = m.nx_channel_per_byte;    // unused on the Paragon
  m.shmem_channel_per_byte = m.nx_channel_per_byte;  // unused on the Paragon
  m.packet_bytes = 4096;
  m.packet_overhead = 8.0e-6;

  // NX basic message passing: moderate call overhead, copies on both sides.
  m.csend = {60.0e-6, 9.0e-9};
  m.crecv = {55.0e-6, 9.0e-9};
  // Asynchronous (co-processor) primitives: the paper found them "extremely
  // heavy-weight" — posting and completion overheads dwarf the copy savings.
  m.isend = {120.0e-6, 1.0e-9};
  m.irecv = {45.0e-6, 0.0};
  m.msgwait = {35.0e-6, 0.0};
  // Callback (handler) primitives: heavier still.
  m.hsend = {150.0e-6, 1.0e-9};
  m.hrecv = {80.0e-6, 0.0};
  m.hprobe = {40.0e-6, 0.0};

  m.reduce_stage_overhead = 60.0e-6;
  return m;
}

MachineModel t3d_model() {
  MachineModel m;
  m.name = "Cray T3D";
  m.kind = MachineKind::kT3D;
  m.clock_hz = 150e6;
  m.timer_granularity = 150e-9;  // ~150 ns (Figure 3)

  // 150 MHz Alpha EV4: ~60 MFLOPS sustained on unrolled stencil loops.
  m.flop_time = 1.5e-8;
  m.elem_mem_time = 1.2e-8;
  m.stmt_overhead = 2.0e-6;
  m.scalar_stmt_time = 0.5e-6;

  m.wire_latency = 1.5e-6;
  m.wire_per_byte = 1.0 / 300.0e6;  // 300 MB/s torus links
  m.pvm_channel_per_byte = 1.0 / 30.0e6;     // PVM protocol: ~30 MB/s
  m.shmem_channel_per_byte = 1.0 / 120.0e6;  // shmem_put streams: ~120 MB/s
  m.nx_channel_per_byte = m.wire_per_byte;   // unused on the T3D
  m.packet_bytes = 4096;
  m.packet_overhead = 4.0e-6;

  // Vendor-optimized PVM: pack/copy on both sides.
  m.pvm_send = {38.0e-6, 7.0e-9};
  m.pvm_recv = {33.0e-6, 7.0e-9};
  // SHMEM through the prototype IRONMAN binding. shmem_put itself is cheap
  // (CPU-driven remote stores), but the prototype synchronization is
  // "unnecessarily heavy-weight" (paper §3.2): the destination posts a
  // readiness flag (DR) and both ends wait on flags. Net exposed overhead
  // comes out ~10% below PVM, as the paper measured.
  m.shmem_put = {3.0e-6, 8.3e-9};
  m.synch_post = {3.0e-6, 0.0};
  m.synch_wait = {55.0e-6, 0.0};
  m.synch_stage = 0.25e-6;

  m.reduce_stage_overhead = 40.0e-6;
  return m;
}

bool library_available(MachineKind kind, ironman::CommLibrary library) {
  using ironman::CommLibrary;
  switch (library) {
    case CommLibrary::kNXSync:
    case CommLibrary::kNXAsync:
    case CommLibrary::kNXCallback:
      return kind == MachineKind::kParagon;
    case CommLibrary::kPVM:
    case CommLibrary::kSHMEM:
      return kind == MachineKind::kT3D;
  }
  return false;
}

int barrier_stages(int participants) {
  return std::max(
      1, static_cast<int>(std::ceil(std::log2(static_cast<double>(participants)))));
}

std::string to_string(MachineKind kind) {
  return kind == MachineKind::kParagon ? "paragon" : "t3d";
}

}  // namespace zc::machine
