// Whole-file I/O with loud failures: every writer in the CLI surfaces
// (trace CSV, run reports, bench perf JSON) goes through here so an
// unwritable path raises zc::Error with the OS reason instead of silently
// producing nothing.
#pragma once

#include <string>
#include <string_view>

namespace zc::io {

/// Writes `content` to `path` (truncating); throws zc::Error naming the
/// path and the OS reason when the file cannot be opened or fully written.
void write_text_file(const std::string& path, std::string_view content);

/// Reads the whole file; throws zc::Error naming the path and the OS
/// reason when it cannot be opened or read.
std::string read_text_file(const std::string& path);

}  // namespace zc::io
