#include "src/support/str.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace zc::str {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_f(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string with_commas(long long value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return neg ? "-" + out : out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string percent(double part, double whole) {
  if (whole == 0.0) return "--";
  return format_f(100.0 * part / whole, 0) + "%";
}

}  // namespace zc::str
