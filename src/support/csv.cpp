#include "src/support/csv.h"

#include <fstream>
#include <sstream>

#include "src/support/check.h"
#include "src/support/diag.h"

namespace zc {

namespace {

std::string escape(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  ZC_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  out << to_string();
  if (!out) throw Error("failed writing CSV output file: " + path);
}

}  // namespace zc
