#include "src/support/csv.h"

#include <fstream>
#include <sstream>

#include "src/support/check.h"
#include "src/support/diag.h"

namespace zc {

namespace {

std::string escape(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  ZC_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  out << to_string();
  if (!out) throw Error("failed writing CSV output file: " + path);
}

const std::string& Csv::cell(std::size_t row, std::string_view column) const {
  for (std::size_t c = 0; c < headers.size(); ++c) {
    if (headers[c] == column) {
      if (row >= rows.size()) throw Error("CSV row index out of range");
      return rows[row].at(c);
    }
  }
  throw Error("CSV has no column named '" + std::string(column) + "'");
}

Csv parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // the current record has at least one field
  bool field_quoted = false;   // the pending field was quoted (may be empty)

  const auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = true;
    field_quoted = false;
  };
  const auto end_record = [&] {
    if (field_started || field_quoted || !field.empty()) end_field();
    if (!record.empty()) records.push_back(std::move(record));
    record.clear();
    field_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) throw Error("CSV quote in the middle of an unquoted field");
        in_quotes = true;
        field_quoted = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') break;  // CRLF: LF ends it
        end_record();
        break;
      case '\n':
        end_record();
        break;
      default:
        field += c;
    }
  }
  if (in_quotes) throw Error("CSV ends inside a quoted field");
  end_record();  // accept a missing final newline

  if (records.empty()) throw Error("CSV has no header line");
  Csv csv;
  csv.headers = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != csv.headers.size()) {
      throw Error("CSV row " + std::to_string(r) + " has " +
                  std::to_string(records[r].size()) + " fields, header has " +
                  std::to_string(csv.headers.size()));
    }
    csv.rows.push_back(std::move(records[r]));
  }
  return csv;
}

}  // namespace zc
