#include "src/support/chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"

namespace zc {

BarChart::BarChart(std::string title, std::vector<std::string> series_names)
    : title_(std::move(title)), series_(std::move(series_names)) {}

void BarChart::add_group(std::string name, std::vector<double> values) {
  ZC_ASSERT(values.size() == series_.size());
  groups_.push_back({std::move(name), std::move(values)});
}

std::string BarChart::to_string() const {
  std::size_t label_width = 0;
  for (const auto& s : series_) label_width = std::max(label_width, s.size());
  std::size_t group_width = 0;
  for (const auto& g : groups_) group_width = std::max(group_width, g.name.size());

  std::ostringstream os;
  os << title_ << "\n";
  for (const auto& g : groups_) {
    os << g.name << "\n";
    for (std::size_t s = 0; s < series_.size(); ++s) {
      const double v = g.values[s];
      os << "  " << str::pad_right(series_[s], label_width) << " |";
      if (std::isnan(v)) {
        os << " n/a\n";
        continue;
      }
      const double frac = std::clamp(v / scale_max_, 0.0, 1.0);
      const int bars = static_cast<int>(std::lround(frac * width_));
      os << std::string(bars, '#') << " " << str::format_f(v, 3) << suffix_ << "\n";
    }
  }
  return os.str();
}

SeriesChart::SeriesChart(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void SeriesChart::add_series(std::string name, std::vector<double> xs, std::vector<double> ys) {
  ZC_ASSERT(xs.size() == ys.size());
  series_.push_back({std::move(name), std::move(xs), std::move(ys)});
}

std::string SeriesChart::to_string() const {
  std::ostringstream os;
  os << title_ << "\n";
  os << "x = " << x_label_ << ", y = " << y_label_ << "\n\n";

  // Shared y range (log scale) across series for comparable sparklines.
  double ymin = HUGE_VAL;
  double ymax = -HUGE_VAL;
  for (const auto& s : series_) {
    for (double y : s.ys) {
      if (y > 0) {
        ymin = std::min(ymin, y);
        ymax = std::max(ymax, y);
      }
    }
  }
  const bool have_range = ymax > 0 && ymax > ymin;
  const char* glyphs = " .:-=+*#%@";

  for (const auto& s : series_) {
    os << s.name << "\n";
    std::string spark;
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      double level = 0.0;
      if (have_range && s.ys[i] > 0) {
        level = (std::log(s.ys[i]) - std::log(ymin)) / (std::log(ymax) - std::log(ymin));
      }
      spark += glyphs[static_cast<int>(std::lround(level * 9))];
    }
    os << "  [" << spark << "]\n";
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      os << "    " << str::pad_left(str::format_f(s.xs[i], 0), 8) << "  "
         << str::format_f(s.ys[i], 3) << "\n";
    }
  }
  return os.str();
}

}  // namespace zc
