#include "src/support/fingerprint.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "src/support/str.h"

#ifndef ZC_BUILD_TYPE_STR
#define ZC_BUILD_TYPE_STR ""
#endif
#ifndef ZC_SANITIZE_STR
#define ZC_SANITIZE_STR ""
#endif

namespace zc::fingerprint {

namespace {

using json::Value;

/// First "model name" line of /proc/cpuinfo; "" where procfs is missing
/// (the fingerprint stays honest rather than inventing a model).
std::string read_cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "";
  std::string model;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) continue;
    model = std::string(str::trim(colon + 1));
    break;
  }
  std::fclose(f);
  return model;
}

/// Lower-cased alnum slug: runs of anything else collapse to one '-'.
std::string slug(const std::string& text) {
  std::string out;
  bool dash = false;
  for (const char c : text) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
      dash = false;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
      dash = false;
    } else if (!out.empty() && !dash) {
      out += '-';
      dash = true;
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string label_escape(const std::string& v) {
  std::string out;
  for (const char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string get_str(const Value& v, const char* key) {
  return v.has(key) && v.at(key).is_string() ? v.at(key).string : "";
}

}  // namespace

std::string Host::host_class() const {
  if (!forced_class.empty()) return forced_class;
  if (!known) return "unknown";
  std::string cls = cpu_model.empty() ? "unknown-cpu" : slug(cpu_model);
  cls += "/" + std::to_string(cores) + "c";
  if (!sanitize.empty()) cls += "/" + sanitize;
  return cls;
}

Value Host::to_json() const {
  Value v = Value::make_object();
  if (!known) {
    v["class"] = Value::make_str("unknown");
    return v;
  }
  v["class"] = Value::make_str(host_class());
  v["cores"] = Value::make_int(cores);
  v["cpu_model"] = Value::make_str(cpu_model);
  v["page_size"] = Value::make_int(page_size);
  v["sanitize"] = Value::make_str(sanitize);
  return v;
}

Host Host::from_json(const Value& v) {
  Host h;
  const std::string cls = get_str(v, "class");
  if (!v.has("cores")) {
    // A bare/legacy host block: class only (typically "unknown").
    h.known = false;
    if (!cls.empty() && cls != "unknown") h.forced_class = cls;
    return h;
  }
  h.cores = static_cast<int>(v.at("cores").number);
  h.cpu_model = get_str(v, "cpu_model");
  h.page_size = v.has("page_size") ? static_cast<long long>(v.at("page_size").number) : 0;
  h.sanitize = get_str(v, "sanitize");
  // Preserve a forced class across serialization: if the recorded class is
  // not what the fields reproduce, the class member wins (it is the
  // comparison key, and overrides exist precisely to pin it).
  if (!cls.empty() && cls != h.host_class()) h.forced_class = cls;
  return h;
}

Value Build::to_json() const {
  Value v = Value::make_object();
  v["compiler"] = Value::make_str(compiler);
  v["compiler_version"] = Value::make_str(compiler_version);
  v["build_type"] = Value::make_str(build_type);
  v["sanitize"] = Value::make_str(sanitize);
  v["version"] = Value::make_str(kZcommVersion);
  return v;
}

Build Build::from_json(const Value& v) {
  Build b;
  b.compiler = get_str(v, "compiler");
  b.compiler_version = get_str(v, "compiler_version");
  b.build_type = get_str(v, "build_type");
  b.sanitize = get_str(v, "sanitize");
  return b;
}

const Host& current_host() {
  static const Host host = [] {
    Host h;
    h.cores = static_cast<int>(std::thread::hardware_concurrency());
    h.cpu_model = read_cpu_model();
    h.page_size = ::sysconf(_SC_PAGESIZE);
    h.sanitize = ZC_SANITIZE_STR;
    return h;
  }();
  return host;
}

const Build& current_build() {
  static const Build build = [] {
    Build b;
    b.compiler = compiler_id();
#ifdef __VERSION__
    b.compiler_version = __VERSION__;
#endif
    b.build_type = ZC_BUILD_TYPE_STR;
    b.sanitize = ZC_SANITIZE_STR;
    return b;
  }();
  return build;
}

std::string prometheus_build_info() {
  const Build& b = current_build();
  std::string out = "# TYPE zcomm_build_info gauge\n";
  out += "zcomm_build_info{version=\"" + label_escape(kZcommVersion) + "\",compiler=\"" +
         label_escape(b.compiler) + "\",build_type=\"" + label_escape(b.build_type) +
         "\",sanitizer=\"" + label_escape(b.sanitize) + "\"} 1\n";
  return out;
}

}  // namespace zc::fingerprint
