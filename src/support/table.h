// ASCII table rendering for bench / example output. The harnesses reproduce
// the paper's tables with these.
#pragma once

#include <string>
#include <vector>

namespace zc {

/// Column alignment for Table.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, add rows, render. Cell widths are
/// computed from content. Numeric-looking helper adders are provided so bench
/// code stays terse.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Per-column alignment; defaults to left for column 0, right otherwise.
  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line before the next row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   name      | static | dynamic
  ///   ----------+--------+--------
  ///   tomcatv   |     46 |  40,400
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Convenience: builds a row from heterogeneous printf-style parts.
class RowBuilder {
 public:
  RowBuilder& cell(std::string text);
  RowBuilder& cell(long long value);
  RowBuilder& cell(double value, int precision);
  /// `part/whole` rendered as a percentage ("73%").
  RowBuilder& percent_cell(double part, double whole);

  [[nodiscard]] std::vector<std::string> build() && { return std::move(cells_); }

 private:
  std::vector<std::string> cells_;
};

}  // namespace zc
