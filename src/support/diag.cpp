#include "src/support/diag.h"

#include <sstream>

namespace zc {

std::string SourceLoc::to_string() const {
  if (!valid()) return "<no location>";
  std::ostringstream os;
  os << line << ":" << column;
  return os.str();
}

Error::Error(SourceLoc loc, const std::string& message)
    : std::runtime_error(loc.valid() ? loc.to_string() + ": " + message : message), loc_(loc) {}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  if (loc.valid()) os << loc.to_string() << ": ";
  switch (severity) {
    case Severity::kError: os << "error: "; break;
    case Severity::kWarning: os << "warning: "; break;
    case Severity::kNote: os << "note: "; break;
  }
  os << message;
  return os.str();
}

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  diags_.push_back({Diagnostic::Severity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  diags_.push_back({Diagnostic::Severity::kWarning, loc, std::move(message)});
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  diags_.push_back({Diagnostic::Severity::kNote, loc, std::move(message)});
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.to_string() << "\n";
  return os.str();
}

void DiagnosticEngine::throw_if_errors(const std::string& context) const {
  if (!has_errors()) return;
  throw Error(context + ":\n" + to_string());
}

}  // namespace zc
