#include "src/support/metrics.h"

#include <algorithm>
#include <cstdint>

#include "src/support/str.h"

namespace zc::metrics {

void Histogram::observe(double value) {
  if (buckets.empty()) buckets.assign(bounds.size() + 1, 0);
  std::size_t i = 0;
  while (i < bounds.size() && value > bounds[i]) ++i;
  ++buckets[i];
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double n = static_cast<double>(buckets[i]);
    if (n > 0.0 && cum + n >= target) {
      const double lo = std::clamp(i == 0 ? min : bounds[i - 1], min, max);
      const double hi = std::clamp(i < bounds.size() ? bounds[i] : max, min, max);
      const double frac = (target - cum) / n;
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
    cum += n;
  }
  return max;
}

namespace {

/// Folds `theirs` into `mine`: bucket-wise when the bounds agree, else into
/// the aggregate + overflow bucket so the totals stay exact either way.
void merge_histogram(Histogram& mine, const Histogram& theirs) {
  if (theirs.count == 0) return;
  if (mine.count == 0) {
    mine = theirs;
    return;
  }
  if (mine.buckets.empty()) mine.buckets.assign(mine.bounds.size() + 1, 0);
  if (mine.bounds == theirs.bounds) {
    for (std::size_t i = 0; i < mine.buckets.size() && i < theirs.buckets.size(); ++i) {
      mine.buckets[i] += theirs.buckets[i];
    }
  } else {
    // Bounds disagree: keep this histogram's shape and fold the other's
    // samples into the overflow bucket so the aggregate stays exact.
    mine.buckets.back() += theirs.count;
  }
  mine.count += theirs.count;
  mine.sum += theirs.sum;
  mine.min = std::min(mine.min, theirs.min);
  mine.max = std::max(mine.max, theirs.max);
}

}  // namespace

Registry::Shard& Registry::shard_for(std::string_view name) const {
  // FNV-1a over the metric name; names are short and publishing is
  // per-plan/per-run, so the hash cost is noise next to the lock it avoids.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return shards_[h % kShards];
}

void Registry::count(std::string_view name, long long delta) {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::gauge(std::string_view name, double value) {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::observe(std::string_view name, double value, std::vector<double> bounds) {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    Histogram h;
    if (bounds.empty()) {
      for (double b = 1.0; b <= 1048576.0; b *= 2.0) h.bounds.push_back(b);
    } else {
      std::sort(bounds.begin(), bounds.end());
      h.bounds = std::move(bounds);
    }
    it = shard.histograms.emplace(std::string(name), std::move(h)).first;
  }
  it->second.observe(value);
}

long long Registry::counter(std::string_view name) const {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lk(shard.mu);
  const auto it = shard.counters.find(name);
  return it == shard.counters.end() ? 0 : it->second;
}

double Registry::gauge_value(std::string_view name) const {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lk(shard.mu);
  const auto it = shard.gauges.find(name);
  return it == shard.gauges.end() ? 0.0 : it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  // The pointer is only stable while no concurrent mutation runs; callers
  // are single-threaded inspectors (tests, report writers) by contract.
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lk(shard.mu);
  const auto it = shard.histograms.find(name);
  return it == shard.histograms.end() ? nullptr : &it->second;
}

bool Registry::empty() const {
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lk(shard.mu);
    if (!shard.counters.empty() || !shard.gauges.empty() || !shard.histograms.empty()) {
      return false;
    }
  }
  return true;
}

void Registry::reset() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lk(shard.mu);
    shard.counters.clear();
    shard.gauges.clear();
    shard.histograms.clear();
  }
}

Registry::Snapshot Registry::snapshot() const {
  // One shard locked at a time — never two locks at once, so snapshotting
  // can race publishers (each name is still read atomically under its
  // shard's lock) and merge_from can never deadlock against another merge.
  Snapshot snap;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lk(shard.mu);
    snap.counters.insert(shard.counters.begin(), shard.counters.end());
    snap.gauges.insert(shard.gauges.begin(), shard.gauges.end());
    snap.histograms.insert(shard.histograms.begin(), shard.histograms.end());
  }
  return snap;
}

void Registry::merge_from(const Registry& other) {
  if (&other == this) return;
  // Snapshot-then-apply: take the other registry's state one shard at a
  // time, then publish into our own shards through the normal guarded
  // paths. No two shard locks are ever held together.
  const Snapshot snap = other.snapshot();
  for (const auto& [name, value] : snap.counters) count(name, value);
  for (const auto& [name, value] : snap.gauges) gauge(name, value);
  for (const auto& [name, h] : snap.histograms) {
    Shard& shard = shard_for(name);
    const std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.histograms.find(name);
    if (it == shard.histograms.end()) {
      shard.histograms.emplace(name, h);
    } else {
      merge_histogram(it->second, h);
    }
  }
}

namespace {

/// Gauge/histogram values render with enough precision to round-trip the
/// magnitudes the simulator produces (seconds, counts).
std::string render(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return str::format_f(v, 9);
}

}  // namespace

std::string Registry::to_text() const {
  const Snapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += "counter " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "gauge " + name + " " + render(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "hist " + name + " count " + std::to_string(h.count) + " sum " + render(h.sum);
    if (h.count > 0) {
      out += " min " + render(h.min) + " max " + render(h.max);
      out += " p50 " + render(h.quantile(0.50)) + " p90 " + render(h.quantile(0.90)) +
             " p99 " + render(h.quantile(0.99));
    }
    out += "\n";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const std::string bound = i < h.bounds.size() ? render(h.bounds[i]) : "+inf";
      out += "hist " + name + " le " + bound + " " + std::to_string(h.buckets[i]) + "\n";
    }
  }
  return out;
}

namespace {

/// Prometheus sample values: render()'s fixed precision with trailing
/// zeros trimmed, so bucket bounds read le="0.01", not le="0.010000000".
std::string prom_value(double v) {
  std::string s = render(v);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

/// Prometheus metric names admit [a-zA-Z0-9_:] only (and no leading
/// digit); the registry's dotted names map onto that alphabet.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

}  // namespace

std::string Registry::to_prometheus() const {
  const Snapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + prom_value(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    long long cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le = i < h.bounds.size() ? prom_value(h.bounds[i]) : "+Inf";
      out += n + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
    }
    if (h.buckets.empty()) out += n + "_bucket{le=\"+Inf\"} 0\n";
    out += n + "_sum " + prom_value(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

json::Value Registry::to_json() const {
  const Snapshot snap = snapshot();
  using json::Value;
  Value doc = Value::make_object();
  Value counters = Value::make_object();
  for (const auto& [name, value] : snap.counters) counters[name] = Value::make_int(value);
  doc["counters"] = std::move(counters);

  Value gauges = Value::make_object();
  for (const auto& [name, value] : snap.gauges) gauges[name] = Value::make_num(value);
  doc["gauges"] = std::move(gauges);

  Value hists = Value::make_object();
  for (const auto& [name, h] : snap.histograms) {
    Value v = Value::make_object();
    Value bounds = Value::make_array();
    for (double b : h.bounds) bounds.push_back(Value::make_num(b));
    v["bounds"] = std::move(bounds);
    Value buckets = Value::make_array();
    for (long long b : h.buckets) buckets.push_back(Value::make_int(b));
    v["buckets"] = std::move(buckets);
    v["count"] = Value::make_int(h.count);
    v["sum"] = Value::make_num(h.sum);
    if (h.count > 0) {
      v["min"] = Value::make_num(h.min);
      v["max"] = Value::make_num(h.max);
      v["p50"] = Value::make_num(h.quantile(0.50));
      v["p90"] = Value::make_num(h.quantile(0.90));
      v["p99"] = Value::make_num(h.quantile(0.99));
    }
    hists[name] = std::move(v);
  }
  doc["histograms"] = std::move(hists);
  return doc;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

namespace {
thread_local Registry* tl_current = nullptr;
}  // namespace

Registry& Registry::current() { return tl_current != nullptr ? *tl_current : global(); }

ScopedRegistry::ScopedRegistry(Registry& registry) : previous_(tl_current) {
  tl_current = &registry;
}

ScopedRegistry::~ScopedRegistry() { tl_current = previous_; }

}  // namespace zc::metrics
