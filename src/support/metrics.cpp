#include "src/support/metrics.h"

#include <algorithm>

#include "src/support/str.h"

namespace zc::metrics {

void Histogram::observe(double value) {
  if (buckets.empty()) buckets.assign(bounds.size() + 1, 0);
  std::size_t i = 0;
  while (i < bounds.size() && value > bounds[i]) ++i;
  ++buckets[i];
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double n = static_cast<double>(buckets[i]);
    if (n > 0.0 && cum + n >= target) {
      const double lo = std::clamp(i == 0 ? min : bounds[i - 1], min, max);
      const double hi = std::clamp(i < bounds.size() ? bounds[i] : max, min, max);
      const double frac = (target - cum) / n;
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
    cum += n;
  }
  return max;
}

void Registry::count(std::string_view name, long long delta) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::observe(std::string_view name, double value, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    if (bounds.empty()) {
      for (double b = 1.0; b <= 1048576.0; b *= 2.0) h.bounds.push_back(b);
    } else {
      std::sort(bounds.begin(), bounds.end());
      h.bounds = std::move(bounds);
    }
    it = histograms_.emplace(std::string(name), std::move(h)).first;
  }
  it->second.observe(value);
}

long long Registry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  // The pointer is only stable while no concurrent mutation runs; callers
  // are single-threaded inspectors (tests, report writers) by contract.
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool Registry::empty() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Registry::merge_from(const Registry& other) {
  if (&other == this) return;
  const std::scoped_lock lk(mu_, other.mu_);
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    Histogram& mine = it->second;
    if (h.count == 0) continue;
    if (mine.count == 0) {
      mine = h;
      continue;
    }
    if (mine.bounds == h.bounds) {
      if (mine.buckets.empty()) mine.buckets.assign(mine.bounds.size() + 1, 0);
      for (std::size_t i = 0; i < mine.buckets.size() && i < h.buckets.size(); ++i) {
        mine.buckets[i] += h.buckets[i];
      }
    } else {
      // Bounds disagree: keep this histogram's shape and fold the other's
      // samples into the overflow bucket so the aggregate stays exact.
      if (mine.buckets.empty()) mine.buckets.assign(mine.bounds.size() + 1, 0);
      mine.buckets.back() += h.count;
    }
    mine.count += h.count;
    mine.sum += h.sum;
    mine.min = std::min(mine.min, h.min);
    mine.max = std::max(mine.max, h.max);
  }
}

namespace {

/// Gauge/histogram values render with enough precision to round-trip the
/// magnitudes the simulator produces (seconds, counts).
std::string render(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return str::format_f(v, 9);
}

}  // namespace

std::string Registry::to_text() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += "counter " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out += "gauge " + name + " " + render(value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "hist " + name + " count " + std::to_string(h.count) + " sum " + render(h.sum);
    if (h.count > 0) {
      out += " min " + render(h.min) + " max " + render(h.max);
      out += " p50 " + render(h.quantile(0.50)) + " p90 " + render(h.quantile(0.90)) +
             " p99 " + render(h.quantile(0.99));
    }
    out += "\n";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const std::string bound = i < h.bounds.size() ? render(h.bounds[i]) : "+inf";
      out += "hist " + name + " le " + bound + " " + std::to_string(h.buckets[i]) + "\n";
    }
  }
  return out;
}

json::Value Registry::to_json() const {
  const std::lock_guard<std::mutex> lk(mu_);
  using json::Value;
  Value doc = Value::make_object();
  Value counters = Value::make_object();
  for (const auto& [name, value] : counters_) counters[name] = Value::make_int(value);
  doc["counters"] = std::move(counters);

  Value gauges = Value::make_object();
  for (const auto& [name, value] : gauges_) gauges[name] = Value::make_num(value);
  doc["gauges"] = std::move(gauges);

  Value hists = Value::make_object();
  for (const auto& [name, h] : histograms_) {
    Value v = Value::make_object();
    Value bounds = Value::make_array();
    for (double b : h.bounds) bounds.push_back(Value::make_num(b));
    v["bounds"] = std::move(bounds);
    Value buckets = Value::make_array();
    for (long long b : h.buckets) buckets.push_back(Value::make_int(b));
    v["buckets"] = std::move(buckets);
    v["count"] = Value::make_int(h.count);
    v["sum"] = Value::make_num(h.sum);
    if (h.count > 0) {
      v["min"] = Value::make_num(h.min);
      v["max"] = Value::make_num(h.max);
      v["p50"] = Value::make_num(h.quantile(0.50));
      v["p90"] = Value::make_num(h.quantile(0.90));
      v["p99"] = Value::make_num(h.quantile(0.99));
    }
    hists[name] = std::move(v);
  }
  doc["histograms"] = std::move(hists);
  return doc;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

namespace {
thread_local Registry* tl_current = nullptr;
}  // namespace

Registry& Registry::current() { return tl_current != nullptr ? *tl_current : global(); }

ScopedRegistry::ScopedRegistry(Registry& registry) : previous_(tl_current) {
  tl_current = &registry;
}

ScopedRegistry::~ScopedRegistry() { tl_current = previous_; }

}  // namespace zc::metrics
