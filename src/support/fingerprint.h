// Host and build fingerprints: who produced a measurement. The perf
// archive (src/archive) stamps every envelope with both so trend queries
// can refuse like-for-like comparisons across host classes, run reports
// (schema v5) carry them in the optional "host" block, and the serve
// daemon exposes the build side as the conventional Prometheus
// `zcomm_build_info` gauge.
//
// The host fingerprint is what timing numbers depend on: core count, the
// CPU model string from /proc/cpuinfo, the page size, and whether the
// binary was built under a sanitizer (a tsan build is a different machine
// as far as perf history is concerned). The build fingerprint records the
// toolchain: compiler id/version and the CMake build type.
#pragma once

#include <string>

#include "src/support/json.h"

namespace zc::fingerprint {

/// The project version stamped into build-info expositions and envelopes.
inline constexpr const char* kZcommVersion = "0.9.0";

struct Host {
  int cores = 0;           ///< std::thread::hardware_concurrency (0 = unknown)
  std::string cpu_model;   ///< /proc/cpuinfo "model name" ("" where unavailable)
  long long page_size = 0; ///< sysconf(_SC_PAGESIZE)
  std::string sanitize;    ///< -DZC_SANITIZE value at build time ("" = none)
  bool known = true;       ///< false: a legacy record with no fingerprint
  std::string forced_class;///< test/ops override: host_class() returns this verbatim

  /// The like-for-like comparison key: a slug of the CPU model plus the
  /// core count and sanitizer, e.g. "amd-epyc-7b13/8c"; "unknown" when
  /// !known. Two samples are only ever gated against each other when
  /// their classes are equal.
  [[nodiscard]] std::string host_class() const;

  [[nodiscard]] json::Value to_json() const;
  static Host from_json(const json::Value& v);
};

struct Build {
  std::string compiler;         ///< "gcc 12.2.0" / "clang 15.0.7" / "unknown"
  std::string compiler_version; ///< the compiler's own __VERSION__ string
  std::string build_type;       ///< CMAKE_BUILD_TYPE ("" when not configured)
  std::string sanitize;         ///< -DZC_SANITIZE value ("" = none)

  [[nodiscard]] json::Value to_json() const;
  static Build from_json(const json::Value& v);
};

/// The fingerprints of this process / this binary (computed once).
const Host& current_host();
const Build& current_build();

/// The standard build-info metric convention: a gauge with constant value 1
/// whose labels carry the version/compiler/build/sanitizer identity, plus
/// its `# TYPE` line — ready to append to a Prometheus exposition.
std::string prometheus_build_info();

}  // namespace zc::fingerprint
