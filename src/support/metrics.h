// A small in-process metrics registry: named counters (monotonic),
// gauges (last value wins), and fixed-bucket histograms, published into by
// the driver, the simulation engine, and the optimizer passes, and exposed
// as text (`name value` lines) or JSON for run reports.
//
// The registry is deliberately simple: single-threaded (like the rest of
// the simulator), no label sets, no time series — it answers "what has this
// process done so far", which is what the run reports snapshot. Publishing
// happens at per-plan / per-run granularity, never per message, so the cost
// is negligible and the simulation's timing and numerics are untouched.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.h"

namespace zc::metrics {

/// A fixed-bucket histogram: counts per inclusive upper bound plus an
/// overflow bucket, with exact count/sum/min/max.
struct Histogram {
  std::vector<double> bounds;    ///< sorted inclusive upper bounds
  std::vector<long long> buckets;///< bounds.size() + 1 (last = overflow)
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< valid when count > 0
  double max = 0.0;  ///< valid when count > 0

  void observe(double value);

  /// Estimates the q-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket holding the target rank, clamped to [min, max] so the
  /// overflow bucket and sparse edges cannot extrapolate beyond observed
  /// values. Exact when samples are spread one per bucket; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

class Registry {
 public:
  /// Adds `delta` (default 1) to the named counter, creating it at 0.
  void count(std::string_view name, long long delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void gauge(std::string_view name, double value);

  /// Records `value` into the named histogram. The first observation fixes
  /// the bucket bounds: the given `bounds` if non-empty, else powers of two
  /// 1..2^20. Later `bounds` arguments are ignored.
  void observe(std::string_view name, double value, std::vector<double> bounds = {});

  [[nodiscard]] long long counter(std::string_view name) const;  ///< 0 if absent
  [[nodiscard]] double gauge_value(std::string_view name) const; ///< 0 if absent
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const;

  void reset();

  /// Text exposition: one deterministic `kind name value` line per metric
  /// (histograms expand to their aggregate plus one line per bucket).
  [[nodiscard]] std::string to_text() const;

  /// JSON exposition: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {bounds, buckets, count, sum, min, max}}}.
  [[nodiscard]] json::Value to_json() const;

  /// The process-wide registry the subsystems publish into.
  static Registry& global();

 private:
  std::map<std::string, long long, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace zc::metrics
