// A small in-process metrics registry: named counters (monotonic),
// gauges (last value wins), and fixed-bucket histograms, published into by
// the driver, the simulation engine, and the optimizer passes, and exposed
// as text (`name value` lines) or JSON for run reports.
//
// The registry is deliberately simple: no label sets, no time series — it
// answers "what has this process done so far", which is what the run reports
// snapshot. Publishing happens at per-plan / per-run granularity, never per
// message, so the cost is negligible and the simulation's timing and
// numerics are untouched.
//
// Threading: a Registry is striped — metric names hash onto a fixed set of
// independently mutex-guarded shards, so concurrent publishers (the serve
// subsystem's workers, sweep tasks running without a ScopedRegistry
// redirect) contend only when they touch names that share a shard, not on
// one global lock. Readers (to_text, to_json, merge_from) snapshot shard by
// shard and render from a merged, name-sorted view, so exposition stays
// deterministic. The subsystems publish into Registry::current() — a
// thread-local redirect that defaults to the process-wide global(). The
// parallel sweep engine (src/exec) installs a private registry per worker
// task via ScopedRegistry and merges the per-task registries into the
// submitter's at join, in submission order — so sweep totals are
// deterministic regardless of how tasks were scheduled.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.h"

namespace zc::metrics {

/// A fixed-bucket histogram: counts per inclusive upper bound plus an
/// overflow bucket, with exact count/sum/min/max.
struct Histogram {
  std::vector<double> bounds;    ///< sorted inclusive upper bounds
  std::vector<long long> buckets;///< bounds.size() + 1 (last = overflow)
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< valid when count > 0
  double max = 0.0;  ///< valid when count > 0

  void observe(double value);

  /// Estimates the q-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket holding the target rank, clamped to [min, max] so the
  /// overflow bucket and sparse edges cannot extrapolate beyond observed
  /// values. Exact when samples are spread one per bucket; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

class Registry {
 public:
  /// Adds `delta` (default 1) to the named counter, creating it at 0.
  void count(std::string_view name, long long delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void gauge(std::string_view name, double value);

  /// Records `value` into the named histogram. The first observation fixes
  /// the bucket bounds: the given `bounds` if non-empty, else powers of two
  /// 1..2^20. Later `bounds` arguments are ignored.
  void observe(std::string_view name, double value, std::vector<double> bounds = {});

  [[nodiscard]] long long counter(std::string_view name) const;  ///< 0 if absent
  [[nodiscard]] double gauge_value(std::string_view name) const; ///< 0 if absent
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const;

  void reset();

  /// Text exposition: one deterministic `kind name value` line per metric
  /// (histograms expand to their aggregate plus one line per bucket).
  [[nodiscard]] std::string to_text() const;

  /// JSON exposition: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {bounds, buckets, count, sum, min, max}}}.
  [[nodiscard]] json::Value to_json() const;

  /// Prometheus text exposition (format version 0.0.4): metric names are
  /// sanitized (every char outside [a-zA-Z0-9_:] becomes '_'), each metric
  /// gets a `# TYPE` line, and histograms render as cumulative
  /// `<name>_bucket{le="..."}` series (ending at le="+Inf") plus
  /// `<name>_sum` / `<name>_count`. Deterministic: name-sorted, bit-stable
  /// for a given registry state — what `GET /metrics` serves.
  [[nodiscard]] std::string to_prometheus() const;

  /// Folds another registry into this one: counters add, gauges take the
  /// other's value (last write wins, and `other` is the later run), and
  /// histograms add bucket-wise when the bounds match — on a bounds mismatch
  /// the other's samples fold into this histogram's aggregate and overflow
  /// bucket rather than being dropped. Merging a registry into itself is a
  /// no-op.
  void merge_from(const Registry& other);

  /// The process-wide registry.
  static Registry& global();

  /// The registry this thread publishes into: global() unless a
  /// ScopedRegistry redirect is active.
  static Registry& current();

 private:
  friend class ScopedRegistry;

  /// One lock stripe: the counters/gauges/histograms whose names hash here.
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, long long, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, Histogram, std::less<>> histograms;
  };

  /// A name-sorted copy of every shard's maps (for deterministic exposition
  /// and snapshot-then-apply merging).
  struct Snapshot {
    std::map<std::string, long long, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, Histogram, std::less<>> histograms;
  };

  static constexpr std::size_t kShards = 16;

  [[nodiscard]] Shard& shard_for(std::string_view name) const;
  [[nodiscard]] Snapshot snapshot() const;

  mutable std::array<Shard, kShards> shards_;
};

/// RAII redirect of Registry::current() for this thread — the sweep engine
/// wraps each task in one so every run publishes into its own registry.
/// Nests (restores the previous redirect on destruction).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& registry);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

}  // namespace zc::metrics
