// Structured, leveled logging for the long-running surfaces (the serve
// subsystem and the zcomm_serve daemon). One line per event, in logfmt
// text (`ts=... level=info subsys=serve msg="..." key=value ...`) or
// JSON-lines; field order is the call site's order in both formats.
//
// Contracts, mirroring the other observability layers (trace, passlog,
// prof):
//  - cheap when filtered: the ZC_LOG_* macros test one relaxed atomic
//    before evaluating any field argument — a disabled level costs a
//    load and a branch, and building the fields is never reached;
//  - compile-out-able: building with -DZC_LOG_COMPILED_OUT (CMake option
//    ZC_LOG_OFF) turns every macro into `(void)0`, so the binary carries
//    no logging code at all;
//  - bit-identity: log lines go to the configured sink (stderr, a file,
//    or a capture buffer), never into response streams or reports, so
//    optimize responses are bit-identical with logging on or off
//    (pinned by tests/serve_test.cpp);
//  - rate-limited: an optional lines-per-second cap drops excess lines
//    (counting them) and reports the drop count on the next admitted
//    line, so a hot error path cannot turn the daemon into a log firehose;
//  - thread-safe: the sink write is serialized under one mutex; level
//    and format reads are lock-free.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace zc::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(Level level);

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off".
/// Returns false (leaving `out` untouched) on anything else.
[[nodiscard]] bool parse_level(std::string_view text, Level& out);

enum class Format { kText, kJson };

/// One structured field, rendered at the call site. `quote` marks string
/// values (numbers and booleans emit bare in both formats).
struct Field {
  std::string key;
  std::string value;
  bool quote = true;
};

[[nodiscard]] Field field(std::string_view key, std::string_view value);
[[nodiscard]] Field field(std::string_view key, const char* value);
[[nodiscard]] Field field(std::string_view key, const std::string& value);
[[nodiscard]] Field field(std::string_view key, long long value);
[[nodiscard]] Field field(std::string_view key, unsigned long long value);
[[nodiscard]] Field field(std::string_view key, int value);
[[nodiscard]] Field field(std::string_view key, double value);
[[nodiscard]] Field field(std::string_view key, bool value);

class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(Level level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] Level level() const { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool enabled(Level level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  void set_format(Format format) { format_.store(format, std::memory_order_relaxed); }

  /// Caps admitted lines per wall-clock second; <= 0 removes the cap.
  /// Lines over the cap are dropped and counted; the first admitted line
  /// of a later second carries a `log_dropped=N` field reporting them.
  void set_rate_limit(int max_lines_per_second);

  /// Appends to `path`; returns false (keeping the current sink) when the
  /// file cannot be opened. The logger owns the handle until replaced.
  [[nodiscard]] bool set_file(const std::string& path);

  /// Unowned stream sink (the default is stderr).
  void set_stream(std::FILE* stream);

  /// Test seam: append rendered lines to `buffer` instead of any stream
  /// (null restores the stream sink). The buffer must outlive the redirect.
  void set_capture(std::string* buffer);

  /// Renders and writes one line. Call through the ZC_LOG_* macros so
  /// filtered levels never evaluate their fields.
  void write(Level level, std::string_view subsystem, std::string_view message,
             const std::vector<Field>& fields = {});

  /// Lines discarded by the rate limiter so far.
  [[nodiscard]] long long dropped() const {
    return dropped_total_.load(std::memory_order_relaxed);
  }

  /// The process-wide logger (default: info level, text format, stderr).
  static Logger& global();

 private:
  void close_file();
  void append_timestamp(std::string& out);

  std::atomic<Level> level_{Level::kInfo};
  std::atomic<Format> format_{Format::kText};
  std::atomic<long long> dropped_total_{0};

  std::mutex mu_;  ///< guards everything below plus the sink write
  std::FILE* stream_ = nullptr;  ///< null = stderr
  std::FILE* owned_file_ = nullptr;
  std::string* capture_ = nullptr;
  int rate_limit_ = 0;  ///< admitted lines per second; <= 0 = unlimited
  long long window_second_ = -1;
  int window_count_ = 0;
  long long window_dropped_ = 0;  ///< drops not yet reported on a line
  long long ts_second_ = -1;  ///< second the cached timestamp prefix is for
  char ts_prefix_[24] = {};   ///< "2026-08-08T12:34:56" — gmtime once/second
};

#ifndef ZC_LOG_COMPILED_OUT
#define ZC_LOG_AT(lvl, subsys, msg, ...)                                     \
  (::zc::log::Logger::global().enabled(lvl)                                  \
       ? ::zc::log::Logger::global().write(lvl, subsys, msg,                 \
                                           ::std::vector<::zc::log::Field>{  \
                                               __VA_ARGS__})                 \
       : (void)0)
#else
#define ZC_LOG_AT(lvl, subsys, msg, ...) ((void)0)
#endif

#define ZC_LOG_DEBUG(subsys, msg, ...) \
  ZC_LOG_AT(::zc::log::Level::kDebug, subsys, msg, ##__VA_ARGS__)
#define ZC_LOG_INFO(subsys, msg, ...) \
  ZC_LOG_AT(::zc::log::Level::kInfo, subsys, msg, ##__VA_ARGS__)
#define ZC_LOG_WARN(subsys, msg, ...) \
  ZC_LOG_AT(::zc::log::Level::kWarn, subsys, msg, ##__VA_ARGS__)
#define ZC_LOG_ERROR(subsys, msg, ...) \
  ZC_LOG_AT(::zc::log::Level::kError, subsys, msg, ##__VA_ARGS__)

}  // namespace zc::log
