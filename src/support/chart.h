// ASCII charts for figure reproduction: grouped horizontal bar charts (the
// paper's Figures 8, 10, 11, 12 are bar charts of values scaled to a
// baseline) and multi-series log-scale line listings (Figure 6).
#pragma once

#include <string>
#include <vector>

namespace zc {

/// A grouped horizontal bar chart. Each group (e.g. a benchmark program) has
/// one bar per series (e.g. an optimization level). Values are typically
/// fractions of a baseline; `scale_max` sets the value mapped to full width.
class BarChart {
 public:
  BarChart(std::string title, std::vector<std::string> series_names);

  void set_scale_max(double scale_max) { scale_max_ = scale_max; }
  void set_width(int width) { width_ = width; }
  /// Suffix appended to each printed value, e.g. "%".
  void set_value_suffix(std::string suffix) { suffix_ = std::move(suffix); }

  /// `values` must have one entry per series; NaN renders as "n/a".
  void add_group(std::string name, std::vector<double> values);

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> series_;
  struct Group {
    std::string name;
    std::vector<double> values;
  };
  std::vector<Group> groups_;
  double scale_max_ = 1.0;
  int width_ = 50;
  std::string suffix_;
};

/// A multi-series listing of y-values over shared x-values, with a log-scale
/// ASCII sparkline per row. Used for the Figure 6 overhead-vs-size curves.
class SeriesChart {
 public:
  SeriesChart(std::string title, std::string x_label, std::string y_label);

  void add_series(std::string name, std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
  };
  std::vector<Series> series_;
};

}  // namespace zc
