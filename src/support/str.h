// Small string utilities shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace zc::str {

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

/// Fixed-precision decimal rendering, e.g. format_f(1.23456, 3) == "1.235".
std::string format_f(double value, int precision);

/// Renders with thousands separators: 1234567 -> "1,234,567".
std::string with_commas(long long value);

/// Left/right pads `text` with spaces to `width` (no-op if already wider).
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

/// Renders a percentage of `part` over `whole`, e.g. "42%". Returns "--"
/// when `whole` is zero.
std::string percent(double part, double whole);

}  // namespace zc::str
