#include "src/support/table.h"

#include <algorithm>
#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"

namespace zc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  aligns_.resize(headers_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t column, Align align) {
  ZC_ASSERT(column < aligns_.size());
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  ZC_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_rule = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c > 0) os << "-+-";
      os << std::string(widths[c], '-');
    }
    os << "\n";
  };
  auto render_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << (aligns_[c] == Align::kLeft ? str::pad_right(row[c], widths[c])
                                        : str::pad_left(row[c], widths[c]));
    }
    os << "\n";
  };

  std::ostringstream os;
  render_row(os, headers_);
  render_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_rule(os);
    } else {
      render_row(os, row);
    }
  }
  return os.str();
}

RowBuilder& RowBuilder::cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

RowBuilder& RowBuilder::cell(long long value) {
  cells_.push_back(str::with_commas(value));
  return *this;
}

RowBuilder& RowBuilder::cell(double value, int precision) {
  cells_.push_back(str::format_f(value, precision));
  return *this;
}

RowBuilder& RowBuilder::percent_cell(double part, double whole) {
  cells_.push_back(str::percent(part, whole));
  return *this;
}

}  // namespace zc
