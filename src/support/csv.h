// Minimal CSV writer used by bench harnesses to dump machine-readable
// results alongside the ASCII tables.
#pragma once

#include <string>
#include <vector>

namespace zc {

/// Accumulates rows and renders RFC-4180-ish CSV (fields containing commas,
/// quotes, or newlines are quoted; quotes are doubled).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_string() const;

  /// Writes to `path`; throws zc::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zc
