// Minimal CSV writer used by bench harnesses to dump machine-readable
// results alongside the ASCII tables, plus the matching reader so outputs
// can be round-tripped (trace stats CSV, smoke tests).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace zc {

/// Accumulates rows and renders RFC-4180-ish CSV (fields containing commas,
/// quotes, or newlines are quoted; quotes are doubled).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_string() const;

  /// Writes to `path`; throws zc::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A parsed CSV document: the header line plus data rows, unescaped.
struct Csv {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;

  /// The value in `column` of `row`; throws zc::Error for unknown columns.
  [[nodiscard]] const std::string& cell(std::size_t row, std::string_view column) const;
};

/// Parses RFC-4180-ish CSV (the inverse of CsvWriter: quoted fields may
/// contain commas, doubled quotes, and newlines; CRLF and a missing final
/// newline are accepted). Throws zc::Error on malformed input.
Csv parse_csv(std::string_view text);

}  // namespace zc
