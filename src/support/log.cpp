#include "src/support/log.h"

#include <chrono>
#include <cinttypes>
#include <ctime>

#include "src/support/str.h"

namespace zc::log {

std::string_view to_string(Level level) {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "info";
}

bool parse_level(std::string_view text, Level& out) {
  for (const Level l : {Level::kTrace, Level::kDebug, Level::kInfo, Level::kWarn,
                        Level::kError, Level::kOff}) {
    if (text == to_string(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

namespace {

/// Numbers render integral when exact, else with enough digits for
/// millisecond latencies (the main numeric payload).
std::string render_num(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 && v > -1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return str::format_f(v, 6);
}

/// Escapes into `out` for a double-quoted context shared by logfmt and
/// JSON strings. Append-only: the hot path builds one line buffer and
/// never allocates temporaries.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Field field(std::string_view key, std::string_view value) {
  return Field{std::string(key), std::string(value), true};
}
Field field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}
Field field(std::string_view key, const std::string& value) {
  return field(key, std::string_view(value));
}
Field field(std::string_view key, long long value) {
  return Field{std::string(key), std::to_string(value), false};
}
Field field(std::string_view key, unsigned long long value) {
  return Field{std::string(key), std::to_string(value), false};
}
Field field(std::string_view key, int value) {
  return field(key, static_cast<long long>(value));
}
Field field(std::string_view key, double value) {
  return Field{std::string(key), render_num(value), false};
}
Field field(std::string_view key, bool value) {
  return Field{std::string(key), value ? "true" : "false", false};
}

void Logger::set_rate_limit(int max_lines_per_second) {
  const std::lock_guard<std::mutex> lk(mu_);
  rate_limit_ = max_lines_per_second;
  window_second_ = -1;
  window_count_ = 0;
}

bool Logger::set_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ae");
  if (f == nullptr) return false;
  const std::lock_guard<std::mutex> lk(mu_);
  close_file();
  owned_file_ = f;
  stream_ = f;
  capture_ = nullptr;
  return true;
}

void Logger::set_stream(std::FILE* stream) {
  const std::lock_guard<std::mutex> lk(mu_);
  close_file();
  stream_ = stream;
  capture_ = nullptr;
}

void Logger::set_capture(std::string* buffer) {
  const std::lock_guard<std::mutex> lk(mu_);
  capture_ = buffer;
}

void Logger::close_file() {
  if (owned_file_ != nullptr) {
    std::fclose(owned_file_);
    owned_file_ = nullptr;
    stream_ = nullptr;
  }
}

/// Appends "2026-08-08T12:34:56.789Z". The second-granularity prefix is
/// cached under mu_ — gmtime_r + snprintf run once per wall-clock second,
/// not once per line (the hot-path win the serve overhead gate prices).
void Logger::append_timestamp(std::string& out) {
  const auto now = std::chrono::system_clock::now();
  const long long total_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch())
          .count();
  const long long secs = total_ms / 1000;
  if (secs != ts_second_) {
    std::tm tm{};
    const std::time_t t = static_cast<std::time_t>(secs);
    gmtime_r(&t, &tm);
    std::snprintf(ts_prefix_, sizeof(ts_prefix_), "%04d-%02d-%02dT%02d:%02d:%02d",
                  (tm.tm_year + 1900) % 10000, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec);
    ts_second_ = secs;
  }
  out += ts_prefix_;
  char frac[8];
  std::snprintf(frac, sizeof(frac), ".%03dZ", static_cast<int>(total_ms % 1000));
  out += frac;
}

void Logger::write(Level level, std::string_view subsystem, std::string_view message,
                   const std::vector<Field>& fields) {
  if (!enabled(level)) return;
  const Format format = format_.load(std::memory_order_relaxed);

  const std::lock_guard<std::mutex> lk(mu_);

  long long report_dropped = 0;
  if (rate_limit_ > 0) {
    const long long second =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (second != window_second_) {
      window_second_ = second;
      window_count_ = 0;
    }
    if (window_count_ >= rate_limit_) {
      ++window_dropped_;
      dropped_total_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++window_count_;
    report_dropped = window_dropped_;
    window_dropped_ = 0;
  }

  std::string line;
  line.reserve(192);
  if (format == Format::kJson) {
    line += "{\"ts\":\"";
    append_timestamp(line);
    line += "\",\"level\":\"";
    line += to_string(level);
    line += "\",\"subsys\":\"";
    append_escaped(line, subsystem);
    line += "\",\"msg\":\"";
    append_escaped(line, message);
    line += '"';
    for (const Field& f : fields) {
      line += ",\"";
      append_escaped(line, f.key);
      line += "\":";
      if (f.quote) {
        line += '"';
        append_escaped(line, f.value);
        line += '"';
      } else {
        line += f.value;
      }
    }
    if (report_dropped > 0) {
      line += ",\"log_dropped\":";
      line += std::to_string(report_dropped);
    }
    line += '}';
  } else {
    line += "ts=";
    append_timestamp(line);
    line += " level=";
    line += to_string(level);
    line += " subsys=";
    line += subsystem;
    line += " msg=\"";
    append_escaped(line, message);
    line += '"';
    for (const Field& f : fields) {
      line += ' ';
      line += f.key;
      line += '=';
      if (f.quote) {
        line += '"';
        append_escaped(line, f.value);
        line += '"';
      } else {
        line += f.value;
      }
    }
    if (report_dropped > 0) {
      line += " log_dropped=";
      line += std::to_string(report_dropped);
    }
  }
  line += '\n';

  if (capture_ != nullptr) {
    *capture_ += line;
    return;
  }
  std::FILE* out = stream_ != nullptr ? stream_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

}  // namespace zc::log
