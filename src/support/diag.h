// Diagnostics: source locations, user-facing errors, and an error sink used
// by the parser and semantic analysis.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace zc {

/// A position in a mini-ZPL source buffer. Lines and columns are 1-based;
/// line 0 means "no location" (e.g. errors from the builder API).
struct SourceLoc {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool valid() const { return line > 0; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// User-facing error (bad source program, bad configuration). Internal
/// invariant violations use ZC_ASSERT instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
  Error(SourceLoc loc, const std::string& message);

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_{};
};

/// One recorded diagnostic.
struct Diagnostic {
  enum class Severity { kError, kWarning, kNote };
  Severity severity = Severity::kError;
  SourceLoc loc{};
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Collects diagnostics during parsing / semantic analysis so that multiple
/// errors can be reported from a single compile. `Parser::parse` records
/// everything here and the driver decides whether to throw.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] int error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// All diagnostics, one per line, for embedding in an Error message.
  [[nodiscard]] std::string to_string() const;

  /// Throws zc::Error with the collected messages if any error was recorded.
  void throw_if_errors(const std::string& context) const;

 private:
  std::vector<Diagnostic> diags_;
  int error_count_ = 0;
};

}  // namespace zc
