// A lightweight JSON value parser, used to validate the trace subsystem's
// Chrome trace-event output (tests and the trace_smoke ctest) without an
// external dependency. Parsing only — serialization is the exporters' job.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace zc::json {

/// A parsed JSON value. Object member order is not preserved (members are
/// keyed); numbers are doubles (adequate for trace timestamps/counters).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }

  /// Object member access; throws zc::Error when not an object or missing.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
};

/// Parses one JSON document (throws zc::Error on syntax errors or trailing
/// garbage).
Value parse(std::string_view text);

}  // namespace zc::json
