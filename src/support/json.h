// A lightweight JSON value: parser plus builder/serializer. Parsing is used
// to validate the trace subsystem's Chrome trace-event output; building and
// `dump` back the machine-readable run reports (src/driver/report) and the
// bench perf files (bench/common) without an external dependency.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace zc::json {

/// A parsed JSON value. Object member order is not preserved (members are
/// keyed); numbers are doubles (adequate for trace timestamps/counters).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }

  /// Object member access; throws zc::Error when not an object or missing.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  // --- construction (exporters: run reports, bench perf JSON) ------------
  [[nodiscard]] static Value make_null();
  [[nodiscard]] static Value make_bool(bool b);
  [[nodiscard]] static Value make_num(double v);
  [[nodiscard]] static Value make_int(long long v);
  [[nodiscard]] static Value make_str(std::string s);
  [[nodiscard]] static Value make_array();
  [[nodiscard]] static Value make_object();

  /// Builder member access: creates the member (null) if absent. A null
  /// value silently becomes an object; any other non-object kind throws.
  Value& operator[](const std::string& key);

  /// Array append; a null value silently becomes an array.
  void push_back(Value v);

  /// Serializes: object keys sorted (map order), shortest round-trip
  /// numbers (integral values print without a decimal point), `indent`
  /// spaces per nesting level (0 = compact single line). Non-finite
  /// numbers render as null — JSON has no NaN/Inf.
  [[nodiscard]] std::string dump(int indent = 2) const;
};

/// Guard rails for parsing untrusted input (the serve subsystem's request
/// lines). Every limit violation throws zc::Error carrying the byte offset
/// where parsing stopped — there is no unbounded recursion or allocation
/// path for any input.
struct ParseLimits {
  /// Documents larger than this are rejected before any parsing.
  std::size_t max_bytes = 16u << 20;  // 16 MiB
  /// Maximum container (object/array) nesting depth. The parser recurses
  /// per level, so this bounds stack use for adversarial inputs like
  /// "[[[[[...".
  int max_depth = 128;
};

/// Parses one JSON document (throws zc::Error, with the byte offset, on
/// syntax errors, trailing garbage, or a ParseLimits violation).
Value parse(std::string_view text, const ParseLimits& limits = {});

}  // namespace zc::json
