// Internal invariant checking.
//
// ZC_ASSERT is for programmer errors (broken invariants); it aborts with a
// source location. User-facing errors (bad programs, bad parameters) should
// throw zc::Error instead (see diag.h).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace zc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "zcomm internal error: assertion `%s` failed at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace zc::detail

#define ZC_ASSERT(expr)                                        \
  do {                                                         \
    if (!(expr)) ::zc::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)
