#include "src/support/io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/support/diag.h"

namespace zc::io {

namespace {

std::string os_reason() {
  const int err = errno;
  return err != 0 ? std::strerror(err) : "unknown I/O error";
}

}  // namespace

void write_text_file(const std::string& path, std::string_view content) {
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open '" + path + "' for writing: " + os_reason());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) throw Error("cannot write '" + path + "': " + os_reason());
}

std::string read_text_file(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "' for reading: " + os_reason());
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw Error("cannot read '" + path + "': " + os_reason());
  return std::move(buf).str();
}

}  // namespace zc::io
