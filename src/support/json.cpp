#include "src/support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/support/diag.h"

namespace zc::json {

namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParseLimits& limits) : text_(text), limits_(limits) {}

  Value parse_document() {
    if (text_.size() > limits_.max_bytes) {
      throw Error("JSON document of " + std::to_string(text_.size()) +
                  " bytes exceeds the " + std::to_string(limits_.max_bytes) +
                  "-byte limit");
    }
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  /// RAII nesting guard: containers recurse through parse_value, so the
  /// depth bound is what keeps "[[[[..." from unbounded stack growth.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > p_.limits_.max_depth) {
        p_.fail("nesting deeper than " + std::to_string(p_.limits_.max_depth) + " levels");
      }
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& p_;
  };

  Value parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // ASCII is all the exporters emit; encode the rest as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Strict JSON: a number is '-'? digit ... — no leading '+', no bare '-',
    // nothing strtod-lenient like "inf".
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("expected a value");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return v;
  }

  std::string_view text_;
  ParseLimits limits_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Value& Value::at(const std::string& key) const {
  if (kind != Kind::kObject) throw Error("JSON value is not an object (key '" + key + "')");
  const auto it = object.find(key);
  if (it == object.end()) throw Error("JSON object has no member '" + key + "'");
  return it->second;
}

bool Value::has(const std::string& key) const {
  return kind == Kind::kObject && object.count(key) > 0;
}

Value Value::make_null() { return Value{}; }

Value Value::make_bool(bool b) {
  Value v;
  v.kind = Kind::kBool;
  v.boolean = b;
  return v;
}

Value Value::make_num(double value) {
  Value v;
  v.kind = Kind::kNumber;
  v.number = value;
  return v;
}

Value Value::make_int(long long value) { return make_num(static_cast<double>(value)); }

Value Value::make_str(std::string s) {
  Value v;
  v.kind = Kind::kString;
  v.string = std::move(s);
  return v;
}

Value Value::make_array() {
  Value v;
  v.kind = Kind::kArray;
  return v;
}

Value Value::make_object() {
  Value v;
  v.kind = Kind::kObject;
  return v;
}

Value& Value::operator[](const std::string& key) {
  if (kind == Kind::kNull) kind = Kind::kObject;
  if (kind != Kind::kObject) throw Error("JSON value is not an object (key '" + key + "')");
  return object[key];
}

void Value::push_back(Value v) {
  if (kind == Kind::kNull) kind = Kind::kArray;
  if (kind != Kind::kArray) throw Error("JSON value is not an array");
  array.push_back(std::move(v));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integral values within the exact-double range print as integers.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (v.kind) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.boolean ? "true" : "false"; break;
    case Value::Kind::kNumber: append_number(out, v.number); break;
    case Value::Kind::kString: append_escaped(out, v.string); break;
    case Value::Kind::kArray: {
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += pad;
        dump_value(v.array[i], out, indent, depth + 1);
        if (i + 1 < v.array.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, member] : v.object) {
        out += pad;
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        dump_value(member, out, indent, depth + 1);
        if (++i < v.object.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Value parse(std::string_view text, const ParseLimits& limits) {
  return Parser(text, limits).parse_document();
}

}  // namespace zc::json
