#include "src/driver/driver.h"

#include <chrono>

#include "src/parser/parser.h"
#include "src/prof/procstat.h"
#include "src/prof/prof.h"
#include "src/support/check.h"
#include "src/support/metrics.h"

namespace zc::driver {

std::vector<Experiment> paper_experiments() {
  using comm::CombineHeuristic;
  using comm::OptLevel;
  using comm::OptOptions;
  using ironman::CommLibrary;

  std::vector<Experiment> exps;
  exps.push_back({"baseline", OptOptions::for_level(OptLevel::kBaseline), CommLibrary::kPVM});
  exps.push_back({"rr", OptOptions::for_level(OptLevel::kRR), CommLibrary::kPVM});
  exps.push_back({"cc", OptOptions::for_level(OptLevel::kCC), CommLibrary::kPVM});
  exps.push_back({"pl", OptOptions::for_level(OptLevel::kPL), CommLibrary::kPVM});
  exps.push_back({"pl with shmem", OptOptions::for_level(OptLevel::kPL), CommLibrary::kSHMEM});
  Experiment maxlat{"pl with max latency", OptOptions::for_level(OptLevel::kPL),
                    CommLibrary::kSHMEM};
  maxlat.opts.heuristic = CombineHeuristic::kMaxLatency;
  exps.push_back(std::move(maxlat));
  return exps;
}

std::optional<Experiment> find_experiment(std::string_view name) {
  for (Experiment& e : paper_experiments()) {
    if (e.name == name) return std::move(e);
  }
  return std::nullopt;
}

Compiled compile(std::string_view source, const comm::OptOptions& opts) {
  return compile(parser::parse_program(source), opts);
}

Compiled compile(zir::Program program, const comm::OptOptions& opts) {
  Compiled c{std::move(program), {}};
  c.plan = comm::plan_communication(c.program, opts);
  return c;
}

Metrics run_experiment(const zir::Program& program, const Experiment& experiment,
                       sim::RunConfig config) {
  comm::CommPlan plan = comm::plan_communication(program, experiment.opts);
  return run_planned(program, plan, experiment, std::move(config));
}

Metrics run_planned(const zir::Program& program, const comm::CommPlan& plan,
                    const Experiment& experiment, sim::RunConfig config) {
  ZC_PROF_SPAN("driver/run_experiment");
  const auto wall_start = std::chrono::steady_clock::now();
  config.library = experiment.library;

  Metrics m;
  m.static_count = plan.static_count();
  trace::Recorder* recorder = config.recorder;
  m.run = sim::run_program(program, plan, std::move(config));
  m.dynamic_count = m.run.dynamic_count;
  m.execution_time = m.run.elapsed_seconds;
  m.plan = plan;
  if (recorder != nullptr) m.trace_stats = trace::compute_stats(*recorder);

  auto& reg = metrics::Registry::current();
  reg.count("driver.experiments");
  reg.gauge("driver.last_static_count", static_cast<double>(m.static_count));
  reg.gauge("driver.last_dynamic_count", static_cast<double>(m.dynamic_count));
  reg.gauge("driver.last_execution_seconds", m.execution_time);
  // Host-side cost of the run itself (the simulated counters above measure
  // the virtual machine): end-to-end wall time plus the process's peak RSS,
  // so --metrics shows what this toolchain costs the machine it runs on.
  reg.gauge("process.last_run_wall_seconds",
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                .count());
  reg.gauge("process.peak_rss_bytes", static_cast<double>(prof::peak_rss_bytes()));
  return m;
}

Metrics run_source(std::string_view source, const Experiment& experiment, int procs,
                   const std::map<std::string, long long>& config_overrides) {
  const zir::Program program = parser::parse_program(source);
  sim::RunConfig cfg;
  cfg.procs = procs;
  cfg.config_overrides = config_overrides;
  return run_experiment(program, experiment, std::move(cfg));
}

}  // namespace zc::driver
