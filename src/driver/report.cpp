#include "src/driver/report.h"

#include <utility>

#include <map>

#include "src/analysis/blame.h"
#include "src/analysis/critpath.h"
#include "src/prof/procstat.h"
#include "src/support/diag.h"
#include "src/support/fingerprint.h"
#include "src/support/metrics.h"
#include "src/trace/stats.h"

namespace zc::driver {

namespace {

using json::Value;

Value options_json(const comm::OptOptions& o) {
  Value v = Value::make_object();
  v["remove_redundant"] = Value::make_bool(o.remove_redundant);
  v["combine"] = Value::make_bool(o.combine);
  v["pipeline"] = Value::make_bool(o.pipeline);
  v["heuristic"] = Value::make_str(comm::to_string(o.heuristic));
  v["inter_block"] = Value::make_bool(o.inter_block);
  return v;
}

Value trace_json(const trace::Stats& s) {
  Value v = Value::make_object();
  v["total_messages"] = Value::make_int(s.total_messages);
  v["total_bytes"] = Value::make_int(s.total_bytes);
  v["exposed_overhead_seconds"] = Value::make_num(s.exposed_overhead_seconds);
  v["wire_seconds"] = Value::make_num(s.wire.wire_seconds);
  v["exposed_wire_seconds"] = Value::make_num(s.wire.exposed_seconds);
  v["overlap_fraction"] = Value::make_num(s.overlap_fraction());
  v["compute_seconds"] = Value::make_num(s.compute_seconds);
  v["barrier_seconds"] = Value::make_num(s.barrier_seconds);
  v["barrier_count"] = Value::make_int(s.barrier_count);
  v["channels"] = Value::make_int(static_cast<long long>(s.channels.size()));
  v["dropped_events"] = Value::make_int(s.dropped_events);
  v["dropped_messages"] = Value::make_int(s.dropped_messages);
  return v;
}

}  // namespace

Value build_report(const Metrics& metrics, const Experiment& experiment, int procs,
                   const report::PassLog* log, const ReportOptions& ropts) {
  Value doc = Value::make_object();
  doc["schema"] = Value::make_str("zcomm-run-report");
  doc["schema_version"] = Value::make_int(5);
  doc["benchmark"] = Value::make_str(ropts.benchmark);
  doc["experiment"] = Value::make_str(experiment.name);
  doc["library"] = Value::make_str(ironman::to_string(experiment.library));
  doc["procs"] = Value::make_int(procs);
  doc["options"] = options_json(experiment.opts);

  doc["static_count"] = Value::make_int(metrics.static_count);
  doc["dynamic_count"] = Value::make_int(metrics.dynamic_count);
  doc["execution_time_seconds"] = Value::make_num(metrics.execution_time);
  doc["total_messages"] = Value::make_int(metrics.run.total_messages);
  doc["total_bytes"] = Value::make_int(metrics.run.total_bytes);
  doc["reduction_count"] = Value::make_int(metrics.run.reduction_count);

  if (ropts.host_fingerprint) {
    // Who measured this: the host class the perf archive compares
    // like-for-like, plus the toolchain. Deterministic per machine/build —
    // no timestamps, so response streams and goldens stay bit-stable.
    Value host = fingerprint::current_host().to_json();
    host["build"] = fingerprint::current_build().to_json();
    doc["host"] = std::move(host);
  }

  if (log != nullptr) doc["passes"] = log->to_json(ropts.max_decisions_per_pass);
  if (metrics.trace_stats.has_value()) doc["trace"] = trace_json(*metrics.trace_stats);
  if (ropts.metrics_snapshot) doc["metrics"] = metrics::Registry::current().to_json();
  if (ropts.host_profiler != nullptr) {
    Value hp = ropts.host_profiler->to_json();
    hp["peak_rss_bytes"] = Value::make_int(prof::peak_rss_bytes());
    doc["host_profile"] = std::move(hp);
  }
  if (ropts.timeline != nullptr) doc["timeline"] = ropts.timeline->to_json();
  return doc;
}

Value run_report(const zir::Program& program, const Experiment& experiment,
                 sim::RunConfig config, const ReportOptions& ropts) {
  ReportOptions opts = ropts;
  if (opts.benchmark.empty()) opts.benchmark = program.name();

  Experiment e = experiment;
  report::PassLog log;
  if (opts.provenance) e.opts.pass_log = &log;

  const int procs = config.procs;
  const trace::Recorder* recorder = config.recorder;
  // A timeline attached to the run lands in the report unless the caller
  // explicitly supplied a (possibly different) series to embed.
  if (opts.timeline == nullptr) opts.timeline = config.timeline;
  const Metrics m = run_experiment(program, e, std::move(config));
  Value doc = build_report(m, e, procs, opts.provenance ? &log : nullptr, opts);
  if (recorder != nullptr && opts.attribution) {
    attach_attribution(doc, *recorder, program, m.plan, opts.max_attribution_rows);
  }
  return doc;
}

void attach_attribution(json::Value& doc, const trace::Recorder& recorder,
                        const zir::Program& program, const comm::CommPlan& plan,
                        int max_rows) {
  doc["blame"] = analysis::compute_blame(recorder, program, plan).to_json(max_rows);
  doc["critical_path"] =
      analysis::compute_critical_path(recorder, program, plan).to_json(max_rows);
}

json::Value diff_run_reports(const json::Value& before, const json::Value& after,
                             double time_tolerance,
                             const std::vector<std::string>& strict_fields) {
  const auto num_field = [](const Value& doc, const std::string& key) {
    const Value& v = doc.at(key);
    if (!v.is_number()) throw Error("report field '" + key + "' is not a number");
    return v.number;
  };
  const auto label = [](const Value& doc) {
    std::string s;
    if (doc.has("benchmark")) s = doc.at("benchmark").string;
    if (doc.has("experiment")) {
      if (!s.empty()) s += "/";
      s += doc.at("experiment").string;
    }
    return s;
  };

  Value diff = Value::make_object();
  diff["before"] = Value::make_str(label(before));
  diff["after"] = Value::make_str(label(after));
  bool regressed = false;

  Value fields = Value::make_array();
  const auto add_field = [&](const std::string& name, double allowed_growth) {
    const double b = num_field(before, name);
    const double a = num_field(after, name);
    const bool bad = a > b * (1.0 + allowed_growth);
    Value f = Value::make_object();
    f["name"] = Value::make_str(name);
    f["before"] = Value::make_num(b);
    f["after"] = Value::make_num(a);
    f["delta"] = Value::make_num(a - b);
    f["regressed"] = Value::make_bool(bad);
    fields.push_back(std::move(f));
    regressed = regressed || bad;
  };
  add_field("static_count", 0.0);
  add_field("dynamic_count", 0.0);
  add_field("execution_time_seconds", time_tolerance);
  diff["fields"] = std::move(fields);

  Value strict = Value::make_array();
  for (const std::string& name : strict_fields) {
    Value f = Value::make_object();
    f["name"] = Value::make_str(name);
    if (!before.has(name) || !after.has(name)) {
      // One side lacks the field (e.g. a strict trace metric against an
      // untraced report): surface the asymmetry instead of failing the diff.
      f["comparable"] = Value::make_bool(false);
      f["improved"] = Value::make_bool(false);
    } else {
      const double b = num_field(before, name);
      const double a = num_field(after, name);
      const bool ok = a < b;
      f["comparable"] = Value::make_bool(true);
      f["before"] = Value::make_num(b);
      f["after"] = Value::make_num(a);
      f["improved"] = Value::make_bool(ok);
      regressed = regressed || !ok;
    }
    strict.push_back(std::move(f));
  }
  diff["strict"] = std::move(strict);

  // Optional blocks may legitimately differ between runs (one traced or
  // profiled, the other not). Presence asymmetry is reported, never treated
  // as a regression or a structural error.
  Value blocks = Value::make_array();
  for (const char* name : {"passes", "trace", "blame", "critical_path", "metrics",
                           "host_profile", "timeline", "host"}) {
    const bool in_before = before.has(name);
    const bool in_after = after.has(name);
    if (!in_before && !in_after) continue;
    Value b = Value::make_object();
    b["name"] = Value::make_str(name);
    b["before"] = Value::make_bool(in_before);
    b["after"] = Value::make_bool(in_after);
    blocks.push_back(std::move(b));
  }
  diff["optional_blocks"] = std::move(blocks);
  diff["regressed"] = Value::make_bool(regressed);
  return diff;
}

namespace {

/// Flattens a host_profile span forest into path -> total_seconds, paths
/// joined with ';' (the folded-stack separator).
void flatten_spans(const Value& spans, const std::string& prefix,
                   std::map<std::string, double>& out) {
  for (const Value& s : spans.array) {
    const std::string path =
        prefix.empty() ? s.at("name").string : prefix + ";" + s.at("name").string;
    out[path] += s.at("total_seconds").number;
    if (s.has("children")) flatten_spans(s.at("children"), path, out);
  }
}

}  // namespace

json::Value perf_budget_diff(const json::Value& before, const json::Value& after,
                             double budget_pct, double abs_floor_seconds) {
  if (!before.has("host_profile") || !after.has("host_profile")) {
    throw Error("perf-budget diff needs host_profile in both reports "
                "(rerun with --profile)");
  }
  const Value& hb = before.at("host_profile");
  const Value& ha = after.at("host_profile");
  const auto over_budget = [&](double b, double a) {
    return a > b * (1.0 + budget_pct / 100.0) + abs_floor_seconds;
  };

  Value diff = Value::make_object();
  diff["budget_pct"] = Value::make_num(budget_pct);
  diff["abs_floor_seconds"] = Value::make_num(abs_floor_seconds);
  bool regressed = false;

  const double wall_b = hb.at("wall_seconds").number;
  const double wall_a = ha.at("wall_seconds").number;
  Value wall = Value::make_object();
  wall["before"] = Value::make_num(wall_b);
  wall["after"] = Value::make_num(wall_a);
  wall["regressed"] = Value::make_bool(over_budget(wall_b, wall_a));
  regressed = regressed || over_budget(wall_b, wall_a);
  diff["wall"] = std::move(wall);

  std::map<std::string, double> spans_b, spans_a;
  flatten_spans(hb.at("spans"), "", spans_b);
  flatten_spans(ha.at("spans"), "", spans_a);

  Value spans = Value::make_array();
  Value only_before = Value::make_array();
  Value only_after = Value::make_array();
  for (const auto& [path, b] : spans_b) {
    const auto it = spans_a.find(path);
    if (it == spans_a.end()) {
      only_before.push_back(Value::make_str(path));
      continue;
    }
    const bool bad = over_budget(b, it->second);
    Value f = Value::make_object();
    f["path"] = Value::make_str(path);
    f["before"] = Value::make_num(b);
    f["after"] = Value::make_num(it->second);
    f["regressed"] = Value::make_bool(bad);
    spans.push_back(std::move(f));
    regressed = regressed || bad;
  }
  for (const auto& [path, a] : spans_a) {
    if (spans_b.find(path) == spans_b.end()) only_after.push_back(Value::make_str(path));
  }
  diff["spans"] = std::move(spans);
  diff["only_before"] = std::move(only_before);
  diff["only_after"] = std::move(only_after);
  diff["regressed"] = Value::make_bool(regressed);
  return diff;
}

}  // namespace zc::driver
