#include "src/driver/report.h"

#include <utility>

#include "src/support/metrics.h"
#include "src/trace/stats.h"

namespace zc::driver {

namespace {

using json::Value;

Value options_json(const comm::OptOptions& o) {
  Value v = Value::make_object();
  v["remove_redundant"] = Value::make_bool(o.remove_redundant);
  v["combine"] = Value::make_bool(o.combine);
  v["pipeline"] = Value::make_bool(o.pipeline);
  v["heuristic"] = Value::make_str(comm::to_string(o.heuristic));
  v["inter_block"] = Value::make_bool(o.inter_block);
  return v;
}

Value trace_json(const trace::Stats& s) {
  Value v = Value::make_object();
  v["total_messages"] = Value::make_int(s.total_messages);
  v["total_bytes"] = Value::make_int(s.total_bytes);
  v["exposed_overhead_seconds"] = Value::make_num(s.exposed_overhead_seconds);
  v["wire_seconds"] = Value::make_num(s.wire.wire_seconds);
  v["exposed_wire_seconds"] = Value::make_num(s.wire.exposed_seconds);
  v["overlap_fraction"] = Value::make_num(s.overlap_fraction());
  v["compute_seconds"] = Value::make_num(s.compute_seconds);
  v["barrier_seconds"] = Value::make_num(s.barrier_seconds);
  v["barrier_count"] = Value::make_int(s.barrier_count);
  v["channels"] = Value::make_int(static_cast<long long>(s.channels.size()));
  v["dropped_events"] = Value::make_int(s.dropped_events);
  v["dropped_messages"] = Value::make_int(s.dropped_messages);
  return v;
}

}  // namespace

Value build_report(const Metrics& metrics, const Experiment& experiment, int procs,
                   const report::PassLog* log, const ReportOptions& ropts) {
  Value doc = Value::make_object();
  doc["schema"] = Value::make_str("zcomm-run-report");
  doc["schema_version"] = Value::make_int(1);
  doc["benchmark"] = Value::make_str(ropts.benchmark);
  doc["experiment"] = Value::make_str(experiment.name);
  doc["library"] = Value::make_str(ironman::to_string(experiment.library));
  doc["procs"] = Value::make_int(procs);
  doc["options"] = options_json(experiment.opts);

  doc["static_count"] = Value::make_int(metrics.static_count);
  doc["dynamic_count"] = Value::make_int(metrics.dynamic_count);
  doc["execution_time_seconds"] = Value::make_num(metrics.execution_time);
  doc["total_messages"] = Value::make_int(metrics.run.total_messages);
  doc["total_bytes"] = Value::make_int(metrics.run.total_bytes);
  doc["reduction_count"] = Value::make_int(metrics.run.reduction_count);

  if (log != nullptr) doc["passes"] = log->to_json(ropts.max_decisions_per_pass);
  if (metrics.trace_stats.has_value()) doc["trace"] = trace_json(*metrics.trace_stats);
  if (ropts.metrics_snapshot) doc["metrics"] = metrics::Registry::global().to_json();
  return doc;
}

Value run_report(const zir::Program& program, const Experiment& experiment,
                 sim::RunConfig config, const ReportOptions& ropts) {
  ReportOptions opts = ropts;
  if (opts.benchmark.empty()) opts.benchmark = program.name();

  Experiment e = experiment;
  report::PassLog log;
  if (opts.provenance) e.opts.pass_log = &log;

  const int procs = config.procs;
  const Metrics m = run_experiment(program, e, std::move(config));
  return build_report(m, e, procs, opts.provenance ? &log : nullptr, opts);
}

}  // namespace zc::driver
