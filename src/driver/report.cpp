#include "src/driver/report.h"

#include <utility>

#include "src/analysis/blame.h"
#include "src/analysis/critpath.h"
#include "src/support/diag.h"
#include "src/support/metrics.h"
#include "src/trace/stats.h"

namespace zc::driver {

namespace {

using json::Value;

Value options_json(const comm::OptOptions& o) {
  Value v = Value::make_object();
  v["remove_redundant"] = Value::make_bool(o.remove_redundant);
  v["combine"] = Value::make_bool(o.combine);
  v["pipeline"] = Value::make_bool(o.pipeline);
  v["heuristic"] = Value::make_str(comm::to_string(o.heuristic));
  v["inter_block"] = Value::make_bool(o.inter_block);
  return v;
}

Value trace_json(const trace::Stats& s) {
  Value v = Value::make_object();
  v["total_messages"] = Value::make_int(s.total_messages);
  v["total_bytes"] = Value::make_int(s.total_bytes);
  v["exposed_overhead_seconds"] = Value::make_num(s.exposed_overhead_seconds);
  v["wire_seconds"] = Value::make_num(s.wire.wire_seconds);
  v["exposed_wire_seconds"] = Value::make_num(s.wire.exposed_seconds);
  v["overlap_fraction"] = Value::make_num(s.overlap_fraction());
  v["compute_seconds"] = Value::make_num(s.compute_seconds);
  v["barrier_seconds"] = Value::make_num(s.barrier_seconds);
  v["barrier_count"] = Value::make_int(s.barrier_count);
  v["channels"] = Value::make_int(static_cast<long long>(s.channels.size()));
  v["dropped_events"] = Value::make_int(s.dropped_events);
  v["dropped_messages"] = Value::make_int(s.dropped_messages);
  return v;
}

}  // namespace

Value build_report(const Metrics& metrics, const Experiment& experiment, int procs,
                   const report::PassLog* log, const ReportOptions& ropts) {
  Value doc = Value::make_object();
  doc["schema"] = Value::make_str("zcomm-run-report");
  doc["schema_version"] = Value::make_int(2);
  doc["benchmark"] = Value::make_str(ropts.benchmark);
  doc["experiment"] = Value::make_str(experiment.name);
  doc["library"] = Value::make_str(ironman::to_string(experiment.library));
  doc["procs"] = Value::make_int(procs);
  doc["options"] = options_json(experiment.opts);

  doc["static_count"] = Value::make_int(metrics.static_count);
  doc["dynamic_count"] = Value::make_int(metrics.dynamic_count);
  doc["execution_time_seconds"] = Value::make_num(metrics.execution_time);
  doc["total_messages"] = Value::make_int(metrics.run.total_messages);
  doc["total_bytes"] = Value::make_int(metrics.run.total_bytes);
  doc["reduction_count"] = Value::make_int(metrics.run.reduction_count);

  if (log != nullptr) doc["passes"] = log->to_json(ropts.max_decisions_per_pass);
  if (metrics.trace_stats.has_value()) doc["trace"] = trace_json(*metrics.trace_stats);
  if (ropts.metrics_snapshot) doc["metrics"] = metrics::Registry::global().to_json();
  return doc;
}

Value run_report(const zir::Program& program, const Experiment& experiment,
                 sim::RunConfig config, const ReportOptions& ropts) {
  ReportOptions opts = ropts;
  if (opts.benchmark.empty()) opts.benchmark = program.name();

  Experiment e = experiment;
  report::PassLog log;
  if (opts.provenance) e.opts.pass_log = &log;

  const int procs = config.procs;
  const trace::Recorder* recorder = config.recorder;
  const Metrics m = run_experiment(program, e, std::move(config));
  Value doc = build_report(m, e, procs, opts.provenance ? &log : nullptr, opts);
  if (recorder != nullptr && opts.attribution) {
    attach_attribution(doc, *recorder, program, m.plan, opts.max_attribution_rows);
  }
  return doc;
}

void attach_attribution(json::Value& doc, const trace::Recorder& recorder,
                        const zir::Program& program, const comm::CommPlan& plan,
                        int max_rows) {
  doc["blame"] = analysis::compute_blame(recorder, program, plan).to_json(max_rows);
  doc["critical_path"] =
      analysis::compute_critical_path(recorder, program, plan).to_json(max_rows);
}

json::Value diff_run_reports(const json::Value& before, const json::Value& after,
                             double time_tolerance,
                             const std::vector<std::string>& strict_fields) {
  const auto num_field = [](const Value& doc, const std::string& key) {
    const Value& v = doc.at(key);
    if (!v.is_number()) throw Error("report field '" + key + "' is not a number");
    return v.number;
  };
  const auto label = [](const Value& doc) {
    std::string s;
    if (doc.has("benchmark")) s = doc.at("benchmark").string;
    if (doc.has("experiment")) {
      if (!s.empty()) s += "/";
      s += doc.at("experiment").string;
    }
    return s;
  };

  Value diff = Value::make_object();
  diff["before"] = Value::make_str(label(before));
  diff["after"] = Value::make_str(label(after));
  bool regressed = false;

  Value fields = Value::make_array();
  const auto add_field = [&](const std::string& name, double allowed_growth) {
    const double b = num_field(before, name);
    const double a = num_field(after, name);
    const bool bad = a > b * (1.0 + allowed_growth);
    Value f = Value::make_object();
    f["name"] = Value::make_str(name);
    f["before"] = Value::make_num(b);
    f["after"] = Value::make_num(a);
    f["delta"] = Value::make_num(a - b);
    f["regressed"] = Value::make_bool(bad);
    fields.push_back(std::move(f));
    regressed = regressed || bad;
  };
  add_field("static_count", 0.0);
  add_field("dynamic_count", 0.0);
  add_field("execution_time_seconds", time_tolerance);
  diff["fields"] = std::move(fields);

  Value strict = Value::make_array();
  for (const std::string& name : strict_fields) {
    const double b = num_field(before, name);
    const double a = num_field(after, name);
    const bool ok = a < b;
    Value f = Value::make_object();
    f["name"] = Value::make_str(name);
    f["before"] = Value::make_num(b);
    f["after"] = Value::make_num(a);
    f["improved"] = Value::make_bool(ok);
    strict.push_back(std::move(f));
    regressed = regressed || !ok;
  }
  diff["strict"] = std::move(strict);
  diff["regressed"] = Value::make_bool(regressed);
  return diff;
}

}  // namespace zc::driver
