// One-call façade tying the pipeline together: parse mini-ZPL, plan
// communication at an optimization level, run on a simulated machine, and
// report the paper's metrics (static count, dynamic count, execution time).
//
// The Experiment type reproduces the paper's Figure 9 key:
//   baseline             message vectorization
//   rr                   + redundant communication removal
//   cc                   + communication combination
//   pl                   + communication pipelining
//   pl with shmem        pl using shmem_put
//   pl with max latency  pl with shmem, combining for maximum latency hiding
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/comm/optimizer.h"
#include "src/sim/engine.h"
#include "src/trace/stats.h"
#include "src/zir/program.h"

namespace zc::driver {

struct Experiment {
  std::string name;
  comm::OptOptions opts;
  ironman::CommLibrary library = ironman::CommLibrary::kPVM;
};

/// The six experiments of the paper's Figure 9 / appendix tables, on the T3D.
std::vector<Experiment> paper_experiments();

/// Looks up a paper experiment by name ("baseline", "rr", "cc", "pl",
/// "pl with shmem", "pl with max latency").
std::optional<Experiment> find_experiment(std::string_view name);

/// A compiled program: the IR plus its communication plan.
struct Compiled {
  zir::Program program;
  comm::CommPlan plan;

  [[nodiscard]] int static_count() const { return plan.static_count(); }
};

/// Parses (throwing on errors), plans communication. `source` is mini-ZPL.
Compiled compile(std::string_view source, const comm::OptOptions& opts);

/// Plans communication for an already-built program.
Compiled compile(zir::Program program, const comm::OptOptions& opts);

/// The paper's three reported metrics for one run.
struct Metrics {
  int static_count = 0;
  long long dynamic_count = 0;
  double execution_time = 0.0;  ///< simulated seconds
  sim::RunResult run;           ///< full detail

  /// The communication plan the run executed — kept so callers can join
  /// trace records back to plan structure (per-transfer blame, critical
  /// path, differential attribution; see src/analysis).
  comm::CommPlan plan;

  /// Trace analytics, present iff the run was traced (config.recorder set):
  /// per-call wait/CPU split, exposed vs. overlapped wire time, channel
  /// traffic, message-size histogram. See src/trace/stats.h.
  std::optional<trace::Stats> trace_stats;
};

/// Compiles `program` under `experiment` and runs it on the T3D (or the
/// machine in `config`, which must carry a library consistent with it —
/// the experiment's library overrides config.library). Attach a
/// trace::Recorder to `config.recorder` to trace the run; Metrics then
/// carries the computed trace::Stats.
Metrics run_experiment(const zir::Program& program, const Experiment& experiment,
                       sim::RunConfig config);

/// Like run_experiment, but executes an already-computed plan (e.g. one
/// shared out of the sweep engine's plan cache) instead of planning here.
/// `plan` must be the product of plan_communication(program,
/// experiment.opts) — the caller owns that contract. Metrics carries its own
/// copy of the plan, exactly as run_experiment's does.
Metrics run_planned(const zir::Program& program, const comm::CommPlan& plan,
                    const Experiment& experiment, sim::RunConfig config);

/// Convenience used by golden tests: run `source` at an optimization level
/// on `procs` processors and return metrics.
Metrics run_source(std::string_view source, const Experiment& experiment, int procs,
                   const std::map<std::string, long long>& config_overrides = {});

}  // namespace zc::driver
