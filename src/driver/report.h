// Machine-readable run reports: one JSON document per (program, experiment)
// run, carrying everything the paper's Tables 1-4 / Figure 8 report — the
// static and dynamic communication counts and execution time — plus the
// optimizer's pass-provenance decisions (src/report/passlog.h), trace
// analytics when the run was traced, and a snapshot of the process metrics
// registry. `report_diff` (examples/report_diff.cpp) compares two such
// documents and flags count or time regressions, which is how the perf
// trajectory is tracked across PRs.
//
// Schema (validated by tests/report_schema_test.cpp):
//   schema               "zcomm-run-report"
//   schema_version       5
//   benchmark            caller's label (defaults to the program name)
//   program, experiment, library, procs
//   options              {remove_redundant, combine, pipeline, heuristic,
//                         inter_block}
//   static_count, dynamic_count, execution_time_seconds
//   total_messages, total_bytes, reduction_count
//   host                 present unless disabled: the host fingerprint
//                        (class, cores, cpu_model, page_size, sanitize) and
//                        a nested build fingerprint — the identity the perf
//                        archive (src/archive) gates like-for-like; no
//                        timestamps, so reports stay deterministic
//   passes               PassLog::to_json() (summary + per-pass decisions)
//   trace                present iff the run was traced
//   blame                present iff traced: per-transfer attribution
//                        (analysis::BlameReport::to_json)
//   critical_path        present iff traced: longest dependence chain and
//                        per-transfer slack (analysis::CriticalPathReport)
//   metrics              present unless disabled: Registry::to_json()
//   host_profile         present iff ReportOptions::host_profiler was set:
//                        the toolchain's own span tree (prof::Profiler
//                        ::to_json) plus peak_rss_bytes — host cost, not
//                        simulated time
//   timeline             present iff ReportOptions::timeline was set: the
//                        run's windowed utilization series
//                        (tseries::SimSeries::to_json)
//
// Version history: v1 had everything above except blame / critical_path;
// v2 added those; v3 added the optional host_profile block; v4 added the
// optional timeline block; v5 added the optional host fingerprint block
// (reports built without the corresponding producer are byte-identical to
// the prior version apart from the version number, and diffs tolerate
// one-sided presence of every optional block).
#pragma once

#include <vector>

#include "src/driver/driver.h"
#include "src/prof/prof.h"
#include "src/report/passlog.h"
#include "src/support/json.h"
#include "src/trace/recorder.h"
#include "src/tseries/tseries.h"

namespace zc::driver {

struct ReportOptions {
  std::string benchmark;             ///< label; empty = the program's name
  bool provenance = true;            ///< attach a PassLog, include "passes"
  bool metrics_snapshot = true;      ///< include the global metrics registry
  int max_decisions_per_pass = 2000; ///< per-pass cap in the document
  bool attribution = true;           ///< include "blame"/"critical_path" when traced
  int max_attribution_rows = 200;    ///< row cap in those blocks (-1 = all)
  bool host_fingerprint = true;      ///< include the "host" identity block
  /// When set, the report gains a "host_profile" block with this profiler's
  /// aggregated span tree (snapshotted at build time) and the process's peak
  /// RSS. Null (the default) leaves the report bit-identical to unprofiled.
  const prof::Profiler* host_profiler = nullptr;
  /// When set, the report gains a "timeline" block with this series'
  /// windowed utilization data (the sink the run fed via
  /// sim::RunConfig::timeline). Null (the default) omits the block.
  const tseries::SimSeries* timeline = nullptr;
};

/// Assembles the report for an already-executed run. `log` may be null
/// (the "passes" block is omitted); `procs` is the processor count the run
/// used (RunConfig is consumed by run_experiment, so the caller passes it).
json::Value build_report(const Metrics& metrics, const Experiment& experiment, int procs,
                         const report::PassLog* log, const ReportOptions& ropts = {});

/// Runs `experiment` on `program` (attaching a PassLog when
/// ropts.provenance) and assembles the report. config.recorder, when set,
/// adds the "trace" block plus (ropts.attribution) "blame"/"critical_path".
json::Value run_report(const zir::Program& program, const Experiment& experiment,
                       sim::RunConfig config, const ReportOptions& ropts = {});

/// Attaches the "blame" and "critical_path" blocks to an assembled report
/// from a traced run's recorder (exposed for callers that hold their own
/// recorder, e.g. comm_explorer).
void attach_attribution(json::Value& doc, const trace::Recorder& recorder,
                        const zir::Program& program, const comm::CommPlan& plan,
                        int max_rows = 200);

/// Machine-readable comparison of two run reports — the same content the
/// report_diff tool prints: per-field before/after/delta with a regression
/// verdict (counts must not grow; execution time may grow by up to
/// `time_tolerance`), plus optional strictly-must-improve fields. Returns
///   {before, after, regressed, fields: [{name, before, after, delta,
///    regressed}...], strict: [{name, before, after, improved}...]}.
json::Value diff_run_reports(const json::Value& before, const json::Value& after,
                             double time_tolerance = 0.05,
                             const std::vector<std::string>& strict_fields = {});

/// Host-time regression gate over two reports' "host_profile" blocks
/// (report_diff --perf-budget). A span path (root;child;... by name) or the
/// wall time regresses when
///   after > before * (1 + budget_pct/100) + abs_floor_seconds,
/// the absolute floor absorbing scheduler noise on sub-millisecond spans.
/// Span paths present in only one report are listed but never regress (the
/// instrumented surface is allowed to change between builds). Throws
/// zc::Error if either report lacks host_profile. Returns
///   {budget_pct, abs_floor_seconds, regressed,
///    wall: {before, after, regressed},
///    spans: [{path, before, after, regressed}...],   // paths in both
///    only_before: [path...], only_after: [path...]}.
json::Value perf_budget_diff(const json::Value& before, const json::Value& after,
                             double budget_pct, double abs_floor_seconds = 1e-3);

}  // namespace zc::driver
