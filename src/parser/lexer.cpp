#include "src/parser/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "src/prof/prof.h"

namespace zc::parser {

std::string token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "floating-point literal";
    case TokenKind::kProgram: return "'program'";
    case TokenKind::kConfig: return "'config'";
    case TokenKind::kRegion: return "'region'";
    case TokenKind::kDirection: return "'direction'";
    case TokenKind::kVar: return "'var'";
    case TokenKind::kInteger: return "'integer'";
    case TokenKind::kDouble: return "'double'";
    case TokenKind::kProcedure: return "'procedure'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kBy: return "'by'";
    case TokenKind::kRepeat: return "'repeat'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kShiftL: return "'<<'";
    case TokenKind::kEq: return "'='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> kw = {
      {"program", TokenKind::kProgram},   {"config", TokenKind::kConfig},
      {"region", TokenKind::kRegion},     {"direction", TokenKind::kDirection},
      {"var", TokenKind::kVar},           {"integer", TokenKind::kInteger},
      {"double", TokenKind::kDouble},     {"procedure", TokenKind::kProcedure},
      {"for", TokenKind::kFor},           {"in", TokenKind::kIn},
      {"by", TokenKind::kBy},             {"repeat", TokenKind::kRepeat},
      {"if", TokenKind::kIf},             {"else", TokenKind::kElse},
  };
  return kw;
}

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags) : src_(source), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_space_and_comments();
      Token t = next();
      tokens.push_back(t);
      if (t.kind == TokenKind::kEof) break;
    }
    return tokens;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[nodiscard]] SourceLoc here() const { return SourceLoc{line_, column_}; }

  void skip_space_and_comments() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
      const bool dash_comment = peek() == '-' && peek(1) == '-';
      const bool slash_comment = peek() == '/' && peek(1) == '/';
      if (!dash_comment && !slash_comment) return;
      while (!at_end() && peek() != '\n') advance();
    }
  }

  Token make(TokenKind kind, SourceLoc loc) {
    Token t;
    t.kind = kind;
    t.loc = loc;
    return t;
  }

  Token next() {
    const SourceLoc loc = here();
    if (at_end()) return make(TokenKind::kEof, loc);

    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident(loc);
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(loc);

    advance();
    switch (c) {
      case ';': return make(TokenKind::kSemi, loc);
      case ',': return make(TokenKind::kComma, loc);
      case '[': return make(TokenKind::kLBracket, loc);
      case ']': return make(TokenKind::kRBracket, loc);
      case '(': return make(TokenKind::kLParen, loc);
      case ')': return make(TokenKind::kRParen, loc);
      case '{': return make(TokenKind::kLBrace, loc);
      case '}': return make(TokenKind::kRBrace, loc);
      case '@': return make(TokenKind::kAt, loc);
      case '+': return make(TokenKind::kPlus, loc);
      case '-': return make(TokenKind::kMinus, loc);
      case '*': return make(TokenKind::kStar, loc);
      case '/': return make(TokenKind::kSlash, loc);
      case '=':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kEqEq, loc);
        }
        return make(TokenKind::kEq, loc);
      case ':':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kAssign, loc);
        }
        return make(TokenKind::kColon, loc);
      case '.':
        if (peek() == '.') {
          advance();
          return make(TokenKind::kDotDot, loc);
        }
        diags_.error(loc, "unexpected '.'");
        return next();
      case '<':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kLe, loc);
        }
        if (peek() == '<') {
          advance();
          return make(TokenKind::kShiftL, loc);
        }
        return make(TokenKind::kLt, loc);
      case '>':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kGe, loc);
        }
        return make(TokenKind::kGt, loc);
      case '!':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kNe, loc);
        }
        return make(TokenKind::kBang, loc);
      case '&':
        if (peek() == '&') {
          advance();
          return make(TokenKind::kAndAnd, loc);
        }
        diags_.error(loc, "unexpected '&' (did you mean '&&'?)");
        return next();
      case '|':
        if (peek() == '|') {
          advance();
          return make(TokenKind::kOrOr, loc);
        }
        diags_.error(loc, "unexpected '|' (did you mean '||'?)");
        return next();
      default:
        diags_.error(loc, std::string("unexpected character '") + c + "'");
        return next();
    }
  }

  Token lex_ident(SourceLoc loc) {
    std::string text;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
      text += advance();
    }
    Token t;
    t.loc = loc;
    const auto it = keywords().find(text);
    if (it != keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = TokenKind::kIdent;
    }
    t.text = std::move(text);
    return t;
  }

  Token lex_number(SourceLoc loc) {
    std::string text;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();

    bool is_float = false;
    // A '.' begins a fraction only if NOT followed by another '.' (so that
    // "1..n" lexes as 1, '..', n).
    if (peek() == '.' && peek(1) != '.') {
      is_float = true;
      text += advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      const char sign = peek(1);
      const std::size_t digit_at = (sign == '+' || sign == '-') ? 2 : 1;
      if (std::isdigit(static_cast<unsigned char>(peek(digit_at)))) {
        is_float = true;
        text += advance();  // e
        if (sign == '+' || sign == '-') text += advance();
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
      }
    }

    Token t;
    t.loc = loc;
    t.text = text;
    if (is_float) {
      t.kind = TokenKind::kFloatLit;
      t.float_value = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TokenKind::kIntLit;
      t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      t.float_value = static_cast<double>(t.int_value);
    }
    return t;
  }

  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags) {
  ZC_PROF_SPAN("frontend/lex");
  std::vector<Token> tokens = Lexer(source, diags).run();
  prof::add_bytes(static_cast<long long>(tokens.capacity() * sizeof(Token)));
  return tokens;
}

}  // namespace zc::parser
