// Hand-written lexer for mini-ZPL. Comments are `--` or `//` to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/parser/token.h"
#include "src/support/diag.h"

namespace zc::parser {

/// Tokenizes a whole buffer. Lexical errors are recorded in `diags`
/// (the offending character is skipped so lexing can continue).
std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags);

}  // namespace zc::parser
