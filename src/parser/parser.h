// Recursive-descent parser for mini-ZPL: builds a validated zir::Program.
//
// Grammar sketch (see tests/parser_test.cpp for worked examples):
//
//   program    := "program" IDENT ";" decl* proc+
//   decl       := "config" IDENT ":" "integer" "=" iexpr ";"
//              | "region" IDENT "=" regionlit ";"
//              | "direction" dirdef ("," dirdef)* ";"
//              | "var" IDENT ("," IDENT)* ":" "[" IDENT "]" "double" ";"
//              | "var" IDENT ("," IDENT)* ":" ("double" | "integer") ";"
//   dirdef     := IDENT "=" "[" int ("," int)* "]"
//   regionlit  := "[" range ("," range)* "]"
//   range      := iexpr [".." iexpr]        -- single index i means i..i
//   proc       := "procedure" IDENT "(" ")" block
//   block      := "{" stmt* "}"
//   stmt       := "[" regionref "]" IDENT ":=" expr ";"
//              | IDENT ":=" expr ";"
//              | "for" IDENT "in" iexpr ".." iexpr ["by" ["-"] int] block
//              | "repeat" iexpr block
//              | "if" expr block ["else" block]
//              | IDENT "(" ")" ";"
//   regionref  := IDENT | range ("," range)*
//   expr       := full arithmetic / comparison / logical expression with
//                 A@dir shifts, Index1..Index3, builtins (min max pow abs
//                 sqrt exp log sin cos), and reductions (+<<, max<<, min<<)
//   iexpr      := integer arithmetic over literals, configs, loop variables
#pragma once

#include <string_view>

#include "src/support/diag.h"
#include "src/zir/program.h"

namespace zc::parser {

/// Parses and validates; throws zc::Error with all diagnostics on failure.
zir::Program parse_program(std::string_view source);

/// As above but records problems in `diags` and returns a possibly-partial
/// program (without validating) — used by tests that assert on diagnostics.
zir::Program parse_program(std::string_view source, DiagnosticEngine& diags);

}  // namespace zc::parser
