#include "src/parser/parser.h"

#include <unordered_map>

#include "src/parser/lexer.h"
#include "src/prof/prof.h"
#include "src/support/check.h"

namespace zc::parser {

namespace {

using zir::ArrayId;
using zir::BinOp;
using zir::DirectionId;
using zir::ElemType;
using zir::Expr;
using zir::ExprId;
using zir::IntExpr;
using zir::LoopVarId;
using zir::ProcId;
using zir::Program;
using zir::RangeSpec;
using zir::RegionId;
using zir::RegionSpec;
using zir::ScalarId;
using zir::Stmt;
using zir::StmtId;
using zir::UnOp;

/// Thrown internally to unwind to a recovery point after a parse error has
/// been recorded; never escapes parse_program.
struct ParseBailout {};

class Parser {
 public:
  Parser(std::string_view source, DiagnosticEngine& diags)
      : diags_(diags), tokens_(lex(source, diags)) {}

  Program run() {
    try {
      parse_program_header();
      while (!at(TokenKind::kEof)) {
        try {
          parse_top_level();
        } catch (const ParseBailout&) {
          recover_to_top_level();
        }
      }
    } catch (const ParseBailout&) {
      // Unrecoverable (e.g. bad header); diagnostics already recorded.
    }
    ProcId entry = program_.find_proc("main");
    if (!entry.valid() && program_.proc_count() > 0) {
      entry = ProcId(static_cast<int32_t>(program_.proc_count() - 1));
    }
    if (!entry.valid()) diags_.error({}, "program has no procedures");
    program_.set_entry(entry);
    return std::move(program_);
  }

 private:
  // --- token plumbing -------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] const Token& lookahead(std::size_t n = 1) const {
    const std::size_t i = std::min(pos_ + n, tokens_.size() - 1);
    return tokens_[i];
  }
  [[nodiscard]] bool at(TokenKind kind) const { return cur().kind == kind; }

  Token take() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }

  bool accept(TokenKind kind) {
    if (!at(kind)) return false;
    take();
    return true;
  }

  Token expect(TokenKind kind, const std::string& context) {
    if (!at(kind)) {
      diags_.error(cur().loc, "expected " + token_kind_name(kind) + " " + context + ", found " +
                                  token_kind_name(cur().kind));
      throw ParseBailout{};
    }
    return take();
  }

  void recover_to_top_level() {
    // Skip to the next plausible top-level keyword or EOF.
    while (!at(TokenKind::kEof) && !at(TokenKind::kConfig) && !at(TokenKind::kRegion) &&
           !at(TokenKind::kDirection) && !at(TokenKind::kVar) && !at(TokenKind::kProcedure)) {
      take();
    }
  }

  // --- name resolution ------------------------------------------------------
  [[nodiscard]] LoopVarId find_loop_var(std::string_view name) const {
    for (auto it = loop_scope_.rbegin(); it != loop_scope_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return LoopVarId{};
  }

  void check_fresh_name(const Token& name_tok) {
    const std::string& n = name_tok.text;
    if (program_.find_config(n).valid() || program_.find_region(n).valid() ||
        program_.find_direction(n).valid() || program_.find_array(n).valid() ||
        program_.find_scalar(n).valid() || program_.find_proc(n).valid()) {
      diags_.error(name_tok.loc, "redeclaration of '" + n + "'");
    }
  }

  // --- header & declarations ------------------------------------------------
  void parse_program_header() {
    expect(TokenKind::kProgram, "at start of file");
    const Token name = expect(TokenKind::kIdent, "after 'program'");
    program_.set_name(name.text);
    expect(TokenKind::kSemi, "after program name");
  }

  void parse_top_level() {
    if (at(TokenKind::kConfig)) {
      parse_config();
    } else if (at(TokenKind::kRegion)) {
      parse_region();
    } else if (at(TokenKind::kDirection)) {
      parse_direction();
    } else if (at(TokenKind::kVar)) {
      parse_var();
    } else if (at(TokenKind::kProcedure)) {
      parse_procedure();
    } else {
      diags_.error(cur().loc,
                   "expected a declaration or procedure, found " + token_kind_name(cur().kind));
      throw ParseBailout{};
    }
  }

  void parse_config() {
    expect(TokenKind::kConfig, "");
    const Token name = expect(TokenKind::kIdent, "after 'config'");
    check_fresh_name(name);
    expect(TokenKind::kColon, "after config name");
    expect(TokenKind::kInteger, "as config type");
    expect(TokenKind::kEq, "before config value");
    const IntExpr value = parse_int_expr();
    expect(TokenKind::kSemi, "after config declaration");
    if (!value.is_static()) {
      diags_.error(name.loc, "config value must not use loop variables");
      return;
    }
    const zir::IntEnv env = program_.default_env();
    program_.add_config({name.text, value.eval(env)});
  }

  void parse_region() {
    expect(TokenKind::kRegion, "");
    const Token name = expect(TokenKind::kIdent, "after 'region'");
    check_fresh_name(name);
    expect(TokenKind::kEq, "after region name");
    const RegionSpec spec = parse_region_literal();
    expect(TokenKind::kSemi, "after region declaration");
    if (!spec.is_static()) {
      diags_.error(name.loc, "named region bounds must not use loop variables");
      return;
    }
    program_.add_region({name.text, spec});
  }

  RegionSpec parse_region_literal() {
    expect(TokenKind::kLBracket, "to open region");
    RegionSpec spec;
    do {
      spec.dims.push_back(parse_range());
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRBracket, "to close region");
    return spec;
  }

  RangeSpec parse_range() {
    IntExpr lo = parse_int_expr();
    if (accept(TokenKind::kDotDot)) {
      IntExpr hi = parse_int_expr();
      return {std::move(lo), std::move(hi)};
    }
    return {lo, lo};  // single index i means i..i
  }

  void parse_direction() {
    expect(TokenKind::kDirection, "");
    do {
      const Token name = expect(TokenKind::kIdent, "after 'direction'");
      check_fresh_name(name);
      expect(TokenKind::kEq, "after direction name");
      expect(TokenKind::kLBracket, "to open direction offsets");
      std::vector<int> offsets;
      do {
        bool negative = accept(TokenKind::kMinus);
        const Token lit = expect(TokenKind::kIntLit, "as direction offset");
        offsets.push_back(static_cast<int>(negative ? -lit.int_value : lit.int_value));
      } while (accept(TokenKind::kComma));
      expect(TokenKind::kRBracket, "to close direction offsets");
      program_.add_direction({name.text, std::move(offsets)});
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kSemi, "after direction declaration");
  }

  void parse_var() {
    expect(TokenKind::kVar, "");
    std::vector<Token> names;
    do {
      names.push_back(expect(TokenKind::kIdent, "in variable declaration"));
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kColon, "after variable names");

    if (accept(TokenKind::kLBracket)) {
      // Distributed arrays over a named region.
      const Token region_name = expect(TokenKind::kIdent, "as array region");
      expect(TokenKind::kRBracket, "after array region");
      const TokenKind type_kind = cur().kind;
      if (!accept(TokenKind::kDouble) && !accept(TokenKind::kInteger)) {
        diags_.error(cur().loc, "expected array element type 'double' or 'integer'");
        throw ParseBailout{};
      }
      expect(TokenKind::kSemi, "after array declaration");
      const RegionId region = program_.find_region(region_name.text);
      if (!region.valid()) {
        diags_.error(region_name.loc, "unknown region '" + region_name.text + "'");
        return;
      }
      for (const Token& n : names) {
        check_fresh_name(n);
        program_.add_array(
            {n.text, region,
             type_kind == TokenKind::kDouble ? ElemType::kF64 : ElemType::kI64});
      }
    } else {
      const TokenKind type_kind = cur().kind;
      if (!accept(TokenKind::kDouble) && !accept(TokenKind::kInteger)) {
        diags_.error(cur().loc, "expected scalar type 'double' or 'integer'");
        throw ParseBailout{};
      }
      expect(TokenKind::kSemi, "after scalar declaration");
      for (const Token& n : names) {
        check_fresh_name(n);
        program_.add_scalar(
            {n.text, type_kind == TokenKind::kDouble ? ElemType::kF64 : ElemType::kI64});
      }
    }
  }

  // --- procedures & statements ----------------------------------------------
  void parse_procedure() {
    expect(TokenKind::kProcedure, "");
    const Token name = expect(TokenKind::kIdent, "after 'procedure'");
    check_fresh_name(name);
    expect(TokenKind::kLParen, "after procedure name");
    expect(TokenKind::kRParen, "(procedures take no arguments)");
    std::vector<StmtId> body = parse_block();
    program_.add_proc({name.text, std::move(body)});
  }

  std::vector<StmtId> parse_block() {
    expect(TokenKind::kLBrace, "to open block");
    std::vector<StmtId> body;
    while (!at(TokenKind::kRBrace) && !at(TokenKind::kEof)) {
      try {
        body.push_back(parse_stmt());
      } catch (const ParseBailout&) {
        // Skip to the next ';' or '}' and continue parsing the block.
        while (!at(TokenKind::kSemi) && !at(TokenKind::kRBrace) && !at(TokenKind::kEof)) take();
        accept(TokenKind::kSemi);
      }
    }
    expect(TokenKind::kRBrace, "to close block");
    return body;
  }

  StmtId parse_stmt() {
    if (at(TokenKind::kFor)) return parse_for();
    if (at(TokenKind::kRepeat)) return parse_repeat();
    if (at(TokenKind::kIf)) return parse_if();
    if (at(TokenKind::kLBracket)) return parse_region_scoped_assign();
    // IDENT := expr ;  or  IDENT ( ) ;
    const Token name = expect(TokenKind::kIdent, "at start of statement");
    if (at(TokenKind::kLParen)) {
      take();
      expect(TokenKind::kRParen, "in call");
      expect(TokenKind::kSemi, "after call");
      const ProcId callee = program_.find_proc(name.text);
      if (!callee.valid()) {
        diags_.error(name.loc, "call of undeclared procedure '" + name.text + "'");
        throw ParseBailout{};
      }
      Stmt s;
      s.kind = Stmt::Kind::kCall;
      s.callee = callee;
      s.loc = name.loc;
      return program_.add_stmt(std::move(s));
    }
    return finish_assign(name, /*region=*/std::nullopt);
  }

  StmtId parse_region_scoped_assign() {
    RegionSpec spec = parse_region_scope();
    const Token name = expect(TokenKind::kIdent, "after region scope");
    return finish_assign(name, std::move(spec));
  }

  /// Parses "[R]" or an inline "[lo..hi, ...]" scope.
  RegionSpec parse_region_scope() {
    const Token open = expect(TokenKind::kLBracket, "to open region scope");
    // A lone identifier that names a region refers to it; otherwise the
    // content is an inline region literal (which may itself start with an
    // identifier, e.g. a config or loop variable).
    if (at(TokenKind::kIdent) && lookahead().kind == TokenKind::kRBracket) {
      const RegionId named = program_.find_region(cur().text);
      if (named.valid()) {
        take();
        expect(TokenKind::kRBracket, "after region name");
        return program_.region(named).spec;
      }
    }
    RegionSpec spec;
    do {
      spec.dims.push_back(parse_range());
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRBracket, "to close region scope");
    (void)open;
    return spec;
  }

  StmtId finish_assign(const Token& name, std::optional<RegionSpec> region) {
    expect(TokenKind::kAssign, "in assignment");
    const ExprId rhs = parse_expr();
    expect(TokenKind::kSemi, "after assignment");

    const ArrayId arr = program_.find_array(name.text);
    if (arr.valid()) {
      if (!region.has_value()) {
        diags_.error(name.loc, "assignment to array '" + name.text + "' requires a region scope");
        throw ParseBailout{};
      }
      Stmt s;
      s.kind = Stmt::Kind::kArrayAssign;
      s.region = std::move(region);
      s.lhs_array = arr;
      s.rhs = rhs;
      s.loc = name.loc;
      return program_.add_stmt(std::move(s));
    }
    const ScalarId sc = program_.find_scalar(name.text);
    if (sc.valid()) {
      Stmt s;
      s.kind = Stmt::Kind::kScalarAssign;
      s.region = std::move(region);
      s.lhs_scalar = sc;
      s.rhs = rhs;
      s.loc = name.loc;
      return program_.add_stmt(std::move(s));
    }
    diags_.error(name.loc, "assignment to undeclared variable '" + name.text + "'");
    throw ParseBailout{};
  }

  StmtId parse_for() {
    const Token kw = expect(TokenKind::kFor, "");
    const Token var = expect(TokenKind::kIdent, "as loop variable");
    expect(TokenKind::kIn, "after loop variable");
    IntExpr lo = parse_int_expr();
    expect(TokenKind::kDotDot, "in loop range");
    IntExpr hi = parse_int_expr();
    long long step = 1;
    if (accept(TokenKind::kBy)) {
      const bool negative = accept(TokenKind::kMinus);
      const Token lit = expect(TokenKind::kIntLit, "as loop step");
      step = negative ? -lit.int_value : lit.int_value;
      if (step == 0) diags_.error(lit.loc, "loop step must be nonzero");
    }
    const LoopVarId v = program_.add_loop_var({var.text});
    loop_scope_.emplace_back(var.text, v);
    std::vector<StmtId> body = parse_block();
    loop_scope_.pop_back();

    Stmt s;
    s.kind = Stmt::Kind::kFor;
    s.loop_var = v;
    s.lo = std::move(lo);
    s.hi = std::move(hi);
    s.step = step == 0 ? 1 : step;
    s.body = std::move(body);
    s.loc = kw.loc;
    return program_.add_stmt(std::move(s));
  }

  StmtId parse_repeat() {
    const Token kw = expect(TokenKind::kRepeat, "");
    IntExpr count = parse_int_expr();
    const LoopVarId v = program_.add_loop_var({"_rep"});
    std::vector<StmtId> body = parse_block();

    Stmt s;
    s.kind = Stmt::Kind::kFor;
    s.loop_var = v;
    s.lo = IntExpr::constant(1);
    s.hi = std::move(count);
    s.step = 1;
    s.body = std::move(body);
    s.loc = kw.loc;
    return program_.add_stmt(std::move(s));
  }

  StmtId parse_if() {
    const Token kw = expect(TokenKind::kIf, "");
    const ExprId cond = parse_expr();
    std::vector<StmtId> then_body = parse_block();
    std::vector<StmtId> else_body;
    if (accept(TokenKind::kElse)) {
      if (at(TokenKind::kIf)) {
        else_body.push_back(parse_if());
      } else {
        else_body = parse_block();
      }
    }
    Stmt s;
    s.kind = Stmt::Kind::kIf;
    s.cond = cond;
    s.body = std::move(then_body);
    s.else_body = std::move(else_body);
    s.loc = kw.loc;
    return program_.add_stmt(std::move(s));
  }

  // --- integer expressions ---------------------------------------------------
  IntExpr parse_int_expr() { return parse_int_add(); }

  IntExpr parse_int_add() {
    IntExpr lhs = parse_int_mul();
    for (;;) {
      if (accept(TokenKind::kPlus)) {
        lhs = IntExpr::add(std::move(lhs), parse_int_mul());
      } else if (accept(TokenKind::kMinus)) {
        lhs = IntExpr::sub(std::move(lhs), parse_int_mul());
      } else {
        return lhs;
      }
    }
  }

  IntExpr parse_int_mul() {
    IntExpr lhs = parse_int_unary();
    for (;;) {
      if (accept(TokenKind::kStar)) {
        lhs = IntExpr::mul(std::move(lhs), parse_int_unary());
      } else if (accept(TokenKind::kSlash)) {
        lhs = IntExpr::div(std::move(lhs), parse_int_unary());
      } else {
        return lhs;
      }
    }
  }

  IntExpr parse_int_unary() {
    if (accept(TokenKind::kMinus)) return IntExpr::neg(parse_int_unary());
    return parse_int_primary();
  }

  IntExpr parse_int_primary() {
    if (at(TokenKind::kIntLit)) return IntExpr::constant(take().int_value);
    if (accept(TokenKind::kLParen)) {
      IntExpr e = parse_int_expr();
      expect(TokenKind::kRParen, "in integer expression");
      return e;
    }
    if (at(TokenKind::kIdent)) {
      const Token name = take();
      const LoopVarId lv = find_loop_var(name.text);
      if (lv.valid()) return IntExpr::loop_var(lv);
      const zir::ConfigId cfg = program_.find_config(name.text);
      if (cfg.valid()) return IntExpr::config(cfg);
      diags_.error(name.loc, "'" + name.text + "' is not an integer constant or loop variable");
      throw ParseBailout{};
    }
    diags_.error(cur().loc,
                 "expected an integer expression, found " + token_kind_name(cur().kind));
    throw ParseBailout{};
  }

  // --- value expressions ------------------------------------------------------
  ExprId add_expr(Expr e) { return program_.add_expr(std::move(e)); }

  ExprId make_binary(BinOp op, ExprId a, ExprId b, SourceLoc loc) {
    Expr e;
    e.kind = Expr::Kind::kBinary;
    e.bin_op = op;
    e.lhs = a;
    e.rhs = b;
    e.loc = loc;
    return add_expr(std::move(e));
  }

  ExprId parse_expr() { return parse_or(); }

  ExprId parse_or() {
    ExprId lhs = parse_and();
    while (at(TokenKind::kOrOr)) {
      const SourceLoc loc = take().loc;
      lhs = make_binary(BinOp::kOr, lhs, parse_and(), loc);
    }
    return lhs;
  }

  ExprId parse_and() {
    ExprId lhs = parse_cmp();
    while (at(TokenKind::kAndAnd)) {
      const SourceLoc loc = take().loc;
      lhs = make_binary(BinOp::kAnd, lhs, parse_cmp(), loc);
    }
    return lhs;
  }

  ExprId parse_cmp() {
    ExprId lhs = parse_add();
    for (;;) {
      BinOp op;
      if (at(TokenKind::kLt)) op = BinOp::kLt;
      else if (at(TokenKind::kLe)) op = BinOp::kLe;
      else if (at(TokenKind::kGt)) op = BinOp::kGt;
      else if (at(TokenKind::kGe)) op = BinOp::kGe;
      else if (at(TokenKind::kEqEq)) op = BinOp::kEq;
      else if (at(TokenKind::kNe)) op = BinOp::kNe;
      else return lhs;
      const SourceLoc loc = take().loc;
      lhs = make_binary(op, lhs, parse_add(), loc);
    }
  }

  ExprId parse_add() {
    ExprId lhs = parse_mul();
    for (;;) {
      if (at(TokenKind::kPlus) && lookahead().kind != TokenKind::kShiftL) {
        const SourceLoc loc = take().loc;
        lhs = make_binary(BinOp::kAdd, lhs, parse_mul(), loc);
      } else if (at(TokenKind::kMinus)) {
        const SourceLoc loc = take().loc;
        lhs = make_binary(BinOp::kSub, lhs, parse_mul(), loc);
      } else {
        return lhs;
      }
    }
  }

  ExprId parse_mul() {
    ExprId lhs = parse_unary();
    for (;;) {
      if (at(TokenKind::kStar)) {
        const SourceLoc loc = take().loc;
        lhs = make_binary(BinOp::kMul, lhs, parse_unary(), loc);
      } else if (at(TokenKind::kSlash)) {
        const SourceLoc loc = take().loc;
        lhs = make_binary(BinOp::kDiv, lhs, parse_unary(), loc);
      } else {
        return lhs;
      }
    }
  }

  ExprId parse_unary() {
    if (at(TokenKind::kMinus)) {
      const SourceLoc loc = take().loc;
      Expr e;
      e.kind = Expr::Kind::kUnary;
      e.un_op = UnOp::kNeg;
      e.lhs = parse_unary();
      e.loc = loc;
      return add_expr(std::move(e));
    }
    if (at(TokenKind::kBang)) {
      const SourceLoc loc = take().loc;
      Expr e;
      e.kind = Expr::Kind::kUnary;
      e.un_op = UnOp::kNot;
      e.lhs = parse_unary();
      e.loc = loc;
      return add_expr(std::move(e));
    }
    // Reductions: "+<< expr", "max<< expr", "min<< expr".
    if (at(TokenKind::kPlus) && lookahead().kind == TokenKind::kShiftL) {
      return parse_reduce(zir::ReduceOp::kSum);
    }
    if (at(TokenKind::kIdent) && (cur().text == "max" || cur().text == "min") &&
        lookahead().kind == TokenKind::kShiftL) {
      return parse_reduce(cur().text == "max" ? zir::ReduceOp::kMax : zir::ReduceOp::kMin);
    }
    return parse_primary();
  }

  ExprId parse_reduce(zir::ReduceOp op) {
    const SourceLoc loc = take().loc;  // '+' or 'max'/'min'
    expect(TokenKind::kShiftL, "in reduction operator");
    Expr e;
    e.kind = Expr::Kind::kReduce;
    e.reduce_op = op;
    e.lhs = parse_unary();
    e.loc = loc;
    return add_expr(std::move(e));
  }

  ExprId parse_primary() {
    if (at(TokenKind::kFloatLit) || at(TokenKind::kIntLit)) {
      const Token lit = take();
      Expr e;
      e.kind = Expr::Kind::kConst;
      e.const_value = lit.float_value;
      e.loc = lit.loc;
      return add_expr(std::move(e));
    }
    if (accept(TokenKind::kLParen)) {
      const ExprId inner = parse_expr();
      expect(TokenKind::kRParen, "in expression");
      return inner;
    }
    if (at(TokenKind::kIdent)) return parse_ident_expr();
    diags_.error(cur().loc, "expected an expression, found " + token_kind_name(cur().kind));
    throw ParseBailout{};
  }

  ExprId parse_ident_expr() {
    const Token name = take();

    // Builtin function calls.
    if (at(TokenKind::kLParen)) return parse_builtin_call(name);

    // Indexk pseudo-arrays.
    if (name.text == "Index1" || name.text == "Index2" || name.text == "Index3") {
      Expr e;
      e.kind = Expr::Kind::kIndex;
      e.index_dim = name.text[5] - '0';
      e.loc = name.loc;
      return add_expr(std::move(e));
    }

    const ArrayId arr = program_.find_array(name.text);
    if (arr.valid()) {
      if (accept(TokenKind::kAt)) {
        const Token dir = expect(TokenKind::kIdent, "after '@'");
        const DirectionId d = program_.find_direction(dir.text);
        if (!d.valid()) {
          diags_.error(dir.loc, "unknown direction '" + dir.text + "'");
          throw ParseBailout{};
        }
        Expr e;
        e.kind = Expr::Kind::kShift;
        e.array = arr;
        e.direction = d;
        e.loc = name.loc;
        return add_expr(std::move(e));
      }
      Expr e;
      e.kind = Expr::Kind::kArrayRef;
      e.array = arr;
      e.loc = name.loc;
      return add_expr(std::move(e));
    }

    const ScalarId sc = program_.find_scalar(name.text);
    if (sc.valid()) {
      Expr e;
      e.kind = Expr::Kind::kScalarRef;
      e.scalar = sc;
      e.loc = name.loc;
      return add_expr(std::move(e));
    }

    const LoopVarId lv = find_loop_var(name.text);
    if (lv.valid()) {
      Expr e;
      e.kind = Expr::Kind::kLoopVarRef;
      e.loop_var = lv;
      e.loc = name.loc;
      return add_expr(std::move(e));
    }

    const zir::ConfigId cfg = program_.find_config(name.text);
    if (cfg.valid()) {
      Expr e;
      e.kind = Expr::Kind::kConfigRef;
      e.config = cfg;
      e.loc = name.loc;
      return add_expr(std::move(e));
    }

    diags_.error(name.loc, "unknown name '" + name.text + "'");
    throw ParseBailout{};
  }

  ExprId parse_builtin_call(const Token& name) {
    expect(TokenKind::kLParen, "in call");
    std::vector<ExprId> args;
    if (!at(TokenKind::kRParen)) {
      do {
        args.push_back(parse_expr());
      } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "in call");

    auto binary_builtin = [&](BinOp op) {
      if (args.size() != 2) {
        diags_.error(name.loc, "'" + name.text + "' takes exactly 2 arguments");
        throw ParseBailout{};
      }
      return make_binary(op, args[0], args[1], name.loc);
    };
    auto unary_builtin = [&](UnOp op) {
      if (args.size() != 1) {
        diags_.error(name.loc, "'" + name.text + "' takes exactly 1 argument");
        throw ParseBailout{};
      }
      Expr e;
      e.kind = Expr::Kind::kUnary;
      e.un_op = op;
      e.lhs = args[0];
      e.loc = name.loc;
      return add_expr(std::move(e));
    };

    if (name.text == "min") return binary_builtin(BinOp::kMin);
    if (name.text == "max") return binary_builtin(BinOp::kMax);
    if (name.text == "pow") return binary_builtin(BinOp::kPow);
    if (name.text == "abs") return unary_builtin(UnOp::kAbs);
    if (name.text == "sqrt") return unary_builtin(UnOp::kSqrt);
    if (name.text == "exp") return unary_builtin(UnOp::kExp);
    if (name.text == "log") return unary_builtin(UnOp::kLog);
    if (name.text == "sin") return unary_builtin(UnOp::kSin);
    if (name.text == "cos") return unary_builtin(UnOp::kCos);
    diags_.error(name.loc, "unknown function '" + name.text + "'");
    throw ParseBailout{};
  }

  DiagnosticEngine& diags_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program program_;
  std::vector<std::pair<std::string, LoopVarId>> loop_scope_;
};

}  // namespace

Program parse_program(std::string_view source, DiagnosticEngine& diags) {
  ZC_PROF_SPAN("frontend/parse");
  return Parser(source, diags).run();
}

Program parse_program(std::string_view source) {
  ZC_PROF_SPAN("frontend");
  DiagnosticEngine diags;
  Program p = parse_program(source, diags);
  diags.throw_if_errors("mini-ZPL parse failed");
  p.validate();
  return p;
}

}  // namespace zc::parser
