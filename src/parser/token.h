// Token definitions for the mini-ZPL lexer.
#pragma once

#include <string>

#include "src/support/diag.h"

namespace zc::parser {

enum class TokenKind {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,

  // keywords
  kProgram, kConfig, kRegion, kDirection, kVar, kInteger, kDouble,
  kProcedure, kFor, kIn, kBy, kRepeat, kIf, kElse,

  // punctuation / operators
  kSemi, kColon, kComma, kDotDot, kAssign,  // ; : , .. :=
  kLBracket, kRBracket, kLParen, kRParen, kLBrace, kRBrace,
  kAt,                                       // @
  kPlus, kMinus, kStar, kSlash,
  kLt, kLe, kGt, kGe, kEqEq, kNe,
  kAndAnd, kOrOr, kBang,
  kShiftL,                                   // << (reductions: +<<, max<<)
  kEq,                                       // = (declarations)
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier spelling / literal spelling
  long long int_value = 0;
  double float_value = 0.0;
  SourceLoc loc{};
};

/// Human-readable token name for diagnostics, e.g. "';'" or "identifier".
std::string token_kind_name(TokenKind kind);

}  // namespace zc::parser
